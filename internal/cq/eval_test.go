package cq

import (
	"math/rand"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func val(t value.Type, n int64) value.Value { return value.Value{Type: t, N: n} }

func evalDB(t *testing.T) *instance.Database {
	t.Helper()
	s := schema.MustParse("R(a:T1, b:T2)\nS(c:T2, d:T3)")
	d := instance.NewDatabase(s)
	d.MustInsert("R", val(1, 1), val(2, 1))
	d.MustInsert("R", val(1, 2), val(2, 2))
	d.MustInsert("S", val(2, 1), val(3, 1))
	d.MustInsert("S", val(2, 1), val(3, 2))
	return d
}

func TestEvalProjection(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X) :- R(X, Y).")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Fatalf("got %d tuples: %s", out.Len(), out)
	}
	if !out.Has(instance.Tuple{val(1, 1)}) || !out.Has(instance.Tuple{val(1, 2)}) {
		t.Errorf("wrong answers: %s", out)
	}
}

func TestEvalJoin(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X, W) :- R(X, Y), S(Z, W), Y = Z.")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// R(1,1) joins S(1,1) and S(1,2); R(2,2) joins nothing.
	if out.Len() != 2 {
		t.Fatalf("got %s", out)
	}
	if !out.Has(instance.Tuple{val(1, 1), val(3, 1)}) || !out.Has(instance.Tuple{val(1, 1), val(3, 2)}) {
		t.Errorf("wrong join answers: %s", out)
	}
}

func TestEvalSelection(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X) :- R(X, Y), Y = T2:2.")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Has(instance.Tuple{val(1, 2)}) {
		t.Errorf("selection wrong: %s", out)
	}
}

func TestEvalConstHead(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(T3:9, X) :- R(X, Y).")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range out.Tuples() {
		if tp[0] != val(3, 9) {
			t.Errorf("constant head wrong: %v", tp)
		}
	}
	if out.Len() != 2 {
		t.Errorf("len = %d", out.Len())
	}
}

func TestEvalRepeatedHeadVar(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X, X) :- R(X, Y).")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	for _, tp := range out.Tuples() {
		if tp[0] != tp[1] {
			t.Errorf("repeated head variable mismatch: %v", tp)
		}
	}
}

func TestEvalUnsatisfiable(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X) :- R(X, Y), Y = T2:1, Y = T2:2.")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("unsatisfiable query returned %s", out)
	}
}

func TestEvalCrossProduct(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X, W) :- R(X, Y), S(Z, W).")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// 2 R tuples × 2 S tuples, projected to (X, W): (1,1),(1,2),(2,1),(2,2).
	if out.Len() != 4 {
		t.Errorf("cross product wrong: %s", out)
	}
}

func TestEvalSelfJoin(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	d := instance.NewDatabase(s)
	// Path graph 1 -> 2 -> 3.
	d.MustInsert("E", val(1, 1), val(1, 2))
	d.MustInsert("E", val(1, 2), val(1, 3))
	q := MustParse("V(X, Z2) :- E(X, Y), E(Y2, Z2), Y = Y2.")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Has(instance.Tuple{val(1, 1), val(1, 3)}) {
		t.Errorf("path join wrong: %s", out)
	}
}

func TestEvalErrors(t *testing.T) {
	d := evalDB(t)
	if _, err := Eval(MustParse("V(X) :- Z(X)."), d); err == nil {
		t.Error("unknown relation should error")
	}
	q := &Query{Head: []Term{V("X")}}
	if _, err := Eval(q, d); err == nil {
		t.Error("empty body should error")
	}
}

func TestEvalInto(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X, Y) :- R(X, Y).")
	target, _ := schema.ParseRelation("out(u:T1, v:T2)")
	out, err := EvalInto(q, d, target)
	if err != nil {
		t.Fatal(err)
	}
	if out.Scheme.Name != "out" || out.Len() != 2 {
		t.Errorf("EvalInto wrong: %s", out)
	}
	wrong, _ := schema.ParseRelation("out(u:T2, v:T1)")
	if _, err := EvalInto(q, d, wrong); err == nil {
		t.Error("type-mismatched target accepted")
	}
	short, _ := schema.ParseRelation("out(u:T1)")
	if _, err := EvalInto(q, d, short); err == nil {
		t.Error("arity-mismatched target accepted")
	}
}

func TestHasAnswer(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X, W) :- R(X, Y), S(Z, W), Y = Z.")
	ok, _, err := HasAnswer(q, d, instance.Tuple{val(1, 1), val(3, 2)})
	if err != nil || !ok {
		t.Errorf("HasAnswer = %v, %v; want true", ok, err)
	}
	ok, _, err = HasAnswer(q, d, instance.Tuple{val(1, 2), val(3, 1)})
	if err != nil || ok {
		t.Errorf("HasAnswer = %v, %v; want false", ok, err)
	}
	if _, _, err := HasAnswer(q, d, instance.Tuple{val(1, 1)}); err == nil {
		t.Error("arity mismatch should error")
	}
	// Constant head positions must match the wanted tuple.
	qc := MustParse("V(T3:9, X) :- R(X, Y).")
	ok, _, _ = HasAnswer(qc, d, instance.Tuple{val(3, 9), val(1, 1)})
	if !ok {
		t.Error("matching constant head rejected")
	}
	ok, _, _ = HasAnswer(qc, d, instance.Tuple{val(3, 8), val(1, 1)})
	if ok {
		t.Error("mismatching constant head accepted")
	}
}

func TestHasAnswerAgreesWithEval(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)\nP(c:T1, d:T1)")
	rng := rand.New(rand.NewSource(99))
	queries := []*Query{
		MustParse("V(X, B) :- R(X, Y), P(A, B), Y = A."),
		MustParse("V(X, Y) :- R(X, Y), R(A, B), Y = A."),
		MustParse("V(X) :- R(X, Y), Y = T1:1."),
	}
	for trial := 0; trial < 30; trial++ {
		d := randInstance(s, rng, 5, 3)
		for _, q := range queries {
			full, err := Eval(q, d)
			if err != nil {
				t.Fatal(err)
			}
			// Every produced answer must be found by HasAnswer; a few
			// random non-answers must be rejected.
			for _, tp := range full.Tuples() {
				ok, _, err := HasAnswer(q, d, tp)
				if err != nil || !ok {
					t.Fatalf("HasAnswer missed produced tuple %v for %s", tp, q)
				}
			}
			ht, _ := q.HeadType(s)
			for i := 0; i < 5; i++ {
				tp := make(instance.Tuple, len(ht))
				for j, typ := range ht {
					tp[j] = value.Value{Type: typ, N: int64(rng.Intn(5) + 1)}
				}
				ok, _, err := HasAnswer(q, d, tp)
				if err != nil {
					t.Fatal(err)
				}
				if ok != full.Has(tp) {
					t.Fatalf("HasAnswer(%v) = %v but Eval says %v for %s on %s", tp, ok, full.Has(tp), q, d)
				}
			}
		}
	}
}

func TestEvalStatsCounted(t *testing.T) {
	d := evalDB(t)
	q := MustParse("V(X) :- R(X, Y).")
	_, stats, err := EvalWithStats(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes < 2 {
		t.Errorf("stats.Nodes = %d, want >= 2", stats.Nodes)
	}
}

func TestNonEmpty(t *testing.T) {
	d := evalDB(t)
	ok, err := NonEmpty(MustParse("V(X) :- R(X, Y)."), d)
	if err != nil || !ok {
		t.Error("NonEmpty should be true")
	}
	ok, err = NonEmpty(MustParse("V(X) :- R(X, Y), Y = T2:77."), d)
	if err != nil || ok {
		t.Error("NonEmpty should be false")
	}
}

// Conjunctive queries are monotone: answers over a sub-database are a
// subset of answers over the full database.
func TestEvalMonotone(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)\nP(c:T1, d:T1)")
	rng := rand.New(rand.NewSource(123))
	queries := []*Query{
		MustParse("V(X, B) :- R(X, Y), P(A, B), Y = A."),
		MustParse("V(X) :- R(X, Y), R(A, B), Y = A."),
		MustParse("V(X) :- R(X, Y), Y = T1:2."),
		MustParse("V(X, A) :- R(X, Y), P(A, B)."),
	}
	for trial := 0; trial < 50; trial++ {
		full := randInstance(s, rng, 6, 3)
		// Build a random sub-database.
		sub := instance.NewDatabase(s)
		for ri, r := range full.Relations {
			for _, tp := range r.Tuples() {
				if rng.Intn(2) == 0 {
					sub.Relations[ri].MustInsert(tp)
				}
			}
		}
		for _, q := range queries {
			aSub, err := Eval(q, sub)
			if err != nil {
				t.Fatal(err)
			}
			aFull, err := Eval(q, full)
			if err != nil {
				t.Fatal(err)
			}
			if !aSub.SubsetOf(aFull) {
				t.Fatalf("monotonicity violated for %s:\nsub %s -> %s\nfull %s -> %s",
					q, sub, aSub, full, aFull)
			}
		}
	}
}

// Evaluation is invariant under variable renaming (alpha-equivalence).
func TestEvalAlphaInvariant(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)")
	rng := rand.New(rand.NewSource(321))
	q := MustParse("V(X, B) :- R(X, Y), R(A, B), Y = A.")
	r := q.Rename("zz_")
	for trial := 0; trial < 30; trial++ {
		d := randInstance(s, rng, 5, 3)
		a1, err := Eval(q, d)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Eval(r, d)
		if err != nil {
			t.Fatal(err)
		}
		if !a1.Equal(a2) {
			t.Fatalf("alpha-renaming changed answers: %s vs %s", a1, a2)
		}
	}
}
