package cq

import (
	"fmt"

	"keyedeq/internal/invariant"
)

// This file implements the paper's identity joins and ij-saturation (§2).
//
// A join is an *identity join* if all the relations participating are the
// same relation and every join condition equates an attribute position of
// one occurrence with the same position of another occurrence.  A relation
// R in a query body is *ij-saturated* if no occurrence of R participates
// in a selection condition, all join conditions involving R are identity
// joins, and all possible identity join conditions for R are inferable
// from the equality list.  A query is ij-saturated if every relation in
// its body is.

// ClassShape classifies one equality class relative to the body: the set
// of relations and positions it touches and whether it is constant-bound.
type classShape struct {
	rels      map[string]bool
	positions map[int]bool
	bound     bool
	size      int
}

func classShapes(q *Query) map[Var]*classShape {
	eq := NewEqClasses(q)
	shapes := make(map[Var]*classShape)
	for _, a := range q.Body {
		for j, v := range a.Vars {
			root := eq.Find(v)
			sh := shapes[root]
			if sh == nil {
				sh = &classShape{rels: map[string]bool{}, positions: map[int]bool{}}
				shapes[root] = sh
			}
			sh.rels[a.Rel] = true
			sh.positions[j] = true
			sh.size++
			if _, ok := eq.Const(v); ok {
				sh.bound = true
			}
		}
	}
	return shapes
}

// RelationIJSaturated reports whether relation rel is ij-saturated in q.
func RelationIJSaturated(q *Query, rel string) bool {
	if err := relationConditionsIdentityOnly(q, rel); err != nil {
		return false
	}
	// All possible identity join conditions must be inferable: for every
	// position p, the p-th variables of all occurrences of rel share one
	// class.
	eq := NewEqClasses(q)
	var occ []Atom
	for _, a := range q.Body {
		if a.Rel == rel {
			occ = append(occ, a)
		}
	}
	if len(occ) <= 1 {
		return true
	}
	first := occ[0]
	for _, a := range occ[1:] {
		for p := range a.Vars {
			if !eq.Same(first.Vars[p], a.Vars[p]) {
				return false
			}
		}
	}
	return true
}

// relationConditionsIdentityOnly checks that no occurrence of rel is in a
// selection condition and that all join conditions involving rel are
// identity joins.  It reports the first violation as an error.
func relationConditionsIdentityOnly(q *Query, rel string) error {
	shapes := classShapes(q)
	eq := NewEqClasses(q)
	for _, a := range q.Body {
		if a.Rel != rel {
			continue
		}
		for j, v := range a.Vars {
			sh := shapes[eq.Find(v)]
			if sh.bound {
				return fmt.Errorf("cq: %s position %d participates in a constant selection", rel, j)
			}
			if len(sh.rels) > 1 {
				return fmt.Errorf("cq: %s position %d joins a different relation", rel, j)
			}
			if len(sh.positions) > 1 {
				return fmt.Errorf("cq: %s position %d equated to a different position", rel, j)
			}
		}
	}
	return nil
}

// IJSaturated reports whether every relation in q's body is ij-saturated.
func IJSaturated(q *Query) bool {
	for _, rel := range q.RelationsUsed() {
		if !RelationIJSaturated(q, rel) {
			return false
		}
	}
	return true
}

// Saturate constructs the ij-saturated query q̂ of §2: it requires q to
// have no selection conditions and no join conditions other than identity
// joins, and returns q with the missing identity join conditions added so
// that every relation is ij-saturated.  The construction keeps the same
// occurrences of relations; q̂ ⊑ q always holds (only conditions were
// added).
func Saturate(q *Query) (*Query, error) {
	return saturate(q, invariant.Debug)
}

// saturate is Saturate with an explicit idempotence check, split out so
// the debug verification does not recurse into itself.
func saturate(q *Query, check bool) (*Query, error) {
	for _, rel := range q.RelationsUsed() {
		if err := relationConditionsIdentityOnly(q, rel); err != nil {
			return nil, fmt.Errorf("cq: cannot saturate: %v", err)
		}
	}
	out := q.Clone()
	// For each relation, equate position p of every occurrence with
	// position p of the first occurrence.
	eq := NewEqClasses(q)
	for _, rel := range q.RelationsUsed() {
		var first *Atom
		for i := range out.Body {
			a := &out.Body[i]
			if a.Rel != rel {
				continue
			}
			if first == nil {
				first = a
				continue
			}
			for p := range a.Vars {
				if !eq.Same(first.Vars[p], a.Vars[p]) {
					out.Eqs = append(out.Eqs, Equality{Left: first.Vars[p], Right: Term{Var: a.Vars[p]}})
				}
			}
		}
	}
	if check {
		// §2: q̂ must be ij-saturated, and saturation must be a closure
		// operator — saturating q̂ again adds nothing.
		invariant.Assert(IJSaturated(out), "saturate: result is not ij-saturated")
		again, err := saturate(out, false)
		invariant.Assertf(err == nil, "saturate: result rejected on re-saturation: %v", err)
		invariant.Assertf(err != nil || len(again.Eqs) == len(out.Eqs),
			"saturate: not idempotent (%d equalities grew to %d)", len(out.Eqs), len(again.Eqs))
	}
	return out, nil
}
