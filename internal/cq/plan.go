package cq

import (
	"fmt"

	"keyedeq/internal/instance"
)

// This file compiles a query body into a search plan for the indexed
// homomorphism search (search.go).  A plan fixes, per connected component
// of the body's join graph, a static atom order chosen greedily by a
// most-constrained-first heuristic, and records for every atom which
// positions are already bound when the atom is matched — those positions
// become the key of a per-relation hash index, so matching an atom costs
// one bucket lookup instead of a scan over the whole relation.
//
// Equality classes are numbered densely at plan time: the search binds
// values in flat slices indexed by class id, so the hot path does no
// string hashing at all.

// smallRelScanThreshold is the relation cardinality at or below which a
// step scans instead of probing a hash index: building the bucket map
// costs one allocation per tuple, which a scan of that few tuples beats.
const smallRelScanThreshold = 8

// planStep is one atom of the compiled matching order.
type planStep struct {
	// atom indexes q.Body.
	atom int
	// rel is the resolved relation instance the atom matches against.
	rel *instance.Relation
	// relIdx is rel's index in the database's schema order, which is
	// also its index among the frozen (interned) relation views — the
	// interned search addresses relations by it.
	relIdx int
	// roots holds the class id of each position's placeholder variable.
	roots []int32
	// keyPos lists the positions whose class is bound before this step
	// runs (by a constant, a pre-bound head class, or an earlier step).
	// They form the hash-index key for this step; the remaining
	// positions bind or check during matching.
	keyPos []int
	// indexSlot identifies the shared hash index this step probes
	// (steps matching the same relation on the same positions share
	// one), or -1 when the step has no bound positions and scans.
	indexSlot int
}

// planComponent is one connected component of the join graph: atoms
// linked (transitively) by a shared unbound equality class.  Components
// share no unbound classes, so each is searched independently —
// backtracking inside one component can never multiply another's.
type planComponent struct {
	steps []planStep
	// headRoots lists, in head order, the class ids this component
	// determines among the query's head variables (empty for components
	// the head never mentions — those only need a non-emptiness check
	// when enumerating answers).
	headRoots []int32
}

// searchPlan is the compiled form of one homomorphism search over a
// fixed query and database.
type searchPlan struct {
	comps []planComponent
	// classOf numbers the equality-class representatives appearing in
	// the body, densely from 0.
	classOf    map[Var]int32
	numClasses int
	// numSlots is the number of distinct (relation, key positions)
	// hash indexes the plan's steps probe.
	numSlots int
}

// resolveRelations maps each body atom to its relation instance and
// its schema-order index, rejecting unknown relations and arity
// mismatches.
func resolveRelations(q *Query, d *instance.Database) ([]*instance.Relation, []int, error) {
	rels := make([]*instance.Relation, len(q.Body))
	idxs := make([]int, len(q.Body))
	for i, a := range q.Body {
		ri := d.Schema.RelationIndex(a.Rel)
		if ri < 0 {
			return nil, nil, fmt.Errorf("cq: no relation %q in database", a.Rel)
		}
		r := d.Relations[ri]
		if r.Scheme != nil && len(a.Vars) != r.Scheme.Arity() {
			return nil, nil, fmt.Errorf("cq: %s arity mismatch", a.Rel)
		}
		rels[i] = r
		idxs[i] = ri
	}
	return rels, idxs, nil
}

// buildPlan compiles the plan for q over the resolved relations.  eq must
// be q's equality classes; pres holds the class representatives whose
// value is fixed before the search starts (constant-bound classes, plus
// the head classes when searching for a specific answer tuple).
func buildPlan(q *Query, rels []*instance.Relation, relIdxs []int, eq *EqClasses, pres []prebinding) *searchPlan {
	n := len(q.Body)
	plan := &searchPlan{classOf: make(map[Var]int32, 2*n)}
	total := 0
	for _, a := range q.Body {
		total += len(a.Vars)
	}
	backing := make([]int32, total)
	roots := make([][]int32, n)
	for i, a := range q.Body {
		roots[i], backing = backing[:len(a.Vars):len(a.Vars)], backing[len(a.Vars):]
		for p, v := range a.Vars {
			root := eq.Find(v)
			id, ok := plan.classOf[root]
			if !ok {
				id = int32(plan.numClasses)
				plan.classOf[root] = id
				plan.numClasses++
			}
			roots[i][p] = id
		}
	}
	preboundID := make([]bool, plan.numClasses)
	for _, pb := range pres {
		if id, ok := plan.classOf[pb.root]; ok {
			preboundID[id] = true
		}
	}

	// Union-find over atoms: two atoms connect when they share an
	// unbound class.  Classes fixed before the search carry no join
	// constraint between atoms — each atom filters against the fixed
	// value independently.
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	firstAtomOf := make([]int, plan.numClasses)
	for i := range firstAtomOf {
		firstAtomOf[i] = -1
	}
	for i := range q.Body {
		for _, id := range roots[i] {
			if preboundID[id] {
				continue
			}
			if j := firstAtomOf[id]; j >= 0 {
				ri, rj := find(i), find(j)
				if ri != rj {
					parent[ri] = rj
				}
			} else {
				firstAtomOf[id] = i
			}
		}
	}

	// Group atoms into components ordered by first appearance.
	compOf := make([]int, n)
	for i := range compOf {
		compOf[i] = -1
	}
	var compAtoms [][]int
	for i := 0; i < n; i++ {
		root := find(i)
		ci := compOf[root]
		if ci < 0 {
			ci = len(compAtoms)
			compOf[root] = ci
			compAtoms = append(compAtoms, nil)
		}
		compAtoms[ci] = append(compAtoms[ci], i)
	}

	plan.comps = make([]planComponent, len(compAtoms))
	rootComp := make([]int32, plan.numClasses)
	for i := range rootComp {
		rootComp[i] = -1
	}
	for ci, atoms := range compAtoms {
		plan.comps[ci] = orderComponent(atoms, rels, relIdxs, roots, preboundID, plan.numClasses)
		for _, ai := range atoms {
			for _, id := range roots[ai] {
				if !preboundID[id] {
					rootComp[id] = int32(ci)
				}
			}
		}
	}

	// Steps matching the same relation on the same key positions share
	// one hash index; resolve the slot assignment now so the search's
	// probe path is a slice access.  Relations at or under
	// smallRelScanThreshold tuples scan instead — walking a handful of
	// tuples is cheaper than building a bucket map for them.
	type indexID struct {
		rel *instance.Relation
		sig string
	}
	nsteps := 0
	for ci := range plan.comps {
		nsteps += len(plan.comps[ci].steps)
	}
	slots := make([]indexID, 0, nsteps)
	for ci := range plan.comps {
		for si := range plan.comps[ci].steps {
			st := &plan.comps[ci].steps[si]
			if len(st.keyPos) == 0 || st.rel.Len() <= smallRelScanThreshold {
				st.indexSlot = -1
				continue
			}
			id := indexID{rel: st.rel, sig: posSig(st.keyPos)}
			st.indexSlot = -1
			for slot, have := range slots {
				if have == id {
					st.indexSlot = slot
					break
				}
			}
			if st.indexSlot < 0 {
				st.indexSlot = len(slots)
				slots = append(slots, id)
			}
		}
	}
	plan.numSlots = len(slots)

	// Assign head classes to the component that determines them.
	seen := make([]bool, plan.numClasses)
	for _, t := range q.Head {
		if t.IsConst {
			continue
		}
		id, ok := plan.classOf[eq.Find(t.Var)]
		if !ok || preboundID[id] || seen[id] {
			// A head variable always occurs in the body, so its class is
			// either numbered or prebound; be defensive and skip rather
			// than panic on unvalidated queries.
			continue
		}
		seen[id] = true
		if ci := rootComp[id]; ci >= 0 {
			c := &plan.comps[ci]
			c.headRoots = append(c.headRoots, id)
		}
	}
	return plan
}

// orderComponent fixes the matching order of one component's atoms:
// repeatedly pick the unplaced atom with the most bound positions,
// breaking ties by smaller relation cardinality, then original body
// order.  Each step records its bound positions as the index key.
func orderComponent(atoms []int, rels []*instance.Relation, relIdxs []int, roots [][]int32, preboundID []bool, numClasses int) planComponent {
	bound := make([]bool, numClasses)
	copy(bound, preboundID)
	placed := make([]bool, len(atoms))
	comp := planComponent{steps: make([]planStep, 0, len(atoms))}
	for len(comp.steps) < len(atoms) {
		best, bestK, bestBound, bestCard := -1, -1, -1, 0
		for k, ai := range atoms {
			if placed[k] {
				continue
			}
			b := 0
			for _, id := range roots[ai] {
				if bound[id] {
					b++
				}
			}
			card := rels[ai].Len()
			if b > bestBound || (b == bestBound && card < bestCard) {
				best, bestK, bestBound, bestCard = ai, k, b, card
			}
		}
		placed[bestK] = true
		step := planStep{atom: best, rel: rels[best], relIdx: relIdxs[best], roots: roots[best]}
		for p, id := range roots[best] {
			if bound[id] {
				step.keyPos = append(step.keyPos, p)
			}
		}
		for _, id := range roots[best] {
			bound[id] = true
		}
		comp.steps = append(comp.steps, step)
	}
	return comp
}
