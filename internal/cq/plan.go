package cq

import (
	"fmt"

	"keyedeq/internal/instance"
)

// This file compiles a query body into a search plan for the indexed
// homomorphism search (search.go).  A plan fixes, per connected component
// of the body's join graph, a static atom order chosen greedily by a
// most-constrained-first heuristic, and records for every atom which
// positions are already bound when the atom is matched — those positions
// become the key of a per-relation hash index, so matching an atom costs
// one bucket lookup instead of a scan over the whole relation.
//
// Equality classes are numbered densely at plan time: the search binds
// values in flat slices indexed by class id, so the hot path does no
// string hashing at all.

// smallRelScanThreshold is the relation cardinality at or below which a
// step scans instead of probing a hash index: building the bucket map
// costs one allocation per tuple, which a scan of that few tuples beats.
const smallRelScanThreshold = 8

// planStep is one atom of the compiled matching order.
type planStep struct {
	// atom indexes q.Body.
	atom int
	// rel is the resolved relation instance the atom matches against.
	rel *instance.Relation
	// relIdx is rel's index in the database's schema order, which is
	// also its index among the frozen (interned) relation views — the
	// interned search addresses relations by it.
	relIdx int
	// roots holds the class id of each position's placeholder variable.
	roots []int32
	// keyPos lists the positions whose class is bound before this step
	// runs (by a constant, a pre-bound head class, or an earlier step).
	// They form the hash-index key for this step; the remaining
	// positions bind or check during matching.
	keyPos []int
	// indexSlot identifies the shared hash index this step probes
	// (steps matching the same relation on the same positions share
	// one), or -1 when the step has no bound positions and scans.
	indexSlot int
}

// planComponent is one connected component of the join graph: atoms
// linked (transitively) by a shared unbound equality class.  Components
// share no unbound classes, so each is searched independently —
// backtracking inside one component can never multiply another's.
type planComponent struct {
	steps []planStep
	// headRoots lists, in head order, the class ids this component
	// determines among the query's head variables (empty for components
	// the head never mentions — those only need a non-emptiness check
	// when enumerating answers).
	headRoots []int32
}

// searchPlan is the compiled form of one homomorphism search over a
// fixed query and database.
type searchPlan struct {
	comps []planComponent
	// classOf numbers the equality-class representatives appearing in
	// the body, densely from 0.
	classOf    map[Var]int32
	numClasses int
	// numSlots is the number of distinct (relation, key positions)
	// hash indexes the plan's steps probe.
	numSlots int
}

// resolveRelations maps each body atom to its relation instance and
// its schema-order index, rejecting unknown relations and arity
// mismatches.
func resolveRelations(q *Query, d *instance.Database) ([]*instance.Relation, []int, error) {
	rels := make([]*instance.Relation, len(q.Body))
	idxs := make([]int, len(q.Body))
	for i, a := range q.Body {
		ri := d.Schema.RelationIndex(a.Rel)
		if ri < 0 {
			return nil, nil, fmt.Errorf("cq: no relation %q in database", a.Rel)
		}
		r := d.Relations[ri]
		if r.Scheme != nil && len(a.Vars) != r.Scheme.Arity() {
			return nil, nil, fmt.Errorf("cq: %s arity mismatch", a.Rel)
		}
		rels[i] = r
		idxs[i] = ri
	}
	return rels, idxs, nil
}

// ufFind is the path-halving find of buildPlan's union-find over atoms.
func ufFind(parent []int, i int) int {
	for parent[i] != i {
		parent[i] = parent[parent[i]]
		i = parent[i]
	}
	return i
}

// equalPos reports whether two key-position lists are identical.
func equalPos(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i, p := range a {
		if p != b[i] {
			return false
		}
	}
	return true
}

// buildPlan compiles the plan for q over the resolved relations.  eq must
// be q's equality classes; pres holds the class representatives whose
// value is fixed before the search starts (constant-bound classes, plus
// the head classes when searching for a specific answer tuple).
//
// Plan compilation is the adaptive runtime's cold-path setup cost, paid
// once per (frozen database, query) and amortized by the prepared-plan
// cache — but on single-shot containment checks there is nothing to
// amortize against, so the compile itself stays lean: two arenas (one
// int, one bool) back every scratch table and every step's key-position
// list, and index-slot sharing compares position lists directly instead
// of building signature strings.
func buildPlan(q *Query, rels []*instance.Relation, relIdxs []int, eq *EqClasses, pres []prebinding) *searchPlan {
	n := len(q.Body)
	plan := &searchPlan{classOf: make(map[Var]int32, 2*n)}
	total := 0
	for _, a := range q.Body {
		total += len(a.Vars)
	}
	backing := make([]int32, 2*total)
	roots := make([][]int32, n)
	for i, a := range q.Body {
		roots[i], backing = backing[:len(a.Vars):len(a.Vars)], backing[len(a.Vars):]
		for p, v := range a.Vars {
			root := eq.Find(v)
			id, ok := plan.classOf[root]
			if !ok {
				id = int32(plan.numClasses)
				plan.classOf[root] = id
				plan.numClasses++
			}
			roots[i][p] = id
		}
	}
	nc := plan.numClasses
	// Bool arena: the prebound set, the head-dedup set, the ordering
	// bound scratch (rewritten whole per component by a copy), and one
	// placed flag per atom (carved disjointly per component).
	bools := make([]bool, 3*nc+n)
	preboundID := bools[:nc:nc]
	seen := bools[nc : 2*nc : 2*nc]
	boundScratch := bools[2*nc : 3*nc : 3*nc]
	placedArena := bools[3*nc:]
	for _, pb := range pres {
		if id, ok := plan.classOf[pb.root]; ok {
			preboundID[id] = true
		}
	}

	// Union-find over atoms: two atoms connect when they share an
	// unbound class.  Classes fixed before the search carry no join
	// constraint between atoms — each atom filters against the fixed
	// value independently.  The int arena backs the union-find, the
	// component grouping (CSR: comp ci's atoms are atomList
	// [compStart[ci]:compStart[ci+1]], in body order), and the steps'
	// key-position lists.
	ints := make([]int, 5*n+nc+total+1)
	parent, ints := ints[:n:n], ints[n:]
	for i := range parent {
		parent[i] = i
	}
	firstAtomOf, ints := ints[:nc:nc], ints[nc:]
	for i := range firstAtomOf {
		firstAtomOf[i] = -1
	}
	for i := range q.Body {
		for _, id := range roots[i] {
			if preboundID[id] {
				continue
			}
			if j := firstAtomOf[id]; j >= 0 {
				ri, rj := ufFind(parent, i), ufFind(parent, j)
				if ri != rj {
					parent[ri] = rj
				}
			} else {
				firstAtomOf[id] = i
			}
		}
	}

	// Group atoms into components ordered by first appearance: number
	// the component roots, count, prefix-sum, place.
	compOf, ints := ints[:n:n], ints[n:]
	for i := range compOf {
		compOf[i] = -1
	}
	ncomps := 0
	for i := 0; i < n; i++ {
		if root := ufFind(parent, i); compOf[root] < 0 {
			compOf[root] = ncomps
			ncomps++
		}
	}
	compStart, ints := ints[:ncomps+1:ncomps+1], ints[ncomps+1:]
	for i := 0; i < n; i++ {
		compStart[compOf[ufFind(parent, i)]+1]++
	}
	for ci := 0; ci < ncomps; ci++ {
		compStart[ci+1] += compStart[ci]
	}
	atomList, ints := ints[:n:n], ints[n:]
	next, ints := ints[:ncomps:ncomps], ints[ncomps:]
	copy(next, compStart[:ncomps])
	for i := 0; i < n; i++ {
		ci := compOf[ufFind(parent, i)]
		atomList[next[ci]] = i
		next[ci]++
	}
	keyArena := ints

	plan.comps = make([]planComponent, ncomps)
	stepsArena := make([]planStep, n)
	rootComp := backing[:nc]
	for i := range rootComp {
		rootComp[i] = -1
	}
	for ci := 0; ci < ncomps; ci++ {
		atoms := atomList[compStart[ci]:compStart[ci+1]]
		plan.comps[ci], keyArena = orderComponent(atoms, rels, relIdxs, roots, preboundID,
			boundScratch, placedArena[compStart[ci]:compStart[ci+1]],
			stepsArena[compStart[ci]:compStart[ci]:compStart[ci+1]], keyArena)
		for _, ai := range atoms {
			for _, id := range roots[ai] {
				if !preboundID[id] {
					rootComp[id] = int32(ci)
				}
			}
		}
	}

	// Steps matching the same relation on the same key positions share
	// one hash index; resolve the slot assignment now so the search's
	// probe path is a slice access.  Relations at or under
	// smallRelScanThreshold tuples scan instead — walking a handful of
	// tuples is cheaper than building a bucket map for them.
	slotSteps := make([]*planStep, 0, n)
	for ci := range plan.comps {
		for si := range plan.comps[ci].steps {
			st := &plan.comps[ci].steps[si]
			if len(st.keyPos) == 0 || st.rel.Len() <= smallRelScanThreshold {
				st.indexSlot = -1
				continue
			}
			st.indexSlot = -1
			for slot, have := range slotSteps {
				if have.rel == st.rel && equalPos(have.keyPos, st.keyPos) {
					st.indexSlot = slot
					break
				}
			}
			if st.indexSlot < 0 {
				st.indexSlot = len(slotSteps)
				slotSteps = append(slotSteps, st)
			}
		}
	}
	plan.numSlots = len(slotSteps)

	// Assign head classes to the component that determines them.
	for _, t := range q.Head {
		if t.IsConst {
			continue
		}
		id, ok := plan.classOf[eq.Find(t.Var)]
		if !ok || preboundID[id] || seen[id] {
			// A head variable always occurs in the body, so its class is
			// either numbered or prebound; be defensive and skip rather
			// than panic on unvalidated queries.
			continue
		}
		seen[id] = true
		if ci := rootComp[id]; ci >= 0 {
			c := &plan.comps[ci]
			c.headRoots = append(c.headRoots, id)
		}
	}
	return plan
}

// orderComponent fixes the matching order of one component's atoms:
// repeatedly pick the unplaced atom with the most bound positions,
// breaking ties by smaller relation cardinality, then original body
// order.  Each step records its bound positions as the index key.
// bound is scratch rewritten whole by the preboundID copy; placed and
// steps are this component's disjoint carvings of the caller's arenas;
// keyArena backs the steps' key-position lists, with the unconsumed
// tail returned.
func orderComponent(atoms []int, rels []*instance.Relation, relIdxs []int, roots [][]int32, preboundID []bool,
	bound, placed []bool, steps []planStep, keyArena []int) (planComponent, []int) {
	copy(bound, preboundID)
	for k := range placed {
		placed[k] = false
	}
	comp := planComponent{steps: steps}
	for len(comp.steps) < len(atoms) {
		best, bestK, bestBound, bestCard := -1, -1, -1, 0
		for k, ai := range atoms {
			if placed[k] {
				continue
			}
			b := 0
			for _, id := range roots[ai] {
				if bound[id] {
					b++
				}
			}
			card := rels[ai].Len()
			if b > bestBound || (b == bestBound && card < bestCard) {
				best, bestK, bestBound, bestCard = ai, k, b, card
			}
		}
		placed[bestK] = true
		step := planStep{atom: best, rel: rels[best], relIdx: relIdxs[best], roots: roots[best]}
		nk := 0
		for _, id := range roots[best] {
			if bound[id] {
				nk++
			}
		}
		step.keyPos, keyArena = keyArena[:0:nk], keyArena[nk:]
		for p, id := range roots[best] {
			if bound[id] {
				step.keyPos = append(step.keyPos, p)
			}
		}
		for _, id := range roots[best] {
			bound[id] = true
		}
		comp.steps = append(comp.steps, step)
	}
	return comp, keyArena
}
