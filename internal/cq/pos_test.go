package cq

import (
	"strings"
	"testing"
)

func TestParsePositionsOnNodes(t *testing.T) {
	//          1234567890123456789012345678901234567890
	text := "Q(X, Y) :- R(X, Z), S(W, Y), Z = W, X = T1:3."
	q, err := Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	if q.Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("query pos = %v, want 1:1", q.Pos)
	}
	if got := q.Body[0].Pos; got != (Pos{Line: 1, Col: 12}) {
		t.Errorf("atom R pos = %v, want 1:12", got)
	}
	if got := q.Body[1].Pos; got != (Pos{Line: 1, Col: 21}) {
		t.Errorf("atom S pos = %v, want 1:21", got)
	}
	if got := q.Body[0].VarPosition(1); got != (Pos{Line: 1, Col: 17}) {
		t.Errorf("placeholder Z pos = %v, want 1:17", got)
	}
	if got := q.Eqs[0].Pos; got != (Pos{Line: 1, Col: 30}) {
		t.Errorf("equality Z = W pos = %v, want 1:30", got)
	}
	if got := q.Eqs[1].Pos; got != (Pos{Line: 1, Col: 37}) {
		t.Errorf("equality X = T1:3 pos = %v, want 1:37", got)
	}
	if got := q.Eqs[1].Right.Pos; got != (Pos{Line: 1, Col: 41}) {
		t.Errorf("constant T1:3 pos = %v, want 1:41", got)
	}
	if got := q.Head[1].Pos; got != (Pos{Line: 1, Col: 6}) {
		t.Errorf("head term Y pos = %v, want 1:6", got)
	}
}

func TestParseAtOffsetsPositions(t *testing.T) {
	q, err := ParseAt("Q(X) :- R(X, Y).", Pos{Line: 7, Col: 3})
	if err != nil {
		t.Fatal(err)
	}
	if q.Pos != (Pos{Line: 7, Col: 3}) {
		t.Errorf("query pos = %v, want 7:3", q.Pos)
	}
	if got := q.Body[0].Pos; got != (Pos{Line: 7, Col: 11}) {
		t.Errorf("atom pos = %v, want 7:11", got)
	}
}

func TestParseMultiLinePositions(t *testing.T) {
	q, err := Parse("Q(X) :-\n  R(X, Y),\n  Y = T2:5.")
	if err != nil {
		t.Fatal(err)
	}
	if got := q.Body[0].Pos; got != (Pos{Line: 2, Col: 3}) {
		t.Errorf("atom pos = %v, want 2:3", got)
	}
	if got := q.Eqs[0].Pos; got != (Pos{Line: 3, Col: 3}) {
		t.Errorf("equality pos = %v, want 3:3", got)
	}
}

func TestParseErrorCoordinates(t *testing.T) {
	cases := []struct {
		text string
		pos  Pos
		sub  string
	}{
		//           123456789012345678901234567
		{"Q(X) :- P(X, T1:1).", Pos{1, 14}, "constant"},
		{"Q(X) :- P(X,, Y).", Pos{1, 13}, "empty argument"},
		{"Q(X(Y)) :- P(X, Y).", Pos{1, 3}, "bad head term"},
		{"Q(X) :- P(X, Y), = Y.", Pos{1, 18}, "bad equality"},
		{"Q(X) :- P(X, Y), T1:1 = T1:2.", Pos{1, 18}, "no variable"},
		{"Q(X) :- .", Pos{1, 1}, "empty body"},
		{"Q(X)", Pos{1, 1}, "missing \":-\""},
	}
	for _, c := range cases {
		_, err := Parse(c.text)
		if err == nil {
			t.Errorf("Parse(%q): no error", c.text)
			continue
		}
		pe, ok := err.(*ParseError)
		if !ok {
			t.Errorf("Parse(%q): error %T is not a *ParseError: %v", c.text, err, err)
			continue
		}
		if pe.Pos != c.pos {
			t.Errorf("Parse(%q): error at %v, want %v (%v)", c.text, pe.Pos, c.pos, err)
		}
		if !strings.Contains(pe.Msg, c.sub) {
			t.Errorf("Parse(%q): message %q missing %q", c.text, pe.Msg, c.sub)
		}
		if !strings.Contains(err.Error(), pe.Pos.String()) {
			t.Errorf("Parse(%q): rendered error %q omits position", c.text, err)
		}
	}
}

func TestClonePreservesPositions(t *testing.T) {
	q := MustParse("Q(X) :- R(X, Y), Y = T2:5.")
	c := q.Clone()
	if c.Body[0].Pos != q.Body[0].Pos || c.Body[0].VarPosition(1) != q.Body[0].VarPosition(1) {
		t.Error("Clone dropped atom positions")
	}
	if c.Eqs[0].Pos != q.Eqs[0].Pos {
		t.Error("Clone dropped equality positions")
	}
}
