package cq

import (
	"sort"

	"keyedeq/internal/value"
)

// SchemaAttr names an attribute of the underlying schema: relation name
// plus attribute position.  The receives analysis relates head attributes
// of a query to these.
type SchemaAttr struct {
	Rel string
	Pos int
}

// Received describes what one head attribute of a query receives, per the
// paper's definition: the set of schema attributes whose body locations
// its variable's equality class touches, and/or a constant.
type Received struct {
	// Attrs are the schema attributes received, sorted and deduplicated.
	// Empty when the head term is a pure constant.
	Attrs []SchemaAttr
	// Const is the constant received (set when the head term is a
	// constant symbol, or when the head variable's class is bound to a
	// constant by a selection).
	Const    value.Value
	HasConst bool
}

// ReceivesAttr reports whether the head attribute receives schema
// attribute (rel, pos).
func (r Received) ReceivesAttr(rel string, pos int) bool {
	for _, a := range r.Attrs {
		if a.Rel == rel && a.Pos == pos {
			return true
		}
	}
	return false
}

// Receives computes, for each head position of q, what it receives.  An
// attribute can receive multiple distinct attributes (the paper's example:
// R(X,Y,Z) :- P(X,Y), Q(T,Z), Y = T gives head 2 both P.2 and Q.1).
func Receives(q *Query) []Received {
	eq := NewEqClasses(q)
	positions := eq.Positions(q)
	out := make([]Received, len(q.Head))
	for i, t := range q.Head {
		if t.IsConst {
			out[i] = Received{Const: t.Const, HasConst: true}
			continue
		}
		root := eq.Find(t.Var)
		var rec Received
		seen := make(map[SchemaAttr]bool)
		for _, cp := range positions[root] {
			sa := SchemaAttr{Rel: q.Body[cp.Atom].Rel, Pos: cp.Pos}
			if !seen[sa] {
				seen[sa] = true
				rec.Attrs = append(rec.Attrs, sa)
			}
		}
		sort.Slice(rec.Attrs, func(a, b int) bool {
			if rec.Attrs[a].Rel != rec.Attrs[b].Rel {
				return rec.Attrs[a].Rel < rec.Attrs[b].Rel
			}
			return rec.Attrs[a].Pos < rec.Attrs[b].Pos
		})
		if c, ok := eq.Const(t.Var); ok {
			rec.Const = c
			rec.HasConst = true
		}
		out[i] = rec
	}
	return out
}

// InvolvedInCondition reports whether schema attribute (rel, pos) is
// involved in any selection or join condition in q: some occurrence of rel
// has its pos-th variable in a class that is bound to a constant or that
// contains another body location.  Lemma 7's hypothesis ("B is involved in
// a join or selection condition in the body of some query in β") is this
// predicate.
func InvolvedInCondition(q *Query, rel string, pos int) bool {
	eq := NewEqClasses(q)
	positions := eq.Positions(q)
	for i, a := range q.Body {
		if a.Rel != rel || pos >= len(a.Vars) {
			continue
		}
		v := a.Vars[pos]
		if _, bound := eq.Const(v); bound {
			return true
		}
		if len(positions[eq.Find(v)]) > 1 {
			return true
		}
		_ = i
	}
	return false
}
