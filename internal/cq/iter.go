package cq

import (
	"context"

	"keyedeq/internal/instance"
	"keyedeq/internal/obs"
	"keyedeq/internal/value"
)

// This file is the streamed homomorphism-search runtime: the plan's
// steps become a pipeline of composable streaming operators over the
// database's frozen (interned) view —
//
//   - scan: positional cursor over a FrozenRelation's rows;
//   - indexed lookup: cursor over the row list of a pre-sized hash
//     index bucket keyed by the step's bound positions;
//   - join/selection: tryBind, which extends the dense class binding
//     with a candidate row (hash-join probe on the key positions plus
//     residual equality selection on repeated classes) and unwinds by
//     mark on backtrack;
//   - projection: the witness decode at the return boundary, where IDs
//     turn back into surface values.
//
// Each pipeline depth is one open cursor; the driver pulls the next
// candidate from the deepest cursor, so item A's depth-3 work never
// waits on item B's depth-1 work and nothing is materialized beyond
// the indexes.  The operator contracts are pinned in DESIGN.md §15.
//
// The runtime is differential-tested to be bit-identical — verdicts,
// EvalStats (Nodes and CompNodes), and witnesses — to both oracles:
// SearchPlanned (generic values) and SearchInterned (recursive ID
// search).  That holds because all three share one plan, enumerate
// candidates in row order (hash buckets are filled in row order; the
// interned sorted index breaks key ties by row number), and count a
// node for every candidate pulled, before tryBind, under the same
// cancelCheckMask polling contract.

// streamIndex is one pre-sized hash index shared by the plan steps of
// an index slot.  A key resolves to a dense bucket id — single-position
// keys hash the value.ID itself, wider keys the encoded byte-string
// via the compiler's zero-alloc inline string(bytes) probe — and the
// bucket's row list lives in one flat CSR layout: bucket b is
// rows[starts[b]:starts[b+1]], filled in row order.  The maps are
// pre-sized to the relation's row count (the upper bound on distinct
// keys), so the build never rehashes, and the flat row array replaces
// the per-key append chains a map of slices would grow one realloc at
// a time.
type streamIndex struct {
	built  bool
	oneIDs map[value.ID]int32
	keyIDs map[string]int32
	starts []int32
	rows   []int32
}

// bucket returns bucket bid's row list, in row order.
func (idx *streamIndex) bucket(bid int32) []int32 {
	return idx.rows[idx.starts[bid]:idx.starts[bid+1]]
}

// stepCursor is one open operator of the pipeline: a positional scan
// (indexed == false, positions [pos, n)) or an indexed lookup over a
// bucket's row list.
type stepCursor struct {
	rows    []int32
	pos     int
	n       int
	indexed bool
}

// streamSearcher carries the mutable state of one streamed search: the
// shared ID-search core plus the hash indexes and the cursor stack of
// the pipeline driver.
type streamSearcher struct {
	idSearchCore
	plan *searchPlan
	idx  []streamIndex
	// keyBuf is the reusable scratch for wide-key encoding.
	keyBuf []byte
	// cursors and marks hold one open cursor and one addedStack mark
	// per pipeline depth, sized to the widest component.
	cursors []stepCursor
	marks   []int
}

func newStreamSearcher(ctx context.Context, plan *searchPlan, fz *instance.Frozen, stats *EvalStats) *streamSearcher {
	maxSteps := 0
	for ci := range plan.comps {
		if n := len(plan.comps[ci].steps); n > maxSteps {
			maxSteps = n
		}
	}
	return &streamSearcher{
		idSearchCore: idSearchCore{
			ctx:     ctx,
			fz:      fz,
			binding: make([]value.ID, plan.numClasses),
			bound:   make([]bool, plan.numClasses),
			stats:   stats,
		},
		plan:    plan,
		idx:     make([]streamIndex, plan.numSlots),
		cursors: make([]stepCursor, maxSteps),
		marks:   make([]int, maxSteps),
	}
}

// appendIDKey encodes one ID into the wide-key scratch buffer.
func appendIDKey(b []byte, id value.ID) []byte {
	return append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
}

// keyPosSig encodes a step's key-position list as the frozen view's
// index-memo signature.  Positions are relation arities, so one byte
// each is plenty.
func keyPosSig(keyPos []int) string {
	b := make([]byte, len(keyPos))
	for i, p := range keyPos {
		b[i] = byte(p)
	}
	return string(b)
}

// buildIndex resolves the step's hash index, memoized on the frozen
// relation: the index is a pure function of the rows and the key
// positions, so every search against one frozen view — including the
// parallel component workers and entirely separate queries — shares a
// single build.  On a miss the fill runs in row order, so bucket row
// lists enumerate candidates exactly as the generic search's buckets
// and the interned search's sorted ranges do, and it honors the same
// masked polling contract; on cancellation the partial index is
// discarded, not memoized, and the next searcher builds afresh.
func (s *streamSearcher) buildIndex(st *planStep, fr *instance.FrozenRelation) bool {
	v, ok := fr.IndexMemo(keyPosSig(st.keyPos), func() (any, bool) {
		if idx := s.fillIndex(st, fr); idx != nil {
			return idx, true
		}
		return nil, false
	})
	if !ok {
		return false
	}
	s.idx[st.indexSlot] = *v.(*streamIndex)
	return true
}

// fillIndex builds the step's hash index from scratch; nil means the
// fill was cancelled mid-scan.  The keying pass assigns every row a
// dense bucket id (first-occurrence order) and the placement pass
// prefix-sums the bucket sizes and drops each row into its bucket's
// next slot — ascending row order in, ascending row order per bucket
// out, the enumeration order the oracle runtimes pin.
func (s *streamSearcher) fillIndex(st *planStep, fr *instance.FrozenRelation) *streamIndex {
	n := fr.NumRows()
	idx := streamIndex{built: true}
	rowBid := make([]int32, n)
	var nBuckets int32
	if len(st.keyPos) == 1 {
		p := st.keyPos[0]
		oneIDs := make(map[value.ID]int32, n)
		for i := 0; i < n; i++ {
			if i&cancelCheckMask == cancelCheckMask {
				if err := s.ctx.Err(); err != nil {
					s.canceled = err
					return nil
				}
			}
			id := fr.Cell(i, p)
			bid, ok := oneIDs[id]
			if !ok {
				bid = nBuckets
				nBuckets++
				oneIDs[id] = bid
			}
			rowBid[i] = bid
		}
		idx.oneIDs = oneIDs
	} else {
		keyIDs := make(map[string]int32, n)
		for i := 0; i < n; i++ {
			if i&cancelCheckMask == cancelCheckMask {
				if err := s.ctx.Err(); err != nil {
					s.canceled = err
					return nil
				}
			}
			s.keyBuf = s.keyBuf[:0]
			for _, p := range st.keyPos {
				s.keyBuf = appendIDKey(s.keyBuf, fr.Cell(i, p))
			}
			bid, ok := keyIDs[string(s.keyBuf)]
			if !ok {
				bid = nBuckets
				nBuckets++
				keyIDs[string(s.keyBuf)] = bid
			}
			rowBid[i] = bid
		}
		idx.keyIDs = keyIDs
	}
	starts := make([]int32, nBuckets+1)
	for _, bid := range rowBid {
		starts[bid+1]++
	}
	for b := int32(0); b < nBuckets; b++ {
		starts[b+1] += starts[b]
	}
	rows := make([]int32, n)
	next := make([]int32, nBuckets)
	copy(next, starts[:nBuckets])
	for i, bid := range rowBid {
		rows[next[bid]] = int32(i)
		next[bid]++
	}
	idx.starts, idx.rows = starts, rows
	return &idx
}

// openCursor opens the pipeline operator for steps[depth] under the
// current binding: a positional scan when the step has no index slot,
// otherwise an indexed lookup over the (possibly empty) bucket of the
// step's key.  It returns false only on cancellation (during a lazy
// index build).
func (s *streamSearcher) openCursor(steps []planStep, depth int) bool {
	st := &steps[depth]
	c := &s.cursors[depth]
	fr := s.fz.Relations[st.relIdx]
	if st.indexSlot < 0 {
		c.rows, c.pos, c.n, c.indexed = nil, 0, fr.NumRows(), false
		return true
	}
	if !s.idx[st.indexSlot].built && !s.buildIndex(st, fr) {
		return false
	}
	idx := &s.idx[st.indexSlot]
	var rows []int32
	if idx.oneIDs != nil {
		if bid, ok := idx.oneIDs[s.binding[st.roots[st.keyPos[0]]]]; ok {
			rows = idx.bucket(bid)
		}
	} else {
		s.keyBuf = s.keyBuf[:0]
		for _, p := range st.keyPos {
			s.keyBuf = appendIDKey(s.keyBuf, s.binding[st.roots[p]])
		}
		if bid, ok := idx.keyIDs[string(s.keyBuf)]; ok {
			rows = idx.bucket(bid)
		}
	}
	c.rows, c.pos, c.n, c.indexed = rows, 0, 0, true
	return true
}

// runPipeline streams one component's steps to the first full match,
// leaving the successful bindings in place.  The explicit cursor stack
// replaces the oracle runtimes' recursion: pulling the next candidate,
// counting it, binding it, and descending visits exactly the node
// sequence findFrom (search_interned.go) visits.
//
//keyedeq:hot -- the streamed pipeline driver: every candidate is one cursor pull plus ID-compare binds
func (s *streamSearcher) runPipeline(steps []planStep) bool {
	if len(steps) == 0 {
		return true
	}
	if !s.openCursor(steps, 0) {
		return false
	}
	depth := 0
	for {
		c := &s.cursors[depth]
		var ri int
		if c.indexed {
			if c.pos == len(c.rows) {
				if depth == 0 {
					return false
				}
				depth--
				s.unbindTo(s.marks[depth])
				continue
			}
			ri = int(c.rows[c.pos])
		} else {
			if c.pos == c.n {
				if depth == 0 {
					return false
				}
				depth--
				s.unbindTo(s.marks[depth])
				continue
			}
			ri = c.pos
		}
		c.pos++
		if !s.countNode() {
			return false
		}
		st := &steps[depth]
		s.marks[depth] = len(s.addedStack)
		if !s.tryBind(st, s.fz.Relations[st.relIdx], ri) {
			s.unbindTo(s.marks[depth])
			continue
		}
		if depth == len(steps)-1 {
			return true
		}
		depth++
		if !s.openCursor(steps, depth) {
			return false
		}
	}
}

// findAnswerStreamed is the SearchStreamed implementation behind
// FindAnswerBindingCtx: identical prologue and component loop to
// findAnswerInterned, with the recursive search replaced by the
// streamed pipeline.  It always runs the pipeline sequentially — the
// adaptive mode (adaptive.go) layers the cost-based scan choice and
// parallel component search on top of it.
//
//keyedeq:hot -- the streamed homomorphism search backs the adaptive default's planned arm
func findAnswerStreamed(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return false, nil, stats, nil
	}
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		return false, nil, stats, err
	}
	pres, earlyMiss := streamPrebindings(q, eq, want)
	if earlyMiss {
		return false, nil, stats, nil
	}
	plan := buildStreamPlan(ctx, q, rels, relIdxs, eq, pres)
	s := newStreamSearcher(ctx, plan, d.Frozen(), &stats)
	for _, pb := range pres {
		if id, ok := plan.classOf[pb.root]; ok {
			s.binding[id] = s.internID(pb.val)
			s.bound[id] = true
		}
	}
	ok, err := runComponentsSequential(s, plan)
	if err != nil || !ok {
		return false, nil, stats, err
	}
	return true, decodeWitness(&s.idSearchCore, plan, q, eq), stats, nil
}

// streamPrebindings collects the constant prebindings plus the head
// classes pinned to want.  The checks run at the surface-value level,
// before any interning, so impossible wants short-circuit exactly as
// in the generic search; earlyMiss reports such a contradiction.
func streamPrebindings(q *Query, eq *EqClasses, want instance.Tuple) (pres []prebinding, earlyMiss bool) {
	pres = collectConstPrebindings(q, eq, make([]prebinding, 0, len(q.Head)+2))
	for i, term := range q.Head {
		if term.IsConst {
			if term.Const != want[i] {
				return nil, true
			}
			continue
		}
		root := eq.Find(term.Var)
		if bv, ok := lookupPre(pres, root); ok {
			if bv != want[i] {
				return nil, true
			}
			continue
		}
		pres = append(pres, prebinding{root: root, val: want[i]})
	}
	return pres, false
}

// buildStreamPlan compiles the plan and emits the plan-stage span the
// oracle runtimes emit, keeping per-stage traces comparable across
// modes.
func buildStreamPlan(ctx context.Context, q *Query, rels []*instance.Relation, relIdxs []int, eq *EqClasses, pres []prebinding) *searchPlan {
	o := obs.FromContext(ctx)
	planStart := o.Time()
	plan := buildPlan(q, rels, relIdxs, eq, pres)
	if o.SpansOn() {
		steps := 0
		for ci := range plan.comps {
			steps += len(plan.comps[ci].steps)
		}
		o.EmitSpan(ctx, obs.StagePlan, planStart, nil,
			obs.I("components", int64(len(plan.comps))),
			obs.I("steps", int64(steps)))
	}
	return plan
}

// runComponentsSequential searches the plan's components in order over
// one searcher, recording per-component node counts.  A miss or a
// cancellation in an earlier component ends the search, so the
// recorded entries always sum to Nodes.
func runComponentsSequential(s *streamSearcher, plan *searchPlan) (bool, error) {
	for ci := range plan.comps {
		before := s.stats.Nodes
		found := s.runPipeline(plan.comps[ci].steps)
		s.stats.CompNodes = append(s.stats.CompNodes, s.stats.Nodes-before)
		if !found {
			return false, s.canceled
		}
	}
	return true, nil
}

// decodeWitness projects the successful bindings back to surface
// values, per body variable through its class representative — the
// boundary past which no interned ID may escape.
func decodeWitness(core *idSearchCore, plan *searchPlan, q *Query, eq *EqClasses) map[Var]value.Value {
	witness := make(map[Var]value.Value)
	for _, a := range q.Body {
		for _, v := range a.Vars {
			witness[v] = core.decodeID(core.binding[plan.classOf[eq.Find(v)]])
		}
	}
	return witness
}
