package cq

import (
	"context"
	"strconv"

	"keyedeq/internal/instance"
	"keyedeq/internal/obs"
	"keyedeq/internal/value"
)

// This file runs the planned, indexed homomorphism search compiled by
// plan.go: per-relation hash indexes keyed by the positions bound at
// each step, matched component by component.  It threads the same
// EvalStats.Nodes accounting and cancelCheckMask context polling as the
// naive backtracking search in eval.go, so engine timeouts and stats
// behave identically across modes.

// SearchMode selects the homomorphism search implementation.
type SearchMode int

const (
	// SearchPlanned is the generic indexed search: most-constrained-first
	// join order with component decomposition over value-keyed hash
	// indexes.  It is the differential oracle for the interned search
	// and remains selectable as the generic fallback.
	SearchPlanned SearchMode = iota
	// SearchNaive is the reference implementation: source-order dynamic
	// atom picking with full relation scans.  It exists for differential
	// testing and the planned-vs-naive benchmark record.
	SearchNaive
	// SearchInterned runs the planned search over the database's frozen
	// (interned) view: dense value.ID bindings, flat ID rows, and
	// allocation-free ID-keyed probes.  It visits exactly the nodes the
	// generic planned search visits (same plan, same candidate order);
	// only the tuple representation differs (search_interned.go).
	SearchInterned
	// SearchStreamed runs the plan as a pipeline of composable
	// streaming iterators over the frozen view — positional scans,
	// pre-sized hash-index lookups, and mark-unwound hash-join binds
	// driven by an explicit cursor stack (iter.go).  It is bit-identical
	// to SearchPlanned and SearchInterned in verdicts, EvalStats, and
	// witnesses; the oracles differ only in candidate machinery.
	SearchStreamed
	// SearchAdaptive layers a cost model over SearchStreamed: per query
	// and database it chooses between the streamed pipeline and the
	// dense ID scan (the naive search's dynamic atom order over frozen
	// rows — scan_id.go), and searches the pipeline's connected
	// components in parallel when the estimated work justifies it
	// (cost.go, adaptive.go).  It is the default.
	SearchAdaptive
)

// SearchDefault is the mode used by every entry point that does not
// take an explicit mode.  It is a variable so command layers can pin a
// specific runtime (-search, -generic-search); set it at startup only —
// concurrent mutation during a run is not supported.
var SearchDefault = SearchAdaptive

// String renders the mode tag used in benchmark tables and spans.
func (m SearchMode) String() string {
	switch m {
	case SearchNaive:
		return "naive"
	case SearchInterned:
		return "interned"
	case SearchStreamed:
		return "streamed"
	case SearchAdaptive:
		return "adaptive"
	}
	return "planned"
}

// searcher carries the mutable state of one planned search.  Bindings
// live in flat slices indexed by plan class id — the hot path hashes
// nothing but the index-probe keys.
type searcher struct {
	ctx      context.Context
	plan     *searchPlan
	binding  []value.Value
	bound    []bool
	stats    *EvalStats
	canceled error
	// indexes1 holds one lazily built bucket map per plan index slot;
	// steps sharing a slot share the index.  Single-position keys use
	// indexes1 (keyed by the value itself, no encoding).  Wider keys use
	// a two-level index: keyIDs maps the encoded byte-string key to a
	// dense bucket id — the string is materialized once per distinct
	// key, and every probe goes through the compiler's zero-alloc
	// inline string(bytes) conversion — and buckets[slot][id] holds that
	// key's tuples.
	indexes1 []map[value.Value][]instance.Tuple
	keyIDs   []map[string]int32
	buckets  [][][]instance.Tuple
	// keyBuf is the reusable scratch for probe-key encoding.
	keyBuf []byte
	// addedStack records newly bound class ids in binding order, shared
	// by every recursion level: tryBind pushes, unbindTo truncates back
	// to a caller's mark.  One reusable stack replaces a fresh slice per
	// node visit.
	addedStack []int32
}

func newSearcher(ctx context.Context, plan *searchPlan, stats *EvalStats) *searcher {
	return &searcher{
		ctx:      ctx,
		plan:     plan,
		binding:  make([]value.Value, plan.numClasses),
		bound:    make([]bool, plan.numClasses),
		stats:    stats,
		indexes1: make([]map[value.Value][]instance.Tuple, plan.numSlots),
		keyIDs:   make([]map[string]int32, plan.numSlots),
		buckets:  make([][][]instance.Tuple, plan.numSlots),
	}
}

// prebinding fixes one equality class's value before the search starts
// (a constant from the equality list, or a wanted head value).  The
// slice stays tiny, so lookups are linear scans rather than map probes.
type prebinding struct {
	root Var
	val  value.Value
}

// lookupPre returns the prebound value of root, if any.
func lookupPre(pres []prebinding, root Var) (value.Value, bool) {
	for _, pb := range pres {
		if pb.root == root {
			return pb.val, true
		}
	}
	return value.Value{}, false
}

// collectConstPrebindings gathers the constant-bound classes touched by
// the body into pres (deduplicated by representative).
func collectConstPrebindings(q *Query, eq *EqClasses, pres []prebinding) []prebinding {
	for _, a := range q.Body {
		for _, v := range a.Vars {
			if c, ok := eq.Const(v); ok {
				root := eq.Find(v)
				if _, seen := lookupPre(pres, root); !seen {
					pres = append(pres, prebinding{root: root, val: c})
				}
			}
		}
	}
	return pres
}

// prebind seeds the binding slices from root-variable values fixed
// before the search (constants and wanted head values).
func (s *searcher) prebind(pres []prebinding) {
	for _, pb := range pres {
		if id, ok := s.plan.classOf[pb.root]; ok {
			s.binding[id] = pb.val
			s.bound[id] = true
		}
	}
}

// appendValue encodes one value into an index key.
func appendValue(b []byte, v value.Value) []byte {
	b = strconv.AppendInt(b, int64(v.Type), 10)
	b = append(b, ':')
	b = strconv.AppendInt(b, v.N, 10)
	b = append(b, '|')
	return b
}

// candidates returns the tuples step st can match given the current
// binding: the full (memoized) sorted order when the step has no bound
// positions, else the step's index bucket for the bound values.
func (s *searcher) candidates(st *planStep) []instance.Tuple {
	if st.indexSlot < 0 {
		return st.rel.Tuples()
	}
	if len(st.keyPos) == 1 {
		p := st.keyPos[0]
		idx := s.indexes1[st.indexSlot]
		if idx == nil {
			idx = make(map[value.Value][]instance.Tuple, st.rel.Len())
			for i, t := range st.rel.Tuples() {
				// Index builds scan whole relations, so they honor the
				// same masked polling contract as node visits: one poll
				// at the end of each cancelCheckMask+1-tuple window
				// (small relations never poll).  On cancellation the
				// partial index is discarded, not stored: a later retry
				// must rebuild it in full rather than probe a map
				// missing half the relation.
				if i&cancelCheckMask == cancelCheckMask {
					if err := s.ctx.Err(); err != nil {
						s.canceled = err
						return nil
					}
				}
				idx[t[p]] = append(idx[t[p]], t)
			}
			s.indexes1[st.indexSlot] = idx
		}
		return idx[s.binding[st.roots[p]]]
	}
	ids := s.keyIDs[st.indexSlot]
	if ids == nil {
		ids = make(map[string]int32, st.rel.Len())
		bks := make([][]instance.Tuple, 0, st.rel.Len())
		for i, t := range st.rel.Tuples() {
			if i&cancelCheckMask == cancelCheckMask {
				if err := s.ctx.Err(); err != nil {
					s.canceled = err
					return nil
				}
			}
			// Encode into the shared scratch and resolve the key through
			// the zero-alloc inline probe; the key string is materialized
			// only on first insert — once per distinct key, not per tuple.
			b := s.keyBuf[:0]
			for _, p := range st.keyPos {
				b = appendValue(b, t[p])
			}
			s.keyBuf = b
			bid, ok := ids[string(b)]
			if !ok {
				bid = int32(len(bks))
				ids[string(b)] = bid
				bks = append(bks, nil)
			}
			bks[bid] = append(bks[bid], t)
		}
		s.keyIDs[st.indexSlot] = ids
		s.buckets[st.indexSlot] = bks
	}
	b := s.keyBuf[:0]
	for _, p := range st.keyPos {
		b = appendValue(b, s.binding[st.roots[p]])
	}
	s.keyBuf = b
	bid, ok := ids[string(b)]
	if !ok {
		return nil
	}
	return s.buckets[st.indexSlot][bid]
}

// tryBind extends the binding with tuple t at step st, pushing each
// newly bound class id onto addedStack.  It reports whether every
// position was consistent; either way the caller unwinds the partial
// adds with unbindTo(mark) using the stack length it saved beforehand.
func (s *searcher) tryBind(st *planStep, t instance.Tuple) bool {
	for p, id := range st.roots {
		if s.bound[id] {
			if s.binding[id] != t[p] {
				return false
			}
			continue
		}
		s.binding[id] = t[p]
		s.bound[id] = true
		s.addedStack = append(s.addedStack, id)
	}
	return true
}

// unbindTo unwinds every binding pushed since the caller's mark.
func (s *searcher) unbindTo(mark int) {
	for _, id := range s.addedStack[mark:] {
		s.bound[id] = false
	}
	s.addedStack = s.addedStack[:mark]
}

// countNode advances the node counter and polls the context once every
// cancelCheckMask+1 nodes.  It reports whether the search may continue.
// The canceled check comes before the increment: when a poll deep in
// the recursion trips, every unwinding ancestor's candidate loop calls
// countNode once more, and counting those visits would overshoot the
// "observed within cancelCheckMask+1 nodes" contract by the recursion
// depth.
func (s *searcher) countNode() bool {
	if s.canceled != nil {
		return false
	}
	s.stats.Nodes++
	if s.stats.Nodes&cancelCheckMask == 0 {
		if err := s.ctx.Err(); err != nil {
			s.canceled = err
			return false
		}
	}
	return true
}

// findFrom searches for one match of steps[i:], leaving the successful
// bindings in place (the caller reads the witness out of s.binding).
func (s *searcher) findFrom(steps []planStep, i int) bool {
	if i == len(steps) {
		return true
	}
	st := &steps[i]
	for _, t := range s.candidates(st) {
		if !s.countNode() {
			return false
		}
		mark := len(s.addedStack)
		if s.tryBind(st, t) && s.findFrom(steps, i+1) {
			return true
		}
		s.unbindTo(mark)
	}
	return false
}

// eachMatch enumerates every match of steps[i:], calling emit at each
// complete assignment.  emit returns false to stop the enumeration
// early; eachMatch unwinds all bindings before returning either way.
func (s *searcher) eachMatch(steps []planStep, i int, emit func() bool) bool {
	if i == len(steps) {
		return emit()
	}
	st := &steps[i]
	for _, t := range s.candidates(st) {
		if !s.countNode() {
			return false
		}
		mark := len(s.addedStack)
		if s.tryBind(st, t) && !s.eachMatch(steps, i+1, emit) {
			s.unbindTo(mark)
			return false
		}
		s.unbindTo(mark)
	}
	return true
}

// findAnswerPlanned is the planned-search implementation behind
// FindAnswerBindingCtx: pre-bind the wanted head values, then satisfy
// each join-graph component independently.
//
//keyedeq:hot -- the homomorphism search is the inner loop of every containment check
func findAnswerPlanned(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return false, nil, stats, nil
	}
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		return false, nil, stats, err
	}
	pres := collectConstPrebindings(q, eq, make([]prebinding, 0, len(q.Head)+2))
	// Pre-bind head variables to the wanted values; constants and
	// already-bound classes must agree with want.
	for i, term := range q.Head {
		if term.IsConst {
			if term.Const != want[i] {
				return false, nil, stats, nil
			}
			continue
		}
		root := eq.Find(term.Var)
		if bv, ok := lookupPre(pres, root); ok {
			if bv != want[i] {
				return false, nil, stats, nil
			}
			continue
		}
		pres = append(pres, prebinding{root: root, val: want[i]})
	}
	o := obs.FromContext(ctx)
	planStart := o.Time()
	plan := buildPlan(q, rels, relIdxs, eq, pres)
	if o.SpansOn() {
		steps := 0
		for ci := range plan.comps {
			steps += len(plan.comps[ci].steps)
		}
		o.EmitSpan(ctx, obs.StagePlan, planStart, nil,
			obs.I("components", int64(len(plan.comps))),
			obs.I("steps", int64(steps)))
	}
	s := newSearcher(ctx, plan, &stats)
	s.prebind(pres)
	for ci := range plan.comps {
		before := stats.Nodes
		found := s.findFrom(plan.comps[ci].steps, 0)
		stats.CompNodes = append(stats.CompNodes, stats.Nodes-before)
		if !found {
			if s.canceled != nil {
				return false, nil, stats, s.canceled
			}
			return false, nil, stats, nil
		}
	}
	// Every component succeeded with its bindings left in place; resolve
	// the witness per body variable through its class representative.
	witness := make(map[Var]value.Value)
	for _, a := range q.Body {
		for _, v := range a.Vars {
			witness[v] = s.binding[plan.classOf[eq.Find(v)]]
		}
	}
	return true, witness, stats, nil
}

// evalPlanned is the planned-search implementation behind EvalWithStats:
// every component's head projections are enumerated (deduplicated) once,
// head-free components are checked for a single match, and the answer is
// the cross product — so independent components never multiply each
// other's backtracking.
//
//keyedeq:hot -- full-enumeration evaluation visits every match of every component
func evalPlanned(ctx context.Context, q *Query, d *instance.Database, out *instance.Relation) (EvalStats, error) {
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return stats, nil
	}
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		return stats, err
	}
	pres := collectConstPrebindings(q, eq, nil)
	plan := buildPlan(q, rels, relIdxs, eq, pres)
	s := newSearcher(ctx, plan, &stats)
	s.prebind(pres)

	// solutions[i] holds component i's distinct head-class projections
	// (nil for head-free components, which only need one match).
	solutions := make([][][]value.Value, len(plan.comps))
	for ci := range plan.comps {
		comp := &plan.comps[ci]
		before := stats.Nodes
		if len(comp.headRoots) == 0 {
			found := false
			s.eachMatch(comp.steps, 0, func() bool {
				found = true
				return false
			})
			stats.CompNodes = append(stats.CompNodes, stats.Nodes-before)
			if s.canceled != nil {
				return stats, s.canceled
			}
			if !found {
				return stats, nil
			}
			continue
		}
		seen := make(map[string]bool)
		var sols [][]value.Value
		s.eachMatch(comp.steps, 0, func() bool {
			vals := make([]value.Value, len(comp.headRoots))
			b := make([]byte, 0, len(vals)*8)
			for i, id := range comp.headRoots {
				vals[i] = s.binding[id]
				b = appendValue(b, vals[i])
			}
			if k := string(b); !seen[k] {
				seen[k] = true
				sols = append(sols, vals)
			}
			return true
		})
		stats.CompNodes = append(stats.CompNodes, stats.Nodes-before)
		if s.canceled != nil {
			return stats, s.canceled
		}
		if len(sols) == 0 {
			return stats, nil
		}
		solutions[ci] = sols
	}

	// Cross product: fix one projection per head-bearing component, then
	// emit the head tuple (constant-bound classes read from the initial
	// binding, which the per-component searches restored on unwind).
	// The product can dwarf the per-component searches (k components of
	// n solutions emit n^k tuples), so it polls the context on its own
	// emission counter — deliberately not stats.Nodes, which counts only
	// search-tree assignments and must stay comparable across modes.
	var emitted int64
	var emit func(ci int) bool
	emit = func(ci int) bool {
		for ci < len(plan.comps) && solutions[ci] == nil {
			ci++
		}
		if ci == len(plan.comps) {
			emitted++
			if emitted&cancelCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					s.canceled = err
					return false
				}
			}
			t := make(instance.Tuple, len(q.Head))
			for i, term := range q.Head {
				if term.IsConst {
					t[i] = term.Const
					continue
				}
				t[i] = s.binding[plan.classOf[eq.Find(term.Var)]]
			}
			out.MustInsert(t)
			return true
		}
		roots := plan.comps[ci].headRoots
		for _, vals := range solutions[ci] {
			for i, id := range roots {
				s.binding[id] = vals[i]
				s.bound[id] = true
			}
			if !emit(ci + 1) {
				return false
			}
		}
		for _, id := range roots {
			s.bound[id] = false
		}
		return true
	}
	emit(0)
	if s.canceled != nil {
		return stats, s.canceled
	}
	return stats, nil
}
