package cq

import (
	"context"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
)

// Unit tests for the adaptive cost model: the tier-0 boundary, the
// selectivity estimate's edges, the pipeline-vs-scan tie-break, and
// the parallel gating thresholds.  They drive choosePlan through real
// compiled plans so the estimates exercise the same planStep shapes
// the runtime sees.

// costPlanFor compiles the plan choosePlan would see for q over d.
func costPlanFor(t *testing.T, q *Query, d *instance.Database) *searchPlan {
	t.Helper()
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		t.Fatal("query unsatisfiable")
	}
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		t.Fatal(err)
	}
	pres := collectConstPrebindings(q, eq, nil)
	return buildPlan(q, rels, relIdxs, eq, pres)
}

// edgeDB builds a single-relation digraph database with the given edges.
func edgeDB(t *testing.T, edges [][2]int64) *instance.Database {
	t.Helper()
	s := schema.MustParse("E(a:T1, b:T1)")
	d := instance.NewDatabase(s)
	for _, e := range edges {
		d.MustInsert("E", val(1, e[0]), val(1, e[1]))
	}
	return d
}

// pathEdges returns n distinct edges i -> i+1.
func pathEdges(n int) [][2]int64 {
	edges := make([][2]int64, n)
	for i := range edges {
		edges[i] = [2]int64{int64(i + 1), int64(i + 2)}
	}
	return edges
}

func TestAllSmallBoundary(t *testing.T) {
	cfg := defaultCostConfig
	at := edgeDB(t, pathEdges(cfg.scanMaxCard))
	above := edgeDB(t, pathEdges(cfg.scanMaxCard+1))
	q := MustParse("V(X, Y) :- E(X, Y).")
	relsAt, _, err := resolveRelations(q, at)
	if err != nil {
		t.Fatal(err)
	}
	relsAbove, _, err := resolveRelations(q, above)
	if err != nil {
		t.Fatal(err)
	}
	if !allSmall(relsAt, &cfg) {
		t.Fatalf("relation with exactly %d rows must pass tier 0", cfg.scanMaxCard)
	}
	if allSmall(relsAbove, &cfg) {
		t.Fatalf("relation with %d rows must fail tier 0", cfg.scanMaxCard+1)
	}
}

func TestStepSelectivityEdges(t *testing.T) {
	cfg := defaultCostConfig
	// 12 rows: 3 distinct sources fanning out to 4 sinks each.
	var edges [][2]int64
	for a := int64(1); a <= 3; a++ {
		for b := int64(10); b < 14; b++ {
			edges = append(edges, [2]int64{a, b})
		}
	}
	d := edgeDB(t, edges)
	fr := d.Frozen().Relations[0]
	card := float64(fr.NumRows())

	// No bound positions: every row is a candidate.
	free := &planStep{relIdx: 0}
	if got := stepSelectivity(fr, free, &cfg); got != card {
		t.Fatalf("unkeyed step selectivity = %v, want %v", got, card)
	}

	// Keyed on the 3-distinct source column: card / 3 expected matches.
	bySrc := &planStep{relIdx: 0, keyPos: []int{0}}
	if got := stepSelectivity(fr, bySrc, &cfg); got != card/3 {
		t.Fatalf("source-keyed selectivity = %v, want %v", got, card/3)
	}

	// Keyed on both columns: 3*4 = 12 distinct combinations == card, so
	// the divisor caps at card and the estimate floors at one match.
	byBoth := &planStep{relIdx: 0, keyPos: []int{0, 1}}
	if got := stepSelectivity(fr, byBoth, &cfg); got != 1 {
		t.Fatalf("fully-keyed selectivity = %v, want 1", got)
	}

	// At or under distinctMinRows the model skips statistics entirely
	// and assumes nothing filters.
	small := edgeDB(t, pathEdges(cfg.distinctMinRows))
	sfr := small.Frozen().Relations[0]
	if got := stepSelectivity(sfr, bySrc, &cfg); got != float64(sfr.NumRows()) {
		t.Fatalf("under-threshold selectivity = %v, want %v", got, float64(sfr.NumRows()))
	}
}

func TestChoosePlanTieGoesToScan(t *testing.T) {
	// All-zero weights price both arms at zero; the tie must fall to
	// the scan, which has no setup to amortize.
	cfg := defaultCostConfig
	cfg.planOverhead = 0
	cfg.indexBuildPerRow = 0
	cfg.nodeCost = 0
	cfg.scanNodeCost = 0
	d := edgeDB(t, pathEdges(16))
	q := MustParse("V(X, Z) :- E(X, Y), E(Y, Z).")
	plan := costPlanFor(t, q, d)
	c := choosePlan(d.Frozen(), plan, &cfg)
	if c.usePipeline {
		t.Fatal("zero-cost tie chose the pipeline; ties must go to the scan")
	}
}

func TestChoosePlanOverheadThresholdEdge(t *testing.T) {
	// Dial planOverhead to sit exactly at, then just under, the margin
	// the pipeline wins by; the strict < must flip between them.
	cfg := defaultCostConfig
	cfg.planOverhead = 0
	cfg.indexBuildPerRow = 0
	d := edgeDB(t, pathEdges(16))
	q := MustParse("V(X, Z) :- E(X, Y), E(Y, Z).")
	plan := costPlanFor(t, q, d)
	base := choosePlan(d.Frozen(), plan, &cfg)
	if !base.usePipeline {
		t.Fatalf("pipeline must win with no overhead (pipe %v vs scan %v)", base.pipeNodes, base.scanNodes)
	}
	margin := base.scanNodes*cfg.scanNodeCost - base.pipeNodes*cfg.nodeCost
	if margin <= 0 {
		t.Fatalf("expected a positive pipeline margin, got %v", margin)
	}
	cfg.planOverhead = margin
	if c := choosePlan(d.Frozen(), plan, &cfg); c.usePipeline {
		t.Fatal("overhead equal to the margin must tie, and ties go to the scan")
	}
	cfg.planOverhead = margin / 2
	if c := choosePlan(d.Frozen(), plan, &cfg); !c.usePipeline {
		t.Fatal("overhead under the margin must keep the pipeline")
	}
}

// parallelFixture compiles a two-component plan over a graph big
// enough to index, with a config that always prices the pipeline in.
func parallelFixture(t *testing.T) (*instance.Database, *searchPlan, costConfig) {
	t.Helper()
	s := schema.MustParse("E(a:T1, b:T1)")
	d := instance.NewDatabase(s)
	completeDigraph(d, []int64{1, 2, 3, 4})
	q := multiComponentQuery()
	plan := costPlanFor(t, q, d)
	if len(plan.comps) != 2 {
		t.Fatalf("fixture plan has %d components, want 2", len(plan.comps))
	}
	cfg := defaultCostConfig
	cfg.planOverhead = 0
	cfg.indexBuildPerRow = 0
	cfg.nodeCost = 0
	return d, plan, cfg
}

func TestChoosePlanParallelGating(t *testing.T) {
	d, plan, cfg := parallelFixture(t)
	fz := d.Frozen()

	// Workers default to GOMAXPROCS; on a single-core runner the gate
	// must stay closed however cheap the threshold is.
	cfg.parallelWorkers = 1
	cfg.parallelMinNodes = 0
	if c := choosePlan(fz, plan, &cfg); c.parallel {
		t.Fatal("one worker must never go parallel")
	}

	// With workers available and both components above the work floor,
	// the gate opens — and the worker count caps at the component count.
	cfg.parallelWorkers = 8
	c := choosePlan(fz, plan, &cfg)
	if !c.parallel {
		t.Fatalf("expected parallel (comp estimates %v)", c.compNodes)
	}
	if c.workers != len(plan.comps) {
		t.Fatalf("workers = %d, want cap at %d components", c.workers, len(plan.comps))
	}

	// Raise the per-component work floor above both estimates: fewer
	// than two heavy components must close the gate.
	heavier := c.compNodes[0]
	if c.compNodes[1] > heavier {
		heavier = c.compNodes[1]
	}
	cfg.parallelMinNodes = heavier + 1
	if c := choosePlan(fz, plan, &cfg); c.parallel {
		t.Fatal("no component reaches the work floor; gate must stay closed")
	}

	// A floor between the two-heavy and zero-heavy regimes: exactly two
	// heavy components keeps the gate open.
	lighter := c.compNodes[0]
	if c.compNodes[1] < lighter {
		lighter = c.compNodes[1]
	}
	cfg.parallelMinNodes = lighter
	if c := choosePlan(fz, plan, &cfg); !c.parallel {
		t.Fatal("both components at the floor must open the gate")
	}

	// More components demanded than the plan has: gate closed.
	cfg.parallelMinNodes = 0
	cfg.parallelMinComps = 3
	if c := choosePlan(fz, plan, &cfg); c.parallel {
		t.Fatal("parallelMinComps above the component count must close the gate")
	}
}

func TestExplainPlanStrategies(t *testing.T) {
	q := multiComponentQuery()

	// Tier 0: everything small, no plan built.
	small := edgeDB(t, pathEdges(4))
	info, err := ExplainPlan(q, small)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != "scan" || info.AtomOrder != nil {
		t.Fatalf("small instance: got %+v, want bare scan", info)
	}

	s := schema.MustParse("E(a:T1, b:T1)")
	big := instance.NewDatabase(s)
	completeDigraph(big, []int64{1, 2, 3, 4})

	cfg := defaultCostConfig
	cfg.planOverhead = 0
	cfg.indexBuildPerRow = 0
	cfg.nodeCost = 0
	cfg.parallelMinNodes = 0
	withCostConfig(t, cfg, func() {
		info, err := ExplainPlan(q, big)
		if err != nil {
			t.Fatal(err)
		}
		if info.Strategy != "pipeline" {
			t.Fatalf("sequential pipeline expected on one worker, got %q", info.Strategy)
		}
		if len(info.Components) != 2 || len(info.AtomOrder) != 4 {
			t.Fatalf("unexpected plan shape: %+v", info)
		}
		if info.IndexedSteps == 0 {
			t.Fatal("indexed pipeline reported no indexed steps")
		}
	})

	cfg.parallelWorkers = 4
	withCostConfig(t, cfg, func() {
		info, err := ExplainPlan(q, big)
		if err != nil {
			t.Fatal(err)
		}
		if info.Strategy != "pipeline-parallel" {
			t.Fatalf("forced workers: got %q, want pipeline-parallel", info.Strategy)
		}
		if info.EstPipelineNodes <= 0 || info.EstScanNodes <= info.EstPipelineNodes {
			t.Fatalf("estimates not populated sensibly: %+v", info)
		}
	})

	// A config that prices the pipeline out reports the scan with both
	// estimates attached.
	expensive := defaultCostConfig
	expensive.planOverhead = 1e12
	withCostConfig(t, expensive, func() {
		info, err := ExplainPlan(q, big)
		if err != nil {
			t.Fatal(err)
		}
		if info.Strategy != "scan" || info.EstScanNodes == 0 {
			t.Fatalf("priced-out pipeline: got %+v, want scan with estimates", info)
		}
	})
}

// TestCostModelCliqueMisprediction is a known-failure probe, not a
// regression test.  On the triangle (clique-3) query over a clique-4
// digraph the tier-1 estimate strongly prefers the pipeline (~84 vs
// ~588 estimated candidate visits), yet both runtimes visit exactly the
// same candidates: the per-column distinct counts of a clique make the
// frontier-product walk believe the indexes filter hard, when in fact
// every probe bucket is nearly the whole relation.  The pipeline's
// setup — planOverhead plus an index build over every edge — is pure
// loss, so under the model's own weights the scan wins the run the
// model gave to the pipeline.
//
// While the misprediction stands, the probe skips with the measured
// numbers.  If a cost-model change fixes it (either the estimate stops
// picking the pipeline here, or the pipeline starts actually saving
// enough visits to cover its setup), the probe fails loudly so it gets
// promoted to a real regression test.
func TestCostModelCliqueMisprediction(t *testing.T) {
	// Clique-4: complete digraph on 4 nodes, no self-loops (12 edges,
	// above scanMaxCard so tier 0 cannot rescue the model).
	var edges [][2]int64
	for a := int64(1); a <= 4; a++ {
		for b := int64(1); b <= 4; b++ {
			if a != b {
				edges = append(edges, [2]int64{a, b})
			}
		}
	}
	d := edgeDB(t, edges)
	if len(edges) <= defaultCostConfig.scanMaxCard {
		t.Fatalf("clique-4 has %d edges, at or under tier-0 bound %d; probe needs tier 1", len(edges), defaultCostConfig.scanMaxCard)
	}

	// Clique-3 in the paper's placeholder-distinct syntax: the triangle
	// closes through the equality list.
	q := MustParse("V() :- E(A, B), E(C, D), E(F, G), B = C, D = F, G = A.")
	cfg := defaultCostConfig
	plan := costPlanFor(t, q, d)
	choice := choosePlan(d.Frozen(), plan, &cfg)

	pipeOK, _, pipeStats, err := FindAnswerBindingCtxMode(context.Background(), q, d, instance.Tuple{}, SearchStreamed)
	if err != nil {
		t.Fatal(err)
	}
	scanOK, _, scanStats, err := FindAnswerBindingCtxMode(context.Background(), q, d, instance.Tuple{}, SearchInterned)
	if err != nil {
		t.Fatal(err)
	}
	if pipeOK != scanOK {
		t.Fatalf("runtimes disagree on the verdict: streamed=%v interned=%v", pipeOK, scanOK)
	}

	// Price the measured runs with the model's own weights.  The scan
	// arm has no setup; the pipeline pays plan compilation and the index
	// builds the plan requested.
	actualPipeCost := cfg.planOverhead + choice.buildRows*cfg.indexBuildPerRow + float64(pipeStats.Nodes)*cfg.nodeCost
	actualScanCost := float64(scanStats.Nodes) * cfg.scanNodeCost

	mispredicted := choice.usePipeline && actualPipeCost >= actualScanCost
	if mispredicted {
		t.Skipf("known failure: model picked pipeline (est %.0f vs %.0f nodes) but measured costs are pipeline %.0f vs scan %.0f (visits: pipeline %d, scan %d, index-build rows %.0f)",
			choice.pipeNodes, choice.scanNodes, actualPipeCost, actualScanCost,
			pipeStats.Nodes, scanStats.Nodes, choice.buildRows)
	}
	t.Fatalf("clique-3/clique-4 misprediction no longer reproduces (usePipeline=%v, measured pipeline %.0f vs scan %.0f): promote this probe to a regression test",
		choice.usePipeline, actualPipeCost, actualScanCost)
}
