package cq

import (
	"runtime"

	"keyedeq/internal/instance"
)

// This file is the cost model behind SearchAdaptive: a cheap,
// plan-time estimate that chooses, per query and database, between the
// streamed iterator pipeline (iter.go) and the dense ID scan
// (scan_interned.go), and decides when the plan's connected components
// are worth searching in parallel (parallel.go).
//
// The model has two tiers.  Tier 0 runs before any plan is built: when
// every relation the query touches is at or under the plan's scan
// threshold, no step would ever build an index, so the pipeline
// degenerates to static-order scans while still paying plan
// compilation — the dynamic-order dense scan wins outright and the
// plan is skipped entirely.  (This is exactly the regime where the
// one-size-fits-all plan used to lose to naive on the graph-star
// corpus family.)  Tier 1 runs after planning: a frontier-product walk
// over each component's steps estimates candidates visited with and
// without indexes — per-probe bucket sizes come from the frozen view's
// per-column distinct counts — and the pipeline must beat the scan by
// enough to cover plan compilation and index builds.

// costConfig bundles the model's tunables.  The package-level costCfg
// is read by every adaptive search; tests override it (in-package,
// serially) to pin tie-break and threshold edges.
type costConfig struct {
	// scanMaxCard is the tier-0 bound: when every referenced relation
	// has at most this many tuples, the dense scan runs without
	// planning.  It matches smallRelScanThreshold — the cardinality at
	// which the planner itself refuses to build an index.
	scanMaxCard int
	// planOverhead is the fixed cost (in candidate-visit units) of
	// compiling a plan and setting up the pipeline searcher.
	planOverhead float64
	// indexBuildPerRow is the per-row cost of filling a hash index.
	indexBuildPerRow float64
	// nodeCost and scanNodeCost weight one visited candidate in the
	// pipeline and the dense scan respectively.
	nodeCost     float64
	scanNodeCost float64
	// distinctMinRows bounds when the model pays for real per-column
	// distinct counts: relations at or under it use the worst-case
	// estimate (every probe scans the whole relation), which keeps tiny
	// inputs off the statistics path entirely.
	distinctMinRows int
	// frontierCap clamps the estimated number of live partial matches,
	// keeping the walk numerically tame on pathological shapes.
	frontierCap float64
	// parallelMinComps and parallelMinNodes gate component
	// parallelism: at least this many components, of which at least
	// two carry this much estimated pipeline work.
	parallelMinComps int
	parallelMinNodes float64
	// parallelWorkers overrides the worker bound (0 means
	// runtime.GOMAXPROCS(0)); tests force the parallel path with it on
	// single-core machines.
	parallelWorkers int
}

var defaultCostConfig = costConfig{
	scanMaxCard:      smallRelScanThreshold,
	planOverhead:     32,
	indexBuildPerRow: 1,
	nodeCost:         1,
	scanNodeCost:     1,
	distinctMinRows:  smallRelScanThreshold,
	frontierCap:      1 << 20,
	parallelMinComps: 2,
	parallelMinNodes: 2048,
}

// costCfg is the live configuration.  Set it at startup or from tests
// only — concurrent mutation during a run is not supported.
var costCfg = defaultCostConfig

// planChoice is the model's verdict for one query/database pair.
type planChoice struct {
	usePipeline bool
	parallel    bool
	workers     int
	// pipeNodes and scanNodes are the estimated candidate visits of
	// the two arms; buildRows the total index-build row count.
	pipeNodes, scanNodes, buildRows float64
	// compNodes holds the per-component pipeline estimates.
	compNodes []float64
}

// allSmall reports the tier-0 condition: every resolved relation at or
// under the scan threshold.
func allSmall(rels []*instance.Relation, cfg *costConfig) bool {
	for _, r := range rels {
		if r.Len() > cfg.scanMaxCard {
			return false
		}
	}
	return true
}

// stepSelectivity estimates how many of a step's candidate rows
// survive the equality filter on its bound key positions.  Above the
// statistics threshold it divides cardinality by the product of the
// key columns' distinct counts (capped at cardinality, floored at one
// expected match); below it, it conservatively assumes nothing filters.
func stepSelectivity(fr *instance.FrozenRelation, st *planStep, cfg *costConfig) float64 {
	card := float64(fr.NumRows())
	if len(st.keyPos) == 0 || fr.NumRows() <= cfg.distinctMinRows {
		return card
	}
	distinct := 1.0
	for _, p := range st.keyPos {
		if d := fr.DistinctAt(p); d > 1 {
			distinct *= float64(d)
		}
		if distinct >= card {
			break
		}
	}
	if distinct > card {
		distinct = card
	}
	sel := card / distinct
	if sel < 1 {
		sel = 1
	}
	return sel
}

// estimateComponent walks one component's steps front to back,
// carrying the expected number of live partial matches (the frontier)
// and summing candidates visited.  With indexed=true, steps holding an
// index slot visit only their expected bucket; without, every step
// visits the whole relation — the difference is exactly what the
// indexes buy.
func estimateComponent(fz *instance.Frozen, comp *planComponent, indexed bool, cfg *costConfig) float64 {
	frontier := 1.0
	nodes := 0.0
	for si := range comp.steps {
		st := &comp.steps[si]
		fr := fz.Relations[st.relIdx]
		card := float64(fr.NumRows())
		sel := stepSelectivity(fr, st, cfg)
		if indexed && st.indexSlot >= 0 {
			nodes += frontier * sel
		} else {
			nodes += frontier * card
		}
		frontier *= sel
		if frontier > cfg.frontierCap {
			frontier = cfg.frontierCap
		}
	}
	return nodes
}

// choosePlan runs the tier-1 estimate over a compiled plan and decides
// pipeline vs scan and sequential vs parallel.
func choosePlan(fz *instance.Frozen, plan *searchPlan, cfg *costConfig) planChoice {
	var c planChoice
	c.compNodes = make([]float64, len(plan.comps))
	slotCounted := make([]bool, plan.numSlots)
	for ci := range plan.comps {
		comp := &plan.comps[ci]
		c.compNodes[ci] = estimateComponent(fz, comp, true, cfg)
		c.pipeNodes += c.compNodes[ci]
		c.scanNodes += estimateComponent(fz, comp, false, cfg)
		for si := range comp.steps {
			st := &comp.steps[si]
			if st.indexSlot >= 0 && !slotCounted[st.indexSlot] {
				slotCounted[st.indexSlot] = true
				c.buildRows += float64(fz.Relations[st.relIdx].NumRows())
			}
		}
	}
	pipeCost := cfg.planOverhead + c.buildRows*cfg.indexBuildPerRow + c.pipeNodes*cfg.nodeCost
	scanCost := c.scanNodes * cfg.scanNodeCost
	// Ties go to the scan: it has no setup to amortize.
	c.usePipeline = pipeCost < scanCost
	if !c.usePipeline {
		return c
	}
	workers := cfg.parallelWorkers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(plan.comps) {
		workers = len(plan.comps)
	}
	if workers > 1 && len(plan.comps) >= cfg.parallelMinComps {
		heavy := 0
		for _, n := range c.compNodes {
			if n >= cfg.parallelMinNodes {
				heavy++
			}
		}
		if heavy >= 2 {
			c.parallel = true
			c.workers = workers
		}
	}
	return c
}
