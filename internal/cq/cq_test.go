package cq

import (
	"strings"
	"testing"

	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

var testSchema = schema.MustParse(`
P(p1:T1, p2:T2)
Q2(q1:T2, q2:T3)
R(r1:T1, r2:T2)
S(s1*:T1, s2:T2, s3:T3)
`)

func TestParsePrintRoundTrip(t *testing.T) {
	queries := []string{
		"Q(X, Y) :- P(X, Y).",
		"Q(X, Y) :- P(X, A), Q2(B, Y), A = B.",
		"Q(X) :- P(X, Y), Y = T2:5.",
		"Q(T1:7, Y) :- P(X, Y).",
		"Q(X, X) :- P(X, Y).",
		"Q(X, Y, Z) :- S(X, Y, Z).",
	}
	for _, text := range queries {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("Parse(%q): %v", text, err)
		}
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of %q (printed %q): %v", text, q.String(), err)
		}
		if q.String() != q2.String() {
			t.Errorf("round trip changed query: %q vs %q", q.String(), q2.String())
		}
	}
}

func TestParseNormalizesConstantOnLeft(t *testing.T) {
	q := MustParse("Q(X) :- P(X, Y), T2:5 = Y.")
	if len(q.Eqs) != 1 || q.Eqs[0].Left != "Y" || !q.Eqs[0].Right.IsConst {
		t.Errorf("normalization failed: %v", q.Eqs)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"Q(X)",                          // no :-
		"Q(X :- P(X, Y).",               // bad head
		"Q(X) :- .",                     // empty body
		"Q(X) :- P(X, T1:1).",           // constant placeholder
		"Q(X) :- P(X, Y), T1:1 = T1:2.", // no variable in equality
		"Q(X) :- P(X, Y), = Y.",         // missing lhs
		"Q(X) :- P(X, Y), Z =.",         // missing rhs
		"Q(X) :- P(X,, Y).",             // empty arg
		"Q(X(Y)) :- P(X, Y).",           // bad head term
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q): want error", text)
		}
	}
}

func TestValidate(t *testing.T) {
	good := []string{
		"V(X, Y) :- P(X, Y).",
		"V(X) :- P(X, A), R(Y, B), A = B.",
		"V(X) :- P(X, A), A = T2:9.",
		"V(T1:3) :- P(X, A).",
	}
	for _, text := range good {
		if err := MustParse(text).Validate(testSchema); err != nil {
			t.Errorf("Validate(%q) = %v, want nil", text, err)
		}
	}
	bad := []struct {
		text, why string
	}{
		{"V(X) :- Z(X, Y).", "unknown relation"},
		{"V(X) :- P(X).", "arity"},
		{"V(X) :- P(X, X).", "reused placeholder in one atom"},
		{"V(X) :- P(X, Y), R(X, B).", "reused placeholder across atoms"},
		{"V(W) :- P(X, Y).", "head var not in body"},
		{"V(X) :- P(X, Y), Z = Y.", "equality var not in body"},
		{"V(X) :- P(X, Y), Y = W.", "equality rhs var not in body"},
		{"V(X) :- P(X, Y), X = Y.", "type clash T1=T2"},
		{"V(X) :- P(X, Y), X = T2:3.", "selection type clash"},
	}
	for _, tt := range bad {
		if err := MustParse(tt.text).Validate(testSchema); err == nil {
			t.Errorf("Validate(%q) = nil, want error (%s)", tt.text, tt.why)
		}
	}
}

func TestHeadType(t *testing.T) {
	q := MustParse("V(X, B, T3:1) :- P(X, A), Q2(B, C).")
	ht, err := q.HeadType(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	want := []value.Type{1, 2, 3}
	for i := range want {
		if ht[i] != want[i] {
			t.Errorf("HeadType[%d] = %v, want %v", i, ht[i], want[i])
		}
	}
	if _, err := MustParse("V(X) :- Z(X).").HeadType(testSchema); err == nil {
		t.Error("HeadType with unknown relation should fail")
	}
}

func TestCloneRenameIndependence(t *testing.T) {
	q := MustParse("V(X, T1:5) :- P(X, Y), R(A, B), Y = B.")
	c := q.Clone()
	c.Body[0].Vars[0] = "ZZ"
	c.Eqs[0].Left = "ZZ"
	c.Head[0].Var = "ZZ"
	if q.Body[0].Vars[0] != "X" || q.Eqs[0].Left != "Y" || q.Head[0].Var != "X" {
		t.Error("Clone shares storage")
	}
	r := q.Rename("u_")
	if r.Body[0].Vars[0] != "u_X" || r.Head[0].Var != "u_X" || r.Eqs[0].Left != "u_Y" {
		t.Errorf("Rename wrong: %s", r)
	}
	if r.Head[1] != q.Head[1] {
		t.Error("Rename must keep constants")
	}
	// Renamed query shares no variables with the original.
	seen := map[Var]bool{}
	for _, v := range q.BodyVars() {
		seen[v] = true
	}
	for _, v := range r.BodyVars() {
		if seen[v] {
			t.Errorf("Rename left shared variable %s", v)
		}
	}
}

func TestVarPosAndHasBodyVar(t *testing.T) {
	q := MustParse("V(X) :- P(X, Y), R(A, B).")
	if a, p := q.VarPos("B"); a != 1 || p != 1 {
		t.Errorf("VarPos(B) = (%d,%d)", a, p)
	}
	if a, p := q.VarPos("ZZ"); a != -1 || p != -1 {
		t.Errorf("VarPos(ZZ) = (%d,%d)", a, p)
	}
	if !q.HasBodyVar("A") || q.HasBodyVar("ZZ") {
		t.Error("HasBodyVar wrong")
	}
}

func TestConstants(t *testing.T) {
	q := MustParse("V(T1:3, X) :- P(X, Y), Y = T2:9, X = T1:3.")
	cs := q.Constants()
	if len(cs) != 2 {
		t.Fatalf("Constants = %v", cs)
	}
	if cs[0] != (value.Value{Type: 1, N: 3}) || cs[1] != (value.Value{Type: 2, N: 9}) {
		t.Errorf("Constants = %v", cs)
	}
}

func TestRelationsUsed(t *testing.T) {
	q := MustParse("V(X) :- R(X, Y), P(A, B), R(C, D).")
	got := q.RelationsUsed()
	if len(got) != 2 || got[0] != "P" || got[1] != "R" {
		t.Errorf("RelationsUsed = %v", got)
	}
}

func TestIdentityQuery(t *testing.T) {
	r := testSchema.Relation("S")
	q := Identity(r)
	if err := q.Validate(testSchema); err != nil {
		t.Fatalf("identity query invalid: %v", err)
	}
	if q.Arity() != 3 || len(q.Body) != 1 || len(q.Eqs) != 0 {
		t.Errorf("identity query malformed: %s", q)
	}
	if !strings.HasPrefix(q.String(), "S(X0, X1, X2) :- S(X0, X1, X2)") {
		t.Errorf("identity String = %q", q.String())
	}
}

func TestPaperExampleReceives(t *testing.T) {
	// Paper §2: R(X,Y,Z) :- P(X,Y), Q(T,Z), Y = T.
	// The second head attribute receives P.2 (pos 1) and Q.1 (pos 0).
	s := schema.MustParse("P(a:T1, b:T2)\nQv(c:T2, d:T3)")
	q := MustParse("R(X, Y, Z) :- P(X, Y), Qv(T, Z), Y = T.")
	if err := q.Validate(s); err != nil {
		t.Fatal(err)
	}
	recs := Receives(q)
	if !recs[1].ReceivesAttr("P", 1) || !recs[1].ReceivesAttr("Qv", 0) {
		t.Errorf("head 1 receives %v, want P.1 and Qv.0", recs[1].Attrs)
	}
	if recs[0].ReceivesAttr("Qv", 0) {
		t.Error("head 0 should not receive Qv.0")
	}
	// Paper: R(a, Y, X) :- P(X, Y): first head attr receives the constant.
	q2 := MustParse("R(T1:10, Y, X) :- P(X, Y).")
	recs2 := Receives(q2)
	if !recs2[0].HasConst || recs2[0].Const != (value.Value{Type: 1, N: 10}) {
		t.Errorf("head 0 should receive constant, got %+v", recs2[0])
	}
	if len(recs2[0].Attrs) != 0 {
		t.Errorf("constant head should receive no attributes: %v", recs2[0].Attrs)
	}
}

func TestReceivesViaSelectionBinding(t *testing.T) {
	// A head variable whose class is bound to a constant receives both
	// the attribute and the constant.
	q := MustParse("V(X) :- P(X, Y), X = T1:5.")
	recs := Receives(q)
	if !recs[0].ReceivesAttr("P", 0) {
		t.Error("should receive P.0")
	}
	if !recs[0].HasConst || recs[0].Const != (value.Value{Type: 1, N: 5}) {
		t.Error("should receive the bound constant")
	}
}

func TestInvolvedInCondition(t *testing.T) {
	q := MustParse("V(X) :- P(X, Y), R(A, B), Y = B.")
	if !InvolvedInCondition(q, "P", 1) {
		t.Error("P.1 is joined, should be involved")
	}
	if !InvolvedInCondition(q, "R", 1) {
		t.Error("R.1 is joined, should be involved")
	}
	if InvolvedInCondition(q, "P", 0) || InvolvedInCondition(q, "R", 0) {
		t.Error("unjoined positions should not be involved")
	}
	q2 := MustParse("V(X) :- P(X, Y), Y = T2:1.")
	if !InvolvedInCondition(q2, "P", 1) {
		t.Error("selection makes P.1 involved")
	}
	if InvolvedInCondition(q2, "ZZ", 0) {
		t.Error("unknown relation should not be involved")
	}
}
