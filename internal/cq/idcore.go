package cq

import (
	"context"

	"keyedeq/internal/instance"
	"keyedeq/internal/invariant"
	"keyedeq/internal/value"
)

// idSearchCore is the state shared by every ID-native search runtime
// (the interned oracle in search_interned.go and the streamed iterator
// pipeline in iter.go): dense class bindings over a frozen view, the
// addedStack unwind discipline, ghost IDs for query values the frozen
// view never interned, and the masked cancellation-polling node
// counter.  Keeping it in one struct keeps the runtimes bit-identical
// in everything but candidate enumeration machinery.
type idSearchCore struct {
	ctx      context.Context
	fz       *instance.Frozen
	binding  []value.ID
	bound    []bool
	stats    *EvalStats
	canceled error
	// addedStack records newly bound class ids in binding order,
	// unwound by truncation to a caller's mark.
	addedStack []int32
	// ghostVals holds values referenced by the query (constants, wanted
	// head values) that the frozen view never interned.  Each gets a
	// per-search "ghost" ID from the top of the ID space — distinct
	// from every real ID, so a ghost-bound class filters candidates
	// exactly like a value absent from a hash index: every comparison
	// misses, and the search explores the same nodes.
	ghostVals []value.Value
}

// internID resolves a surface value to its frozen ID, or to a ghost ID
// when the frozen view never saw it.  Ghosts are deduplicated per
// distinct value so two prebindings of the same absent constant agree,
// exactly as the generic search's value comparisons would.
func (s *idSearchCore) internID(v value.Value) value.ID {
	if id, ok := s.fz.Interner.Lookup(v); ok {
		return id
	}
	for i, g := range s.ghostVals {
		if g == v {
			return ^value.ID(0) - value.ID(i)
		}
	}
	s.ghostVals = append(s.ghostVals, v)
	return ^value.ID(0) - value.ID(len(s.ghostVals)-1)
}

// decodeID is the boundary where IDs turn back into surface values.
func (s *idSearchCore) decodeID(id value.ID) value.Value {
	if n := len(s.ghostVals); n > 0 && id >= ^value.ID(0)-value.ID(n-1) {
		return s.ghostVals[^value.ID(0)-id]
	}
	v, ok := s.fz.Interner.Decode(id)
	invariant.Mustf(ok, "cq: interned search bound foreign ID %d", id)
	return v
}

// tryBind extends the binding with row ri at step st; the caller
// unwinds partial adds with unbindTo(mark).
func (s *idSearchCore) tryBind(st *planStep, fr *instance.FrozenRelation, ri int) bool {
	row := fr.Row(ri)
	for p, id := range st.roots {
		if s.bound[id] {
			if s.binding[id] != row[p] {
				return false
			}
			continue
		}
		s.binding[id] = row[p]
		s.bound[id] = true
		s.addedStack = append(s.addedStack, id)
	}
	return true
}

// unbindTo unwinds every binding pushed since the caller's mark.
func (s *idSearchCore) unbindTo(mark int) {
	for _, id := range s.addedStack[mark:] {
		s.bound[id] = false
	}
	s.addedStack = s.addedStack[:mark]
}

// countNode advances the shared node counter under the same polling
// contract as the generic searcher (see searcher.countNode).
func (s *idSearchCore) countNode() bool {
	if s.canceled != nil {
		return false
	}
	s.stats.Nodes++
	if s.stats.Nodes&cancelCheckMask == 0 {
		if err := s.ctx.Err(); err != nil {
			s.canceled = err
			return false
		}
	}
	return true
}
