package cq

import (
	"testing"
)

// The paper's §2 examples, verbatim.

func TestPaperIJSaturatedExample(t *testing.T) {
	// R is ij-saturated in:
	// Q(X,Y) :- R(X,Y), R(A,B), R(C,D), X=A, X=C, Y=B, Y=D.
	// (A=C is inferred by transitivity.)
	q := MustParse("Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, Y = B, Y = D.")
	if !RelationIJSaturated(q, "R") {
		t.Error("paper's saturated example rejected")
	}
	if !IJSaturated(q) {
		t.Error("query should be ij-saturated")
	}
}

func TestPaperNotIJSaturatedExample(t *testing.T) {
	// R is NOT ij-saturated in:
	// Q(X,Y) :- R(X,Y), R(A,B), R(C,D), X=A, X=C, A=C, Y=B.
	// (neither Y=D nor B=D is inferable.)
	q := MustParse("Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, A = C, Y = B.")
	if RelationIJSaturated(q, "R") {
		t.Error("paper's unsaturated example accepted")
	}
	if IJSaturated(q) {
		t.Error("query should not be ij-saturated")
	}
}

func TestNonIdentityJoinRejected(t *testing.T) {
	// Paper: Q(X,Y,Z) :- R(X,Y,Z), R(T,U,V), Y=T, Z=V: Y=T equates
	// different attributes of R — not an identity join.
	nonid := MustParse("Q(X, Y, Z) :- R3(X, Y, Z), R3(T, U, V), Y = T, Z = V.")
	if RelationIJSaturated(nonid, "R3") {
		t.Error("non-identity self-join accepted as saturated")
	}
	if _, err := Saturate(nonid); err == nil {
		t.Error("Saturate must reject non-identity joins")
	}
}

// Paper: Q(X,Y,Z) :- R(X,Z), R(Y,T), Z=T is the paper's example of an
// identity join (position 1 = position 1), but position 0 of the two R
// occurrences (X and Y) is not equated, so "all possible identity join
// conditions" are not inferable and R is not yet ij-saturated; Saturate
// completes it.
func TestIdentityJoinNotSaturated(t *testing.T) {
	q := MustParse("Q(X, Y, Z) :- R(X, Z), R(Y, T), Z = T.")
	if RelationIJSaturated(q, "R") {
		t.Error("missing X=Y: should not be fully saturated")
	}
	// But saturation can complete it.
	sat, err := Saturate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !IJSaturated(sat) {
		t.Errorf("Saturate did not saturate: %s", sat)
	}
	eq := NewEqClasses(sat)
	if !eq.Same("X", "Y") {
		t.Error("saturation must equate X and Y")
	}
}

func TestSaturateMatchesPaperExample(t *testing.T) {
	// Given Q(X,Y) :- R(X,Y), R(A,B), R(C,D), X=A, X=C, A=C, Y=B.
	// saturation adds Y=D (and B=D by transitivity).
	q := MustParse("Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, A = C, Y = B.")
	sat, err := Saturate(q)
	if err != nil {
		t.Fatal(err)
	}
	if !IJSaturated(sat) {
		t.Fatalf("not saturated: %s", sat)
	}
	eq := NewEqClasses(sat)
	for _, pair := range [][2]Var{{"Y", "D"}, {"B", "D"}, {"A", "C"}, {"X", "A"}} {
		if !eq.Same(pair[0], pair[1]) {
			t.Errorf("saturated query should infer %s = %s", pair[0], pair[1])
		}
	}
	// Same number of relation occurrences as the original (the paper's
	// construction adds conditions only).
	if len(sat.Body) != len(q.Body) {
		t.Error("Saturate changed the body atoms")
	}
}

func TestSaturateIdempotent(t *testing.T) {
	q := MustParse("Q(X, Y) :- R(X, Y), R(A, B), X = A.")
	s1, err := Saturate(q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Saturate(s1)
	if err != nil {
		t.Fatal(err)
	}
	e1, e2 := NewEqClasses(s1), NewEqClasses(s2)
	for _, a := range []Var{"X", "Y", "A", "B"} {
		for _, b := range []Var{"X", "Y", "A", "B"} {
			if e1.Same(a, b) != e2.Same(a, b) {
				t.Errorf("saturation not idempotent on (%s,%s)", a, b)
			}
		}
	}
}

func TestSaturateRejectsSelections(t *testing.T) {
	q := MustParse("Q(X) :- R(X, Y), Y = T2:5.")
	if _, err := Saturate(q); err == nil {
		t.Error("Saturate must reject constant selections")
	}
	if RelationIJSaturated(q, "R") {
		t.Error("selection should break saturation")
	}
	// Column selection: two positions of one occurrence equated.
	q2 := MustParse("Q(X) :- R(X, Y), X = Y.")
	if _, err := Saturate(q2); err == nil {
		t.Error("Saturate must reject column selections")
	}
	// Join with a different relation.
	q3 := MustParse("Q(X) :- R(X, Y), P(A, B), Y = B.")
	if _, err := Saturate(q3); err == nil {
		t.Error("Saturate must reject joins with other relations")
	}
}

func TestSingleOccurrenceAlwaysSaturated(t *testing.T) {
	q := MustParse("Q(X, Y) :- R(X, Y).")
	if !IJSaturated(q) {
		t.Error("single occurrence with no conditions is saturated")
	}
	// Pure cross product of distinct relations is saturated (degenerate).
	q2 := MustParse("Q(X, A) :- R(X, Y), P(A, B).")
	if !IJSaturated(q2) {
		t.Error("cross product of distinct relations is saturated")
	}
	// Cross product of a relation with itself is a *degenerate identity
	// join* per the paper, but not saturated until conditions are added.
	q3 := MustParse("Q(X, A) :- R(X, Y), R(A, B).")
	if IJSaturated(q3) {
		t.Error("unconstrained self cross-product is not saturated")
	}
	sat, err := Saturate(q3)
	if err != nil {
		t.Fatal(err)
	}
	if !IJSaturated(sat) {
		t.Error("saturation failed on self cross-product")
	}
}
