package cq

import (
	"testing"

	"keyedeq/internal/schema"
)

// Golden tests pin the exact SQL text ToSQL emits — alias numbering,
// column naming, clause order, and terminator — so renderer changes are
// deliberate, not accidental.
func TestToSQLGolden(t *testing.T) {
	cases := []struct {
		name   string
		schema string
		query  string
		want   string
	}{
		{
			name:   "head and where constants",
			schema: "R(a:T1, b:T2)",
			query:  "V(T1:7, X, T2:3) :- R(X, Y), Y = T2:5.",
			want: "SELECT DISTINCT 7 AS c0, t0.a AS c1, 3 AS c2\n" +
				"FROM R AS t0\n" +
				"WHERE t0.b = 5;",
		},
		{
			name:   "triple self-join path",
			schema: "E(src:T1, dst:T1)",
			query:  "V(X, W) :- E(X, Y), E(Y2, Z), E(Z2, W), Y = Y2, Z = Z2.",
			want: "SELECT DISTINCT t0.src AS c0, t2.dst AS c1\n" +
				"FROM E AS t0, E AS t1, E AS t2\n" +
				"WHERE t0.dst = t1.src AND t1.dst = t2.src;",
		},
		{
			name:   "equality chain ending in a constant",
			schema: "R(a:T1, b:T2)\nS(c:T2, d:T2)",
			query:  "V(A) :- R(A, B), S(C, D), B = C, C = D, D = T2:11.",
			want: "SELECT DISTINCT t0.a AS c0\n" +
				"FROM R AS t0, S AS t1\n" +
				"WHERE t0.b = t1.c AND t1.c = t1.d AND t1.d = 11;",
		},
		{
			name:   "no conditions",
			schema: "R(a:T1, b:T2)",
			query:  "V(X) :- R(X, Y).",
			want: "SELECT DISTINCT t0.a AS c0\n" +
				"FROM R AS t0;",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := schema.MustParse(tc.schema)
			got, err := ToSQL(MustParse(tc.query), s)
			if err != nil {
				t.Fatal(err)
			}
			if got != tc.want {
				t.Errorf("ToSQL golden mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, tc.want)
			}
		})
	}
}
