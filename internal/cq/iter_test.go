package cq

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"keyedeq/internal/instance"
)

// These tests pin the streamed iterator runtime's parity contract —
// bit-identical verdicts, EvalStats, and witnesses against both
// oracles (the generic planned search and the interned recursive
// search) — and the adaptive layer's own contracts: its scan arm is
// bit-identical to the naive oracle, and its parallel component search
// is bit-identical to the sequential pipeline on every non-canceled
// outcome.

// checkModeParity compares two modes on one (query, db, want) triple:
// verdict, full stats, and witness must agree bit for bit.
func checkModeParity(t *testing.T, q *Query, d *instance.Database, want instance.Tuple, a, b SearchMode, tag string) {
	t.Helper()
	okA, wA, esA, errA := FindAnswerBindingMode(q, d, want, a)
	okB, wB, esB, errB := FindAnswerBindingMode(q, d, want, b)
	if (errA == nil) != (errB == nil) {
		t.Fatalf("%s: errors diverge: %v %v, %v %v", tag, a, errA, b, errB)
	}
	if errA != nil {
		return
	}
	if okA != okB {
		t.Fatalf("%s: verdicts diverge: %v %v, %v %v", tag, a, okA, b, okB)
	}
	if esA.Nodes != esB.Nodes {
		t.Fatalf("%s: node counts diverge: %v %d, %v %d", tag, a, esA.Nodes, b, esB.Nodes)
	}
	if len(esA.CompNodes) != len(esB.CompNodes) {
		t.Fatalf("%s: component breakdowns diverge: %v %v, %v %v", tag, a, esA.CompNodes, b, esB.CompNodes)
	}
	for i := range esA.CompNodes {
		if esA.CompNodes[i] != esB.CompNodes[i] {
			t.Fatalf("%s: component %d nodes diverge: %v %v, %v %v", tag, i, a, esA.CompNodes, b, esB.CompNodes)
		}
	}
	if !okA {
		return
	}
	if len(wA) != len(wB) {
		t.Fatalf("%s: witness sizes diverge: %d vs %d", tag, len(wA), len(wB))
	}
	for v, va := range wA {
		if vb, ok := wB[v]; !ok || vb != va {
			t.Fatalf("%s: witness diverges at %s: %v %v, %v %v", tag, v, a, va, b, wB[v])
		}
	}
}

// TestStreamedMatchesOraclesRandomized sweeps the plan shapes of
// parityQueries over random digraphs large enough to build indexes,
// checking the streamed pipeline against both oracles.
func TestStreamedMatchesOraclesRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	queries := parityQueries()
	for trial := 0; trial < 300; trial++ {
		nodes := int64(3 + rng.Intn(8))
		d := randomGraphDB(rng, nodes, 4+rng.Intn(60))
		q := queries[rng.Intn(len(queries))]
		want := make(instance.Tuple, len(q.Head))
		for i := range want {
			want[i] = val(1, rng.Int63n(nodes+1))
		}
		tag := fmt.Sprintf("trial %d", trial)
		checkModeParity(t, q, d, want, SearchPlanned, SearchStreamed, tag)
		checkModeParity(t, q, d, want, SearchInterned, SearchStreamed, tag)
	}
}

// TestStreamedGhostValuesFilterLikeMissingBuckets mirrors the interned
// ghost test on the hash-index pipeline: absent wanted values must
// probe empty buckets, visiting exactly the oracle's nodes.
func TestStreamedGhostValuesFilterLikeMissingBuckets(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	d := randomGraphDB(rng, 5, 25)
	q := MustParse("V(X, Z) :- E(X, Y), E(Y, Z), Z = T1:99.")
	want := instance.Tuple{val(1, 77), val(1, 99)}
	checkModeParity(t, q, d, want, SearchPlanned, SearchStreamed, "ghost constants")

	q2 := MustParse("V(X, Y) :- E(X, Y).")
	want2 := instance.Tuple{val(1, 88), val(1, 88)}
	checkModeParity(t, q2, d, want2, SearchPlanned, SearchStreamed, "repeated ghost")
}

// TestScanIDMatchesNaiveRandomized pins the adaptive scan arm to the
// naive oracle bit for bit: same dynamic atom order, same node counts,
// same witnesses — only the tuple representation differs.
func TestScanIDMatchesNaiveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	queries := parityQueries()
	for trial := 0; trial < 300; trial++ {
		nodes := int64(3 + rng.Intn(6))
		d := randomGraphDB(rng, nodes, 2+rng.Intn(28))
		q := queries[rng.Intn(len(queries))]
		want := make(instance.Tuple, len(q.Head))
		for i := range want {
			want[i] = val(1, rng.Int63n(nodes+1))
		}
		tag := fmt.Sprintf("trial %d", trial)
		okN, wN, esN, errN := FindAnswerBindingMode(q, d, want, SearchNaive)
		okS, wS, esS, errS := findAnswerScanID(context.Background(), q, d, want)
		if (errN == nil) != (errS == nil) {
			t.Fatalf("%s: errors diverge: naive %v, scan %v", tag, errN, errS)
		}
		if errN != nil {
			continue
		}
		if okN != okS || esN.Nodes != esS.Nodes || len(esN.CompNodes) != len(esS.CompNodes) {
			t.Fatalf("%s: diverge: naive (%v, %+v), scan (%v, %+v)", tag, okN, esN, okS, esS)
		}
		if !okN {
			continue
		}
		if len(wN) != len(wS) {
			t.Fatalf("%s: witness sizes diverge: %d vs %d", tag, len(wN), len(wS))
		}
		for v, nv := range wN {
			if sv, ok := wS[v]; !ok || sv != nv {
				t.Fatalf("%s: witness diverges at %s: naive %v, scan %v", tag, v, nv, wS[v])
			}
		}
	}
}

// TestAdaptiveSmallInstancesMatchNaive pins the tier-0 fast path: on
// databases whose every relation fits under the scan threshold, the
// adaptive default runs the dense scan and therefore reports exactly
// the naive oracle's stats.
func TestAdaptiveSmallInstancesMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	queries := parityQueries()
	for trial := 0; trial < 100; trial++ {
		d := randomGraphDB(rng, 4, 2+rng.Intn(smallRelScanThreshold-1))
		if d.Relation("E").Len() > smallRelScanThreshold {
			continue
		}
		q := queries[rng.Intn(len(queries))]
		want := make(instance.Tuple, len(q.Head))
		for i := range want {
			want[i] = val(1, rng.Int63n(5))
		}
		checkModeParity(t, q, d, want, SearchNaive, SearchAdaptive, fmt.Sprintf("trial %d", trial))
	}
}

// multiComponentQuery joins nothing across its two chains, so the plan
// splits into two components of two steps each.
func multiComponentQuery() *Query {
	return MustParse("V(X, Z, A, C) :- E(X, Y), E(Y, Z), E(A, B), E(B, C).")
}

// withCostConfig pins the package cost configuration for one test body.
func withCostConfig(t *testing.T, cfg costConfig, body func()) {
	t.Helper()
	orig := costCfg
	costCfg = cfg
	defer func() { costCfg = orig }()
	body()
}

// TestParallelComponentsMatchSequential forces the parallel component
// path (worker bound pinned above one, no minimum work) and checks it
// against the sequential pipeline on found, not-found, and
// empty-component outcomes: verdicts, Nodes, CompNodes, and witnesses
// must be bit-identical.
func TestParallelComponentsMatchSequential(t *testing.T) {
	cfg := defaultCostConfig
	// Force the pipeline choice (zero setup cost) so the adaptive run
	// always exercises the parallel pipeline rather than legitimately
	// falling back to the scan arm on cheap trials.
	cfg.planOverhead = 0
	cfg.indexBuildPerRow = 0
	cfg.nodeCost = 0
	cfg.parallelMinNodes = 0
	cfg.parallelWorkers = 4
	withCostConfig(t, cfg, func() {
		rng := rand.New(rand.NewSource(75))
		q := multiComponentQuery()
		for trial := 0; trial < 120; trial++ {
			nodes := int64(4 + rng.Intn(6))
			d := randomGraphDB(rng, nodes, 12+rng.Intn(50))
			if d.Relation("E").Len() <= smallRelScanThreshold {
				// Tuple dedup dropped the instance under the tier-0
				// bound; the adaptive mode would (correctly) scan.
				continue
			}
			want := make(instance.Tuple, len(q.Head))
			for i := range want {
				want[i] = val(1, rng.Int63n(nodes+1))
			}
			tag := fmt.Sprintf("trial %d", trial)
			// Sanity: the cost model must actually pick the parallel
			// pipeline for this shape, or the test is vacuous.
			if trial == 0 {
				info, err := ExplainPlan(q, d)
				if err != nil {
					t.Fatal(err)
				}
				if info.Strategy != "pipeline-parallel" {
					t.Fatalf("expected pipeline-parallel, got %q", info.Strategy)
				}
				if len(info.Components) != 2 {
					t.Fatalf("expected 2 components, got %v", info.Components)
				}
			}
			checkModeParity(t, q, d, want, SearchStreamed, SearchAdaptive, tag)
			checkModeParity(t, q, d, want, SearchPlanned, SearchAdaptive, tag)
		}
	})
}

// TestParallelCancellationObserved pins the polling contract on the
// parallel path: each worker polls under its own masked counter, so a
// pre-canceled context must be observed within cancelCheckMask+1 nodes
// per reported component.
func TestParallelCancellationObserved(t *testing.T) {
	cfg := defaultCostConfig
	cfg.planOverhead = 0
	cfg.indexBuildPerRow = 0
	cfg.nodeCost = 0
	cfg.parallelMinNodes = 0
	cfg.parallelWorkers = 4
	withCostConfig(t, cfg, func() {
		d := cancelGraph(t, true)
		// Two 11-step chains over the two-component complete digraph,
		// each pinned 1→4 across the digraph's components: both plan
		// components are unsatisfiable and fan out well past the poll
		// mask before exhausting, so an unobserved cancellation would
		// be caught.
		q := MustParse("V(A1, A12, B1, B12) :- " +
			"E(A1, A2), E(A2, A3), E(A3, A4), E(A4, A5), E(A5, A6), E(A6, A7), E(A7, A8), E(A8, A9), E(A9, A10), E(A10, A11), E(A11, A12), " +
			"E(B1, B2), E(B2, B3), E(B3, B4), E(B4, B5), E(B5, B6), E(B6, B7), E(B7, B8), E(B8, B9), E(B9, B10), E(B10, B11), E(B11, B12).")
		want := instance.Tuple{val(1, 1), val(1, 4), val(1, 1), val(1, 4)}
		// Control: uncancelled, each component must exhaust past the
		// first poll point, or the assertion below is vacuous.
		okC, _, esC, errC := FindAnswerBindingCtxMode(context.Background(), q, d, want, SearchAdaptive)
		if errC != nil {
			t.Fatal(errC)
		}
		if okC {
			t.Fatal("cross-component chain unexpectedly satisfiable")
		}
		if esC.Nodes <= cancelCheckMask+1 {
			t.Fatalf("exhaustive search visited %d nodes, need > %d", esC.Nodes, cancelCheckMask+1)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		ok, _, es, err := FindAnswerBindingCtxMode(ctx, q, d, want, SearchAdaptive)
		if err != context.Canceled {
			t.Fatalf("canceled parallel search returned %v (ok=%v)", err, ok)
		}
		bound := int64(len(es.CompNodes)) * (cancelCheckMask + 1)
		if es.Nodes > bound {
			t.Fatalf("cancellation observed after %d nodes across %d components, contract allows at most %d",
				es.Nodes, len(es.CompNodes), bound)
		}
	})
}
