package cq

import "fmt"

// Pos is a 1-based line:column source position.  The zero Pos means
// "unknown": AST nodes constructed programmatically (Identity, product
// queries, composition) carry it, while every node produced by a parser
// carries a real position.  Columns count bytes, like go/token.
type Pos struct {
	Line, Col int
}

// IsValid reports whether the position came from a parser.
func (p Pos) IsValid() bool { return p.Line > 0 }

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// ParseError is a positioned syntax error.  Every parser in this
// package (and the mapping and program parsers built on it) reports
// failures through this type, so callers and diagnostics can point at
// the offending byte.
type ParseError struct {
	Pos Pos
	Msg string
}

// Error renders "cq: line:col: msg".
func (e *ParseError) Error() string {
	if e.Pos.IsValid() {
		return fmt.Sprintf("cq: %s: %s", e.Pos, e.Msg)
	}
	return "cq: " + e.Msg
}

// ErrorPos extracts the position from a *ParseError, or an invalid Pos
// from any other error.
func ErrorPos(err error) Pos {
	if pe, ok := err.(*ParseError); ok {
		return pe.Pos
	}
	return Pos{}
}

// LineIndent returns the number of leading whitespace bytes of line.
// Line-oriented parsers (mappings, programs) trim each line before
// handing it to ParseAt; offsetting the base column by the indent keeps
// the reported columns file-accurate.
func LineIndent(line string) int {
	n := 0
	for n < len(line) && (line[n] == ' ' || line[n] == '\t') {
		n++
	}
	return n
}

// PositionedMsg renders err as "line:col: msg", preferring the precise
// position a *ParseError carries and falling back to base.
func PositionedMsg(err error, base Pos) string {
	if pe, ok := err.(*ParseError); ok && pe.Pos.IsValid() {
		return fmt.Sprintf("%s: %s", pe.Pos, pe.Msg)
	}
	return fmt.Sprintf("%s: %v", base, err)
}
