package cq

import (
	"context"
	"math/rand"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
)

// chainDB builds E(a,b) holding a path 0 -> 1 -> ... -> n, which is
// large enough (n > smallRelScanThreshold) that planned steps index.
func chainDB(t *testing.T, n int) *instance.Database {
	t.Helper()
	s := schema.MustParse("E(a:T1, b:T1)")
	d := instance.NewDatabase(s)
	for i := 0; i < n; i++ {
		d.MustInsert("E", val(1, int64(i)), val(1, int64(i+1)))
	}
	return d
}

func mustPlan(t *testing.T, q *Query, d *instance.Database) *searchPlan {
	t.Helper()
	eq := NewEqClasses(q)
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		t.Fatal(err)
	}
	pres := collectConstPrebindings(q, eq, nil)
	return buildPlan(q, rels, relIdxs, eq, pres)
}

func TestPlanMostConstrainedFirst(t *testing.T) {
	// The constant pins Z, so E(Y, Z) starts with a bound position and
	// must lead its component; the X-Y link then unrolls from it.  The
	// prebound Z carries no join constraint, so E(Z, W) — whose other
	// variable W is fresh — forms its own component.
	d := chainDB(t, 20)
	q := MustParse("V(X) :- E(X, Y), E(Y, Z), E(Z, W), Z = T1:10.")
	plan := mustPlan(t, q, d)
	if len(plan.comps) != 2 {
		t.Fatalf("want 2 components, got %d", len(plan.comps))
	}
	steps := plan.comps[0].steps
	if len(steps) != 2 || steps[0].atom != 1 {
		t.Fatalf("first component starts with atom %d (%d steps), want atom 1 (the Z-bound one) of 2",
			steps[0].atom, len(steps))
	}
	// Every step must come in with at least one bound position (first by
	// the constant, then by the shared Y), hence probe an index.
	for ci, comp := range plan.comps {
		for i, st := range comp.steps {
			if len(st.keyPos) == 0 {
				t.Errorf("component %d step %d (atom %d) has no bound positions", ci, i, st.atom)
			}
			if st.indexSlot < 0 {
				t.Errorf("component %d step %d (atom %d) scans; want an index probe on this 20-tuple relation",
					ci, i, st.atom)
			}
		}
	}
}

func TestPlanComponentDecomposition(t *testing.T) {
	// X-Y and Z-W chains share no variables: two components.  Both head
	// variables land in their own component's headRoots.
	d := chainDB(t, 12)
	q := MustParse("V(X, Z) :- E(X, Y), E(Z, W).")
	plan := mustPlan(t, q, d)
	if len(plan.comps) != 2 {
		t.Fatalf("want 2 components, got %d", len(plan.comps))
	}
	for ci, comp := range plan.comps {
		if len(comp.steps) != 1 {
			t.Errorf("component %d has %d steps, want 1", ci, len(comp.steps))
		}
		if len(comp.headRoots) != 1 {
			t.Errorf("component %d determines %d head classes, want 1", ci, len(comp.headRoots))
		}
	}
}

func TestPlanPreboundClassesDoNotConnect(t *testing.T) {
	// Y is equated to a constant, so the two atoms only share a fixed
	// class — each filters independently and the join graph splits.
	d := chainDB(t, 12)
	q := MustParse("V(X, Z) :- E(X, Y), E(Y, Z), Y = T1:5.")
	plan := mustPlan(t, q, d)
	if len(plan.comps) != 2 {
		t.Fatalf("want 2 components (constant-bound class carries no join), got %d", len(plan.comps))
	}
}

func TestPlanIndexSlotSharing(t *testing.T) {
	// Atoms 1 and 2 are both entered with position 0 bound against the
	// same relation, so they must share one index slot.
	d := chainDB(t, 20)
	q := MustParse("V(X) :- E(X, Y), E(Y, Z), E(Y, W).")
	plan := mustPlan(t, q, d)
	if len(plan.comps) != 1 {
		t.Fatalf("want 1 component, got %d", len(plan.comps))
	}
	slots := make(map[int]int)
	for _, st := range plan.comps[0].steps {
		if st.indexSlot >= 0 {
			slots[st.indexSlot]++
		}
	}
	shared := false
	for _, n := range slots {
		if n > 1 {
			shared = true
		}
	}
	if !shared {
		t.Errorf("no index slot shared across steps; slots = %v, numSlots = %d", slots, plan.numSlots)
	}
	if plan.numSlots >= 3 {
		t.Errorf("numSlots = %d, want fewer slots than indexed steps", plan.numSlots)
	}
}

func TestPlanSmallRelationScans(t *testing.T) {
	// A relation at or under the scan threshold never pays for an index.
	d := chainDB(t, smallRelScanThreshold)
	q := MustParse("V(X) :- E(X, Y), E(Y, Z).")
	plan := mustPlan(t, q, d)
	for _, comp := range plan.comps {
		for _, st := range comp.steps {
			if st.indexSlot >= 0 {
				t.Errorf("atom %d got index slot %d on a %d-tuple relation; want scan",
					st.atom, st.indexSlot, smallRelScanThreshold)
			}
		}
	}
}

func TestPlannedEvalMatchesNaiveRandomized(t *testing.T) {
	// Random chain-shaped queries over random graphs: planned and naive
	// evaluation must produce identical answer relations.
	rng := rand.New(rand.NewSource(7))
	s := schema.MustParse("E(a:T1, b:T1)")
	for trial := 0; trial < 50; trial++ {
		d := instance.NewDatabase(s)
		nodes := int64(3 + rng.Intn(5))
		edges := 5 + rng.Intn(20)
		for i := 0; i < edges; i++ {
			d.MustInsert("E", val(1, rng.Int63n(nodes)), val(1, rng.Int63n(nodes)))
		}
		var q *Query
		switch rng.Intn(3) {
		case 0:
			q = MustParse("V(X, Z) :- E(X, Y), E(Y, Z).")
		case 1:
			q = MustParse("V(X) :- E(X, X).")
		default:
			q = MustParse("V(X, W) :- E(X, Y), E(Z, W), Y = Z.")
		}
		planned, _, err := EvalWithStatsMode(q, d, SearchPlanned)
		if err != nil {
			t.Fatal(err)
		}
		naive, _, err := EvalWithStatsMode(q, d, SearchNaive)
		if err != nil {
			t.Fatal(err)
		}
		if planned.Len() != naive.Len() {
			t.Fatalf("trial %d: planned %d answers, naive %d", trial, planned.Len(), naive.Len())
		}
		for _, tp := range naive.Tuples() {
			if !planned.Has(tp) {
				t.Fatalf("trial %d: planned missing answer %v", trial, tp)
			}
		}
	}
}

func TestPlannedSearchVisitsFewerNodes(t *testing.T) {
	// On a long chain query over a long path, index probes visit a
	// bounded frontier while naive scans the whole relation per atom.
	d := chainDB(t, 40)
	q := MustParse("V(A, E) :- E(A, B), E(B, C), E(C, D), E(D, E).")
	want := instance.Tuple{val(1, 0), val(1, 4)}
	okP, _, stP, err := FindAnswerBindingMode(q, d, want, SearchPlanned)
	if err != nil {
		t.Fatal(err)
	}
	okN, _, stN, err := FindAnswerBindingMode(q, d, want, SearchNaive)
	if err != nil {
		t.Fatal(err)
	}
	if !okP || !okN {
		t.Fatalf("answer not found: planned %v, naive %v", okP, okN)
	}
	if stP.Nodes*2 > stN.Nodes {
		t.Errorf("planned visited %d nodes, naive %d; want at least 2x fewer", stP.Nodes, stN.Nodes)
	}
}

func TestPlannedWitnessRespectsEqualities(t *testing.T) {
	d := chainDB(t, 20)
	q := MustParse("V(X, Z) :- E(X, Y), E(U, Z), Y = U.")
	want := instance.Tuple{val(1, 3), val(1, 5)}
	ok, witness, _, err := FindAnswerBindingMode(q, d, want, SearchPlanned)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("answer not found")
	}
	if witness["Y"] != witness["U"] {
		t.Errorf("witness violates Y = U: %v vs %v", witness["Y"], witness["U"])
	}
	if witness["X"] != val(1, 3) || witness["Z"] != val(1, 5) {
		t.Errorf("witness head bindings wrong: X=%v Z=%v", witness["X"], witness["Z"])
	}
}

func TestPlannedSearchCancellation(t *testing.T) {
	// A pre-canceled context must surface as an error once the search
	// does enough work to poll (the chain is long enough to cross
	// cancelCheckMask nodes).
	d := chainDB(t, 600)
	q := MustParse("V(X, Z) :- E(X, Y), E(Y, Z).")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out := instance.NewRelation(nil)
	_, err := evalPlanned(ctx, q, d, out)
	if err == nil {
		t.Fatal("want cancellation error, got nil")
	}
}

func TestPlannedHeadFreeComponentExistenceOnly(t *testing.T) {
	// The E(Z, W) atom shares nothing with the head: it only gates
	// non-emptiness, and must not multiply the answers.
	d := chainDB(t, 12)
	q := MustParse("V(X) :- E(X, Y), E(Z, W).")
	out, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 12 {
		t.Fatalf("got %d answers, want 12 (one per edge source)", out.Len())
	}
}

func TestPlannedEmptyRelationRefutesEarly(t *testing.T) {
	s := schema.MustParse("E(a:T1, b:T1)\nF(a:T1)")
	d := instance.NewDatabase(s)
	d.MustInsert("E", val(1, 0), val(1, 1))
	q := MustParse("V(X) :- E(X, Y), F(Y).")
	ok, _, _, err := FindAnswerBindingMode(q, d, instance.Tuple{val(1, 0)}, SearchPlanned)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("found an answer through an empty relation")
	}
}

func TestSearchModeString(t *testing.T) {
	if SearchPlanned.String() != "planned" || SearchNaive.String() != "naive" || SearchInterned.String() != "interned" {
		t.Errorf("mode strings wrong: %q, %q, %q",
			SearchPlanned.String(), SearchNaive.String(), SearchInterned.String())
	}
}
