package cq

import (
	"fmt"
)

// A product query (§2) has no selection or join conditions and mentions
// every relation in its body exactly once: a single relation or a
// cross-product of distinct relations (plus projection in the head).

// IsProduct reports whether q is a product query.
func IsProduct(q *Query) bool {
	if len(q.Eqs) != 0 {
		return false
	}
	seen := make(map[string]bool)
	for _, a := range q.Body {
		if seen[a.Rel] {
			return false
		}
		seen[a.Rel] = true
	}
	return true
}

// ToProduct implements Lemma 1's construction: given an ij-saturated query
// q, it returns an equivalent product query with the same relations in its
// body:
//
//  1. all (identity) join conditions are dropped;
//  2. duplicate occurrences of each relation are dropped;
//  3. head variables whose occurrence was dropped are replaced by the
//     variable at the same position of the kept occurrence, which the
//     saturation guarantees is equated to them.
func ToProduct(q *Query) (*Query, error) {
	if !IJSaturated(q) {
		return nil, fmt.Errorf("cq: ToProduct requires an ij-saturated query")
	}
	eq := NewEqClasses(q)
	// Keep the first occurrence of each relation.
	firstOcc := make(map[string]int)
	for i, a := range q.Body {
		if _, ok := firstOcc[a.Rel]; !ok {
			firstOcc[a.Rel] = i
		}
	}
	out := &Query{HeadRel: q.HeadRel}
	for i, a := range q.Body {
		if firstOcc[a.Rel] == i {
			out.Body = append(out.Body, Atom{Rel: a.Rel, Vars: append([]Var(nil), a.Vars...)})
		}
	}
	// Remap head variables to kept occurrences.
	for _, t := range q.Head {
		if t.IsConst {
			out.Head = append(out.Head, t)
			continue
		}
		ai, pos := q.VarPos(t.Var)
		if ai < 0 {
			return nil, fmt.Errorf("cq: head variable %s not in body", t.Var)
		}
		kept := firstOcc[q.Body[ai].Rel]
		rep := q.Body[kept].Vars[pos]
		if !eq.Same(t.Var, rep) {
			// Cannot happen for an ij-saturated query; defensive.
			return nil, fmt.Errorf("cq: %s not equated to kept occurrence", t.Var)
		}
		out.Head = append(out.Head, Term{Var: rep})
	}
	return out, nil
}

// ProductUnder implements Lemma 2's construction: given a query q with no
// selection conditions and no non-identity joins, it returns the product
// query q̃ with q̃ ⊑ q such that (a) every FD holding on q's answers holds
// on q̃'s, (b) q̃ is non-empty whenever q is, and (c) q̃'s body mentions
// exactly q's relations.  It is Saturate followed by ToProduct.
func ProductUnder(q *Query) (*Query, error) {
	sat, err := Saturate(q)
	if err != nil {
		return nil, err
	}
	return ToProduct(sat)
}
