package cq

import (
	"keyedeq/internal/instance"
)

// PlanInfo describes the adaptive planner's decision for one query and
// database: which runtime the cost model chose, the executed atom
// order of the pipeline, and the estimates the choice was based on.
// It is the read-only window other layers build on — internal/ra turns
// the atom order back into an optimized algebra expression, tests pin
// threshold edges, and operators can inspect why a query planned the
// way it did.
type PlanInfo struct {
	// Strategy is "scan" (dense dynamic-order scan, no plan built or
	// plan rejected by the estimate), "pipeline" (streamed iterator
	// pipeline), or "pipeline-parallel" (pipeline with components
	// fanned out to a worker pool).
	Strategy string
	// AtomOrder lists body-atom indexes in executed pipeline order,
	// component by component; nil for the scan strategy, whose atom
	// order is chosen dynamically per binding.
	AtomOrder []int
	// Components groups AtomOrder by connected component of the join
	// graph.
	Components [][]int
	// IndexedSteps counts pipeline steps that probe a hash index
	// rather than scanning.
	IndexedSteps int
	// EstPipelineNodes and EstScanNodes are the cost model's tier-1
	// candidate-visit estimates for the two arms (zero when tier 0
	// decided before planning).
	EstPipelineNodes float64
	EstScanNodes     float64
}

// ExplainPlan reports how SearchAdaptive would run q's enumeration
// over d (constants prebound, head classes free — the Eval planning
// view).  It performs no search.
func ExplainPlan(q *Query, d *instance.Database) (*PlanInfo, error) {
	cfg := &costCfg
	info := &PlanInfo{}
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		info.Strategy = "scan"
		return info, nil
	}
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		return nil, err
	}
	if allSmall(rels, cfg) {
		info.Strategy = "scan"
		return info, nil
	}
	pres := collectConstPrebindings(q, eq, nil)
	plan := buildPlan(q, rels, relIdxs, eq, pres)
	choice := choosePlan(d.Frozen(), plan, cfg)
	info.EstPipelineNodes, info.EstScanNodes = choice.pipeNodes, choice.scanNodes
	if !choice.usePipeline {
		info.Strategy = "scan"
		return info, nil
	}
	info.Strategy = "pipeline"
	if choice.parallel {
		info.Strategy = "pipeline-parallel"
	}
	for ci := range plan.comps {
		comp := make([]int, 0, len(plan.comps[ci].steps))
		for si := range plan.comps[ci].steps {
			st := &plan.comps[ci].steps[si]
			comp = append(comp, st.atom)
			info.AtomOrder = append(info.AtomOrder, st.atom)
			if st.indexSlot >= 0 {
				info.IndexedSteps++
			}
		}
		info.Components = append(info.Components, comp)
	}
	return info, nil
}
