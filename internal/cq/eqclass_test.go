package cq

import (
	"math/rand"
	"testing"

	"keyedeq/internal/value"
)

func TestEqClassesTransitivity(t *testing.T) {
	q := MustParse("V(X) :- P(X, A), R(B, C), R(D, E), A = B, B = D.")
	eq := NewEqClasses(q)
	if !eq.Same("A", "D") {
		t.Error("A = D should be inferred by transitivity")
	}
	if !eq.Same("A", "A") {
		t.Error("reflexivity broken")
	}
	if eq.Same("A", "C") {
		t.Error("A and C should be separate")
	}
	if eq.Same("X", "E") {
		t.Error("X and E should be separate")
	}
}

func TestEqClassesConstBinding(t *testing.T) {
	q := MustParse("V(X) :- P(X, A), R(B, C), A = B, B = T2:5.")
	eq := NewEqClasses(q)
	if c, ok := eq.Const("A"); !ok || c != (value.Value{Type: 2, N: 5}) {
		t.Errorf("Const(A) = %v, %v", c, ok)
	}
	if _, ok := eq.Const("X"); ok {
		t.Error("X should have no constant")
	}
	if eq.Unsatisfiable() {
		t.Error("should be satisfiable")
	}
}

func TestEqClassesConflict(t *testing.T) {
	q := MustParse("V(X) :- P(X, A), A = T2:1, A = T2:2.")
	eq := NewEqClasses(q)
	if !eq.Unsatisfiable() {
		t.Error("two distinct constants in one class must be unsatisfiable")
	}
	// Same constant twice is fine.
	q2 := MustParse("V(X) :- P(X, A), A = T2:1, A = T2:1.")
	if NewEqClasses(q2).Unsatisfiable() {
		t.Error("same constant twice should be satisfiable")
	}
	// Conflict via union of two bound classes.
	q3 := MustParse("V(X) :- P(X, A), R(B, C), A = T2:1, C = T2:2, A = C.")
	if !NewEqClasses(q3).Unsatisfiable() {
		t.Error("union of conflicting bound classes must be unsatisfiable")
	}
}

func TestEqClassesClasses(t *testing.T) {
	q := MustParse("V(X) :- P(X, A), R(B, C), A = B.")
	eq := NewEqClasses(q)
	cls := eq.Classes()
	if len(cls) != 3 {
		t.Fatalf("Classes = %v, want 3 classes", cls)
	}
	// {A,B} is one class.
	foundAB := false
	for _, c := range cls {
		if len(c) == 2 && c[0] == "A" && c[1] == "B" {
			foundAB = true
		}
	}
	if !foundAB {
		t.Errorf("Classes = %v, want {A,B}", cls)
	}
}

func TestEqClassesPositions(t *testing.T) {
	q := MustParse("V(X) :- P(X, A), R(B, C), A = B.")
	eq := NewEqClasses(q)
	pos := eq.Positions(q)
	root := eq.Find("A")
	ps := pos[root]
	if len(ps) != 2 {
		t.Fatalf("positions of {A,B} = %v", ps)
	}
	if ps[0] != (ClassPosition{Atom: 0, Pos: 1}) || ps[1] != (ClassPosition{Atom: 1, Pos: 0}) {
		t.Errorf("positions = %v", ps)
	}
}

func TestEqClassesUnionFindInvariants(t *testing.T) {
	// Randomized: build random equalities over a pool of variables;
	// Same must match a brute-force partition refinement.
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		vars := make([]Var, n)
		atom := Atom{Rel: "R"}
		for i := range vars {
			vars[i] = Var(string(rune('A' + i)))
			atom.Vars = append(atom.Vars, vars[i])
		}
		q := &Query{Head: []Term{{Var: vars[0]}}, Body: []Atom{atom}}
		type pair struct{ a, b int }
		var pairs []pair
		for i := 0; i < rng.Intn(n*2); i++ {
			p := pair{rng.Intn(n), rng.Intn(n)}
			pairs = append(pairs, p)
			q.Eqs = append(q.Eqs, Equality{Left: vars[p.a], Right: Term{Var: vars[p.b]}})
		}
		eq := NewEqClasses(q)
		// Brute force: closure over an adjacency matrix.
		adj := make([][]bool, n)
		for i := range adj {
			adj[i] = make([]bool, n)
			adj[i][i] = true
		}
		for _, p := range pairs {
			adj[p.a][p.b] = true
			adj[p.b][p.a] = true
		}
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if adj[i][k] && adj[k][j] {
						adj[i][j] = true
					}
				}
			}
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if eq.Same(vars[i], vars[j]) != adj[i][j] {
					t.Fatalf("trial %d: Same(%s,%s) = %v, brute force %v",
						trial, vars[i], vars[j], eq.Same(vars[i], vars[j]), adj[i][j])
				}
			}
		}
	}
}

func TestEqClassesStringStable(t *testing.T) {
	q := MustParse("V(X) :- P(X, A), R(B, C), A = B, C = T2:7.")
	s1 := NewEqClasses(q).String()
	s2 := NewEqClasses(q).String()
	if s1 != s2 {
		t.Errorf("String not deterministic: %q vs %q", s1, s2)
	}
	if s1 == "" {
		t.Error("String empty")
	}
}

func TestFindUnknownVar(t *testing.T) {
	q := MustParse("V(X) :- P(X, A).")
	eq := NewEqClasses(q)
	if eq.Find("ZZ") != "ZZ" {
		t.Error("Find of unknown var should return itself")
	}
}
