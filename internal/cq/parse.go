package cq

import (
	"fmt"
	"strings"

	"keyedeq/internal/invariant"
	"keyedeq/internal/value"
)

// Parse reads a conjunctive query in the paper's syntax:
//
//	Q(X, Y) :- R(X, Z), S(W, Y), Z = W, X = T1:3.
//
// The trailing period is optional.  Head terms are variables or constants
// in T<type>:<n> form; body literals are relation atoms; everything after
// the atoms that contains '=' is the equality list.  Whitespace is
// insignificant.
func Parse(text string) (*Query, error) {
	text = strings.TrimSpace(text)
	text = strings.TrimSuffix(text, ".")
	sep := strings.Index(text, ":-")
	if sep < 0 {
		return nil, fmt.Errorf("cq: missing \":-\" in %q", text)
	}
	head := strings.TrimSpace(text[:sep])
	body := strings.TrimSpace(text[sep+2:])

	q := &Query{}
	name, args, err := splitAtom(head)
	if err != nil {
		return nil, fmt.Errorf("cq: bad head: %v", err)
	}
	q.HeadRel = name
	for _, arg := range args {
		t, err := parseTerm(arg)
		if err != nil {
			return nil, fmt.Errorf("cq: bad head term %q: %v", arg, err)
		}
		q.Head = append(q.Head, t)
	}

	for _, lit := range splitTop(body) {
		lit = strings.TrimSpace(lit)
		if lit == "" {
			continue
		}
		if eqi := strings.IndexByte(lit, '='); eqi >= 0 && !strings.ContainsRune(lit, '(') {
			left := strings.TrimSpace(lit[:eqi])
			right := strings.TrimSpace(lit[eqi+1:])
			if left == "" || right == "" {
				return nil, fmt.Errorf("cq: bad equality %q", lit)
			}
			if isConstant(left) {
				// Normalize "a = X" to "X = a".
				if isConstant(right) {
					// constant = constant: represent via a fresh
					// unsupported form — reject, the paper's syntax
					// requires a variable on one side.
					return nil, fmt.Errorf("cq: equality %q has no variable", lit)
				}
				left, right = right, left
			}
			lt, err := parseTerm(left)
			if err != nil || lt.IsConst {
				return nil, fmt.Errorf("cq: bad equality %q: left side must be a variable", lit)
			}
			rt, err := parseTerm(right)
			if err != nil {
				return nil, fmt.Errorf("cq: bad equality %q: %v", lit, err)
			}
			q.Eqs = append(q.Eqs, Equality{Left: lt.Var, Right: rt})
			continue
		}
		name, args, err := splitAtom(lit)
		if err != nil {
			return nil, fmt.Errorf("cq: bad literal %q: %v", lit, err)
		}
		a := Atom{Rel: name}
		for _, arg := range args {
			if isConstant(arg) {
				return nil, fmt.Errorf("cq: constant %q used as placeholder; the paper's syntax requires distinct variables with conditions in the equality list", arg)
			}
			t, err := parseTerm(arg)
			if err != nil || t.IsConst {
				return nil, fmt.Errorf("cq: bad placeholder %q in %s", arg, name)
			}
			a.Vars = append(a.Vars, t.Var)
		}
		q.Body = append(q.Body, a)
	}
	if len(q.Body) == 0 {
		return nil, fmt.Errorf("cq: empty body in %q", text)
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and fixtures.
func MustParse(text string) *Query {
	q, err := Parse(text)
	invariant.Must(err)
	return q
}

// splitAtom parses "R(a, b, c)" into name and raw args.
func splitAtom(s string) (string, []string, error) {
	open := strings.IndexByte(s, '(')
	if open <= 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("expected name(args)")
	}
	name := strings.TrimSpace(s[:open])
	if name == "" || strings.ContainsAny(name, "(), =\t") {
		return "", nil, fmt.Errorf("bad relation name %q", name)
	}
	inner := strings.TrimSpace(s[open+1 : len(s)-1])
	if inner == "" {
		return name, nil, nil
	}
	parts := strings.Split(inner, ",")
	args := make([]string, len(parts))
	for i, p := range parts {
		args[i] = strings.TrimSpace(p)
		if args[i] == "" {
			return "", nil, fmt.Errorf("empty argument")
		}
	}
	return name, args, nil
}

// splitTop splits the body on commas that are not inside parentheses.
func splitTop(s string) []string {
	var out []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// isConstant reports whether the token looks like a T<n>:<m> constant.
func isConstant(s string) bool {
	_, err := value.Parse(s)
	return err == nil
}

func parseTerm(s string) (Term, error) {
	if isConstant(s) {
		v, err := value.Parse(s)
		if err != nil {
			return Term{}, err
		}
		return C(v), nil
	}
	if s == "" || strings.ContainsAny(s, "(), =") {
		return Term{}, fmt.Errorf("bad term %q", s)
	}
	return V(s), nil
}
