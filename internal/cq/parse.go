package cq

import (
	"fmt"
	"strings"

	"keyedeq/internal/invariant"
	"keyedeq/internal/value"
)

// Parse reads a conjunctive query in the paper's syntax:
//
//	Q(X, Y) :- R(X, Z), S(W, Y), Z = W, X = T1:3.
//
// The trailing period is optional.  Head terms are variables or constants
// in T<type>:<n> form; body literals are relation atoms; everything after
// the atoms that contains '=' is the equality list.  Whitespace is
// insignificant.
//
// Every AST node of the result carries its line:col position within
// text (1-based), and parse failures return a *ParseError pointing at
// the offending byte.
func Parse(text string) (*Query, error) {
	return ParseAt(text, Pos{Line: 1, Col: 1})
}

// ParseAt is Parse for a query embedded in a larger file: base is the
// file position of text's first byte, and every node span and error
// position is reported file-absolute.  The mapping and program parsers
// use it to give their per-line queries real coordinates.
func ParseAt(text string, base Pos) (*Query, error) {
	p := &src{text: text, base: base}
	start, end := p.trim(0, len(text))
	if start < end && text[end-1] == '.' {
		start, end = p.trim(start, end-1)
	}
	sep := strings.Index(text[start:end], ":-")
	if sep < 0 {
		return nil, p.errf(start, "missing \":-\" in %q", text[start:end])
	}
	sep += start

	q := &Query{}
	hs, he := p.trim(start, sep)
	q.Pos = p.pos(hs)
	name, _, args, err := p.splitAtom(hs, he)
	if err != nil {
		return nil, wrap(err, "bad head")
	}
	q.HeadRel = name
	for _, arg := range args {
		t, err := p.parseTerm(arg)
		if err != nil {
			return nil, p.errf(arg.a, "bad head term %q: %v", p.str(arg), msg(err))
		}
		q.Head = append(q.Head, t)
	}

	for _, lit := range p.splitTop(sep+2, end) {
		ls, le := p.trim(lit.a, lit.b)
		if ls >= le {
			continue
		}
		litText := text[ls:le]
		if eqi := strings.IndexByte(litText, '='); eqi >= 0 && !strings.ContainsRune(litText, '(') {
			eq, err := p.parseEquality(ls, le, ls+eqi)
			if err != nil {
				return nil, err
			}
			q.Eqs = append(q.Eqs, eq)
			continue
		}
		name, namePos, args, err := p.splitAtom(ls, le)
		if err != nil {
			return nil, wrap(err, fmt.Sprintf("bad literal %q", litText))
		}
		a := Atom{Rel: name, Pos: namePos}
		for _, arg := range args {
			if isConstant(p.str(arg)) {
				return nil, p.errf(arg.a, "constant %q used as placeholder; the paper's syntax requires distinct variables with conditions in the equality list", p.str(arg))
			}
			t, err := p.parseTerm(arg)
			if err != nil || t.IsConst {
				return nil, p.errf(arg.a, "bad placeholder %q in %s", p.str(arg), name)
			}
			a.Vars = append(a.Vars, t.Var)
			a.VarPos = append(a.VarPos, t.Pos)
		}
		q.Body = append(q.Body, a)
	}
	if len(q.Body) == 0 {
		return nil, p.errf(start, "empty body in %q", text[start:end])
	}
	return q, nil
}

// MustParse is Parse but panics on error; for tests and fixtures.
func MustParse(text string) *Query {
	q, err := Parse(text)
	invariant.Must(err)
	return q
}

// src is the raw query text plus the file position of its first byte;
// it converts byte offsets to file positions and carries the low-level
// span helpers of the parser.
type src struct {
	text string
	base Pos
}

// span is a half-open byte range [a, b) into the source text.
type span struct{ a, b int }

// str returns the text of a span.
func (p *src) str(s span) string { return p.text[s.a:s.b] }

// pos converts a byte offset into a file position.
func (p *src) pos(off int) Pos {
	if off > len(p.text) {
		off = len(p.text)
	}
	line, col := p.base.Line, p.base.Col
	for i := 0; i < off; i++ {
		if p.text[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return Pos{Line: line, Col: col}
}

// errf builds a positioned parse error at byte offset off.
func (p *src) errf(off int, format string, args ...any) error {
	return &ParseError{Pos: p.pos(off), Msg: fmt.Sprintf(format, args...)}
}

// trim narrows [a, b) past surrounding whitespace.
func (p *src) trim(a, b int) (int, int) {
	for a < b && isSpace(p.text[a]) {
		a++
	}
	for b > a && isSpace(p.text[b-1]) {
		b--
	}
	return a, b
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// parseEquality parses "left = right" between [ls, le) with '=' at eq,
// normalizing "constant = X" to "X = constant".
func (p *src) parseEquality(ls, le, eq int) (Equality, error) {
	litText := p.text[ls:le]
	la, lb := p.trim(ls, eq)
	ra, rb := p.trim(eq+1, le)
	if la >= lb || ra >= rb {
		return Equality{}, p.errf(ls, "bad equality %q", litText)
	}
	left, right := span{la, lb}, span{ra, rb}
	if isConstant(p.str(left)) {
		if isConstant(p.str(right)) {
			// constant = constant: the paper's syntax requires a
			// variable on one side.
			return Equality{}, p.errf(ls, "equality %q has no variable", litText)
		}
		left, right = right, left
	}
	lt, err := p.parseTerm(left)
	if err != nil || lt.IsConst {
		return Equality{}, p.errf(left.a, "bad equality %q: left side must be a variable", litText)
	}
	rt, err := p.parseTerm(right)
	if err != nil {
		return Equality{}, p.errf(right.a, "bad equality %q: %v", litText, msg(err))
	}
	return Equality{Left: lt.Var, Right: rt, Pos: p.pos(ls)}, nil
}

// splitAtom parses "R(a, b, c)" between [start, end) into the relation
// name, its position, and the raw argument spans.
func (p *src) splitAtom(start, end int) (string, Pos, []span, error) {
	text := p.text[start:end]
	open := strings.IndexByte(text, '(')
	if open <= 0 || !strings.HasSuffix(text, ")") {
		return "", Pos{}, nil, p.errf(start, "expected name(args)")
	}
	na, nb := p.trim(start, start+open)
	name := p.text[na:nb]
	if name == "" || strings.ContainsAny(name, "(), =\t") {
		return "", Pos{}, nil, p.errf(na, "bad relation name %q", name)
	}
	ia, ib := p.trim(start+open+1, end-1)
	if ia >= ib {
		return name, p.pos(na), nil, nil
	}
	var args []span
	for _, raw := range p.splitAll(ia, ib) {
		aa, ab := p.trim(raw.a, raw.b)
		if aa >= ab {
			return "", Pos{}, nil, p.errf(raw.a, "empty argument")
		}
		args = append(args, span{aa, ab})
	}
	return name, p.pos(na), args, nil
}

// splitAll splits [start, end) on every comma.
func (p *src) splitAll(start, end int) []span {
	var out []span
	at := start
	for i := start; i < end; i++ {
		if p.text[i] == ',' {
			out = append(out, span{at, i})
			at = i + 1
		}
	}
	return append(out, span{at, end})
}

// splitTop splits [start, end) on commas that are not inside
// parentheses.
func (p *src) splitTop(start, end int) []span {
	var out []span
	depth, at := 0, start
	for i := start; i < end; i++ {
		switch p.text[i] {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, span{at, i})
				at = i + 1
			}
		}
	}
	return append(out, span{at, end})
}

// isConstant reports whether the token looks like a T<n>:<m> constant.
func isConstant(s string) bool {
	_, err := value.Parse(s)
	return err == nil
}

func (p *src) parseTerm(s span) (Term, error) {
	text := p.str(s)
	if isConstant(text) {
		v, err := value.Parse(text)
		if err != nil {
			return Term{}, p.errf(s.a, "%v", err)
		}
		t := C(v)
		t.Pos = p.pos(s.a)
		return t, nil
	}
	if text == "" || strings.ContainsAny(text, "(), =") {
		return Term{}, p.errf(s.a, "bad term %q", text)
	}
	t := V(text)
	t.Pos = p.pos(s.a)
	return t, nil
}

// msg strips the "cq: line:col: " prefix when nesting parse errors.
func msg(err error) string {
	if pe, ok := err.(*ParseError); ok {
		return pe.Msg
	}
	return err.Error()
}

// wrap prefixes a parse error's message with context, keeping its
// position; non-ParseErrors pass through a plain fmt wrap.
func wrap(err error, context string) error {
	if pe, ok := err.(*ParseError); ok {
		return &ParseError{Pos: pe.Pos, Msg: context + ": " + pe.Msg}
	}
	return fmt.Errorf("cq: %s: %v", context, err)
}
