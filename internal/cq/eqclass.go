package cq

import (
	"fmt"
	"sort"

	"keyedeq/internal/invariant"
	"keyedeq/internal/value"
)

// EqClasses is the equivalence relation the equality list induces on a
// query's variables (reflexive-symmetric-transitive closure), with each
// class optionally bound to a constant.  It is the paper's "equality
// classes of variables", realized as a union-find.
type EqClasses struct {
	parent map[Var]Var
	rank   map[Var]int
	// constOf maps a class representative to its bound constant, if any.
	constOf map[Var]value.Value
	// conflict is set when two distinct constants land in one class;
	// such a query returns the empty answer on every database.
	conflict bool
}

// NewEqClasses computes the equality classes of q.  Every placeholder
// variable of the body gets a (possibly singleton) class.
func NewEqClasses(q *Query) *EqClasses {
	n := len(q.Eqs)
	for _, a := range q.Body {
		n += len(a.Vars)
	}
	e := &EqClasses{
		parent:  make(map[Var]Var, n),
		rank:    make(map[Var]int, n),
		constOf: make(map[Var]value.Value),
	}
	for _, a := range q.Body {
		for _, v := range a.Vars {
			e.add(v)
		}
	}
	for _, eq := range q.Eqs {
		e.add(eq.Left)
		if eq.Right.IsConst {
			e.bind(eq.Left, eq.Right.Const)
		} else {
			e.add(eq.Right.Var)
			e.union(eq.Left, eq.Right.Var)
		}
	}
	if invariant.Debug {
		e.debugCheckStructure()
	}
	return e
}

// debugCheckStructure validates the union-find shape after
// construction: representatives are fixpoints of Find and constants are
// bound to roots only.  Lemma 1's ij-saturation test and every equality
// inference ride on these properties.
func (e *EqClasses) debugCheckStructure() {
	for v := range e.parent {
		r := e.Find(v)
		invariant.Assertf(e.Find(r) == r, "eqclass: representative %v of %v is not a Find fixpoint", r, v)
	}
	for v := range e.constOf {
		invariant.Assertf(e.Find(v) == v, "eqclass: constant bound to non-root %v", v)
	}
}

func (e *EqClasses) add(v Var) {
	if _, ok := e.parent[v]; !ok {
		e.parent[v] = v
		e.rank[v] = 0
	}
}

// Find returns the class representative of v (v itself if unknown).
func (e *EqClasses) Find(v Var) Var {
	p, ok := e.parent[v]
	if !ok {
		return v
	}
	if p != v {
		root := e.Find(p)
		e.parent[v] = root
		return root
	}
	return v
}

func (e *EqClasses) union(a, b Var) {
	ra, rb := e.Find(a), e.Find(b)
	if ra == rb {
		return
	}
	ca, hasA := e.constOf[ra]
	cb, hasB := e.constOf[rb]
	if e.rank[ra] < e.rank[rb] {
		ra, rb = rb, ra
	}
	e.parent[rb] = ra
	if e.rank[ra] == e.rank[rb] {
		e.rank[ra]++
	}
	switch {
	case hasA && hasB:
		if ca != cb {
			e.conflict = true
		}
		e.constOf[ra] = ca
		delete(e.constOf, rb)
	case hasB:
		e.constOf[ra] = cb
		delete(e.constOf, rb)
	case hasA:
		e.constOf[ra] = ca
	}
	if invariant.Debug {
		invariant.Assertf(e.Find(rb) == ra, "eqclass: absorbed root %v does not resolve to %v", rb, ra)
		invariant.Assertf(e.rank[ra] >= e.rank[rb], "eqclass: root rank %d below absorbed rank %d", e.rank[ra], e.rank[rb])
		_, dangling := e.constOf[rb]
		invariant.Assertf(!dangling, "eqclass: constant binding left on absorbed root %v", rb)
	}
}

func (e *EqClasses) bind(v Var, c value.Value) {
	r := e.Find(v)
	if prev, ok := e.constOf[r]; ok {
		if prev != c {
			e.conflict = true
		}
		return
	}
	e.constOf[r] = c
}

// Same reports whether a = b is inferable from the equality list.
func (e *EqClasses) Same(a, b Var) bool { return e.Find(a) == e.Find(b) }

// Const returns the constant bound to v's class, if any.
func (e *EqClasses) Const(v Var) (value.Value, bool) {
	c, ok := e.constOf[e.Find(v)]
	return c, ok
}

// Unsatisfiable reports whether the equality list equates two distinct
// constants, making the query empty on every database.
func (e *EqClasses) Unsatisfiable() bool { return e.conflict }

// Classes returns the classes as sorted member lists, sorted by first
// member, for deterministic printing and testing.
func (e *EqClasses) Classes() [][]Var {
	byRoot := make(map[Var][]Var)
	for v := range e.parent {
		r := e.Find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	out := make([][]Var, 0, len(byRoot))
	for _, members := range byRoot {
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		out = append(out, members)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// ClassPositions describes where one equality class touches the body:
// the set of (atom index, position) locations of its member variables.
type ClassPosition struct {
	Atom int // index into q.Body
	Pos  int // attribute position within the atom
}

// Positions returns, for each class representative, the body locations of
// its members.  q must be the query the classes were computed from.
func (e *EqClasses) Positions(q *Query) map[Var][]ClassPosition {
	out := make(map[Var][]ClassPosition)
	for i, a := range q.Body {
		for j, v := range a.Vars {
			r := e.Find(v)
			out[r] = append(out[r], ClassPosition{Atom: i, Pos: j})
		}
	}
	for _, ps := range out {
		sort.Slice(ps, func(i, j int) bool {
			if ps[i].Atom != ps[j].Atom {
				return ps[i].Atom < ps[j].Atom
			}
			return ps[i].Pos < ps[j].Pos
		})
	}
	return out
}

// String summarizes the classes, e.g. "{A,X}={C} {B,Y}".
func (e *EqClasses) String() string {
	var b []byte
	for i, cls := range e.Classes() {
		if i > 0 {
			b = append(b, ' ')
		}
		b = append(b, '{')
		for j, v := range cls {
			if j > 0 {
				b = append(b, ',')
			}
			b = append(b, v...)
		}
		b = append(b, '}')
		if c, ok := e.Const(cls[0]); ok {
			b = append(b, fmt.Sprintf("=%s", c)...)
		}
	}
	return string(b)
}
