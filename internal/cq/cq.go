// Package cq implements the paper's conjunctive query language: relational
// algebra queries built from select, project, join and cartesian product
// with equality selections, written in the restricted Datalog style of §2:
//
//	V(A1, ..., An) :- R1(X1, ..., Xk), ..., Rl(Y1, ..., Ym), equality-list.
//
// Every placeholder in the body is a distinct variable; all selection and
// join conditions live in the equality list (X = Y or X = constant).  The
// package provides the equality-class machinery, the receives analysis,
// identity joins and ij-saturation, product queries (Lemmas 1 and 2),
// evaluation over database instances, and a parser/printer for the syntax.
package cq

import (
	"fmt"
	"sort"
	"strings"

	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Var is a query variable.
type Var string

// Term is either a variable or a constant; exactly one of the fields is
// meaningful, discriminated by IsConst.
type Term struct {
	IsConst bool
	Var     Var
	Const   value.Value
	// Pos locates the term in its source text (zero when constructed
	// programmatically).  It carries no semantic weight: terms are
	// compared field-by-field everywhere, never as whole structs.
	Pos Pos
}

// V builds a variable term.
func V(name string) Term { return Term{Var: Var(name)} }

// C builds a constant term.
func C(v value.Value) Term { return Term{IsConst: true, Const: v} }

// String renders the term.
func (t Term) String() string {
	if t.IsConst {
		return t.Const.String()
	}
	return string(t.Var)
}

// Atom is one occurrence of a relation in a query body.  Per the paper's
// syntax every position holds a distinct variable (globally distinct
// across the whole body); all conditions are expressed in the equality
// list.
type Atom struct {
	Rel  string
	Vars []Var
	// Pos locates the atom (its relation name) in the source text.
	Pos Pos
	// VarPos, when set by a parser, holds one position per placeholder
	// in Vars.  Programmatically built atoms leave it nil; consumers
	// must fall back to Pos.
	VarPos []Pos
}

// VarPosition returns the source position of the i-th placeholder,
// falling back to the atom's own position when the parser did not
// record per-variable spans.
func (a Atom) VarPosition(i int) Pos {
	if i >= 0 && i < len(a.VarPos) {
		return a.VarPos[i]
	}
	return a.Pos
}

// String renders "R(X, Y)".
func (a Atom) String() string {
	parts := make([]string, len(a.Vars))
	for i, v := range a.Vars {
		parts[i] = string(v)
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// Equality is one predicate of the equality list: Left = Right where Right
// is a variable or a constant.
type Equality struct {
	Left  Var
	Right Term
	// Pos locates the equality predicate in the source text.
	Pos Pos
}

// String renders "X = Y" or "X = T1:3".
func (e Equality) String() string { return string(e.Left) + " = " + e.Right.String() }

// Query is a conjunctive query with equality selections.
type Query struct {
	// HeadRel optionally names the view/answer relation.
	HeadRel string
	// Head lists the answer terms: variables occurring in the body, or
	// constants.
	Head []Term
	// Body lists the relation occurrences.
	Body []Atom
	// Eqs is the equality list.
	Eqs []Equality
	// Pos locates the start of the query in its source text.
	Pos Pos
}

// Clone returns a deep copy.
func (q *Query) Clone() *Query {
	c := &Query{HeadRel: q.HeadRel, Pos: q.Pos}
	c.Head = append([]Term(nil), q.Head...)
	c.Body = make([]Atom, len(q.Body))
	for i, a := range q.Body {
		c.Body[i] = Atom{
			Rel:    a.Rel,
			Vars:   append([]Var(nil), a.Vars...),
			Pos:    a.Pos,
			VarPos: append([]Pos(nil), a.VarPos...),
		}
	}
	c.Eqs = append([]Equality(nil), q.Eqs...)
	return c
}

// Arity returns the width of the answer.
func (q *Query) Arity() int { return len(q.Head) }

// BodyVars returns every placeholder variable in body order.
func (q *Query) BodyVars() []Var {
	var out []Var
	for _, a := range q.Body {
		out = append(out, a.Vars...)
	}
	return out
}

// HasBodyVar reports whether v occurs as a placeholder in the body.
func (q *Query) HasBodyVar(v Var) bool {
	for _, a := range q.Body {
		for _, w := range a.Vars {
			if w == v {
				return true
			}
		}
	}
	return false
}

// VarPos locates a variable's placeholder occurrence: the body atom index
// and position.  Because placeholders are globally distinct there is at
// most one.  Returns (-1, -1) if absent.
func (q *Query) VarPos(v Var) (atom, pos int) {
	for i, a := range q.Body {
		for j, w := range a.Vars {
			if w == v {
				return i, j
			}
		}
	}
	return -1, -1
}

// Rename returns a copy of q with every variable prefixed, guaranteeing
// disjointness from any query not using the prefix.  Used by query
// composition and saturation.
func (q *Query) Rename(prefix string) *Query {
	c := q.Clone()
	rename := func(v Var) Var { return Var(prefix + string(v)) }
	for i, t := range c.Head {
		if !t.IsConst {
			c.Head[i].Var = rename(t.Var)
		}
	}
	for i := range c.Body {
		for j, v := range c.Body[i].Vars {
			c.Body[i].Vars[j] = rename(v)
		}
	}
	for i := range c.Eqs {
		c.Eqs[i].Left = rename(c.Eqs[i].Left)
		if !c.Eqs[i].Right.IsConst {
			c.Eqs[i].Right.Var = rename(c.Eqs[i].Right.Var)
		}
	}
	return c
}

// Constants returns every constant mentioned by the query (head and
// equality list), sorted and deduplicated.  The paper's proofs repeatedly
// pick values "not among any constants in the queries"; this is that set.
func (q *Query) Constants() []value.Value {
	var s value.Set
	for _, t := range q.Head {
		if t.IsConst {
			s.Add(t.Const)
		}
	}
	for _, e := range q.Eqs {
		if e.Right.IsConst {
			s.Add(e.Right.Const)
		}
	}
	return s.Values()
}

// RelationsUsed returns the distinct relation names in the body, sorted.
func (q *Query) RelationsUsed() []string {
	seen := make(map[string]bool)
	var out []string
	for _, a := range q.Body {
		if !seen[a.Rel] {
			seen[a.Rel] = true
			out = append(out, a.Rel)
		}
	}
	sort.Strings(out)
	return out
}

// Validate checks the query against a schema: known relations, matching
// arities, globally distinct placeholder variables, safe head (every head
// variable occurs in the body), equality variables occurring in the body
// (the paper requires this), and type correctness of every equality and
// constant.
func (q *Query) Validate(s *schema.Schema) error {
	varType := make(map[Var]value.Type)
	for _, a := range q.Body {
		r := s.Relation(a.Rel)
		if r == nil {
			return fmt.Errorf("cq: unknown relation %q", a.Rel)
		}
		if len(a.Vars) != r.Arity() {
			return fmt.Errorf("cq: %s has %d placeholders, scheme wants %d", a.Rel, len(a.Vars), r.Arity())
		}
		for i, v := range a.Vars {
			if v == "" {
				return fmt.Errorf("cq: empty variable in %s", a.Rel)
			}
			if _, dup := varType[v]; dup {
				return fmt.Errorf("cq: placeholder %s reused; placeholders must be distinct variables", v)
			}
			varType[v] = r.Attrs[i].Type
		}
	}
	if len(q.Body) == 0 {
		return fmt.Errorf("cq: empty body")
	}
	for i, t := range q.Head {
		if t.IsConst {
			if t.Const.Type == value.NoType {
				return fmt.Errorf("cq: head position %d has untyped constant", i)
			}
			continue
		}
		if _, ok := varType[t.Var]; !ok {
			return fmt.Errorf("cq: head variable %s does not occur in the body", t.Var)
		}
	}
	for _, e := range q.Eqs {
		lt, ok := varType[e.Left]
		if !ok {
			return fmt.Errorf("cq: equality variable %s does not occur in the body", e.Left)
		}
		if e.Right.IsConst {
			if e.Right.Const.Type != lt {
				return fmt.Errorf("cq: selection %s compares %v with %v", e, lt, e.Right.Const.Type)
			}
			continue
		}
		rt, ok := varType[e.Right.Var]
		if !ok {
			return fmt.Errorf("cq: equality variable %s does not occur in the body", e.Right.Var)
		}
		if lt != rt {
			return fmt.Errorf("cq: equality %s compares %v with %v", e, lt, rt)
		}
	}
	return nil
}

// HeadType infers the answer type (the "type of the view") against a
// schema.  Validate must succeed first.
func (q *Query) HeadType(s *schema.Schema) ([]value.Type, error) {
	varType := make(map[Var]value.Type)
	for _, a := range q.Body {
		r := s.Relation(a.Rel)
		if r == nil {
			return nil, fmt.Errorf("cq: unknown relation %q", a.Rel)
		}
		if len(a.Vars) != r.Arity() {
			return nil, fmt.Errorf("cq: %s arity mismatch", a.Rel)
		}
		for i, v := range a.Vars {
			varType[v] = r.Attrs[i].Type
		}
	}
	out := make([]value.Type, len(q.Head))
	for i, t := range q.Head {
		if t.IsConst {
			out[i] = t.Const.Type
			continue
		}
		tt, ok := varType[t.Var]
		if !ok {
			return nil, fmt.Errorf("cq: head variable %s unbound", t.Var)
		}
		out[i] = tt
	}
	return out, nil
}

// String renders the query in the paper's syntax:
//
//	Q(X, Y) :- R(X, Z), S(W, Y), Z = W, X = T1:3.
func (q *Query) String() string {
	var b strings.Builder
	head := q.HeadRel
	if head == "" {
		head = "Q"
	}
	b.WriteString(head)
	b.WriteByte('(')
	for i, t := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteString(") :- ")
	for i, a := range q.Body {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	for _, e := range q.Eqs {
		b.WriteString(", ")
		b.WriteString(e.String())
	}
	b.WriteByte('.')
	return b.String()
}

// Identity returns the identity query for relation r: R(X1..Xn) :- R(X1..Xn).
// β∘α = id is decided by comparing compositions against these.
func Identity(r *schema.Relation) *Query {
	q := &Query{HeadRel: r.Name}
	atom := Atom{Rel: r.Name}
	for i := range r.Attrs {
		v := Var(fmt.Sprintf("X%d", i))
		atom.Vars = append(atom.Vars, v)
		q.Head = append(q.Head, Term{Var: v})
	}
	q.Body = []Atom{atom}
	return q
}
