package cq

import (
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// FuzzInternRoundTrip drives the interning layer with parsed instances
// and queries: freezing must be deterministic (two freezes of equal
// databases produce identical ID tables and rows), decoding must invert
// interning exactly, and the labeled-null ID namespace must never
// collide with the constant namespace.  Seeds come from the parser fuzz
// corpora of both packages.
func FuzzInternRoundTrip(f *testing.F) {
	instSeeds := []string{
		"R(T1:1, T2:5)",
		"R(T1:1, T2:5)\nS(T3:9)",
		"# comment\n\nR(T1:2, T2:2)",
		"R(T1:3, T2:3)\nR(T1:4, T2:3)\nS(T3:1)\nS(T3:2)",
		"",
	}
	cqSeeds := []string{
		"Q(X, Y) :- R(X, Y).",
		"Q(X) :- R(X, Y), S(Z), Y = T2:3.",
		"Q(T1:7, Y) :- R(X, Y).",
		"V(X, X) :- R(X, Y), X = Y.",
		"Q(X) :- R(X, Y), T1:1 = T1:2.",
	}
	for _, is := range instSeeds {
		for _, qs := range cqSeeds {
			f.Add(is, qs)
		}
	}
	sch := schema.MustParse("R(a*:T1, b:T2)\nS(c:T3)")
	f.Fuzz(func(t *testing.T, instText, cqText string) {
		d, err := instance.Parse(sch, instText)
		if err != nil {
			return
		}
		f1 := instance.FreezeDatabase(d)
		f2 := instance.FreezeDatabase(d)
		// IDs are stable under re-intern: equal databases freeze to
		// identical tables, cell for cell.
		if f1.Interner.Len() != f2.Interner.Len() {
			t.Fatalf("re-freeze changed interner size: %d vs %d", f1.Interner.Len(), f2.Interner.Len())
		}
		for ri := range f1.Relations {
			r1, r2 := f1.Relations[ri], f2.Relations[ri]
			if r1.NumRows() != r2.NumRows() {
				t.Fatalf("relation %d: %d vs %d rows", ri, r1.NumRows(), r2.NumRows())
			}
			for i := 0; i < r1.NumRows(); i++ {
				for p := 0; p < r1.Arity(); p++ {
					if r1.Cell(i, p) != r2.Cell(i, p) {
						t.Fatalf("relation %d cell (%d,%d): %d vs %d", ri, i, p, r1.Cell(i, p), r2.Cell(i, p))
					}
				}
			}
			// decode(intern(v)) == v, row by row against the surface view.
			tuples := d.Relations[ri].Tuples()
			for i, tup := range tuples {
				dec := f1.DecodeTuple(ri, i)
				for p := range tup {
					if dec[p] != tup[p] {
						t.Fatalf("relation %d row %d decodes to %v, want %v", ri, i, dec, tup)
					}
				}
			}
		}
		// The same values interned as labeled nulls land in the tagged
		// namespace and never collide with their constant IDs.
		for ri, r := range d.Relations {
			for _, tup := range r.Tuples() {
				for _, v := range tup {
					cid, ok := f1.Interner.Lookup(v)
					if !ok {
						t.Fatalf("relation %d: frozen view missing value %v", ri, v)
					}
					nid := f1.Interner.InternNull(v)
					if !nid.IsNull() || cid.IsNull() {
						t.Fatalf("null tagging broken: const %d null %d for %v", cid, nid, v)
					}
					if nid == cid {
						t.Fatalf("null ID collides with constant ID %d for %v", cid, v)
					}
					if got, ok := f1.Interner.Decode(nid); !ok || got != v {
						t.Fatalf("null decode(%d) = %v (%v), want %v", nid, got, ok, v)
					}
				}
			}
		}
		// Query constants survive an intern/decode round trip through a
		// fresh interner, independent of the database's tables.
		q, err := Parse(cqText)
		if err != nil {
			return
		}
		in := value.NewInterner(4)
		for _, c := range q.Constants() {
			id := in.Intern(c)
			if id != in.Intern(c) {
				t.Fatalf("re-intern of %v unstable", c)
			}
			if got, ok := in.Decode(id); !ok || got != c {
				t.Fatalf("decode(intern(%v)) = %v (%v)", c, got, ok)
			}
		}
		// An interned search over the frozen view must agree with the
		// generic oracle even on arbitrary parsed inputs.
		if len(q.Body) == 0 {
			return
		}
		want := make(instance.Tuple, len(q.Head))
		for i := range want {
			want[i] = value.Value{Type: 1, N: int64(i)}
		}
		okP, _, esP, errP := FindAnswerBindingMode(q, d, want, SearchPlanned)
		okI, _, esI, errI := FindAnswerBindingMode(q, d, want, SearchInterned)
		if (errP == nil) != (errI == nil) {
			t.Fatalf("errors diverge: planned %v, interned %v", errP, errI)
		}
		if errP == nil && (okP != okI || esP.Nodes != esI.Nodes) {
			t.Fatalf("planned (%v, %d nodes) vs interned (%v, %d nodes)", okP, esP.Nodes, okI, esI.Nodes)
		}
	})
}
