package cq

import (
	"context"
	"sync"

	"keyedeq/internal/instance"
	"keyedeq/internal/value"
)

// This file is the dense scan: the adaptive mode's no-plan arm.  It
// mirrors findAnswerNaive (eval.go) operation for operation — dynamic
// most-bound-first atom picking over full relation scans, the same
// node accounting and masked cancellation polling — but binds values
// into flat slices indexed by densely numbered equality classes
// instead of a map keyed by variable names.  It deliberately does NOT
// freeze the database: on workloads where every relation fits under
// the plan's scan threshold the interning pass would cost more than
// the whole search, and a surface value compares in one struct
// comparison anyway.  A wanted value absent from the database simply
// never matches any scanned tuple, exactly as in the naive search —
// no ghost-ID machinery needed.  The prologue is kept map-free (class
// numbering and prebinding run over small linear-scanned slices)
// because on tiny canonical databases the whole search is a handful
// of nodes and setup cost is the race.  Differential tests pin this
// scan to the naive oracle bit-for-bit: verdicts, EvalStats, and
// witnesses.

// scanSearcher carries the state of one dense scan: flat
// class-indexed bindings plus the per-atom class layout of the
// dynamic order.  Searchers are pooled: on tiny canonical databases
// the search itself is a handful of nodes, so the prologue's buffer
// allocations would otherwise dominate the wall time.
type scanSearcher struct {
	ctx     context.Context
	q       *Query
	eq      *EqClasses
	binding []value.Value
	bound   []bool
	stats   EvalStats
	// canceled latches the context error the moment a poll observes it.
	canceled error
	// addedStack records newly bound class ids in binding order,
	// unwound by truncation to a caller's mark.
	addedStack []int32
	// roots holds the dense class id of each atom position; used marks
	// atoms already placed on the current search path.
	roots [][]int32
	used  []bool
	// rows holds each atom's candidate tuples, in the relation's
	// canonical order — the same order the naive search scans.
	rows [][]instance.Tuple
	// classRoots maps dense class id back to the class representative;
	// classIndex linear-scans it, which beats a map at body-atom scale.
	classRoots []Var
	found      bool
	witness    map[Var]value.Value
	// ints and bools back the int32 and bool slices above across
	// reuses; they only ever grow.
	ints  []int32
	bools []bool
}

// scanPool recycles searcher state across searches.  Only the buffer
// capacity survives a round trip: acquire re-slices and zeroes what
// the next search reads, and release drops every reference to caller
// data so the pool cannot retain a database or query.
var scanPool = sync.Pool{New: func() any { return new(scanSearcher) }}

// release returns the searcher to the pool, dropping data references.
func (s *scanSearcher) release() {
	s.ctx, s.q, s.eq = nil, nil, nil
	s.canceled, s.witness = nil, nil
	clear(s.rows)
	scanPool.Put(s)
}

// classIndex resolves a class representative to its dense id, or -1.
func (s *scanSearcher) classIndex(root Var) int {
	for ci, cr := range s.classRoots {
		if cr == root {
			return ci
		}
	}
	return -1
}

// pickNext chooses the unused atom with the most already-bound
// positions, breaking ties by original body order — the naive
// search's dynamic greedy order, verbatim.
func (s *scanSearcher) pickNext() int {
	best, bestBound := -1, -1
	for i, rts := range s.roots {
		if s.used[i] {
			continue
		}
		bound := 0
		for _, id := range rts {
			if s.bound[id] {
				bound++
			}
		}
		if bound > bestBound {
			best, bestBound = i, bound
		}
	}
	return best
}

// unbindTo unwinds every binding pushed since the caller's mark.
func (s *scanSearcher) unbindTo(mark int) {
	for _, id := range s.addedStack[mark:] {
		s.bound[id] = false
	}
	s.addedStack = s.addedStack[:mark]
}

// countNode advances the shared node counter under the same polling
// contract as the generic searcher (see searcher.countNode).
func (s *scanSearcher) countNode() bool {
	if s.canceled != nil {
		return false
	}
	s.stats.Nodes++
	if s.stats.Nodes&cancelCheckMask == 0 {
		if err := s.ctx.Err(); err != nil {
			s.canceled = err
			return false
		}
	}
	return true
}

// run extends the current partial match by one atom, scanning its
// relation's rows in canonical order.
func (s *scanSearcher) run(remaining int) {
	if remaining == 0 {
		s.found = true
		// Capture the successful binding at the leaf, per body variable
		// through its class representative, exactly as the naive search
		// does — the unwind below erases it.
		s.witness = make(map[Var]value.Value)
		for _, a := range s.q.Body {
			for _, v := range a.Vars {
				s.witness[v] = s.binding[s.classIndex(s.eq.Find(v))]
			}
		}
		return
	}
	ai := s.pickNext()
	rts := s.roots[ai]
	s.used[ai] = true
	for _, row := range s.rows[ai] {
		if s.found || s.canceled != nil {
			return
		}
		if !s.countNode() {
			return
		}
		mark := len(s.addedStack)
		ok := true
		for p, id := range rts {
			if s.bound[id] {
				if s.binding[id] != row[p] {
					ok = false
					break
				}
				continue
			}
			s.binding[id] = row[p]
			s.bound[id] = true
			s.addedStack = append(s.addedStack, id)
		}
		if ok {
			s.run(remaining - 1)
		}
		s.unbindTo(mark)
	}
	s.used[ai] = false
}

// findAnswerScanID is the standalone entry point (the adaptive tier-0
// fast path goes through scanIDCore to reuse its prologue work).
func findAnswerScanID(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return false, nil, stats, nil
	}
	rels, _, err := resolveRelations(q, d)
	if err != nil {
		return false, nil, stats, err
	}
	return scanIDCore(ctx, q, want, eq, rels)
}

// scanIDCore runs the dense scan over pre-resolved relations.
//
//keyedeq:hot -- the adaptive default's small-instance arm: every containment check on tiny canonical databases lands here
func scanIDCore(ctx context.Context, q *Query, want instance.Tuple, eq *EqClasses, rels []*instance.Relation) (bool, map[Var]value.Value, EvalStats, error) {
	// Number the body's equality classes densely, exactly as buildPlan
	// does, so bindings live in flat slices.  One int32 block backs the
	// per-atom layouts and the unwind stack; all buffers come from the
	// pooled searcher and only grow when a query outsizes what a prior
	// search left behind.
	total := 0
	for _, a := range q.Body {
		total += len(a.Vars)
	}
	s := scanPool.Get().(*scanSearcher)
	defer s.release()
	s.ctx, s.q, s.eq = ctx, q, eq
	s.stats = EvalStats{}
	s.found = false
	if cap(s.ints) < 2*total {
		s.ints = make([]int32, 2*total)
	}
	ints := s.ints[:2*total]
	backing := ints[:total]
	if cap(s.roots) < len(q.Body) {
		s.roots = make([][]int32, len(q.Body))
		s.rows = make([][]instance.Tuple, len(q.Body))
	}
	roots := s.roots[:len(q.Body)]
	classRoots := s.classRoots[:0]
	for i, a := range q.Body {
		roots[i], backing = backing[:len(a.Vars):len(a.Vars)], backing[len(a.Vars):]
		for p, v := range a.Vars {
			root := eq.Find(v)
			id := -1
			for ci, cr := range classRoots {
				if cr == root {
					id = ci
					break
				}
			}
			if id < 0 {
				id = len(classRoots)
				classRoots = append(classRoots, root)
			}
			roots[i][p] = int32(id)
		}
	}
	numClasses := len(classRoots)
	if cap(s.bools) < numClasses+len(q.Body) {
		s.bools = make([]bool, numClasses+len(q.Body))
	}
	bools := s.bools[:numClasses+len(q.Body)]
	for i := range bools {
		bools[i] = false
	}
	if cap(s.binding) < numClasses {
		s.binding = make([]value.Value, numClasses)
	}
	s.binding = s.binding[:numClasses]
	s.bound = bools[:numClasses:numClasses]
	s.addedStack = ints[total : total : 2*total]
	s.roots = roots
	s.used = bools[numClasses:]
	s.rows = s.rows[:len(q.Body)]
	s.classRoots = classRoots
	// Prebind constant-bound classes, then the wanted head values, in
	// the naive search's order: a constant conflicting with its head
	// slot, or two head slots disagreeing on one class, is an early
	// miss before any node is counted.
	for ci, root := range classRoots {
		if c, ok := eq.Const(root); ok {
			s.binding[ci] = c
			s.bound[ci] = true
		}
	}
	// Head classes with no body occurrence still need conflict checks
	// across head slots; they are tracked off to the side (almost
	// always empty) since no atom will ever read them.
	var exRoots []Var
	var exVals []value.Value
	for i, term := range q.Head {
		if term.IsConst {
			if term.Const != want[i] {
				return false, nil, s.stats, nil
			}
			continue
		}
		root := eq.Find(term.Var)
		if ci := s.classIndex(root); ci >= 0 {
			if s.bound[ci] {
				if s.binding[ci] != want[i] {
					return false, nil, s.stats, nil
				}
				continue
			}
			s.binding[ci] = want[i]
			s.bound[ci] = true
			continue
		}
		matched := false
		for xi, xr := range exRoots {
			if xr == root {
				if exVals[xi] != want[i] {
					return false, nil, s.stats, nil
				}
				matched = true
				break
			}
		}
		if !matched {
			exRoots = append(exRoots, root)
			exVals = append(exVals, want[i])
		}
	}
	for i, r := range rels {
		s.rows[i] = r.Tuples()
	}
	s.run(len(q.Body))
	if s.canceled != nil {
		return false, nil, s.stats, s.canceled
	}
	return s.found, s.witness, s.stats, nil
}
