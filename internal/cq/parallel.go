package cq

import (
	"sync"

	"keyedeq/internal/value"
)

// This file fans a plan's connected components out to a bounded worker
// pool.  Components share no unbound equality classes, so each is a
// self-contained search from the prebound state: workers never touch
// each other's bindings, and each component's node count is a
// deterministic function of the plan alone.  That makes the merge
// exact: results are folded in component order with as-if-sequential
// semantics, so verdicts, Nodes, and CompNodes are bit-identical to
// the sequential runtime on every non-canceled outcome — a sequential
// run stops at the first missing component, so the merge does too,
// discarding (not reporting) any speculative work later components
// did.  Only cancellation timing can differ: each worker polls its
// context under its own masked counter, so a cancelled parallel search
// still stops promptly, but the partial node counts it reports depend
// on where each worker was interrupted.

// compResult is one component's outcome: the verdict, its node count,
// and — on success — the classes it bound with their values, to be
// folded back into the parent searcher.
type compResult struct {
	found bool
	nodes int64
	err   error
	added []int32
	vals  []value.ID
}

// runComponentsParallel searches the plan's components concurrently on
// workers goroutines and merges the results in component order.  The
// caller's searcher holds the prebound state; its index slots are
// pre-built up front (sequentially, under the usual polling contract)
// and then shared read-only by every worker.
func runComponentsParallel(s *streamSearcher, plan *searchPlan, workers int) (bool, error) {
	for ci := range plan.comps {
		comp := &plan.comps[ci]
		for si := range comp.steps {
			st := &comp.steps[si]
			if st.indexSlot >= 0 && !s.idx[st.indexSlot].built {
				if !s.buildIndex(st, s.fz.Relations[st.relIdx]) {
					return false, s.canceled
				}
			}
		}
	}
	results := make([]compResult, len(plan.comps))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ci := range jobs {
				results[ci] = searchOneComponent(s, plan, ci)
			}
		}()
	}
	for ci := range plan.comps {
		jobs <- ci
	}
	close(jobs)
	wg.Wait()
	for ci := range plan.comps {
		r := &results[ci]
		s.stats.CompNodes = append(s.stats.CompNodes, r.nodes)
		s.stats.Nodes += r.nodes
		if r.err != nil {
			s.canceled = r.err
			return false, r.err
		}
		if !r.found {
			return false, nil
		}
		for k, id := range r.added {
			s.binding[id] = r.vals[k]
			s.bound[id] = true
		}
	}
	return true, nil
}

// searchOneComponent runs one component on a worker-private searcher
// seeded from the parent's prebound state, sharing the parent's
// read-only indexes and ghost table.
func searchOneComponent(parent *streamSearcher, plan *searchPlan, ci int) compResult {
	steps := plan.comps[ci].steps
	var cstats EvalStats
	ws := &streamSearcher{
		idSearchCore: idSearchCore{
			ctx:       parent.ctx,
			fz:        parent.fz,
			binding:   append([]value.ID(nil), parent.binding...),
			bound:     append([]bool(nil), parent.bound...),
			stats:     &cstats,
			ghostVals: parent.ghostVals,
		},
		plan:    plan,
		idx:     parent.idx,
		cursors: make([]stepCursor, len(steps)),
		marks:   make([]int, len(steps)),
	}
	found := ws.runPipeline(steps)
	res := compResult{found: found, nodes: cstats.Nodes, err: ws.canceled}
	if found {
		res.added = ws.addedStack
		res.vals = make([]value.ID, len(ws.addedStack))
		for k, id := range ws.addedStack {
			res.vals[k] = ws.binding[id]
		}
	}
	return res
}
