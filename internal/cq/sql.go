package cq

import (
	"fmt"
	"strings"

	"keyedeq/internal/schema"
)

// ToSQL renders the conjunctive query as a SQL SELECT statement over the
// schema, one table alias per body atom, with the equality list as the
// WHERE clause.  Constants render as integer literals (the attribute
// types are erased, as SQL would).  The translation is for display and
// interoperability; evaluation semantics are SELECT DISTINCT (the
// paper's queries are set-valued).
func ToSQL(q *Query, s *schema.Schema) (string, error) {
	if err := q.Validate(s); err != nil {
		return "", err
	}
	alias := func(i int) string { return fmt.Sprintf("t%d", i) }
	// Column expression for each body variable.
	colOf := make(map[Var]string)
	for i, a := range q.Body {
		rel := s.Relation(a.Rel)
		for p, v := range a.Vars {
			colOf[v] = alias(i) + "." + rel.Attrs[p].Name
		}
	}
	var sel []string
	for i, t := range q.Head {
		var expr string
		if t.IsConst {
			expr = fmt.Sprintf("%d", t.Const.N)
		} else {
			expr = colOf[t.Var]
		}
		sel = append(sel, fmt.Sprintf("%s AS c%d", expr, i))
	}
	var from []string
	for i, a := range q.Body {
		from = append(from, a.Rel+" AS "+alias(i))
	}
	var where []string
	for _, e := range q.Eqs {
		l := colOf[e.Left]
		var r string
		if e.Right.IsConst {
			r = fmt.Sprintf("%d", e.Right.Const.N)
		} else {
			r = colOf[e.Right.Var]
		}
		where = append(where, l+" = "+r)
	}
	var b strings.Builder
	b.WriteString("SELECT DISTINCT ")
	b.WriteString(strings.Join(sel, ", "))
	b.WriteString("\nFROM ")
	b.WriteString(strings.Join(from, ", "))
	if len(where) > 0 {
		b.WriteString("\nWHERE ")
		b.WriteString(strings.Join(where, " AND "))
	}
	b.WriteString(";")
	return b.String(), nil
}
