package cq

import (
	"testing"
)

// Native fuzz targets.  Under plain `go test` the seed corpus runs as
// regression tests; `go test -fuzz=FuzzParseCQ` explores further.  The
// invariant in each case: the parser never panics, and anything it
// accepts survives a print/reparse round trip.

func FuzzParseCQ(f *testing.F) {
	seeds := []string{
		"Q(X, Y) :- P(X, Y).",
		"Q(X) :- R(X, Y), S(Z, W), Y = Z, W = T1:3.",
		"Q(T1:7, Y) :- P(X, Y).",
		"V(X, X) :- P(X, Y), X = Y.",
		"",
		"Q(X)",
		"Q(X) :- .",
		"Q((((",
		"Q(X) :- P(X, T1:1).",
		"名前(X) :- P(X, Y).",
		"Q(X) :- P(X, Y), T1:1 = T1:2.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		q, err := Parse(text)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q but rejected own print %q: %v", text, printed, err)
		}
		if q2.String() != printed {
			t.Fatalf("print not a fixpoint: %q -> %q", printed, q2.String())
		}
	})
}
