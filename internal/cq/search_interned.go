package cq

import (
	"context"
	"sort"

	"keyedeq/internal/instance"
	"keyedeq/internal/obs"
	"keyedeq/internal/value"
)

// This file runs the planned homomorphism search over a database's
// frozen (interned) view: bindings are dense value.IDs, relation bodies
// are flat fixed-width ID rows, and every probe is an integer
// comparison — no value structs, no byte-string keys, no per-probe
// allocation.  The search mirrors search.go's traversal exactly — the
// same plan, the same candidate enumeration order, the same countNode
// polling contract — so it visits the identical node sequence and
// returns identical verdicts and stats; only the tuple representation
// differs.  The generic planned search remains as the differential
// oracle (SearchPlanned), and IDs never escape this file: the witness
// is decoded back to surface values before it is returned.

// internedSearcher carries the mutable state of one interned search:
// the shared ID-search core (bindings, ghosts, unwind stack, node
// counter — idcore.go) plus the sorted-row index machinery particular
// to this runtime.
type internedSearcher struct {
	idSearchCore
	plan *searchPlan
	// idx holds one lazily built sorted row index per plan index slot:
	// the relation's row numbers ordered by the slot's key positions
	// (ties by row number, which keeps candidate enumeration in exactly
	// the generic bucket order).  A probe is two binary searches over
	// it — zero allocations, any key width.
	idx []internedIndex
}

type internedIndex struct {
	built bool
	rows  []int32
}

func newInternedSearcher(ctx context.Context, plan *searchPlan, fz *instance.Frozen, stats *EvalStats) *internedSearcher {
	return &internedSearcher{
		idSearchCore: idSearchCore{
			ctx:     ctx,
			fz:      fz,
			binding: make([]value.ID, plan.numClasses),
			bound:   make([]bool, plan.numClasses),
			stats:   stats,
		},
		plan: plan,
		idx:  make([]internedIndex, plan.numSlots),
	}
}

// buildIndex sorts the relation's row numbers by the step's key
// positions.  The fill scan honors the same masked polling contract as
// the generic index build; on cancellation the partial index is
// discarded, not stored.
func (s *internedSearcher) buildIndex(st *planStep, fr *instance.FrozenRelation) bool {
	n := fr.NumRows()
	rows := make([]int32, n)
	for i := range rows {
		if i&cancelCheckMask == cancelCheckMask {
			if err := s.ctx.Err(); err != nil {
				s.canceled = err
				return false
			}
		}
		rows[i] = int32(i)
	}
	keyPos := st.keyPos
	sort.Slice(rows, func(a, b int) bool {
		ra, rb := int(rows[a]), int(rows[b])
		for _, p := range keyPos {
			ca, cb := fr.Cell(ra, p), fr.Cell(rb, p)
			if ca != cb {
				return ca < cb
			}
		}
		return ra < rb
	})
	s.idx[st.indexSlot] = internedIndex{built: true, rows: rows}
	return true
}

// probe returns the [lo, hi) range of the slot's sorted index whose key
// cells equal the current binding at the step's key positions.
func (s *internedSearcher) probe(st *planStep, fr *instance.FrozenRelation) (int, int) {
	rows := s.idx[st.indexSlot].rows
	cmp := func(ri int) int {
		for _, p := range st.keyPos {
			c, k := fr.Cell(ri, p), s.binding[st.roots[p]]
			switch {
			case c < k:
				return -1
			case c > k:
				return 1
			}
		}
		return 0
	}
	lo := sort.Search(len(rows), func(i int) bool { return cmp(int(rows[i])) >= 0 })
	hi := sort.Search(len(rows), func(i int) bool { return cmp(int(rows[i])) > 0 })
	return lo, hi
}

// findFrom searches for one match of steps[i:] over the frozen rows,
// leaving the successful bindings in place.
//
//keyedeq:hot -- the interned backtracking recursion; every probe and bind is ID arithmetic
func (s *internedSearcher) findFrom(steps []planStep, i int) bool {
	if i == len(steps) {
		return true
	}
	st := &steps[i]
	fr := s.fz.Relations[st.relIdx]
	if st.indexSlot < 0 {
		for ri, n := 0, fr.NumRows(); ri < n; ri++ {
			if !s.countNode() {
				return false
			}
			mark := len(s.addedStack)
			if s.tryBind(st, fr, ri) && s.findFrom(steps, i+1) {
				return true
			}
			s.unbindTo(mark)
		}
		return false
	}
	if !s.idx[st.indexSlot].built && !s.buildIndex(st, fr) {
		return false
	}
	lo, hi := s.probe(st, fr)
	rows := s.idx[st.indexSlot].rows
	for k := lo; k < hi; k++ {
		if !s.countNode() {
			return false
		}
		mark := len(s.addedStack)
		if s.tryBind(st, fr, int(rows[k])) && s.findFrom(steps, i+1) {
			return true
		}
		s.unbindTo(mark)
	}
	return false
}

// findAnswerInterned is the interned-search implementation behind
// FindAnswerBindingCtx: identical structure to findAnswerPlanned, with
// bindings and probes over the database's frozen view and the witness
// decoded back to surface values at the return boundary.
//
//keyedeq:hot -- the interned homomorphism search is the default inner loop of every containment check
func findAnswerInterned(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return false, nil, stats, nil
	}
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		return false, nil, stats, err
	}
	pres := collectConstPrebindings(q, eq, make([]prebinding, 0, len(q.Head)+2))
	// Pre-bind head variables to the wanted values; constants and
	// already-bound classes must agree with want.  These checks run at
	// the surface-value level, before any interning, so impossible
	// wants short-circuit exactly as in the generic search.
	for i, term := range q.Head {
		if term.IsConst {
			if term.Const != want[i] {
				return false, nil, stats, nil
			}
			continue
		}
		root := eq.Find(term.Var)
		if bv, ok := lookupPre(pres, root); ok {
			if bv != want[i] {
				return false, nil, stats, nil
			}
			continue
		}
		pres = append(pres, prebinding{root: root, val: want[i]})
	}
	o := obs.FromContext(ctx)
	planStart := o.Time()
	plan := buildPlan(q, rels, relIdxs, eq, pres)
	if o.SpansOn() {
		steps := 0
		for ci := range plan.comps {
			steps += len(plan.comps[ci].steps)
		}
		o.EmitSpan(ctx, obs.StagePlan, planStart, nil,
			obs.I("components", int64(len(plan.comps))),
			obs.I("steps", int64(steps)))
	}
	s := newInternedSearcher(ctx, plan, d.Frozen(), &stats)
	for _, pb := range pres {
		if id, ok := plan.classOf[pb.root]; ok {
			s.binding[id] = s.internID(pb.val)
			s.bound[id] = true
		}
	}
	for ci := range plan.comps {
		before := stats.Nodes
		found := s.findFrom(plan.comps[ci].steps, 0)
		stats.CompNodes = append(stats.CompNodes, stats.Nodes-before)
		if !found {
			if s.canceled != nil {
				return false, nil, stats, s.canceled
			}
			return false, nil, stats, nil
		}
	}
	// Every component succeeded with its bindings left in place; decode
	// the witness per body variable through its class representative —
	// the boundary past which no interned ID may escape.
	witness := make(map[Var]value.Value)
	for _, a := range q.Body {
		for _, v := range a.Vars {
			witness[v] = s.decodeID(s.binding[plan.classOf[eq.Find(v)]])
		}
	}
	return true, witness, stats, nil
}
