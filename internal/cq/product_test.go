package cq

import (
	"math/rand"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func TestIsProduct(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		{"Q(X) :- R(X, Y).", true},
		{"Q(X, A) :- R(X, Y), P(A, B).", true},
		{"Q(X) :- R(X, Y), R(A, B).", false},        // duplicate relation
		{"Q(X) :- R(X, Y), X = Y.", false},          // selection
		{"Q(X) :- R(X, Y), P(A, B), Y = B.", false}, // join
	}
	for _, tt := range cases {
		if got := IsProduct(MustParse(tt.q)); got != tt.want {
			t.Errorf("IsProduct(%q) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

func TestToProductPaperExample(t *testing.T) {
	// The paper's §2 construction: from the saturated query
	// Q(X,Y) :- R(X,Y), R(A,B), R(C,D), X=A, X=C, A=C, Y=B, Y=D, B=D.
	// we get a product query over just R.
	q := MustParse("Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, A = C, Y = B, Y = D, B = D.")
	if !IJSaturated(q) {
		t.Fatal("fixture should be saturated")
	}
	p, err := ToProduct(q)
	if err != nil {
		t.Fatal(err)
	}
	if !IsProduct(p) {
		t.Fatalf("result not a product query: %s", p)
	}
	if len(p.Body) != 1 || p.Body[0].Rel != "R" {
		t.Errorf("body = %v, want single R", p.Body)
	}
	if len(p.Eqs) != 0 {
		t.Errorf("eqs = %v, want none", p.Eqs)
	}
	// Head must be the kept occurrence's variables.
	if p.Head[0].Var != "X" || p.Head[1].Var != "Y" {
		t.Errorf("head = %v", p.Head)
	}
}

func TestToProductRemapsDroppedHeadVars(t *testing.T) {
	// Head uses variables from the *second* occurrence; after dedup they
	// must be remapped to the first occurrence's variables.
	q := MustParse("Q(A, B) :- R(X, Y), R(A, B), X = A, Y = B.")
	p, err := ToProduct(q)
	if err != nil {
		t.Fatal(err)
	}
	if p.Head[0].Var != "X" || p.Head[1].Var != "Y" {
		t.Errorf("head remap wrong: %v", p.Head)
	}
	for _, v := range []Var{"A", "B"} {
		if p.HasBodyVar(v) {
			t.Errorf("dropped occurrence variable %s still in body", v)
		}
	}
}

func TestToProductRequiresSaturation(t *testing.T) {
	q := MustParse("Q(X) :- R(X, Y), R(A, B), X = A.")
	if _, err := ToProduct(q); err == nil {
		t.Error("ToProduct must reject unsaturated queries")
	}
}

func TestToProductKeepsConstHead(t *testing.T) {
	q := MustParse("Q(T9:3, X) :- R(X, Y).")
	p, err := ToProduct(q)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Head[0].IsConst || p.Head[0].Const != (value.Value{Type: 9, N: 3}) {
		t.Errorf("constant head lost: %v", p.Head)
	}
}

// randInstance fills d's relations with random tuples.
func randInstance(s *schema.Schema, rng *rand.Rand, maxTuples, domain int) *instance.Database {
	d := instance.NewDatabase(s)
	for _, r := range s.Relations {
		n := rng.Intn(maxTuples + 1)
		for i := 0; i < n; i++ {
			t := make(instance.Tuple, r.Arity())
			for j, a := range r.Attrs {
				t[j] = value.Value{Type: a.Type, N: int64(rng.Intn(domain) + 1)}
			}
			d.Relations[d.Schema.RelationIndex(r.Name)].MustInsert(t)
		}
	}
	return d
}

// Lemma 1, semantically: an ij-saturated query and its product query
// return the same answers on random databases.
func TestLemma1Semantics(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)\nP(c:T1, d:T1)")
	rng := rand.New(rand.NewSource(42))
	fixtures := []string{
		"Q(X, Y) :- R(X, Y), R(A, B), R(C, D), X = A, X = C, Y = B, Y = D.",
		"Q(X, A) :- R(X, Y), P(A, B).",
		"Q(X, X2) :- R(X, X2), R(A, B), P(C, D), X = A, X2 = B.",
	}
	for _, text := range fixtures {
		q := MustParse(text)
		if err := q.Validate(s); err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if !IJSaturated(q) {
			t.Fatalf("%q: fixture must be saturated", text)
		}
		p, err := ToProduct(q)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 40; trial++ {
			d := randInstance(s, rng, 5, 3)
			a1, err := Eval(q, d)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := Eval(p, d)
			if err != nil {
				t.Fatal(err)
			}
			if !a1.Equal(a2) {
				t.Fatalf("Lemma 1 violated for %q on\n%s\nq: %s\np: %s", text, d, a1, a2)
			}
		}
	}
}

// Lemma 2, semantically: for q with only identity joins, the product
// query q̃ = ProductUnder(q) satisfies q̃ ⊑ q, preserves emptiness, and
// mentions the same relations.
func TestLemma2Semantics(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)\nP(c:T1, d:T1)")
	rng := rand.New(rand.NewSource(17))
	fixtures := []string{
		"Q(X, Y) :- R(X, Y), R(A, B), X = A.",          // partially saturated
		"Q(X, A) :- R(X, Y), R(A, B).",                 // self cross-product
		"Q(X, C) :- R(X, Y), P(C, D), R(A, B), Y = B.", // mixed
	}
	for _, text := range fixtures {
		q := MustParse(text)
		if err := q.Validate(s); err != nil {
			t.Fatal(err)
		}
		p, err := ProductUnder(q)
		if err != nil {
			t.Fatal(err)
		}
		if !IsProduct(p) {
			t.Fatalf("ProductUnder(%q) not a product query: %s", text, p)
		}
		// Condition (d): same relations.
		qr, pr := q.RelationsUsed(), p.RelationsUsed()
		if len(qr) != len(pr) {
			t.Fatalf("relations differ: %v vs %v", qr, pr)
		}
		for i := range qr {
			if qr[i] != pr[i] {
				t.Fatalf("relations differ: %v vs %v", qr, pr)
			}
		}
		for trial := 0; trial < 40; trial++ {
			d := randInstance(s, rng, 4, 3)
			aq, err := Eval(q, d)
			if err != nil {
				t.Fatal(err)
			}
			ap, err := Eval(p, d)
			if err != nil {
				t.Fatal(err)
			}
			// Condition (a): q̃ ⊑ q.
			if !ap.SubsetOf(aq) {
				t.Fatalf("Lemma 2(a) violated for %q:\nq: %s\np: %s\non %s", text, aq, ap, d)
			}
			// Condition (c): q non-empty ⇒ q̃ non-empty.
			if aq.Len() > 0 && ap.Len() == 0 {
				t.Fatalf("Lemma 2(c) violated for %q on %s", text, d)
			}
		}
	}
}

// Lemma 2(b): any FD holding on q̃(d) holds on... — note the lemma states
// FDs holding on q(d) also hold on q̃(d) (the subset).  A subset of a
// relation can only satisfy more FDs, so we check that directly.
func TestLemma2FDPreservation(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)")
	rng := rand.New(rand.NewSource(23))
	q := MustParse("Q(X, Y) :- R(X, Y), R(A, B), X = A.")
	p, err := ProductUnder(q)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 60; trial++ {
		d := randInstance(s, rng, 5, 2)
		aq, _ := Eval(q, d)
		ap, _ := Eval(p, d)
		// For every FD over the two head columns: holds(q) ⇒ holds(p).
		for _, fdXY := range [][2][]int{
			{{0}, {1}}, {{1}, {0}}, {{0, 1}, {0}}, {{}, {0, 1}},
		} {
			if aq.SatisfiesFD(fdXY[0], fdXY[1]) && !ap.SatisfiesFD(fdXY[0], fdXY[1]) {
				t.Fatalf("Lemma 2(b) violated: FD %v->%v holds on q(d) but not q̃(d)\nq: %s\np: %s",
					fdXY[0], fdXY[1], aq, ap)
			}
		}
	}
}
