package cq

import (
	"context"
	"fmt"
	"strconv"

	"keyedeq/internal/instance"
	"keyedeq/internal/obs"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// EvalStats reports work done by an evaluation: Nodes counts assignments
// attempted in the backtracking join (the homomorphism search tree size).
type EvalStats struct {
	Nodes int64
	// CompNodes breaks Nodes down by join-graph connected component on
	// the planned search path (nil for the naive search).  Components
	// the search never reached — a miss or cancellation in an earlier
	// component ends the search — contribute no entry, so the recorded
	// entries always sum to Nodes.
	CompNodes []int64
}

// cancelCheckMask bounds how often the backtracking search polls its
// context: once every cancelCheckMask+1 nodes, so cancellation support
// costs nothing measurable on the hot path.
const cancelCheckMask = 0x3ff

// Eval evaluates q over database d, returning the answer as a relation
// instance with a synthesized scheme (named by q.HeadRel, attributes
// c0..cn-1, no key).  Evaluation uses the planned, indexed join of
// plan.go/search.go; the classical naive backtracking join remains
// available through EvalWithStatsMode(SearchNaive).
func Eval(q *Query, d *instance.Database) (*instance.Relation, error) {
	rel, _, err := EvalWithStats(q, d)
	return rel, err
}

// EvalInto evaluates q and labels the result with the provided scheme,
// which must have q's head type.
func EvalInto(q *Query, d *instance.Database, scheme *schema.Relation) (*instance.Relation, error) {
	ht, err := q.HeadType(d.Schema)
	if err != nil {
		return nil, err
	}
	if len(ht) != scheme.Arity() {
		return nil, fmt.Errorf("cq: head arity %d, scheme %q wants %d", len(ht), scheme.Name, scheme.Arity())
	}
	for i, t := range ht {
		if scheme.Attrs[i].Type != t {
			return nil, fmt.Errorf("cq: head position %d has type %v, scheme %q wants %v", i, t, scheme.Name, scheme.Attrs[i].Type)
		}
	}
	rel, _, err := evalCore(q, d, scheme, SearchPlanned)
	return rel, err
}

// EvalWithStats is Eval returning search statistics.
func EvalWithStats(q *Query, d *instance.Database) (*instance.Relation, EvalStats, error) {
	return EvalWithStatsMode(q, d, SearchPlanned)
}

// EvalWithStatsMode is EvalWithStats with an explicit search mode; the
// naive mode exists for differential testing and benchmarking.
func EvalWithStatsMode(q *Query, d *instance.Database, mode SearchMode) (*instance.Relation, EvalStats, error) {
	ht, err := q.HeadType(d.Schema)
	if err != nil {
		return nil, EvalStats{}, err
	}
	name := q.HeadRel
	if name == "" {
		name = "Q"
	}
	scheme := &schema.Relation{Name: name}
	for i, t := range ht {
		scheme.Attrs = append(scheme.Attrs, schema.Attribute{Name: fmt.Sprintf("c%d", i), Type: t})
	}
	return evalCore(q, d, scheme, mode)
}

func evalCore(q *Query, d *instance.Database, scheme *schema.Relation, mode SearchMode) (*instance.Relation, EvalStats, error) {
	out := instance.NewRelation(scheme)
	if len(q.Body) == 0 {
		return out, EvalStats{}, fmt.Errorf("cq: empty body")
	}
	if mode == SearchNaive {
		stats, err := evalNaive(q, d, out)
		return out, stats, err
	}
	// SearchInterned, SearchStreamed, and SearchAdaptive all share the
	// planned path here: the ID-native runtimes target the single-answer
	// decision search (the containment hot loop), while full enumeration
	// materializes surface-value answer tuples anyway, so an ID-space
	// enumeration would decode every emitted tuple and win nothing
	// (DESIGN.md §14).
	stats, err := evalPlanned(context.Background(), q, d, out)
	return out, stats, err
}

// evalNaive is the reference evaluation: a backtracking join matching
// atoms against full relation scans, picking the next atom dynamically
// by bound-position count.
func evalNaive(q *Query, d *instance.Database, out *instance.Relation) (EvalStats, error) {
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return stats, nil
	}
	rels, _, err := resolveRelations(q, d)
	if err != nil {
		return stats, err
	}
	// Binding environment: class representative -> value.
	binding := make(map[Var]value.Value)
	// Pre-bind constants from the equality list.
	for _, a := range q.Body {
		for _, v := range a.Vars {
			if c, ok := eq.Const(v); ok {
				binding[eq.Find(v)] = c
			}
		}
	}

	used := make([]bool, len(q.Body))
	var emit func()
	emit = func() {
		t := make(instance.Tuple, len(q.Head))
		for i, term := range q.Head {
			if term.IsConst {
				t[i] = term.Const
				continue
			}
			t[i] = binding[eq.Find(term.Var)]
		}
		// Scheme-checked insert guards against internal type errors.
		out.MustInsert(t)
	}

	// pickNext chooses the unused atom with the most already-bound
	// positions (a greedy join order that keeps chains and stars cheap),
	// breaking ties by original order.
	pickNext := func() int {
		best, bestBound := -1, -1
		for i, a := range q.Body {
			if used[i] {
				continue
			}
			bound := 0
			for _, v := range a.Vars {
				if _, ok := binding[eq.Find(v)]; ok {
					bound++
				}
			}
			if bound > bestBound {
				best, bestBound = i, bound
			}
		}
		return best
	}

	var recurse func(remaining int)
	recurse = func(remaining int) {
		if remaining == 0 {
			emit()
			return
		}
		ai := pickNext()
		a := q.Body[ai]
		used[ai] = true
		defer func() { used[ai] = false }()
		for _, t := range rels[ai].Tuples() {
			stats.Nodes++
			// Check consistency and collect new bindings.
			var added []Var
			ok := true
			for p, v := range a.Vars {
				root := eq.Find(v)
				if bv, bound := binding[root]; bound {
					if bv != t[p] {
						ok = false
						break
					}
					continue
				}
				binding[root] = t[p]
				added = append(added, root)
			}
			if ok {
				recurse(remaining - 1)
			}
			for _, r := range added {
				delete(binding, r)
			}
		}
	}
	recurse(len(q.Body))
	return stats, nil
}

// NonEmpty reports whether q has at least one answer on d.
func NonEmpty(q *Query, d *instance.Database) (bool, error) {
	rel, err := Eval(q, d)
	if err != nil {
		return false, err
	}
	return rel.Len() > 0, nil
}

// HasAnswer reports whether evaluating q over d produces the tuple want.
// Unlike Eval it terminates as soon as the tuple is derived, which is the
// homomorphism test at the heart of containment checking.  The returned
// stats count search nodes visited.
func HasAnswer(q *Query, d *instance.Database, want instance.Tuple) (bool, EvalStats, error) {
	ok, _, stats, err := FindAnswerBinding(q, d, want)
	return ok, stats, err
}

// HasAnswerCtx is HasAnswer with cancellation: the backtracking search
// polls ctx periodically and aborts with ctx's error when it is done.
func HasAnswerCtx(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, EvalStats, error) {
	ok, _, stats, err := FindAnswerBindingCtx(ctx, q, d, want)
	return ok, stats, err
}

// FindAnswerBinding is HasAnswer returning, on success, the witnessing
// variable binding (every body variable of q mapped to a database value).
// Containment uses it to extract explicit homomorphisms.
func FindAnswerBinding(q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	return FindAnswerBindingCtx(context.Background(), q, d, want)
}

// FindAnswerBindingCtx is FindAnswerBinding with cancellation via ctx.
// It searches in SearchDefault mode (adaptive unless a command layer
// pinned another runtime at startup).
func FindAnswerBindingCtx(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	return FindAnswerBindingCtxMode(ctx, q, d, want, SearchDefault)
}

// FindAnswerBindingMode is FindAnswerBinding with an explicit search
// mode; the naive mode exists for differential testing and benchmarking.
func FindAnswerBindingMode(q *Query, d *instance.Database, want instance.Tuple, mode SearchMode) (bool, map[Var]value.Value, EvalStats, error) {
	return FindAnswerBindingCtxMode(context.Background(), q, d, want, mode)
}

// FindAnswerBindingCtxMode is FindAnswerBindingCtx with an explicit
// search mode.
//
// It is also the obs reporting funnel for the homomorphism search:
// every invocation bumps the search counters and, with a sink
// installed, emits one search span — on success, cancellation, and
// validation failure alike — so exported totals reconcile exactly with
// the EvalStats callers accumulate.
func FindAnswerBindingCtxMode(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple, mode SearchMode) (bool, map[Var]value.Value, EvalStats, error) {
	o := obs.FromContext(ctx)
	start := o.Time()
	ok, w, es, err := findAnswer(ctx, q, d, want, mode)
	if o != nil {
		o.C(obs.CSearches).Inc()
		o.C(obs.CSearchNodes).Add(es.Nodes)
		o.H(obs.HSearchNodes).Observe(es.Nodes)
		if o.SpansOn() {
			attrs := make([]obs.Attr, 0, 3+len(es.CompNodes))
			attrs = append(attrs,
				obs.S("mode", mode.String()),
				obs.I("nodes", es.Nodes),
				obs.B("found", ok))
			for i, n := range es.CompNodes {
				attrs = append(attrs, obs.I("comp_nodes_"+strconv.Itoa(i), n))
			}
			o.EmitSpan(ctx, obs.StageSearch, start, err, attrs...)
		}
	}
	return ok, w, es, err
}

// findAnswer dispatches to the selected search implementation after the
// shared validation.
func findAnswer(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple, mode SearchMode) (bool, map[Var]value.Value, EvalStats, error) {
	if len(q.Head) != len(want) {
		return false, nil, EvalStats{}, fmt.Errorf("cq: want arity %d, head arity %d", len(want), len(q.Head))
	}
	if len(q.Body) == 0 {
		return false, nil, EvalStats{}, fmt.Errorf("cq: empty body")
	}
	switch mode {
	case SearchNaive:
		return findAnswerNaive(ctx, q, d, want)
	case SearchInterned:
		return findAnswerInterned(ctx, q, d, want)
	case SearchStreamed:
		return findAnswerStreamed(ctx, q, d, want)
	case SearchAdaptive:
		return findAnswerAdaptive(ctx, q, d, want)
	}
	return findAnswerPlanned(ctx, q, d, want)
}

// findAnswerNaive is the reference homomorphism search: dynamic
// most-bound-first atom picking over full relation scans.
func findAnswerNaive(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return false, nil, stats, nil
	}
	rels := make([]*instance.Relation, len(q.Body))
	for i, a := range q.Body {
		r := d.Relation(a.Rel)
		if r == nil {
			return false, nil, stats, fmt.Errorf("cq: no relation %q in database", a.Rel)
		}
		rels[i] = r
	}
	binding := make(map[Var]value.Value)
	for _, a := range q.Body {
		for _, v := range a.Vars {
			if c, ok := eq.Const(v); ok {
				binding[eq.Find(v)] = c
			}
		}
	}
	// Pre-bind head variables to the wanted values; constants must match.
	for i, term := range q.Head {
		if term.IsConst {
			if term.Const != want[i] {
				return false, nil, stats, nil
			}
			continue
		}
		root := eq.Find(term.Var)
		if bv, ok := binding[root]; ok {
			if bv != want[i] {
				return false, nil, stats, nil
			}
			continue
		}
		binding[root] = want[i]
	}
	used := make([]bool, len(q.Body))
	pickNext := func() int {
		best, bestBound := -1, -1
		for i, a := range q.Body {
			if used[i] {
				continue
			}
			bound := 0
			for _, v := range a.Vars {
				if _, ok := binding[eq.Find(v)]; ok {
					bound++
				}
			}
			if bound > bestBound {
				best, bestBound = i, bound
			}
		}
		return best
	}
	var found bool
	var canceled error
	var witness map[Var]value.Value
	var recurse func(remaining int)
	recurse = func(remaining int) {
		if found || canceled != nil {
			return
		}
		if remaining == 0 {
			found = true
			// Capture the successful binding, resolved per body
			// variable through its class representative.
			witness = make(map[Var]value.Value)
			for _, a := range q.Body {
				for _, v := range a.Vars {
					witness[v] = binding[eq.Find(v)]
				}
			}
			return
		}
		ai := pickNext()
		a := q.Body[ai]
		used[ai] = true
		defer func() { used[ai] = false }()
		for _, t := range rels[ai].Tuples() {
			if found || canceled != nil {
				return
			}
			stats.Nodes++
			if stats.Nodes&cancelCheckMask == 0 {
				if err := ctx.Err(); err != nil {
					canceled = err
					return
				}
			}
			var added []Var
			ok := true
			for p, v := range a.Vars {
				root := eq.Find(v)
				if bv, bound := binding[root]; bound {
					if bv != t[p] {
						ok = false
						break
					}
					continue
				}
				binding[root] = t[p]
				added = append(added, root)
			}
			if ok {
				recurse(remaining - 1)
			}
			for _, r := range added {
				delete(binding, r)
			}
		}
	}
	recurse(len(q.Body))
	if canceled != nil {
		return false, nil, stats, canceled
	}
	return found, witness, stats, nil
}
