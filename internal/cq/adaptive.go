package cq

import (
	"context"

	"keyedeq/internal/instance"
	"keyedeq/internal/value"
)

// This file is the SearchAdaptive dispatcher — the default search
// mode.  It consults the cost model (cost.go) to choose, per query and
// database, between the dense ID scan (scan_id.go) and the streamed
// iterator pipeline (iter.go), and fans the pipeline's connected
// components out to a bounded worker pool (parallel.go) when the model
// says the work justifies it.

// findAnswerAdaptive is the SearchAdaptive implementation behind
// FindAnswerBindingCtx.
func findAnswerAdaptive(ctx context.Context, q *Query, d *instance.Database, want instance.Tuple) (bool, map[Var]value.Value, EvalStats, error) {
	cfg := &costCfg
	var stats EvalStats
	eq := NewEqClasses(q)
	if eq.Unsatisfiable() {
		return false, nil, stats, nil
	}
	rels, relIdxs, err := resolveRelations(q, d)
	if err != nil {
		return false, nil, stats, err
	}
	// Tier 0: with every referenced relation under the scan threshold,
	// no plan step would build an index — skip planning entirely and
	// run the dynamic-order dense scan.  This is the common case for
	// containment checks, whose canonical databases hold one tuple per
	// query atom.
	if allSmall(rels, cfg) {
		return scanIDCore(ctx, q, want, eq, rels)
	}
	pres, earlyMiss := streamPrebindings(q, eq, want)
	if earlyMiss {
		return false, nil, stats, nil
	}
	fz := d.Frozen()
	// The compiled plan is a pure function of the query and the frozen
	// view's cardinalities: pres enters compilation only as the SET of
	// prebound classes (head and constant classes, fixed by the query
	// alone), never as values.  Repeated decisions against one frozen
	// database therefore share a single compilation through the view's
	// prepared-plan cache; the plan-stage span is emitted on the cold
	// build only.
	plan := fz.PlanMemo(q, func() any {
		return buildStreamPlan(ctx, q, rels, relIdxs, eq, pres)
	}).(*searchPlan)
	// Tier 1: estimate both arms over the compiled plan; fall back to
	// the scan when the indexes can't pay for plan compilation and
	// index builds.
	choice := choosePlan(fz, plan, cfg)
	if !choice.usePipeline {
		return scanIDCore(ctx, q, want, eq, rels)
	}
	s := newStreamSearcher(ctx, plan, fz, &stats)
	for _, pb := range pres {
		if id, ok := plan.classOf[pb.root]; ok {
			s.binding[id] = s.internID(pb.val)
			s.bound[id] = true
		}
	}
	var ok bool
	if choice.parallel {
		ok, err = runComponentsParallel(s, plan, choice.workers)
	} else {
		ok, err = runComponentsSequential(s, plan)
	}
	if err != nil || !ok {
		return false, nil, stats, err
	}
	return true, decodeWitness(&s.idSearchCore, plan, q, eq), stats, nil
}
