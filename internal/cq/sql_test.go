package cq

import (
	"strings"
	"testing"

	"keyedeq/internal/schema"
)

func TestToSQLJoin(t *testing.T) {
	s := schema.MustParse("emp(ss:T1, dep:T2)\ndept(id:T2, name:T3)")
	q := MustParse("V(X, N) :- emp(X, D), dept(D2, N), D = D2.")
	sql, err := ToSQL(q, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"SELECT DISTINCT t0.ss AS c0, t1.name AS c1",
		"FROM emp AS t0, dept AS t1",
		"WHERE t0.dep = t1.id",
	} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestToSQLSelectionAndConstants(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T2)")
	q := MustParse("V(T2:9, X) :- R(X, Y), Y = T2:5.")
	sql, err := ToSQL(q, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"9 AS c0", "t0.a AS c1", "WHERE t0.b = 5"} {
		if !strings.Contains(sql, want) {
			t.Errorf("SQL missing %q:\n%s", want, sql)
		}
	}
}

func TestToSQLNoWhere(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T2)")
	q := MustParse("V(X) :- R(X, Y).")
	sql, err := ToSQL(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sql, "WHERE") {
		t.Errorf("unexpected WHERE:\n%s", sql)
	}
	if !strings.HasSuffix(sql, ";") {
		t.Error("missing terminator")
	}
}

func TestToSQLValidates(t *testing.T) {
	s := schema.MustParse("R(a:T1)")
	if _, err := ToSQL(MustParse("V(X) :- Z(X)."), s); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestToSQLSelfJoinAliases(t *testing.T) {
	s := schema.MustParse("E(src:T1, dst:T1)")
	q := MustParse("V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.")
	sql, err := ToSQL(q, s)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sql, "E AS t0, E AS t1") {
		t.Errorf("self-join aliases wrong:\n%s", sql)
	}
	if !strings.Contains(sql, "t0.dst = t1.src") {
		t.Errorf("join condition wrong:\n%s", sql)
	}
}
