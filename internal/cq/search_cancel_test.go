package cq

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
)

// These tests pin the cancelCheckMask polling contract: every search
// path — the planned search over hash indexes, its ≤smallRelScanThreshold
// scan fallback, and the naive reference search — must observe a done
// context within cancelCheckMask+1 node visits.  A path that skips
// Nodes++ or the poll would run arbitrarily far past a timeout.

// cancelChainQuery builds V(X1, Xn+1) :- E(X1, X2), ..., E(Xn, Xn+1).
func cancelChainQuery(n int) *Query {
	var sb strings.Builder
	fmt.Fprintf(&sb, "V(X1, X%d) :- ", n+1)
	for i := 1; i <= n; i++ {
		if i > 1 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "E(X%d, X%d)", i, i+1)
	}
	sb.WriteString(".")
	return MustParse(sb.String())
}

// completeDigraph inserts every edge between distinct vertices of verts.
func completeDigraph(d *instance.Database, verts []int64) {
	for _, a := range verts {
		for _, b := range verts {
			if a != b {
				d.MustInsert("E", val(1, a), val(1, b))
			}
		}
	}
}

// cancelGraph builds two complete components with no path between them,
// so the chain search from component one to component two fans out
// exponentially and exhausts without ever succeeding.  big selects the
// edge count: ≤smallRelScanThreshold for the scan fallback, above it
// for the indexed path.
func cancelGraph(t *testing.T, big bool) *instance.Database {
	t.Helper()
	s := schema.MustParse("E(a:T1, b:T1)")
	d := instance.NewDatabase(s)
	if big {
		// 6 + 6 = 12 edges: above the scan threshold, so bound steps
		// probe hash indexes.
		completeDigraph(d, []int64{1, 2, 3})
		completeDigraph(d, []int64{4, 5, 6})
	} else {
		// 6 + 2 = 8 edges: at the threshold, so every step scans.
		completeDigraph(d, []int64{1, 2, 3})
		d.MustInsert("E", val(1, 4), val(1, 5))
		d.MustInsert("E", val(1, 5), val(1, 4))
	}
	n := d.Relation("E").Len()
	if big && n <= smallRelScanThreshold {
		t.Fatalf("big graph has %d edges, not above scan threshold %d", n, smallRelScanThreshold)
	}
	if !big && n > smallRelScanThreshold {
		t.Fatalf("small graph has %d edges, above scan threshold %d", n, smallRelScanThreshold)
	}
	return d
}

// wantAcross asks for a chain from vertex 1 (component one) to vertex 4
// (component two) — unsatisfiable, forcing an exhaustive search.
func wantAcross() instance.Tuple {
	return instance.Tuple{val(1, 1), val(1, 4)}
}

func testCancelObserved(t *testing.T, d *instance.Database, chainLen int, mode SearchMode) {
	t.Helper()
	q := cancelChainQuery(chainLen)

	// Control: uncancelled, the search must exhaust past the first poll
	// point — otherwise the cancellation assertion below is vacuous.
	ok, _, es, err := FindAnswerBindingCtxMode(context.Background(), q, d, wantAcross(), mode)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("cross-component chain unexpectedly satisfiable")
	}
	if es.Nodes <= cancelCheckMask+1 {
		t.Fatalf("exhaustive search visited %d nodes, need > %d to exercise the poll point",
			es.Nodes, cancelCheckMask+1)
	}

	// A context canceled before the search starts must be observed
	// within cancelCheckMask+1 node visits.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ok, _, es, err = FindAnswerBindingCtxMode(ctx, q, d, wantAcross(), mode)
	if err == nil {
		t.Fatalf("canceled search returned no error (ok=%v, %d nodes)", ok, es.Nodes)
	}
	if err != context.Canceled {
		t.Fatalf("canceled search returned %v, want context.Canceled", err)
	}
	if es.Nodes > cancelCheckMask+1 {
		t.Fatalf("cancellation observed after %d nodes, contract allows at most %d",
			es.Nodes, cancelCheckMask+1)
	}
	if es.Nodes == 0 {
		t.Fatal("canceled search did no work at all; the poll point was never exercised")
	}
}

func TestCancelObservedPlannedScanFallback(t *testing.T) {
	// 8 edges ≤ smallRelScanThreshold: every planned step scans.
	testCancelObserved(t, cancelGraph(t, false), 9, SearchPlanned)
}

func TestCancelObservedPlannedIndexed(t *testing.T) {
	// 12 edges > smallRelScanThreshold: bound steps probe hash indexes.
	testCancelObserved(t, cancelGraph(t, true), 12, SearchPlanned)
}

func TestCancelObservedNaive(t *testing.T) {
	testCancelObserved(t, cancelGraph(t, false), 9, SearchNaive)
}

func TestCancelObservedInternedScanFallback(t *testing.T) {
	// 8 edges ≤ smallRelScanThreshold: every interned step scans frozen
	// rows directly.
	testCancelObserved(t, cancelGraph(t, false), 9, SearchInterned)
}

func TestCancelObservedInternedIndexed(t *testing.T) {
	// 12 edges > smallRelScanThreshold: bound steps binary-search the
	// sorted ID indexes.
	testCancelObserved(t, cancelGraph(t, true), 12, SearchInterned)
}

func TestCancelObservedStreamedScanFallback(t *testing.T) {
	// 8 edges ≤ smallRelScanThreshold: every streamed cursor scans
	// frozen rows directly.
	testCancelObserved(t, cancelGraph(t, false), 9, SearchStreamed)
}

func TestCancelObservedStreamedIndexed(t *testing.T) {
	// 12 edges > smallRelScanThreshold: bound cursors walk pre-built
	// hash buckets.
	testCancelObserved(t, cancelGraph(t, true), 12, SearchStreamed)
}

func TestCancelObservedAdaptiveScanArm(t *testing.T) {
	// 8 edges ≤ smallRelScanThreshold: tier 0 routes to the dense ID
	// scan, which polls inside its own recursion.
	testCancelObserved(t, cancelGraph(t, false), 9, SearchAdaptive)
}

func TestCancelObservedAdaptivePipeline(t *testing.T) {
	// Above the threshold the adaptive mode plans; force the pipeline
	// choice so the poll point under test is the cursor driver's.
	cfg := defaultCostConfig
	cfg.planOverhead = 0
	cfg.indexBuildPerRow = 0
	cfg.nodeCost = 0
	orig := costCfg
	costCfg = cfg
	defer func() { costCfg = orig }()
	testCancelObserved(t, cancelGraph(t, true), 12, SearchAdaptive)
}
