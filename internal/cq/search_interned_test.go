package cq

import (
	"fmt"
	"math/rand"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// These tests pin the interned search's parity contract: it must return
// bit-identical verdicts, stats, and (decoded) witnesses to the generic
// planned search, because it runs the same plan in the same candidate
// order — only the tuple representation differs.

// randomGraphDB builds a random E(a,b) digraph over [0, nodes).
func randomGraphDB(rng *rand.Rand, nodes int64, edges int) *instance.Database {
	s := schema.MustParse("E(a:T1, b:T1)")
	d := instance.NewDatabase(s)
	for i := 0; i < edges; i++ {
		d.MustInsert("E", val(1, rng.Int63n(nodes)), val(1, rng.Int63n(nodes)))
	}
	return d
}

// parityQueries covers the plan shapes the search distinguishes: chains
// (indexed probes), self-loops, equality-linked components, constants,
// cross products, and repeated relations sharing index slots.
func parityQueries() []*Query {
	return []*Query{
		MustParse("V(X, Z) :- E(X, Y), E(Y, Z)."),
		MustParse("V(X) :- E(X, X)."),
		MustParse("V(X, W) :- E(X, Y), E(Z, W), Y = Z."),
		MustParse("V(X, Z) :- E(X, Y), E(Y, Z), Y = T1:3."),
		MustParse("V(X, Z) :- E(X, Y), E(Z, W)."),
		MustParse("V(X) :- E(X, Y), E(Y, Z), E(Y, W)."),
		MustParse("V(A, E) :- E(A, B), E(B, C), E(C, D), E(D, E)."),
	}
}

func checkParity(t *testing.T, q *Query, d *instance.Database, want instance.Tuple, tag string) {
	t.Helper()
	okP, wP, esP, errP := FindAnswerBindingMode(q, d, want, SearchPlanned)
	okI, wI, esI, errI := FindAnswerBindingMode(q, d, want, SearchInterned)
	if (errP == nil) != (errI == nil) {
		t.Fatalf("%s: errors diverge: planned %v, interned %v", tag, errP, errI)
	}
	if errP != nil {
		return
	}
	if okP != okI {
		t.Fatalf("%s: verdicts diverge: planned %v, interned %v", tag, okP, okI)
	}
	if esP.Nodes != esI.Nodes {
		t.Fatalf("%s: node counts diverge: planned %d, interned %d", tag, esP.Nodes, esI.Nodes)
	}
	if len(esP.CompNodes) != len(esI.CompNodes) {
		t.Fatalf("%s: component counts diverge: planned %v, interned %v", tag, esP.CompNodes, esI.CompNodes)
	}
	for i := range esP.CompNodes {
		if esP.CompNodes[i] != esI.CompNodes[i] {
			t.Fatalf("%s: component %d nodes diverge: planned %v, interned %v",
				tag, i, esP.CompNodes, esI.CompNodes)
		}
	}
	if !okP {
		return
	}
	// Both searches walk the identical node sequence, so the first
	// accepted assignment — the witness — must decode to the same
	// surface binding, variable by variable.
	if len(wP) != len(wI) {
		t.Fatalf("%s: witness sizes diverge: %d vs %d", tag, len(wP), len(wI))
	}
	for v, pv := range wP {
		if iv, ok := wI[v]; !ok || iv != pv {
			t.Fatalf("%s: witness diverges at %s: planned %v, interned %v", tag, v, pv, wI[v])
		}
	}
}

func TestInternedMatchesPlannedRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	queries := parityQueries()
	for trial := 0; trial < 200; trial++ {
		nodes := int64(3 + rng.Intn(6))
		d := randomGraphDB(rng, nodes, 4+rng.Intn(30))
		q := queries[rng.Intn(len(queries))]
		want := make(instance.Tuple, len(q.Head))
		for i := range want {
			want[i] = val(1, rng.Int63n(nodes+1))
		}
		checkParity(t, q, d, want, fmt.Sprintf("trial %d", trial))
	}
}

func TestInternedGhostValuesFilterLikeMissingBuckets(t *testing.T) {
	// The wanted values and the query constant never occur in the
	// database, so every probe on them must come up empty — visiting
	// exactly the nodes the generic search visits on its nil buckets.
	rng := rand.New(rand.NewSource(42))
	d := randomGraphDB(rng, 5, 25)
	q := MustParse("V(X, Z) :- E(X, Y), E(Y, Z), Z = T1:99.")
	want := instance.Tuple{val(1, 77), val(1, 99)}
	checkParity(t, q, d, want, "ghost constants")

	// Same ghost value wanted in two head positions: the per-search
	// ghost table must deduplicate so both positions agree.
	q2 := MustParse("V(X, Y) :- E(X, Y).")
	want2 := instance.Tuple{val(1, 88), val(1, 88)}
	checkParity(t, q2, d, want2, "repeated ghost")
}

func TestInternedWitnessDecodesFreshValues(t *testing.T) {
	// Canonical databases carry labeled nulls as allocator-fresh values;
	// a witness binding one must decode back to exactly that value.
	s := schema.MustParse("E(a:T1, b:T1)")
	d := instance.NewDatabase(s)
	var alloc value.Allocator
	alloc.Reserve(val(1, 20))
	null := alloc.Fresh(1)
	d.MustInsert("E", val(1, 1), null)
	for i := int64(4); i < 20; i++ {
		d.MustInsert("E", val(1, i), val(1, i+1))
	}
	q := MustParse("V(X) :- E(X, Y).")
	ok, w, _, err := FindAnswerBindingMode(q, d, instance.Tuple{val(1, 1)}, SearchInterned)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("answer not found")
	}
	if w["Y"] != null {
		t.Fatalf("witness Y = %v, want the fresh value %v", w["Y"], null)
	}
	checkParity(t, q, d, instance.Tuple{val(1, 1)}, "fresh-value witness")
}

func TestInternedReusesFrozenViewAcrossSearches(t *testing.T) {
	// Two searches over an unmutated database must share one frozen
	// view — the memoization the interned mode's cost model relies on.
	rng := rand.New(rand.NewSource(43))
	d := randomGraphDB(rng, 6, 30)
	q := MustParse("V(X, Z) :- E(X, Y), E(Y, Z).")
	want := instance.Tuple{val(1, 0), val(1, 1)}
	if _, _, _, err := FindAnswerBindingMode(q, d, want, SearchInterned); err != nil {
		t.Fatal(err)
	}
	f1 := d.Frozen()
	if _, _, _, err := FindAnswerBindingMode(q, d, want, SearchInterned); err != nil {
		t.Fatal(err)
	}
	if f2 := d.Frozen(); f1 != f2 {
		t.Fatal("frozen view rebuilt between searches over an unmutated database")
	}
}
