// Package fd implements functional dependencies.
//
// Two levels are provided, matching the paper's usage:
//
//   - Schema-level dependencies (FD) relate attribute sets that may span
//     relations.  Per the paper's §2 convention, a dependency whose
//     attributes do not all belong to one relation fails on every
//     instance; otherwise it reduces to a relation-level check.
//
//   - Relation-level reasoning (Set, Closure, Implies, Keys, MinCover)
//     works on attribute positions of a single relation, represented as
//     bitsets, and implements the classical Armstrong machinery used to
//     decide superkeys and to reason about the dependencies that Theorem 6
//     transfers between schemas.
package fd

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
)

// Attr names one attribute of a schema: a relation name and an attribute
// position within it.
type Attr struct {
	Rel string
	Pos int
}

// String renders "employee.2".
func (a Attr) String() string { return fmt.Sprintf("%s.%d", a.Rel, a.Pos) }

// FD is a schema-level functional dependency X → Y over attribute
// references.
type FD struct {
	X, Y []Attr
}

// String renders "{r.0} -> {r.1, r.2}".
func (f FD) String() string {
	return attrSetString(f.X) + " -> " + attrSetString(f.Y)
}

func attrSetString(as []Attr) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = a.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ", ") + "}"
}

// SameRelation reports whether every attribute of the dependency belongs
// to the single relation named rel (and returns rel); if the attributes
// span relations it returns "", false.
func (f FD) SameRelation() (string, bool) {
	if len(f.X) == 0 && len(f.Y) == 0 {
		return "", false
	}
	var rel string
	for _, a := range append(append([]Attr{}, f.X...), f.Y...) {
		if rel == "" {
			rel = a.Rel
		} else if a.Rel != rel {
			return "", false
		}
	}
	return rel, true
}

// Holds reports whether the database instance satisfies the dependency,
// following the paper: if X and Y do not all belong to one relation the
// dependency fails for every instance; otherwise it is the usual FD check
// on that relation's instance.
func (f FD) Holds(d *instance.Database) bool {
	rel, ok := f.SameRelation()
	if !ok {
		return false
	}
	r := d.Relation(rel)
	if r == nil {
		return false
	}
	x := make([]int, len(f.X))
	for i, a := range f.X {
		x[i] = a.Pos
	}
	y := make([]int, len(f.Y))
	for i, a := range f.Y {
		y[i] = a.Pos
	}
	n := len(r.Scheme.Attrs)
	for _, p := range append(append([]int{}, x...), y...) {
		if p < 0 || p >= n {
			return false
		}
	}
	return r.SatisfiesFD(x, y)
}

// KeyFDs returns the key dependencies of a keyed schema as schema-level
// FDs: for each relation, key → all attributes.
func KeyFDs(s *schema.Schema) []FD {
	var out []FD
	for _, r := range s.Relations {
		if !r.Keyed() {
			continue
		}
		var f FD
		for _, k := range r.Key {
			f.X = append(f.X, Attr{Rel: r.Name, Pos: k})
		}
		for p := range r.Attrs {
			f.Y = append(f.Y, Attr{Rel: r.Name, Pos: p})
		}
		out = append(out, f)
	}
	return out
}

// Set is a set of attribute positions of one relation, as a bitset.
// It supports relations of up to 64 attributes, far beyond anything the
// paper's constructions need.
type Set uint64

// NewSet builds a Set from positions.
func NewSet(positions ...int) Set {
	var s Set
	for _, p := range positions {
		s |= 1 << uint(p)
	}
	return s
}

// Has reports membership of position p.
func (s Set) Has(p int) bool { return s&(1<<uint(p)) != 0 }

// Union returns s ∪ t.
func (s Set) Union(t Set) Set { return s | t }

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set { return s & t }

// Minus returns s \ t.
func (s Set) Minus(t Set) Set { return s &^ t }

// ContainsAll reports t ⊆ s.
func (s Set) ContainsAll(t Set) bool { return t&^s == 0 }

// Len returns the cardinality.
func (s Set) Len() int { return bits.OnesCount64(uint64(s)) }

// Positions returns the members ascending.
func (s Set) Positions() []int {
	var out []int
	for p := 0; p < 64; p++ {
		if s.Has(p) {
			out = append(out, p)
		}
	}
	return out
}

// String renders "{0,2,5}".
func (s Set) String() string {
	parts := make([]string, 0, s.Len())
	for _, p := range s.Positions() {
		parts = append(parts, fmt.Sprint(p))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Dep is a relation-level functional dependency X → Y over positions.
type Dep struct {
	X, Y Set
}

// String renders "{0} -> {1,2}".
func (d Dep) String() string { return d.X.String() + " -> " + d.Y.String() }

// Trivial reports Y ⊆ X (implied by reflexivity alone).
func (d Dep) Trivial() bool { return d.X.ContainsAll(d.Y) }

// Closure computes the attribute closure X⁺ under deps, the standard
// fixpoint algorithm.
func Closure(x Set, deps []Dep) Set {
	closure := x
	for changed := true; changed; {
		changed = false
		for _, d := range deps {
			if closure.ContainsAll(d.X) && !closure.ContainsAll(d.Y) {
				closure = closure.Union(d.Y)
				changed = true
			}
		}
	}
	return closure
}

// Implies reports whether deps ⊨ target (by the closure test).
func Implies(deps []Dep, target Dep) bool {
	return Closure(target.X, deps).ContainsAll(target.Y)
}

// EquivalentCovers reports whether two dependency sets imply each other.
func EquivalentCovers(a, b []Dep) bool {
	for _, d := range a {
		if !Implies(b, d) {
			return false
		}
	}
	for _, d := range b {
		if !Implies(a, d) {
			return false
		}
	}
	return true
}

// IsSuperkey reports whether x is a superkey of a relation with attribute
// positions all (i.e. x⁺ ⊇ all).
func IsSuperkey(x, all Set, deps []Dep) bool {
	return Closure(x, deps).ContainsAll(all)
}

// IsKey reports whether x is a key: a superkey none of whose proper
// subsets is a superkey (the paper's minimality condition).
func IsKey(x, all Set, deps []Dep) bool {
	if !IsSuperkey(x, all, deps) {
		return false
	}
	for _, p := range x.Positions() {
		if IsSuperkey(x.Minus(NewSet(p)), all, deps) {
			return false
		}
	}
	return true
}

// Keys enumerates all candidate keys of a relation with attribute set all
// under deps, ascending by bit pattern.  It uses the standard
// reduce-superkeys search seeded from the full attribute set and the
// left-hand sides of the dependencies.
func Keys(all Set, deps []Dep) []Set {
	if all == 0 {
		return nil
	}
	seen := map[Set]bool{}
	var keys []Set
	var queue []Set
	queue = append(queue, all)
	for _, d := range deps {
		lhs := d.X.Intersect(all)
		if IsSuperkey(lhs, all, deps) {
			queue = append(queue, lhs)
		}
	}
	for len(queue) > 0 {
		sk := queue[0]
		queue = queue[1:]
		sk = minimize(sk, all, deps)
		if seen[sk] {
			continue
		}
		seen[sk] = true
		keys = append(keys, sk)
		// Branch: for every attribute a of the found key, try to find
		// a different key avoiding a by augmenting with determinants.
		for _, d := range deps {
			cand := d.X.Union(sk.Minus(d.Y)).Intersect(all)
			if IsSuperkey(cand, all, deps) {
				cand = minimize(cand, all, deps)
				if !seen[cand] {
					queue = append(queue, cand)
				}
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// minimize shrinks a superkey to a key by greedily dropping attributes.
func minimize(sk, all Set, deps []Dep) Set {
	for _, p := range sk.Positions() {
		cand := sk.Minus(NewSet(p))
		if IsSuperkey(cand, all, deps) {
			sk = cand
		}
	}
	return sk
}

// MinCover computes a minimal cover of deps: singleton right-hand sides,
// no extraneous left-hand attributes, no redundant dependencies.
func MinCover(deps []Dep) []Dep {
	// 1. Split right-hand sides.
	var split []Dep
	for _, d := range deps {
		for _, p := range d.Y.Minus(d.X).Positions() {
			split = append(split, Dep{X: d.X, Y: NewSet(p)})
		}
	}
	// 2. Remove extraneous LHS attributes.
	for i := range split {
		for _, p := range split[i].X.Positions() {
			smaller := split[i].X.Minus(NewSet(p))
			if smaller != 0 && Closure(smaller, split).ContainsAll(split[i].Y) {
				split[i].X = smaller
			}
		}
	}
	// 3. Remove redundant dependencies.
	var out []Dep
	for i := range split {
		rest := make([]Dep, 0, len(split)-1)
		rest = append(rest, out...)
		rest = append(rest, split[i+1:]...)
		if !Implies(rest, split[i]) {
			out = append(out, split[i])
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].X != out[j].X {
			return out[i].X < out[j].X
		}
		return out[i].Y < out[j].Y
	})
	return out
}
