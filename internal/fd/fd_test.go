package fd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func v(t value.Type, n int64) value.Value { return value.Value{Type: t, N: n} }

func TestSetOps(t *testing.T) {
	s := NewSet(0, 2, 5)
	if !s.Has(0) || s.Has(1) || !s.Has(5) {
		t.Error("Has wrong")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
	u := s.Union(NewSet(1))
	if u.Len() != 4 {
		t.Error("Union wrong")
	}
	if s.Intersect(NewSet(2, 3)) != NewSet(2) {
		t.Error("Intersect wrong")
	}
	if s.Minus(NewSet(2)) != NewSet(0, 5) {
		t.Error("Minus wrong")
	}
	if !s.ContainsAll(NewSet(0, 5)) || s.ContainsAll(NewSet(0, 1)) {
		t.Error("ContainsAll wrong")
	}
	ps := s.Positions()
	if len(ps) != 3 || ps[0] != 0 || ps[1] != 2 || ps[2] != 5 {
		t.Errorf("Positions = %v", ps)
	}
	if s.String() != "{0,2,5}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestClosureTextbook(t *testing.T) {
	// R(A,B,C,D,E,F) with A->BC, B->E, CD->EF (positions 0..5).
	deps := []Dep{
		{NewSet(0), NewSet(1, 2)},
		{NewSet(1), NewSet(4)},
		{NewSet(2, 3), NewSet(4, 5)},
	}
	got := Closure(NewSet(0, 3), deps)
	want := NewSet(0, 1, 2, 3, 4, 5)
	if got != want {
		t.Errorf("Closure(AD) = %v, want %v", got, want)
	}
	if Closure(NewSet(0), deps) != NewSet(0, 1, 2, 4) {
		t.Errorf("Closure(A) = %v", Closure(NewSet(0), deps))
	}
}

func TestClosureMonotoneIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(8)
		all := NewSet()
		for p := 0; p < n; p++ {
			all = all.Union(NewSet(p))
		}
		var deps []Dep
		for i := 0; i < rng.Intn(6); i++ {
			deps = append(deps, Dep{
				X: Set(rng.Int63()) & all,
				Y: Set(rng.Int63()) & all,
			})
		}
		x := Set(rng.Int63()) & all
		cx := Closure(x, deps)
		if !cx.ContainsAll(x) {
			t.Fatal("closure not extensive")
		}
		if Closure(cx, deps) != cx {
			t.Fatal("closure not idempotent")
		}
		y := x.Union(Set(rng.Int63()) & all)
		if !Closure(y, deps).ContainsAll(cx) {
			t.Fatal("closure not monotone")
		}
	}
}

func TestImplies(t *testing.T) {
	deps := []Dep{
		{NewSet(0), NewSet(1)},
		{NewSet(1), NewSet(2)},
	}
	if !Implies(deps, Dep{NewSet(0), NewSet(2)}) {
		t.Error("transitivity not implied")
	}
	if Implies(deps, Dep{NewSet(2), NewSet(0)}) {
		t.Error("reverse should not be implied")
	}
	if !Implies(nil, Dep{NewSet(0, 1), NewSet(1)}) {
		t.Error("reflexive dep should be implied by nothing")
	}
}

func TestIsSuperkeyIsKey(t *testing.T) {
	all := NewSet(0, 1, 2)
	deps := []Dep{
		{NewSet(0), NewSet(1, 2)},
		{NewSet(1), NewSet(0)},
	}
	if !IsSuperkey(NewSet(0), all, deps) || !IsSuperkey(NewSet(0, 1), all, deps) {
		t.Error("superkey test wrong")
	}
	if !IsKey(NewSet(0), all, deps) {
		t.Error("A should be a key")
	}
	if IsKey(NewSet(0, 1), all, deps) {
		t.Error("AB is a superkey, not a key")
	}
	if IsKey(NewSet(2), all, deps) {
		t.Error("C is not a key")
	}
}

func TestKeysEnumeration(t *testing.T) {
	// Classic: R(A,B,C) with A->B, B->C, C->A: every singleton is a key.
	all := NewSet(0, 1, 2)
	deps := []Dep{
		{NewSet(0), NewSet(1)},
		{NewSet(1), NewSet(2)},
		{NewSet(2), NewSet(0)},
	}
	keys := Keys(all, deps)
	if len(keys) != 3 {
		t.Fatalf("Keys = %v, want 3 singleton keys", keys)
	}
	for _, k := range keys {
		if k.Len() != 1 {
			t.Errorf("non-singleton key %v", k)
		}
	}
	// No deps: the only key is the full attribute set.
	keys2 := Keys(all, nil)
	if len(keys2) != 1 || keys2[0] != all {
		t.Errorf("Keys with no deps = %v", keys2)
	}
}

func TestKeysAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(5)
		all := NewSet()
		for p := 0; p < n; p++ {
			all = all.Union(NewSet(p))
		}
		var deps []Dep
		for i := 0; i < rng.Intn(5); i++ {
			deps = append(deps, Dep{
				X: Set(rng.Int63()) & all,
				Y: Set(rng.Int63()) & all,
			})
		}
		got := Keys(all, deps)
		var want []Set
		for m := Set(0); m <= all; m++ {
			if m&^all != 0 {
				continue
			}
			if IsKey(m, all, deps) {
				want = append(want, m)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: Keys = %v, brute force = %v (deps %v)", trial, got, want, deps)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Keys = %v, brute force = %v", trial, got, want)
			}
		}
	}
}

func TestMinCover(t *testing.T) {
	// A->BC, B->C, A->B, AB->C minimizes to A->B, B->C.
	deps := []Dep{
		{NewSet(0), NewSet(1, 2)},
		{NewSet(1), NewSet(2)},
		{NewSet(0), NewSet(1)},
		{NewSet(0, 1), NewSet(2)},
	}
	mc := MinCover(deps)
	if !EquivalentCovers(deps, mc) {
		t.Fatal("MinCover not equivalent to input")
	}
	if len(mc) != 2 {
		t.Errorf("MinCover = %v, want 2 deps", mc)
	}
	for _, d := range mc {
		if d.Y.Len() != 1 {
			t.Errorf("non-singleton RHS in cover: %v", d)
		}
		if d.Trivial() {
			t.Errorf("trivial dep in cover: %v", d)
		}
	}
}

func TestMinCoverEquivalentProperty(t *testing.T) {
	f := func(seeds []uint16) bool {
		if len(seeds) > 8 {
			seeds = seeds[:8]
		}
		all := NewSet(0, 1, 2, 3)
		var deps []Dep
		for i := 0; i+1 < len(seeds); i += 2 {
			deps = append(deps, Dep{
				X: Set(seeds[i]) & all,
				Y: Set(seeds[i+1]) & all,
			})
		}
		return EquivalentCovers(deps, MinCover(deps))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemaFDHolds(t *testing.T) {
	s := schema.MustParse("r(a:T1, b:T2, c:T3)\ns(d:T4)")
	d := instance.NewDatabase(s)
	d.MustInsert("r", v(1, 1), v(2, 1), v(3, 1))
	d.MustInsert("r", v(1, 1), v(2, 1), v(3, 1))
	d.MustInsert("r", v(1, 2), v(2, 2), v(3, 1))
	holds := FD{X: []Attr{{"r", 0}}, Y: []Attr{{"r", 1}}}
	if !holds.Holds(d) {
		t.Error("a->b should hold")
	}
	fails := FD{X: []Attr{{"r", 2}}, Y: []Attr{{"r", 0}}}
	if fails.Holds(d) {
		t.Error("c->a should fail")
	}
	// Cross-relation dependency fails by definition.
	cross := FD{X: []Attr{{"r", 0}}, Y: []Attr{{"s", 0}}}
	if cross.Holds(d) {
		t.Error("cross-relation FD must fail")
	}
	empty := FD{}
	if empty.Holds(d) {
		t.Error("empty FD should not hold")
	}
	badPos := FD{X: []Attr{{"r", 9}}, Y: []Attr{{"r", 0}}}
	if badPos.Holds(d) {
		t.Error("out-of-range FD should not hold")
	}
	badRel := FD{X: []Attr{{"zz", 0}}, Y: []Attr{{"zz", 0}}}
	if badRel.Holds(d) {
		t.Error("missing-relation FD should not hold")
	}
}

func TestKeyFDs(t *testing.T) {
	s := schema.MustParse("r(a*:T1, b:T2)\nu(c:T3)")
	fds := KeyFDs(s)
	if len(fds) != 1 {
		t.Fatalf("KeyFDs = %v, want 1 (unkeyed relation contributes none)", fds)
	}
	f := fds[0]
	if len(f.X) != 1 || f.X[0] != (Attr{"r", 0}) {
		t.Errorf("X = %v", f.X)
	}
	if len(f.Y) != 2 {
		t.Errorf("Y = %v", f.Y)
	}
	// The key FD must hold exactly on key-satisfying instances.
	d := instance.NewDatabase(s)
	d.MustInsert("r", v(1, 1), v(2, 1))
	d.MustInsert("r", v(1, 2), v(2, 1))
	if !f.Holds(d) {
		t.Error("key FD should hold")
	}
	d.MustInsert("r", v(1, 1), v(2, 2))
	if f.Holds(d) {
		t.Error("key FD should fail on violating instance")
	}
}

func TestDepString(t *testing.T) {
	d := Dep{NewSet(0), NewSet(1, 2)}
	if d.String() != "{0} -> {1,2}" {
		t.Errorf("String = %q", d.String())
	}
	f := FD{X: []Attr{{"r", 0}}, Y: []Attr{{"r", 1}}}
	if f.String() != "{r.0} -> {r.1}" {
		t.Errorf("FD String = %q", f.String())
	}
}

func TestTrivial(t *testing.T) {
	if !(Dep{NewSet(0, 1), NewSet(1)}).Trivial() {
		t.Error("subset RHS should be trivial")
	}
	if (Dep{NewSet(0), NewSet(1)}).Trivial() {
		t.Error("non-subset RHS should not be trivial")
	}
}
