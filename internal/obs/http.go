package obs

import (
	"expvar"
	"net/http"
	httppprof "net/http/pprof"
	"sync"
)

// expvarOnce guards the process-global expvar name, which panics on
// double publication (tests mount repeatedly, and a process may mount
// both a CLI pprof server and a daemon mux).
var expvarOnce sync.Once

// expvarReg is the registry the process-global "keyedeq" expvar reads
// from: the first registry mounted.  Later mounts keep their own
// /metrics endpoint but share this expvar (the name is global and can
// only be published once).
var expvarReg *Registry

// MountHTTP installs the observability endpoints on mux, all reading
// from reg:
//
//	/metrics         Prometheus text exposition
//	/debug/vars      expvar (including a "keyedeq" snapshot map)
//	/debug/pprof/... the standard pprof handlers
//
// Both the CLI -pprof-http server and the keyedeqd daemon mux mount
// through here, so the endpoint set cannot drift between them.
func MountHTTP(mux *http.ServeMux, reg *Registry) {
	expvarOnce.Do(func() {
		expvarReg = reg
		expvar.Publish("keyedeq", expvar.Func(func() interface{} {
			return expvarReg.Snapshot()
		}))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
}
