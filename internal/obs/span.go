package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one pipeline stage's trace record.  Emitting packages
// flatten their stage-specific stats (containment.Stats, chase.Stats,
// cq.EvalStats) into Attrs, so a pair's verdict can be reconstructed
// from its spans alone.
type Span struct {
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// Pair is the canonical pair key the work belongs to (installed by
	// WithPair); empty for work outside a pair's decision.
	Pair string `json:"pair,omitempty"`
	// Start is the wall time the stage began, zero when no clock was
	// injected.
	Start time.Time `json:"start,omitempty"`
	// DurNs is the stage's wall duration in nanoseconds (zero without
	// an injected clock).
	DurNs int64 `json:"dur_ns,omitempty"`
	// Err is the stage's error message, if it failed.
	Err string `json:"err,omitempty"`
	// Attrs carries the stage's counters and tags.
	Attrs []Attr `json:"attrs,omitempty"`
}

// Attr is one span attribute: a key with an integer or string value.
// Booleans are encoded as 0/1 integers.
type Attr struct {
	Key string `json:"k"`
	Int int64  `json:"i,omitempty"`
	Str string `json:"s,omitempty"`
}

// I builds an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// S builds a string attribute.
func S(key, v string) Attr { return Attr{Key: key, Str: v} }

// B builds a boolean attribute (encoded 0/1).
func B(key string, v bool) Attr {
	if v {
		return Attr{Key: key, Int: 1}
	}
	return Attr{Key: key}
}

// Int returns the integer value of the named attribute and whether it
// is present.
func (sp *Span) IntAttr(key string) (int64, bool) {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Int, true
		}
	}
	return 0, false
}

// Sink receives spans.  Implementations must be safe for concurrent
// use; Emit takes ownership of the span.
type Sink interface {
	Emit(sp *Span)
}

// JSONLSink writes one JSON object per span to an io.Writer — the
// `-trace out.jsonl` format.  Safe for concurrent use.
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewJSONLSink wraps w.
func NewJSONLSink(w io.Writer) *JSONLSink { return &JSONLSink{w: w} }

// Emit implements Sink.  The first write or marshal error is retained
// and subsequent spans are dropped; Err exposes it.
func (s *JSONLSink) Emit(sp *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	data, err := json.Marshal(sp)
	if err != nil {
		s.err = err
		return
	}
	if _, err := s.w.Write(append(data, '\n')); err != nil {
		s.err = err
	}
}

// Err returns the first error the sink hit, if any.
func (s *JSONLSink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// CollectSink retains every span in memory — the test and smoke-check
// sink.  Safe for concurrent use.
type CollectSink struct {
	mu    sync.Mutex
	spans []*Span
}

// Emit implements Sink.
func (s *CollectSink) Emit(sp *Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

// Spans snapshots the collected spans in emission order.
func (s *CollectSink) Spans() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.spans...)
}

// Stage returns the collected spans of one stage, in emission order.
func (s *CollectSink) Stage(stage string) []*Span {
	var out []*Span
	for _, sp := range s.Spans() {
		if sp.Stage == stage {
			out = append(out, sp)
		}
	}
	return out
}

// Reset drops every collected span.
func (s *CollectSink) Reset() {
	s.mu.Lock()
	s.spans = nil
	s.mu.Unlock()
}
