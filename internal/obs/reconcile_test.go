package obs_test

// Reconciliation tests: the metrics the pipeline exports must agree —
// exactly, not approximately — with the per-job statistics it returns.
// These live in an external test package so they can drive the real
// engine, generator, and search layers against a private Registry
// (internal/obs itself imports nothing from the repo, so there is no
// cycle).

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/engine"
	"keyedeq/internal/exp"
	"keyedeq/internal/gen"
	"keyedeq/internal/obs"
)

func corpusCases(t *testing.T, family string, pairs, seed int) []exp.HomCase {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	f, err := gen.PairCorpus(rng, family, pairs)
	if err != nil {
		t.Fatal(err)
	}
	cases, err := exp.PrepareHomCases(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) == 0 {
		t.Fatalf("family %s prepared no search cases", family)
	}
	return cases
}

// TestMetamorphicComponentNodes pins the planner's node accounting
// three ways at once: the search span's nodes attribute, the span's
// per-connected-component breakdown, and EvalStats.CompNodes must all
// agree with EvalStats.Nodes on every search of the wide and keyed
// corpora.  A counting path that skips a component (or double-counts
// one) breaks the equality somewhere in the corpus.
func TestMetamorphicComponentNodes(t *testing.T) {
	pairs := 500
	if testing.Short() {
		pairs = 60
	}
	for _, family := range []string{"wide", "keyed"} {
		t.Run(family, func(t *testing.T) {
			cases := corpusCases(t, family, pairs, 21)
			reg := obs.NewRegistry()
			sink := &obs.CollectSink{}
			ctx := obs.NewContext(context.Background(), &obs.Obs{Reg: reg, Sink: sink})

			var total int64
			for ci, c := range cases {
				sink.Reset()
				_, _, es, err := cq.FindAnswerBindingCtxMode(ctx, c.Q, c.DB, c.Want, cq.SearchPlanned)
				if err != nil {
					t.Fatalf("case %d: %v", ci, err)
				}
				spans := sink.Stage(obs.StageSearch)
				if len(spans) != 1 {
					t.Fatalf("case %d: %d search spans, want exactly 1", ci, len(spans))
				}
				sp := spans[0]
				nodes, ok := sp.IntAttr("nodes")
				if !ok {
					t.Fatalf("case %d: search span lacks a nodes attribute", ci)
				}
				if nodes != es.Nodes {
					t.Fatalf("case %d: span nodes %d, EvalStats.Nodes %d", ci, nodes, es.Nodes)
				}
				var compSum int64
				nComp := 0
				for {
					v, ok := sp.IntAttr("comp_nodes_" + strconv.Itoa(nComp))
					if !ok {
						break
					}
					compSum += v
					nComp++
				}
				if nComp == 0 {
					t.Fatalf("case %d: search span has no per-component attributes", ci)
				}
				if compSum != es.Nodes {
					t.Fatalf("case %d: components sum to %d nodes, search reports %d", ci, compSum, es.Nodes)
				}
				if len(es.CompNodes) != nComp {
					t.Fatalf("case %d: EvalStats has %d components, span has %d", ci, len(es.CompNodes), nComp)
				}
				var esSum int64
				for _, n := range es.CompNodes {
					esSum += n
				}
				if esSum != es.Nodes {
					t.Fatalf("case %d: EvalStats.CompNodes sum to %d, Nodes is %d", ci, esSum, es.Nodes)
				}
				total += es.Nodes
			}

			// The search funnel's counters must equal the per-search sums.
			if got := reg.C(obs.CSearchNodes).Value(); got != total {
				t.Errorf("search-node counter = %d, per-search stats sum to %d", got, total)
			}
			if got := reg.C(obs.CSearches).Value(); got != int64(len(cases)) {
				t.Errorf("search counter = %d, ran %d searches", got, len(cases))
			}
			if got := reg.H(obs.HSearchNodes).Count(); got != int64(len(cases)) {
				t.Errorf("search-node histogram holds %d observations, want %d", got, len(cases))
			}
			if got := reg.H(obs.HSearchNodes).Sum(); got != total {
				t.Errorf("search-node histogram sums to %d, want %d", got, total)
			}
		})
	}
}

// TestBatchMetricsReconcile is the end-to-end smoke check the
// observability layer is gated on: run a generated corpus through the
// engine with metrics enabled and require the exported totals to equal
// the sums of the per-job Stats the report carries.  Fresh results —
// neither cache hits nor intra-batch duplicates, errors included — are
// exactly the ones whose Stats describe new work, so their sums and
// the counters must match to the node.  A second identical batch must
// be all cache hits and must not move any work counter.
func TestBatchMetricsReconcile(t *testing.T) {
	pairs := 120
	if testing.Short() {
		pairs = 40
	}
	for _, family := range []string{"keyed", "graph-mixed", "wide"} {
		t.Run(family, func(t *testing.T) {
			rng := rand.New(rand.NewSource(7))
			f, err := gen.PairCorpus(rng, family, pairs)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			e := engine.New(f.Schema, f.Deps, engine.Options{Workers: 4, Obs: &obs.Obs{Reg: reg}})
			jobs := make([]engine.Job, len(f.Pairs))
			for i, p := range f.Pairs {
				jobs[i] = engine.Job{Left: p.Left, Right: p.Right, Op: engine.OpEquivalent}
			}

			rep := e.Run(context.Background(), jobs)
			var fresh containment.Stats
			var holding, errs, hits, dedup, computed int64
			for i, r := range rep.Results {
				if r.Err != nil {
					t.Fatalf("job %d: %v (generated corpora must be decidable)", i, r.Err)
				}
				switch {
				case r.Err != nil:
					errs++
				case r.CacheHit:
					hits++
				case r.Deduped:
					dedup++
				default:
					computed++
				}
				if r.Err == nil && r.Holds {
					holding++
				}
				if !r.CacheHit && !r.Deduped {
					fresh.Merge(r.Stats)
				}
			}

			snap := reg.Snapshot()
			want := map[string]int64{
				"keyedeq_pairs_total":            int64(len(jobs)),
				"keyedeq_pairs_holding_total":    holding,
				"keyedeq_pairs_errors_total":     errs,
				"keyedeq_cache_hits_total":       hits,
				"keyedeq_pairs_deduped_total":    dedup,
				"keyedeq_pairs_computed_total":   computed,
				"keyedeq_searches_total":         int64(fresh.Searches),
				"keyedeq_search_nodes_total":     fresh.Nodes,
				"keyedeq_chase_iterations_total": int64(fresh.ChaseIterations),
				"keyedeq_chase_merges_total":     int64(fresh.ChaseMerges),
				"keyedeq_chase_revisited_total":  int64(fresh.ChaseRevisited),
			}
			for name, w := range want {
				if snap[name] != w {
					t.Errorf("%s = %d, per-job stats sum to %d", name, snap[name], w)
				}
			}
			if snap["keyedeq_cache_entries"] != int64(rep.Cache.Entries) {
				t.Errorf("cache-entries gauge = %d, report says %d", snap["keyedeq_cache_entries"], rep.Cache.Entries)
			}

			// Re-running the identical batch must be pure cache traffic:
			// verdicts unchanged, every work counter frozen.
			rep2 := e.Run(context.Background(), jobs)
			for i, r := range rep2.Results {
				if r.Err != nil || !r.CacheHit {
					t.Fatalf("job %d of repeat batch: err=%v cacheHit=%v, want a clean hit", i, r.Err, r.CacheHit)
				}
				if r.Holds != rep.Results[i].Holds {
					t.Fatalf("job %d flipped verdict across the cache: %v vs %v", i, rep.Results[i].Holds, r.Holds)
				}
			}
			snap2 := reg.Snapshot()
			for _, name := range []string{
				"keyedeq_searches_total", "keyedeq_search_nodes_total",
				"keyedeq_chase_runs_total", "keyedeq_chase_iterations_total",
				"keyedeq_pairs_computed_total",
			} {
				if snap2[name] != snap[name] {
					t.Errorf("%s moved from %d to %d across an all-hit batch", name, snap[name], snap2[name])
				}
			}
			if got, w := snap2["keyedeq_cache_hits_total"], hits+int64(len(jobs)); got != w {
				t.Errorf("cache-hit counter = %d after repeat batch, want %d", got, w)
			}
			if got, w := snap2["keyedeq_pairs_total"], int64(2*len(jobs)); got != w {
				t.Errorf("pair counter = %d after repeat batch, want %d", got, w)
			}

			// The same totals must survive text exposition.
			var buf bytes.Buffer
			if err := reg.WritePrometheus(&buf); err != nil {
				t.Fatal(err)
			}
			text := buf.String()
			for _, line := range []string{
				fmt.Sprintf("keyedeq_pairs_total %d", snap2["keyedeq_pairs_total"]),
				fmt.Sprintf("keyedeq_search_nodes_total %d", snap2["keyedeq_search_nodes_total"]),
				fmt.Sprintf("keyedeq_chase_iterations_total %d", snap2["keyedeq_chase_iterations_total"]),
			} {
				if !strings.Contains(text, line) {
					t.Errorf("prometheus exposition lacks %q", line)
				}
			}
		})
	}
}
