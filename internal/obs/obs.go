// Package obs is the zero-dependency observability layer of the
// decision pipeline: a metrics registry (counters, gauges, histograms
// with fixed bucket boundaries) with Prometheus-text and expvar export,
// and lightweight spans emitted at each pipeline stage — canonicalize,
// freeze+chase, plan, search, verify — so a single pair's verdict can
// be reconstructed from its trace.
//
// The layer is off by default and near-zero cost when off: an *Obs is
// carried through the pipeline inside a context.Context, every method
// is safe on a nil receiver, and instrumented code pays one context
// lookup per pipeline stage (not per search node) plus a handful of nil
// checks.  The obs-verify benchmark gate holds the no-op overhead under
// 2% of search wall time.
//
// The package deliberately imports nothing from the rest of the repo,
// so every pipeline package (engine, containment, chase, cq) can report
// through it without import cycles.  Stage-specific stats structures
// (containment.Stats, chase.Stats, cq.EvalStats) are flattened into
// span attributes by the emitting package.
package obs

import (
	"context"
	"time"
)

// Pipeline stage names used in spans and traces.  One pair's decision
// emits, in order: canonicalize spans for each distinct query, a
// freeze_chase span per containment direction, plan and search spans
// from the homomorphism search, and a closing verify span carrying the
// verdict and the pair's merged containment.Stats.
const (
	StageCanonicalize = "canonicalize"
	StageFreezeChase  = "freeze_chase"
	StagePlan         = "plan"
	StageSearch       = "search"
	StageVerify       = "verify"
)

// Obs bundles the three observability channels an instrumented run may
// carry: a metrics registry, a span sink, and an injected clock.  Any
// field may be nil; a nil *Obs disables everything.  Library code never
// calls time.Now — commands inject it — so spans carry wall times only
// when Now is set.
type Obs struct {
	Reg  *Registry
	Sink Sink
	Now  func() time.Time
}

// C returns the standard counter handle, nil when o or its registry is
// nil (a nil *Counter's Add is a no-op).
func (o *Obs) C(id CounterID) *Counter {
	if o == nil {
		return nil
	}
	return o.Reg.C(id)
}

// G returns the standard gauge handle, nil-safe like C.
func (o *Obs) G(id GaugeID) *Gauge {
	if o == nil {
		return nil
	}
	return o.Reg.G(id)
}

// H returns the standard histogram handle, nil-safe like C.
func (o *Obs) H(id HistID) *Histogram {
	if o == nil {
		return nil
	}
	return o.Reg.H(id)
}

// SpansOn reports whether span emission is enabled.  Emitting packages
// check it before building attribute slices, so a metrics-only Obs
// allocates nothing on the span path.
func (o *Obs) SpansOn() bool { return o != nil && o.Sink != nil }

// Time returns the injected clock's reading, or the zero time when no
// clock was injected (spans then carry durations of zero and omit
// timestamps).
func (o *Obs) Time() time.Time {
	if o == nil || o.Now == nil {
		return time.Time{}
	}
	return o.Now()
}

// Emit sends a span to the sink, if any.  The span must not be mutated
// after the call; ownership transfers to the sink.
func (o *Obs) Emit(sp *Span) {
	if o != nil && o.Sink != nil {
		o.Sink.Emit(sp)
	}
}

// EmitSpan builds and emits one span: stage, the pair key carried by
// ctx (if any), wall times from start to now when a clock is injected,
// the error (if any), and the given attributes.  No-op without a sink.
func (o *Obs) EmitSpan(ctx context.Context, stage string, start time.Time, err error, attrs ...Attr) {
	if !o.SpansOn() {
		return
	}
	sp := &Span{Stage: stage, Pair: PairFromContext(ctx), Start: start, Attrs: attrs}
	if !start.IsZero() {
		if end := o.Time(); !end.IsZero() {
			sp.DurNs = end.Sub(start).Nanoseconds()
		}
	}
	if err != nil {
		sp.Err = err.Error()
	}
	o.Emit(sp)
}

// ctxKey keys the context values this package installs.
type ctxKey int

const (
	obsKey ctxKey = iota
	pairKey
)

// NewContext returns ctx carrying o; the pipeline packages recover it
// with FromContext.  A nil o returns ctx unchanged.
func NewContext(ctx context.Context, o *Obs) context.Context {
	if o == nil {
		return ctx
	}
	return context.WithValue(ctx, obsKey, o)
}

// FromContext returns the Obs carried by ctx, or nil.  All Obs methods
// are nil-safe, so callers may use the result unconditionally.
func FromContext(ctx context.Context) *Obs {
	o, _ := ctx.Value(obsKey).(*Obs)
	return o
}

// WithPair returns ctx tagged with the canonical pair key the current
// work belongs to; spans emitted under it carry the key, tying every
// stage of one pair's decision together in the trace.
func WithPair(ctx context.Context, pair string) context.Context {
	return context.WithValue(ctx, pairKey, pair)
}

// PairFromContext returns the pair key installed by WithPair, or "".
func PairFromContext(ctx context.Context) string {
	p, _ := ctx.Value(pairKey).(string)
	return p
}
