package obs

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// CounterID names a standard pipeline counter.  Standard instruments
// live in a fixed array inside the Registry, so the hot path resolves a
// handle by array index — no name hashing, no locks.
type CounterID int

const (
	// CPairs counts decision requests (jobs plus single Decide calls).
	CPairs CounterID = iota
	// CPairsHolding counts true verdicts.
	CPairsHolding
	// CPairsErrors counts undecidable pairs (validation failure,
	// cancellation, timeout).
	CPairsErrors
	// CPairsComputed counts pairs decided by fresh work (neither cache
	// hit nor batch dedup), excluding errors.
	CPairsComputed
	// CCacheHits counts pairs answered from the verdict cache.
	CCacheHits
	// CDeduped counts pairs answered by another job of the same batch.
	CDeduped
	// CCanonicalized counts canonical-form computations (cache-missed
	// canonicalizations, not memo lookups).
	CCanonicalized
	// CSearches counts homomorphism search invocations.
	CSearches
	// CSearchNodes totals homomorphism search tree nodes.
	CSearchNodes
	// CChaseRuns counts chase fixpoint runs.
	CChaseRuns
	// CChaseIterations totals chase fixpoint rounds.
	CChaseIterations
	// CChaseMerges totals chase union operations.
	CChaseMerges
	// CChaseRevisited totals semi-naive chase work items revisited.
	CChaseRevisited
	// CChaseFailed counts failing chases (unsatisfiable tableaux).
	CChaseFailed
	// CServeRequests counts HTTP decision requests accepted by the
	// daemon (decide, batch lines, schema checks).
	CServeRequests
	// CServeRejected counts requests turned away by admission control
	// (in-flight limit, per-client quota, draining).
	CServeRejected
	// CStoreAppends counts verdicts appended to the persistent store.
	CStoreAppends
	// CStoreAppendErrors counts failed store appends (serving keeps
	// going; persistence is best-effort).
	CStoreAppendErrors
	// CStoreReplayed counts verdicts replayed from the store at boot.
	CStoreReplayed
	// CStoreCompactions counts store compaction runs.
	CStoreCompactions
	// CStoreTruncatedBytes totals bytes dropped from torn store tails.
	CStoreTruncatedBytes

	numCounterIDs
)

// counterNames maps CounterID to the Prometheus exposition name.
var counterNames = [numCounterIDs]string{
	CPairs:           "keyedeq_pairs_total",
	CPairsHolding:    "keyedeq_pairs_holding_total",
	CPairsErrors:     "keyedeq_pairs_errors_total",
	CPairsComputed:   "keyedeq_pairs_computed_total",
	CCacheHits:       "keyedeq_cache_hits_total",
	CDeduped:         "keyedeq_pairs_deduped_total",
	CCanonicalized:   "keyedeq_canonicalizations_total",
	CSearches:        "keyedeq_searches_total",
	CSearchNodes:     "keyedeq_search_nodes_total",
	CChaseRuns:       "keyedeq_chase_runs_total",
	CChaseIterations: "keyedeq_chase_iterations_total",
	CChaseMerges:     "keyedeq_chase_merges_total",
	CChaseRevisited:  "keyedeq_chase_revisited_total",
	CChaseFailed:     "keyedeq_chase_failed_total",

	CServeRequests:       "keyedeq_serve_requests_total",
	CServeRejected:       "keyedeq_serve_rejected_total",
	CStoreAppends:        "keyedeq_store_appends_total",
	CStoreAppendErrors:   "keyedeq_store_append_errors_total",
	CStoreReplayed:       "keyedeq_store_replayed_total",
	CStoreCompactions:    "keyedeq_store_compactions_total",
	CStoreTruncatedBytes: "keyedeq_store_truncated_bytes_total",
}

// GaugeID names a standard pipeline gauge.
type GaugeID int

const (
	// GCacheEntries is the verdict cache's current entry count.
	GCacheEntries GaugeID = iota
	// GServeInFlight is the daemon's current in-flight request count.
	GServeInFlight
	// GServeDraining is 1 while the daemon is draining (refusing new
	// work, finishing in-flight requests), else 0.
	GServeDraining

	numGaugeIDs
)

var gaugeNames = [numGaugeIDs]string{
	GCacheEntries:  "keyedeq_cache_entries",
	GServeInFlight: "keyedeq_serve_in_flight",
	GServeDraining: "keyedeq_serve_draining",
}

// HistID names a standard pipeline histogram.
type HistID int

const (
	// HSearchNodes is nodes per homomorphism search.
	HSearchNodes HistID = iota
	// HPairNodes is nodes per freshly computed pair.
	HPairNodes
	// HChaseIterations is fixpoint rounds per chase run.
	HChaseIterations

	numHistIDs
)

var histNames = [numHistIDs]string{
	HSearchNodes:     "keyedeq_search_nodes",
	HPairNodes:       "keyedeq_pair_nodes",
	HChaseIterations: "keyedeq_chase_iterations",
}

// nodeBuckets are the fixed bucket boundaries for node-count
// histograms: powers of four, spanning trivial searches to the
// exponential corners.
var nodeBuckets = []int64{1, 4, 16, 64, 256, 1024, 4096, 16384, 65536, 262144}

// iterBuckets are the fixed bucket boundaries for chase-round counts.
var iterBuckets = []int64{1, 2, 4, 8, 16, 32, 64, 128}

// histBounds maps HistID to its bucket boundaries.
var histBounds = [numHistIDs][]int64{
	HSearchNodes:     nodeBuckets,
	HPairNodes:       nodeBuckets,
	HChaseIterations: iterBuckets,
}

// stripe is one cache-line-padded counter cell.  Padding keeps
// concurrent writers on different CPUs from false-sharing a line.
type stripe struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing counter, striped across
// roughly one cell per CPU.  Stripe indices are handed out round-robin
// through a sync.Pool, whose per-P caching parks each index on the
// processor that last used it — steady-state writers touch only their
// own cell.  A nil *Counter is a no-op.
type Counter struct {
	stripes []stripe
	next    atomic.Uint32
	pool    sync.Pool
}

// initCounter sizes the stripe array and wires the index pool.
func (c *Counter) initCounter() {
	n := 1
	for n < runtime.GOMAXPROCS(0) {
		n <<= 1
	}
	c.stripes = make([]stripe, n)
	mask := uint32(n - 1)
	c.pool.New = func() interface{} {
		idx := new(uint32)
		*idx = (c.next.Add(1) - 1) & mask
		return idx
	}
}

// Add adds n to the counter.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	ip := c.pool.Get().(*uint32)
	c.stripes[*ip].v.Add(n)
	c.pool.Put(ip)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	var total int64
	for i := range c.stripes {
		total += c.stripes[i].v.Load()
	}
	return total
}

// Gauge is a settable instantaneous value.  A nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n.
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-boundary histogram over int64 observations
// (node counts, chase rounds).  Observations and reads are lock-free.
// A nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64        // ascending upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
}

// initHistogram wires the bucket array for the given ascending bounds.
func (h *Histogram) initHistogram(bounds []int64) {
	h.bounds = bounds
	h.counts = make([]atomic.Int64, len(bounds)+1)
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Sum returns the total of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds the standard pipeline instruments plus any named
// instruments registered at runtime.  The standard set is resolved by
// array index (no locks, no hashing); named instruments go through a
// mutex-guarded map and are meant for cold paths.  A nil *Registry
// yields nil handles everywhere, so "metrics off" costs nil checks.
type Registry struct {
	std   [numCounterIDs]Counter
	stdG  [numGaugeIDs]Gauge
	stdH  [numHistIDs]Histogram
	mu    sync.Mutex
	named map[string]*Counter
}

// NewRegistry builds a registry with every standard instrument ready.
func NewRegistry() *Registry {
	r := &Registry{named: make(map[string]*Counter)}
	for i := range r.std {
		r.std[i].initCounter()
	}
	for i := range r.stdH {
		r.stdH[i].initHistogram(histBounds[i])
	}
	return r
}

// C returns the standard counter, nil when r is nil.
func (r *Registry) C(id CounterID) *Counter {
	if r == nil {
		return nil
	}
	return &r.std[id]
}

// G returns the standard gauge, nil when r is nil.
func (r *Registry) G(id GaugeID) *Gauge {
	if r == nil {
		return nil
	}
	return &r.stdG[id]
}

// H returns the standard histogram, nil when r is nil.
func (r *Registry) H(id HistID) *Histogram {
	if r == nil {
		return nil
	}
	return &r.stdH[id]
}

// Named returns (creating on first use) a counter outside the standard
// set.  Intended for cold paths: the lookup takes the registry lock.
func (r *Registry) Named(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.named[name]
	if !ok {
		c = &Counter{}
		c.initCounter()
		r.named[name] = c
	}
	return c
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format: standard counters and gauges in ID order, named
// counters sorted by name, histograms with cumulative buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for id := CounterID(0); id < numCounterIDs; id++ {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n",
			counterNames[id], counterNames[id], r.std[id].Value()); err != nil {
			return err
		}
	}
	for id := GaugeID(0); id < numGaugeIDs; id++ {
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n",
			gaugeNames[id], gaugeNames[id], r.stdG[id].Value()); err != nil {
			return err
		}
	}
	for id := HistID(0); id < numHistIDs; id++ {
		h := &r.stdH[id]
		name := histNames[id]
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		var cum int64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, b, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, cum, name, h.Sum(), name, cum); err != nil {
			return err
		}
	}
	names := make([]string, 0, len(r.named))
	r.mu.Lock()
	for name := range r.named {
		names = append(names, name)
	}
	r.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.Lock()
		c := r.named[name]
		r.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, c.Value()); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot returns every instrument's current value keyed by
// exposition name (histograms contribute _sum and _count entries).
// It backs the expvar export: publish it with
// expvar.Publish("keyedeq", expvar.Func(func() any { return r.Snapshot() })).
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	for id := CounterID(0); id < numCounterIDs; id++ {
		out[counterNames[id]] = r.std[id].Value()
	}
	for id := GaugeID(0); id < numGaugeIDs; id++ {
		out[gaugeNames[id]] = r.stdG[id].Value()
	}
	for id := HistID(0); id < numHistIDs; id++ {
		out[histNames[id]+"_sum"] = r.stdH[id].Sum()
		out[histNames[id]+"_count"] = r.stdH[id].Count()
	}
	r.mu.Lock()
	for name, c := range r.named {
		out[name] = c.Value()
	}
	r.mu.Unlock()
	return out
}
