package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.C(CSearchNodes)
	const goroutines, perG = 16, 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestCounterAddAndNamed(t *testing.T) {
	r := NewRegistry()
	r.C(CPairs).Add(5)
	r.C(CPairs).Add(3)
	if got := r.C(CPairs).Value(); got != 8 {
		t.Fatalf("CPairs = %d, want 8", got)
	}
	n := r.Named("keyedeq_custom_total")
	n.Add(2)
	if r.Named("keyedeq_custom_total") != n {
		t.Fatal("Named did not return the same counter on second lookup")
	}
	if got := n.Value(); got != 2 {
		t.Fatalf("named = %d, want 2", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.G(GCacheEntries)
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.H(HChaseIterations) // bounds 1,2,4,8,16,32,64,128
	for _, v := range []int64{0, 1, 2, 3, 128, 129, 1000} {
		h.Observe(v)
	}
	if got := h.Count(); got != 7 {
		t.Fatalf("count = %d, want 7", got)
	}
	if got := h.Sum(); got != 0+1+2+3+128+129+1000 {
		t.Fatalf("sum = %d, want 1263", got)
	}
	// Bucket placement: le=1 gets {0,1}, le=2 gets {2}, le=4 gets {3},
	// le=128 gets {128}, +Inf gets {129,1000}.
	want := []int64{2, 1, 1, 0, 0, 0, 0, 1}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket[%d] (le=%d) = %d, want %d", i, h.bounds[i], got, w)
		}
	}
	if got := h.counts[len(h.bounds)].Load(); got != 2 {
		t.Errorf("+Inf bucket = %d, want 2", got)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Obs
	var r *Registry
	o.C(CPairs).Inc()
	o.G(GCacheEntries).Set(1)
	o.H(HSearchNodes).Observe(1)
	r.C(CPairs).Add(1)
	r.Named("x").Inc()
	if r.C(CPairs) != nil || r.G(GCacheEntries) != nil || r.H(HSearchNodes) != nil || r.Named("x") != nil {
		t.Fatal("nil registry must yield nil handles")
	}
	if o.SpansOn() {
		t.Fatal("nil Obs must report spans off")
	}
	if !o.Time().IsZero() {
		t.Fatal("nil Obs must report zero time")
	}
	o.Emit(&Span{Stage: StageVerify})
	o.EmitSpan(context.Background(), StageVerify, time.Time{}, nil)
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
	if got := len(r.Snapshot()); got != 0 {
		t.Fatalf("nil Snapshot has %d entries, want 0", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.C(CSearchNodes).Add(42)
	r.G(GCacheEntries).Set(9)
	r.H(HChaseIterations).Observe(3)
	r.H(HChaseIterations).Observe(200)
	r.Named("keyedeq_zzz_total").Add(1)
	r.Named("keyedeq_aaa_total").Add(2)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE keyedeq_search_nodes_total counter\nkeyedeq_search_nodes_total 42\n",
		"# TYPE keyedeq_cache_entries gauge\nkeyedeq_cache_entries 9\n",
		"# TYPE keyedeq_chase_iterations histogram\n",
		"keyedeq_chase_iterations_bucket{le=\"4\"} 1\n",
		"keyedeq_chase_iterations_bucket{le=\"128\"} 1\n",
		"keyedeq_chase_iterations_bucket{le=\"+Inf\"} 2\n",
		"keyedeq_chase_iterations_sum 203\n",
		"keyedeq_chase_iterations_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	// Named counters render sorted.
	if a, z := strings.Index(out, "keyedeq_aaa_total"), strings.Index(out, "keyedeq_zzz_total"); a < 0 || z < 0 || a > z {
		t.Errorf("named counters not sorted: aaa at %d, zzz at %d", a, z)
	}
	// Every standard instrument appears even at zero.
	for _, name := range counterNames {
		if !strings.Contains(out, name+" ") {
			t.Errorf("output missing standard counter %s", name)
		}
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.C(CChaseRuns).Add(4)
	r.H(HSearchNodes).Observe(10)
	snap := r.Snapshot()
	if snap["keyedeq_chase_runs_total"] != 4 {
		t.Errorf("chase_runs = %d, want 4", snap["keyedeq_chase_runs_total"])
	}
	if snap["keyedeq_search_nodes_sum"] != 10 || snap["keyedeq_search_nodes_count"] != 1 {
		t.Errorf("histogram snapshot = %d/%d, want 10/1",
			snap["keyedeq_search_nodes_sum"], snap["keyedeq_search_nodes_count"])
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	s := NewJSONLSink(&buf)
	s.Emit(&Span{Stage: StageSearch, Pair: "p1", Attrs: []Attr{I("nodes", 7), B("failed", true), S("mode", "planned")}})
	s.Emit(&Span{Stage: StageVerify, Err: "boom"})
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var sp Span
	if err := json.Unmarshal([]byte(lines[0]), &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Stage != StageSearch || sp.Pair != "p1" || len(sp.Attrs) != 3 {
		t.Fatalf("round trip mismatch: %+v", sp)
	}
	if n, ok := sp.IntAttr("nodes"); !ok || n != 7 {
		t.Fatalf("nodes attr = %d,%v", n, ok)
	}
	if f, ok := sp.IntAttr("failed"); !ok || f != 1 {
		t.Fatalf("failed attr = %d,%v", f, ok)
	}
	if _, ok := sp.IntAttr("missing"); ok {
		t.Fatal("missing attr reported present")
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	return 0, errors.New("disk full")
}

func TestJSONLSinkRetainsFirstError(t *testing.T) {
	w := &failWriter{}
	s := NewJSONLSink(w)
	s.Emit(&Span{Stage: StageSearch})
	s.Emit(&Span{Stage: StageSearch})
	if s.Err() == nil {
		t.Fatal("want retained error")
	}
	if w.n != 1 {
		t.Fatalf("writer called %d times after error, want 1", w.n)
	}
}

func TestCollectSink(t *testing.T) {
	s := &CollectSink{}
	s.Emit(&Span{Stage: StageSearch})
	s.Emit(&Span{Stage: StagePlan})
	s.Emit(&Span{Stage: StageSearch})
	if got := len(s.Spans()); got != 3 {
		t.Fatalf("spans = %d, want 3", got)
	}
	if got := len(s.Stage(StageSearch)); got != 2 {
		t.Fatalf("search spans = %d, want 2", got)
	}
	s.Reset()
	if got := len(s.Spans()); got != 0 {
		t.Fatalf("spans after reset = %d, want 0", got)
	}
}

func TestContextPlumbing(t *testing.T) {
	base := context.Background()
	if FromContext(base) != nil {
		t.Fatal("empty context must carry nil Obs")
	}
	if PairFromContext(base) != "" {
		t.Fatal("empty context must carry no pair")
	}
	if NewContext(base, nil) != base {
		t.Fatal("NewContext(nil) must return ctx unchanged")
	}
	o := &Obs{Reg: NewRegistry()}
	ctx := WithPair(NewContext(base, o), "k1|k2")
	if FromContext(ctx) != o {
		t.Fatal("FromContext lost the Obs")
	}
	if got := PairFromContext(ctx); got != "k1|k2" {
		t.Fatalf("pair = %q", got)
	}
}

func TestEmitSpan(t *testing.T) {
	sink := &CollectSink{}
	now := time.Unix(100, 0)
	o := &Obs{Reg: NewRegistry(), Sink: sink, Now: func() time.Time { return now }}
	ctx := WithPair(context.Background(), "p")
	start := o.Time()
	now = now.Add(5 * time.Millisecond)
	o.EmitSpan(ctx, StageSearch, start, errors.New("canceled"), I("nodes", 3))
	spans := sink.Spans()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Stage != StageSearch || sp.Pair != "p" || sp.Err != "canceled" {
		t.Fatalf("span = %+v", sp)
	}
	if sp.DurNs != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("dur = %d", sp.DurNs)
	}
	// Without a clock, spans omit timestamps but still carry attrs.
	o2 := &Obs{Sink: sink}
	o2.EmitSpan(context.Background(), StageVerify, time.Time{}, nil, I("x", 1))
	sp2 := sink.Spans()[1]
	if !sp2.Start.IsZero() || sp2.DurNs != 0 {
		t.Fatalf("clockless span carries time: %+v", sp2)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.C(CSearchNodes)
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkCounterIncNil(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
