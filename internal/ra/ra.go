// Package ra implements conjunctive relational algebra with equality
// selections — the paper's query language on its algebraic side: the
// operators select (column = column and column = constant), project
// (extended with constant columns, so heads may contain constants as the
// paper's syntax allows), equijoin, and cartesian product, over named
// relations.
//
// The package provides evaluation over database instances, type
// inference, and the two translations that show the algebra and the
// paper's Datalog-style syntax express the same queries: FromCQ compiles
// a conjunctive query to an algebra expression, and ToCQ extracts a
// conjunctive query from any expression.
package ra

import (
	"fmt"
	"strings"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Expr is a conjunctive relational algebra expression.
type Expr interface {
	// Type returns the output column types under s.
	Type(s *schema.Schema) ([]value.Type, error)
	// String renders the expression.
	String() string
}

// Rel is a leaf: the named base relation.
type Rel struct {
	Name string
}

// SelectEq is σ_{left = right}(E): keep rows whose two columns agree.
type SelectEq struct {
	E           Expr
	Left, Right int
}

// SelectConst is σ_{col = c}(E).
type SelectConst struct {
	E     Expr
	Col   int
	Const value.Value
}

// Product is E × F (column concatenation).
type Product struct {
	L, R Expr
}

// Join is the equijoin E ⋈_{lcol = rcol} F, keeping all columns of both
// inputs: σ_{lcol = |E|+rcol}(E × F).
type Join struct {
	L, R       Expr
	LCol, RCol int
}

// ProjCol is one output column of a projection: either an input column
// index or a constant (extended projection, mirroring constants in query
// heads).
type ProjCol struct {
	IsConst bool
	Col     int
	Const   value.Value
}

// Col makes a column reference.
func Col(i int) ProjCol { return ProjCol{Col: i} }

// Const makes a constant output column.
func Const(v value.Value) ProjCol { return ProjCol{IsConst: true, Const: v} }

// Project is π_{cols}(E) with possible repetition and constants.
type Project struct {
	E    Expr
	Cols []ProjCol
}

func (r *Rel) Type(s *schema.Schema) ([]value.Type, error) {
	rel := s.Relation(r.Name)
	if rel == nil {
		return nil, fmt.Errorf("ra: unknown relation %q", r.Name)
	}
	return rel.Type(), nil
}

func (r *Rel) String() string { return r.Name }

func (e *SelectEq) Type(s *schema.Schema) ([]value.Type, error) {
	ts, err := e.E.Type(s)
	if err != nil {
		return nil, err
	}
	if err := checkCol(e.Left, len(ts)); err != nil {
		return nil, err
	}
	if err := checkCol(e.Right, len(ts)); err != nil {
		return nil, err
	}
	if ts[e.Left] != ts[e.Right] {
		return nil, fmt.Errorf("ra: select compares columns of types %v and %v", ts[e.Left], ts[e.Right])
	}
	return ts, nil
}

func (e *SelectEq) String() string {
	return fmt.Sprintf("σ[%d=%d](%s)", e.Left, e.Right, e.E)
}

func (e *SelectConst) Type(s *schema.Schema) ([]value.Type, error) {
	ts, err := e.E.Type(s)
	if err != nil {
		return nil, err
	}
	if err := checkCol(e.Col, len(ts)); err != nil {
		return nil, err
	}
	if ts[e.Col] != e.Const.Type {
		return nil, fmt.Errorf("ra: select compares column type %v with constant %v", ts[e.Col], e.Const)
	}
	return ts, nil
}

func (e *SelectConst) String() string {
	return fmt.Sprintf("σ[%d=%s](%s)", e.Col, e.Const, e.E)
}

func (e *Product) Type(s *schema.Schema) ([]value.Type, error) {
	lt, err := e.L.Type(s)
	if err != nil {
		return nil, err
	}
	rt, err := e.R.Type(s)
	if err != nil {
		return nil, err
	}
	return append(append([]value.Type{}, lt...), rt...), nil
}

func (e *Product) String() string { return fmt.Sprintf("(%s × %s)", e.L, e.R) }

func (e *Join) Type(s *schema.Schema) ([]value.Type, error) {
	lt, err := e.L.Type(s)
	if err != nil {
		return nil, err
	}
	rt, err := e.R.Type(s)
	if err != nil {
		return nil, err
	}
	if err := checkCol(e.LCol, len(lt)); err != nil {
		return nil, err
	}
	if err := checkCol(e.RCol, len(rt)); err != nil {
		return nil, err
	}
	if lt[e.LCol] != rt[e.RCol] {
		return nil, fmt.Errorf("ra: join compares types %v and %v", lt[e.LCol], rt[e.RCol])
	}
	return append(append([]value.Type{}, lt...), rt...), nil
}

func (e *Join) String() string {
	return fmt.Sprintf("(%s ⋈[%d=%d] %s)", e.L, e.LCol, e.RCol, e.R)
}

func (e *Project) Type(s *schema.Schema) ([]value.Type, error) {
	ts, err := e.E.Type(s)
	if err != nil {
		return nil, err
	}
	out := make([]value.Type, len(e.Cols))
	for i, c := range e.Cols {
		if c.IsConst {
			out[i] = c.Const.Type
			continue
		}
		if err := checkCol(c.Col, len(ts)); err != nil {
			return nil, err
		}
		out[i] = ts[c.Col]
	}
	return out, nil
}

func (e *Project) String() string {
	parts := make([]string, len(e.Cols))
	for i, c := range e.Cols {
		if c.IsConst {
			parts[i] = c.Const.String()
		} else {
			parts[i] = fmt.Sprint(c.Col)
		}
	}
	return fmt.Sprintf("π[%s](%s)", strings.Join(parts, ","), e.E)
}

func checkCol(i, n int) error {
	if i < 0 || i >= n {
		return fmt.Errorf("ra: column %d out of range (width %d)", i, n)
	}
	return nil
}

// Eval evaluates the expression over d, returning the result with a
// synthesized scheme.  It runs the streaming iterator evaluator
// (stream.go): selections and projections pass rows through without
// materializing, and joins hash their build side into a pre-sized
// table.  evalMaterialize is the recursive reference it is tested
// against.
func Eval(e Expr, d *instance.Database) (*instance.Relation, error) {
	ts, err := e.Type(d.Schema)
	if err != nil {
		return nil, err
	}
	rows, err := drain(e, d)
	if err != nil {
		return nil, err
	}
	scheme := &schema.Relation{Name: "out"}
	for i, t := range ts {
		scheme.Attrs = append(scheme.Attrs, schema.Attribute{Name: fmt.Sprintf("c%d", i), Type: t})
	}
	out := instance.NewRelation(scheme)
	for _, r := range rows {
		if err := out.Insert(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evalMaterialize is the original recursive evaluator: every operator
// materializes its full input before producing output.  It is kept as
// the semantics reference — the streaming evaluator must produce the
// same rows in the same order on every expression.
func evalMaterialize(e Expr, d *instance.Database) ([]instance.Tuple, error) {
	switch e := e.(type) {
	case *Rel:
		r := d.Relation(e.Name)
		if r == nil {
			return nil, fmt.Errorf("ra: unknown relation %q", e.Name)
		}
		return r.Tuples(), nil
	case *SelectEq:
		in, err := evalMaterialize(e.E, d)
		if err != nil {
			return nil, err
		}
		var out []instance.Tuple
		for _, t := range in {
			if t[e.Left] == t[e.Right] {
				out = append(out, t)
			}
		}
		return out, nil
	case *SelectConst:
		in, err := evalMaterialize(e.E, d)
		if err != nil {
			return nil, err
		}
		var out []instance.Tuple
		for _, t := range in {
			if t[e.Col] == e.Const {
				out = append(out, t)
			}
		}
		return out, nil
	case *Product:
		lt, err := evalMaterialize(e.L, d)
		if err != nil {
			return nil, err
		}
		rt, err := evalMaterialize(e.R, d)
		if err != nil {
			return nil, err
		}
		var out []instance.Tuple
		for _, l := range lt {
			for _, r := range rt {
				out = append(out, append(append(instance.Tuple{}, l...), r...))
			}
		}
		return out, nil
	case *Join:
		lt, err := evalMaterialize(e.L, d)
		if err != nil {
			return nil, err
		}
		rt, err := evalMaterialize(e.R, d)
		if err != nil {
			return nil, err
		}
		var out []instance.Tuple
		for _, l := range lt {
			for _, r := range rt {
				if l[e.LCol] == r[e.RCol] {
					out = append(out, append(append(instance.Tuple{}, l...), r...))
				}
			}
		}
		return out, nil
	case *Project:
		in, err := evalMaterialize(e.E, d)
		if err != nil {
			return nil, err
		}
		var out []instance.Tuple
		for _, t := range in {
			row := make(instance.Tuple, len(e.Cols))
			for i, c := range e.Cols {
				if c.IsConst {
					row[i] = c.Const
				} else {
					row[i] = t[c.Col]
				}
			}
			out = append(out, row)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("ra: unknown expression %T", e)
	}
}
