package ra

import (
	"math/rand"
	"strings"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

var s = schema.MustParse("R(a:T1, b:T2)\nS(c:T2, d:T3)")

func v(t value.Type, n int64) value.Value { return value.Value{Type: t, N: n} }

func db(t *testing.T) *instance.Database {
	t.Helper()
	d := instance.NewDatabase(s)
	d.MustInsert("R", v(1, 1), v(2, 1))
	d.MustInsert("R", v(1, 2), v(2, 2))
	d.MustInsert("S", v(2, 1), v(3, 1))
	d.MustInsert("S", v(2, 1), v(3, 2))
	return d
}

func TestEvalRel(t *testing.T) {
	out, err := Eval(&Rel{Name: "R"}, db(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("len = %d", out.Len())
	}
	if _, err := Eval(&Rel{Name: "ZZ"}, db(t)); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestEvalSelectConst(t *testing.T) {
	e := &SelectConst{E: &Rel{Name: "R"}, Col: 1, Const: v(2, 2)}
	out, err := Eval(e, db(t))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Has(instance.Tuple{v(1, 2), v(2, 2)}) {
		t.Errorf("select const wrong: %s", out)
	}
}

func TestEvalSelectEq(t *testing.T) {
	d := instance.NewDatabase(schema.MustParse("E(x:T1, y:T1)"))
	d.MustInsert("E", v(1, 1), v(1, 1))
	d.MustInsert("E", v(1, 1), v(1, 2))
	e := &SelectEq{E: &Rel{Name: "E"}, Left: 0, Right: 1}
	out, err := Eval(e, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 1 || !out.Has(instance.Tuple{v(1, 1), v(1, 1)}) {
		t.Errorf("select eq wrong: %s", out)
	}
}

func TestEvalProductJoinProject(t *testing.T) {
	d := db(t)
	prod := &Product{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}}
	out, err := Eval(prod, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Errorf("product len = %d", out.Len())
	}
	join := &Join{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}, LCol: 1, RCol: 0}
	jout, err := Eval(join, d)
	if err != nil {
		t.Fatal(err)
	}
	// R(1,1) joins S(1,1),(1,2); R(2,2) joins nothing.
	if jout.Len() != 2 {
		t.Errorf("join len = %d: %s", jout.Len(), jout)
	}
	proj := &Project{E: join, Cols: []ProjCol{Col(0), Col(3), Const(v(9, 7))}}
	pout, err := Eval(proj, d)
	if err != nil {
		t.Fatal(err)
	}
	if pout.Len() != 2 {
		t.Errorf("project len = %d", pout.Len())
	}
	for _, tp := range pout.Tuples() {
		if tp[2] != v(9, 7) {
			t.Errorf("constant column wrong: %v", tp)
		}
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []Expr{
		&SelectEq{E: &Rel{Name: "R"}, Left: 0, Right: 1},                // T1 vs T2
		&SelectEq{E: &Rel{Name: "R"}, Left: 0, Right: 5},                // out of range
		&SelectConst{E: &Rel{Name: "R"}, Col: 0, Const: v(2, 1)},        // type clash
		&SelectConst{E: &Rel{Name: "R"}, Col: 9, Const: v(1, 1)},        // out of range
		&Join{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}, LCol: 0, RCol: 0}, // T1 vs T2
		&Join{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}, LCol: 5, RCol: 0}, // range
		&Project{E: &Rel{Name: "R"}, Cols: []ProjCol{Col(7)}},           // range
		&Rel{Name: "nope"},
	}
	for i, e := range cases {
		if _, err := e.Type(s); err == nil {
			t.Errorf("case %d (%s): Type() accepted", i, e)
		}
		if _, err := Eval(e, db(t)); err == nil {
			t.Errorf("case %d (%s): Eval() accepted", i, e)
		}
	}
}

func TestTypeInference(t *testing.T) {
	e := &Project{
		E:    &Join{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}, LCol: 1, RCol: 0},
		Cols: []ProjCol{Col(0), Col(3), Const(v(9, 1))},
	}
	ts, err := e.Type(s)
	if err != nil {
		t.Fatal(err)
	}
	want := []value.Type{1, 3, 9}
	for i := range want {
		if ts[i] != want[i] {
			t.Errorf("Type[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestFromCQMatchesEval(t *testing.T) {
	queries := []string{
		"V(X, Y) :- R(X, Y).",
		"V(X, W) :- R(X, Y), S(Z, W), Y = Z.",
		"V(X) :- R(X, Y), Y = T2:2.",
		"V(T3:9, X) :- R(X, Y).",
		"V(X, X) :- R(X, Y).",
	}
	d := db(t)
	for _, text := range queries {
		q := cq.MustParse(text)
		e, err := FromCQ(q, s)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		raOut, err := Eval(e, d)
		if err != nil {
			t.Fatal(err)
		}
		cqOut, err := cq.Eval(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if !raOut.Equal(cqOut) {
			t.Errorf("%q: RA %s vs CQ %s", text, raOut, cqOut)
		}
	}
}

func TestFromCQValidates(t *testing.T) {
	if _, err := FromCQ(cq.MustParse("V(X) :- Z(X)."), s); err == nil {
		t.Error("invalid query accepted")
	}
}

func TestToCQRoundTrip(t *testing.T) {
	exprs := []Expr{
		&Project{E: &Rel{Name: "R"}, Cols: []ProjCol{Col(0)}},
		&Project{
			E:    &Join{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}, LCol: 1, RCol: 0},
			Cols: []ProjCol{Col(0), Col(3)},
		},
		&SelectConst{E: &Rel{Name: "S"}, Col: 1, Const: v(3, 1)},
		&Project{
			E:    &Product{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}},
			Cols: []ProjCol{Col(0), Const(v(9, 2))},
		},
	}
	d := db(t)
	for _, e := range exprs {
		q, err := ToCQ(e, s)
		if err != nil {
			t.Fatalf("%s: %v", e, err)
		}
		raOut, err := Eval(e, d)
		if err != nil {
			t.Fatal(err)
		}
		cqOut, err := cq.Eval(q, d)
		if err != nil {
			t.Fatalf("%s -> %s: %v", e, q, err)
		}
		if !raOut.Equal(cqOut) {
			t.Errorf("%s -> %s: RA %s vs CQ %s", e, q, raOut, cqOut)
		}
	}
}

func TestToCQConstConflict(t *testing.T) {
	// σ over a projection that made two distinct constant columns equal
	// is the empty query; the extraction reports it as an error.
	e := &SelectEq{
		E:     &Project{E: &Rel{Name: "R"}, Cols: []ProjCol{Const(v(9, 1)), Const(v(9, 2))}},
		Left:  0,
		Right: 1,
	}
	if _, err := ToCQ(e, s); err == nil {
		t.Error("distinct-constant selection should be rejected")
	}
	// Equal constants are fine and produce no equality.
	e2 := &SelectEq{
		E:     &Project{E: &Rel{Name: "R"}, Cols: []ProjCol{Col(0), Const(v(9, 1)), Const(v(9, 1))}},
		Left:  1,
		Right: 2,
	}
	q, err := ToCQ(e2, s)
	if err != nil {
		t.Fatalf("equal-constant selection rejected: %v", err)
	}
	if len(q.Eqs) != 0 {
		t.Errorf("no equality expected: %s", q)
	}
}

// Property: random CQ -> RA -> CQ preserves semantics on random instances.
func TestRoundTripFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	gs := schema.MustParse("E(x:T1, y:T1)")
	for trial := 0; trial < 60; trial++ {
		// Random chain-ish query over E.
		n := 1 + rng.Intn(3)
		q := &cq.Query{}
		var prev cq.Var
		for i := 0; i < n; i++ {
			a := cq.Atom{Rel: "E", Vars: []cq.Var{
				cq.Var("x" + string(rune('0'+i))),
				cq.Var("y" + string(rune('0'+i))),
			}}
			q.Body = append(q.Body, a)
			if i > 0 && rng.Intn(2) == 0 {
				q.Eqs = append(q.Eqs, cq.Equality{Left: prev, Right: cq.Term{Var: a.Vars[0]}})
			}
			prev = a.Vars[1]
		}
		q.Head = []cq.Term{{Var: q.Body[0].Vars[0]}, {Var: prev}}
		if rng.Intn(3) == 0 {
			q.Eqs = append(q.Eqs, cq.Equality{Left: prev, Right: cq.C(v(1, 1))})
		}
		e, err := FromCQ(q, gs)
		if err != nil {
			t.Fatal(err)
		}
		q2, err := ToCQ(e, gs)
		if err != nil {
			t.Fatal(err)
		}
		d := instance.NewDatabase(gs)
		for k := 0; k < rng.Intn(6); k++ {
			d.MustInsert("E", v(1, int64(rng.Intn(3)+1)), v(1, int64(rng.Intn(3)+1)))
		}
		a0, _ := cq.Eval(q, d)
		a1, _ := Eval(e, d)
		a2, _ := cq.Eval(q2, d)
		if !a0.Equal(a1) || !a1.Equal(a2) {
			t.Fatalf("round trip broke semantics:\nq:  %s\ne:  %s\nq2: %s\n%s %s %s",
				q, e, q2, a0, a1, a2)
		}
	}
}

func TestStringRendering(t *testing.T) {
	e := &Project{
		E: &SelectConst{
			E: &SelectEq{
				E:     &Join{L: &Rel{Name: "R"}, R: &Product{L: &Rel{Name: "S"}, R: &Rel{Name: "S"}}, LCol: 1, RCol: 0},
				Left:  0,
				Right: 0,
			},
			Col:   1,
			Const: v(2, 3),
		},
		Cols: []ProjCol{Col(0), Const(v(9, 1))},
	}
	got := e.String()
	for _, want := range []string{"π[0,T9:1]", "σ[1=T2:3]", "σ[0=0]", "⋈[1=0]", "(S × S)", "R"} {
		if !strings.Contains(got, want) {
			t.Errorf("String missing %q: %s", want, got)
		}
	}
}

func TestOptimizePushSelectEqSides(t *testing.T) {
	// Same-side conditions push into each product/join input.
	ss := schema.MustParse("E(x:T1, y:T1)\nF(u:T1, w:T1)")
	// Left-side condition on a product.
	e1 := &SelectEq{E: &Product{L: &Rel{Name: "E"}, R: &Rel{Name: "F"}}, Left: 0, Right: 1}
	o1, err := Optimize(e1, ss)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := o1.(*Product); !ok {
		t.Errorf("top should stay product: %s", o1)
	} else if _, ok := p.L.(*SelectEq); !ok {
		t.Errorf("condition not pushed left: %s", o1)
	}
	// Right-side condition on a product.
	e2 := &SelectEq{E: &Product{L: &Rel{Name: "E"}, R: &Rel{Name: "F"}}, Left: 2, Right: 3}
	o2, err := Optimize(e2, ss)
	if err != nil {
		t.Fatal(err)
	}
	if p, ok := o2.(*Product); !ok {
		t.Errorf("top should stay product: %s", o2)
	} else if _, ok := p.R.(*SelectEq); !ok {
		t.Errorf("condition not pushed right: %s", o2)
	}
	// Same-side conditions push through an existing join.
	e3 := &SelectEq{E: &Join{L: &Rel{Name: "E"}, R: &Rel{Name: "F"}, LCol: 1, RCol: 0}, Left: 2, Right: 3}
	o3, err := Optimize(e3, ss)
	if err != nil {
		t.Fatal(err)
	}
	if j, ok := o3.(*Join); !ok {
		t.Errorf("top should stay join: %s", o3)
	} else if _, ok := j.R.(*SelectEq); !ok {
		t.Errorf("condition not pushed into join right: %s", o3)
	}
	// Conditions push through stacked selections.
	e4 := &SelectEq{
		E:     &SelectConst{E: &Rel{Name: "E"}, Col: 0, Const: v(1, 1)},
		Left:  0,
		Right: 1,
	}
	if _, err := Optimize(e4, ss); err != nil {
		t.Fatal(err)
	}
	// Differential checks for all of the above.
	d := instance.NewDatabase(ss)
	d.MustInsert("E", v(1, 1), v(1, 1))
	d.MustInsert("E", v(1, 1), v(1, 2))
	d.MustInsert("F", v(1, 2), v(1, 2))
	for i, pair := range [][2]Expr{{e1, o1}, {e2, o2}, {e3, o3}} {
		a1, err := Eval(pair[0], d)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Eval(pair[1], d)
		if err != nil {
			t.Fatal(err)
		}
		if !a1.Equal(a2) {
			t.Errorf("case %d: optimize changed semantics", i)
		}
	}
}
