package ra

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Differential tests for the streaming evaluator: drain (the iterator
// tree) must produce exactly the rows of evalMaterialize, in the same
// order, on every operator shape — and the planned bridge must agree
// with both the plain compilation and the cq runtime's semantics.

// randomExprAndDB compiles a random conjunctive query over a binary
// edge relation and builds a random database for it.
func randomExprQueryDB(t *testing.T, rng *rand.Rand, gs *schema.Schema) (Expr, *cq.Query, *instance.Database) {
	t.Helper()
	n := 1 + rng.Intn(4)
	q := &cq.Query{}
	var prev cq.Var
	for i := 0; i < n; i++ {
		a := cq.Atom{Rel: "E", Vars: []cq.Var{
			cq.Var("x" + string(rune('0'+i))),
			cq.Var("y" + string(rune('0'+i))),
		}}
		q.Body = append(q.Body, a)
		if i > 0 && rng.Intn(2) == 0 {
			q.Eqs = append(q.Eqs, cq.Equality{Left: prev, Right: cq.Term{Var: a.Vars[0]}})
		}
		prev = a.Vars[1]
	}
	q.Head = []cq.Term{{Var: q.Body[0].Vars[0]}, {Var: prev}}
	if rng.Intn(3) == 0 {
		q.Eqs = append(q.Eqs, cq.Equality{Left: prev, Right: cq.C(value.Value{Type: 1, N: 1})})
	}
	e, err := FromCQ(q, gs)
	if err != nil {
		t.Fatal(err)
	}
	d := instance.NewDatabase(gs)
	for j := 0; j < rng.Intn(12); j++ {
		d.MustInsert("E",
			value.Value{Type: 1, N: int64(rng.Intn(4) + 1)},
			value.Value{Type: 1, N: int64(rng.Intn(4) + 1)})
	}
	return e, q, d
}

func sameRows(t *testing.T, tag string, got, want []instance.Tuple) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", tag, len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", tag, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d differs: %v vs %v", tag, i, got[i], want[i])
			}
		}
	}
}

// TestStreamMatchesMaterializeFuzz replays random expressions — plain
// and optimized (so joins, not just products, are exercised) — through
// both evaluators, demanding identical rows in identical order.
func TestStreamMatchesMaterializeFuzz(t *testing.T) {
	gs := schema.MustParse("E(x:T1, y:T1)")
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 150; trial++ {
		e, _, d := randomExprQueryDB(t, rng, gs)
		opt, err := Optimize(e, gs)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range []Expr{e, opt} {
			want, err := evalMaterialize(x, d)
			if err != nil {
				t.Fatal(err)
			}
			got, err := drain(x, d)
			if err != nil {
				t.Fatal(err)
			}
			sameRows(t, x.String(), got, want)
		}
	}
}

// TestStreamOperatorEdges pins the per-operator edges the fuzz can
// miss: empty inputs, empty join buckets, constant projections, and
// unknown relations.
func TestStreamOperatorEdges(t *testing.T) {
	gs := schema.MustParse("E(x:T1, y:T1)")
	empty := instance.NewDatabase(gs)

	if _, err := drain(&Rel{Name: "missing"}, empty); err == nil {
		t.Fatal("unknown relation must fail to open")
	}
	if _, err := drain(&Project{E: &Rel{Name: "missing"}}, empty); err == nil {
		t.Fatal("unknown relation under an operator must fail to open")
	}
	if _, err := drain(&Join{L: &Rel{Name: "E"}, R: &Rel{Name: "missing"}}, empty); err == nil {
		t.Fatal("unknown build side must fail to open")
	}
	if _, err := drain(&Product{L: &Rel{Name: "E"}, R: &Rel{Name: "missing"}}, empty); err == nil {
		t.Fatal("unknown product side must fail to open")
	}
	if _, err := drain(&SelectEq{E: &Rel{Name: "missing"}, Left: 0, Right: 1}, empty); err == nil {
		t.Fatal("unknown selection input must fail to open")
	}
	if rows, err := drain(&Join{L: &Rel{Name: "E"}, R: &Rel{Name: "E"}, LCol: 1, RCol: 0}, empty); err != nil || len(rows) != 0 {
		t.Fatalf("empty join: rows %v, err %v", rows, err)
	}
	if _, err := drain(struct{ Expr }{}, empty); err == nil {
		t.Fatal("unknown expression kind must fail to open")
	}

	d := instance.NewDatabase(gs)
	d.MustInsert("E", value.Value{Type: 1, N: 1}, value.Value{Type: 1, N: 2})
	d.MustInsert("E", value.Value{Type: 1, N: 2}, value.Value{Type: 1, N: 3})
	// Join where only one left row has a matching bucket.
	j := &Join{L: &Rel{Name: "E"}, R: &Rel{Name: "E"}, LCol: 1, RCol: 0}
	rows, err := drain(j, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err := evalMaterialize(j, d)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "sparse join", rows, want)

	// Constant projection over a product.
	p := &Project{
		E:    &Product{L: &Rel{Name: "E"}, R: &Rel{Name: "E"}},
		Cols: []ProjCol{Const(value.Value{Type: 1, N: 9}), Col(3)},
	}
	rows, err = drain(p, d)
	if err != nil {
		t.Fatal(err)
	}
	want, err = evalMaterialize(p, d)
	if err != nil {
		t.Fatal(err)
	}
	sameRows(t, "const projection", rows, want)
}

// TestFromCQPlannedAgreesWithFromCQ checks the planned bridge end to
// end on random queries: the reordered-and-optimized expression must
// evaluate to the same relation as the plain compilation, whatever
// strategy the cost model picked.
func TestFromCQPlannedAgreesWithFromCQ(t *testing.T) {
	gs := schema.MustParse("E(x:T1, y:T1)")
	rng := rand.New(rand.NewSource(82))
	for trial := 0; trial < 100; trial++ {
		e, q, d := randomExprQueryDB(t, rng, gs)
		planned, info, err := FromCQPlanned(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if info.Strategy == "" {
			t.Fatal("bridge returned no plan info")
		}
		a1, err := Eval(e, d)
		if err != nil {
			t.Fatal(err)
		}
		a2, err := Eval(planned, d)
		if err != nil {
			t.Fatal(err)
		}
		if !a1.Equal(a2) {
			t.Fatalf("planned bridge changed semantics (strategy %s):\nplain   %s\nplanned %s",
				info.Strategy, e, planned)
		}
	}
}

// TestFromCQPlannedUsesPipelineOrder pins that on an indexable
// instance the bridge actually reorders: the compiled join tree's atom
// order must follow ExplainPlan, not the source text.
func TestFromCQPlannedUsesPipelineOrder(t *testing.T) {
	gs := schema.MustParse("E(x:T1, y:T1)")
	d := instance.NewDatabase(gs)
	for a := int64(1); a <= 4; a++ {
		for b := int64(1); b <= 4; b++ {
			if a != b {
				d.MustInsert("E", value.Value{Type: 1, N: a}, value.Value{Type: 1, N: b})
			}
		}
	}
	// V(X, Z) :- E(X, Y), E(Y, Z) in the paper's normal form: distinct
	// placeholders with an explicit join equality.
	q := &cq.Query{
		Body: []cq.Atom{
			{Rel: "E", Vars: []cq.Var{"x0", "y0"}},
			{Rel: "E", Vars: []cq.Var{"x1", "y1"}},
		},
		Eqs:  []cq.Equality{{Left: "y0", Right: cq.Term{Var: "x1"}}},
		Head: []cq.Term{{Var: "x0"}, {Var: "y1"}},
	}
	planned, info, err := FromCQPlanned(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy == "scan" {
		t.Skip("cost model chose the scan on this machine; order bridge not exercised")
	}
	if len(info.AtomOrder) != 2 {
		t.Fatalf("unexpected atom order %v", info.AtomOrder)
	}
	// Whatever the order, the expression still computes the query.
	plain, err := FromCQ(q, gs)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := Eval(plain, d)
	if err != nil {
		t.Fatal(err)
	}
	a2, info2, err := EvalPlanned(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if info2.Strategy != info.Strategy {
		t.Fatalf("EvalPlanned strategy %q, FromCQPlanned strategy %q", info2.Strategy, info.Strategy)
	}
	if !a1.Equal(a2) {
		t.Fatalf("EvalPlanned differs from plain evaluation:\nplain %s\nplanned %s", plain, planned)
	}
}
