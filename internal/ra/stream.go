package ra

import (
	"fmt"

	"keyedeq/internal/instance"
	"keyedeq/internal/value"
)

// This file is the algebra's streaming evaluator: each operator is a
// pull iterator, so selections and projections never materialize their
// input, and an equijoin materializes only its build side — into a
// hash table pre-sized to the build cardinality, mirroring the cq
// pipeline's pre-sized stream indexes.  Eval drives this evaluator;
// the recursive materializing walk it replaced survives as
// evalMaterialize, the differential reference the tests replay every
// expression through.

// rowIter is a pull iterator over tuples.  next returns the next row
// and true, or false at exhaustion.  Construction (open) reports the
// only possible errors — unknown relations — so next itself is
// error-free.
type rowIter interface {
	next() (instance.Tuple, bool)
}

// sliceIter streams a materialized tuple slice — the leaf scan, and
// the fallback for build sides.
type sliceIter struct {
	rows []instance.Tuple
	pos  int
}

func (it *sliceIter) next() (instance.Tuple, bool) {
	if it.pos >= len(it.rows) {
		return nil, false
	}
	t := it.rows[it.pos]
	it.pos++
	return t, true
}

// filterIter streams the rows of in that pass keep.
type filterIter struct {
	in   rowIter
	keep func(instance.Tuple) bool
}

func (it *filterIter) next() (instance.Tuple, bool) {
	for {
		t, ok := it.in.next()
		if !ok {
			return nil, false
		}
		if it.keep(t) {
			return t, true
		}
	}
}

// projectIter maps each input row through the projection columns.
type projectIter struct {
	in   rowIter
	cols []ProjCol
}

func (it *projectIter) next() (instance.Tuple, bool) {
	t, ok := it.in.next()
	if !ok {
		return nil, false
	}
	row := make(instance.Tuple, len(it.cols))
	for i, c := range it.cols {
		if c.IsConst {
			row[i] = c.Const
		} else {
			row[i] = t[c.Col]
		}
	}
	return row, true
}

// hashJoinIter materializes the right input into a hash table keyed by
// its join column (pre-sized to the build cardinality), then streams
// the left input, emitting one concatenated row per bucket match.
// Bucket fill order is input order, so output order matches the
// nested-loop reference row for row.
type hashJoinIter struct {
	left       rowIter
	lcol       int
	table      map[value.Value][]instance.Tuple
	cur        instance.Tuple
	bucket     []instance.Tuple
	nextInWide int
}

func newHashJoinIter(left rowIter, lcol int, build []instance.Tuple, rcol int) *hashJoinIter {
	table := make(map[value.Value][]instance.Tuple, len(build))
	for _, r := range build {
		table[r[rcol]] = append(table[r[rcol]], r)
	}
	return &hashJoinIter{left: left, lcol: lcol, table: table}
}

func (it *hashJoinIter) next() (instance.Tuple, bool) {
	for {
		if it.nextInWide < len(it.bucket) {
			r := it.bucket[it.nextInWide]
			it.nextInWide++
			return append(append(make(instance.Tuple, 0, len(it.cur)+len(r)), it.cur...), r...), true
		}
		t, ok := it.left.next()
		if !ok {
			return nil, false
		}
		it.cur = t
		it.bucket = it.table[t[it.lcol]]
		it.nextInWide = 0
	}
}

// productIter streams the left input against a materialized right side.
type productIter struct {
	left  rowIter
	right []instance.Tuple
	cur   instance.Tuple
	pos   int
}

func (it *productIter) next() (instance.Tuple, bool) {
	for {
		if it.cur != nil && it.pos < len(it.right) {
			r := it.right[it.pos]
			it.pos++
			return append(append(make(instance.Tuple, 0, len(it.cur)+len(r)), it.cur...), r...), true
		}
		t, ok := it.left.next()
		if !ok {
			return nil, false
		}
		it.cur = t
		it.pos = 0
	}
}

// open builds the iterator tree for e over d.
func open(e Expr, d *instance.Database) (rowIter, error) {
	switch e := e.(type) {
	case *Rel:
		r := d.Relation(e.Name)
		if r == nil {
			return nil, fmt.Errorf("ra: unknown relation %q", e.Name)
		}
		return &sliceIter{rows: r.Tuples()}, nil
	case *SelectEq:
		in, err := open(e.E, d)
		if err != nil {
			return nil, err
		}
		l, r := e.Left, e.Right
		return &filterIter{in: in, keep: func(t instance.Tuple) bool { return t[l] == t[r] }}, nil
	case *SelectConst:
		in, err := open(e.E, d)
		if err != nil {
			return nil, err
		}
		col, c := e.Col, e.Const
		return &filterIter{in: in, keep: func(t instance.Tuple) bool { return t[col] == c }}, nil
	case *Join:
		left, err := open(e.L, d)
		if err != nil {
			return nil, err
		}
		build, err := drain(e.R, d)
		if err != nil {
			return nil, err
		}
		return newHashJoinIter(left, e.LCol, build, e.RCol), nil
	case *Product:
		left, err := open(e.L, d)
		if err != nil {
			return nil, err
		}
		right, err := drain(e.R, d)
		if err != nil {
			return nil, err
		}
		return &productIter{left: left, right: right}, nil
	case *Project:
		in, err := open(e.E, d)
		if err != nil {
			return nil, err
		}
		return &projectIter{in: in, cols: e.Cols}, nil
	default:
		return nil, fmt.Errorf("ra: unknown expression %T", e)
	}
}

// drain opens e and pulls it to exhaustion.
func drain(e Expr, d *instance.Database) ([]instance.Tuple, error) {
	it, err := open(e, d)
	if err != nil {
		return nil, err
	}
	var out []instance.Tuple
	for {
		t, ok := it.next()
		if !ok {
			return out, nil
		}
		out = append(out, t)
	}
}
