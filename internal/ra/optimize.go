package ra

import (
	"keyedeq/internal/schema"
)

// Optimize rewrites a conjunctive algebra expression using the classical
// heuristics, preserving semantics exactly (tested by differential
// evaluation):
//
//   - selection pushdown: σ conditions move below products/joins to the
//     side that contains their columns, and column-to-column selections
//     that span a product turn it into an equijoin;
//   - cascades: selections over selections reorder freely; the rewrite
//     normalizes them innermost-first.
//
// Projections are left in place (the paper's queries project once, at the
// top).  Optimize never changes the output type.
func Optimize(e Expr, s *schema.Schema) (Expr, error) {
	if _, err := e.Type(s); err != nil {
		return nil, err
	}
	out := rewrite(e, s)
	// The rewrite is type-preserving by construction; re-check to be
	// safe and to keep the invariant externally visible.
	if _, err := out.Type(s); err != nil {
		return nil, err
	}
	return out, nil
}

func rewrite(e Expr, s *schema.Schema) Expr {
	switch e := e.(type) {
	case *Rel:
		return e
	case *Project:
		return &Project{E: rewrite(e.E, s), Cols: append([]ProjCol(nil), e.Cols...)}
	case *Product:
		return &Product{L: rewrite(e.L, s), R: rewrite(e.R, s)}
	case *Join:
		return &Join{L: rewrite(e.L, s), R: rewrite(e.R, s), LCol: e.LCol, RCol: e.RCol}
	case *SelectConst:
		inner := rewrite(e.E, s)
		return pushSelectConst(inner, e.Col, e, s)
	case *SelectEq:
		inner := rewrite(e.E, s)
		return pushSelectEq(inner, e, s)
	default:
		return e
	}
}

// width returns the output arity of an already-typed expression.
func width(e Expr, s *schema.Schema) int {
	ts, err := e.Type(s)
	if err != nil {
		return -1
	}
	return len(ts)
}

// pushSelectConst pushes σ_{col = c} below the top operator of inner when
// possible.
func pushSelectConst(inner Expr, col int, sel *SelectConst, s *schema.Schema) Expr {
	switch in := inner.(type) {
	case *Product:
		lw := width(in.L, s)
		if col < lw {
			return &Product{L: pushSelectConst(in.L, col, &SelectConst{Col: col, Const: sel.Const}, s), R: in.R}
		}
		return &Product{L: in.L, R: pushSelectConst(in.R, col-lw, &SelectConst{Col: col - lw, Const: sel.Const}, s)}
	case *Join:
		lw := width(in.L, s)
		if col < lw {
			return &Join{
				L:    pushSelectConst(in.L, col, &SelectConst{Col: col, Const: sel.Const}, s),
				R:    in.R,
				LCol: in.LCol, RCol: in.RCol,
			}
		}
		return &Join{
			L:    in.L,
			R:    pushSelectConst(in.R, col-lw, &SelectConst{Col: col - lw, Const: sel.Const}, s),
			LCol: in.LCol, RCol: in.RCol,
		}
	case *SelectConst:
		// Cascade: push through and keep the inner one below.
		return &SelectConst{E: pushSelectConst(in.E, col, sel, s), Col: in.Col, Const: in.Const}
	case *SelectEq:
		return &SelectEq{E: pushSelectConst(in.E, col, sel, s), Left: in.Left, Right: in.Right}
	default:
		return &SelectConst{E: inner, Col: col, Const: sel.Const}
	}
}

// pushSelectEq pushes σ_{l = r}; a condition spanning the two sides of a
// product converts it into an equijoin.
func pushSelectEq(inner Expr, sel *SelectEq, s *schema.Schema) Expr {
	l, r := sel.Left, sel.Right
	if l > r {
		l, r = r, l
	}
	switch in := inner.(type) {
	case *Product:
		lw := width(in.L, s)
		switch {
		case r < lw:
			return &Product{L: pushSelectEq(in.L, &SelectEq{Left: l, Right: r}, s), R: in.R}
		case l >= lw:
			return &Product{L: in.L, R: pushSelectEq(in.R, &SelectEq{Left: l - lw, Right: r - lw}, s)}
		default:
			// Spans both sides: becomes an equijoin.
			return &Join{L: in.L, R: in.R, LCol: l, RCol: r - lw}
		}
	case *Join:
		lw := width(in.L, s)
		switch {
		case r < lw:
			return &Join{L: pushSelectEq(in.L, &SelectEq{Left: l, Right: r}, s), R: in.R, LCol: in.LCol, RCol: in.RCol}
		case l >= lw:
			return &Join{L: in.L, R: pushSelectEq(in.R, &SelectEq{Left: l - lw, Right: r - lw}, s), LCol: in.LCol, RCol: in.RCol}
		default:
			// A second cross-side condition stays above the join.
			return &SelectEq{E: in, Left: l, Right: r}
		}
	case *SelectConst:
		return &SelectConst{E: pushSelectEq(in.E, sel, s), Col: in.Col, Const: in.Const}
	case *SelectEq:
		return &SelectEq{E: pushSelectEq(in.E, sel, s), Left: in.Left, Right: in.Right}
	default:
		return &SelectEq{E: inner, Left: l, Right: r}
	}
}

// CountOps tallies operator nodes by kind, for inspecting rewrites.
func CountOps(e Expr) map[string]int {
	m := map[string]int{}
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case *Rel:
			m["rel"]++
		case *Project:
			m["project"]++
			walk(e.E)
		case *Product:
			m["product"]++
			walk(e.L)
			walk(e.R)
		case *Join:
			m["join"]++
			walk(e.L)
			walk(e.R)
		case *SelectConst:
			m["select-const"]++
			walk(e.E)
		case *SelectEq:
			m["select-eq"]++
			walk(e.E)
		}
	}
	walk(e)
	return m
}
