package ra

import (
	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
)

// FromCQPlanned compiles q to an optimized algebra expression whose
// join tree follows the adaptive planner's executed atom order for d
// (cq.ExplainPlan): body atoms are reordered component by component
// before the FromCQ/Optimize pipeline runs, so the left-deep join tree
// Optimize produces joins atoms in the same order the streamed
// pipeline binds them.  When the planner chooses the scan strategy its
// atom order is dynamic, and the source order is kept.  The reordering
// never changes semantics — a conjunctive body is order-independent —
// only the shape of the compiled plan.
func FromCQPlanned(q *cq.Query, d *instance.Database) (Expr, *cq.PlanInfo, error) {
	info, err := cq.ExplainPlan(q, d)
	if err != nil {
		return nil, nil, err
	}
	ordered := q
	if len(info.AtomOrder) == len(q.Body) {
		body := make([]cq.Atom, 0, len(q.Body))
		seen := make([]bool, len(q.Body))
		for _, ai := range info.AtomOrder {
			body = append(body, q.Body[ai])
			seen[ai] = true
		}
		// Atoms the plan never steps through (fully prebound ones) keep
		// their source positions at the end.
		for ai := range q.Body {
			if !seen[ai] {
				body = append(body, q.Body[ai])
			}
		}
		ordered = &cq.Query{Head: q.Head, Body: body, Eqs: q.Eqs}
	}
	e, err := FromCQ(ordered, d.Schema)
	if err != nil {
		return nil, nil, err
	}
	opt, err := Optimize(e, d.Schema)
	if err != nil {
		return nil, nil, err
	}
	return opt, info, nil
}

// EvalPlanned is FromCQPlanned followed by streaming evaluation: the
// algebra-side mirror of one adaptive pipeline run, usable as a
// differential oracle for the cq runtime's result sets.
func EvalPlanned(q *cq.Query, d *instance.Database) (*instance.Relation, *cq.PlanInfo, error) {
	e, info, err := FromCQPlanned(q, d)
	if err != nil {
		return nil, nil, err
	}
	out, err := Eval(e, d)
	if err != nil {
		return nil, nil, err
	}
	return out, info, err
}
