package ra

import (
	"fmt"

	"keyedeq/internal/cq"
	"keyedeq/internal/schema"
)

// FromCQ compiles a conjunctive query to an algebra expression: the
// cartesian product of the body atoms, one selection per equality, and an
// extended projection for the head.  The compiled expression computes
// exactly q on every database (tested by the round-trip properties).
func FromCQ(q *cq.Query, s *schema.Schema) (Expr, error) {
	if err := q.Validate(s); err != nil {
		return nil, err
	}
	// Column layout: body atoms concatenated in order.
	colOf := make(map[cq.Var]int)
	width := 0
	var e Expr
	for _, a := range q.Body {
		for i, v := range a.Vars {
			colOf[v] = width + i
		}
		width += len(a.Vars)
		leaf := &Rel{Name: a.Rel}
		if e == nil {
			e = leaf
		} else {
			e = &Product{L: e, R: leaf}
		}
	}
	for _, eq := range q.Eqs {
		l := colOf[eq.Left]
		if eq.Right.IsConst {
			e = &SelectConst{E: e, Col: l, Const: eq.Right.Const}
			continue
		}
		e = &SelectEq{E: e, Left: l, Right: colOf[eq.Right.Var]}
	}
	proj := &Project{E: e}
	for _, t := range q.Head {
		if t.IsConst {
			proj.Cols = append(proj.Cols, Const(t.Const))
			continue
		}
		proj.Cols = append(proj.Cols, Col(colOf[t.Var]))
	}
	return proj, nil
}

// ToCQ extracts a conjunctive query from an algebra expression; the two
// formalisms coincide (every conjunctive RA query with equality
// selections is expressible in the paper's syntax, §2).
func ToCQ(e Expr, s *schema.Schema) (*cq.Query, error) {
	var gen varGen
	atoms, eqs, cols, err := toCQ(e, s, &gen)
	if err != nil {
		return nil, err
	}
	q := &cq.Query{Body: atoms, Eqs: eqs, Head: cols}
	if err := q.Validate(s); err != nil {
		return nil, fmt.Errorf("ra: extracted query invalid: %v", err)
	}
	return q, nil
}

type varGen int

func (g *varGen) fresh() cq.Var {
	*g++
	return cq.Var(fmt.Sprintf("v%d", int(*g)))
}

// toCQ returns the body atoms, equalities, and output column terms of e.
func toCQ(e Expr, s *schema.Schema, gen *varGen) ([]cq.Atom, []cq.Equality, []cq.Term, error) {
	switch e := e.(type) {
	case *Rel:
		r := s.Relation(e.Name)
		if r == nil {
			return nil, nil, nil, fmt.Errorf("ra: unknown relation %q", e.Name)
		}
		a := cq.Atom{Rel: e.Name}
		var cols []cq.Term
		for range r.Attrs {
			v := gen.fresh()
			a.Vars = append(a.Vars, v)
			cols = append(cols, cq.Term{Var: v})
		}
		return []cq.Atom{a}, nil, cols, nil
	case *SelectEq:
		atoms, eqs, cols, err := toCQ(e.E, s, gen)
		if err != nil {
			return nil, nil, nil, err
		}
		l, r := cols[e.Left], cols[e.Right]
		eq, err := equate(l, r)
		if err != nil {
			return nil, nil, nil, err
		}
		return atoms, append(eqs, eq...), cols, nil
	case *SelectConst:
		atoms, eqs, cols, err := toCQ(e.E, s, gen)
		if err != nil {
			return nil, nil, nil, err
		}
		eq, err := equate(cols[e.Col], cq.C(e.Const))
		if err != nil {
			return nil, nil, nil, err
		}
		return atoms, append(eqs, eq...), cols, nil
	case *Product:
		return combine(e.L, e.R, s, gen, nil)
	case *Join:
		join := &joinCond{lcol: e.LCol, rcol: e.RCol}
		return combine(e.L, e.R, s, gen, join)
	case *Project:
		atoms, eqs, cols, err := toCQ(e.E, s, gen)
		if err != nil {
			return nil, nil, nil, err
		}
		var out []cq.Term
		for _, c := range e.Cols {
			if c.IsConst {
				out = append(out, cq.C(c.Const))
				continue
			}
			out = append(out, cols[c.Col])
		}
		return atoms, eqs, out, nil
	default:
		return nil, nil, nil, fmt.Errorf("ra: unknown expression %T", e)
	}
}

type joinCond struct{ lcol, rcol int }

func combine(l, r Expr, s *schema.Schema, gen *varGen, jc *joinCond) ([]cq.Atom, []cq.Equality, []cq.Term, error) {
	la, le, lc, err := toCQ(l, s, gen)
	if err != nil {
		return nil, nil, nil, err
	}
	ra, re, rc, err := toCQ(r, s, gen)
	if err != nil {
		return nil, nil, nil, err
	}
	atoms := append(la, ra...)
	eqs := append(le, re...)
	cols := append(append([]cq.Term{}, lc...), rc...)
	if jc != nil {
		eq, err := equate(lc[jc.lcol], rc[jc.rcol])
		if err != nil {
			return nil, nil, nil, err
		}
		eqs = append(eqs, eq...)
	}
	return atoms, eqs, cols, nil
}

// equate builds the equality predicates for two column terms.  Two equal
// constants need nothing; two unequal constants are unsatisfiable, which
// the paper's syntax cannot state without a variable, so it is an error
// here (the caller's expression denotes the empty query).
func equate(a, b cq.Term) ([]cq.Equality, error) {
	switch {
	case !a.IsConst:
		return []cq.Equality{{Left: a.Var, Right: b}}, nil
	case !b.IsConst:
		return []cq.Equality{{Left: b.Var, Right: a}}, nil
	case a.Const == b.Const:
		return nil, nil
	default:
		return nil, fmt.Errorf("ra: selection equates distinct constants %s and %s (empty query)", a, b)
	}
}
