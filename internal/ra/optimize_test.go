package ra

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func TestOptimizeProductToJoin(t *testing.T) {
	// σ_{1 = 2}(R × S): spans both sides -> equijoin.
	e := &SelectEq{
		E:     &Product{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}},
		Left:  1,
		Right: 2,
	}
	opt, err := Optimize(e, s)
	if err != nil {
		t.Fatal(err)
	}
	ops := CountOps(opt)
	if ops["join"] != 1 || ops["product"] != 0 || ops["select-eq"] != 0 {
		t.Errorf("expected product->join rewrite, got %v in %s", ops, opt)
	}
}

func TestOptimizePushesConstSelection(t *testing.T) {
	// σ_{3 = c}(R × S): column 3 is in S; selection must move below.
	e := &SelectConst{
		E:     &Product{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}},
		Col:   3,
		Const: v(3, 1),
	}
	opt, err := Optimize(e, s)
	if err != nil {
		t.Fatal(err)
	}
	prod, ok := opt.(*Product)
	if !ok {
		t.Fatalf("top operator should stay a product: %s", opt)
	}
	if _, ok := prod.R.(*SelectConst); !ok {
		t.Errorf("selection not pushed to the right side: %s", opt)
	}
	if _, ok := prod.L.(*Rel); !ok {
		t.Errorf("left side should be untouched: %s", opt)
	}
}

func TestOptimizePushesThroughJoin(t *testing.T) {
	e := &SelectConst{
		E:     &Join{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}, LCol: 1, RCol: 0},
		Col:   0,
		Const: v(1, 2),
	}
	opt, err := Optimize(e, s)
	if err != nil {
		t.Fatal(err)
	}
	join, ok := opt.(*Join)
	if !ok {
		t.Fatalf("top should stay a join: %s", opt)
	}
	if _, ok := join.L.(*SelectConst); !ok {
		t.Errorf("selection not pushed into the left join input: %s", opt)
	}
}

func TestOptimizeKeepsSecondCrossCondition(t *testing.T) {
	// Two cross-side conditions on a product: first becomes the join,
	// second stays above it.
	d2 := instance.NewDatabase(schema.MustParse("E(x:T1, y:T1)\nF(u:T1, w:T1)"))
	s2 := d2.Schema
	e := &SelectEq{
		E: &SelectEq{
			E:     &Product{L: &Rel{Name: "E"}, R: &Rel{Name: "F"}},
			Left:  0,
			Right: 2,
		},
		Left:  1,
		Right: 3,
	}
	opt, err := Optimize(e, s2)
	if err != nil {
		t.Fatal(err)
	}
	ops := CountOps(opt)
	if ops["join"] != 1 || ops["select-eq"] != 1 || ops["product"] != 0 {
		t.Errorf("expected join + one residual selection, got %v in %s", ops, opt)
	}
}

func TestOptimizeRejectsInvalid(t *testing.T) {
	if _, err := Optimize(&Rel{Name: "nope"}, s); err == nil {
		t.Error("invalid expression accepted")
	}
}

// Differential: Optimize preserves semantics on random expressions
// compiled from random conjunctive queries.
func TestOptimizeSemanticsFuzz(t *testing.T) {
	gs := schema.MustParse("E(x:T1, y:T1)")
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 80; trial++ {
		// Random chain-ish query (reusing the round-trip fuzz shape).
		n := 1 + rng.Intn(3)
		q := &cq.Query{}
		var prev cq.Var
		for i := 0; i < n; i++ {
			a := cq.Atom{Rel: "E", Vars: []cq.Var{
				cq.Var("x" + string(rune('0'+i))),
				cq.Var("y" + string(rune('0'+i))),
			}}
			q.Body = append(q.Body, a)
			if i > 0 && rng.Intn(2) == 0 {
				q.Eqs = append(q.Eqs, cq.Equality{Left: prev, Right: cq.Term{Var: a.Vars[0]}})
			}
			prev = a.Vars[1]
		}
		q.Head = []cq.Term{{Var: q.Body[0].Vars[0]}, {Var: prev}}
		if rng.Intn(3) == 0 {
			q.Eqs = append(q.Eqs, cq.Equality{Left: prev, Right: cq.C(value.Value{Type: 1, N: 1})})
		}
		e, err := FromCQ(q, gs)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := Optimize(e, gs)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 10; k++ {
			d := instance.NewDatabase(gs)
			for j := 0; j < rng.Intn(6); j++ {
				d.MustInsert("E",
					value.Value{Type: 1, N: int64(rng.Intn(3) + 1)},
					value.Value{Type: 1, N: int64(rng.Intn(3) + 1)})
			}
			a1, err := Eval(e, d)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := Eval(opt, d)
			if err != nil {
				t.Fatal(err)
			}
			if !a1.Equal(a2) {
				t.Fatalf("Optimize changed semantics:\noriginal: %s\noptimized: %s\non %s\n%s vs %s",
					e, opt, d, a1, a2)
			}
		}
	}
}

func TestCountOps(t *testing.T) {
	e := &Project{
		E: &SelectEq{
			E:     &Product{L: &Rel{Name: "R"}, R: &Rel{Name: "S"}},
			Left:  1,
			Right: 2,
		},
		Cols: []ProjCol{Col(0)},
	}
	ops := CountOps(e)
	if ops["project"] != 1 || ops["select-eq"] != 1 || ops["product"] != 1 || ops["rel"] != 2 {
		t.Errorf("CountOps = %v", ops)
	}
}
