package schema

import (
	"fmt"
	"sort"
	"strings"

	"keyedeq/internal/value"
)

// This file decides whether two schemas are "identical up to renaming and
// re-ordering of attributes and relations" — the syntactic condition that
// Theorem 13 proves equivalent to conjunctive query equivalence for keyed
// schemas (and Hull 1986 for unkeyed ones).
//
// Names are immaterial (renaming) and orders are immaterial (re-ordering),
// so the only invariants of a relation scheme are the multiset of its key
// attribute types and the multiset of its non-key attribute types.  A
// schema's canonical form is the sorted multiset of its relations'
// signatures; two schemas are isomorphic iff their canonical forms agree.

// RelationSignature is the canonical invariant of one relation scheme.
func RelationSignature(r *Relation) string {
	var key, nonkey []value.Type
	for i, a := range r.Attrs {
		if r.IsKeyPos(i) {
			key = append(key, a.Type)
		} else {
			nonkey = append(nonkey, a.Type)
		}
	}
	sortTypes(key)
	sortTypes(nonkey)
	var b strings.Builder
	b.WriteString("K[")
	for i, t := range key {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteString("]N[")
	for i, t := range nonkey {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(t.String())
	}
	b.WriteByte(']')
	return b.String()
}

func sortTypes(ts []value.Type) {
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
}

// CanonicalForm returns the schema's canonical form: the sorted list of its
// relation signatures, newline-joined.  Isomorphic schemas and only they
// have equal canonical forms.
func CanonicalForm(s *Schema) string {
	sigs := make([]string, len(s.Relations))
	for i, r := range s.Relations {
		sigs[i] = RelationSignature(r)
	}
	sort.Strings(sigs)
	return strings.Join(sigs, "\n")
}

// Isomorphic reports whether s1 and s2 are identical up to renaming and
// re-ordering of attributes and relations.
func Isomorphic(s1, s2 *Schema) bool {
	if len(s1.Relations) != len(s2.Relations) {
		return false
	}
	return CanonicalForm(s1) == CanonicalForm(s2)
}

// Isomorphism is a witness that two schemas are identical up to renaming
// and re-ordering: a bijection on relations together with, per relation,
// a bijection on attribute positions that preserves types and key
// membership.
type Isomorphism struct {
	// RelMap[i] is the index in S2 of the relation matched with
	// S1.Relations[i].
	RelMap []int
	// AttrMaps[i][p] is the position in the matched S2 relation of
	// attribute position p of S1.Relations[i].
	AttrMaps [][]int
}

// FindIsomorphism returns a witness isomorphism from s1 to s2, or ok=false
// if the schemas are not isomorphic.
func FindIsomorphism(s1, s2 *Schema) (*Isomorphism, bool) {
	if len(s1.Relations) != len(s2.Relations) {
		return nil, false
	}
	// Group s2 relations by signature, then greedily assign: any
	// assignment within a signature class is a valid witness.
	bySig := make(map[string][]int)
	for j, r := range s2.Relations {
		sig := RelationSignature(r)
		bySig[sig] = append(bySig[sig], j)
	}
	iso := &Isomorphism{
		RelMap:   make([]int, len(s1.Relations)),
		AttrMaps: make([][]int, len(s1.Relations)),
	}
	for i, r := range s1.Relations {
		sig := RelationSignature(r)
		pool := bySig[sig]
		if len(pool) == 0 {
			return nil, false
		}
		j := pool[0]
		bySig[sig] = pool[1:]
		iso.RelMap[i] = j
		am, ok := matchAttrs(r, s2.Relations[j])
		if !ok {
			// Cannot happen when signatures agree; defensive.
			return nil, false
		}
		iso.AttrMaps[i] = am
	}
	return iso, true
}

// matchAttrs builds a type- and key-preserving bijection between the
// attribute positions of two relations with equal signatures.
func matchAttrs(r1, r2 *Relation) ([]int, bool) {
	if len(r1.Attrs) != len(r2.Attrs) {
		return nil, false
	}
	type slot struct{ pos int }
	// Pool r2's positions by (isKey, type).
	pool := make(map[[2]int64][]int)
	keyBit := func(r *Relation, i int) int64 {
		if r.IsKeyPos(i) {
			return 1
		}
		return 0
	}
	for j := range r2.Attrs {
		k := [2]int64{keyBit(r2, j), int64(r2.Attrs[j].Type)}
		pool[k] = append(pool[k], j)
	}
	out := make([]int, len(r1.Attrs))
	for i := range r1.Attrs {
		k := [2]int64{keyBit(r1, i), int64(r1.Attrs[i].Type)}
		ps := pool[k]
		if len(ps) == 0 {
			return nil, false
		}
		out[i] = ps[0]
		pool[k] = ps[1:]
	}
	return out, true
}

// Verify checks that iso really is a type- and key-preserving bijection
// between s1 and s2.  It returns a descriptive error on failure.
func (iso *Isomorphism) Verify(s1, s2 *Schema) error {
	if len(iso.RelMap) != len(s1.Relations) || len(s1.Relations) != len(s2.Relations) {
		return fmt.Errorf("iso: relation count mismatch")
	}
	if len(iso.AttrMaps) != len(s1.Relations) {
		return fmt.Errorf("iso: attribute map count mismatch")
	}
	usedRel := make(map[int]bool)
	for i, j := range iso.RelMap {
		if j < 0 || j >= len(s2.Relations) {
			return fmt.Errorf("iso: RelMap[%d]=%d out of range", i, j)
		}
		if usedRel[j] {
			return fmt.Errorf("iso: relation %d matched twice", j)
		}
		usedRel[j] = true
		r1, r2 := s1.Relations[i], s2.Relations[j]
		am := iso.AttrMaps[i]
		if len(am) != len(r1.Attrs) || len(r1.Attrs) != len(r2.Attrs) {
			return fmt.Errorf("iso: arity mismatch %q vs %q", r1.Name, r2.Name)
		}
		usedAttr := make(map[int]bool)
		for p, q := range am {
			if q < 0 || q >= len(r2.Attrs) {
				return fmt.Errorf("iso: %q attr map position %d out of range", r1.Name, q)
			}
			if usedAttr[q] {
				return fmt.Errorf("iso: %q attribute %d matched twice", r2.Name, q)
			}
			usedAttr[q] = true
			if r1.Attrs[p].Type != r2.Attrs[q].Type {
				return fmt.Errorf("iso: type mismatch %s vs %s", r1.Attrs[p], r2.Attrs[q])
			}
			if r1.IsKeyPos(p) != r2.IsKeyPos(q) {
				return fmt.Errorf("iso: key membership mismatch at %s.%s", r1.Name, r1.Attrs[p].Name)
			}
		}
	}
	return nil
}
