package schema

import (
	"fmt"
	"math/rand"
)

// Transforms produce schemas "identical up to renaming and re-ordering" —
// exactly the equivalence classes of Theorem 13 — plus controlled
// mutations that leave that class (used by experiments to produce
// non-isomorphic near-misses).

// RenameRelation returns a copy of s with relation old renamed to new.
func RenameRelation(s *Schema, old, new string) (*Schema, error) {
	if s.Relation(old) == nil {
		return nil, fmt.Errorf("schema: no relation %q", old)
	}
	if old != new && s.Relation(new) != nil {
		return nil, fmt.Errorf("schema: relation %q already exists", new)
	}
	c := s.Clone()
	c.Relation(old).Name = new
	return c, nil
}

// RenameAttribute returns a copy of s with attribute rel.old renamed.
func RenameAttribute(s *Schema, rel, old, new string) (*Schema, error) {
	r := s.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("schema: no relation %q", rel)
	}
	i := r.AttrIndex(old)
	if i < 0 {
		return nil, fmt.Errorf("schema: no attribute %q in %q", old, rel)
	}
	if old != new && r.AttrIndex(new) >= 0 {
		return nil, fmt.Errorf("schema: attribute %q already exists in %q", new, rel)
	}
	c := s.Clone()
	c.Relation(rel).Attrs[i].Name = new
	return c, nil
}

// ReorderAttributes returns a copy of s with the attributes of rel permuted
// by perm (perm[i] = old position of the attribute that moves to position
// i).  Key positions are remapped accordingly.
func ReorderAttributes(s *Schema, rel string, perm []int) (*Schema, error) {
	r := s.Relation(rel)
	if r == nil {
		return nil, fmt.Errorf("schema: no relation %q", rel)
	}
	if err := checkPerm(perm, len(r.Attrs)); err != nil {
		return nil, fmt.Errorf("schema: relation %q: %v", rel, err)
	}
	c := s.Clone()
	cr := c.Relation(rel)
	newAttrs := make([]Attribute, len(perm))
	oldToNew := make([]int, len(perm))
	for newPos, oldPos := range perm {
		newAttrs[newPos] = r.Attrs[oldPos]
		oldToNew[oldPos] = newPos
	}
	cr.Attrs = newAttrs
	newKey := make([]int, 0, len(cr.Key))
	for _, k := range r.Key {
		newKey = append(newKey, oldToNew[k])
	}
	sortInts(newKey)
	cr.Key = newKey
	return c, nil
}

// ReorderRelations returns a copy of s with relations permuted by perm.
func ReorderRelations(s *Schema, perm []int) (*Schema, error) {
	if err := checkPerm(perm, len(s.Relations)); err != nil {
		return nil, fmt.Errorf("schema: %v", err)
	}
	c := &Schema{Relations: make([]*Relation, len(perm))}
	for newPos, oldPos := range perm {
		c.Relations[newPos] = s.Relations[oldPos].Clone()
	}
	return c, nil
}

// RandomIsomorph returns a schema isomorphic to s obtained by random
// renamings and re-orderings drawn from rng, together with the witness
// isomorphism from s to the result.
func RandomIsomorph(s *Schema, rng *rand.Rand) (*Schema, *Isomorphism) {
	relPerm := rng.Perm(len(s.Relations))
	out := &Schema{Relations: make([]*Relation, len(s.Relations))}
	iso := &Isomorphism{
		RelMap:   make([]int, len(s.Relations)),
		AttrMaps: make([][]int, len(s.Relations)),
	}
	for newPos, oldPos := range relPerm {
		r := s.Relations[oldPos]
		attrPerm := rng.Perm(len(r.Attrs))
		nr := &Relation{Name: fmt.Sprintf("r%d", newPos)}
		nr.Attrs = make([]Attribute, len(r.Attrs))
		oldToNew := make([]int, len(r.Attrs))
		for np, op := range attrPerm {
			nr.Attrs[np] = Attribute{
				Name: fmt.Sprintf("a%d", np),
				Type: r.Attrs[op].Type,
			}
			oldToNew[op] = np
		}
		for _, k := range r.Key {
			nr.Key = append(nr.Key, oldToNew[k])
		}
		sortInts(nr.Key)
		out.Relations[newPos] = nr
		iso.RelMap[oldPos] = newPos
		iso.AttrMaps[oldPos] = oldToNew
	}
	return out, iso
}

func checkPerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("permutation length %d, want %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("invalid permutation %v", perm)
		}
		seen[p] = true
	}
	return nil
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
