package schema

import (
	"fmt"
	"strings"

	"keyedeq/internal/invariant"
	"keyedeq/internal/value"
)

// Parse reads the textual schema format used by the command-line tools and
// the paper's figures.  One relation per line, key attributes starred:
//
//	# employees example
//	employee(ss*:T1, eName:T2, salary:T3, depId:T4)
//	department(deptId*:T4, deptName:T5, mgr:T1)
//
// Blank lines and lines starting with '#' are ignored.
func Parse(text string) (*Schema, error) {
	var rels []*Relation
	for lineno, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		r, err := ParseRelation(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno+1, err)
		}
		rels = append(rels, r)
	}
	if len(rels) == 0 {
		return nil, fmt.Errorf("schema: no relations")
	}
	return New(rels...)
}

// MustParse is Parse but panics on error; for tests and fixtures.
func MustParse(text string) *Schema {
	s, err := Parse(text)
	invariant.Must(err)
	return s
}

// ParseRelation parses a single relation scheme line such as
// "employee(ss*:T1, eName:T2)".
func ParseRelation(line string) (*Relation, error) {
	open := strings.IndexByte(line, '(')
	if open <= 0 || !strings.HasSuffix(line, ")") {
		return nil, fmt.Errorf("schema: cannot parse relation %q", line)
	}
	r := &Relation{Name: strings.TrimSpace(line[:open])}
	body := line[open+1 : len(line)-1]
	if strings.TrimSpace(body) == "" {
		return nil, fmt.Errorf("schema: relation %q has no attributes", r.Name)
	}
	for i, part := range strings.Split(body, ",") {
		part = strings.TrimSpace(part)
		colon := strings.IndexByte(part, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("schema: attribute %q needs name:Type", part)
		}
		name := strings.TrimSpace(part[:colon])
		typeStr := strings.TrimSpace(part[colon+1:])
		isKey := strings.HasSuffix(name, "*")
		if isKey {
			name = strings.TrimSuffix(name, "*")
		}
		t, err := parseType(typeStr)
		if err != nil {
			return nil, fmt.Errorf("schema: attribute %q: %v", part, err)
		}
		r.Attrs = append(r.Attrs, Attribute{Name: name, Type: t})
		if isKey {
			r.Key = append(r.Key, i)
		}
	}
	return r, nil
}

func parseType(s string) (value.Type, error) {
	if !strings.HasPrefix(s, "T") {
		return value.NoType, fmt.Errorf("type %q must look like T<n>", s)
	}
	const maxType = 1 << 30 // well inside value.Type's int32 range
	var n int64
	for _, c := range s[1:] {
		if c < '0' || c > '9' {
			return value.NoType, fmt.Errorf("type %q must look like T<n>", s)
		}
		n = n*10 + int64(c-'0')
		if n > maxType {
			return value.NoType, fmt.Errorf("type %q is out of range", s)
		}
	}
	if n <= 0 || len(s) == 1 {
		return value.NoType, fmt.Errorf("type %q must be T<n> with n >= 1", s)
	}
	return value.Type(n), nil
}
