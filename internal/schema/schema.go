// Package schema implements the paper's relational database schemas:
// relation schemes with typed attributes, keyed schemas (one key per
// relation, no other dependencies), unkeyed schemas (no dependencies at
// all), the key-projection schema κ(S), and the notion of "identical up
// to renaming and re-ordering of attributes and relations" (isomorphism),
// which Theorem 13 proves coincides with conjunctive query equivalence.
package schema

import (
	"fmt"
	"sort"
	"strings"

	"keyedeq/internal/invariant"
	"keyedeq/internal/value"
)

// Attribute is a named, typed column of a relation scheme.  Per the paper,
// an attribute is a pair of a name and an attribute type.
type Attribute struct {
	Name string
	Type value.Type
}

// String renders "name:T3".
func (a Attribute) String() string { return a.Name + ":" + a.Type.String() }

// Relation is a relation scheme: a name, an ordered list of attributes,
// and (for keyed schemas) the set of key attribute positions.
type Relation struct {
	Name  string
	Attrs []Attribute
	// Key holds the 0-based positions of the key attributes, sorted
	// ascending.  An empty Key means the relation carries no key
	// dependency (the unkeyed case).
	Key []int
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Attrs) }

// Keyed reports whether the relation declares a key.
func (r *Relation) Keyed() bool { return len(r.Key) > 0 }

// IsKeyPos reports whether attribute position i belongs to the key.
func (r *Relation) IsKeyPos(i int) bool {
	for _, k := range r.Key {
		if k == i {
			return true
		}
	}
	return false
}

// KeyPositions returns a copy of the key positions.
func (r *Relation) KeyPositions() []int {
	out := make([]int, len(r.Key))
	copy(out, r.Key)
	return out
}

// NonKeyPositions returns the attribute positions outside the key,
// ascending.
func (r *Relation) NonKeyPositions() []int {
	var out []int
	for i := range r.Attrs {
		if !r.IsKeyPos(i) {
			out = append(out, i)
		}
	}
	return out
}

// AttrIndex returns the position of the attribute with the given name,
// or -1 if absent.
func (r *Relation) AttrIndex(name string) int {
	for i, a := range r.Attrs {
		if a.Name == name {
			return i
		}
	}
	return -1
}

// Type returns the relation's type: the ordered list of its attribute
// types (the paper's "type of the relation").
func (r *Relation) Type() []value.Type {
	ts := make([]value.Type, len(r.Attrs))
	for i, a := range r.Attrs {
		ts[i] = a.Type
	}
	return ts
}

// Clone returns a deep copy of the relation scheme.
func (r *Relation) Clone() *Relation {
	c := &Relation{Name: r.Name}
	c.Attrs = append([]Attribute(nil), r.Attrs...)
	c.Key = append([]int(nil), r.Key...)
	return c
}

// String renders the scheme in the paper's style, key attributes marked
// with an asterisk: "employee(ss*:T1, eName:T2, salary:T3)".
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.Name)
	b.WriteByte('(')
	for i, a := range r.Attrs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		if r.IsKeyPos(i) {
			b.WriteByte('*')
		}
		b.WriteByte(':')
		b.WriteString(a.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Schema is a relational database schema: an ordered tuple of relation
// schemes.  A keyed schema declares exactly one key per relation and no
// other dependencies; an unkeyed schema declares none.
type Schema struct {
	Relations []*Relation
}

// New builds a schema from relation schemes and validates it.
func New(rels ...*Relation) (*Schema, error) {
	s := &Schema{Relations: rels}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is New but panics on invalid input; for tests and fixtures.
func MustNew(rels ...*Relation) *Schema {
	s, err := New(rels...)
	invariant.Must(err)
	return s
}

// Relation returns the relation scheme with the given name, or nil.
func (s *Schema) Relation(name string) *Relation {
	for _, r := range s.Relations {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// RelationIndex returns the position of the named relation, or -1.
func (s *Schema) RelationIndex(name string) int {
	for i, r := range s.Relations {
		if r.Name == name {
			return i
		}
	}
	return -1
}

// Keyed reports whether every relation declares a key (a keyed schema).
func (s *Schema) Keyed() bool {
	for _, r := range s.Relations {
		if !r.Keyed() {
			return false
		}
	}
	return true
}

// Unkeyed reports whether no relation declares a key.
func (s *Schema) Unkeyed() bool {
	for _, r := range s.Relations {
		if r.Keyed() {
			return false
		}
	}
	return true
}

// Validate checks structural well-formedness: non-empty distinct relation
// names, non-empty distinct attribute names per relation, valid types,
// and key positions in range, sorted, and duplicate-free.
func (s *Schema) Validate() error {
	names := make(map[string]bool)
	for _, r := range s.Relations {
		if r == nil {
			return fmt.Errorf("schema: nil relation")
		}
		if r.Name == "" {
			return fmt.Errorf("schema: relation with empty name")
		}
		if names[r.Name] {
			return fmt.Errorf("schema: duplicate relation name %q", r.Name)
		}
		names[r.Name] = true
		if len(r.Attrs) == 0 {
			return fmt.Errorf("schema: relation %q has no attributes", r.Name)
		}
		attrNames := make(map[string]bool)
		for _, a := range r.Attrs {
			if a.Name == "" {
				return fmt.Errorf("schema: relation %q has an unnamed attribute", r.Name)
			}
			if attrNames[a.Name] {
				return fmt.Errorf("schema: relation %q has duplicate attribute %q", r.Name, a.Name)
			}
			attrNames[a.Name] = true
			if a.Type == value.NoType {
				return fmt.Errorf("schema: attribute %s.%s has no type", r.Name, a.Name)
			}
		}
		prev := -1
		for _, k := range r.Key {
			if k < 0 || k >= len(r.Attrs) {
				return fmt.Errorf("schema: relation %q key position %d out of range", r.Name, k)
			}
			if k <= prev {
				return fmt.Errorf("schema: relation %q key positions must be sorted and distinct", r.Name)
			}
			prev = k
		}
	}
	return nil
}

// Clone returns a deep copy.
func (s *Schema) Clone() *Schema {
	c := &Schema{Relations: make([]*Relation, len(s.Relations))}
	for i, r := range s.Relations {
		c.Relations[i] = r.Clone()
	}
	return c
}

// TypeCount returns, for every attribute type, how many attributes of that
// type occur in the schema (across all relations, keys included).
func (s *Schema) TypeCount() map[value.Type]int {
	m := make(map[value.Type]int)
	for _, r := range s.Relations {
		for _, a := range r.Attrs {
			m[a.Type]++
		}
	}
	return m
}

// NonKeyTypeCount counts attribute-type occurrences among non-key
// attributes only (used in the proof of Theorem 13).
func (s *Schema) NonKeyTypeCount() map[value.Type]int {
	m := make(map[value.Type]int)
	for _, r := range s.Relations {
		for i, a := range r.Attrs {
			if !r.IsKeyPos(i) {
				m[a.Type]++
			}
		}
	}
	return m
}

// Types returns the sorted set of attribute types used by the schema.
func (s *Schema) Types() []value.Type {
	seen := make(map[value.Type]bool)
	var ts []value.Type
	for _, r := range s.Relations {
		for _, a := range r.Attrs {
			if !seen[a.Type] {
				seen[a.Type] = true
				ts = append(ts, a.Type)
			}
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// String renders all relation schemes, one per line.
func (s *Schema) String() string {
	var b strings.Builder
	for i, r := range s.Relations {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(r.String())
	}
	return b.String()
}

// SameType reports whether two relations have identical type (same arity,
// same attribute types position-wise) — the paper's precondition for a
// view to define an instance of a relation.
func SameType(a, b *Relation) bool {
	if len(a.Attrs) != len(b.Attrs) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i].Type != b.Attrs[i].Type {
			return false
		}
	}
	return true
}
