package schema

import (
	"math/rand"
	"testing"
)

func TestIsomorphicIdentical(t *testing.T) {
	s := MustParse(paperSchema1)
	if !Isomorphic(s, s) {
		t.Error("schema not isomorphic to itself")
	}
	iso, ok := FindIsomorphism(s, s)
	if !ok {
		t.Fatal("no witness for self-isomorphism")
	}
	if err := iso.Verify(s, s); err != nil {
		t.Errorf("witness fails verification: %v", err)
	}
}

func TestIsomorphicRenamed(t *testing.T) {
	s1 := MustParse("r(a*:T1, b:T2)\ns(c*:T3)")
	s2 := MustParse("x(u*:T3)\ny(p*:T1, q:T2)")
	if !Isomorphic(s1, s2) {
		t.Error("renamed+reordered schemas should be isomorphic")
	}
	iso, ok := FindIsomorphism(s1, s2)
	if !ok {
		t.Fatal("no witness found")
	}
	if err := iso.Verify(s1, s2); err != nil {
		t.Errorf("witness fails: %v", err)
	}
	// r must map to y.
	if iso.RelMap[0] != 1 || iso.RelMap[1] != 0 {
		t.Errorf("RelMap = %v, want [1 0]", iso.RelMap)
	}
}

func TestIsomorphicAttrReorder(t *testing.T) {
	s1 := MustParse("r(a*:T1, b:T2, c:T3)")
	s2 := MustParse("r(c:T3, b:T2, a*:T1)")
	if !Isomorphic(s1, s2) {
		t.Error("attribute reorder should preserve isomorphism")
	}
	iso, ok := FindIsomorphism(s1, s2)
	if !ok || iso.Verify(s1, s2) != nil {
		t.Error("witness broken")
	}
}

func TestNotIsomorphicCases(t *testing.T) {
	base := MustParse("r(a*:T1, b:T2)")
	cases := []struct {
		name string
		s    *Schema
	}{
		{"different type", MustParse("r(a*:T1, b:T3)")},
		{"key moved", MustParse("r(a:T1, b*:T2)")},
		{"extra attr", MustParse("r(a*:T1, b:T2, c:T2)")},
		{"extra relation", MustParse("r(a*:T1, b:T2)\ns(c*:T1)")},
		{"wider key", MustParse("r(a*:T1, b*:T2)")},
		{"attr moved between relations", MustParse("r(a*:T1)\ns(b*:T2)")},
	}
	for _, tt := range cases {
		if Isomorphic(base, tt.s) {
			t.Errorf("%s: should not be isomorphic to base", tt.name)
		}
		if _, ok := FindIsomorphism(base, tt.s); ok {
			t.Errorf("%s: FindIsomorphism should fail", tt.name)
		}
	}
}

// Key membership matters even when the overall multiset of types agrees:
// r(a*:T1, b:T1) vs r(a:T1, b*:T1) ARE isomorphic (swap a,b), but
// r(a*:T1, b:T2) vs r(a*:T2, b:T1) are not.
func TestKeyTypeDistinguishes(t *testing.T) {
	s1 := MustParse("r(a*:T1, b:T2)")
	s2 := MustParse("r(a*:T2, b:T1)")
	if Isomorphic(s1, s2) {
		t.Error("key attr type T1 vs T2 must distinguish the schemas")
	}
	s3 := MustParse("r(a*:T1, b:T1)")
	s4 := MustParse("r(x:T1, y*:T1)")
	if !Isomorphic(s3, s4) {
		t.Error("same-type key/non-key swap with equal types is a reorder")
	}
}

func TestDuplicateSignatureRelations(t *testing.T) {
	// Two relations with identical signatures: witness must use each
	// target exactly once.
	s1 := MustParse("r(a*:T1, b:T2)\ns(c*:T1, d:T2)")
	s2 := MustParse("x(p*:T1, q:T2)\ny(u*:T1, v:T2)")
	if !Isomorphic(s1, s2) {
		t.Fatal("should be isomorphic")
	}
	iso, ok := FindIsomorphism(s1, s2)
	if !ok {
		t.Fatal("no witness")
	}
	if err := iso.Verify(s1, s2); err != nil {
		t.Errorf("witness fails: %v", err)
	}
	if iso.RelMap[0] == iso.RelMap[1] {
		t.Error("witness maps two relations to the same target")
	}
}

func TestRandomIsomorphProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	schemas := []*Schema{
		MustParse(paperSchema1),
		MustParse("r(a*:T1, b:T1, c:T1)"),
		MustParse("r(a*:T1, b*:T2, c:T3)\ns(x*:T3)\nt(y*:T2, z:T2)"),
	}
	for _, s := range schemas {
		for trial := 0; trial < 25; trial++ {
			s2, iso := RandomIsomorph(s, rng)
			if err := s2.Validate(); err != nil {
				t.Fatalf("RandomIsomorph produced invalid schema: %v", err)
			}
			if !Isomorphic(s, s2) {
				t.Fatalf("RandomIsomorph result not isomorphic:\n%s\nvs\n%s", s, s2)
			}
			if err := iso.Verify(s, s2); err != nil {
				t.Fatalf("RandomIsomorph witness invalid: %v", err)
			}
		}
	}
}

func TestCanonicalFormStable(t *testing.T) {
	s1 := MustParse("a(x*:T2, y:T1)\nb(z*:T1)")
	s2 := MustParse("b(z*:T1)\na(y:T1, x*:T2)")
	if CanonicalForm(s1) != CanonicalForm(s2) {
		t.Errorf("canonical forms differ:\n%q\nvs\n%q", CanonicalForm(s1), CanonicalForm(s2))
	}
}

func TestVerifyCatchesBadWitness(t *testing.T) {
	s := MustParse("r(a*:T1, b:T2)\ns(c*:T1, d:T2)")
	iso, _ := FindIsomorphism(s, s)
	good := *iso
	// Corrupt the relation map: both relations map to 0.
	bad := Isomorphism{RelMap: []int{0, 0}, AttrMaps: good.AttrMaps}
	if bad.Verify(s, s) == nil {
		t.Error("Verify accepted a non-injective relation map")
	}
	// Corrupt an attribute map.
	bad2 := Isomorphism{
		RelMap:   append([]int(nil), good.RelMap...),
		AttrMaps: [][]int{{0, 0}, good.AttrMaps[1]},
	}
	if bad2.Verify(s, s) == nil {
		t.Error("Verify accepted a non-injective attribute map")
	}
}
