package schema

// Kappa constructs κ(S): the unkeyed schema obtained from a keyed schema S
// by deleting all non-key attributes from each relation scheme and dropping
// the key dependencies.  For each relation scheme R in S there is a scheme
// R′ in κ(S) consisting only of R's key attributes, in their original
// relative order.
//
// KappaPos records, for each relation, the mapping from κ-positions back to
// positions in the original scheme so instances can be projected (π_κ) and
// the γ/δ maps of Theorem 9 can be built.
func Kappa(s *Schema) (*Schema, [][]int) {
	out := &Schema{Relations: make([]*Relation, len(s.Relations))}
	pos := make([][]int, len(s.Relations))
	for i, r := range s.Relations {
		kr := &Relation{Name: r.Name}
		var keep []int
		if r.Keyed() {
			keep = r.KeyPositions()
		} else {
			// An unkeyed relation's attributes implicitly all form
			// a key (as the paper notes in Theorem 13's proof), so
			// κ keeps everything.
			keep = make([]int, len(r.Attrs))
			for j := range keep {
				keep[j] = j
			}
		}
		for _, p := range keep {
			kr.Attrs = append(kr.Attrs, r.Attrs[p])
		}
		out.Relations[i] = kr
		pos[i] = keep
	}
	return out, pos
}
