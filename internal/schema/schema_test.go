package schema

import (
	"strings"
	"testing"

	"keyedeq/internal/value"
)

// paperSchema1 is Schema 1 from the paper's introduction (types assigned:
// T1=ssn, T2=name, T3=salary, T4=deptid, T5=deptname, T6=yearsExp).
const paperSchema1 = `
# Schema 1
employee(ss*:T1, eName:T2, salary:T3, depId:T4)
department(deptId*:T4, deptName:T5, mgr:T1)
salespeople(ss*:T1, yearsExp:T6)
`

const paperSchema2 = `
empl(ssn*:T1, ename:T2, sal:T3, dep:T4, yrsExp:T6)
dept(departId*:T4, dName:T5, manager:T1)
`

func TestParsePaperSchemas(t *testing.T) {
	s1 := MustParse(paperSchema1)
	if len(s1.Relations) != 3 {
		t.Fatalf("schema 1 has %d relations, want 3", len(s1.Relations))
	}
	emp := s1.Relation("employee")
	if emp == nil {
		t.Fatal("no employee relation")
	}
	if emp.Arity() != 4 {
		t.Errorf("employee arity = %d, want 4", emp.Arity())
	}
	if len(emp.Key) != 1 || emp.Key[0] != 0 {
		t.Errorf("employee key = %v, want [0]", emp.Key)
	}
	if emp.Attrs[0].Type != value.Type(1) {
		t.Errorf("ss type = %v, want T1", emp.Attrs[0].Type)
	}
	if !s1.Keyed() {
		t.Error("schema 1 should be keyed")
	}
}

func TestRelationHelpers(t *testing.T) {
	r, err := ParseRelation("r(a*:T1, b:T2, c*:T3, d:T2)")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.KeyPositions(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("KeyPositions = %v", got)
	}
	if got := r.NonKeyPositions(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("NonKeyPositions = %v", got)
	}
	if !r.IsKeyPos(0) || r.IsKeyPos(1) || !r.IsKeyPos(2) || r.IsKeyPos(3) {
		t.Error("IsKeyPos wrong")
	}
	if r.AttrIndex("c") != 2 || r.AttrIndex("zz") != -1 {
		t.Error("AttrIndex wrong")
	}
	typ := r.Type()
	want := []value.Type{1, 2, 3, 2}
	for i := range want {
		if typ[i] != want[i] {
			t.Errorf("Type()[%d] = %v, want %v", i, typ[i], want[i])
		}
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		s    *Schema
	}{
		{"nil relation", &Schema{Relations: []*Relation{nil}}},
		{"empty name", &Schema{Relations: []*Relation{{Name: "", Attrs: []Attribute{{"a", 1}}}}}},
		{"dup relation", &Schema{Relations: []*Relation{
			{Name: "r", Attrs: []Attribute{{"a", 1}}},
			{Name: "r", Attrs: []Attribute{{"a", 1}}},
		}}},
		{"no attrs", &Schema{Relations: []*Relation{{Name: "r"}}}},
		{"unnamed attr", &Schema{Relations: []*Relation{{Name: "r", Attrs: []Attribute{{"", 1}}}}}},
		{"dup attr", &Schema{Relations: []*Relation{{Name: "r", Attrs: []Attribute{{"a", 1}, {"a", 2}}}}}},
		{"untyped attr", &Schema{Relations: []*Relation{{Name: "r", Attrs: []Attribute{{"a", value.NoType}}}}}},
		{"key out of range", &Schema{Relations: []*Relation{{Name: "r", Attrs: []Attribute{{"a", 1}}, Key: []int{1}}}}},
		{"key unsorted", &Schema{Relations: []*Relation{{Name: "r", Attrs: []Attribute{{"a", 1}, {"b", 2}}, Key: []int{1, 0}}}}},
		{"key dup", &Schema{Relations: []*Relation{{Name: "r", Attrs: []Attribute{{"a", 1}, {"b", 2}}, Key: []int{0, 0}}}}},
	}
	for _, tt := range tests {
		if err := tt.s.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", tt.name)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	s := MustParse(paperSchema1)
	c := s.Clone()
	c.Relations[0].Name = "changed"
	c.Relations[0].Attrs[0].Name = "zz"
	c.Relations[0].Key[0] = 0
	if s.Relations[0].Name != "employee" || s.Relations[0].Attrs[0].Name != "ss" {
		t.Error("Clone shares storage with original")
	}
}

func TestTypeCounts(t *testing.T) {
	s := MustParse(paperSchema1)
	tc := s.TypeCount()
	// T1 occurs as employee.ss, department.mgr, salespeople.ss.
	if tc[1] != 3 {
		t.Errorf("TypeCount[T1] = %d, want 3", tc[1])
	}
	nk := s.NonKeyTypeCount()
	// Non-key T1: department.mgr only.
	if nk[1] != 1 {
		t.Errorf("NonKeyTypeCount[T1] = %d, want 1", nk[1])
	}
	if nk[6] != 1 {
		t.Errorf("NonKeyTypeCount[T6] = %d, want 1", nk[6])
	}
	ts := s.Types()
	if len(ts) != 6 {
		t.Errorf("Types() = %v, want 6 types", ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Errorf("Types() not sorted: %v", ts)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	s := MustParse(paperSchema1)
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if s.String() != s2.String() {
		t.Errorf("round trip changed schema:\n%s\nvs\n%s", s, s2)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"r",
		"r()",
		"r(a)",
		"r(a:)",
		"r(a:X1)",
		"r(a:T0)",
		"r(a:T)",
		"r(:T1)",
		"(a:T1)",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q): want error", text)
		}
	}
}

func TestSameType(t *testing.T) {
	a, _ := ParseRelation("a(x:T1, y:T2)")
	b, _ := ParseRelation("b(u*:T1, v:T2)")
	c, _ := ParseRelation("c(u:T2, v:T1)")
	d, _ := ParseRelation("d(u:T1)")
	if !SameType(a, b) {
		t.Error("a and b should have the same type (keys don't matter)")
	}
	if SameType(a, c) || SameType(a, d) {
		t.Error("a vs c/d should differ")
	}
}

func TestKeyedUnkeyed(t *testing.T) {
	keyed := MustParse("r(a*:T1, b:T2)")
	unkeyed := MustParse("r(a:T1, b:T2)")
	mixed := MustParse("r(a*:T1)\ns(b:T2)")
	if !keyed.Keyed() || keyed.Unkeyed() {
		t.Error("keyed misclassified")
	}
	if unkeyed.Keyed() || !unkeyed.Unkeyed() {
		t.Error("unkeyed misclassified")
	}
	if mixed.Keyed() || mixed.Unkeyed() {
		t.Error("mixed misclassified")
	}
}

func TestKappa(t *testing.T) {
	s := MustParse(paperSchema1)
	k, pos := Kappa(s)
	if len(k.Relations) != 3 {
		t.Fatalf("kappa has %d relations", len(k.Relations))
	}
	emp := k.Relation("employee")
	if emp.Arity() != 1 || emp.Attrs[0].Name != "ss" {
		t.Errorf("kappa employee = %v", emp)
	}
	if emp.Keyed() {
		t.Error("kappa schema must be unkeyed")
	}
	if !k.Unkeyed() {
		t.Error("kappa schema must be unkeyed overall")
	}
	if len(pos[0]) != 1 || pos[0][0] != 0 {
		t.Errorf("kappa pos[0] = %v", pos[0])
	}
	// Composite key keeps order.
	s2 := MustParse("r(a*:T1, b:T2, c*:T3)")
	k2, pos2 := Kappa(s2)
	r := k2.Relations[0]
	if r.Arity() != 2 || r.Attrs[0].Name != "a" || r.Attrs[1].Name != "c" {
		t.Errorf("kappa composite = %v", r)
	}
	if len(pos2[0]) != 2 || pos2[0][0] != 0 || pos2[0][1] != 2 {
		t.Errorf("kappa pos = %v", pos2[0])
	}
}

func TestKappaUnkeyedKeepsAll(t *testing.T) {
	s := MustParse("r(a:T1, b:T2)")
	k, pos := Kappa(s)
	if k.Relations[0].Arity() != 2 {
		t.Errorf("kappa of unkeyed dropped attributes: %v", k)
	}
	if len(pos[0]) != 2 {
		t.Errorf("pos = %v", pos[0])
	}
}

func TestStringFormat(t *testing.T) {
	s := MustParse("r(a*:T1, b:T2)")
	if got := s.String(); got != "r(a*:T1, b:T2)" {
		t.Errorf("String() = %q", got)
	}
	if !strings.Contains(MustParse(paperSchema1).String(), "department(deptId*:T4") {
		t.Error("String() missing department")
	}
}
