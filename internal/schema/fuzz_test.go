package schema

import (
	"testing"
)

func FuzzParse(f *testing.F) {
	seeds := []string{
		"r(a*:T1, b:T2)",
		"r(a*:T1)\ns(b:T2, c*:T3)",
		"# comment\nr(a:T1)",
		"",
		"r()",
		"r(a:T0)",
		"r(a*:T1, a:T1)",
		"r(a*:T99999999999999999999)",
		"r(a:T1", // unbalanced
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		s, err := Parse(text)
		if err != nil {
			return
		}
		// Accepted schemas must be valid, reprintable, and reparse to an
		// isomorphic schema with an identical rendering.
		if err := s.Validate(); err != nil {
			t.Fatalf("accepted invalid schema %q: %v", text, err)
		}
		printed := s.String()
		s2, err := Parse(printed)
		if err != nil {
			t.Fatalf("rejected own print %q: %v", printed, err)
		}
		if s2.String() != printed {
			t.Fatalf("print not a fixpoint: %q -> %q", printed, s2.String())
		}
		if !Isomorphic(s, s2) {
			t.Fatalf("reparse not isomorphic for %q", printed)
		}
	})
}
