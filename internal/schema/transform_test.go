package schema

import (
	"testing"
)

func TestRenameRelation(t *testing.T) {
	s := MustParse("r(a*:T1)\ns(b*:T2)")
	out, err := RenameRelation(s, "r", "zz")
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("zz") == nil || out.Relation("r") != nil {
		t.Errorf("rename failed: %s", out)
	}
	if s.Relation("r") == nil {
		t.Error("rename mutated the input")
	}
	if !Isomorphic(s, out) {
		t.Error("rename must preserve isomorphism")
	}
	if _, err := RenameRelation(s, "nope", "x"); err == nil {
		t.Error("renaming a missing relation should fail")
	}
	if _, err := RenameRelation(s, "r", "s"); err == nil {
		t.Error("renaming onto an existing name should fail")
	}
}

func TestRenameAttribute(t *testing.T) {
	s := MustParse("r(a*:T1, b:T2)")
	out, err := RenameAttribute(s, "r", "b", "bb")
	if err != nil {
		t.Fatal(err)
	}
	if out.Relation("r").AttrIndex("bb") != 1 {
		t.Errorf("rename failed: %s", out)
	}
	if !Isomorphic(s, out) {
		t.Error("attribute rename must preserve isomorphism")
	}
	if _, err := RenameAttribute(s, "x", "b", "c"); err == nil {
		t.Error("missing relation should fail")
	}
	if _, err := RenameAttribute(s, "r", "zz", "c"); err == nil {
		t.Error("missing attribute should fail")
	}
	if _, err := RenameAttribute(s, "r", "b", "a"); err == nil {
		t.Error("collision should fail")
	}
}

func TestReorderAttributes(t *testing.T) {
	s := MustParse("r(a*:T1, b:T2, c*:T3)")
	out, err := ReorderAttributes(s, "r", []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	r := out.Relation("r")
	if r.Attrs[0].Name != "c" || r.Attrs[1].Name != "a" || r.Attrs[2].Name != "b" {
		t.Errorf("reorder wrong: %s", r)
	}
	// Key was {a,c} = positions {0,2}; now c is at 0 and a at 1.
	if len(r.Key) != 2 || r.Key[0] != 0 || r.Key[1] != 1 {
		t.Errorf("key remap wrong: %v", r.Key)
	}
	if err := out.Validate(); err != nil {
		t.Errorf("reorder produced invalid schema: %v", err)
	}
	if !Isomorphic(s, out) {
		t.Error("reorder must preserve isomorphism")
	}
	if _, err := ReorderAttributes(s, "r", []int{0, 1}); err == nil {
		t.Error("short permutation should fail")
	}
	if _, err := ReorderAttributes(s, "r", []int{0, 0, 1}); err == nil {
		t.Error("non-permutation should fail")
	}
	if _, err := ReorderAttributes(s, "zz", []int{0}); err == nil {
		t.Error("missing relation should fail")
	}
}

func TestReorderRelations(t *testing.T) {
	s := MustParse("r(a*:T1)\ns(b*:T2)\nt(c*:T3)")
	out, err := ReorderRelations(s, []int{2, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Relations[0].Name != "t" || out.Relations[1].Name != "r" || out.Relations[2].Name != "s" {
		t.Errorf("reorder wrong: %s", out)
	}
	if !Isomorphic(s, out) {
		t.Error("relation reorder must preserve isomorphism")
	}
	if _, err := ReorderRelations(s, []int{0, 1}); err == nil {
		t.Error("short permutation should fail")
	}
}
