package dominance

import (
	"math/rand"
	"strings"
	"testing"

	"keyedeq/internal/schema"
)

func TestEquivalentMirrorsIsomorphism(t *testing.T) {
	s1 := schema.MustParse("r(a*:T1, b:T2)\ns(c*:T3)")
	s2 := schema.MustParse("x(u*:T3)\ny(q:T2, p*:T1)")
	if !Equivalent(s1, s2) {
		t.Error("renamed/reordered schemas should be equivalent")
	}
	s3 := schema.MustParse("r(a*:T1, b:T2)\ns(c*:T2)")
	if Equivalent(s1, s3) {
		t.Error("different key types should not be equivalent")
	}
}

func TestEquivalentWithWitness(t *testing.T) {
	s1 := schema.MustParse("r(a*:T1, b:T2)")
	rng := rand.New(rand.NewSource(2))
	s2, _ := schema.RandomIsomorph(s1, rng)
	w, ok, err := EquivalentWithWitness(s1, s2)
	if err != nil || !ok {
		t.Fatalf("witness not found: %v %v", ok, err)
	}
	good, err := VerifyWitness(w)
	if err != nil || !good {
		t.Errorf("witness failed verification: %v %v", good, err)
	}
	// Non-isomorphic: no witness.
	s3 := schema.MustParse("r(a*:T1, b:T3)")
	_, ok, err = EquivalentWithWitness(s1, s3)
	if err != nil || ok {
		t.Errorf("witness for non-equivalent schemas: %v %v", ok, err)
	}
}

func TestExplain(t *testing.T) {
	s1 := schema.MustParse("r(a*:T1)")
	if !strings.Contains(Explain(s1, s1), "equivalent") {
		t.Error("Explain should say equivalent")
	}
	s2 := schema.MustParse("r(a*:T1)\ns(b*:T1)")
	if !strings.Contains(Explain(s1, s2), "different number of relations") {
		t.Error("Explain should mention relation count")
	}
	s3 := schema.MustParse("r(a*:T2)")
	if !strings.Contains(Explain(s1, s3), "canonical forms differ") {
		t.Error("Explain should show canonical forms")
	}
}
