package dominance

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func smallBounds() SearchBounds {
	return SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 500, MaxPairs: 50_000}
}

func TestEnumerateViewsShapes(t *testing.T) {
	src := schema.MustParse("R(a*:T1, b:T2)")
	target := src.Relations[0]
	views := EnumerateViews(src, target, smallBounds())
	if len(views) == 0 {
		t.Fatal("no views enumerated")
	}
	// The identity view must be among them.
	foundIdentity := false
	for _, q := range views {
		if err := q.Validate(src); err != nil {
			t.Fatalf("invalid view enumerated: %s: %v", q, err)
		}
		if len(q.Body) == 1 && len(q.Eqs) == 0 &&
			!q.Head[0].IsConst && !q.Head[1].IsConst &&
			q.Head[0].Var == q.Body[0].Vars[0] && q.Head[1].Var == q.Body[0].Vars[1] {
			foundIdentity = true
		}
	}
	if !foundIdentity {
		t.Error("identity view missing from enumeration")
	}
	// Infeasible target type: no views.
	bad := schema.MustParse("X(z*:T9)").Relations[0]
	if vs := EnumerateViews(src, bad, smallBounds()); len(vs) != 0 {
		t.Errorf("views for infeasible target: %d", len(vs))
	}
}

func TestSearchFindsIsomorphismWitness(t *testing.T) {
	s1 := schema.MustParse("R(a*:T1, b:T2)")
	s2 := schema.MustParse("P(x:T2, y*:T1)")
	w, found, stats, err := SearchDominance(s1, s2, smallBounds())
	if err != nil {
		t.Fatal(err)
	}
	if !found {
		t.Fatalf("no witness found; stats %+v", stats)
	}
	ok, err := VerifyWitness(w)
	if err != nil || !ok {
		t.Errorf("found witness fails verification: %v %v", ok, err)
	}
	eq, _, err := SearchEquivalence(s1, s2, smallBounds())
	if err != nil || !eq {
		t.Errorf("SearchEquivalence = %v, %v; want true", eq, err)
	}
}

func TestSearchAsymmetricDominance(t *testing.T) {
	// S1 = R(a*) is dominated by S2 = R(a*, b): store a in both columns,
	// read it back.  The converse fails (nothing can store b).
	s1 := schema.MustParse("R(a*:T1)")
	s2 := schema.MustParse("P(a*:T1, b:T1)")
	_, up, _, err := SearchDominance(s1, s2, smallBounds())
	if err != nil {
		t.Fatal(err)
	}
	if !up {
		t.Error("S1 ≼ S2 witness not found (echo the key)")
	}
	_, down, stats, err := SearchDominance(s2, s1, smallBounds())
	if err != nil {
		t.Fatal(err)
	}
	if down {
		t.Error("S2 ≼ S1 should have no witness")
	}
	if stats.Truncated {
		t.Log("warning: search truncated; negative result inconclusive")
	}
	// Hence not equivalent — matching Theorem 13 (not isomorphic).
	eq, _, err := SearchEquivalence(s1, s2, smallBounds())
	if err != nil || eq {
		t.Errorf("SearchEquivalence = %v, %v; want false", eq, err)
	}
}

// The mini empirical Theorem 13: over an exhaustive space of small keyed
// schemas, bounded mapping search agrees exactly with the isomorphism
// test.  (The full version with wider bounds is experiment T1.)
func TestTheorem13EmpiricalMini(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search; skipped in -short")
	}
	space := gen.EnumerateKeyedSchemas(gen.SchemaSpace{
		MaxRelations: 1, MaxAttrs: 2, Types: 2,
	})
	if len(space) != 6 {
		t.Fatalf("space size = %d", len(space))
	}
	b := smallBounds()
	for i, s1 := range space {
		for j, s2 := range space {
			if j < i {
				continue
			}
			iso := schema.Isomorphic(s1, s2)
			eq, stats, err := SearchEquivalence(s1, s2, b)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Truncated {
				t.Fatalf("search truncated on pair (%d,%d); widen bounds", i, j)
			}
			if eq != iso {
				t.Errorf("Theorem 13 violated on\n%s\nvs\n%s\niso=%v search=%v",
					s1, s2, iso, eq)
			}
		}
	}
}

func TestSearchStatsPopulated(t *testing.T) {
	s1 := schema.MustParse("R(a*:T1)")
	s2 := schema.MustParse("P(a*:T1)")
	_, found, stats, err := SearchDominance(s1, s2, smallBounds())
	if err != nil || !found {
		t.Fatalf("search failed: %v %v", found, err)
	}
	if stats.AlphaCandidates == 0 || stats.BetaCandidates == 0 {
		t.Errorf("candidate counts empty: %+v", stats)
	}
	if len(stats.ViewsPerRelation) != 1 {
		t.Errorf("ViewsPerRelation = %v", stats.ViewsPerRelation)
	}
}

func TestSearchTruncation(t *testing.T) {
	s1 := schema.MustParse("R(a*:T1, b:T1)")
	s2 := schema.MustParse("P(a*:T1, b:T2)") // not isomorphic: no witness
	b := smallBounds()
	b.MaxPairs = 1
	_, found, stats, err := SearchDominance(s1, s2, b)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("found witness for non-isomorphic pair")
	}
	if stats.PairsChecked > 1 {
		t.Errorf("PairsChecked = %d beyond cap", stats.PairsChecked)
	}
}

// With constants offered as head terms the search space grows, but
// Theorem 13 still predicts perfect agreement with isomorphism: constant
// heads can never carry the data needed for β∘α = id.
func TestTheorem13WithConstants(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search; skipped in -short")
	}
	b := smallBounds()
	b.Constants = []value.Value{{Type: 1, N: 1}, {Type: 2, N: 1}}
	space := gen.EnumerateKeyedSchemas(gen.SchemaSpace{
		MaxRelations: 1, MaxAttrs: 2, Types: 2,
	})
	for i, s1 := range space {
		for j := i; j < len(space); j++ {
			s2 := space[j]
			iso := schema.Isomorphic(s1, s2)
			eq, stats, err := SearchEquivalence(s1, s2, b)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Truncated {
				t.Fatalf("truncated on (%d,%d)", i, j)
			}
			if eq != iso {
				t.Errorf("constants broke Theorem 13 on\n%s\nvs\n%s", s1, s2)
			}
		}
	}
}

func TestEnumerateViewsWithConstants(t *testing.T) {
	src := schema.MustParse("R(a*:T1)")
	target, _ := schema.ParseRelation("P(x*:T1, c:T2)")
	// Without constants, the T2 head position is infeasible.
	if vs := EnumerateViews(src, target, smallBounds()); len(vs) != 0 {
		t.Errorf("expected no views without constants, got %d", len(vs))
	}
	b := smallBounds()
	b.Constants = []value.Value{{Type: 2, N: 7}}
	vs := EnumerateViews(src, target, b)
	if len(vs) == 0 {
		t.Fatal("constant head should make views feasible")
	}
	for _, q := range vs {
		if err := q.Validate(src); err != nil {
			t.Fatalf("invalid view: %v", err)
		}
		if !q.Head[1].IsConst {
			t.Errorf("second head position should be the constant: %s", q)
		}
	}
}

// Hull's 1986 theorem (the paper's substrate): UNKEYED schemas are
// equivalent iff identical up to renaming and re-ordering.  Query
// mappings between unkeyed schemas are always valid, so the search
// exercises a different path than the keyed case.
func TestHullTheoremUnkeyedMini(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search; skipped in -short")
	}
	space := gen.EnumerateUnkeyedSchemas(gen.SchemaSpace{
		MaxRelations: 1, MaxAttrs: 2, Types: 2,
	})
	b := smallBounds()
	for i, s1 := range space {
		for j := i; j < len(space); j++ {
			s2 := space[j]
			iso := schema.Isomorphic(s1, s2)
			eq, stats, err := SearchEquivalence(s1, s2, b)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Truncated {
				t.Fatalf("truncated on (%d,%d)", i, j)
			}
			if eq != iso {
				t.Errorf("Hull's theorem violated on\n%s\nvs\n%s\niso=%v eq=%v", s1, s2, iso, eq)
			}
		}
	}
}

// TestSearchCancellation pins the ctx threading: a cancelled context
// must abort the pair loop with the context's error instead of running
// the bounded search to completion (the pre-fix search had no ctx entry
// point at all).
func TestSearchCancellation(t *testing.T) {
	s1 := schema.MustParse("R(a*:T1, b:T2)")
	s2 := schema.MustParse("P(x:T2, y*:T1)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		_, found, _, err := SearchDominanceOptsCtx(ctx, s1, s2, smallBounds(), SearchOptions{Workers: workers})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if found {
			t.Fatalf("workers=%d: witness reported under cancelled ctx", workers)
		}
	}
	if _, _, err := SearchEquivalenceOptsCtx(ctx, s1, s2, smallBounds(), SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchEquivalenceOptsCtx: err = %v, want context.Canceled", err)
	}
}

// TestSearchCtxDeciderWins checks the decider resolution order: EquivCtx
// beats Equiv, and a plain Equiv still works through the ctx path.
func TestSearchCtxDeciderWins(t *testing.T) {
	s1 := schema.MustParse("R(a*:T1, b:T2)")
	s2 := schema.MustParse("P(x:T2, y*:T1)")
	var viaCtx, viaPlain atomic.Int64
	opts := SearchOptions{
		Equiv: func(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
			viaPlain.Add(1)
			return containment.EquivalentUnder(q1, q2, s, deps)
		},
		EquivCtx: func(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
			viaCtx.Add(1)
			return containment.EquivalentUnderCtxMode(ctx, q1, q2, s, deps, cq.SearchDefault)
		},
	}
	_, found, _, err := SearchDominanceOptsCtx(context.Background(), s1, s2, smallBounds(), opts)
	if err != nil || !found {
		t.Fatalf("search: found=%v err=%v", found, err)
	}
	if viaCtx.Load() == 0 || viaPlain.Load() != 0 {
		t.Fatalf("decider resolution: EquivCtx calls %d, Equiv calls %d; want EquivCtx to win", viaCtx.Load(), viaPlain.Load())
	}

	opts.EquivCtx = nil
	_, found, _, err = SearchDominanceOptsCtx(context.Background(), s1, s2, smallBounds(), opts)
	if err != nil || !found {
		t.Fatalf("search with plain Equiv: found=%v err=%v", found, err)
	}
	if viaPlain.Load() == 0 {
		t.Fatal("plain Equiv never called through the ctx path")
	}
}
