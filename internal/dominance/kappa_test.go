package dominance

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func v(t value.Type, n int64) value.Value { return value.Value{Type: t, N: n} }

func TestGammaRecreatesConstants(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T2, b:T3)")
	var choice value.Choice
	g, err := Gamma(s, &choice)
	if err != nil {
		t.Fatal(err)
	}
	ks, _ := schema.Kappa(s)
	d := instance.NewDatabase(ks)
	d.MustInsert("R", v(1, 7))
	out, err := g.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	r := out.Relation("R")
	if r.Len() != 1 {
		t.Fatalf("gamma output: %s", out)
	}
	tup := r.Tuples()[0]
	if tup[0] != v(1, 7) {
		t.Errorf("key not preserved: %v", tup)
	}
	if tup[1] != choice.Of(2) || tup[2] != choice.Of(3) {
		t.Errorf("non-keys not the choice constants: %v", tup)
	}
	// π_κ ∘ γ = id on i(κ(S)), as the paper notes.
	pk, err := ProjKappa(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := pk.Apply(out)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Errorf("π_κ(γ(d)) != d:\n%s\nvs\n%s", back, d)
	}
}

func TestProjKappaMapping(t *testing.T) {
	s := schema.MustParse("R(a:T1, k*:T2, b:T3, k2*:T4)")
	pk, err := ProjKappa(s)
	if err != nil {
		t.Fatal(err)
	}
	d := instance.NewDatabase(s)
	d.MustInsert("R", v(1, 1), v(2, 2), v(3, 3), v(4, 4))
	out, err := pk.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	tup := out.Relations[0].Tuples()[0]
	if len(tup) != 2 || tup[0] != v(2, 2) || tup[1] != v(4, 4) {
		t.Errorf("projection wrong: %v", tup)
	}
	// Must agree with instance.ProjectKappa.
	ks, pos := schema.Kappa(s)
	direct := instance.ProjectKappa(d, ks, pos)
	if !out.Equal(direct) {
		t.Errorf("mapping and direct projection differ:\n%s\nvs\n%s", out, direct)
	}
}

// Theorem 9 on isomorphism pairs: the κ-reduction of a dominance pair is
// a dominance pair for the κ-schemas.
func TestTheorem9OnIsomorphismPairs(t *testing.T) {
	fixtures := []string{
		"R(k*:T1, a:T2)",
		"R(k*:T1, a:T2)\nS(x*:T3, y:T1)",
		"R(k*:T1, k2*:T2, a:T3, b:T3)",
		"R(a*:T1, b:T1, c:T1)",
	}
	for seed, text := range fixtures {
		s1 := schema.MustParse(text)
		rng := rand.New(rand.NewSource(int64(seed + 100)))
		s2, iso := schema.RandomIsomorph(s1, rng)
		alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
		if err != nil {
			t.Fatal(err)
		}
		alphaK, betaK, err := KappaReduction(alpha, beta, nil)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		ok, err := VerifyKappaPair(alphaK, betaK)
		if err != nil {
			t.Fatalf("%q: %v", text, err)
		}
		if !ok {
			t.Errorf("%q: β_κ∘α_κ is not the identity", text)
		}
	}
}

// Semantic check of the κ-reduction diagram: for database instances d_κ of
// κ(S1), α_κ(d_κ) = π_κ(α(γ(d_κ))) and β_κ(α_κ(d_κ)) = d_κ.
func TestTheorem9Semantics(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T2)\nS(x*:T3, y:T1)")
	rng := rand.New(rand.NewSource(55))
	s2, iso := schema.RandomIsomorph(s1, rng)
	alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
	if err != nil {
		t.Fatal(err)
	}
	var choice value.Choice
	alphaK, betaK, err := KappaReduction(alpha, beta, &choice)
	if err != nil {
		t.Fatal(err)
	}
	gamma, err := Gamma(s1, &choice)
	if err != nil {
		t.Fatal(err)
	}
	pk2, err := ProjKappa(s2)
	if err != nil {
		t.Fatal(err)
	}
	ks1, _ := schema.Kappa(s1)
	for trial := 0; trial < 20; trial++ {
		dk := instance.NewDatabase(ks1)
		for i := 0; i < rng.Intn(4); i++ {
			dk.MustInsert("R", v(1, int64(i+1)))
			dk.MustInsert("S", v(3, int64(i+1)))
		}
		// Diagram: α_κ = π_κ ∘ α ∘ γ.
		viaMaps, err := alphaK.Apply(dk)
		if err != nil {
			t.Fatal(err)
		}
		g, _ := gamma.Apply(dk)
		a, _ := alpha.Apply(g)
		direct, err := pk2.Apply(a)
		if err != nil {
			t.Fatal(err)
		}
		if !viaMaps.Equal(direct) {
			t.Fatalf("α_κ disagrees with π_κ∘α∘γ:\n%s\nvs\n%s", viaMaps, direct)
		}
		// Round trip.
		back, err := betaK.Apply(viaMaps)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(dk) {
			t.Fatalf("β_κ(α_κ(d)) != d:\n%s\nvs\n%s", back, dk)
		}
	}
}

// Delta's case analysis: constants (case 1), non-key receives (case 2),
// and the Lemma 7 key-witness path (case 3).
func TestDeltaCases(t *testing.T) {
	// Case 1 and 2: α maps R(k, a) to P(k, const, a-as-nonkey).
	s1 := schema.MustParse("R(k*:T1, a:T2)")
	s2 := schema.MustParse("P(k*:T1, c:T3, a:T2)")
	alpha := mapping.MustNew(s1, s2, []*cq.Query{cq.MustParse("P(X, T3:9, Y) :- R(X, Y).")})
	beta := mapping.MustNew(s2, s1, []*cq.Query{cq.MustParse("R(X, Y) :- P(X, C, Y).")})
	var choice value.Choice
	delta, err := Delta(alpha, beta, &choice)
	if err != nil {
		t.Fatal(err)
	}
	ks2, _ := schema.Kappa(s2)
	dk := instance.NewDatabase(ks2)
	dk.MustInsert("P", v(1, 4))
	out, err := delta.Apply(dk)
	if err != nil {
		t.Fatal(err)
	}
	tup := out.Relation("P").Tuples()[0]
	if tup[1] != v(3, 9) {
		t.Errorf("case 1 (constant) wrong: %v", tup)
	}
	if tup[2] != choice.Of(2) {
		t.Errorf("case 2 (non-key receive -> f(T)) wrong: %v", tup)
	}
}

// Case 3: α copies the key into a non-key position of S2, and β reads it
// back; δ must fill that position with the key variable.
func TestDeltaCase3KeyEcho(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1)")
	s2 := schema.MustParse("P(k*:T1, kcopy:T1)")
	alpha := mapping.MustNew(s1, s2, []*cq.Query{cq.MustParse("P(X, X) :- R(X).")})
	beta := mapping.MustNew(s2, s1, []*cq.Query{cq.MustParse("R(Y) :- P(X, Y).")})
	var choice value.Choice
	delta, err := Delta(alpha, beta, &choice)
	if err != nil {
		t.Fatal(err)
	}
	ks2, _ := schema.Kappa(s2)
	dk := instance.NewDatabase(ks2)
	dk.MustInsert("P", v(1, 6))
	out, err := delta.Apply(dk)
	if err != nil {
		t.Fatal(err)
	}
	tup := out.Relation("P").Tuples()[0]
	if tup[1] != v(1, 6) {
		t.Errorf("case 3 should echo the key: %v", tup)
	}
	// And the full reduction round-trips.
	alphaK, betaK, err := KappaReduction(alpha, beta, &choice)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := VerifyKappaPair(alphaK, betaK)
	if err != nil || !ok {
		t.Errorf("κ-pair not identity: %v %v", ok, err)
	}
}
