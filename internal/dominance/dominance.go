// Package dominance implements the paper's top-level decision procedures
// for schema dominance and equivalence of keyed schemas under conjunctive
// query mappings:
//
//   - Equivalent: Theorem 13's characterization — two keyed schemas are
//     conjunctive-query equivalent iff they are identical up to renaming
//     and re-ordering of attributes and relations — decided by canonical
//     form in near-linear time, with witness mappings constructed from
//     the isomorphism.
//
//   - The κ-reduction of Theorem 9: from any dominance pair (α, β) for
//     S1 ≼ S2, construct (α_κ, β_κ) establishing κ(S1) ≼ κ(S2) via the γ
//     and δ constant-padding maps.
//
//   - A bounded exhaustive search over candidate conjunctive mappings,
//     used to validate Theorem 13 empirically and to measure the cost of
//     deciding equivalence semantically instead of syntactically.
package dominance

import (
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
)

// Equivalent reports whether two keyed schemas are conjunctive query
// equivalent, by Theorem 13: iff they are identical up to renaming and
// re-ordering of attributes and relations.  It also applies to unkeyed
// schemas (Hull 1986).
func Equivalent(s1, s2 *schema.Schema) bool {
	return schema.Isomorphic(s1, s2)
}

// Witness holds certificate mappings for an equivalence: α, β establish
// S1 ≼ S2 by (α, β) and δ, γ establish S2 ≼ S1 by (β, α) — for
// isomorphic schemas the same pair serves both directions.
type Witness struct {
	Alpha *mapping.Mapping // S1 → S2
	Beta  *mapping.Mapping // S2 → S1
}

// EquivalentWithWitness decides equivalence and, when it holds, returns
// the witness conjunctive query mappings built from the isomorphism.
func EquivalentWithWitness(s1, s2 *schema.Schema) (*Witness, bool, error) {
	iso, ok := schema.FindIsomorphism(s1, s2)
	if !ok {
		return nil, false, nil
	}
	alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
	if err != nil {
		return nil, false, err
	}
	return &Witness{Alpha: alpha, Beta: beta}, true, nil
}

// VerifyWitness checks a claimed dominance pair end to end: both mappings
// valid and β∘α = id on key-satisfying instances (decided symbolically).
func VerifyWitness(w *Witness) (bool, error) {
	return mapping.Dominates(w.Alpha, w.Beta)
}

// Explain returns a human-readable account of why two schemas are or are
// not equivalent, comparing canonical forms.
func Explain(s1, s2 *schema.Schema) string {
	if schema.Isomorphic(s1, s2) {
		return "equivalent: schemas are identical up to renaming and re-ordering (Theorem 13)"
	}
	c1, c2 := schema.CanonicalForm(s1), schema.CanonicalForm(s2)
	if len(s1.Relations) != len(s2.Relations) {
		return "not equivalent: different number of relations"
	}
	return "not equivalent: canonical forms differ\n--- schema 1 ---\n" + c1 + "\n--- schema 2 ---\n" + c2
}
