package dominance

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"keyedeq/internal/cq"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Bounded exhaustive search for dominance/equivalence witnesses.  This is
// deliberately the *semantic* route the paper's Theorem 13 renders
// unnecessary: enumerate candidate conjunctive query mappings within
// syntactic bounds, and certificate-check each pair (validity + β∘α = id,
// both decided symbolically).  Experiments T1/T7/F2 use it to confirm the
// theorem on exhaustive small schema spaces and to measure how fast the
// semantic route blows up compared to the canonical-form test.

// SearchBounds bound the candidate query space.
type SearchBounds struct {
	// MaxAtoms is the maximum number of body atoms per view (≥ 1).
	MaxAtoms int
	// MaxEqs is the maximum number of equality predicates per view.
	MaxEqs int
	// MaxViews caps the views enumerated per destination relation;
	// 0 means unlimited.
	MaxViews int
	// MaxPairs caps the number of (α, β) pairs certificate-checked;
	// 0 means unlimited.
	MaxPairs int64
	// Constants, when non-empty, are additionally offered as head terms
	// (queries may emit fixed constants, so a complete search must try
	// them; Theorem 13 predicts they never help).
	Constants []value.Value
}

// DefaultBounds are suitable for the exhaustive small-schema experiments.
func DefaultBounds() SearchBounds {
	return SearchBounds{MaxAtoms: 2, MaxEqs: 1, MaxViews: 20000, MaxPairs: 2_000_000}
}

// SearchStats reports the work a search did.
type SearchStats struct {
	// ViewsPerRelation counts candidate views per destination relation
	// of the α direction.
	ViewsPerRelation []int
	// AlphaCandidates and BetaCandidates count complete candidate
	// mappings enumerated (before validity filtering).
	AlphaCandidates int64
	BetaCandidates  int64
	// ValidAlphas and ValidBetas count mappings passing the validity
	// check.
	ValidAlphas int64
	ValidBetas  int64
	// PairsChecked counts (α, β) pairs run through the identity test.
	PairsChecked int64
	// Truncated records that a cap was hit before the space was
	// exhausted; a negative search result is then inconclusive.
	Truncated bool
}

// EnumerateViews lists the candidate conjunctive queries defining target
// from src within the bounds: bodies are multisets of src relations of
// size 1..MaxAtoms, equality lists are sets of at most MaxEqs same-type
// variable pairs, and heads assign each target attribute a body variable
// of its type.  Queries whose head types cannot be realized produce no
// views.
func EnumerateViews(src *schema.Schema, target *schema.Relation, b SearchBounds) []*cq.Query {
	if b.MaxAtoms < 1 {
		b.MaxAtoms = 1
	}
	var out []*cq.Query
	bodies := enumerateBodies(src, b.MaxAtoms)
	for _, body := range bodies {
		// Collect typed variables.
		type tv struct {
			v cq.Var
			t value.Type
		}
		var vars []tv
		for i, a := range body {
			rel := src.Relation(a.Rel)
			for p, v := range a.Vars {
				vars = append(vars, tv{v: v, t: rel.Attrs[p].Type})
			}
			_ = i
		}
		// Candidate equality pairs.
		var pairs [][2]cq.Var
		for i := 0; i < len(vars); i++ {
			for j := i + 1; j < len(vars); j++ {
				if vars[i].t == vars[j].t {
					pairs = append(pairs, [2]cq.Var{vars[i].v, vars[j].v})
				}
			}
		}
		for _, eqSet := range subsetsUpTo(len(pairs), b.MaxEqs) {
			var eqs []cq.Equality
			for _, pi := range eqSet {
				eqs = append(eqs, cq.Equality{Left: pairs[pi][0], Right: cq.Term{Var: pairs[pi][1]}})
			}
			// Head choices per target position: body variables of the
			// right type, plus any offered constants of that type.
			choices := make([][]cq.Term, target.Arity())
			feasible := true
			for p, attr := range target.Attrs {
				for _, v := range vars {
					if v.t == attr.Type {
						choices[p] = append(choices[p], cq.Term{Var: v.v})
					}
				}
				for _, c := range b.Constants {
					if c.Type == attr.Type {
						choices[p] = append(choices[p], cq.C(c))
					}
				}
				if len(choices[p]) == 0 {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			idx := make([]int, target.Arity())
			for {
				q := &cq.Query{HeadRel: target.Name}
				q.Body = cloneAtoms(body)
				q.Eqs = append([]cq.Equality(nil), eqs...)
				for p := range idx {
					q.Head = append(q.Head, choices[p][idx[p]])
				}
				out = append(out, q)
				if b.MaxViews > 0 && len(out) >= b.MaxViews {
					return out
				}
				if !increment(idx, choices) {
					break
				}
			}
		}
	}
	return out
}

// enumerateBodies lists bodies: multisets of relations of size 1..max,
// with globally distinct placeholder variables.
func enumerateBodies(src *schema.Schema, max int) [][]cq.Atom {
	var out [][]cq.Atom
	n := len(src.Relations)
	var build func(start, remaining int, cur []int)
	build = func(start, remaining int, cur []int) {
		if len(cur) > 0 {
			out = append(out, makeAtoms(src, cur))
		}
		if remaining == 0 {
			return
		}
		for i := start; i < n; i++ {
			build(i, remaining-1, append(cur, i))
		}
	}
	build(0, max, nil)
	return out
}

func makeAtoms(src *schema.Schema, relIdx []int) []cq.Atom {
	atoms := make([]cq.Atom, len(relIdx))
	for i, ri := range relIdx {
		r := src.Relations[ri]
		a := cq.Atom{Rel: r.Name}
		for p := range r.Attrs {
			a.Vars = append(a.Vars, cq.Var(fmt.Sprintf("a%d_%d", i, p)))
		}
		atoms[i] = a
	}
	return atoms
}

func cloneAtoms(atoms []cq.Atom) []cq.Atom {
	out := make([]cq.Atom, len(atoms))
	for i, a := range atoms {
		out[i] = cq.Atom{Rel: a.Rel, Vars: append([]cq.Var(nil), a.Vars...)}
	}
	return out
}

// subsetsUpTo enumerates subsets of {0..n-1} of size at most k, including
// the empty set.
func subsetsUpTo(n, k int) [][]int {
	out := [][]int{nil}
	var build func(start int, cur []int)
	build = func(start int, cur []int) {
		if len(cur) >= k {
			return
		}
		for i := start; i < n; i++ {
			next := append(append([]int(nil), cur...), i)
			out = append(out, next)
			build(i+1, next)
		}
	}
	build(0, nil)
	return out
}

// increment advances a mixed-radix counter; false on wraparound.
func increment(idx []int, choices [][]cq.Term) bool {
	for p := len(idx) - 1; p >= 0; p-- {
		idx[p]++
		if idx[p] < len(choices[p]) {
			return true
		}
		idx[p] = 0
	}
	return false
}

// EnumerateMappings lists all candidate mappings src → dst within the
// bounds (the cartesian product of per-relation view choices).
func EnumerateMappings(src, dst *schema.Schema, b SearchBounds, stats *SearchStats, dir int) []*mapping.Mapping {
	views := make([][]*cq.Query, len(dst.Relations))
	for i, r := range dst.Relations {
		views[i] = EnumerateViews(src, r, b)
		if dir == 0 && stats != nil {
			stats.ViewsPerRelation = append(stats.ViewsPerRelation, len(views[i]))
		}
		if len(views[i]) == 0 {
			return nil
		}
	}
	var out []*mapping.Mapping
	idx := make([]int, len(dst.Relations))
	for {
		qs := make([]*cq.Query, len(dst.Relations))
		for i := range idx {
			qs[i] = views[i][idx[i]].Clone()
		}
		if m, err := mapping.New(src, dst, qs); err == nil {
			out = append(out, m)
		}
		if stats != nil {
			if dir == 0 {
				stats.AlphaCandidates++
			} else {
				stats.BetaCandidates++
			}
		}
		// Advance.
		p := len(idx) - 1
		for p >= 0 {
			idx[p]++
			if idx[p] < len(views[p]) {
				break
			}
			idx[p] = 0
			p--
		}
		if p < 0 {
			return out
		}
	}
}

// SearchOptions tune how the certificate-check pair loop runs.  The
// zero value reproduces the sequential search exactly.
type SearchOptions struct {
	// Workers parallelizes the (α, β) identity checks; 0 or 1 keeps the
	// loop sequential.  The found/not-found verdict and the returned
	// witness (the lowest-numbered successful pair) are deterministic
	// either way; only PairsChecked may vary, since workers stop early
	// once a witness below their index is known.
	Workers int
	// Equiv, when non-nil, decides the per-relation CQ equivalences of
	// the identity test — e.g. the batch engine pool's cached decider.
	Equiv mapping.EquivFunc
	// EquivCtx is Equiv with a context threaded through (e.g. the
	// pool's EquivCtx); when both are set, EquivCtx wins.  Only through
	// it do the ctx-threaded search entry points propagate cancellation
	// into the underlying chase and homomorphism searches.
	EquivCtx mapping.EquivCtxFunc
}

// decider resolves the options' equivalence decider to the ctx-threaded
// shape (nil means the mapping package's default sequential path).
func (o SearchOptions) decider() mapping.EquivCtxFunc {
	if o.EquivCtx != nil {
		return o.EquivCtx
	}
	return mapping.DropCtx(o.Equiv)
}

// SearchDominance searches for a pair (α, β) establishing S1 ≼ S2 within
// the bounds.  found=false with stats.Truncated=true is inconclusive;
// found=false with Truncated=false means no witness exists in the bounded
// space.
func SearchDominance(s1, s2 *schema.Schema, b SearchBounds) (*Witness, bool, SearchStats, error) {
	return SearchDominanceOpts(s1, s2, b, SearchOptions{})
}

// SearchDominanceOpts is SearchDominance with a parallel pair loop and a
// pluggable equivalence decider.
func SearchDominanceOpts(s1, s2 *schema.Schema, b SearchBounds, opts SearchOptions) (*Witness, bool, SearchStats, error) {
	return SearchDominanceOptsCtx(context.Background(), s1, s2, b, opts)
}

// SearchDominanceOptsCtx is SearchDominanceOpts with a context threaded
// through every certificate check.  Cancelling ctx stops the pair loop
// (sequential or parallel) and, when the decider is ctx-aware (EquivCtx
// or the default), aborts the chase and homomorphism searches mid-pair.
func SearchDominanceOptsCtx(ctx context.Context, s1, s2 *schema.Schema, b SearchBounds, opts SearchOptions) (*Witness, bool, SearchStats, error) {
	var stats SearchStats
	alphas := EnumerateMappings(s1, s2, b, &stats, 0)
	betas := EnumerateMappings(s2, s1, b, &stats, 1)
	// Filter by validity first (cheap relative to the identity check).
	var validAlphas []*mapping.Mapping
	for _, a := range alphas {
		ok, err := a.IsValid()
		if err != nil {
			return nil, false, stats, err
		}
		if ok {
			validAlphas = append(validAlphas, a)
		}
	}
	stats.ValidAlphas = int64(len(validAlphas))
	var validBetas []*mapping.Mapping
	for _, bm := range betas {
		ok, err := bm.IsValid()
		if err != nil {
			return nil, false, stats, err
		}
		if ok {
			validBetas = append(validBetas, bm)
		}
	}
	stats.ValidBetas = int64(len(validBetas))

	// Materialize the pair list in deterministic α-major order, applying
	// the MaxPairs cap before dispatch so truncation does not depend on
	// scheduling.
	type pair struct{ a, b *mapping.Mapping }
	var pairs []pair
	for _, a := range validAlphas {
		for _, bm := range validBetas {
			if b.MaxPairs > 0 && int64(len(pairs)) >= b.MaxPairs {
				stats.Truncated = true
				break
			}
			pairs = append(pairs, pair{a, bm})
		}
		if stats.Truncated {
			break
		}
	}

	decide := opts.decider()

	if opts.Workers <= 1 {
		for _, p := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, false, stats, err
			}
			stats.PairsChecked++
			ok, err := mapping.RoundTripIsIdentityCtx(ctx, p.a, p.b, decide)
			if err != nil {
				return nil, false, stats, err
			}
			if ok {
				return &Witness{Alpha: p.a, Beta: p.b}, true, stats, nil
			}
		}
		return nil, false, stats, nil
	}

	// Parallel loop: workers claim pair indexes in order and record the
	// lowest successful one; indexes above a known success are skipped.
	var (
		mu       sync.Mutex
		best     = -1
		firstErr error
		next     atomic.Int64
		checked  atomic.Int64
		wg       sync.WaitGroup
	)
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(pairs) {
					return
				}
				if err := ctx.Err(); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				mu.Lock()
				stop := firstErr != nil || (best >= 0 && best < i)
				mu.Unlock()
				if stop {
					return
				}
				checked.Add(1)
				ok, err := mapping.RoundTripIsIdentityCtx(ctx, pairs[i].a, pairs[i].b, decide)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if ok && (best < 0 || i < best) {
					best = i
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	stats.PairsChecked = checked.Load()
	if firstErr != nil {
		return nil, false, stats, firstErr
	}
	if best >= 0 {
		return &Witness{Alpha: pairs[best].a, Beta: pairs[best].b}, true, stats, nil
	}
	return nil, false, stats, nil
}

// SearchEquivalence searches for witnesses in both directions.
func SearchEquivalence(s1, s2 *schema.Schema, b SearchBounds) (bool, SearchStats, error) {
	return SearchEquivalenceOpts(s1, s2, b, SearchOptions{})
}

// SearchEquivalenceOpts is SearchEquivalence with SearchOptions applied
// to both directions.
func SearchEquivalenceOpts(s1, s2 *schema.Schema, b SearchBounds, opts SearchOptions) (bool, SearchStats, error) {
	return SearchEquivalenceOptsCtx(context.Background(), s1, s2, b, opts)
}

// SearchEquivalenceOptsCtx is SearchEquivalenceOpts with a context
// threaded through both directional searches.
func SearchEquivalenceOptsCtx(ctx context.Context, s1, s2 *schema.Schema, b SearchBounds, opts SearchOptions) (bool, SearchStats, error) {
	w1, ok1, st1, err := SearchDominanceOptsCtx(ctx, s1, s2, b, opts)
	if err != nil || !ok1 {
		return false, st1, err
	}
	_ = w1
	_, ok2, st2, err := SearchDominanceOptsCtx(ctx, s2, s1, b, opts)
	st := st1
	st.PairsChecked += st2.PairsChecked
	st.AlphaCandidates += st2.AlphaCandidates
	st.BetaCandidates += st2.BetaCandidates
	st.Truncated = st1.Truncated || st2.Truncated
	return ok2, st, err
}
