package dominance

import (
	"fmt"

	"keyedeq/internal/cq"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// This file implements the κ-reduction of Theorem 9: if S1 ≼ S2 by (α, β)
// then κ(S1) ≼ κ(S2) by (α_κ, β_κ), where
//
//	α_κ = π_κ ∘ α ∘ γ        β_κ = π_κ ∘ β ∘ δ
//
// γ re-creates the non-key attributes of S1 with fixed constants from the
// choice function f, and δ re-creates the non-key attributes of S2 using
// the four-case analysis over what each attribute receives under α
// (constants, non-key attributes, key attributes with the Lemma 7
// witness, or nothing relevant).

// Gamma builds γ : i(κ(S)) → i(S) for a keyed schema S: for each relation
// R with n key and m non-key attributes,
//
//	R(K1..Kn, c1..cm) :- R'(K1..Kn)
//
// where each c_i = f(T) for the attribute's type T.
func Gamma(s *schema.Schema, choice *value.Choice) (*mapping.Mapping, error) {
	ks, pos := schema.Kappa(s)
	qs := make([]*cq.Query, len(s.Relations))
	for i, r := range s.Relations {
		kr := ks.Relations[i]
		q := &cq.Query{HeadRel: r.Name}
		atom := cq.Atom{Rel: kr.Name}
		headByPos := make(map[int]cq.Term)
		for j := range kr.Attrs {
			v := cq.Var(fmt.Sprintf("K%d", j))
			atom.Vars = append(atom.Vars, v)
			headByPos[pos[i][j]] = cq.Term{Var: v}
		}
		q.Body = []cq.Atom{atom}
		for p, a := range r.Attrs {
			if t, ok := headByPos[p]; ok {
				q.Head = append(q.Head, t)
			} else {
				q.Head = append(q.Head, cq.C(choice.Of(a.Type)))
			}
		}
		qs[i] = q
	}
	return mapping.New(ks, s, qs)
}

// ProjKappa builds π_κ : i(S) → i(κ(S)) as a query mapping: each κ
// relation is the key projection of its original.
func ProjKappa(s *schema.Schema) (*mapping.Mapping, error) {
	ks, pos := schema.Kappa(s)
	qs := make([]*cq.Query, len(ks.Relations))
	for i, r := range s.Relations {
		kr := ks.Relations[i]
		q := &cq.Query{HeadRel: kr.Name}
		atom := cq.Atom{Rel: r.Name}
		for p := range r.Attrs {
			atom.Vars = append(atom.Vars, cq.Var(fmt.Sprintf("X%d", p)))
		}
		q.Body = []cq.Atom{atom}
		for _, p := range pos[i] {
			q.Head = append(q.Head, cq.Term{Var: atom.Vars[p]})
		}
		qs[i] = q
	}
	return mapping.New(s, ks, qs)
}

// Delta builds δ : i(κ(S2)) → i(S2) for a dominance pair (α, β) with
// α : S1 → S2 and β : S2 → S1, following the paper's four cases for each
// non-key attribute B (of type T) of an S2 relation R:
//
//  1. B receives a constant b under α            → b
//  2. B receives a non-key attribute of S1 under α → f(T)
//  3. B receives a key attribute K of S1 under α, and either B is
//     received by K under β or B participates in a join/selection in β
//     → the key variable K' of R that Lemma 7 guarantees shares B's value
//  4. otherwise → f(T)
func Delta(alpha, beta *mapping.Mapping, choice *value.Choice) (*mapping.Mapping, error) {
	s1, s2 := alpha.Src, alpha.Dst
	ks2, pos := schema.Kappa(s2)
	qs := make([]*cq.Query, len(s2.Relations))
	for j, r := range s2.Relations {
		kr := ks2.Relations[j]
		q := &cq.Query{HeadRel: r.Name}
		atom := cq.Atom{Rel: kr.Name}
		keyVarOf := make(map[int]cq.Var) // original key position -> κ var
		for kj := range kr.Attrs {
			v := cq.Var(fmt.Sprintf("K%d", kj))
			atom.Vars = append(atom.Vars, v)
			keyVarOf[pos[j][kj]] = v
		}
		q.Body = []cq.Atom{atom}
		defQuery := alpha.QueryFor(r.Name)
		recs := cq.Receives(defQuery)
		for p, a := range r.Attrs {
			if v, isKey := keyVarOf[p]; isKey {
				q.Head = append(q.Head, cq.Term{Var: v})
				continue
			}
			term, err := deltaCase(alpha, beta, s1, r, p, a.Type, recs[p], defQuery, keyVarOf, choice)
			if err != nil {
				return nil, err
			}
			q.Head = append(q.Head, term)
		}
		qs[j] = q
	}
	return mapping.New(ks2, s2, qs)
}

// deltaCase resolves one non-key attribute B = (r.Name, p) per the four
// cases.
func deltaCase(alpha, beta *mapping.Mapping, s1 *schema.Schema, r *schema.Relation,
	p int, typ value.Type, rec cq.Received, defQuery *cq.Query,
	keyVarOf map[int]cq.Var, choice *value.Choice) (cq.Term, error) {

	// Case 1: receives a constant.
	if rec.HasConst {
		return cq.C(rec.Const), nil
	}
	// Classify received S1 attributes.
	receivesNonKey := false
	var receivedKeys []cq.SchemaAttr
	for _, sa := range rec.Attrs {
		rel1 := s1.Relation(sa.Rel)
		if rel1 == nil {
			continue
		}
		if rel1.IsKeyPos(sa.Pos) {
			receivedKeys = append(receivedKeys, sa)
		} else {
			receivesNonKey = true
		}
	}
	// Case 2: receives a non-key attribute of S1.
	if receivesNonKey {
		return cq.C(choice.Of(typ)), nil
	}
	// Case 3: receives a key attribute K with the extra hypothesis.
	bRef := mapping.SchemaAttrRef{Rel: r.Name, Pos: p}
	for _, k := range receivedKeys {
		kRef := mapping.SchemaAttrRef{Rel: k.Rel, Pos: k.Pos}
		if beta.AttrReceives(kRef, bRef) || beta.InvolvedInCondition(bRef) {
			kp, ok := lemma7Witness(defQuery, r, p)
			if !ok {
				return cq.Term{}, fmt.Errorf("dominance: Lemma 7 witness missing for %s.%d; (α, β) is not a dominance pair", r.Name, p)
			}
			return cq.Term{Var: keyVarOf[kp]}, nil
		}
	}
	// Case 4.
	return cq.C(choice.Of(typ)), nil
}

// lemma7Witness finds the key position K′ of R whose head variable is in
// the same equality class as the head variable at position p in the query
// defining R under α — the witness Lemma 7 guarantees to exist.
func lemma7Witness(defQuery *cq.Query, r *schema.Relation, p int) (int, bool) {
	if defQuery.Head[p].IsConst {
		return 0, false
	}
	eq := cq.NewEqClasses(defQuery)
	v := defQuery.Head[p].Var
	for _, kp := range r.Key {
		h := defQuery.Head[kp]
		if !h.IsConst && eq.Same(h.Var, v) {
			return kp, true
		}
	}
	return 0, false
}

// KappaReduction constructs (α_κ, β_κ) from a dominance pair (α, β) per
// Theorem 9.  The caller may verify the result with VerifyKappaPair.
func KappaReduction(alpha, beta *mapping.Mapping, choice *value.Choice) (alphaK, betaK *mapping.Mapping, err error) {
	if choice == nil {
		choice = &value.Choice{}
	}
	gamma, err := Gamma(alpha.Src, choice)
	if err != nil {
		return nil, nil, fmt.Errorf("dominance: building γ: %v", err)
	}
	delta, err := Delta(alpha, beta, choice)
	if err != nil {
		return nil, nil, fmt.Errorf("dominance: building δ: %v", err)
	}
	pk2, err := ProjKappa(alpha.Dst)
	if err != nil {
		return nil, nil, err
	}
	pk1, err := ProjKappa(beta.Dst)
	if err != nil {
		return nil, nil, err
	}
	ag, err := mapping.Compose(alpha, gamma)
	if err != nil {
		return nil, nil, fmt.Errorf("dominance: composing α∘γ: %v", err)
	}
	alphaK, err = mapping.Compose(pk2, ag)
	if err != nil {
		return nil, nil, err
	}
	bd, err := mapping.Compose(beta, delta)
	if err != nil {
		return nil, nil, fmt.Errorf("dominance: composing β∘δ: %v", err)
	}
	betaK, err = mapping.Compose(pk1, bd)
	if err != nil {
		return nil, nil, err
	}
	return alphaK, betaK, nil
}

// VerifyKappaPair checks that β_κ ∘ α_κ is the identity on i(κ(S1)).
// κ-schemas are unkeyed, so the identity must hold with no dependencies.
func VerifyKappaPair(alphaK, betaK *mapping.Mapping) (bool, error) {
	comp, err := mapping.Compose(betaK, alphaK)
	if err != nil {
		return false, err
	}
	return comp.IsIdentityOn(nil)
}
