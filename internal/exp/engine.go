package exp

import (
	"context"
	"math/rand"
	"runtime"
	"time"

	"keyedeq/internal/containment"
	"keyedeq/internal/engine"
	"keyedeq/internal/gen"
	"keyedeq/internal/obs"
)

// EngineModeResult is one side of the engine-vs-sequential comparison,
// serialized into BENCH_engine.json by `keyedeq-bench -json`.
type EngineModeResult struct {
	Mode            string  `json:"mode"` // "sequential" or "engine"
	Pairs           int     `json:"pairs"`
	WallNs          int64   `json:"wall_ns"`
	NsPerOp         int64   `json:"ns_per_op"`
	Nodes           int64   `json:"nodes"`
	ChaseIterations int     `json:"chase_iterations"`
	CacheHits       int64   `json:"cache_hits"`
	CacheMisses     int64   `json:"cache_misses"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Deduped         int     `json:"deduped"`
	Workers         int     `json:"workers"`
}

// WorkerSweepEntry is one worker count's measurement in the engine
// record's multi-worker section: a fresh engine (cold caches) deciding
// the same corpus with the pool pinned to Workers goroutines.
type WorkerSweepEntry struct {
	Workers int   `json:"workers"`
	WallNs  int64 `json:"wall_ns"`
	NsPerOp int64 `json:"ns_per_op"`
	// Nodes and Holding fingerprint the work done: every entry must
	// report identical values, or the pool size changed verdicts.
	Nodes   int64 `json:"nodes"`
	Holding int   `json:"holding"`
}

// EngineBenchResult is the full regression record: both modes plus the
// derived speedup.  CI's bench smoke gate parses this and fails when the
// engine is slower than the sequential baseline.
type EngineBenchResult struct {
	Families []string         `json:"families"`
	Seq      EngineModeResult `json:"sequential"`
	Eng      EngineModeResult `json:"engine"`
	// Speedup is sequential wall time over engine wall time.
	Speedup float64 `json:"speedup"`
	// SecondPassHitRate is the engine cache hit rate when the same
	// corpus is decided a second time (1.0 when every pair hits).
	SecondPassHitRate float64 `json:"second_pass_hit_rate"`
	// GoMaxProcs records the parallelism available when the record was
	// taken: the sweep below is only a scaling claim when it exceeds
	// one, so the gate reads this before judging wall times.
	GoMaxProcs int `json:"gomaxprocs"`
	// NumCPU records the machine's logical CPU count alongside
	// GoMaxProcs, so a record taken with an artificially lowered
	// GOMAXPROCS is distinguishable from one taken on a genuinely
	// single-core machine.
	NumCPU int `json:"num_cpu"`
	// Sweep is the multi-worker section: the same corpus decided at
	// several fixed pool sizes.
	Sweep []WorkerSweepEntry `json:"worker_sweep"`
}

// E1EngineBatch compares the batch engine (parallel + canonical cache)
// against the sequential decision procedure on the generated pair
// corpus of every schema family, and reports both the printable table
// and the machine-readable regression record.  cacheSize 0 picks a
// bound fitting the whole corpus; negative disables the verdict cache.
// A non-nil o observes the engine runs (the sequential baseline stays
// unobserved, so exported totals describe the engine's work only).
func E1EngineBatch(pairsPerFamily, workers, cacheSize, seed int, o *obs.Obs) (*Table, *EngineBenchResult) {
	t := &Table{
		ID:    "E1",
		Title: "batch engine vs sequential equivalence (generated pair corpus)",
		Columns: []string{"family", "pairs", "seq wall", "engine wall", "speedup",
			"hit rate", "deduped", "holding"},
	}
	res := &EngineBenchResult{}
	var (
		totalSeq, totalEng time.Duration
		totalPairs         int
		totalSecondHits    int
	)
	for fi, fam := range gen.FamilyNames() {
		rng := rand.New(rand.NewSource(int64(seed + fi)))
		f, err := gen.PairCorpus(rng, fam, pairsPerFamily)
		if err != nil {
			t.Note("%s: %v", fam, err)
			continue
		}
		res.Families = append(res.Families, fam)
		jobs := make([]engine.Job, len(f.Pairs))
		for i, p := range f.Pairs {
			jobs[i] = engine.Job{Left: p.Left, Right: p.Right, Op: engine.OpEquivalent}
		}

		// Sequential baseline: one EquivalentUnder call per pair, no
		// sharing of any kind.
		seqStart := time.Now()
		seqHolding := 0
		for _, p := range f.Pairs {
			ok, st, err := containment.EquivalentUnder(p.Left, p.Right, f.Schema, f.Deps)
			if err != nil {
				t.Note("%s: sequential: %v", fam, err)
				continue
			}
			if ok {
				seqHolding++
			}
			res.Seq.Nodes += st.Nodes
			res.Seq.ChaseIterations += st.ChaseIterations
		}
		seqWall := time.Since(seqStart)

		// Engine: canonical dedup + verdict cache + worker pool.
		size := cacheSize
		if size == 0 {
			size = 4 * pairsPerFamily
		}
		e := engine.New(f.Schema, f.Deps, engine.Options{
			Workers:      workers,
			CacheSize:    size,
			DisableCache: cacheSize < 0,
			Now:          time.Now,
			Obs:          o,
		})
		rep := e.Run(context.Background(), jobs)
		res.Eng.Nodes += rep.Nodes
		res.Eng.ChaseIterations += rep.ChaseIterations
		res.Eng.Deduped += rep.Deduped
		res.Eng.Workers = rep.Workers

		second := e.Run(context.Background(), jobs)
		totalSecondHits += second.CacheHits

		cs := e.CacheStats()
		res.Eng.CacheHits += cs.Hits
		res.Eng.CacheMisses += cs.Misses

		totalSeq += seqWall
		totalEng += rep.Wall
		totalPairs += len(jobs)

		speedup := float64(seqWall) / float64(rep.Wall+1)
		t.Add(fam, len(jobs), seqWall, rep.Wall, speedup,
			cs.HitRate(), rep.Deduped, rep.Holding)
		if rep.Holding != seqHolding {
			t.Note("%s: VERDICT MISMATCH: engine holding=%d sequential=%d", fam, rep.Holding, seqHolding)
		}
	}
	res.Seq.Mode, res.Eng.Mode = "sequential", "engine"
	res.Seq.Pairs, res.Eng.Pairs = totalPairs, totalPairs
	res.Seq.WallNs, res.Eng.WallNs = totalSeq.Nanoseconds(), totalEng.Nanoseconds()
	if totalPairs > 0 {
		res.Seq.NsPerOp = totalSeq.Nanoseconds() / int64(totalPairs)
		res.Eng.NsPerOp = totalEng.Nanoseconds() / int64(totalPairs)
		// One division over the summed counts: averaging per-family
		// ratios accumulates floating-point error (six families of 1.0
		// summed to 0.99...9), tripping the exact-replay gate.
		res.SecondPassHitRate = float64(totalSecondHits) / float64(totalPairs)
	}
	if totalEng > 0 {
		res.Speedup = float64(totalSeq) / float64(totalEng)
	}
	if res.Eng.CacheHits+res.Eng.CacheMisses > 0 {
		res.Eng.CacheHitRate = float64(res.Eng.CacheHits) / float64(res.Eng.CacheHits+res.Eng.CacheMisses)
	}
	t.Note("total: seq %s, engine %s, speedup %.2fx, second-pass hit rate %.2f",
		totalSeq.Round(time.Millisecond), totalEng.Round(time.Millisecond),
		res.Speedup, res.SecondPassHitRate)
	return t, res
}

// E1WorkerSweep decides the same generated corpus once per worker
// count, each time on a fresh engine (cold verdict cache, cold
// canonical dedup), and reports wall time and the work fingerprint per
// count.  Every entry must land on identical Nodes and Holding totals:
// the pool size may move wall time, never verdicts.  The caller stores
// the sweep next to runtime.GOMAXPROCS(0) — on a single-core runner
// the wall times are honest but carry no scaling information.
func E1WorkerSweep(pairsPerFamily, cacheSize, seed int, counts []int) (*Table, []WorkerSweepEntry, error) {
	t := &Table{
		ID:      "E2",
		Title:   "engine worker sweep (same corpus, fixed pool sizes)",
		Columns: []string{"workers", "wall", "ns/op", "nodes", "holding"},
	}
	type famJobs struct {
		f    *gen.Family
		jobs []engine.Job
	}
	var fams []famJobs
	totalPairs := 0
	for fi, fam := range gen.FamilyNames() {
		rng := rand.New(rand.NewSource(int64(seed + fi)))
		f, err := gen.PairCorpus(rng, fam, pairsPerFamily)
		if err != nil {
			return nil, nil, err
		}
		jobs := make([]engine.Job, len(f.Pairs))
		for i, p := range f.Pairs {
			jobs[i] = engine.Job{Left: p.Left, Right: p.Right, Op: engine.OpEquivalent}
		}
		fams = append(fams, famJobs{f: f, jobs: jobs})
		totalPairs += len(jobs)
	}
	var sweep []WorkerSweepEntry
	for _, workers := range counts {
		entry := WorkerSweepEntry{Workers: workers}
		start := time.Now()
		for _, fj := range fams {
			size := cacheSize
			if size == 0 {
				size = 4 * pairsPerFamily
			}
			e := engine.New(fj.f.Schema, fj.f.Deps, engine.Options{
				Workers:      workers,
				CacheSize:    size,
				DisableCache: cacheSize < 0,
				Now:          time.Now,
			})
			rep := e.Run(context.Background(), fj.jobs)
			entry.Nodes += rep.Nodes
			entry.Holding += rep.Holding
		}
		entry.WallNs = time.Since(start).Nanoseconds()
		if totalPairs > 0 {
			entry.NsPerOp = entry.WallNs / int64(totalPairs)
		}
		sweep = append(sweep, entry)
		t.Add(entry.Workers, time.Duration(entry.WallNs), entry.NsPerOp, entry.Nodes, entry.Holding)
	}
	t.Note("gomaxprocs %d, %d pairs per pass", runtime.GOMAXPROCS(0), totalPairs)
	return t, sweep, nil
}
