package exp

import (
	"fmt"
	"math/rand"
	"time"

	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/dominance"
	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/invariant"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
)

// T3 — containment scaling by query shape.  For each shape and size,
// decide q(n) ⊑ q(n-1) and q(n-1) ⊑ q(n) and report time and search
// nodes.  Chains and stars stay polynomial (the greedy join order binds
// variables incrementally); cliques grow combinatorially.
func T3Containment(maxChain, maxStar, maxClique int) *Table {
	t := &Table{
		ID:      "T3",
		Title:   "CQ containment scaling (Chandra-Merlin homomorphism test)",
		Columns: []string{"shape", "size", "contained", "time", "nodes"},
	}
	gs := gen.GraphSchema()
	run := func(shape string, build func(int) *cq.Query, n int) {
		// Unary heads make the classical containments hold: "has an
		// outgoing n-chain" implies "has an outgoing (n-1)-chain", and
		// likewise for stars and cliques.
		q1 := unaryHead(build(n))
		q2 := unaryHead(build(n - 1))
		var ok bool
		var stats containment.Stats
		d := timed(func() {
			var err error
			ok, stats, err = containment.ContainedUnder(q1, q2, gs, nil)
			invariant.Must(err)
		})
		t.Add(shape, n, ok, d, stats.Nodes)
	}
	for n := 2; n <= maxChain; n += 2 {
		run("chain", gen.ChainQuery, n)
	}
	for n := 2; n <= maxStar; n += 2 {
		run("star", gen.StarQuery, n)
	}
	for n := 3; n <= maxClique; n++ {
		run("clique", gen.CliqueQuery, n)
	}
	t.Note("chain(n) ⊑ chain(n-1) is true (longer paths imply shorter); star/star likewise")
	return t
}

// unaryHead clones q and projects its head to the first term, turning
// the endpoint queries into the boolean-style reachability patterns of
// the classical containment examples.
func unaryHead(q *cq.Query) *cq.Query {
	c := q.Clone()
	c.Head = c.Head[:1]
	return c
}

// T4 — chase scaling: canonical instances of growing size chased with a
// growing number of key EGDs.
func T4Chase(sizes []int, depCounts []int, seed int64) *Table {
	t := &Table{
		ID:      "T4",
		Title:   "Chase scaling (key EGDs over labeled-null tableaux)",
		Columns: []string{"rows", "egds", "iterations", "merges", "time"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, rows := range sizes {
		for _, nd := range depCounts {
			s, deps := chaseWorkloadSchema(nd)
			tb := chase.NewTableau(s)
			fillChaseWorkload(tb, s, rng, rows)
			var stats chase.Stats
			d := timed(func() {
				var err error
				stats, err = tb.Run(deps)
				invariant.Must(err)
			})
			t.Add(rows, len(deps), stats.Iterations, stats.Merges, d)
		}
	}
	return t
}

// chaseWorkloadSchema builds nd relations R0..R(nd-1), each keyed on its
// first attribute, yielding nd key EGDs.
func chaseWorkloadSchema(nd int) (*schema.Schema, []fd.FD) {
	rs := make([]*schema.Relation, nd)
	for i := range rs {
		rs[i] = &schema.Relation{
			Name: fmt.Sprintf("R%d", i),
			Attrs: []schema.Attribute{
				{Name: "k", Type: 1},
				{Name: "a", Type: 2},
				{Name: "b", Type: 3},
			},
			Key: []int{0},
		}
	}
	s := schema.MustNew(rs...)
	return s, fd.KeyFDs(s)
}

// fillChaseWorkload adds rows whose keys collide frequently, forcing
// merge cascades.
func fillChaseWorkload(tb *chase.Tableau, s *schema.Schema, rng *rand.Rand, rows int) {
	nKeys := rows/3 + 1
	keys := make([]chase.Term, nKeys)
	for i := range keys {
		keys[i] = tb.NewNull(1)
	}
	for i := 0; i < rows; i++ {
		rel := s.Relations[rng.Intn(len(s.Relations))]
		cells := []chase.Term{
			keys[rng.Intn(nKeys)],
			tb.NewNull(2),
			tb.NewNull(3),
		}
		invariant.Must(tb.AddRow(rel.Name, cells))
	}
}

// T5 — mapping composition and the symbolic identity test as schema
// width grows.
func T5MappingIdentity(maxAttrs int, seed int64) *Table {
	t := &Table{
		ID:      "T5",
		Title:   "Mapping composition + β∘α=id decision vs schema width",
		Columns: []string{"attrs", "relations", "compose", "identity-test"},
	}
	rng := rand.New(rand.NewSource(seed))
	for attrs := 1; attrs <= maxAttrs; attrs++ {
		s1 := gen.RandomKeyedSchema(rng, 2, attrs, 3)
		s2, iso := schema.RandomIsomorph(s1, rng)
		alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
		invariant.Must(err)
		var comp *mapping.Mapping
		dCompose := timed(func() {
			comp, err = mapping.Compose(beta, alpha)
			invariant.Must(err)
		})
		dIdentity := timed(func() {
			ok, err := comp.IsIdentityOn(fd.KeyFDs(s1))
			invariant.Mustf(err == nil && ok, "identity failed: %v %v", ok, err)
		})
		t.Add(attrs, len(s1.Relations), dCompose, dIdentity)
	}
	return t
}

// T7 — decision procedures compared: the canonical-form test vs bounded
// mapping search on isomorphic pairs of growing width.  Theorem 13 is
// what licenses the fast path; this table shows what it saves.
func T7DecisionCompare(maxAttrs int, bounds dominance.SearchBounds, seed int64) *Table {
	t := &Table{
		ID:      "T7",
		Title:   "Deciding equivalence: canonical form vs bounded mapping search",
		Columns: []string{"attrs", "case", "canonical", "search", "pairs-checked", "speedup"},
	}
	run := func(attrs int, kind string, s1, s2 *schema.Schema, expectEq bool) {
		var isoRes bool
		dCanon := timed(func() {
			for i := 0; i < 1000; i++ {
				isoRes = schema.Isomorphic(s1, s2)
			}
		})
		dCanon /= 1000
		var stats dominance.SearchStats
		var searchRes bool
		dSearch := timed(func() {
			var err error
			searchRes, stats, err = dominance.SearchEquivalence(s1, s2, bounds)
			invariant.Must(err)
		})
		if isoRes != expectEq {
			t.Note("fixture broken at attrs=%d/%s", attrs, kind)
		}
		if isoRes != searchRes && !stats.Truncated {
			t.Note("DISAGREEMENT at attrs=%d/%s", attrs, kind)
		}
		speedup := "-"
		if dCanon > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(dSearch)/float64(dCanon))
		}
		t.Add(attrs, kind, dCanon, dSearch, stats.PairsChecked, speedup)
	}
	rng := rand.New(rand.NewSource(seed))
	for attrs := 1; attrs <= maxAttrs; attrs++ {
		// Worst-case shape: one relation, all attributes one type (the
		// head-assignment combinatorics of F2).
		r := &schema.Relation{Name: "R", Key: []int{0}}
		for p := 0; p < attrs; p++ {
			r.Attrs = append(r.Attrs, schema.Attribute{
				Name: fmt.Sprintf("a%d", p), Type: 1,
			})
		}
		s1 := schema.MustNew(r)
		// Isomorphic pair: search succeeds (early exit on the witness).
		s2, _ := schema.RandomIsomorph(s1, rng)
		run(attrs, "isomorphic", s1, s2, true)
		// Non-isomorphic near-miss (widened key): the search must
		// exhaust the candidate space — the exponential case Theorem 13
		// spares us.
		if attrs >= 2 {
			r3 := r.Clone()
			r3.Key = []int{0, 1}
			s3 := schema.MustNew(r3)
			run(attrs, "near-miss", s1, s3, false)
		}
	}
	t.Note("canonical form is the Theorem 13 fast path; exhausting the search space explodes with width")
	return t
}

// T8 — FD closure and implication scaling.
func T8FDClosure(attrCounts, depCounts []int, seed int64) *Table {
	t := &Table{
		ID:      "T8",
		Title:   "FD closure / implication scaling (Armstrong fixpoint)",
		Columns: []string{"attrs", "deps", "closure/op", "implies/op"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, na := range attrCounts {
		for _, nd := range depCounts {
			all := fd.Set(0)
			for p := 0; p < na; p++ {
				all = all.Union(fd.NewSet(p))
			}
			deps := make([]fd.Dep, nd)
			for i := range deps {
				deps[i] = fd.Dep{
					X: fd.Set(rng.Int63()) & all,
					Y: fd.Set(rng.Int63()) & all,
				}
			}
			const reps = 200
			dClosure := timed(func() {
				for i := 0; i < reps; i++ {
					fd.Closure(fd.Set(rng.Int63())&all, deps)
				}
			})
			dImplies := timed(func() {
				for i := 0; i < reps; i++ {
					fd.Implies(deps, fd.Dep{
						X: fd.Set(rng.Int63()) & all,
						Y: fd.Set(rng.Int63()) & all,
					})
				}
			})
			t.Add(na, nd, perOp(dClosure, reps), perOp(dImplies, reps))
		}
	}
	return t
}

// F1 — containment time vs query size, one series per shape (the figure
// version of T3).
func F1ContainmentCurve(maxChain, maxStar, maxClique int) *Table {
	t := &Table{
		ID:      "F1",
		Title:   "Figure: containment time vs query size (series per shape)",
		Columns: []string{"shape", "size", "micros", "nodes"},
	}
	gs := gen.GraphSchema()
	series := []struct {
		name  string
		build func(int) *cq.Query
		max   int
	}{
		{"chain", gen.ChainQuery, maxChain},
		{"star", gen.StarQuery, maxStar},
		{"clique", gen.CliqueQuery, maxClique},
	}
	for _, sr := range series {
		start := 2
		if sr.name == "clique" {
			start = 3
		}
		for n := start; n <= sr.max; n++ {
			q1 := unaryHead(sr.build(n))
			q2 := unaryHead(sr.build(n - 1))
			var stats containment.Stats
			d := timed(func() {
				var err error
				_, stats, err = containment.ContainedUnder(q1, q2, gs, nil)
				invariant.Must(err)
			})
			t.Add(sr.name, n, float64(d)/float64(time.Microsecond), stats.Nodes)
		}
	}
	return t
}

// F2 — the size of the candidate-mapping search space vs schema width:
// the reason Theorem 13's syntactic test matters.
func F2SearchSpace(maxAttrs int, bounds dominance.SearchBounds) *Table {
	t := &Table{
		ID:      "F2",
		Title:   "Figure: candidate views per relation vs schema width",
		Columns: []string{"attrs", "views", "alpha-mappings"},
	}
	for attrs := 1; attrs <= maxAttrs; attrs++ {
		// One relation, all attributes one type: worst case for head
		// assignment combinatorics.
		r := &schema.Relation{Name: "R", Key: []int{0}}
		for p := 0; p < attrs; p++ {
			r.Attrs = append(r.Attrs, schema.Attribute{
				Name: fmt.Sprintf("a%d", p), Type: 1,
			})
		}
		s := schema.MustNew(r)
		views := dominance.EnumerateViews(s, s.Relations[0], bounds)
		t.Add(attrs, len(views), len(views)) // one relation: mappings = views
	}
	t.Note("bounds: MaxAtoms=%d MaxEqs=%d (capped at MaxViews=%d)",
		bounds.MaxAtoms, bounds.MaxEqs, bounds.MaxViews)
	return t
}

// F3 — chase fixpoint iterations and time vs instance size, one series
// per dependency count.
func F3ChaseCurve(sizes []int, depCounts []int, seed int64) *Table {
	t := &Table{
		ID:      "F3",
		Title:   "Figure: chase iterations/time vs instance size (series per #EGDs)",
		Columns: []string{"egds", "rows", "iterations", "merges", "micros"},
	}
	rng := rand.New(rand.NewSource(seed))
	for _, nd := range depCounts {
		for _, rows := range sizes {
			s, deps := chaseWorkloadSchema(nd)
			tb := chase.NewTableau(s)
			fillChaseWorkload(tb, s, rng, rows)
			var stats chase.Stats
			d := timed(func() {
				var err error
				stats, err = tb.Run(deps)
				invariant.Must(err)
			})
			t.Add(len(deps), rows, stats.Iterations, stats.Merges,
				float64(d)/float64(time.Microsecond))
		}
	}
	return t
}
