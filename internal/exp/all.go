package exp

import (
	"keyedeq/internal/dominance"
	"keyedeq/internal/gen"
)

// Config scales the full suite.  Quick settings finish in seconds; Full
// settings stress the exponential corners.
type Config struct {
	Quick bool
}

// All regenerates every table and figure of the evaluation suite in
// order.
func All(cfg Config) []*Table {
	t1Space := gen.SchemaSpace{MaxRelations: 1, MaxAttrs: 2, Types: 2}
	t1Bounds := dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 2000, MaxPairs: 200_000}
	trials := 60
	chainMax, starMax, cliqueMax := 12, 12, 4
	chaseSizes := []int{100, 300, 1000}
	chaseDeps := []int{1, 4, 16}
	fdAttrs := []int{8, 16, 32}
	fdDeps := []int{8, 32, 128}
	searchAttrs := 3
	if !cfg.Quick {
		t1Space = gen.SchemaSpace{MaxRelations: 2, MaxAttrs: 2, Types: 2}
		trials = 200
		chainMax, starMax, cliqueMax = 14, 14, 5
		chaseSizes = []int{100, 1000, 10000}
		chaseDeps = []int{1, 4, 16}
		fdAttrs = []int{8, 16, 32, 64}
		fdDeps = []int{8, 32, 128, 256}
		searchAttrs = 4
	}
	searchBounds := dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 20000, MaxPairs: 500_000}
	enginePairs, engineWorkers := 300, 0
	if !cfg.Quick {
		enginePairs = 1000
	}
	e1, _ := E1EngineBatch(enginePairs, engineWorkers, 0, 11, nil)
	h1, _ := H1HomSearch(enginePairs, 21, nil)
	return []*Table{
		T1TheoremExhaustive(t1Space, t1Bounds),
		T2SaturationProduct(trials, 1),
		TLemmas(trials, 2),
		T3Containment(chainMax, starMax, cliqueMax),
		T4Chase(chaseSizes, chaseDeps, 3),
		T5MappingIdentity(5, 4),
		T6KappaReduction(trials, 5),
		T7DecisionCompare(searchAttrs, searchBounds, 6),
		T8FDClosure(fdAttrs, fdDeps, 7),
		T9INDMigration(trials/4+5, 9),
		T10Capacity(4),
		T11Yannakakis([]int{2, 4, 6, 8}, 40),
		T12UCQContainment([]int{1, 2, 4, 8}, 3),
		e1,
		h1,
		F1ContainmentCurve(chainMax, starMax, cliqueMax),
		F2SearchSpace(searchAttrs+1, searchBounds),
		F3ChaseCurve(chaseSizes, chaseDeps, 8),
	}
}
