package exp

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"keyedeq/internal/dominance"
	"keyedeq/internal/gen"
)

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "TX", Title: "demo", Columns: []string{"a", "bb"}}
	tb.Add(1, 2.5)
	tb.Add("long-cell", time.Millisecond)
	tb.Note("n=%d", 7)
	s := tb.String()
	for _, want := range []string{"TX: demo", "a", "bb", "long-cell", "2.5", "note: n=7", "1ms"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestT1AgreesPerfectly(t *testing.T) {
	tb := T1TheoremExhaustive(
		gen.SchemaSpace{MaxRelations: 1, MaxAttrs: 2, Types: 2},
		dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 2000, MaxPairs: 100_000},
	)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	row := tb.Rows[0]
	pairs := row[1]
	agree := row[4]
	if agree != pairs+"/"+pairs {
		t.Errorf("T1 disagreement: agree=%s pairs=%s\n%s", agree, pairs, tb)
	}
	if row[5] != "0" {
		t.Errorf("T1 truncated searches: %s", row[5])
	}
	for _, n := range tb.Notes {
		if strings.Contains(n, "DISAGREEMENT") {
			t.Errorf("T1 noted a disagreement: %s", n)
		}
	}
}

func TestT2NoViolations(t *testing.T) {
	tb := T2SaturationProduct(20, 1)
	for _, row := range tb.Rows {
		if row[3] != "0" || row[4] != "0" {
			t.Errorf("T2 violations: %v", row)
		}
	}
}

func TestTLemmasNoViolations(t *testing.T) {
	tb := TLemmas(20, 2)
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Errorf("lemma violations: %v", row)
		}
	}
}

func TestT6NoFailures(t *testing.T) {
	tb := T6KappaReduction(10, 3)
	for _, row := range tb.Rows {
		if row[3] != "0" {
			t.Errorf("T6 failures: %v", row)
		}
	}
}

func TestT3ContainmentShape(t *testing.T) {
	tb := T3Containment(4, 4, 3)
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// chain(n) ⊑ chain(n-1) must be true everywhere.
	for _, row := range tb.Rows {
		if row[0] == "chain" && row[2] != "true" {
			t.Errorf("chain containment should hold: %v", row)
		}
	}
}

func TestT4AndF3Run(t *testing.T) {
	tb := T4Chase([]int{50}, []int{2}, 1)
	if len(tb.Rows) != 1 {
		t.Fatalf("T4 rows = %d", len(tb.Rows))
	}
	f3 := F3ChaseCurve([]int{50, 100}, []int{2}, 1)
	if len(f3.Rows) != 2 {
		t.Fatalf("F3 rows = %d", len(f3.Rows))
	}
}

func TestT5T7T8Run(t *testing.T) {
	if len(T5MappingIdentity(3, 1).Rows) != 3 {
		t.Error("T5 row count")
	}
	tb := T7DecisionCompare(2, dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 2000, MaxPairs: 100_000}, 1)
	// attrs=1 has only the isomorphic case; attrs=2 adds the near-miss.
	if len(tb.Rows) != 3 {
		t.Errorf("T7 row count = %d", len(tb.Rows))
	}
	for _, n := range tb.Notes {
		if strings.Contains(n, "DISAGREEMENT") || strings.Contains(n, "broken") {
			t.Errorf("T7 problem: %s", n)
		}
	}
	if len(T8FDClosure([]int{8}, []int{8}, 1).Rows) != 1 {
		t.Error("T8 row count")
	}
}

func TestF1F2Run(t *testing.T) {
	f1 := F1ContainmentCurve(3, 3, 3)
	if len(f1.Rows) == 0 {
		t.Error("F1 empty")
	}
	f2 := F2SearchSpace(3, dominance.SearchBounds{MaxAtoms: 1, MaxEqs: 1, MaxViews: 5000})
	if len(f2.Rows) != 3 {
		t.Error("F2 row count")
	}
	// Views must grow with width.
	v1, _ := strconv.Atoi(f2.Rows[0][1])
	v3, _ := strconv.Atoi(f2.Rows[2][1])
	if v3 <= v1 {
		t.Errorf("F2 not growing: %v", f2.Rows)
	}
}

func TestAllQuickRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite; skipped in -short")
	}
	tables := All(Config{Quick: true})
	if len(tables) != 18 {
		t.Fatalf("All returned %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
	}
}

func TestT9NoFailures(t *testing.T) {
	tb := T9INDMigration(8, 1)
	for _, row := range tb.Rows {
		if row[5] != "0" {
			t.Errorf("T9 failures: %v", row)
		}
		if row[2] != row[1] || row[3] != row[1] {
			t.Errorf("T9 verification incomplete: %v", row)
		}
	}
}

func TestT10CapacityShape(t *testing.T) {
	tb := T10Capacity(3)
	// The type-swapped pair must be card-equal but not cq-equiv at
	// every size; the isomorphic pair must be both.
	for _, row := range tb.Rows {
		switch row[0] {
		case "type-swapped keys":
			if row[4] != "true" || row[5] != "false" {
				t.Errorf("degeneracy row wrong: %v", row)
			}
		case "isomorphic":
			if row[4] != "true" || row[5] != "true" {
				t.Errorf("isomorphic row wrong: %v", row)
			}
		case "extra attribute", "key widened":
			if row[5] != "false" {
				t.Errorf("non-equivalent pair marked equivalent: %v", row)
			}
		}
	}
}

func TestT11YannakakisWins(t *testing.T) {
	tb := T11Yannakakis([]int{4}, 30)
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	row := tb.Rows[0]
	plain, _ := strconv.Atoi(row[2])
	yann, _ := strconv.Atoi(row[3])
	if yann >= plain {
		t.Errorf("Yannakakis nodes %d should beat plain %d", yann, plain)
	}
	pruned, _ := strconv.Atoi(row[4])
	if pruned == 0 {
		t.Error("reducer pruned nothing")
	}
}

func TestT12UCQContained(t *testing.T) {
	tb := T12UCQContainment([]int{1, 2}, 3)
	for _, row := range tb.Rows {
		if row[2] != "true" {
			t.Errorf("UCQ containment should hold: %v", row)
		}
	}
}
