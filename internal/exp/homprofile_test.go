package exp

import (
	"context"
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
)

// Scratch benchmarks comparing the naive oracle against the adaptive
// default on the H1 corpus's small-instance families, where the
// per-search prologue dominates wall time.

func homBenchCases(b *testing.B, fam string) []HomCase {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	f, err := gen.PairCorpus(rng, fam, 50)
	if err != nil {
		b.Fatal(err)
	}
	cases, err := PrepareHomCases(f)
	if err != nil {
		b.Fatal(err)
	}
	return cases
}

func benchHomMode(b *testing.B, fam string, mode cq.SearchMode) {
	cases := homBenchCases(b, fam)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cases {
			if _, _, _, err := cq.FindAnswerBindingCtxMode(ctx, c.Q, c.DB, c.Want, mode); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkHomChainNaive(b *testing.B)    { benchHomMode(b, "graph-chain", cq.SearchNaive) }
func BenchmarkHomChainAdaptive(b *testing.B) { benchHomMode(b, "graph-chain", cq.SearchAdaptive) }
func BenchmarkHomKeyedNaive(b *testing.B)    { benchHomMode(b, "keyed", cq.SearchNaive) }
func BenchmarkHomKeyedAdaptive(b *testing.B) { benchHomMode(b, "keyed", cq.SearchAdaptive) }

func BenchmarkHomWideNaive(b *testing.B)    { benchHomMode(b, "wide", cq.SearchNaive) }
func BenchmarkHomWideAdaptive(b *testing.B) { benchHomMode(b, "wide", cq.SearchAdaptive) }
func BenchmarkHomWidePlanned(b *testing.B)  { benchHomMode(b, "wide", cq.SearchPlanned) }
func BenchmarkHomLongAdaptive(b *testing.B) { benchHomMode(b, "graph-long", cq.SearchAdaptive) }
func BenchmarkHomLongPlanned(b *testing.B)  { benchHomMode(b, "graph-long", cq.SearchPlanned) }
func BenchmarkHomChainPlanned(b *testing.B) { benchHomMode(b, "graph-chain", cq.SearchPlanned) }
func BenchmarkHomChainScan(b *testing.B)    { benchHomMode(b, "graph-chain", cq.SearchStreamed) }

func BenchmarkHomStarNaive(b *testing.B)    { benchHomMode(b, "graph-star", cq.SearchNaive) }
func BenchmarkHomStarAdaptive(b *testing.B) { benchHomMode(b, "graph-star", cq.SearchAdaptive) }

func BenchmarkHomLongNaive(b *testing.B) { benchHomMode(b, "graph-long", cq.SearchNaive) }
