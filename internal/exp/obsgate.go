package exp

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
	"keyedeq/internal/obs"
)

// ObsGateResult is the observability overhead gate's machine-readable
// record: the same default-runtime (adaptive) searches are timed with a
// plain context and
// with metrics collection enabled, interleaved, and the minima
// compared.  Node totals are tracked per family so the gate can also
// prove the instrumentation did not change search behavior against the
// committed H1 record.
type ObsGateResult struct {
	Trials int `json:"trials"`
	// PlainNs and ObsNs are the minimum wall time over the trials for
	// each arm.
	PlainNs int64 `json:"plain_wall_ns"`
	ObsNs   int64 `json:"obs_wall_ns"`
	// Overhead (1.0 = free) is ObsNs over PlainNs.  Scheduler and GC
	// noise on a shared box is strictly additive, so the minimum over
	// enough interleaved trials converges to the true cost of each arm
	// and the ratio of minima isolates the instrumentation; per-trial
	// ratios, by contrast, swing with whatever interference hit that
	// trial.  MedianRatio is kept alongside for diagnostics.
	Overhead    float64 `json:"overhead"`
	MedianRatio float64 `json:"median_trial_ratio"`
	// Nodes is the planned node total of one pass over every case; both
	// arms must produce it identically.
	Nodes int64 `json:"nodes"`
	// Searches is the case count of one pass.
	Searches int `json:"searches"`
	// FamilyNodes maps family name to its planned node total, for
	// cross-checking against HomFamilyResult.PlannedNodes.
	FamilyNodes map[string]int64 `json:"family_planned_nodes"`
	// Reconciled reports the exported search counters matched the
	// per-search sums exactly across every observed trial.
	Reconciled bool `json:"reconciled"`
}

// ObsOverheadGate measures what metrics collection costs the default
// (adaptive) homomorphism search, the hottest instrumented path.  It
// must run the same mode as H1HomSearch's measured arm, or the
// FamilyNodes cross-check against the committed record breaks.  It prepares the
// same corpus H1HomSearch uses (same seed convention), then alternates
// trials of the full case list between a plain context (the unobserved
// fast path) and a metrics-only observer (counters and histograms, no
// span sink).  Alternation keeps cache and thermal drift from loading
// one arm; the minima are compared.
func ObsOverheadGate(pairsPerFamily, seed, trials int) (*Table, *ObsGateResult, error) {
	t := &Table{
		ID:      "O1",
		Title:   "observability overhead (planned search, metrics on vs off)",
		Columns: []string{"trial", "plain wall", "observed wall"},
	}
	type famCases struct {
		name  string
		cases []HomCase
	}
	var fams []famCases
	for fi, fam := range gen.FamilyNames() {
		rng := rand.New(rand.NewSource(int64(seed + fi)))
		f, err := gen.PairCorpus(rng, fam, pairsPerFamily)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %v", fam, err)
		}
		cases, err := PrepareHomCases(f)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: prepare: %v", fam, err)
		}
		fams = append(fams, famCases{name: fam, cases: cases})
	}

	res := &ObsGateResult{Trials: trials, FamilyNodes: make(map[string]int64)}
	runAll := func(ctx context.Context, perFamily bool) (int64, error) {
		var total int64
		for _, fc := range fams {
			var famTotal int64
			for _, c := range fc.cases {
				_, _, st, err := cq.FindAnswerBindingCtxMode(ctx, c.Q, c.DB, c.Want, cq.SearchAdaptive)
				if err != nil {
					return 0, fmt.Errorf("%s: %v", fc.name, err)
				}
				famTotal += st.Nodes
			}
			if perFamily {
				res.FamilyNodes[fc.name] = famTotal
			}
			total += famTotal
		}
		return total, nil
	}

	// One untimed warmup pass per arm populates allocator caches and the
	// branch predictor before anything is measured, and records the
	// reference node totals.
	plainNodes, err := runAll(context.Background(), true)
	if err != nil {
		return nil, nil, err
	}
	reg := obs.NewRegistry()
	obsCtx := obs.NewContext(context.Background(), &obs.Obs{Reg: reg})
	obsNodes, err := runAll(obsCtx, false)
	if err != nil {
		return nil, nil, err
	}
	if plainNodes != obsNodes {
		return nil, nil, fmt.Errorf("metrics changed the search: %d nodes observed, %d plain", obsNodes, plainNodes)
	}
	res.Nodes = plainNodes
	for _, fc := range fams {
		res.Searches += len(fc.cases)
	}

	// Each timed sample is several consecutive passes: longer samples
	// keep scheduler interruptions small relative to what is measured.
	const passesPerSample = 3
	var minPlain, minObs time.Duration
	ratios := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		var terr error
		runPlain := func() time.Duration {
			return timed(func() {
				for p := 0; p < passesPerSample && terr == nil; p++ {
					_, terr = runAll(context.Background(), false)
				}
			})
		}
		runObs := func() time.Duration {
			return timed(func() {
				for p := 0; p < passesPerSample && terr == nil; p++ {
					_, terr = runAll(obsCtx, false)
				}
			})
		}
		// Alternate which arm goes first so per-trial drift (GC debt,
		// frequency scaling) cannot systematically favor one arm.
		var plain, observed time.Duration
		if i%2 == 0 {
			plain, observed = runPlain(), runObs()
		} else {
			observed, plain = runObs(), runPlain()
		}
		if terr != nil {
			return nil, nil, terr
		}
		if i == 0 || plain < minPlain {
			minPlain = plain
		}
		if i == 0 || observed < minObs {
			minObs = observed
		}
		if plain > 0 {
			ratios = append(ratios, float64(observed)/float64(plain))
		}
		t.Add(i+1, plain, observed)
	}
	res.PlainNs = minPlain.Nanoseconds()
	res.ObsNs = minObs.Nanoseconds()
	if res.PlainNs > 0 {
		res.Overhead = float64(res.ObsNs) / float64(res.PlainNs)
	}
	sort.Float64s(ratios)
	if n := len(ratios); n > 0 {
		res.MedianRatio = ratios[n/2]
		if n%2 == 0 {
			res.MedianRatio = (ratios[n/2-1] + ratios[n/2]) / 2
		}
	}

	// Every observed pass ran the same cases, so the counters must hold
	// exact multiples of the single-pass totals: passesPerSample per
	// timed trial plus the warmup.
	passes := int64(trials)*passesPerSample + 1
	res.Reconciled = reg.C(obs.CSearchNodes).Value() == passes*res.Nodes &&
		reg.C(obs.CSearches).Value() == passes*int64(res.Searches)
	t.Note("min plain %s, min observed %s, overhead %.4fx (median trial ratio %.4fx), %d searches/pass, reconciled %v",
		minPlain.Round(time.Microsecond), minObs.Round(time.Microsecond),
		res.Overhead, res.MedianRatio, res.Searches, res.Reconciled)
	return t, res, nil
}
