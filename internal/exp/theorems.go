package exp

import (
	"fmt"
	"math/rand"

	"keyedeq/internal/cq"
	"keyedeq/internal/dominance"
	"keyedeq/internal/gen"
	"keyedeq/internal/instance"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// T1 — Theorem 13, exhaustively.  Enumerate every keyed schema in a small
// space; for every unordered pair, compare the canonical-form isomorphism
// test against bounded conjunctive-mapping search.  The theorem predicts
// perfect agreement: equivalent ⟺ isomorphic.
func T1TheoremExhaustive(space gen.SchemaSpace, bounds dominance.SearchBounds) *Table {
	t := &Table{
		ID:      "T1",
		Title:   "Theorem 13 exhaustively: bounded mapping search vs isomorphism",
		Columns: []string{"schemas", "pairs", "isomorphic", "search-equiv", "agree", "truncated"},
	}
	schemas := gen.EnumerateKeyedSchemas(space)
	var pairs, iso, searchEq, agree, truncated int
	for i, s1 := range schemas {
		for j := i; j < len(schemas); j++ {
			s2 := schemas[j]
			pairs++
			isIso := schema.Isomorphic(s1, s2)
			eq, stats, err := dominance.SearchEquivalence(s1, s2, bounds)
			if err != nil {
				t.Note("error on pair (%d,%d): %v", i, j, err)
				continue
			}
			if stats.Truncated {
				truncated++
			}
			if isIso {
				iso++
			}
			if eq {
				searchEq++
			}
			if eq == isIso {
				agree++
			} else {
				t.Note("DISAGREEMENT on pair (%d,%d):\n%s\nvs\n%s", i, j, s1, s2)
			}
		}
	}
	t.Add(len(schemas), pairs, iso, searchEq,
		fmt.Sprintf("%d/%d", agree, pairs), truncated)
	t.Note("Theorem 13 predicts agree = pairs (equivalence ⟺ isomorphism)")
	return t
}

// T2 — Lemmas 1 and 2 on random queries.  Random identity-join queries
// are saturated and productized; answers are compared on random
// instances.  The lemmas predict zero violations.
func T2SaturationProduct(trials int, seed int64) *Table {
	t := &Table{
		ID:      "T2",
		Title:   "Lemmas 1-2: ij-saturation and product queries on random inputs",
		Columns: []string{"atoms", "queries", "instances", "lemma1-viol", "lemma2-viol"},
	}
	rng := rand.New(rand.NewSource(seed))
	s := schema.MustParse("R(a:T1, b:T1)\nP(c:T1, d:T1)")
	for atoms := 1; atoms <= 5; atoms++ {
		var queries, instances, v1, v2 int
		for trial := 0; trial < trials; trial++ {
			q := randomIdentityJoinQuery(rng, atoms)
			if q.Validate(s) != nil {
				continue
			}
			queries++
			sat, err := cq.Saturate(q)
			if err != nil {
				continue
			}
			prod, err := cq.ToProduct(sat)
			if err != nil {
				v1++
				continue
			}
			under, err := cq.ProductUnder(q)
			if err != nil {
				v2++
				continue
			}
			for k := 0; k < 10; k++ {
				d := randomInstance(s, rng, 4, 3)
				instances++
				aSat, err1 := cq.Eval(sat, d)
				aProd, err2 := cq.Eval(prod, d)
				if err1 != nil || err2 != nil || !aSat.Equal(aProd) {
					v1++
				}
				aq, err3 := cq.Eval(q, d)
				aUnder, err4 := cq.Eval(under, d)
				if err3 != nil || err4 != nil ||
					!aUnder.SubsetOf(aq) || (aq.Len() > 0 && aUnder.Len() == 0) {
					v2++
				}
			}
		}
		t.Add(atoms, queries, instances, v1, v2)
	}
	t.Note("Lemma 1: saturated ≡ product; Lemma 2: q̃ ⊑ q and non-emptiness preserved")
	return t
}

// randomIdentityJoinQuery builds a query over R/P with only identity
// joins: duplicate atoms of the same relation with some positions
// equated position-to-position.
func randomIdentityJoinQuery(rng *rand.Rand, atoms int) *cq.Query {
	q := &cq.Query{HeadRel: "V"}
	rels := []string{"R", "P"}
	for i := 0; i < atoms; i++ {
		rel := rels[rng.Intn(len(rels))]
		q.Body = append(q.Body, cq.Atom{Rel: rel, Vars: []cq.Var{
			cq.Var(fmt.Sprintf("v%d_0", i)),
			cq.Var(fmt.Sprintf("v%d_1", i)),
		}})
	}
	// Identity joins: equate position p of same-relation atom pairs.
	for i := 0; i < atoms; i++ {
		for j := i + 1; j < atoms; j++ {
			if q.Body[i].Rel != q.Body[j].Rel || rng.Intn(2) == 0 {
				continue
			}
			p := rng.Intn(2)
			q.Eqs = append(q.Eqs, cq.Equality{
				Left:  q.Body[i].Vars[p],
				Right: cq.Term{Var: q.Body[j].Vars[p]},
			})
		}
	}
	q.Head = []cq.Term{
		{Var: q.Body[0].Vars[0]},
		{Var: q.Body[rng.Intn(atoms)].Vars[1]},
	}
	return q
}

func randomInstance(s *schema.Schema, rng *rand.Rand, maxTuples, domain int) *instance.Database {
	d := instance.NewDatabase(s)
	for ri, r := range s.Relations {
		n := rng.Intn(maxTuples + 1)
		for i := 0; i < n; i++ {
			tup := make(instance.Tuple, r.Arity())
			for p, a := range r.Attrs {
				tup[p] = value.Value{Type: a.Type, N: int64(rng.Intn(domain) + 1)}
			}
			d.Relations[ri].MustInsert(tup)
		}
	}
	return d
}

// T6 — Theorem 9 (κ-reduction) on random dominance pairs.  Each trial
// draws a random keyed schema, perturbs it into an isomorph, builds the
// witness pair, runs the κ-reduction, and verifies β_κ∘α_κ = id.  The
// theorem predicts zero failures.
func T6KappaReduction(trials int, seed int64) *Table {
	t := &Table{
		ID:      "T6",
		Title:   "Theorem 9: κ-reduction of dominance pairs",
		Columns: []string{"max-attrs", "trials", "verified", "failures"},
	}
	rng := rand.New(rand.NewSource(seed))
	for maxAttrs := 1; maxAttrs <= 4; maxAttrs++ {
		verified, failures := 0, 0
		for trial := 0; trial < trials; trial++ {
			s1 := gen.RandomKeyedSchema(rng, 2, maxAttrs, 3)
			s2, iso := schema.RandomIsomorph(s1, rng)
			alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
			if err != nil {
				failures++
				continue
			}
			aK, bK, err := dominance.KappaReduction(alpha, beta, nil)
			if err != nil {
				failures++
				continue
			}
			ok, err := dominance.VerifyKappaPair(aK, bK)
			if err != nil || !ok {
				failures++
				continue
			}
			verified++
		}
		t.Add(maxAttrs, trials, verified, failures)
	}
	t.Note("Theorem 9 predicts failures = 0")
	return t
}

// TLemmas — receives-lemma validation (Lemmas 3-5, 10-12) on random
// dominance pairs, plus Theorem 6 FD transfer checked semantically.
func TLemmas(trials int, seed int64) *Table {
	t := &Table{
		ID:      "T2b",
		Title:   "Lemmas 3-5, 10-12 and Theorem 6 on random dominance pairs",
		Columns: []string{"lemma", "trials", "holds", "violations"},
	}
	rng := rand.New(rand.NewSource(seed))
	type counter struct{ holds, viol int }
	counts := map[string]*counter{
		"L3": {}, "L4": {}, "L5": {}, "L10": {}, "L11": {}, "L12": {}, "T6-fds": {},
	}
	for trial := 0; trial < trials; trial++ {
		s1 := gen.RandomKeyedSchema(rng, 2, 3, 2)
		s2, iso := schema.RandomIsomorph(s1, rng)
		alpha, beta, err := mapping.FromIsomorphism(s1, s2, iso)
		if err != nil {
			continue
		}
		check := func(name string, ok bool) {
			if ok {
				counts[name].holds++
			} else {
				counts[name].viol++
			}
		}
		check("L3", mapping.Lemma3Holds(alpha, beta))
		check("L4", mapping.Lemma4Holds(alpha, beta))
		check("L5", mapping.Lemma5Holds(alpha, beta))
		check("L10", mapping.Lemma10Holds(beta))
		check("L11", mapping.Lemma11Holds(beta))
		check("L12", mapping.Lemma12Holds(beta))
		fds := mapping.TransferredFDs(beta)
		ok := true
		for k := 0; k < 5; k++ {
			d := gen.RandomKeyedInstance(s1, rng, 4, nil)
			for _, f := range fds {
				if !f.Holds(d) {
					ok = false
				}
			}
		}
		check("T6-fds", ok)
	}
	for _, name := range []string{"L3", "L4", "L5", "L10", "L11", "L12", "T6-fds"} {
		c := counts[name]
		t.Add(name, c.holds+c.viol, c.holds, c.viol)
	}
	t.Note("all violations must be 0 on dominance pairs")
	return t
}
