package exp

import (
	"fmt"
	"math/rand"

	"keyedeq/internal/acyclic"
	"keyedeq/internal/capacity"
	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
	"keyedeq/internal/ind"
	"keyedeq/internal/instance"
	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/ucq"
	"keyedeq/internal/value"
)

// T9 — attribute migration under keys + inclusion dependencies.  Random
// migration scenarios are transformed with MoveAttribute and the witness
// mappings are verified BOTH symbolically (chase with EGDs + TGDs) and
// on random constraint-satisfying instances.  The §1 claim predicts zero
// failures.  The isomorphic column counts moves that coincide with a
// renaming (symmetric source/destination shapes); every other verified
// move is a transformation keys alone could never justify (Theorem 13).
func T9INDMigration(trials int, seed int64) *Table {
	t := &Table{
		ID:      "T9",
		Title:   "Keys+INDs attribute migration: symbolic + instance verification",
		Columns: []string{"extra-attrs", "trials", "sym-verified", "inst-verified", "isomorphic", "failures"},
	}
	rng := rand.New(rand.NewSource(seed))
	for extra := 1; extra <= 3; extra++ {
		var sym, inst, iso, failures int
		for trial := 0; trial < trials; trial++ {
			c, from, to := migrationScenario(rng, extra)
			res, err := c.MoveAttribute(from, 1, to, []int{0})
			if err != nil {
				failures++
				continue
			}
			ok, err := c.Verify(res)
			if err != nil || !ok {
				failures++
				continue
			}
			sym++
			if schema.Isomorphic(c.S, res.New.S) {
				iso++
			}
			good := true
			for k := 0; k < 5; k++ {
				d := scenarioInstance(c, rng)
				if !c.Satisfied(d) {
					good = false
					break
				}
				mid, err := res.Alpha.Apply(d)
				if err != nil || !res.New.Satisfied(mid) {
					good = false
					break
				}
				back, err := res.Beta.Apply(mid)
				if err != nil || !back.Equal(d) {
					good = false
					break
				}
			}
			if good {
				inst++
			} else {
				failures++
			}
		}
		t.Add(extra, trials, sym, inst, iso, failures)
	}
	t.Note("predicts failures = 0; 'isomorphic' counts moves that happen to be pure renamings (symmetric src/dst shapes) — those are trivial even under keys alone")
	return t
}

// migrationScenario builds a constrained schema with a bijective
// inclusion pair: from(k*, moved, pad...) and to(k*, others...), the key
// columns mutually included.
func migrationScenario(rng *rand.Rand, extra int) (*ind.Constrained, string, string) {
	keyType := value.Type(1)
	from := &schema.Relation{Name: "src", Key: []int{0}}
	from.Attrs = append(from.Attrs, schema.Attribute{Name: "k", Type: keyType})
	for i := 0; i < extra; i++ {
		from.Attrs = append(from.Attrs, schema.Attribute{
			Name: fmt.Sprintf("m%d", i),
			Type: value.Type(2 + rng.Intn(3)),
		})
	}
	to := &schema.Relation{Name: "dst", Key: []int{0}}
	to.Attrs = append(to.Attrs, schema.Attribute{Name: "k", Type: keyType})
	for i := 0; i < rng.Intn(3); i++ {
		to.Attrs = append(to.Attrs, schema.Attribute{
			Name: fmt.Sprintf("o%d", i),
			Type: value.Type(2 + rng.Intn(3)),
		})
	}
	s := schema.MustNew(from, to)
	c := &ind.Constrained{
		S: s,
		INDs: []ind.IND{
			{Left: ind.Ref{Rel: "src", Pos: []int{0}}, Right: ind.Ref{Rel: "dst", Pos: []int{0}}},
			{Left: ind.Ref{Rel: "dst", Pos: []int{0}}, Right: ind.Ref{Rel: "src", Pos: []int{0}}},
		},
	}
	return c, "src", "dst"
}

// scenarioInstance builds a random instance satisfying the scenario's
// keys and bijective inclusion (same key set in both relations).
func scenarioInstance(c *ind.Constrained, rng *rand.Rand) *instance.Database {
	d := instance.NewDatabase(c.S)
	n := 1 + rng.Intn(4)
	for i := 1; i <= n; i++ {
		for _, r := range c.S.Relations {
			tup := make(instance.Tuple, r.Arity())
			for p, a := range r.Attrs {
				if r.IsKeyPos(p) {
					tup[p] = value.Value{Type: a.Type, N: int64(i)}
				} else {
					tup[p] = value.Value{Type: a.Type, N: int64(rng.Intn(4) + 1)}
				}
			}
			d.Relation(r.Name).MustInsert(tup)
		}
	}
	return d
}

// T10 — information capacity: counting instances over finite domains.
// Cardinality equivalence cannot distinguish attribute types, so
// non-isomorphic (hence non-CQ-equivalent, Theorem 13) pairs can have
// identical counts at every domain size — the degeneracy the paper's
// introduction uses to reject bijection-based equivalence.
func T10Capacity(maxDomain int) *Table {
	t := &Table{
		ID:      "T10",
		Title:   "Information capacity vs CQ equivalence (bijection-based equivalence degenerates)",
		Columns: []string{"pair", "domain", "count1", "count2", "card-equal", "cq-equiv"},
	}
	pairs := []struct {
		name   string
		s1, s2 *schema.Schema
	}{
		{"type-swapped keys", schema.MustParse("r(a*:T1)"), schema.MustParse("r(a*:T2)")},
		{"isomorphic", schema.MustParse("r(a*:T1, b:T2)"), schema.MustParse("s(x:T2, y*:T1)")},
		{"extra attribute", schema.MustParse("r(a*:T1)"), schema.MustParse("r(a*:T1, b:T1)")},
		{"key widened", schema.MustParse("r(a*:T1, b:T1)"), schema.MustParse("r(a*:T1, b*:T1)")},
	}
	for _, p := range pairs {
		cqEquiv := schema.Isomorphic(p.s1, p.s2)
		for n := 1; n <= maxDomain; n++ {
			d := capacity.Uniform(n, p.s1, p.s2)
			c1, err := capacity.CountInstances(p.s1, d)
			invariant.Must(err)
			c2, err := capacity.CountInstances(p.s2, d)
			invariant.Must(err)
			t.Add(p.name, n, c1.String(), c2.String(), c1.Cmp(c2) == 0, cqEquiv)
		}
	}
	t.Note("'type-swapped keys' is equal-count at every size yet NOT CQ equivalent")
	return t
}

// T11 — Yannakakis semijoin evaluation vs plain backtracking on acyclic
// queries over adversarial instances (one genuine path drowned in
// dead-end edges).  The full reducer removes the dead ends before the
// join; the backtracking join explores them all.
func T11Yannakakis(chainSizes []int, deadEnds int) *Table {
	t := &Table{
		ID:      "T11",
		Title:   "Acyclic evaluation: Yannakakis full reducer vs plain backtracking",
		Columns: []string{"chain", "dead-ends", "plain-nodes", "yann-nodes", "pruned", "plain-time", "yann-time"},
	}
	for _, n := range chainSizes {
		d := instance.NewDatabase(gen.GraphSchema())
		v := func(x int64) value.Value { return value.Value{Type: 1, N: x} }
		for i := int64(1); i <= int64(n); i++ {
			d.MustInsert("E", v(i), v(i+1))
		}
		// Dead ends branch off every path node.
		next := int64(1000)
		for i := int64(1); i <= int64(n); i++ {
			for k := 0; k < deadEnds; k++ {
				d.MustInsert("E", v(i), v(next))
				next++
			}
		}
		q := gen.ChainQuery(n)
		var plainStats cq.EvalStats
		dPlain := timed(func() {
			var err error
			_, plainStats, err = cq.EvalWithStats(q, d)
			invariant.Must(err)
		})
		var yStats acyclic.Stats
		dYann := timed(func() {
			var err error
			_, yStats, err = acyclic.Eval(q, d)
			invariant.Must(err)
		})
		t.Add(n, deadEnds, plainStats.Nodes, yStats.Nodes, yStats.Pruned, dPlain, dYann)
	}
	t.Note("plain work grows with dead-end fanout; the reducer's final join is output-bounded")
	return t
}

// T12 — UCQ containment scaling: Sagiv–Yannakakis over unions of chain
// queries of growing width (number of disjuncts).  Each disjunct of u1
// must find a containing disjunct in u2, so cost grows with the product
// of the union widths.
func T12UCQContainment(widths []int, chainLen int) *Table {
	t := &Table{
		ID:      "T12",
		Title:   "UCQ containment scaling (Sagiv–Yannakakis)",
		Columns: []string{"disjuncts", "chain-len", "contained", "time"},
	}
	for _, w := range widths {
		u1 := &ucq.Query{}
		u2 := &ucq.Query{}
		for k := 0; k < w; k++ {
			// u1's k-th disjunct: chain of length chainLen+k (longer);
			// u2's: chain of length chainLen+k-? Use u2 = shorter chains
			// so every u1 disjunct is contained in some u2 disjunct.
			q1 := gen.ChainQuery(chainLen + k)
			q1.Head = q1.Head[:1]
			u1.Disjuncts = append(u1.Disjuncts, q1)
			q2 := gen.ChainQuery(chainLen + k - 1)
			q2.Head = q2.Head[:1]
			u2.Disjuncts = append(u2.Disjuncts, q2)
		}
		gs := gen.GraphSchema()
		var ok bool
		d := timed(func() {
			var err error
			ok, err = ucq.Contained(u1, u2, gs, nil)
			invariant.Must(err)
		})
		t.Add(w, chainLen, ok, d)
	}
	t.Note("every longer chain is contained in some shorter one; cost ~ |u1|·|u2| homomorphism tests")
	return t
}
