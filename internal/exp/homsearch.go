package exp

import (
	"context"
	"math/rand"
	"time"

	"keyedeq/internal/chase"
	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
	"keyedeq/internal/instance"
	"keyedeq/internal/obs"
	"keyedeq/internal/value"
)

// HomFamilyResult is one corpus family's planned-vs-naive comparison,
// serialized into BENCH_homsearch.json by `keyedeq-bench -record hom -json`.
type HomFamilyResult struct {
	Family string `json:"family"`
	Pairs  int    `json:"pairs"`
	// Searches counts homomorphism search instances (up to two per
	// pair: one per containment direction, minus failing chases).
	Searches      int   `json:"searches"`
	NaiveWallNs   int64 `json:"naive_wall_ns"`
	PlannedWallNs int64 `json:"planned_wall_ns"`
	NaiveNodes    int64 `json:"naive_nodes"`
	PlannedNodes  int64 `json:"planned_nodes"`
	// NodeRatio is naive search nodes over planned search nodes.
	NodeRatio float64 `json:"node_ratio"`
	Speedup   float64 `json:"speedup"`
	Holding   int     `json:"holding"`
}

// HomBenchResult is the planned-vs-naive homomorphism search regression
// record.  CI's bench gate parses this and fails when the planner stops
// paying for itself.
type HomBenchResult struct {
	Families []HomFamilyResult `json:"families"`
	NaiveNs  int64             `json:"naive_wall_ns"`
	PlanNs   int64             `json:"planned_wall_ns"`
	// Speedup is total naive search wall time over total planned
	// search wall time.
	Speedup float64 `json:"speedup"`
	// WideNodeRatio is the node ratio on the wide family, where the
	// index probes shine brightest.
	WideNodeRatio float64 `json:"wide_node_ratio"`
	// Mismatches counts searches the two modes decided differently
	// (must be zero: the planner is an optimization, not a semantics
	// change).
	Mismatches int `json:"mismatches"`
}

// HomCase is one prepared homomorphism search instance: does Q have the
// answer Want on the (chased) canonical database DB?
type HomCase struct {
	Q    *cq.Query
	DB   *instance.Database
	Want instance.Tuple
}

// PrepareHomCases freezes and chases both containment directions of
// every pair into concrete search instances.  The freeze/chase work is
// identical in both search modes, so benchmarks and the observability
// reconciliation tests share it up front and drive only the searches.
func PrepareHomCases(f *gen.Family) ([]HomCase, error) {
	var cases []HomCase
	add := func(q1, q2 *cq.Query) error {
		tb := chase.NewTableau(f.Schema)
		vars, err := chase.Freeze(tb, q1)
		if err != nil {
			return err
		}
		head, err := chase.HeadTerms(tb, q1, vars)
		if err != nil {
			return err
		}
		if len(f.Deps) > 0 {
			if _, err := tb.Run(f.Deps); err != nil {
				return err
			}
		}
		if tb.Failed() {
			// Vacuous containment: no search happens in either mode.
			return nil
		}
		var alloc value.Allocator
		for _, c := range q1.Constants() {
			alloc.Reserve(c)
		}
		for _, c := range q2.Constants() {
			alloc.Reserve(c)
		}
		db, valOf, err := tb.ToDatabase(&alloc)
		if err != nil {
			return err
		}
		want := make(instance.Tuple, len(head))
		for i, h := range head {
			want[i] = valOf[h]
		}
		cases = append(cases, HomCase{Q: q2, DB: db, Want: want})
		return nil
	}
	for _, p := range f.Pairs {
		if err := add(p.Left, p.Right); err != nil {
			return nil, err
		}
		if err := add(p.Right, p.Left); err != nil {
			return nil, err
		}
	}
	return cases, nil
}

// homTrials is how many interleaved timing trials H1 runs per family,
// and homPassesPerSample how many consecutive passes one timed sample
// covers.  Each arm's reported wall is the minimum sample over the
// trials, divided back to one pass: scheduler and GC interference on
// a shared box is strictly additive, so the minimum converges to the
// true cost of each arm (the same argument ObsOverheadGate
// documents), and longer samples keep interruptions small relative to
// what is measured — a single measured pass swings with whatever
// noise hit it, far too unstable to gate per-family speedup floors
// on.
const (
	homTrials          = 5
	homPassesPerSample = 3
)

// H1HomSearch prepares the homomorphism search instances behind the
// generated pair corpus of every schema family (freeze + chase, shared
// across modes) and runs each search with the naive full-scan
// backtracking search and with the adaptive runtime (the process
// default: cost-chosen scan-vs-pipeline with parallel component
// search) — reporting wall time, search nodes, and verdict agreement.
// Timing interleaves homTrials trials of each arm and keeps the
// minima, so neither arm is systematically charged for cache warmup
// or drift.  The record keeps the historical planned_* JSON keys: the
// measured arm is whatever the default runtime is, and the naive arm
// is the fixed reference.  A non-nil o observes the measured arm only,
// so exported search totals line up with the record's planned_nodes.
func H1HomSearch(pairsPerFamily, seed int, o *obs.Obs) (*Table, *HomBenchResult) {
	plannedCtx := obs.NewContext(context.Background(), o)
	t := &Table{
		ID:    "H1",
		Title: "planned vs naive homomorphism search (generated pair corpus)",
		Columns: []string{"family", "searches", "naive wall", "planned wall", "speedup",
			"naive nodes", "planned nodes", "node ratio", "holding"},
	}
	res := &HomBenchResult{}
	for fi, fam := range gen.FamilyNames() {
		rng := rand.New(rand.NewSource(int64(seed + fi)))
		f, err := gen.PairCorpus(rng, fam, pairsPerFamily)
		if err != nil {
			t.Note("%s: %v", fam, err)
			continue
		}
		cases, err := PrepareHomCases(f)
		if err != nil {
			t.Note("%s: prepare: %v", fam, err)
			continue
		}
		fr := HomFamilyResult{Family: fam, Pairs: len(f.Pairs), Searches: len(cases)}
		verdicts := make([]bool, len(cases))

		// Untimed warmup passes record node totals, verdicts, and any
		// mismatch, and pay one-time memoization (sorted tuple views)
		// so the timed trials below compare steady-state arms.
		for i, c := range cases {
			ok, _, st, err := cq.FindAnswerBindingMode(c.Q, c.DB, c.Want, cq.SearchNaive)
			if err != nil {
				t.Note("%s: naive: %v", fam, err)
				continue
			}
			verdicts[i] = ok
			fr.NaiveNodes += st.Nodes
		}
		for i, c := range cases {
			ok, _, st, err := cq.FindAnswerBindingCtxMode(plannedCtx, c.Q, c.DB, c.Want, cq.SearchAdaptive)
			if err != nil {
				t.Note("%s: planned: %v", fam, err)
				continue
			}
			if ok != verdicts[i] {
				res.Mismatches++
				t.Note("%s: VERDICT MISMATCH on search %d", fam, i)
			}
			if ok {
				fr.Holding++
			}
			fr.PlannedNodes += st.Nodes
		}

		runNaive := func() time.Duration {
			return timed(func() {
				for p := 0; p < homPassesPerSample; p++ {
					for _, c := range cases {
						_, _, _, _ = cq.FindAnswerBindingMode(c.Q, c.DB, c.Want, cq.SearchNaive)
					}
				}
			})
		}
		runPlanned := func() time.Duration {
			return timed(func() {
				for p := 0; p < homPassesPerSample; p++ {
					for _, c := range cases {
						_, _, _, _ = cq.FindAnswerBindingCtxMode(plannedCtx, c.Q, c.DB, c.Want, cq.SearchAdaptive)
					}
				}
			})
		}
		var naiveWall, plannedWall time.Duration
		for trial := 0; trial < homTrials; trial++ {
			// Alternate which arm goes first so per-trial drift cannot
			// systematically favor one of them.
			var nw, pw time.Duration
			if trial%2 == 0 {
				nw, pw = runNaive(), runPlanned()
			} else {
				pw, nw = runPlanned(), runNaive()
			}
			nw, pw = nw/homPassesPerSample, pw/homPassesPerSample
			if trial == 0 || nw < naiveWall {
				naiveWall = nw
			}
			if trial == 0 || pw < plannedWall {
				plannedWall = pw
			}
		}

		fr.NaiveWallNs = naiveWall.Nanoseconds()
		fr.PlannedWallNs = plannedWall.Nanoseconds()
		if fr.PlannedNodes > 0 {
			fr.NodeRatio = float64(fr.NaiveNodes) / float64(fr.PlannedNodes)
		}
		if fr.PlannedWallNs > 0 {
			fr.Speedup = float64(fr.NaiveWallNs) / float64(fr.PlannedWallNs)
		}
		if fam == "wide" {
			res.WideNodeRatio = fr.NodeRatio
		}
		res.NaiveNs += fr.NaiveWallNs
		res.PlanNs += fr.PlannedWallNs
		res.Families = append(res.Families, fr)
		t.Add(fam, fr.Searches, naiveWall, plannedWall, fr.Speedup,
			fr.NaiveNodes, fr.PlannedNodes, fr.NodeRatio, fr.Holding)
	}
	if res.PlanNs > 0 {
		res.Speedup = float64(res.NaiveNs) / float64(res.PlanNs)
	}
	t.Note("total: naive %s, planned %s, speedup %.2fx, wide node ratio %.1fx, mismatches %d",
		time.Duration(res.NaiveNs).Round(time.Millisecond),
		time.Duration(res.PlanNs).Round(time.Millisecond),
		res.Speedup, res.WideNodeRatio, res.Mismatches)
	return t, res
}
