package exp

import (
	"fmt"
	"math/rand"
	"testing"

	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Seed baselines: the bound each case's committed record must stay at
// or under.  For the two original kernels the seed is the previous
// committed record (the ratchet: the PR that introduced the interned
// runtime must land strictly below what the generic hot paths already
// achieved, and later PRs must hold the line).  For the intern bulk
// case the seed is the generic map-staged freeze path the bulk loader
// replaces, measured once on the same workload.
const (
	// seedChaseAllocs is the BenchmarkT4Chase/rows-1000 record committed
	// by the hot-path allocation PR (down from 2891 pre-fix); the dense
	// ID worklist chase must beat it.
	seedChaseAllocs = 882
	// seedSearchAllocs is the BenchmarkT3Containment/clique-4 record
	// committed by the hot-path allocation PR (down from 271 pre-fix);
	// the interned search must beat it.
	seedSearchAllocs = 258
	// seedInternAllocs is the million-tuple build staged through the
	// map-backed Database and frozen (one MustInsert per tuple, then
	// FreezeDatabase), which the Interner + flat-row bulk load replaces.
	seedInternAllocs = 9881004
)

// AllocCaseResult is one kernel's steady-state allocation measurement.
type AllocCaseResult struct {
	Name        string `json:"name"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// SeedAllocsPerOp is the pre-fix baseline the gate compares against;
	// it rides in the record so the file documents the improvement.
	SeedAllocsPerOp int64 `json:"seed_allocs_per_op"`
}

// AllocBenchResult is the hot-path allocation regression record written
// to BENCH_alloc.json by `keyedeq-bench -record alloc -json`.
type AllocBenchResult struct {
	Cases []AllocCaseResult `json:"cases"`
}

// Case returns the named case, if recorded.
func (r *AllocBenchResult) Case(name string) (AllocCaseResult, bool) {
	for _, c := range r.Cases {
		if c.Name == name {
			return c, true
		}
	}
	return AllocCaseResult{}, false
}

// AllocCaseNames lists the cases every complete record must carry.
func AllocCaseNames() []string {
	return []string{"chase/rows-1000", "search/clique-4", "intern/rows-1M"}
}

// A1AllocBench measures allocations per operation of the two hot-path
// kernels the allocation lint rules police — one semi-naive chase run
// and one freeze-chase-search containment check — via testing.Benchmark
// with the exact workloads of BenchmarkT4Chase/rows-1000 and
// BenchmarkT3Containment/clique-4.  A case that fails to run is noted
// in the table and omitted from the record, which the verify gate then
// rejects as incomplete.
func A1AllocBench() (*Table, *AllocBenchResult) {
	t := &Table{
		ID:      "A1",
		Title:   "hot-path allocations per operation (chase + homomorphism search)",
		Columns: []string{"case", "allocs/op", "bytes/op", "seed allocs/op"},
	}
	res := &AllocBenchResult{}
	for _, c := range []struct {
		name string
		seed int64
		run  func(b *testing.B) error
	}{
		{"chase/rows-1000", seedChaseAllocs, allocChaseRun},
		{"search/clique-4", seedSearchAllocs, allocSearchRun},
		{"intern/rows-1M", seedInternAllocs, allocInternRun},
	} {
		var runErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			runErr = c.run(b)
		})
		if runErr != nil {
			t.Note("%s: %v", c.name, runErr)
			continue
		}
		cr := AllocCaseResult{
			Name:            c.name,
			AllocsPerOp:     r.AllocsPerOp(),
			BytesPerOp:      r.AllocedBytesPerOp(),
			SeedAllocsPerOp: c.seed,
		}
		res.Cases = append(res.Cases, cr)
		t.Add(cr.Name, cr.AllocsPerOp, cr.BytesPerOp, cr.SeedAllocsPerOp)
	}
	return t, res
}

// allocChaseRun is the BenchmarkT4Chase/rows-1000 workload: 1000 rows
// over a single keyed relation with a third as many key nulls, chased
// to its fixpoint.  Tableau construction happens with the timer (and
// allocation accounting) stopped, so the measurement isolates the chase.
func allocChaseRun(b *testing.B) error {
	s := schema.MustParse("R(k*:T1, a:T2, b:T3)")
	deps := fd.KeyFDs(s)
	rng := rand.New(rand.NewSource(1))
	const rows = 1000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		tb := chase.NewTableau(s)
		nKeys := rows/3 + 1
		keys := make([]chase.Term, nKeys)
		for j := range keys {
			keys[j] = tb.NewNull(1)
		}
		for j := 0; j < rows; j++ {
			cells := []chase.Term{keys[rng.Intn(nKeys)], tb.NewNull(2), tb.NewNull(3)}
			if err := tb.AddRow("R", cells); err != nil {
				return err
			}
		}
		b.StartTimer()
		if _, err := tb.Run(deps); err != nil {
			return err
		}
	}
	return nil
}

// allocInternRun is the bench_intern workload: bulk-build the interned
// view of a million-tuple keyed relation — one Interner pass over the
// pre-generated cells into a flat ID row array.  Value generation runs
// before the timer, so the measurement isolates interning and encoding.
func allocInternRun(b *testing.B) error {
	s := schema.MustParse("R(k*:T1, a:T2, b:T3)")
	const rows = 1_000_000
	b.StopTimer()
	rng := rand.New(rand.NewSource(2))
	vals := make([]value.Value, 0, rows*3)
	for j := 0; j < rows; j++ {
		vals = append(vals,
			value.Value{Type: 1, N: int64(j)},
			value.Value{Type: 2, N: rng.Int63n(rows / 2)},
			value.Value{Type: 3, N: rng.Int63n(rows / 2)})
	}
	b.StartTimer()
	for i := 0; i < b.N; i++ {
		in := value.NewInterner(len(vals))
		ids := make([]value.ID, len(vals))
		for k, v := range vals {
			ids[k] = in.Intern(v)
		}
		if n := instance.NewFrozenRelation(s.Relations[0], ids).NumRows(); n != rows {
			return fmt.Errorf("interned %d rows, want %d", n, rows)
		}
	}
	return nil
}

// allocSearchRun is the BenchmarkT3Containment/clique-4 workload: the
// containment curve's most expensive point, freeze + search (in the
// default interned mode) per operation.
func allocSearchRun(b *testing.B) error {
	gs := gen.GraphSchema()
	q1 := gen.CliqueQuery(4)
	q1.Head = q1.Head[:1]
	q2 := gen.CliqueQuery(3)
	q2.Head = q2.Head[:1]
	for i := 0; i < b.N; i++ {
		ok, _, err := containment.ContainedUnder(q1, q2, gs, nil)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("clique-4 containment unexpectedly false")
		}
	}
	return nil
}
