// Package exp is the experiment harness: it regenerates every table and
// figure of the reproduction's evaluation suite (T1–T8, F1–F3 in
// DESIGN.md).  The paper itself is pure theory with no measurements, so
// this suite plays the role of its evaluation: empirical validation of
// each lemma/theorem on exhaustive and randomized inputs, plus scaling
// benchmarks of every decision procedure the theory induces.
package exp

import (
	"fmt"
	"strings"
	"time"
)

// Table is one experiment's result in printable form.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		case time.Duration:
			if v >= time.Millisecond {
				row[i] = v.Round(time.Microsecond).String()
			} else {
				row[i] = v.String()
			}
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...interface{}) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// timed runs f and returns its wall-clock duration.
func timed(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// perOp divides a duration over n operations.
func perOp(d time.Duration, n int) time.Duration {
	if n == 0 {
		return 0
	}
	return d / time.Duration(n)
}
