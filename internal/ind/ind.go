// Package ind implements inclusion dependencies and the schema
// transformation from the paper's introduction: with both primary keys
// AND referential integrity constraints available there *are* non-trivial
// equivalence-preserving transformations — in contrast to Theorem 13's
// negative result for keys alone.  The package provides inclusion
// dependencies (satisfaction checking), constrained schemas, and the §1
// attribute-migration transformation (moving an attribute across a
// bijective inclusion pair, e.g. salespeople.yearsExp → employee), with
// generated conjunctive witness mappings in both directions.
package ind

import (
	"fmt"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
)

// Ref names a column list of a relation, e.g. employee[depId].
type Ref struct {
	Rel string
	Pos []int
}

// String renders "employee[3]".
func (r Ref) String() string {
	return fmt.Sprintf("%s%v", r.Rel, r.Pos)
}

// IND is an inclusion dependency Left ⊆ Right, the standard referential
// integrity constraint notation R[X] ⊆ S[Y].
type IND struct {
	Left, Right Ref
}

// String renders "employee[3] ⊆ department[0]".
func (d IND) String() string { return d.Left.String() + " ⊆ " + d.Right.String() }

// Validate checks the dependency against a schema: both sides exist, the
// position lists have equal length, are in range, and agree on types.
func (d IND) Validate(s *schema.Schema) error {
	l := s.Relation(d.Left.Rel)
	r := s.Relation(d.Right.Rel)
	if l == nil || r == nil {
		return fmt.Errorf("ind: %s references a missing relation", d)
	}
	if len(d.Left.Pos) == 0 || len(d.Left.Pos) != len(d.Right.Pos) {
		return fmt.Errorf("ind: %s has mismatched column lists", d)
	}
	for i := range d.Left.Pos {
		lp, rp := d.Left.Pos[i], d.Right.Pos[i]
		if lp < 0 || lp >= l.Arity() || rp < 0 || rp >= r.Arity() {
			return fmt.Errorf("ind: %s column out of range", d)
		}
		if l.Attrs[lp].Type != r.Attrs[rp].Type {
			return fmt.Errorf("ind: %s compares types %v and %v",
				d, l.Attrs[lp].Type, r.Attrs[rp].Type)
		}
	}
	return nil
}

// Holds reports whether an instance satisfies the dependency: the
// projection of Left is a subset of the projection of Right.
func (d IND) Holds(db *instance.Database) bool {
	l := db.Relation(d.Left.Rel)
	r := db.Relation(d.Right.Rel)
	if l == nil || r == nil {
		return false
	}
	right := make(map[string]bool)
	for _, t := range r.Tuples() {
		right[t.Project(d.Right.Pos).String()] = true
	}
	for _, t := range l.Tuples() {
		if !right[t.Project(d.Left.Pos).String()] {
			return false
		}
	}
	return true
}

// Constrained is a schema together with its inclusion dependencies (key
// dependencies live in the schema itself).
type Constrained struct {
	S    *schema.Schema
	INDs []IND
}

// Validate checks the schema and every dependency.
func (c *Constrained) Validate() error {
	if err := c.S.Validate(); err != nil {
		return err
	}
	for _, d := range c.INDs {
		if err := d.Validate(c.S); err != nil {
			return err
		}
	}
	return nil
}

// Satisfied reports whether db satisfies both the key dependencies and
// every inclusion dependency.
func (c *Constrained) Satisfied(db *instance.Database) bool {
	if !db.SatisfiesKeys() {
		return false
	}
	for _, d := range c.INDs {
		if !d.Holds(db) {
			return false
		}
	}
	return true
}

// HasBijection reports whether the dependency set contains both
// from[fromPos] ⊆ to[toPos] and to[toPos] ⊆ from[fromPos] — the
// bidirectional inclusion that makes attribute migration equivalence
// preserving.
func (c *Constrained) HasBijection(from string, fromPos []int, to string, toPos []int) bool {
	fwd, bwd := false, false
	for _, d := range c.INDs {
		if d.Left.Rel == from && d.Right.Rel == to &&
			eqInts(d.Left.Pos, fromPos) && eqInts(d.Right.Pos, toPos) {
			fwd = true
		}
		if d.Left.Rel == to && d.Right.Rel == from &&
			eqInts(d.Left.Pos, toPos) && eqInts(d.Right.Pos, fromPos) {
			bwd = true
		}
	}
	return fwd && bwd
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
