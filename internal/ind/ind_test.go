package ind

import (
	"math/rand"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func v(t value.Type, n int64) value.Value { return value.Value{Type: t, N: n} }

// paperConstrained is Schema 1 from the paper's introduction:
// employee(ss*, eName, salary, depId), department(deptId*, deptName, mgr),
// salespeople(ss*, yearsExp), with
// employee[depId] ⊆ department[deptId],
// salespeople[ss] ⊆ employee[ss], employee[ss] ⊆ salespeople[ss].
func paperConstrained() *Constrained {
	s := schema.MustParse(`
employee(ss*:T1, eName:T2, salary:T3, depId:T4)
department(deptId*:T4, deptName:T5, mgr:T1)
salespeople(ss*:T1, yearsExp:T6)
`)
	return &Constrained{
		S: s,
		INDs: []IND{
			{Left: Ref{"employee", []int{3}}, Right: Ref{"department", []int{0}}},
			{Left: Ref{"salespeople", []int{0}}, Right: Ref{"employee", []int{0}}},
			{Left: Ref{"employee", []int{0}}, Right: Ref{"salespeople", []int{0}}},
		},
	}
}

// paperInstance builds a random instance satisfying all of Schema 1's
// dependencies: n employees (each also a salesperson), m departments all
// referenced validly.
func paperInstance(rng *rand.Rand, n, m int) *instance.Database {
	c := paperConstrained()
	d := instance.NewDatabase(c.S)
	for j := 1; j <= m; j++ {
		d.MustInsert("department", v(4, int64(j)), v(5, int64(rng.Intn(5)+1)), v(1, int64(rng.Intn(50)+1)))
	}
	for i := 1; i <= n; i++ {
		dep := int64(rng.Intn(m) + 1)
		d.MustInsert("employee", v(1, int64(i)), v(2, int64(rng.Intn(9)+1)), v(3, int64(rng.Intn(9)+1)), v(4, dep))
		d.MustInsert("salespeople", v(1, int64(i)), v(6, int64(rng.Intn(30)+1)))
	}
	return d
}

func TestINDValidate(t *testing.T) {
	c := paperConstrained()
	if err := c.Validate(); err != nil {
		t.Fatalf("paper schema invalid: %v", err)
	}
	bad := []IND{
		{Left: Ref{"zz", []int{0}}, Right: Ref{"employee", []int{0}}},
		{Left: Ref{"employee", []int{0}}, Right: Ref{"zz", []int{0}}},
		{Left: Ref{"employee", []int{0}}, Right: Ref{"department", []int{0, 1}}},
		{Left: Ref{"employee", nil}, Right: Ref{"department", nil}},
		{Left: Ref{"employee", []int{9}}, Right: Ref{"department", []int{0}}},
		{Left: Ref{"employee", []int{0}}, Right: Ref{"department", []int{0}}}, // T1 vs T4
	}
	for _, d := range bad {
		if err := d.Validate(c.S); err == nil {
			t.Errorf("%s: want validation error", d)
		}
	}
}

func TestINDHolds(t *testing.T) {
	c := paperConstrained()
	rng := rand.New(rand.NewSource(1))
	d := paperInstance(rng, 4, 2)
	if !c.Satisfied(d) {
		t.Fatal("paper instance should satisfy all dependencies")
	}
	// Break referential integrity: employee in missing department.
	d2 := d.Clone()
	d2.MustInsert("employee", v(1, 99), v(2, 1), v(3, 1), v(4, 77))
	d2.MustInsert("salespeople", v(1, 99), v(6, 1))
	if c.Satisfied(d2) {
		t.Error("dangling depId must violate the IND")
	}
	// Break the bijection: employee who is not a salesperson.
	d3 := d.Clone()
	d3.MustInsert("employee", v(1, 98), v(2, 1), v(3, 1), v(4, 1))
	if c.Satisfied(d3) {
		t.Error("employee outside salespeople must violate")
	}
	// Key violation.
	d4 := d.Clone()
	d4.MustInsert("salespeople", v(1, 1), v(6, 29))
	if c.Satisfied(d4) {
		t.Error("key violation must be caught")
	}
}

func TestHasBijection(t *testing.T) {
	c := paperConstrained()
	if !c.HasBijection("salespeople", []int{0}, "employee", []int{0}) {
		t.Error("salespeople<->employee bijection should be detected")
	}
	if c.HasBijection("employee", []int{3}, "department", []int{0}) {
		t.Error("one-directional inclusion reported as bijection")
	}
}

// The paper's §1 transformation: move yearsExp from salespeople into
// employee, producing Schema 1'.
func TestMoveAttributePaperExample(t *testing.T) {
	c := paperConstrained()
	res, err := c.MoveAttribute("salespeople", 1, "employee", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Schema 1' shape: employee gains yearsExp, salespeople shrinks to (ss*).
	want := schema.MustParse(`
employee(ss*:T1, eName:T2, salary:T3, depId:T4, yearsExp:T6)
department(deptId*:T4, deptName:T5, mgr:T1)
salespeople(ss*:T1)
`)
	if !schema.Isomorphic(res.New.S, want) {
		t.Errorf("transformed schema wrong:\n%s\nwant\n%s", res.New.S, want)
	}
	if err := res.New.Validate(); err != nil {
		t.Fatalf("new constraints invalid: %v", err)
	}
	// NOTE: Schema 1 and Schema 1' are NOT equivalent under keys alone
	// (Theorem 13: not isomorphic) — the inclusion dependencies are what
	// make the transformation equivalence preserving.
	if schema.Isomorphic(c.S, res.New.S) {
		t.Error("schemas should not be isomorphic")
	}
	// Round trip on constraint-satisfying instances.
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		d := paperInstance(rng, 1+rng.Intn(6), 1+rng.Intn(3))
		if !c.Satisfied(d) {
			t.Fatal("generator broke constraints")
		}
		mid, err := res.Alpha.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if !res.New.Satisfied(mid) {
			t.Fatalf("α(d) violates the new constraints:\n%s", mid)
		}
		back, err := res.Beta.Apply(mid)
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(d) {
			t.Fatalf("β(α(d)) != d:\n%s\nvs\n%s", back, d)
		}
		// And the other direction: α(β(d')) = d' for d' in the new
		// schema's constraint-satisfying instances (use mid as d').
		fwd, err := res.Alpha.Apply(back)
		if err != nil {
			t.Fatal(err)
		}
		if !fwd.Equal(mid) {
			t.Fatalf("α(β(d')) != d':\n%s\nvs\n%s", fwd, mid)
		}
	}
}

func TestMoveAttributePreconditions(t *testing.T) {
	c := paperConstrained()
	cases := []struct {
		name string
		from string
		pos  int
		to   string
		via  []int
	}{
		{"missing from", "zz", 1, "employee", []int{0}},
		{"missing to", "salespeople", 1, "zz", []int{0}},
		{"same relation", "salespeople", 1, "salespeople", []int{0}},
		{"key attribute", "salespeople", 0, "employee", []int{0}},
		{"pos out of range", "salespeople", 9, "employee", []int{0}},
		{"via out of range", "salespeople", 1, "employee", []int{9}},
		{"via type clash", "salespeople", 1, "employee", []int{1}},
		{"no bijection", "employee", 1, "department", []int{0}},
		{"via count", "salespeople", 1, "employee", []int{0, 1}},
	}
	for _, tt := range cases {
		if _, err := c.MoveAttribute(tt.from, tt.pos, tt.to, tt.via); err == nil {
			t.Errorf("%s: want error", tt.name)
		}
	}
}

func TestMoveAttributeNameCollision(t *testing.T) {
	s := schema.MustParse("a(k*:T1, x:T2)\nb(k*:T1, x:T3)")
	c := &Constrained{S: s, INDs: []IND{
		{Left: Ref{"a", []int{0}}, Right: Ref{"b", []int{0}}},
		{Left: Ref{"b", []int{0}}, Right: Ref{"a", []int{0}}},
	}}
	res, err := c.MoveAttribute("a", 1, "b", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// b already has attribute "x"; the moved one must be renamed.
	nb := res.New.S.Relation("b")
	if nb.Arity() != 3 {
		t.Fatalf("b arity = %d", nb.Arity())
	}
	if nb.Attrs[2].Name == "x" {
		t.Error("name collision not resolved")
	}
}

func TestMoveAttributeRejectsMovedColumnDeps(t *testing.T) {
	s := schema.MustParse("a(k*:T1, x:T2)\nb(k*:T1)\nc(y:T2)")
	c := &Constrained{S: s, INDs: []IND{
		{Left: Ref{"a", []int{0}}, Right: Ref{"b", []int{0}}},
		{Left: Ref{"b", []int{0}}, Right: Ref{"a", []int{0}}},
		{Left: Ref{"c", []int{0}}, Right: Ref{"a", []int{1}}},
	}}
	if _, err := c.MoveAttribute("a", 1, "b", []int{0}); err == nil {
		t.Error("dependency on the moved column should block the move")
	}
}

func TestMoveAttributeRemapsINDs(t *testing.T) {
	// from has an IND on a column after the moved one: positions shift.
	s := schema.MustParse("a(k*:T1, x:T2, z:T4)\nb(k*:T1)\nd(w*:T4)")
	c := &Constrained{S: s, INDs: []IND{
		{Left: Ref{"a", []int{0}}, Right: Ref{"b", []int{0}}},
		{Left: Ref{"b", []int{0}}, Right: Ref{"a", []int{0}}},
		{Left: Ref{"a", []int{2}}, Right: Ref{"d", []int{0}}},
	}}
	res, err := c.MoveAttribute("a", 1, "b", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, dp := range res.New.INDs {
		if dp.Left.Rel == "a" && len(dp.Left.Pos) == 1 && dp.Left.Pos[0] == 1 &&
			dp.Right.Rel == "d" {
			found = true
		}
	}
	if !found {
		t.Errorf("IND not remapped: %v", res.New.INDs)
	}
	if err := res.New.Validate(); err != nil {
		t.Errorf("remapped dependencies invalid: %v", err)
	}
}
