package ind

import (
	"fmt"

	"keyedeq/internal/cq"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
)

// MoveResult packages the outcome of an attribute migration: the new
// constrained schema and the conjunctive witness mappings in both
// directions.  On instances satisfying the old constraints, Beta∘Alpha is
// the identity; on instances satisfying the new constraints, Alpha∘Beta
// is the identity — the transformation is equivalence preserving, which
// is exactly the paper's point that keys + referential integrity admit
// non-trivial equivalences.
type MoveResult struct {
	New   *Constrained
	Alpha *mapping.Mapping // old → new
	Beta  *mapping.Mapping // new → old
}

// MoveAttribute moves the non-key attribute at position attrPos of
// relation from into relation to (appended as its last attribute),
// joining along the bijective inclusion between from's key and the toVia
// columns of to.  Preconditions:
//
//   - from ≠ to, both exist; attrPos is a non-key position of from;
//   - the via columns of from are exactly from's key;
//   - both inclusion dependencies from[key] ⊆ to[toVia] and
//     to[toVia] ⊆ from[key] are declared (the §1 situation);
//   - no inclusion dependency references the moved column.
func (c *Constrained) MoveAttribute(from string, attrPos int, to string, toVia []int) (*MoveResult, error) {
	fr := c.S.Relation(from)
	tr := c.S.Relation(to)
	if fr == nil || tr == nil {
		return nil, fmt.Errorf("ind: missing relation %q or %q", from, to)
	}
	if from == to {
		return nil, fmt.Errorf("ind: cannot move within one relation")
	}
	if attrPos < 0 || attrPos >= fr.Arity() {
		return nil, fmt.Errorf("ind: position %d out of range for %q", attrPos, from)
	}
	if fr.IsKeyPos(attrPos) {
		return nil, fmt.Errorf("ind: cannot move key attribute %s.%s", from, fr.Attrs[attrPos].Name)
	}
	fromVia := fr.KeyPositions()
	if len(fromVia) == 0 {
		return nil, fmt.Errorf("ind: %q has no key to join along", from)
	}
	if len(toVia) != len(fromVia) {
		return nil, fmt.Errorf("ind: via column count mismatch")
	}
	for i := range toVia {
		if toVia[i] < 0 || toVia[i] >= tr.Arity() {
			return nil, fmt.Errorf("ind: toVia position %d out of range", toVia[i])
		}
		if tr.Attrs[toVia[i]].Type != fr.Attrs[fromVia[i]].Type {
			return nil, fmt.Errorf("ind: via columns disagree on types")
		}
	}
	if !c.HasBijection(from, fromVia, to, toVia) {
		return nil, fmt.Errorf("ind: need both %s%v ⊆ %s%v and the converse", from, fromVia, to, toVia)
	}
	for _, d := range c.INDs {
		if d.Left.Rel == from && contains(d.Left.Pos, attrPos) ||
			d.Right.Rel == from && contains(d.Right.Pos, attrPos) {
			return nil, fmt.Errorf("ind: dependency %s references the moved column", d)
		}
	}

	// Build the new schema.
	moved := fr.Attrs[attrPos]
	newS := c.S.Clone()
	nfr := newS.Relation(from)
	ntr := newS.Relation(to)
	nfr.Attrs = append(nfr.Attrs[:attrPos:attrPos], nfr.Attrs[attrPos+1:]...)
	for i, k := range nfr.Key {
		if k > attrPos {
			nfr.Key[i] = k - 1
		}
	}
	movedName := moved.Name
	if ntr.AttrIndex(movedName) >= 0 {
		movedName = from + "_" + movedName
	}
	ntr.Attrs = append(ntr.Attrs, schema.Attribute{Name: movedName, Type: moved.Type})
	if err := newS.Validate(); err != nil {
		return nil, fmt.Errorf("ind: transformed schema invalid: %v", err)
	}
	// Remap the dependencies: columns of `from` after attrPos shift left.
	remap := func(r Ref) Ref {
		if r.Rel != from {
			return Ref{Rel: r.Rel, Pos: append([]int(nil), r.Pos...)}
		}
		pos := make([]int, len(r.Pos))
		for i, p := range r.Pos {
			if p > attrPos {
				p--
			}
			pos[i] = p
		}
		return Ref{Rel: r.Rel, Pos: pos}
	}
	newC := &Constrained{S: newS}
	for _, d := range c.INDs {
		newC.INDs = append(newC.INDs, IND{Left: remap(d.Left), Right: remap(d.Right)})
	}
	if err := newC.Validate(); err != nil {
		return nil, fmt.Errorf("ind: transformed dependencies invalid: %v", err)
	}

	alpha, err := buildAlpha(c.S, newS, from, to, attrPos, fromVia, toVia)
	if err != nil {
		return nil, err
	}
	beta, err := buildBeta(c.S, newS, from, to, attrPos, fromVia, toVia)
	if err != nil {
		return nil, err
	}
	return &MoveResult{New: newC, Alpha: alpha, Beta: beta}, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// buildAlpha constructs old → new: the enriched `to` view joins old `to`
// with old `from` along the via columns and appends the moved attribute;
// the shrunk `from` view projects the moved column away; every other
// relation is copied.
func buildAlpha(oldS, newS *schema.Schema, from, to string, attrPos int, fromVia, toVia []int) (*mapping.Mapping, error) {
	queries := make([]*cq.Query, len(newS.Relations))
	for i, nr := range newS.Relations {
		switch nr.Name {
		case to:
			or := oldS.Relation(to)
			fr := oldS.Relation(from)
			q := &cq.Query{HeadRel: nr.Name}
			toAtom := cq.Atom{Rel: to}
			for p := 0; p < or.Arity(); p++ {
				toAtom.Vars = append(toAtom.Vars, cq.Var(fmt.Sprintf("T%d", p)))
			}
			fromAtom := cq.Atom{Rel: from}
			for p := 0; p < fr.Arity(); p++ {
				fromAtom.Vars = append(fromAtom.Vars, cq.Var(fmt.Sprintf("F%d", p)))
			}
			q.Body = []cq.Atom{toAtom, fromAtom}
			for i := range toVia {
				q.Eqs = append(q.Eqs, cq.Equality{
					Left:  toAtom.Vars[toVia[i]],
					Right: cq.Term{Var: fromAtom.Vars[fromVia[i]]},
				})
			}
			for p := 0; p < or.Arity(); p++ {
				q.Head = append(q.Head, cq.Term{Var: toAtom.Vars[p]})
			}
			q.Head = append(q.Head, cq.Term{Var: fromAtom.Vars[attrPos]})
			queries[i] = q
		case from:
			fr := oldS.Relation(from)
			q := &cq.Query{HeadRel: nr.Name}
			atom := cq.Atom{Rel: from}
			for p := 0; p < fr.Arity(); p++ {
				atom.Vars = append(atom.Vars, cq.Var(fmt.Sprintf("F%d", p)))
			}
			q.Body = []cq.Atom{atom}
			for p := 0; p < fr.Arity(); p++ {
				if p == attrPos {
					continue
				}
				q.Head = append(q.Head, cq.Term{Var: atom.Vars[p]})
			}
			queries[i] = q
		default:
			queries[i] = cq.Identity(oldS.Relation(nr.Name))
		}
	}
	return mapping.New(oldS, newS, queries)
}

// buildBeta constructs new → old: old `to` projects the appended column
// away; old `from` re-joins the shrunk `from` with the enriched `to`
// along the via columns to recover the moved attribute.
func buildBeta(oldS, newS *schema.Schema, from, to string, attrPos int, fromVia, toVia []int) (*mapping.Mapping, error) {
	queries := make([]*cq.Query, len(oldS.Relations))
	for i, or := range oldS.Relations {
		switch or.Name {
		case to:
			nr := newS.Relation(to)
			q := &cq.Query{HeadRel: or.Name}
			atom := cq.Atom{Rel: to}
			for p := 0; p < nr.Arity(); p++ {
				atom.Vars = append(atom.Vars, cq.Var(fmt.Sprintf("T%d", p)))
			}
			q.Body = []cq.Atom{atom}
			for p := 0; p < or.Arity(); p++ {
				q.Head = append(q.Head, cq.Term{Var: atom.Vars[p]})
			}
			queries[i] = q
		case from:
			nfr := newS.Relation(from)
			ntr := newS.Relation(to)
			q := &cq.Query{HeadRel: or.Name}
			fromAtom := cq.Atom{Rel: from}
			for p := 0; p < nfr.Arity(); p++ {
				fromAtom.Vars = append(fromAtom.Vars, cq.Var(fmt.Sprintf("F%d", p)))
			}
			toAtom := cq.Atom{Rel: to}
			for p := 0; p < ntr.Arity(); p++ {
				toAtom.Vars = append(toAtom.Vars, cq.Var(fmt.Sprintf("T%d", p)))
			}
			q.Body = []cq.Atom{fromAtom, toAtom}
			// Join along the (remapped) via columns.
			for i := range fromVia {
				np := fromVia[i]
				if np > attrPos {
					np--
				}
				q.Eqs = append(q.Eqs, cq.Equality{
					Left:  fromAtom.Vars[np],
					Right: cq.Term{Var: toAtom.Vars[toVia[i]]},
				})
			}
			movedVar := toAtom.Vars[ntr.Arity()-1]
			for p := 0; p < or.Arity(); p++ {
				if p == attrPos {
					q.Head = append(q.Head, cq.Term{Var: movedVar})
					continue
				}
				np := p
				if np > attrPos {
					np--
				}
				q.Head = append(q.Head, cq.Term{Var: fromAtom.Vars[np]})
			}
			queries[i] = q
		default:
			queries[i] = cq.Identity(newS.Relation(or.Name))
		}
	}
	return mapping.New(newS, oldS, queries)
}
