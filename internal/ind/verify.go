package ind

import (
	"fmt"

	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
)

// Symbolic verification of equivalence preservation under keys plus
// inclusion dependencies.  An attribute migration is correct when
// β∘α = id on instances satisfying the old theory and α∘β = id on
// instances satisfying the new one.  Both are decided exactly by
// conjunctive query equivalence under the theory (EGDs from the keys,
// TGDs from the inclusion dependencies), using the terminating chase.

// TGDs renders the inclusion dependencies as tuple-generating
// dependencies: R[X] ⊆ S[Y] becomes R(x̄) → S(ȳ) with the X-positions of
// R shared into the Y-positions of S and every other head position
// existential.
func (c *Constrained) TGDs() []chase.TGD {
	out := make([]chase.TGD, 0, len(c.INDs))
	for _, d := range c.INDs {
		l := c.S.Relation(d.Left.Rel)
		r := c.S.Relation(d.Right.Rel)
		if l == nil || r == nil {
			continue
		}
		body := chase.TGDAtom{Rel: d.Left.Rel, Vars: make([]string, l.Arity())}
		for p := range body.Vars {
			body.Vars[p] = fmt.Sprintf("b%d", p)
		}
		head := chase.TGDAtom{Rel: d.Right.Rel, Vars: make([]string, r.Arity())}
		for p := range head.Vars {
			head.Vars[p] = fmt.Sprintf("e%d", p)
		}
		for i := range d.Left.Pos {
			head.Vars[d.Right.Pos[i]] = body.Vars[d.Left.Pos[i]]
		}
		out = append(out, chase.TGD{Body: []chase.TGDAtom{body}, Head: []chase.TGDAtom{head}})
	}
	return out
}

// WeaklyAcyclic reports whether the constraint set guarantees chase
// termination.
func (c *Constrained) WeaklyAcyclic() bool {
	return chase.WeaklyAcyclic(c.S, c.TGDs())
}

// IdentityUnder decides whether the mapping m (whose source and
// destination are structurally the same schema) is the identity on every
// instance satisfying the constraints: per relation, CQ equivalence with
// the identity query under the keys' EGDs and the inclusions' TGDs.
func IdentityUnder(m *mapping.Mapping, c *Constrained) (bool, error) {
	if len(m.Src.Relations) != len(m.Dst.Relations) {
		return false, nil
	}
	egds := fd.KeyFDs(c.S)
	tgds := c.TGDs()
	for i, q := range m.Queries {
		src := m.Src.Relations[i]
		if !schema.SameType(src, m.Dst.Relations[i]) {
			return false, nil
		}
		id := cq.Identity(src)
		ok, _, err := containment.EquivalentUnderTheory(q, id, m.Src, egds, tgds, 0)
		if err != nil {
			return false, fmt.Errorf("ind: identity test for %q: %v", src.Name, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Verify symbolically proves (or refutes) that a MoveResult is
// equivalence preserving: β∘α = id under the old constraints and
// α∘β = id under the new constraints.  Requires both constraint sets to
// be weakly acyclic (so the chase terminates); it returns an error
// otherwise.
func (c *Constrained) Verify(res *MoveResult) (bool, error) {
	if !c.WeaklyAcyclic() {
		return false, fmt.Errorf("ind: old constraint set is not weakly acyclic; chase may not terminate")
	}
	if !res.New.WeaklyAcyclic() {
		return false, fmt.Errorf("ind: new constraint set is not weakly acyclic; chase may not terminate")
	}
	ba, err := mapping.Compose(res.Beta, res.Alpha)
	if err != nil {
		return false, err
	}
	ok, err := IdentityUnder(ba, c)
	if err != nil || !ok {
		return ok, err
	}
	ab, err := mapping.Compose(res.Alpha, res.Beta)
	if err != nil {
		return false, err
	}
	return IdentityUnder(ab, res.New)
}
