package ind

import (
	"testing"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/mapping"
	"keyedeq/internal/schema"
)

func TestTGDsFromINDs(t *testing.T) {
	c := paperConstrained()
	tgds := c.TGDs()
	if len(tgds) != 3 {
		t.Fatalf("TGDs = %d, want 3", len(tgds))
	}
	for _, d := range tgds {
		if err := d.Validate(c.S); err != nil {
			t.Errorf("TGD %s invalid: %v", d, err)
		}
	}
}

func TestPaperConstraintsWeaklyAcyclic(t *testing.T) {
	c := paperConstrained()
	if !c.WeaklyAcyclic() {
		t.Error("the paper's §1 constraints should be weakly acyclic")
	}
}

// The headline extension test: the §1 attribute migration is PROVED
// equivalence preserving symbolically (chase with keys + inclusions),
// not just tested on random instances.
func TestVerifyPaperTransformationSymbolically(t *testing.T) {
	c := paperConstrained()
	res, err := c.MoveAttribute("salespeople", 1, "employee", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	ok, err := c.Verify(res)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the paper's transformation should verify symbolically")
	}
}

// Without the inclusion dependencies the very same mappings do NOT
// round-trip — the transformation is only equivalence preserving thanks
// to the referential integrity constraints, which is the paper's point.
func TestVerifyFailsWithoutINDs(t *testing.T) {
	c := paperConstrained()
	res, err := c.MoveAttribute("salespeople", 1, "employee", []int{0})
	if err != nil {
		t.Fatal(err)
	}
	// Same schema, no inclusion dependencies.
	bare := &Constrained{S: c.S}
	ba, err := mapping.Compose(res.Beta, res.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := IdentityUnder(ba, bare)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("β∘α should NOT be the identity under keys alone")
	}
	// With the INDs it is.
	ok, err = IdentityUnder(ba, c)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("β∘α should be the identity under keys + inclusions")
	}
}

func TestIdentityUnderRejectsShapeMismatch(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1)")
	s2 := schema.MustParse("P(k*:T1)\nQz(x*:T1)")
	m := mapping.MustNew(s1, s1, []*cq.Query{cq.MustParse("R(X) :- R(X).")})
	c := &Constrained{S: s1}
	ok, err := IdentityUnder(m, c)
	if err != nil || !ok {
		t.Errorf("identity mapping should pass: %v %v", ok, err)
	}
	m2 := mapping.MustNew(s1, s2, []*cq.Query{
		cq.MustParse("P(X) :- R(X)."),
		cq.MustParse("Qz(X) :- R(X)."),
	})
	ok, err = IdentityUnder(m2, c)
	if err != nil || ok {
		t.Errorf("shape mismatch should fail: %v %v", ok, err)
	}
}

func TestVerifyRejectsNonWeaklyAcyclic(t *testing.T) {
	// A cyclic existential inclusion: a(k) ⊆ b(k2) via non-key columns
	// that feed back.  Build a Constrained whose TGDs are not weakly
	// acyclic and check Verify refuses.
	s := schema.MustParse("a(k*:T1, x:T1)\nb(k*:T1, y:T1)")
	c := &Constrained{S: s, INDs: []IND{
		{Left: Ref{"a", []int{0}}, Right: Ref{"b", []int{0}}},
		{Left: Ref{"b", []int{0}}, Right: Ref{"a", []int{0}}},
		// The troublemakers: non-key column of each included in the
		// key column of the other, forcing fresh keys forever.
		{Left: Ref{"a", []int{1}}, Right: Ref{"b", []int{0}}},
		{Left: Ref{"b", []int{1}}, Right: Ref{"a", []int{0}}},
	}}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.WeaklyAcyclic() {
		t.Skip("fixture unexpectedly weakly acyclic; skip")
	}
	res, err := c.MoveAttribute("a", 1, "b", []int{0})
	if err != nil {
		// The move itself rejects INDs on the moved column — fine,
		// that's this fixture; directly exercise Verify's guard then.
		res = &MoveResult{New: c}
		if _, err := c.Verify(res); err == nil {
			t.Error("Verify should refuse non-weakly-acyclic constraints")
		}
		return
	}
	if _, err := c.Verify(res); err == nil {
		t.Error("Verify should refuse non-weakly-acyclic constraints")
	}
}

// Containment under theory: inclusion dependencies enable containments
// that fail without them.
func TestContainmentUnderTheory(t *testing.T) {
	s := schema.MustParse("R(a:T1)\nS(b:T1)")
	c := &Constrained{S: s, INDs: []IND{
		{Left: Ref{"R", []int{0}}, Right: Ref{"S", []int{0}}},
	}}
	// q1 returns R values; q2 returns R values that also appear in S.
	// Under R[a] ⊆ S[b] they coincide; without it q1 ⋢ q2.
	q1 := cq.MustParse("V(X) :- R(X).")
	q2 := cq.MustParse("V(X) :- R(X), S(Y), X = Y.")
	plain, err := containment.Contained(q1, q2, s)
	if err != nil {
		t.Fatal(err)
	}
	if plain {
		t.Error("without the IND q1 should not be contained in q2")
	}
	under, _, err := containment.ContainedUnderTheory(q1, q2, s, fd.KeyFDs(s), c.TGDs(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !under {
		t.Error("under the IND q1 ⊑ q2 should hold")
	}
	// The reverse holds unconditionally.
	rev, err := containment.Contained(q2, q1, s)
	if err != nil || !rev {
		t.Errorf("q2 ⊑ q1 should hold: %v %v", rev, err)
	}
}
