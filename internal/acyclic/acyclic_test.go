package acyclic

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func TestIsAcyclicShapes(t *testing.T) {
	cases := []struct {
		name string
		q    *cq.Query
		want bool
	}{
		{"single atom", cq.MustParse("V(X) :- E(X, Y)."), true},
		{"chain-4", gen.ChainQuery(4), true},
		{"star-4", gen.StarQuery(4), true},
		{"clique-3 (triangle)", gen.CliqueQuery(3), false},
		{"cross product", cq.MustParse("V(X, A) :- E(X, Y), F(A, B)."), true},
		// The 2-cycle E(x,y), E(y,x) IS α-acyclic: both hyperedges have
		// the same vertex set {x, y}, so one absorbs the other.
		{"2-cycle", cq.MustParse("V(X) :- E(X, Y), E(A, B), Y = A, B = X."), true},
		{"clique-4", gen.CliqueQuery(4), false},
	}
	for _, tt := range cases {
		if got := IsAcyclic(tt.q); got != tt.want {
			t.Errorf("%s: IsAcyclic = %v, want %v", tt.name, got, tt.want)
		}
	}
}

func TestJoinTreeShape(t *testing.T) {
	q := gen.ChainQuery(4)
	jt, ok := BuildJoinTree(q)
	if !ok {
		t.Fatal("chain should be acyclic")
	}
	if len(jt.Order) != 4 {
		t.Fatalf("Order = %v", jt.Order)
	}
	roots := 0
	for _, p := range jt.Parent {
		if p == -1 {
			roots++
		}
	}
	if roots != 1 {
		t.Errorf("expected one root, parents = %v", jt.Parent)
	}
	if jt.Root() < 0 {
		t.Error("Root not found")
	}
}

func TestEvalMatchesPlainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	queries := []*cq.Query{
		gen.ChainQuery(2),
		gen.ChainQuery(4),
		gen.StarQuery(3),
		gen.CliqueQuery(3), // cyclic: fallback path
		cq.MustParse("V(X) :- E(X, Y), Y = T1:2."),
		cq.MustParse("V(X, X) :- E(X, Y), X = Y."),
	}
	for trial := 0; trial < 40; trial++ {
		d := gen.RandomGraph(rng, 5, rng.Intn(12))
		for _, q := range queries {
			plain, err := cq.Eval(q, d)
			if err != nil {
				t.Fatal(err)
			}
			yann, _, err := Eval(q, d)
			if err != nil {
				t.Fatal(err)
			}
			if !plain.Equal(yann) {
				t.Fatalf("Yannakakis disagrees on %s over %s:\n%s vs %s", q, d, plain, yann)
			}
		}
	}
}

func TestFullReducerPrunes(t *testing.T) {
	// A long chain query over a graph with many dead-end edges: the
	// reducer must prune them, and the final join must visit few nodes.
	d := instance.NewDatabase(gen.GraphSchema())
	v := func(n int64) value.Value { return value.Value{Type: 1, N: n} }
	// One genuine 4-path 1->2->3->4->5 plus 50 dead-end edges from node 1.
	for i := int64(1); i <= 4; i++ {
		d.MustInsert("E", v(i), v(i+1))
	}
	for i := int64(100); i < 150; i++ {
		d.MustInsert("E", v(1), v(i))
	}
	q := gen.ChainQuery(4)
	out, stats, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Acyclic {
		t.Fatal("chain should take the acyclic path")
	}
	if out.Len() != 1 {
		t.Fatalf("answers = %s", out)
	}
	if stats.Pruned < 50 {
		t.Errorf("expected dead ends pruned, Pruned = %d", stats.Pruned)
	}
	// Compare against plain eval's work on the same instance.
	_, plainStats, err := cq.EvalWithStats(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Nodes >= plainStats.Nodes {
		t.Errorf("Yannakakis nodes %d should beat plain %d", stats.Nodes, plainStats.Nodes)
	}
}

func TestEvalUnsatisfiable(t *testing.T) {
	d := gen.PathGraph(3)
	q := cq.MustParse("V(X) :- E(X, Y), Y = T1:1, Y = T1:2.")
	out, _, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Errorf("unsatisfiable query returned %s", out)
	}
}

func TestEvalErrors(t *testing.T) {
	d := gen.PathGraph(2)
	if _, _, err := Eval(cq.MustParse("V(X) :- Z(X)."), d); err == nil {
		t.Error("unknown relation accepted")
	}
}

func TestSelfJoinReducedIndependently(t *testing.T) {
	// Two atoms over the SAME relation with different selections must be
	// reduced independently (the per-atom derived relations).
	s := schema.MustParse("E(src:T1, dst:T1)")
	d := instance.NewDatabase(s)
	v := func(n int64) value.Value { return value.Value{Type: 1, N: n} }
	d.MustInsert("E", v(1), v(2))
	d.MustInsert("E", v(2), v(3))
	q := cq.MustParse("V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2, X = T1:1.")
	out, stats, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if !stats.Acyclic {
		t.Error("selection chain should be acyclic")
	}
	if out.Len() != 1 || !out.Has(instance.Tuple{v(1), v(3)}) {
		t.Errorf("answers = %s", out)
	}
}

// Randomized agreement on chain variants with redundancy.
func TestEvalAgreementFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		q := gen.RandomChainVariant(rng, 1+rng.Intn(3), rng.Intn(2))
		d := gen.RandomGraph(rng, 4, rng.Intn(10))
		plain, err := cq.Eval(q, d)
		if err != nil {
			t.Fatal(err)
		}
		yann, _, err := Eval(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if !plain.Equal(yann) {
			t.Fatalf("disagreement on %s over %s", q, d)
		}
	}
}
