// Package acyclic implements α-acyclicity of conjunctive queries (the
// GYO ear-removal reduction and join-tree construction) and Yannakakis'
// semijoin algorithm: acyclic queries evaluate with a full reducer —
// two semijoin passes over a join tree — after which the backtracking
// join never explores a dead end.  Cyclic queries fall back to plain
// evaluation.
//
// The hypergraph of a query has one hyperedge per body atom whose
// vertices are the equality classes of its variables; classes bound to
// constants act as selections and are excluded from the hypergraph
// (they are applied when building the per-atom relations).
package acyclic

import (
	"fmt"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
)

// JoinTree is the output of a successful GYO reduction: Parent[i] is the
// atom index that absorbed atom i as an ear (-1 for the root), and Order
// lists atom indices in removal order (leaves first).
type JoinTree struct {
	Parent []int
	Order  []int
}

// Root returns the root atom index.
func (jt *JoinTree) Root() int {
	for i, p := range jt.Parent {
		if p == -1 {
			return i
		}
	}
	return -1
}

// hyperedges builds the per-atom vertex sets (equality-class
// representatives, excluding constant-bound classes).
func hyperedges(q *cq.Query) ([]map[cq.Var]bool, *cq.EqClasses) {
	eq := cq.NewEqClasses(q)
	edges := make([]map[cq.Var]bool, len(q.Body))
	for i, a := range q.Body {
		edges[i] = map[cq.Var]bool{}
		for _, v := range a.Vars {
			if _, bound := eq.Const(v); bound {
				continue
			}
			edges[i][eq.Find(v)] = true
		}
	}
	return edges, eq
}

// BuildJoinTree runs the GYO reduction.  ok=false means the query is
// cyclic (no join tree exists).
func BuildJoinTree(q *cq.Query) (*JoinTree, bool) {
	n := len(q.Body)
	if n == 0 {
		return nil, false
	}
	edges, _ := hyperedges(q)
	removed := make([]bool, n)
	jt := &JoinTree{Parent: make([]int, n)}
	for i := range jt.Parent {
		jt.Parent[i] = -1
	}
	remaining := n
	for remaining > 1 {
		progress := false
		for i := 0; i < n && remaining > 1; i++ {
			if removed[i] {
				continue
			}
			// Vertices of i shared with any other remaining edge.
			shared := map[cq.Var]bool{}
			for v := range edges[i] {
				for j := 0; j < n; j++ {
					if j == i || removed[j] {
						continue
					}
					if edges[j][v] {
						shared[v] = true
						break
					}
				}
			}
			// i is an ear if some other remaining edge contains all of
			// i's shared vertices.
			for j := 0; j < n; j++ {
				if j == i || removed[j] {
					continue
				}
				contains := true
				for v := range shared {
					if !edges[j][v] {
						contains = false
						break
					}
				}
				if contains {
					removed[i] = true
					jt.Parent[i] = j
					jt.Order = append(jt.Order, i)
					remaining--
					progress = true
					break
				}
			}
		}
		if !progress {
			return nil, false
		}
	}
	// The last remaining atom is the root.
	for i := 0; i < n; i++ {
		if !removed[i] {
			jt.Order = append(jt.Order, i)
			break
		}
	}
	return jt, true
}

// IsAcyclic reports whether q is α-acyclic.
func IsAcyclic(q *cq.Query) bool {
	_, ok := BuildJoinTree(q)
	return ok
}

// Stats reports the work Yannakakis evaluation did.
type Stats struct {
	// Acyclic records whether the semijoin path was taken.
	Acyclic bool
	// Semijoins counts semijoin applications (two per edge when acyclic).
	Semijoins int
	// Pruned counts tuples removed by the full reducer.
	Pruned int
	// Nodes is the final join's search-tree size.
	Nodes int64
}

// Eval evaluates q over d with Yannakakis' algorithm when q is acyclic
// (full reducer, then the backtracking join over the reduced relations),
// and falls back to plain evaluation otherwise.  The answer always
// equals cq.Eval's.
func Eval(q *cq.Query, d *instance.Database) (*instance.Relation, Stats, error) {
	var stats Stats
	jt, ok := BuildJoinTree(q)
	if !ok {
		rel, es, err := cq.EvalWithStats(q, d)
		stats.Nodes = es.Nodes
		return rel, stats, err
	}
	stats.Acyclic = true

	// Build per-atom local relations: selections (constant-bound
	// classes) and intra-atom equalities applied.
	eq := cq.NewEqClasses(q)
	if eq.Unsatisfiable() {
		// Empty answer with the right scheme.
		rel, _, err := cq.EvalWithStats(q, d)
		return rel, stats, err
	}
	local := make([]*instance.Relation, len(q.Body))
	for i, a := range q.Body {
		base := d.Relation(a.Rel)
		if base == nil {
			return nil, stats, fmt.Errorf("acyclic: no relation %q", a.Rel)
		}
		filtered := instance.NewRelation(base.Scheme)
		for _, t := range base.Tuples() {
			if localTupleOK(a, t, eq) {
				filtered.MustInsert(t)
			}
		}
		local[i] = filtered
	}

	// Full reducer: leaves-to-root then root-to-leaves semijoins along
	// the join tree.
	for _, i := range jt.Order {
		p := jt.Parent[i]
		if p < 0 {
			continue
		}
		n := semijoin(local[p], q.Body[p], local[i], q.Body[i], eq)
		stats.Semijoins++
		stats.Pruned += n
	}
	for k := len(jt.Order) - 1; k >= 0; k-- {
		i := jt.Order[k]
		p := jt.Parent[i]
		if p < 0 {
			continue
		}
		n := semijoin(local[i], q.Body[i], local[p], q.Body[p], eq)
		stats.Semijoins++
		stats.Pruned += n
	}

	// Final join over the reduced relations: rebuild as a derived
	// database with one relation per atom so atoms of the same relation
	// keep their individual reductions.
	derivedSchema := &schema.Schema{}
	derived := &cq.Query{HeadRel: q.HeadRel, Head: q.Head, Eqs: q.Eqs}
	dbOut := &instance.Database{}
	for i, a := range q.Body {
		name := fmt.Sprintf("atom%d", i)
		scheme := local[i].Scheme.Clone()
		scheme.Name = name
		derivedSchema.Relations = append(derivedSchema.Relations, scheme)
		derived.Body = append(derived.Body, cq.Atom{Rel: name, Vars: a.Vars})
	}
	dbOut.Schema = derivedSchema
	for i := range q.Body {
		rel := instance.NewRelation(derivedSchema.Relations[i])
		for _, t := range local[i].Tuples() {
			rel.MustInsert(t)
		}
		dbOut.Relations = append(dbOut.Relations, rel)
	}
	rel, es, err := cq.EvalWithStats(derived, dbOut)
	stats.Nodes = es.Nodes
	return rel, stats, err
}

// localTupleOK applies the atom's own conditions: constant-bound classes
// and positions whose classes coincide within the atom.
func localTupleOK(a cq.Atom, t instance.Tuple, eq *cq.EqClasses) bool {
	for p, v := range a.Vars {
		if c, ok := eq.Const(v); ok && t[p] != c {
			return false
		}
		for p2 := p + 1; p2 < len(a.Vars); p2++ {
			if eq.Same(v, a.Vars[p2]) && t[p] != t[p2] {
				return false
			}
		}
	}
	return true
}

// semijoin filters target (atom ta) by source (atom sa): keep target
// tuples whose shared-class projection appears in source.  Returns the
// number of tuples removed.
func semijoin(target *instance.Relation, ta cq.Atom, source *instance.Relation, sa cq.Atom, eq *cq.EqClasses) int {
	// Shared classes and their first positions in each atom.
	type sharing struct{ tp, sp int }
	var sh []sharing
	for tp, tv := range ta.Vars {
		for sp, sv := range sa.Vars {
			if eq.Same(tv, sv) {
				sh = append(sh, sharing{tp, sp})
				break
			}
		}
	}
	if len(sh) == 0 {
		// No shared classes: semijoin only removes everything when the
		// source is empty (a cross product with an empty relation).
		if source.Len() == 0 {
			n := target.Len()
			for _, t := range target.Tuples() {
				target.Delete(t)
			}
			return n
		}
		return 0
	}
	seen := map[string]bool{}
	for _, s := range source.Tuples() {
		key := ""
		for _, x := range sh {
			key += s[x.sp].String() + "|"
		}
		seen[key] = true
	}
	removed := 0
	for _, t := range target.Tuples() {
		key := ""
		for _, x := range sh {
			key += t[x.tp].String() + "|"
		}
		if !seen[key] {
			target.Delete(t)
			removed++
		}
	}
	return removed
}
