package engine

import (
	"fmt"
	"sync"
	"testing"

	"keyedeq/internal/containment"
)

func TestCacheGetPut(t *testing.T) {
	c := newVerdictCache(64)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.put("a", Verdict{Holds: true, Stats: containment.Stats{Nodes: 7}})
	v, ok := c.get("a")
	if !ok || !v.Holds || v.Stats.Nodes != 7 {
		t.Fatalf("got %+v ok=%v", v, ok)
	}
	st := c.stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestCacheOverwrite(t *testing.T) {
	c := newVerdictCache(64)
	c.put("a", Verdict{Holds: false})
	c.put("a", Verdict{Holds: true})
	if v, ok := c.get("a"); !ok || !v.Holds {
		t.Fatalf("overwrite lost: %+v ok=%v", v, ok)
	}
	if st := c.stats(); st.Entries != 1 {
		t.Fatalf("duplicate entry after overwrite: %+v", st)
	}
}

func TestCacheEvictsLRUPerShard(t *testing.T) {
	// Capacity 16 over 16 shards = 1 entry per shard: inserting two keys
	// of the same shard must evict the older one.
	c := newVerdictCache(16)
	sh := c.shard("seed")
	var same []string
	for i := 0; same == nil || len(same) < 2; i++ {
		k := fmt.Sprintf("k%d", i)
		if c.shard(k) == sh {
			same = append(same, k)
		}
	}
	c.put(same[0], Verdict{})
	c.put(same[1], Verdict{})
	if _, ok := c.get(same[0]); ok {
		t.Fatal("oldest entry not evicted at capacity")
	}
	if _, ok := c.get(same[1]); !ok {
		t.Fatal("newest entry evicted")
	}
	if st := c.stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheNonDivisibleCapacity(t *testing.T) {
	// 100 does not divide by the 16 shards: the remainder must be
	// distributed, not silently dropped (the pre-fix cache held 16*6=96
	// entries while reporting capacity 100).
	c := newVerdictCache(100)
	var total int
	for i := range c.shards {
		total += c.shards[i].cap
	}
	if total != 100 {
		t.Fatalf("shard capacities sum to %d, want the configured 100", total)
	}
	if got := c.stats().Capacity; got != 100 {
		t.Fatalf("stats capacity = %d, want 100", got)
	}
	// Saturate every shard: with far more distinct keys than capacity,
	// Entries must be able to reach Capacity exactly.
	for i := 0; i < 10000; i++ {
		c.put(fmt.Sprintf("key-%d", i), Verdict{})
	}
	st := c.stats()
	if st.Entries != st.Capacity {
		t.Fatalf("entries %d != capacity %d after saturation", st.Entries, st.Capacity)
	}
}

func TestCacheShardDistribution(t *testing.T) {
	// The first capacity%shardCount shards carry the remainder; all
	// shards hold at least capacity/shardCount.
	c := newVerdictCache(cacheShardCount*3 + 5)
	for i := range c.shards {
		want := 3
		if i < 5 {
			want = 4
		}
		if c.shards[i].cap != want {
			t.Fatalf("shard %d cap = %d, want %d", i, c.shards[i].cap, want)
		}
	}
}

// TestCacheSteadyStateZeroAllocs pins the hot path: get and put on a
// resident key must not allocate — no hasher construction, no
// hash.Hash64 boxing, no []byte conversion of the key.
func TestCacheSteadyStateZeroAllocs(t *testing.T) {
	c := newVerdictCache(64)
	key := "equ\x1ecanonical-left\x1fcanonical-right"
	v := Verdict{Holds: true}
	c.put(key, v)
	allocs := testing.AllocsPerRun(1000, func() {
		c.put(key, v)
		if _, ok := c.get(key); !ok {
			t.Fatal("resident key missed")
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state get+put allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestCacheMinimumCapacity(t *testing.T) {
	c := newVerdictCache(1)
	if c.capacity < cacheShardCount {
		t.Fatalf("capacity %d below shard count", c.capacity)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newVerdictCache(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%64)
				c.put(k, Verdict{Holds: i%2 == 0, Stats: containment.Stats{Nodes: int64(i)}})
				c.get(k)
			}
		}(w)
	}
	wg.Wait()
	st := c.stats()
	if st.Entries == 0 || st.Entries > 64 {
		t.Fatalf("entries = %d after concurrent churn", st.Entries)
	}
}

func TestHitRate(t *testing.T) {
	if (CacheStats{}).HitRate() != 0 {
		t.Fatal("empty stats should report 0 hit rate")
	}
	if got := (CacheStats{Hits: 3, Misses: 1}).HitRate(); got != 0.75 {
		t.Fatalf("hit rate = %v, want 0.75", got)
	}
}
