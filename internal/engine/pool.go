package engine

import (
	"context"
	"sync"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
)

// Pool routes decisions to per-(schema, dependencies) engines so callers
// that range over many schemas — the dominance search, the sqeq CLI —
// get canonical caching without managing engine lifetimes themselves.
// A Pool is safe for concurrent use.
type Pool struct {
	opts    Options
	mu      sync.Mutex
	engines map[string]*Engine
}

// NewPool builds a pool whose engines all share opts.
func NewPool(opts Options) *Pool {
	return &Pool{opts: opts, engines: make(map[string]*Engine)}
}

// For returns the pool's engine for (s, deps), creating it on first use.
// Engines are keyed by Fingerprint, so structurally equal schema and
// dependency sets share one engine (and one cache) even across distinct
// pointers.
func (p *Pool) For(s *schema.Schema, deps []fd.FD) *Engine {
	fp := Fingerprint(s, deps)
	p.mu.Lock()
	defer p.mu.Unlock()
	e, ok := p.engines[fp]
	if !ok {
		e = New(s, deps, p.opts)
		p.engines[fp] = e
	}
	return e
}

// EquivCtx decides q1 ≡ q2 over s under deps through the pool's cached
// engines, honoring ctx cancellation and deadlines.  Its signature
// matches mapping.EquivCtxFunc, so callers that serve requests — the
// keyedeqd daemon, the dominance search — keep per-request timeouts all
// the way into the homomorphism searches.
func (p *Pool) EquivCtx(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
	r := p.For(s, deps).Decide(ctx, q1, q2, OpEquivalent)
	return r.Holds, r.Stats, r.Err
}

// ContainsCtx decides q1 ⊑ q2 through the pool's cached engines,
// honoring ctx cancellation and deadlines.
func (p *Pool) ContainsCtx(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
	r := p.For(s, deps).Decide(ctx, q1, q2, OpContained)
	return r.Holds, r.Stats, r.Err
}

// Equiv decides q1 ≡ q2 over s under deps through the pool's cached
// engines.  Its signature matches containment.EquivalentUnder (and hence
// mapping.EquivFunc), so it is a drop-in accelerated replacement;
// callers with a context should prefer EquivCtx, which this delegates
// to with a background context.
func (p *Pool) Equiv(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
	return p.EquivCtx(context.Background(), q1, q2, s, deps)
}

// Contains decides q1 ⊑ q2 through the pool's cached engines; callers
// with a context should prefer ContainsCtx.
func (p *Pool) Contains(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
	return p.ContainsCtx(context.Background(), q1, q2, s, deps)
}

// Stats sums cache statistics over every engine the pool created.
func (p *Pool) Stats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out CacheStats
	for _, e := range p.engines {
		s := e.CacheStats()
		out.Hits += s.Hits
		out.Misses += s.Misses
		out.Evictions += s.Evictions
		out.Entries += s.Entries
		out.Capacity += s.Capacity
	}
	return out
}
