package engine

import (
	"context"
	"errors"
	"sync"
	"testing"

	"keyedeq/internal/containment"
	"keyedeq/internal/gen"
	"keyedeq/internal/obs"
)

type memStore struct {
	mu   sync.Mutex
	puts []Record
	err  error
}

type Record struct {
	Key string
	V   Verdict
}

func (m *memStore) Put(key string, v Verdict) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err != nil {
		return m.err
	}
	m.puts = append(m.puts, Record{key, v})
	return nil
}

func (m *memStore) count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.puts)
}

func TestStoreReceivesFreshVerdictsOnly(t *testing.T) {
	st := &memStore{}
	e := New(gen.GraphSchema(), nil, Options{Store: st})
	q1, q2 := gen.ChainQuery(2), gen.ChainQuery(3)

	r := e.Decide(context.Background(), q1, q2, OpEquivalent)
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if st.count() != 1 {
		t.Fatalf("store puts after fresh decision: %d, want 1", st.count())
	}
	got := st.puts[0]
	if got.Key != r.PairKey || got.V.Holds != r.Holds {
		t.Fatalf("stored %+v, decision key=%q holds=%v", got, r.PairKey, r.Holds)
	}

	// A cache hit must not re-append.
	r2 := e.Decide(context.Background(), q1, q2, OpEquivalent)
	if !r2.CacheHit {
		t.Fatal("second decision missed the cache")
	}
	if st.count() != 1 {
		t.Fatalf("store puts after cache hit: %d, want still 1", st.count())
	}

	// The isomorphic fast path is a fresh verdict too.
	before := st.count()
	if r := e.Decide(context.Background(), q1, gen.ChainQuery(2), OpEquivalent); r.Err != nil || !r.Holds {
		t.Fatalf("isomorphic decide: %+v", r)
	}
	if st.count() != before+1 {
		t.Fatalf("store puts after isomorphic decision: %d, want %d", st.count(), before+1)
	}
}

func TestStoreBatchAndDedup(t *testing.T) {
	st := &memStore{}
	e := New(gen.GraphSchema(), nil, Options{Store: st, Workers: 2})
	q1, q2 := gen.ChainQuery(2), gen.ChainQuery(3)
	jobs := []Job{
		{Left: q1, Right: q2, Op: OpEquivalent},
		{Left: q1, Right: q2, Op: OpEquivalent}, // dedup of the first
		{Left: q2, Right: q1, Op: OpContained},
	}
	rep := e.Run(context.Background(), jobs)
	if rep.Errors != 0 {
		t.Fatalf("batch errors: %+v", rep)
	}
	// Two distinct canonical pairs → exactly two store appends; the
	// deduped job adds nothing.
	if st.count() != 2 {
		t.Fatalf("store puts after batch: %d, want 2", st.count())
	}
}

func TestWarmLoadsCacheWithoutStore(t *testing.T) {
	st := &memStore{}
	e := New(gen.GraphSchema(), nil, Options{Store: st})
	q1, q2 := gen.ChainQuery(2), gen.ChainQuery(3)

	// Compute the canonical pair key on a throwaway engine so the warm
	// target's own counters stay clean.
	scout := New(gen.GraphSchema(), nil, Options{DisableCache: true})
	key := scout.Decide(context.Background(), q1, q2, OpEquivalent).PairKey
	if key == "" {
		t.Fatal("no pair key from scout")
	}

	frozen := containment.SearchStats(123)
	e.Warm(key, Verdict{Holds: false, Stats: frozen})
	if st.count() != 0 {
		t.Fatalf("Warm wrote %d records to the store", st.count())
	}
	r := e.Decide(context.Background(), q1, q2, OpEquivalent)
	if !r.CacheHit {
		t.Fatal("warm-loaded verdict was not a cache hit")
	}
	if r.Stats != frozen {
		t.Fatalf("warm hit stats = %+v, want the frozen %+v", r.Stats, frozen)
	}
	if st.count() != 0 {
		t.Fatalf("cache hit appended %d records", st.count())
	}
}

func TestWarmDisabledCacheIsNoop(t *testing.T) {
	e := New(gen.GraphSchema(), nil, Options{DisableCache: true, Store: &memStore{}})
	e.Warm("anything", Verdict{Holds: true})
	if st := e.CacheStats(); st.Entries != 0 {
		t.Fatalf("warm on disabled cache: %+v", st)
	}
}

func TestStoreAppendErrorsCountedNotFatal(t *testing.T) {
	st := &memStore{err: errors.New("disk full")}
	reg := obs.NewRegistry()
	e := New(gen.GraphSchema(), nil, Options{Store: st, Obs: &obs.Obs{Reg: reg}})
	r := e.Decide(context.Background(), gen.ChainQuery(2), gen.ChainQuery(3), OpEquivalent)
	if r.Err != nil {
		t.Fatalf("store failure leaked into the decision: %v", r.Err)
	}
	if got := reg.C(obs.CStoreAppendErrors).Value(); got != 1 {
		t.Fatalf("append error counter = %d, want 1", got)
	}
	if got := reg.C(obs.CStoreAppends).Value(); got != 0 {
		t.Fatalf("append counter = %d, want 0", got)
	}
	// The verdict is still cached and served.
	if r2 := e.Decide(context.Background(), gen.ChainQuery(2), gen.ChainQuery(3), OpEquivalent); !r2.CacheHit {
		t.Fatal("verdict not cached after store failure")
	}
}
