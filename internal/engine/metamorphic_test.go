package engine

import (
	"context"
	"math/rand"
	"testing"

	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/schema"
)

// renameDeps carries a family's key dependencies over to the renamed
// schema (key positions are preserved by the renaming).
func renameDeps(f *gen.Family, s2 *schema.Schema) []fd.FD {
	if len(f.Deps) == 0 {
		return nil
	}
	return fd.KeyFDs(s2)
}

// The metamorphic layer checks the engine's verdicts are invariant under
// every transformation that cannot change query semantics: variable
// renaming, body-atom reordering, equality-list restructuring (all via
// gen.AlphaVariant), and relation/attribute renaming of the whole
// schema.  Seeds are fixed so failures replay.

func TestMetamorphicVerdictInvariantUnderAlphaVariants(t *testing.T) {
	for _, fam := range gen.FamilyNames() {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			f, err := gen.PairCorpus(rng, fam, 60)
			if err != nil {
				t.Fatal(err)
			}
			e := New(f.Schema, f.Deps, Options{Workers: 4, DisableCache: true})
			for i, p := range f.Pairs {
				base := e.Decide(context.Background(), p.Left, p.Right, OpEquivalent)
				if base.Err != nil {
					t.Fatalf("pair %d (%s): %v", i, p.Note, base.Err)
				}
				for v := 0; v < 3; v++ {
					l := gen.AlphaVariant(rng, p.Left)
					r := gen.AlphaVariant(rng, p.Right)
					got := e.Decide(context.Background(), l, r, OpEquivalent)
					if got.Err != nil {
						t.Fatalf("pair %d variant %d (%s): %v", i, v, p.Note, got.Err)
					}
					if got.Holds != base.Holds {
						t.Fatalf("pair %d (%s): verdict flipped under alpha variant %d\n  base    ≡(%s, %s) = %v\n  variant ≡(%s, %s) = %v",
							i, p.Note, v, p.Left, p.Right, base.Holds, l, r, got.Holds)
					}
				}
			}
		})
	}
}

func TestMetamorphicVerdictInvariantUnderContainmentVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	f, err := gen.PairCorpus(rng, "graph-mixed", 80)
	if err != nil {
		t.Fatal(err)
	}
	e := New(f.Schema, f.Deps, Options{Workers: 4, DisableCache: true})
	for i, p := range f.Pairs {
		base := e.Decide(context.Background(), p.Left, p.Right, OpContained)
		if base.Err != nil {
			t.Fatalf("pair %d: %v", i, base.Err)
		}
		got := e.Decide(context.Background(),
			gen.AlphaVariant(rng, p.Left), gen.AlphaVariant(rng, p.Right), OpContained)
		if got.Err != nil || got.Holds != base.Holds {
			t.Fatalf("pair %d (%s): containment verdict flipped: %v vs %v (err %v)",
				i, p.Note, base.Holds, got.Holds, got.Err)
		}
	}
}

func TestMetamorphicVerdictInvariantUnderRelationRenaming(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for _, fam := range []string{"graph-mixed", "keyed"} {
		fam := fam
		t.Run(fam, func(t *testing.T) {
			f, err := gen.PairCorpus(rng, fam, 40)
			if err != nil {
				t.Fatal(err)
			}
			// Rename every relation (and attribute) of the schema and map
			// the queries along; a schema identical up to renaming must
			// yield identical verdicts.
			ren := make(map[string]string)
			for i, r := range f.Schema.Relations {
				ren[r.Name] = "Zz" + string(rune('A'+i))
			}
			s2 := gen.RenameSchemaRelations(f.Schema, ren)
			e1 := New(f.Schema, f.Deps, Options{DisableCache: true})
			e2 := New(s2, renameDeps(f, s2), Options{DisableCache: true})
			for i, p := range f.Pairs {
				base := e1.Decide(context.Background(), p.Left, p.Right, OpEquivalent)
				got := e2.Decide(context.Background(),
					gen.RenameRelations(p.Left, ren), gen.RenameRelations(p.Right, ren), OpEquivalent)
				if base.Err != nil || got.Err != nil {
					t.Fatalf("pair %d (%s): errs %v / %v", i, p.Note, base.Err, got.Err)
				}
				if base.Holds != got.Holds {
					t.Fatalf("pair %d (%s): verdict changed under relation renaming: %v vs %v",
						i, p.Note, base.Holds, got.Holds)
				}
			}
		})
	}
}
