package engine

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
)

// FuzzCanonicalKey checks two invariants over arbitrary .cq text.  Under
// plain `go test` the seed corpus runs as regression tests; `go test
// -fuzz=FuzzCanonicalKey` explores further.
//
//  1. Canonicalization never panics on any query the parser accepts
//     (schema-bearing and schema-free paths alike).
//  2. α-equivalent presentations of the same text — variable renaming,
//     atom reordering, equality restructuring — map to the same key, and
//     the key is stable across repeated computation.
func FuzzCanonicalKey(f *testing.F) {
	seeds := []string{
		"Q(X, Y) :- P(X, Y).",
		"Q(X) :- R(X, Y), S(Z, W), Y = Z, W = T1:3.",
		"Q(T1:7, Y) :- P(X, Y).",
		"V(X, X) :- P(X, Y), X = Y.",
		"V(X) :- E(X, Y), E(X2, Y2), X = X2, Y = Y2.",
		"V(X) :- E(X, Y), Y = T1:1, Y = T1:2.",
		"Q(X) :- P(X, Y), T1:1 = T1:2.",
		"V(A) :- E(A, B), E(C, D), E(E2, F), B = C, D = E2.",
		"V(X0) :- E(X0, Y0), E(X1, Y1), E(X2, Y2), X0 = X1, X1 = X2.",
	}
	for _, s := range seeds {
		f.Add(s, int64(1))
	}
	f.Fuzz(func(t *testing.T, text string, seed int64) {
		q, err := cq.Parse(text)
		if err != nil {
			return
		}
		c1 := CanonicalizeQuery(q, nil)
		if c1.Key == "" {
			t.Fatalf("empty key for parsed query %s", q)
		}
		if again := CanonicalizeQuery(q, nil); again.Key != c1.Key || again.Exact != c1.Exact {
			t.Fatalf("canonicalization unstable: %q vs %q", c1.Key, again.Key)
		}
		// A reparse of the query's own print is the identity
		// presentation; its key must agree.
		if q2, err := cq.Parse(q.String()); err == nil {
			if c2 := CanonicalizeQuery(q2, nil); c2.Key != c1.Key {
				t.Fatalf("reparse changed key:\n  %q\n  %q", c1.Key, c2.Key)
			}
		}
		// Random α-equivalent presentations must collide (only exact
		// keys promise canonicity; the budget backstop may not).
		if !c1.Exact {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3; i++ {
			v := gen.AlphaVariant(rng, q)
			cv := CanonicalizeQuery(v, nil)
			if cv.Key != c1.Key {
				t.Fatalf("alpha variant changed key:\n  base    %s -> %q\n  variant %s -> %q",
					q, c1.Key, v, cv.Key)
			}
		}
	})
}
