package engine

import (
	"context"
	"math/rand"
	"testing"

	"keyedeq/internal/containment"
	"keyedeq/internal/gen"
)

// differentialPairs is the per-family corpus size for the differential
// layer.  ISSUE 3 requires at least 500 generated pairs per schema
// family decided bit-identically by the engine and the sequential path.
const differentialPairs = 500

func TestDifferentialEngineVsSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("differential corpus is slow in -short mode")
	}
	for fi, fam := range gen.FamilyNames() {
		fam, fi := fam, fi
		t.Run(fam, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(1000 + fi)))
			f, err := gen.PairCorpus(rng, fam, differentialPairs)
			if err != nil {
				t.Fatal(err)
			}
			// Cache sized to hold every distinct pair so the second pass
			// can demand a 100% hit rate.
			e := New(f.Schema, f.Deps, Options{Workers: 4, CacheSize: 4 * differentialPairs})
			jobs := make([]Job, len(f.Pairs))
			for i, p := range f.Pairs {
				jobs[i] = Job{Left: p.Left, Right: p.Right, Op: OpEquivalent}
			}

			rep := e.Run(context.Background(), jobs)
			if rep.Errors != 0 {
				for i, r := range rep.Results {
					if r.Err != nil {
						t.Fatalf("pair %d (%s): %v", i, f.Pairs[i].Note, r.Err)
					}
				}
			}
			// Bit-identical verdicts against the sequential decision
			// procedure, pair by pair.
			for i, p := range f.Pairs {
				want, _, err := containment.EquivalentUnder(p.Left, p.Right, f.Schema, f.Deps)
				if err != nil {
					t.Fatalf("pair %d (%s): sequential: %v", i, p.Note, err)
				}
				if rep.Results[i].Holds != want {
					t.Fatalf("pair %d (%s): engine=%v sequential=%v\n  left  %s\n  right %s",
						i, p.Note, rep.Results[i].Holds, want, p.Left, p.Right)
				}
			}

			// Second pass over the same jobs: every pair must be answered
			// from the cache, with unchanged verdicts.
			second := e.Run(context.Background(), jobs)
			if second.Computed != 0 || second.CacheHits != len(jobs) {
				t.Fatalf("second pass: computed %d, cache hits %d of %d (evictions %d)",
					second.Computed, second.CacheHits, len(jobs), second.Cache.Evictions)
			}
			for i := range jobs {
				if second.Results[i].Holds != rep.Results[i].Holds {
					t.Fatalf("pair %d: verdict changed between passes", i)
				}
			}

			// Alpha pairs are equivalent by construction — a directed
			// sanity check that the corpus exercises both verdicts.
			pos := 0
			for i, p := range f.Pairs {
				if rep.Results[i].Holds {
					pos++
				} else if len(p.Note) > 0 && p.Note[len(p.Note)-1] != ' ' && containsAlpha(p.Note) {
					t.Fatalf("alpha pair %d (%s) judged inequivalent", i, p.Note)
				}
			}
			if pos == 0 || pos == len(f.Pairs) {
				t.Fatalf("degenerate corpus: %d/%d positive verdicts", pos, len(f.Pairs))
			}
		})
	}
}

// containsAlpha reports whether a corpus note marks an alpha pair.
func containsAlpha(note string) bool {
	for i := 0; i+5 <= len(note); i++ {
		if note[i:i+5] == "alpha" {
			return true
		}
	}
	return false
}
