package engine

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/obs"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Op selects the decision a Job asks for.
type Op int

const (
	// OpEquivalent decides Left ≡ Right (mutual containment).
	OpEquivalent Op = iota
	// OpContained decides Left ⊑ Right.
	OpContained
)

// String renders the op tag used inside pair keys.
func (o Op) String() string {
	if o == OpContained {
		return "sub"
	}
	return "equ"
}

// Options configures an Engine.
type Options struct {
	// Workers sizes the batch worker pool; 0 means runtime.GOMAXPROCS,
	// 1 means strictly sequential execution.
	Workers int
	// CacheSize bounds the verdict cache (entries); 0 means the
	// default of 4096.
	CacheSize int
	// DisableCache turns verdict caching off entirely.
	DisableCache bool
	// JobTimeout bounds each pair's homomorphism searches; 0 means no
	// per-job timeout.  Freeze and chase run under the batch context.
	JobTimeout time.Duration
	// Now, when set, timestamps batch runs so Report.Wall is filled.
	// It is injected (rather than calling time.Now here) because
	// library code must stay clock-free; command layers pass time.Now.
	Now func() time.Time
	// Obs, when set, is installed into every Decide/Run context so the
	// whole pipeline — canonicalization, chase, planning, search —
	// reports through its registry and sink.  When nil, an Obs already
	// carried by the caller's context is used instead; with neither the
	// pipeline runs unobserved at near-zero cost.
	Obs *obs.Obs
	// GenericSearch forces the generic planned homomorphism search
	// instead of the interned default — the escape hatch when a verdict
	// needs re-checking against the differential oracle.  A bool (rather
	// than a cq.SearchMode field) keeps the zero-value Options on the
	// default interned path.
	GenericSearch bool
	// Store, when set (and caching is enabled), receives every freshly
	// computed verdict at the moment it enters the cache — never cache
	// hits, batch dedups, warm loads, or errored pairs — so a daemon
	// can persist decisions and replay them into the cache on restart.
	// Append failures are counted (CStoreAppendErrors) and otherwise
	// ignored: persistence is best-effort relative to serving.
	Store VerdictStore
}

// VerdictStore receives computed verdicts for persistence.  The engine
// calls Put from its worker goroutines, so implementations must be safe
// for concurrent use.  It is defined here (rather than importing the
// store package) so the engine stays decoupled from any one on-disk
// format.
type VerdictStore interface {
	Put(key string, v Verdict) error
}

// DefaultCacheSize is the verdict cache bound used when Options.CacheSize
// is zero.
const DefaultCacheSize = 4096

// Job is one decision request in a batch.
type Job struct {
	Left, Right *cq.Query
	Op          Op
}

// Result is the outcome of one Job.
type Result struct {
	// Holds is the decision (Left ≡ Right or Left ⊑ Right).
	Holds bool
	// CacheHit reports the verdict came from the cache (Stats then
	// records the original computation's work, not new work).
	CacheHit bool
	// Deduped reports the verdict was computed once for another job of
	// the same batch with the same canonical pair.
	Deduped bool
	// Err is set when the pair was undecidable (validation failure,
	// cancellation, timeout).
	Err error
	// Stats records the work performed for this pair.
	Stats containment.Stats
	// PairKey is the canonical pair key (exposed for tests and
	// debugging).
	PairKey string
}

// Report aggregates a batch run.
type Report struct {
	Results []Result
	// Pairs is len(Results); Holding counts true verdicts; Errors
	// counts failed jobs.
	Pairs, Holding, Errors int
	// Computed counts pairs actually decided by search; CacheHits and
	// Deduped count pairs answered without new work.
	Computed, CacheHits, Deduped int
	// Nodes and ChaseIterations total the new work performed.
	Nodes           int64
	ChaseIterations int
	// Cache snapshots the engine cache after the run.
	Cache CacheStats
	// Wall is the elapsed wall time (zero unless Options.Now was set).
	Wall time.Duration
	// Workers is the pool size the batch ran with.
	Workers int
}

// Engine decides conjunctive query equivalence and containment over a
// fixed schema and dependency set, with canonical-form caching and
// parallel batch execution.  An Engine is safe for concurrent use.
type Engine struct {
	s    *schema.Schema
	deps []fd.FD
	opts Options
	// cache maps canonical pair keys to verdicts; nil when disabled.
	cache *verdictCache
}

// New builds an engine for deciding queries over s under deps (pass
// fd.KeyFDs(s) for the paper's keyed setting, nil for plain CQ
// equivalence).
func New(s *schema.Schema, deps []fd.FD, opts Options) *Engine {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.CacheSize <= 0 {
		opts.CacheSize = DefaultCacheSize
	}
	e := &Engine{s: s, deps: deps, opts: opts}
	if !opts.DisableCache {
		e.cache = newVerdictCache(opts.CacheSize)
	}
	return e
}

// Schema returns the schema the engine decides over.
func (e *Engine) Schema() *schema.Schema { return e.s }

// searchMode resolves the homomorphism search mode this engine's
// decisions run under.
func (e *Engine) searchMode() cq.SearchMode {
	if e.opts.GenericSearch {
		return cq.SearchPlanned
	}
	return cq.SearchDefault
}

// CacheStats snapshots the verdict cache (zero when caching is off).
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// Warm preloads the cache with a previously computed verdict — a store
// replay at boot — without touching the store or the hit/miss
// accounting.  A no-op when caching is disabled.
func (e *Engine) Warm(key string, v Verdict) {
	if e.cache == nil {
		return
	}
	e.cache.put(key, v)
}

// cachePut enters a freshly computed verdict into the cache and
// forwards it to the persistence store, counting appends and append
// failures.  Call sites guard on e.cache != nil, so a disabled cache
// also disables persistence (nothing could be warm-loaded back anyway).
func (e *Engine) cachePut(o *obs.Obs, key string, v Verdict) {
	e.cache.put(key, v)
	if e.opts.Store == nil {
		return
	}
	if err := e.opts.Store.Put(key, v); err != nil {
		o.C(obs.CStoreAppendErrors).Add(1)
		return
	}
	o.C(obs.CStoreAppends).Add(1)
}

// pairKey builds the cache key for a pair.  Equivalence is symmetric,
// so its two canonical keys are sorted to double the hit rate; the
// schema/dependency fingerprint is not included because the cache is
// private to this engine.
func pairKey(op Op, k1, k2 string) string {
	if op == OpEquivalent && k2 < k1 {
		k1, k2 = k2, k1
	}
	return op.String() + "\x1e" + k1 + "\x1f" + k2
}

// withObs resolves the observability handle for a call: the engine's
// configured Obs is installed into ctx (so the chase and search layers
// see it), else whatever Obs the caller's ctx already carries is used.
func (e *Engine) withObs(ctx context.Context) (context.Context, *obs.Obs) {
	if e.opts.Obs != nil {
		return obs.NewContext(ctx, e.opts.Obs), e.opts.Obs
	}
	return ctx, obs.FromContext(ctx)
}

// canonicalize computes a query's canonical key, counting the work and
// emitting a canonicalize span when tracing is on.
func (e *Engine) canonicalize(ctx context.Context, o *obs.Obs, q *cq.Query) string {
	start := o.Time()
	k := CanonicalizeQuery(q, e.s).Key
	o.C(obs.CCanonicalized).Inc()
	if o.SpansOn() {
		o.EmitSpan(ctx, obs.StageCanonicalize, start, nil,
			obs.I("atoms", int64(len(q.Body))))
	}
	return k
}

// countResult bumps the per-pair counters for one finished Result.
// Shared by Decide and Run's aggregation loop so both entry points
// reconcile against the same counter semantics.
func countResult(o *obs.Obs, r *Result) {
	if o == nil {
		return
	}
	o.C(obs.CPairs).Inc()
	switch {
	case r.Err != nil:
		o.C(obs.CPairsErrors).Inc()
	case r.CacheHit:
		o.C(obs.CCacheHits).Inc()
	case r.Deduped:
		o.C(obs.CDeduped).Inc()
	default:
		o.C(obs.CPairsComputed).Inc()
		o.H(obs.HPairNodes).Observe(r.Stats.Nodes)
	}
	if r.Err == nil && r.Holds {
		o.C(obs.CPairsHolding).Inc()
	}
}

// emitVerify sends the closing span of one pair's decision, carrying
// the verdict and the pair's merged containment.Stats.
func emitVerify(ctx context.Context, o *obs.Obs, start time.Time, r *Result) {
	if !o.SpansOn() {
		return
	}
	o.EmitSpan(obs.WithPair(ctx, r.PairKey), obs.StageVerify, start, r.Err,
		obs.B("holds", r.Holds),
		obs.B("cache_hit", r.CacheHit),
		obs.B("deduped", r.Deduped),
		obs.I("nodes", r.Stats.Nodes),
		obs.I("searches", int64(r.Stats.Searches)),
		obs.I("chase_iterations", int64(r.Stats.ChaseIterations)),
		obs.I("chase_merges", int64(r.Stats.ChaseMerges)),
		obs.I("chase_revisited", int64(r.Stats.ChaseRevisited)),
		obs.B("chase_failed", r.Stats.ChaseFailed))
}

// Decide answers a single pair, consulting and filling the cache.  It
// is the single-query entry point behind EquivFunc; batches should use
// Run, which additionally memoizes chase results and parallelizes.
func (e *Engine) Decide(ctx context.Context, q1, q2 *cq.Query, op Op) (res Result) {
	ctx, o := e.withObs(ctx)
	start := o.Time()
	defer func() {
		countResult(o, &res)
		emitVerify(ctx, o, start, &res)
	}()
	// An already-cancelled or expired context never starts work (small
	// decisions can otherwise finish before the search polls ctx, which
	// would make cancellation nondeterministic for callers like the
	// daemon's admission path).
	if err := ctx.Err(); err != nil {
		return Result{Err: err}
	}
	if err := containment.CheckComparable(q1, q2, e.s); err != nil {
		return Result{Err: err}
	}
	k1 := e.canonicalize(ctx, o, q1)
	k2 := e.canonicalize(ctx, o, q2)
	key := pairKey(op, k1, k2)
	ctx = obs.WithPair(ctx, key)
	if e.cache != nil {
		if v, ok := e.cache.get(key); ok {
			return Result{Holds: v.Holds, CacheHit: true, PairKey: key, Stats: v.Stats}
		}
	}
	// Isomorphic queries (equal canonical keys) are interchangeable, so
	// the verdict is immediate for both ops.
	if k1 == k2 {
		if e.cache != nil {
			e.cachePut(o, key, Verdict{Holds: true})
		}
		return Result{Holds: true, PairKey: key}
	}
	if e.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.opts.JobTimeout)
		defer cancel()
	}
	var (
		ok  bool
		st  containment.Stats
		err error
	)
	if op == OpContained {
		ok, st, err = containment.ContainedUnderCtxMode(ctx, q1, q2, e.s, e.deps, e.searchMode())
	} else {
		ok, st, err = containment.EquivalentUnderCtxMode(ctx, q1, q2, e.s, e.deps, e.searchMode())
	}
	if err != nil {
		// Cancellation and timeout never reach the cache: the partial
		// verdict would otherwise shadow a real decision on retry.
		return Result{Err: err, Stats: st, PairKey: key}
	}
	if e.cache != nil {
		e.cachePut(o, key, Verdict{Holds: ok, Stats: st})
		if o != nil {
			o.G(obs.GCacheEntries).Set(int64(e.cache.stats().Entries))
		}
	}
	return Result{Holds: ok, Stats: st, PairKey: key}
}

// EquivalentUnder adapts Decide to the containment.EquivalentUnder
// signature for drop-in use (e.g. as a mapping.EquivFunc): the schema
// and dependencies must be the engine's own.
func (e *Engine) EquivalentUnder(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
	if s != e.s {
		return false, containment.Stats{}, fmt.Errorf("engine: schema mismatch (engine bound to %q)", e.s.String())
	}
	r := e.Decide(context.Background(), q1, q2, OpEquivalent)
	return r.Holds, r.Stats, r.Err
}

// frozen is the memoized chase artifact of one canonical query: its
// canonical database (after chasing with the engine's dependencies)
// and frozen head tuple.  Computing it once per distinct query is the
// chase-memoization half of the engine's caching.
type frozen struct {
	once   sync.Once
	db     *instance.Database
	want   instance.Tuple
	failed bool
	// cs is the chase's work, recorded even when the run was cut short
	// by cancellation so partial work is never lost from the books.
	cs  chase.Stats
	err error
	// claimed hands the chase stats to exactly one pair.  The artifact
	// is shared by every pair mentioning the query, but the chase ran
	// once; attributing cs to each sharer would overcount, attributing
	// to none would lose it.  The first claimant — whichever pair's
	// worker gets there first — books it.
	claimed atomic.Bool
}

// claim returns the artifact's chase stats exactly once; later calls
// (other pairs sharing the artifact) get zero.  Summing claimed stats
// over a batch therefore equals the chase work actually performed,
// which is what the obs reconciliation check enforces.
func (f *frozen) claim() containment.Stats {
	if !f.claimed.CompareAndSwap(false, true) {
		return containment.Stats{}
	}
	return containment.ChaseStats(f.cs)
}

// batchState carries the per-Run shared structures.
type batchState struct {
	ctx    context.Context
	consts []value.Value // every constant of the batch, reserved in every freeze
	mu     sync.Mutex
	frozen map[string]*frozen // canonical query key -> artifact
}

// frozenOf returns the chase artifact for the query with canonical key
// k, computing it at most once per batch.  The freeze reserves every
// constant of the whole batch so fresh nulls never collide with any
// query's constants — the invariant that makes sharing the database
// across pairs sound.
func (e *Engine) frozenOf(b *batchState, k string, q *cq.Query) *frozen {
	b.mu.Lock()
	f, ok := b.frozen[k]
	if !ok {
		f = &frozen{}
		b.frozen[k] = f
	}
	b.mu.Unlock()
	f.once.Do(func() {
		o := obs.FromContext(b.ctx)
		tb := chase.NewTableau(e.s)
		vars, err := chase.Freeze(tb, q)
		if err != nil {
			f.err = err
			return
		}
		head, err := chase.HeadTerms(tb, q, vars)
		if err != nil {
			f.err = err
			return
		}
		if len(e.deps) > 0 {
			// Keep the partial stats on cancellation: the chase layer
			// already counted them, and claim() must hand the same
			// numbers to the claiming pair or the books diverge.  The
			// span begins here, just before the chase: the early-error
			// and no-deps paths emit no freeze_chase span, so a start
			// captured at function entry would be begun and never ended.
			start := o.Time()
			cs, cerr := tb.RunCtx(b.ctx, e.deps)
			f.cs = cs
			if o.SpansOn() {
				o.EmitSpan(b.ctx, obs.StageFreezeChase, start, cerr,
					obs.I("iterations", int64(cs.Iterations)),
					obs.I("merges", int64(cs.Merges)),
					obs.I("revisited", int64(cs.Revisited)),
					obs.B("failed", tb.Failed()))
			}
			if cerr != nil {
				f.err = cerr
				return
			}
		}
		if tb.Failed() {
			f.failed = true
			return
		}
		var alloc value.Allocator
		alloc.ReserveAll(b.consts)
		db, valOf, err := tb.ToDatabase(&alloc)
		if err != nil {
			f.err = err
			return
		}
		f.db = db
		f.want = make(instance.Tuple, len(head))
		for i, h := range head {
			f.want[i] = valOf[h]
		}
	})
	return f
}

// containedFrom decides frozenLeft ⊑ right using the memoized canonical
// database.  A failed chase means the left query is empty under the
// dependencies, so containment holds vacuously.
func containedFrom(ctx context.Context, f *frozen, right *cq.Query, mode cq.SearchMode) (bool, containment.Stats, error) {
	var st containment.Stats
	if f.err != nil {
		return false, st, f.err
	}
	if f.failed {
		return true, containment.FailedChaseStats(), nil
	}
	ok, _, es, err := cq.FindAnswerBindingCtxMode(ctx, right, f.db, f.want, mode)
	return ok, containment.SearchStats(es.Nodes), err
}

// Run decides every job of the batch: canonicalize, dedupe identical
// pairs, probe the cache, then fan the remaining work across the
// worker pool.  Chase artifacts are shared per distinct query; the
// homomorphism searches of each pair run under the per-job timeout.
// Results are positionally aligned with jobs.
func (e *Engine) Run(ctx context.Context, jobs []Job) *Report {
	ctx, o := e.withObs(ctx)
	rep := &Report{Results: make([]Result, len(jobs)), Pairs: len(jobs), Workers: e.opts.Workers}
	var started time.Time
	if e.opts.Now != nil {
		started = e.opts.Now()
	}

	// Canonicalize each distinct query once (batches repeat queries
	// heavily: identity views, shared sides, regenerated corpora).  The
	// second-level memo is keyed by printed presentation, so clones of
	// one query — pointer-distinct but textually identical — share a
	// single canonicalization.
	canonOf := make(map[*cq.Query]string)
	byPresentation := make(map[string]string)
	keyOf := func(q *cq.Query) string {
		if k, ok := canonOf[q]; ok {
			return k
		}
		p := q.String()
		k, ok := byPresentation[p]
		if !ok {
			k = e.canonicalize(ctx, o, q)
			byPresentation[p] = k
		}
		canonOf[q] = k
		return k
	}

	// Group jobs by canonical pair key; one leader computes, the rest
	// copy.  qKeys remembers each job's (left, right) canonical keys.
	type group struct {
		leader  int
		indexes []int
	}
	groups := make(map[string]*group)
	var order []string // deterministic dispatch order
	leftKey := make([]string, len(jobs))
	rightKey := make([]string, len(jobs))
	for i, j := range jobs {
		if err := containment.CheckComparable(j.Left, j.Right, e.s); err != nil {
			rep.Results[i] = Result{Err: err}
			continue
		}
		leftKey[i] = keyOf(j.Left)
		rightKey[i] = keyOf(j.Right)
		pk := pairKey(j.Op, leftKey[i], rightKey[i])
		rep.Results[i].PairKey = pk
		g, ok := groups[pk]
		if !ok {
			g = &group{leader: i}
			groups[pk] = g
			order = append(order, pk)
		}
		g.indexes = append(g.indexes, i)
	}

	// Cache probe per group.
	var work []string
	for _, pk := range order {
		if e.cache == nil {
			work = append(work, pk)
			continue
		}
		if v, ok := e.cache.get(pk); ok {
			for _, i := range groups[pk].indexes {
				rep.Results[i].Holds = v.Holds
				rep.Results[i].CacheHit = true
				rep.Results[i].Stats = v.Stats
				emitVerify(ctx, o, o.Time(), &rep.Results[i])
			}
			continue
		}
		work = append(work, pk)
	}

	// Compute the remaining groups on the pool.
	bs := &batchState{ctx: ctx, frozen: make(map[string]*frozen)}
	bs.consts = batchConstants(jobs)
	var wg sync.WaitGroup
	ch := make(chan string)
	workers := e.opts.Workers
	if workers > len(work) {
		workers = len(work)
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pk := range ch {
				g := groups[pk]
				j := jobs[g.leader]
				start := o.Time()
				res := e.runLeader(bs, j, leftKey[g.leader], rightKey[g.leader])
				res.PairKey = pk
				rep.Results[g.leader] = res
				// Cancellation and timeout never reach the cache: the
				// partial verdict would shadow a real decision on retry.
				if res.Err == nil && e.cache != nil {
					e.cachePut(o, pk, Verdict{Holds: res.Holds, Stats: res.Stats})
				}
				emitVerify(ctx, o, start, &res)
				for _, i := range g.indexes[1:] {
					dup := res
					dup.Deduped = true
					// A dedup copy carries none of the leader's work,
					// only the vacuity marker the verdict depends on.
					dup.Stats = containment.Stats{}
					if res.Stats.ChaseFailed {
						dup.Stats = containment.FailedChaseStats()
					}
					rep.Results[i] = dup
					emitVerify(ctx, o, start, &dup)
				}
			}
		}()
	}
	for _, pk := range work {
		ch <- pk
	}
	close(ch)
	wg.Wait()

	for i := range rep.Results {
		r := &rep.Results[i]
		countResult(o, r)
		switch {
		case r.Err != nil:
			rep.Errors++
		case r.CacheHit:
			rep.CacheHits++
		case r.Deduped:
			rep.Deduped++
		default:
			rep.Computed++
			rep.Nodes += r.Stats.Nodes
			rep.ChaseIterations += r.Stats.ChaseIterations
		}
		if r.Err == nil && r.Holds {
			rep.Holding++
		}
	}
	if e.cache != nil {
		rep.Cache = e.cache.stats()
		o.G(obs.GCacheEntries).Set(int64(rep.Cache.Entries))
	}
	if e.opts.Now != nil {
		rep.Wall = e.opts.Now().Sub(started)
	}
	return rep
}

// runLeader decides one deduplicated pair using the batch's memoized
// chase artifacts.
func (e *Engine) runLeader(bs *batchState, j Job, lk, rk string) Result {
	jctx := bs.ctx
	if err := jctx.Err(); err != nil {
		return Result{Err: err}
	}
	// Equal canonical keys mean the queries are isomorphic (a key is a
	// faithful encoding even when inexact), so both ops hold with no
	// chase or homomorphism search at all.
	if lk == rk {
		return Result{Holds: true}
	}
	if e.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		jctx, cancel = context.WithTimeout(jctx, e.opts.JobTimeout)
		defer cancel()
	}
	fl := e.frozenOf(bs, lk, j.Left)
	ok, st, err := containedFrom(jctx, fl, j.Right, e.searchMode())
	// Chase work is attributed to exactly one pair: the first to claim
	// the shared artifact.  Sharers after that merge a zero value, so
	// batch-wide sums match the chase work actually performed.
	st.Merge(fl.claim())
	if err != nil || !ok || j.Op == OpContained {
		return Result{Holds: ok, Stats: st, Err: err}
	}
	fr := e.frozenOf(bs, rk, j.Right)
	ok2, st2, err := containedFrom(jctx, fr, j.Left, e.searchMode())
	st.Merge(st2)
	st.Merge(fr.claim())
	return Result{Holds: ok2, Stats: st, Err: err}
}

// batchConstants collects every constant mentioned by any query of the
// batch, sorted and deduplicated.
func batchConstants(jobs []Job) []value.Value {
	var s value.Set
	for _, j := range jobs {
		if j.Left != nil {
			for _, c := range j.Left.Constants() {
				s.Add(c)
			}
		}
		if j.Right != nil {
			for _, c := range j.Right.Constants() {
				s.Add(c)
			}
		}
	}
	return s.Values()
}

// Fingerprint renders the (schema, dependencies) pair an engine is
// bound to; Pool uses it to route decisions.
func Fingerprint(s *schema.Schema, deps []fd.FD) string {
	parts := make([]string, 0, len(deps)+1)
	parts = append(parts, s.String())
	ds := make([]string, len(deps))
	for i, d := range deps {
		ds[i] = d.String()
	}
	sort.Strings(ds)
	parts = append(parts, ds...)
	return strings.Join(parts, "\x00")
}
