// Package engine is the batch equivalence/containment engine: it
// canonicalizes conjunctive queries to a renaming-invariant form,
// memoizes chase results and containment verdicts in a bounded sharded
// LRU keyed by canonical-pair hash, and fans batches of query pairs
// across a worker pool with per-job timeout and cancellation.
//
// The caching is sound because Theorem 13's equivalence notion is
// invariant under exactly the transformations the canonical form
// quotients away: variable renaming and body-atom reordering change
// neither a query's answers nor, therefore, any containment or
// equivalence verdict it participates in.  A canonical key fully
// describes a query up to those transformations, so equal keys imply
// interchangeable queries.
package engine

import (
	"sort"
	"strconv"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Canonical is a renaming-invariant fingerprint of a conjunctive query.
type Canonical struct {
	// Key encodes the query up to variable renaming and body-atom
	// reordering: equal keys imply queries with identical answers on
	// every database.  The converse direction (α-equivalent queries
	// producing equal keys) holds whenever Exact is true.
	Key string
	// Exact records that the tie-breaking search ran to completion, so
	// the key is a true canonical form.  When false (search budget
	// exhausted on a highly symmetric query) the key is still sound for
	// caching — it fully describes the query — but α-equivalent
	// presentations may hash to different keys, costing cache hits
	// only.
	Exact bool
}

// tieBreakBudget bounds the backtracking tie-break search.  Color
// refinement discriminates all realistic query shapes (chains, stars,
// cliques resolve with zero or automorphic-only branching); the budget
// is a backstop against adversarially symmetric inputs.
const tieBreakBudget = 1 << 14

// CanonicalizeQuery computes the canonical form of q.  The schema may
// be nil; it is consulted only to collapse unsatisfiable queries (whose
// equality lists equate distinct constants) to a shared per-head-type
// key, since all such queries are empty on every database.
func CanonicalizeQuery(q *cq.Query, s *schema.Schema) Canonical {
	c, unsat := newCanonizer(q)
	if unsat {
		return Canonical{Key: unsatKey(q, s), Exact: true}
	}
	c.refine()
	key, exact := c.encode()
	return Canonical{Key: key, Exact: exact}
}

// unsatKey collapses always-empty queries: a query whose equality list
// equates two distinct constants has no answers on any database, so
// any two such queries of equal head type are equivalent.
func unsatKey(q *cq.Query, s *schema.Schema) string {
	if s != nil {
		if ht, err := q.HeadType(s); err == nil {
			parts := make([]string, len(ht))
			for i, t := range ht {
				parts[i] = t.String()
			}
			return "UNSAT|" + strings.Join(parts, ",")
		}
	}
	return "CONFLICT|" + strconv.Itoa(len(q.Head))
}

// headTerm is a normalized head entry: a constant or a class index.
type headTerm struct {
	isConst bool
	cnst    value.Value
	class   int
}

// canonizer holds the normalized query during canonicalization.  All
// state is slice-indexed by dense class and atom numbers so every loop
// is deterministic (no map iteration anywhere on this path).
type canonizer struct {
	atomRel  []string // per atom: relation name
	relColor []int    // per atom: dense rank of its relation name
	atomArgs [][]int  // per atom: class index per position
	head     []headTerm
	// Per class:
	classConst []value.Value // bound constant (zero Value when none)
	classHasC  []bool
	classHeadP [][]int // head positions mentioning the class
	occAtom    [][]int // per class: atom index of each occurrence
	occPos     [][]int // per class: position of each occurrence
	color      []int   // current refinement color per class
}

// newCanonizer normalizes q: it resolves the equality list with a
// slot-indexed union-find (one map lookup per variable occurrence, all
// union-find state in slices), then builds the class-indexed atom and
// occurrence tables.  The second return is true when the equality list
// equates two distinct constants, i.e. the query is unsatisfiable.
func newCanonizer(q *cq.Query) (*canonizer, bool) {
	// Slot per distinct variable, in order of first appearance.
	slotOf := make(map[cq.Var]int, 2*len(q.Body))
	slot := func(v cq.Var) int {
		if i, ok := slotOf[v]; ok {
			return i
		}
		i := len(slotOf)
		slotOf[v] = i
		return i
	}
	for _, a := range q.Body {
		for _, v := range a.Vars {
			slot(v)
		}
	}
	for _, e := range q.Eqs {
		slot(e.Left)
		if !e.Right.IsConst {
			slot(e.Right.Var)
		}
	}
	for _, t := range q.Head {
		if !t.IsConst {
			slot(t.Var)
		}
	}

	n := len(slotOf)
	parent := make([]int, n)
	rnk := make([]int, n)
	hasC := make([]bool, n)        // valid on roots
	cval := make([]value.Value, n) // valid on roots with hasC
	for i := range parent {
		parent[i] = i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	unsat := false
	for _, e := range q.Eqs {
		if e.Right.IsConst {
			r := find(slotOf[e.Left])
			if hasC[r] {
				if cval[r] != e.Right.Const {
					unsat = true
				}
				continue
			}
			hasC[r] = true
			cval[r] = e.Right.Const
			continue
		}
		ra, rb := find(slotOf[e.Left]), find(slotOf[e.Right.Var])
		if ra == rb {
			continue
		}
		if rnk[ra] < rnk[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		if rnk[ra] == rnk[rb] {
			rnk[ra]++
		}
		if hasC[rb] {
			if hasC[ra] {
				if cval[ra] != cval[rb] {
					unsat = true
				}
			} else {
				hasC[ra] = true
				cval[ra] = cval[rb]
			}
		}
	}
	if unsat {
		return nil, true
	}

	c := &canonizer{}
	classAt := make([]int, n) // root slot -> dense class index
	for i := range classAt {
		classAt[i] = -1
	}
	c.classConst = make([]value.Value, 0, n)
	c.classHasC = make([]bool, 0, n)
	classIdx := func(v cq.Var) int {
		root := find(slotOf[v])
		if i := classAt[root]; i >= 0 {
			return i
		}
		i := len(c.classConst)
		classAt[root] = i
		c.classConst = append(c.classConst, cval[root])
		c.classHasC = append(c.classHasC, hasC[root])
		return i
	}
	total := 0
	for _, a := range q.Body {
		total += len(a.Vars)
	}
	argsFlat := make([]int, 0, total)
	c.atomRel = make([]string, len(q.Body))
	c.atomArgs = make([][]int, len(q.Body))
	for ai, a := range q.Body {
		start := len(argsFlat)
		for _, v := range a.Vars {
			argsFlat = append(argsFlat, classIdx(v))
		}
		c.atomRel[ai] = a.Rel
		c.atomArgs[ai] = argsFlat[start:len(argsFlat):len(argsFlat)]
	}
	// Equality-only variables (invalid against any schema, but the
	// canonizer is total): give them classes so encoding never panics.
	for _, e := range q.Eqs {
		classIdx(e.Left)
		if !e.Right.IsConst {
			classIdx(e.Right.Var)
		}
	}
	c.head = make([]headTerm, 0, len(q.Head))
	headClass := make([]int, len(q.Head)) // class per head position, -1 for consts
	for hi, t := range q.Head {
		if t.IsConst {
			c.head = append(c.head, headTerm{isConst: true, cnst: t.Const})
			headClass[hi] = -1
			continue
		}
		ci := classIdx(t.Var)
		c.head = append(c.head, headTerm{class: ci})
		headClass[hi] = ci
	}

	// All classes exist now; build the per-class tables over flat
	// backings (one allocation each instead of one per class).
	nc := len(c.classConst)
	c.classHeadP = make([][]int, nc)
	for hi, ci := range headClass {
		if ci >= 0 {
			c.classHeadP[ci] = append(c.classHeadP[ci], hi)
		}
	}
	occCount := make([]int, nc)
	for _, args := range c.atomArgs {
		for _, ci := range args {
			occCount[ci]++
		}
	}
	occAtomFlat := make([]int, total)
	occPosFlat := make([]int, total)
	c.occAtom = make([][]int, nc)
	c.occPos = make([][]int, nc)
	off := 0
	for ci := 0; ci < nc; ci++ {
		c.occAtom[ci] = occAtomFlat[off : off : off+occCount[ci]]
		c.occPos[ci] = occPosFlat[off : off : off+occCount[ci]]
		off += occCount[ci]
	}
	for ai, args := range c.atomArgs {
		for p, ci := range args {
			c.occAtom[ci] = append(c.occAtom[ci], ai)
			c.occPos[ci] = append(c.occPos[ci], p)
		}
	}
	c.color = make([]int, nc)
	relNames := append([]string(nil), c.atomRel...)
	sort.Strings(relNames)
	relNames = uniqStrings(relNames)
	c.relColor = make([]int, len(c.atomRel))
	for ai, r := range c.atomRel {
		c.relColor[ai] = sort.SearchStrings(relNames, r)
	}
	return c, false
}

// refine assigns renaming-invariant colors to classes by iterated
// partition refinement: the initial color is the class's constant
// binding, head positions, and (relation, position) occurrence multiset;
// each round folds in the colors of co-occurring classes until the
// partition stabilizes.
func (c *canonizer) refine() {
	// posBase makes (color, position) pairs collision-free when packed
	// into one int.
	posBase := 1
	for _, args := range c.atomArgs {
		if len(args) >= posBase {
			posBase = len(args) + 1
		}
	}

	// Constant bindings are the only name-bearing invariant left after
	// relColor; rank them once up front (most classes bind none).
	constRank := make([]int, len(c.color))
	var consts []string
	for ci := range c.color {
		if c.classHasC[ci] {
			consts = append(consts, c.classConst[ci].String())
		}
	}
	if len(consts) > 0 {
		sort.Strings(consts)
		consts = uniqStrings(consts)
		for ci := range c.color {
			if c.classHasC[ci] {
				constRank[ci] = 1 + sort.SearchStrings(consts, c.classConst[ci].String())
			}
		}
	}

	// Initial round: constant rank, head positions (length-prefixed so
	// the row layout is unambiguous), then the sorted (relation, position)
	// occurrence multiset.
	classRows := make([][]int, len(c.color))
	for ci := range classRows {
		row := make([]int, 0, 2+len(c.classHeadP[ci])+len(c.occAtom[ci]))
		row = append(row, constRank[ci], len(c.classHeadP[ci]))
		row = append(row, c.classHeadP[ci]...)
		mark := len(row)
		for k, ai := range c.occAtom[ci] {
			row = append(row, c.relColor[ai]*posBase+c.occPos[ci][k])
		}
		occ := row[mark:]
		sort.Ints(occ)
		classRows[ci] = row
	}
	distinct := rankRows(classRows, c.color)
	if distinct == len(c.color) {
		return // discrete partition: colors are final
	}

	atomRows := make([][]int, len(c.atomRel))
	atomColor := make([]int, len(c.atomRel))
	for round := 0; round < len(c.color); round++ {
		// Atom signature: relation color then argument class colors.
		for ai, args := range c.atomArgs {
			row := atomRows[ai][:0]
			row = append(row, c.relColor[ai])
			for _, ci := range args {
				row = append(row, c.color[ci])
			}
			atomRows[ai] = row
		}
		rankRows(atomRows, atomColor)
		// Class signature: own color then the sorted multiset of
		// (atom color, position) occurrences.
		for ci := range classRows {
			row := classRows[ci][:0]
			row = append(row, c.color[ci])
			mark := len(row)
			for k, ai := range c.occAtom[ci] {
				row = append(row, atomColor[ai]*posBase+c.occPos[ci][k])
			}
			occ := row[mark:]
			sort.Ints(occ)
			classRows[ci] = row
		}
		d := rankRows(classRows, c.color)
		if d == distinct || d == len(c.color) {
			return
		}
		distinct = d
	}
}

// uniqStrings deduplicates a sorted slice in place.
func uniqStrings(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// rankRows assigns each row its dense rank under lexicographic order,
// writing ranks into out (len(out) == len(rows)), and returns the number
// of distinct rows.
func rankRows(rows [][]int, out []int) int {
	idx := make([]int, len(rows))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return compareIntRows(rows[idx[a]], rows[idx[b]]) < 0
	})
	rank := 0
	for k, i := range idx {
		if k > 0 && compareIntRows(rows[idx[k-1]], rows[i]) != 0 {
			rank++
		}
		out[i] = rank
	}
	return rank + 1
}

func compareIntRows(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// encState is one node of the tie-break search: a partial atom order
// and variable numbering.
type encState struct {
	num  []int // class -> assigned de Bruijn number, -1 when unassigned
	next int
	used []bool
	out  []string // encoded segments so far
}

// encode produces the canonical key: the head (its order is already
// invariant), then body atoms in the lexicographically least order
// compatible with the refinement colors, numbering classes by first
// appearance.  Ties between same-colored candidates are resolved by
// bounded backtracking over full encodings; automorphic ties (stars,
// cliques) yield identical encodings on every branch, so even a budget
// cutoff returns the true canonical form for them.
func (c *canonizer) encode() (string, bool) {
	st := &encState{
		num:  make([]int, len(c.color)),
		used: make([]bool, len(c.atomRel)),
	}
	for i := range st.num {
		st.num[i] = -1
	}
	var hb strings.Builder
	hb.WriteString("H:")
	for i, h := range c.head {
		if i > 0 {
			hb.WriteByte(',')
		}
		if h.isConst {
			hb.WriteString("c" + h.cnst.String())
			continue
		}
		c.writeClass(st, h.class, &hb)
	}
	st.out = append(st.out, hb.String())

	budget := tieBreakBudget
	var best []string
	exact := c.search(st, &best, &budget)
	return strings.Join(best, "|"), exact
}

// writeClass appends the encoding of a class occurrence to b, assigning
// the next de Bruijn number on first sight (with its constant binding,
// so the equality list is fully captured by numbering plus bindings).
func (c *canonizer) writeClass(st *encState, ci int, b *strings.Builder) {
	first := st.num[ci] < 0
	if first {
		st.num[ci] = st.next
		st.next++
	}
	b.WriteByte('#')
	b.WriteString(strconv.Itoa(st.num[ci]))
	if first && c.classHasC[ci] {
		b.WriteByte('=')
		b.WriteString(c.classConst[ci].String())
	}
}

// search extends st one atom at a time, branching over minimal-key
// candidates, and records the lexicographically least complete encoding
// in best.  It returns false when the budget ran out before the branch
// space was exhausted.
//keyedeq:hot -- budgeted branch-and-bound over candidate atom orders; every canonical key pays for it
func (c *canonizer) search(st *encState, best *[]string, budget *int) bool {
	exact := true
	for {
		if len(st.out)-1 == len(c.atomRel) { // head segment + all atoms
			if *best == nil || lessSeq(st.out, *best) {
				*best = append([]string(nil), st.out...)
			}
			return exact
		}
		*budget--
		if *budget < 0 {
			exact = false
		}
		cands := c.pruneInterchangeable(st, c.minCandidates(st))
		if !exact {
			cands = cands[:1] // greedy completion once over budget
		}
		if len(cands) == 1 {
			// No branching at this step: extend the state in place (the
			// common case — refinement fully discriminates chains and
			// most irregular queries, so the whole search is one pass
			// with zero state copies).
			c.applyTo(st, cands[0])
			// Prune once the extension is worse than the best encoding.
			if *best != nil && prefixCompare(st.out, *best) > 0 {
				return exact
			}
			continue
		}
		for _, ai := range cands {
			child := c.apply(st, ai)
			// Prune branches already worse than the best known encoding.
			if *best != nil && prefixCompare(child.out, *best) > 0 {
				continue
			}
			if !c.search(child, best, budget) {
				exact = false
			}
		}
		return exact
	}
}

// unassignedBase offsets refinement colors in step-key rows so every
// assigned de Bruijn number sorts before every unassigned class — atoms
// connected to the already-encoded prefix are preferred.
const unassignedBase = 1 << 30

// stepKeyRow renders an unused atom relative to the partial numbering as
// an integer row: relation rank, then per position the assigned number
// or the offset refinement color.  The row is renaming-invariant, so the
// candidate order is too.
func (c *canonizer) stepKeyRow(st *encState, ai int, row []int) []int {
	row = append(row[:0], c.relColor[ai])
	for _, ci := range c.atomArgs[ai] {
		if st.num[ci] >= 0 {
			row = append(row, st.num[ci])
		} else {
			row = append(row, unassignedBase+c.color[ci])
		}
	}
	return row
}

// minCandidates returns the unused atoms whose step-key row is minimal.
func (c *canonizer) minCandidates(st *encState) []int {
	var bestRow, row []int
	var out []int
	for ai := range c.atomRel {
		if st.used[ai] {
			continue
		}
		row = c.stepKeyRow(st, ai, row)
		cmp := -1
		if out != nil {
			cmp = compareIntRows(row, bestRow)
		}
		switch {
		case cmp < 0:
			bestRow = append(bestRow[:0], row...)
			out = append(out[:0], ai)
		case cmp == 0:
			out = append(out, ai)
		}
	}
	return out
}

// pruneInterchangeable drops candidates whose branches are automorphic
// images of a kept candidate's branch, so exploring one suffices (and
// exactness is preserved).  All candidates share the same step-key row,
// which makes two cases cheap and sound:
//
//   - Literal duplicates: same relation and identical argument classes.
//     The child states differ only in which copy is marked used.
//   - Private atoms: every unassigned class occurs only inside the atom
//     itself.  Equal rows mean positionwise equal colors, and equal
//     colors for distinct private classes force equal constant bindings,
//     no head occurrences, and matching within-atom repetition, so
//     swapping the two atoms (with their private classes) is an
//     automorphism.  Stars and star-like fans resolve in linear time
//     because all pending leaf atoms collapse to one candidate.
func (c *canonizer) pruneInterchangeable(st *encState, cands []int) []int {
	if len(cands) < 2 {
		return cands
	}
	kept := cands[:0]
	privSeen := false
	for _, ai := range cands {
		if c.atomPrivate(st, ai) {
			if privSeen {
				continue
			}
			privSeen = true
			kept = append(kept, ai)
			continue
		}
		dup := false
		for _, aj := range kept {
			if c.sameAtom(ai, aj) {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, ai)
		}
	}
	return kept
}

// atomPrivate reports that every unassigned class of atom ai occurs in
// no other atom.
func (c *canonizer) atomPrivate(st *encState, ai int) bool {
	for _, ci := range c.atomArgs[ai] {
		if st.num[ci] >= 0 {
			continue
		}
		for _, oa := range c.occAtom[ci] {
			if oa != ai {
				return false
			}
		}
	}
	return true
}

// sameAtom reports atoms ai and aj are literally identical: same
// relation, same classes in the same positions.
func (c *canonizer) sameAtom(ai, aj int) bool {
	if c.relColor[ai] != c.relColor[aj] || len(c.atomArgs[ai]) != len(c.atomArgs[aj]) {
		return false
	}
	for p, ci := range c.atomArgs[ai] {
		if ci != c.atomArgs[aj][p] {
			return false
		}
	}
	return true
}

// applyTo emits atom ai onto st in place, assigning numbers to its
// unassigned classes left to right.
func (c *canonizer) applyTo(st *encState, ai int) {
	st.used[ai] = true
	var b strings.Builder
	b.WriteString(c.atomRel[ai])
	b.WriteByte('(')
	for p, ci := range c.atomArgs[ai] {
		if p > 0 {
			b.WriteByte(',')
		}
		c.writeClass(st, ci, &b)
	}
	b.WriteByte(')')
	st.out = append(st.out, b.String())
}

// apply emits atom ai onto a copy of st, for branching steps.
func (c *canonizer) apply(st *encState, ai int) *encState {
	child := &encState{
		num:  append([]int(nil), st.num...),
		next: st.next,
		used: append([]bool(nil), st.used...),
		out:  append([]string(nil), st.out...),
	}
	c.applyTo(child, ai)
	return child
}

// lessSeq reports a < b over encoded segment sequences.
func lessSeq(a, b []string) bool { return prefixCompare(a, b) < 0 }

// prefixCompare compares a against the first len(a) segments of b
// (segment-wise lexicographic); a shorter a equal so far compares 0.
func prefixCompare(a, b []string) int {
	for i := range a {
		if i >= len(b) {
			return 1
		}
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
