package engine

import (
	"context"
	"errors"
	"testing"

	"keyedeq/internal/gen"
)

// TestPoolEquivCtxCancelled pins the ctx plumbing: a cancelled context
// handed to the pool must reach the engine's decision path and abort it.
// The pre-fix pool hardcoded context.Background(), so cancellation (and
// per-request deadlines) silently never propagated.
func TestPoolEquivCtxCancelled(t *testing.T) {
	p := NewPool(Options{})
	s := gen.GraphSchema()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := p.EquivCtx(ctx, gen.ChainQuery(2), gen.ChainQuery(3), s, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("EquivCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	_, _, err = p.ContainsCtx(ctx, gen.ChainQuery(2), gen.ChainQuery(3), s, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ContainsCtx with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// Cancelled decisions must not poison the cache: the same pair under
	// a live context decides normally.
	ok, _, err := p.EquivCtx(context.Background(), gen.ChainQuery(2), gen.ChainQuery(2), s, nil)
	if err != nil || !ok {
		t.Fatalf("EquivCtx after cancellation: ok=%v err=%v", ok, err)
	}
}

// TestPoolEquivDelegates locks the compatibility contract: the ctx-free
// methods remain available (mapping.EquivFunc-shaped) and agree with
// their ctx variants.
func TestPoolEquivDelegates(t *testing.T) {
	p := NewPool(Options{})
	s := gen.GraphSchema()
	ok1, _, err1 := p.Equiv(gen.ChainQuery(2), gen.ChainQuery(2), s, nil)
	ok2, _, err2 := p.EquivCtx(context.Background(), gen.ChainQuery(2), gen.ChainQuery(2), s, nil)
	if err1 != nil || err2 != nil || ok1 != ok2 {
		t.Fatalf("Equiv/EquivCtx disagree: %v/%v err %v/%v", ok1, ok2, err1, err2)
	}
}
