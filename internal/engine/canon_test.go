package engine

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
)

func TestCanonicalKeyInvariantUnderAlphaVariants(t *testing.T) {
	s := gen.GraphSchema()
	rng := rand.New(rand.NewSource(1))
	bases := []*cq.Query{
		gen.ChainQuery(1), gen.ChainQuery(3), gen.ChainQuery(5),
		gen.StarQuery(2), gen.StarQuery(4),
		gen.CliqueQuery(2), gen.CliqueQuery(3),
		gen.RandomChainVariant(rng, 3, 2),
	}
	for _, q := range bases {
		want := CanonicalizeQuery(q, s)
		if want.Key == "" {
			t.Fatalf("empty canonical key for %s", q)
		}
		for i := 0; i < 25; i++ {
			v := gen.AlphaVariant(rng, q)
			got := CanonicalizeQuery(v, s)
			if got.Key != want.Key {
				t.Fatalf("alpha variant %d of %s changed key:\n  base    %q\n  variant %q\n  variant query %s",
					i, q, want.Key, got.Key, v)
			}
		}
	}
}

func TestCanonicalKeySeparatesDistinctQueries(t *testing.T) {
	s := gen.GraphSchema()
	qs := []*cq.Query{
		gen.ChainQuery(1), gen.ChainQuery(2), gen.ChainQuery(3),
		gen.StarQuery(2), gen.StarQuery(3),
		gen.CliqueQuery(3),
	}
	keys := make(map[string]*cq.Query)
	for _, q := range qs {
		k := CanonicalizeQuery(q, s).Key
		if prev, dup := keys[k]; dup {
			t.Fatalf("distinct queries share a key:\n  %s\n  %s\n  key %q", prev, q, k)
		}
		keys[k] = q
	}
}

func TestCanonicalKeyDistinguishesHeads(t *testing.T) {
	s := gen.GraphSchema()
	q1 := cq.MustParse("V(X) :- E(X, Y).")
	q2 := cq.MustParse("V(Y) :- E(X, Y).")
	if CanonicalizeQuery(q1, s).Key == CanonicalizeQuery(q2, s).Key {
		t.Fatal("queries projecting different positions share a key")
	}
}

func TestCanonicalKeyDistinguishesConstants(t *testing.T) {
	s := gen.GraphSchema()
	q1 := cq.MustParse("V(X) :- E(X, Y), Y = T1:1.")
	q2 := cq.MustParse("V(X) :- E(X, Y), Y = T1:2.")
	q3 := cq.MustParse("V(X) :- E(X, Y).")
	k1 := CanonicalizeQuery(q1, s).Key
	k2 := CanonicalizeQuery(q2, s).Key
	k3 := CanonicalizeQuery(q3, s).Key
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatalf("constant bindings not reflected in keys: %q %q %q", k1, k2, k3)
	}
}

func TestCanonicalKeyCollapsesUnsatisfiable(t *testing.T) {
	s := gen.GraphSchema()
	q1 := cq.MustParse("V(X) :- E(X, Y), Y = T1:1, Y = T1:2.")
	q2 := cq.MustParse("V(A) :- E(A, B), E(B, C), B = T1:7, B = T1:9.")
	k1 := CanonicalizeQuery(q1, s)
	k2 := CanonicalizeQuery(q2, s)
	if k1.Key != k2.Key {
		t.Fatalf("unsatisfiable queries of equal head type should share a key: %q vs %q", k1.Key, k2.Key)
	}
	sat := CanonicalizeQuery(cq.MustParse("V(X) :- E(X, Y)."), s)
	if sat.Key == k1.Key {
		t.Fatal("satisfiable query collapsed with unsatisfiable ones")
	}
}

func TestCanonicalKeyExactOnRealisticShapes(t *testing.T) {
	s := gen.GraphSchema()
	for _, q := range []*cq.Query{
		gen.ChainQuery(6), gen.StarQuery(6), gen.CliqueQuery(4),
	} {
		c := CanonicalizeQuery(q, s)
		if !c.Exact {
			t.Errorf("tie-break budget exhausted on %s", q)
		}
	}
}

func TestCanonicalKeyNilSchema(t *testing.T) {
	q := gen.ChainQuery(2)
	withSchema := CanonicalizeQuery(q, gen.GraphSchema())
	without := CanonicalizeQuery(q, nil)
	if withSchema.Key != without.Key {
		t.Fatalf("schema presence changed a satisfiable query's key: %q vs %q", withSchema.Key, without.Key)
	}
}
