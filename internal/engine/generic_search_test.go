package engine

import (
	"context"
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
)

// withDefaultSearch pins the process-wide default search mode for the
// duration of one test body.
func withDefaultSearch(t *testing.T, mode cq.SearchMode, body func()) {
	t.Helper()
	orig := cq.SearchDefault
	cq.SearchDefault = mode
	defer func() { cq.SearchDefault = orig }()
	body()
}

// TestGenericSearchOptionMatchesStreamed pins the Options.GenericSearch
// escape hatch against the streamed iterator runtime: an engine forced
// onto the generic planned search must return exactly the verdicts and
// work accounting of an engine on the streamed pipeline — same jobs,
// same batch machinery, bit-identical stats; only the candidate
// machinery differs.  (The adaptive default is covered separately
// below: it may legitimately visit different node counts because it
// chooses not to plan.)
func TestGenericSearchOptionMatchesStreamed(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	f, err := gen.PairCorpus(rng, "keyed", 120)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 0, len(f.Pairs))
	for _, p := range f.Pairs {
		jobs = append(jobs, Job{Left: p.Left, Right: p.Right, Op: OpEquivalent})
	}
	// Caches off so every pair is decided by an actual search in both
	// engines, and Workers 1 so result order is deterministic.
	var repD, repG *Report
	withDefaultSearch(t, cq.SearchStreamed, func() {
		def := New(f.Schema, f.Deps, Options{Workers: 1, DisableCache: true})
		gn := New(f.Schema, f.Deps, Options{Workers: 1, DisableCache: true, GenericSearch: true})
		repD = def.Run(context.Background(), jobs)
		repG = gn.Run(context.Background(), jobs)
	})
	for i := range repD.Results {
		rd, rg := repD.Results[i], repG.Results[i]
		if rd.Err != nil || rg.Err != nil {
			t.Fatalf("job %d errored: streamed %v, generic %v", i, rd.Err, rg.Err)
		}
		if rd.Holds != rg.Holds {
			t.Fatalf("job %d: streamed holds=%v, generic holds=%v\n  left  %s\n  right %s",
				i, rd.Holds, rg.Holds, jobs[i].Left, jobs[i].Right)
		}
		if rd.Stats != rg.Stats {
			t.Fatalf("job %d: stats diverge\n  streamed %+v\n  generic  %+v", i, rd.Stats, rg.Stats)
		}
	}
	if repD.Nodes != repG.Nodes || repD.Holding != repG.Holding {
		t.Fatalf("batch totals diverge: streamed (%d nodes, %d holding), generic (%d nodes, %d holding)",
			repD.Nodes, repD.Holding, repG.Nodes, repG.Holding)
	}
	if repD.Holding == 0 || repD.Holding == repD.Pairs {
		t.Fatalf("degenerate corpus: %d/%d holding", repD.Holding, repD.Pairs)
	}
}

// TestAdaptiveDefaultMatchesGenericVerdicts covers the shipping default
// (SearchAdaptive): the cost model may pick a different runtime per
// pair, so node counts can differ from the generic oracle, but every
// verdict — and therefore the batch holding count — must agree.
func TestAdaptiveDefaultMatchesGenericVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	f, err := gen.PairCorpus(rng, "keyed", 120)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]Job, 0, len(f.Pairs))
	for _, p := range f.Pairs {
		jobs = append(jobs, Job{Left: p.Left, Right: p.Right, Op: OpEquivalent})
	}
	var repD, repG *Report
	withDefaultSearch(t, cq.SearchAdaptive, func() {
		def := New(f.Schema, f.Deps, Options{Workers: 1, DisableCache: true})
		gn := New(f.Schema, f.Deps, Options{Workers: 1, DisableCache: true, GenericSearch: true})
		repD = def.Run(context.Background(), jobs)
		repG = gn.Run(context.Background(), jobs)
	})
	for i := range repD.Results {
		rd, rg := repD.Results[i], repG.Results[i]
		if rd.Err != nil || rg.Err != nil {
			t.Fatalf("job %d errored: adaptive %v, generic %v", i, rd.Err, rg.Err)
		}
		if rd.Holds != rg.Holds {
			t.Fatalf("job %d: adaptive holds=%v, generic holds=%v\n  left  %s\n  right %s",
				i, rd.Holds, rg.Holds, jobs[i].Left, jobs[i].Right)
		}
	}
	if repD.Holding != repG.Holding {
		t.Fatalf("holding diverges: adaptive %d, generic %d", repD.Holding, repG.Holding)
	}
	if repD.Holding == 0 || repD.Holding == repD.Pairs {
		t.Fatalf("degenerate corpus: %d/%d holding", repD.Holding, repD.Pairs)
	}
}

// TestGenericSearchOptionDecide covers the single-pair entry point with
// the fallback on, against the streamed runtime.
func TestGenericSearchOptionDecide(t *testing.T) {
	rng := rand.New(rand.NewSource(2025))
	f, err := gen.PairCorpus(rng, "graph-star", 40)
	if err != nil {
		t.Fatal(err)
	}
	withDefaultSearch(t, cq.SearchStreamed, func() {
		def := New(f.Schema, f.Deps, Options{Workers: 1, DisableCache: true})
		gn := New(f.Schema, f.Deps, Options{Workers: 1, DisableCache: true, GenericSearch: true})
		for i, p := range f.Pairs {
			rd := def.Decide(context.Background(), p.Left, p.Right, OpContained)
			rg := gn.Decide(context.Background(), p.Left, p.Right, OpContained)
			if rd.Err != nil || rg.Err != nil {
				t.Fatalf("pair %d errored: %v / %v", i, rd.Err, rg.Err)
			}
			if rd.Holds != rg.Holds || rd.Stats != rg.Stats {
				t.Fatalf("pair %d diverges: streamed (%v, %+v), generic (%v, %+v)",
					i, rd.Holds, rd.Stats, rg.Holds, rg.Stats)
			}
		}
	})
}
