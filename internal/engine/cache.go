package engine

import (
	"container/list"
	"sync"
	"sync/atomic"

	"keyedeq/internal/containment"
)

// Verdict is a cached decision for one canonical pair.
type Verdict struct {
	// Holds is the containment/equivalence answer.
	Holds bool
	// Stats records the work the original computation spent, so reports
	// can show what the cache saved.  Carrying the whole Stats (rather
	// than hand-picked fields) means counters added to containment.Stats
	// survive the cache round trip automatically.
	Stats containment.Stats
}

// CacheStats aggregates cache behavior across all shards.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Capacity  int
}

// HitRate returns hits / (hits + misses), or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// verdictCache is a bounded, sharded LRU from canonical pair key to
// Verdict.  Sharding by key hash keeps lock contention off the worker
// pool's hot path; each shard holds an intrusive LRU list.
type verdictCache struct {
	shards    []cacheShard
	capacity  int
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type cacheShard struct {
	mu      sync.Mutex
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	cap     int
}

type cacheEntry struct {
	key string
	v   Verdict
}

// cacheShardCount is a power of two so shard selection is a mask.
const cacheShardCount = 16

// newVerdictCache builds a cache with exactly capacity total entries
// spread over the shards.  Capacity below the shard count is rounded up
// so every shard can hold at least one entry; a remainder that does not
// divide evenly is distributed one entry each to the first shards, so
// shard capacities always sum to the configured capacity (capacity 100
// yields 4 shards of 7 and 12 of 6, not 16 of 6).
func newVerdictCache(capacity int) *verdictCache {
	if capacity < cacheShardCount {
		capacity = cacheShardCount
	}
	c := &verdictCache{
		shards:   make([]cacheShard, cacheShardCount),
		capacity: capacity,
	}
	per := capacity / cacheShardCount
	rem := capacity % cacheShardCount
	for i := range c.shards {
		extra := 0
		if i < rem {
			extra = 1
		}
		c.shards[i] = cacheShard{
			entries: make(map[string]*list.Element),
			order:   list.New(),
			cap:     per + extra,
		}
	}
	return c
}

// fnv-1a parameters (hash/fnv's 64-bit variant, inlined).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// shard selects the shard for key by an inlined FNV-1a fold: a
// fnv.New64a() hasher here would allocate and box through hash.Hash64
// on every get/put — the hottest cache path in the engine.
//
//keyedeq:hot -- shard selection runs on every verdict cache get and put; the inlined fold keeps it zero-alloc
func (c *verdictCache) shard(key string) *cacheShard {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return &c.shards[h&(cacheShardCount-1)]
}

// get returns the cached verdict for key, updating recency and hit
// accounting.
func (c *verdictCache) get(key string) (Verdict, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.entries[key]
	if !ok {
		c.misses.Add(1)
		return Verdict{}, false
	}
	sh.order.MoveToFront(el)
	c.hits.Add(1)
	return el.Value.(*cacheEntry).v, true
}

// put stores a verdict, evicting the least recently used entry of the
// shard when full.
func (c *verdictCache) put(key string, v Verdict) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.entries[key]; ok {
		el.Value.(*cacheEntry).v = v
		sh.order.MoveToFront(el)
		return
	}
	if sh.order.Len() >= sh.cap {
		oldest := sh.order.Back()
		if oldest != nil {
			sh.order.Remove(oldest)
			delete(sh.entries, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	sh.entries[key] = sh.order.PushFront(&cacheEntry{key: key, v: v})
}

// stats snapshots the aggregate counters.  Capacity is the sum of the
// shard capacities — the number of entries the cache can actually hold
// — so Entries can reach Capacity exactly when every shard is full.
func (c *verdictCache) stats() CacheStats {
	s := CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		s.Capacity += sh.cap
		sh.mu.Lock()
		s.Entries += sh.order.Len()
		sh.mu.Unlock()
	}
	return s
}
