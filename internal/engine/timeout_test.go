package engine

import (
	"context"
	"fmt"
	"strings"
	"testing"
	"time"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
)

// The pair used throughout: equivalent under the key of R (the chase
// merges Y and Y2 through the shared key X) but not isomorphic, so the
// canonical keys differ and every decision does real chase + search
// work under the job context.
func timeoutPair(t *testing.T) (*schema.Schema, []fd.FD, *cq.Query, *cq.Query) {
	t.Helper()
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	q1 := cq.MustParse("V(X) :- R(X, Y).")
	q2 := cq.MustParse("V(X) :- R(X, Y), R(X2, Y2), X = X2.")
	ok, _, err := containment.EquivalentUnder(q1, q2, s, deps)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("fixture pair is not equivalent; the test needs Holds=true ground truth")
	}
	if k1, k2 := CanonicalizeQuery(q1, s).Key, CanonicalizeQuery(q2, s).Key; k1 == k2 {
		t.Fatal("fixture pair is isomorphic; the test needs the full decision path")
	}
	return s, deps, q1, q2
}

// TestDecideTimeoutErrorNotCached is the regression for the cache-path
// audit: a JobTimeout expiry must never be stored as a verdict.  The
// tiny-timeout engine fails every attempt — if the first failure were
// cached, the second attempt would come back as a (bogus) cache hit —
// and a generous-timeout engine then decides the pair correctly.
func TestDecideTimeoutErrorNotCached(t *testing.T) {
	s, deps, q1, q2 := timeoutPair(t)

	tiny := New(s, deps, Options{JobTimeout: time.Nanosecond})
	r1 := tiny.Decide(context.Background(), q1, q2, OpEquivalent)
	if r1.Err == nil {
		t.Fatalf("1ns timeout decision succeeded (holds=%v); expected an error", r1.Holds)
	}
	r2 := tiny.Decide(context.Background(), q1, q2, OpEquivalent)
	if r2.CacheHit {
		t.Fatalf("timeout error was cached: second attempt hit the cache with holds=%v", r2.Holds)
	}
	if r2.Err == nil {
		t.Fatal("second 1ns attempt succeeded; expected a repeat timeout, not a cached verdict")
	}

	generous := New(s, deps, Options{JobTimeout: time.Hour})
	r3 := generous.Decide(context.Background(), q1, q2, OpEquivalent)
	if r3.Err != nil {
		t.Fatalf("generous timeout: %v", r3.Err)
	}
	if !r3.Holds || r3.CacheHit {
		t.Fatalf("generous timeout: holds=%v cacheHit=%v, want holds=true fresh", r3.Holds, r3.CacheHit)
	}
}

// TestDecideCancellationNotCached drives the same audit through
// caller-context cancellation on a single engine: after a canceled
// decision, the next call must recompute (no hit), and only a real
// verdict may populate the cache.
func TestDecideCancellationNotCached(t *testing.T) {
	s, deps, q1, q2 := timeoutPair(t)
	e := New(s, deps, Options{})

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	r1 := e.Decide(canceled, q1, q2, OpEquivalent)
	if r1.Err == nil {
		t.Fatalf("canceled-context decision succeeded (holds=%v)", r1.Holds)
	}

	r2 := e.Decide(context.Background(), q1, q2, OpEquivalent)
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r2.CacheHit {
		t.Fatal("decision after cancellation was a cache hit; the error must not have been stored")
	}
	if !r2.Holds {
		t.Fatal("retry decided holds=false, want true")
	}

	r3 := e.Decide(context.Background(), q1, q2, OpEquivalent)
	if !r3.CacheHit || !r3.Holds {
		t.Fatalf("third call: cacheHit=%v holds=%v, want a true cache hit", r3.CacheHit, r3.Holds)
	}
}

// TestRunCancellationNotCached covers the batch path: a canceled batch
// context fails every job without polluting the cache, and a fresh
// batch on the same engine recomputes everything.
func TestRunCancellationNotCached(t *testing.T) {
	s, deps, q1, q2 := timeoutPair(t)
	e := New(s, deps, Options{Workers: 2})
	jobs := []Job{
		{Left: q1, Right: q2, Op: OpEquivalent},
		{Left: q2, Right: q1, Op: OpContained},
	}

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	rep := e.Run(canceled, jobs)
	for i, r := range rep.Results {
		if r.Err == nil {
			t.Fatalf("job %d of canceled batch succeeded (holds=%v)", i, r.Holds)
		}
	}

	rep = e.Run(context.Background(), jobs)
	for i, r := range rep.Results {
		if r.Err != nil {
			t.Fatalf("job %d of retry batch: %v", i, r.Err)
		}
		if r.CacheHit {
			t.Fatalf("job %d of retry batch hit the cache; errors must not be stored", i)
		}
		if !r.Holds {
			t.Fatalf("job %d of retry batch: holds=false, want true", i)
		}
	}

	rep = e.Run(context.Background(), jobs)
	for i, r := range rep.Results {
		if !r.CacheHit || !r.Holds {
			t.Fatalf("job %d of third batch: cacheHit=%v holds=%v, want true hit", i, r.CacheHit, r.Holds)
		}
	}
}

// searchHeavyPair builds a containment job whose homomorphism search
// must visit far more than cancelCheckMask nodes before exhausting:
// the left query freezes to two disconnected complete digraphs and the
// right is a 12-step chain whose required endpoints straddle the
// components, so the search fans out exponentially and never succeeds.
// Run applies JobTimeout to the searches only (the chase artifact is
// shared batch-wide), so a timeout test on the batch path needs the
// search itself to cross a poll point.
func searchHeavyPair(t *testing.T) (*schema.Schema, *cq.Query, *cq.Query) {
	t.Helper()
	s := schema.MustParse("E(a:T1, b:T1)")

	// The paper's syntax wants every placeholder distinct, with joins in
	// the equality list, so both queries are generated: each atom gets
	// fresh variables and equalities tie the endpoints together.
	edges := [][2]int{
		{1, 2}, {2, 1}, {1, 3}, {3, 1}, {2, 3}, {3, 2},
		{4, 5}, {5, 4}, {4, 6}, {6, 4}, {5, 6}, {6, 5},
	}
	rep := map[int]string{}
	var parts []string
	bind := func(v string, class int) {
		if rep[class] == "" {
			rep[class] = v
			return
		}
		parts = append(parts, v+" = "+rep[class])
	}
	var eqs []string
	for i, e := range edges {
		p, q := fmt.Sprintf("P%d", i+1), fmt.Sprintf("Q%d", i+1)
		parts = append(parts, fmt.Sprintf("E(%s, %s)", p, q))
		save := parts
		parts = nil
		bind(p, e[0])
		bind(q, e[1])
		eqs = append(eqs, parts...)
		parts = save
	}
	parts = append(parts, eqs...)
	left := cq.MustParse(fmt.Sprintf("V(%s, %s) :- %s.", rep[1], rep[4], strings.Join(parts, ", ")))

	parts, eqs = nil, nil
	for i := 1; i <= 12; i++ {
		parts = append(parts, fmt.Sprintf("E(A%d, B%d)", i, i))
		if i > 1 {
			eqs = append(eqs, fmt.Sprintf("B%d = A%d", i-1, i))
		}
	}
	parts = append(parts, eqs...)
	right := cq.MustParse(fmt.Sprintf("V(A1, B12) :- %s.", strings.Join(parts, ", ")))
	ok, _, err := containment.ContainedUnder(left, right, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("fixture containment unexpectedly holds; the test needs an exhaustive failed search")
	}
	return s, left, right
}

// TestRunTimeoutErrorNotCached is the batch-path half of the timeout
// audit: a job whose search blows the deadline must report an error,
// leave the cache untouched, and carry the partial search stats it
// accrued before the cut.
func TestRunTimeoutErrorNotCached(t *testing.T) {
	s, left, right := searchHeavyPair(t)
	jobs := []Job{{Left: left, Right: right, Op: OpContained}}

	tiny := New(s, nil, Options{JobTimeout: time.Nanosecond, Workers: 1})
	rep := tiny.Run(context.Background(), jobs)
	r := rep.Results[0]
	if r.Err == nil {
		t.Fatalf("1ns-timeout job succeeded (holds=%v, %d nodes)", r.Holds, r.Stats.Nodes)
	}
	if r.Stats.Nodes == 0 {
		t.Fatal("timed-out job reports zero search nodes; partial stats were dropped")
	}
	rep = tiny.Run(context.Background(), jobs)
	if r := rep.Results[0]; r.CacheHit {
		t.Fatalf("timeout error was cached: retry hit the cache with holds=%v", r.Holds)
	} else if r.Err == nil {
		t.Fatalf("expected repeat timeout, got holds=%v", r.Holds)
	}

	generous := New(s, nil, Options{JobTimeout: time.Hour, Workers: 1})
	rep = generous.Run(context.Background(), jobs)
	if r := rep.Results[0]; r.Err != nil {
		t.Fatal(r.Err)
	} else if r.Holds || r.CacheHit {
		t.Fatalf("generous run: holds=%v cacheHit=%v, want a fresh holds=false", r.Holds, r.CacheHit)
	}
	rep = generous.Run(context.Background(), jobs)
	if r := rep.Results[0]; !r.CacheHit || r.Holds {
		t.Fatalf("second generous run: cacheHit=%v holds=%v, want a true-negative cache hit", r.CacheHit, r.Holds)
	}
}
