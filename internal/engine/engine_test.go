package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/schema"
)

func TestEngineMatchesSequentialOnGraphPairs(t *testing.T) {
	s := gen.GraphSchema()
	e := New(s, nil, Options{Workers: 4})
	// Chains are binary, stars and cliques unary; pair within each group
	// so every job has comparable head types.
	groups := [][]*cq.Query{
		{gen.ChainQuery(1), gen.ChainQuery(2), gen.ChainQuery(3), gen.RandomChainVariant(rand.New(rand.NewSource(7)), 2, 2)},
		{gen.StarQuery(1), gen.StarQuery(2), gen.StarQuery(3), gen.CliqueQuery(2)},
	}
	var jobs []Job
	for _, qs := range groups {
		for _, a := range qs {
			for _, b := range qs {
				jobs = append(jobs, Job{Left: a, Right: b, Op: OpEquivalent})
				jobs = append(jobs, Job{Left: a, Right: b, Op: OpContained})
			}
		}
	}
	rep := e.Run(context.Background(), jobs)
	if rep.Pairs != len(jobs) || len(rep.Results) != len(jobs) {
		t.Fatalf("report pairs %d, results %d, want %d", rep.Pairs, len(rep.Results), len(jobs))
	}
	for i, j := range jobs {
		r := rep.Results[i]
		if r.Err != nil {
			t.Fatalf("job %d (%s vs %s): %v", i, j.Left, j.Right, r.Err)
		}
		var want bool
		var err error
		if j.Op == OpEquivalent {
			want, _, err = containment.EquivalentUnder(j.Left, j.Right, s, nil)
		} else {
			want, _, err = containment.ContainedUnder(j.Left, j.Right, s, nil)
		}
		if err != nil {
			t.Fatal(err)
		}
		if r.Holds != want {
			t.Fatalf("job %d %v(%s, %s) = %v, sequential says %v", i, j.Op, j.Left, j.Right, r.Holds, want)
		}
	}
}

func TestEngineMatchesSequentialUnderKeys(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T2)\nS(k*:T2, b:T1)")
	deps := fd.KeyFDs(s)
	e := New(s, deps, Options{Workers: 2})
	qs := []*cq.Query{
		cq.MustParse("V(X) :- R(X, Y)."),
		cq.MustParse("V(X) :- R(X, Y), R(X2, Y2), X = X2."),
		cq.MustParse("V(X) :- R(X, Y), S(Y2, Z), Y = Y2."),
		cq.MustParse("V(Z) :- R(X, Y), S(Y2, Z), Y = Y2."),
	}
	var jobs []Job
	for _, a := range qs {
		for _, b := range qs {
			jobs = append(jobs, Job{Left: a, Right: b, Op: OpEquivalent})
		}
	}
	rep := e.Run(context.Background(), jobs)
	for i, j := range jobs {
		r := rep.Results[i]
		if r.Err != nil {
			t.Fatalf("job %d: %v", i, r.Err)
		}
		want, _, err := containment.EquivalentUnder(j.Left, j.Right, s, deps)
		if err != nil {
			t.Fatal(err)
		}
		if r.Holds != want {
			t.Fatalf("job %d ≡(%s, %s) = %v under keys, sequential says %v", i, j.Left, j.Right, r.Holds, want)
		}
	}
	// R(X,Y) with X keyed: the duplicate-atom variant collapses, so the
	// first two queries must come out equivalent under the key.
	if !rep.Results[1].Holds {
		t.Fatal("key dependency not applied: duplicate keyed atom should collapse")
	}
}

func TestEngineDedupesAlphaVariantPairs(t *testing.T) {
	s := gen.GraphSchema()
	e := New(s, nil, Options{Workers: 2})
	a, b := gen.ChainQuery(3), gen.ChainQuery(2)
	// The same decision asked three ways: verbatim, renamed, and with the
	// symmetric orientation.  One computation should serve all three.
	jobs := []Job{
		{Left: a, Right: b, Op: OpEquivalent},
		{Left: a.Rename("p_"), Right: b.Rename("q_"), Op: OpEquivalent},
		{Left: b.Rename("r_"), Right: a.Rename("s_"), Op: OpEquivalent},
	}
	rep := e.Run(context.Background(), jobs)
	if rep.Computed != 1 || rep.Deduped != 2 {
		t.Fatalf("computed %d deduped %d, want 1 and 2", rep.Computed, rep.Deduped)
	}
	for i, r := range rep.Results {
		if r.Err != nil || r.Holds {
			t.Fatalf("result %d: holds=%v err=%v (chain3 and chain2 are inequivalent)", i, r.Holds, r.Err)
		}
	}
	if rep.Results[0].PairKey != rep.Results[2].PairKey {
		t.Fatal("symmetric equivalence pairs should share a pair key")
	}
}

func TestEngineSecondRunAllCacheHits(t *testing.T) {
	s := gen.GraphSchema()
	e := New(s, nil, Options{Workers: 2, CacheSize: 1024})
	jobs := []Job{
		{Left: gen.ChainQuery(2), Right: gen.ChainQuery(3), Op: OpEquivalent},
		{Left: gen.StarQuery(2), Right: gen.StarQuery(3), Op: OpEquivalent},
		{Left: gen.StarQuery(2), Right: gen.StarQuery(1), Op: OpContained},
	}
	first := e.Run(context.Background(), jobs)
	if first.CacheHits != 0 || first.Computed != len(jobs) {
		t.Fatalf("first run: computed %d hits %d", first.Computed, first.CacheHits)
	}
	second := e.Run(context.Background(), jobs)
	if second.CacheHits != len(jobs) || second.Computed != 0 {
		t.Fatalf("second run: computed %d hits %d, want all hits", second.Computed, second.CacheHits)
	}
	for i := range jobs {
		if first.Results[i].Holds != second.Results[i].Holds {
			t.Fatalf("verdict %d changed across runs", i)
		}
	}
}

func TestEngineCacheDisabled(t *testing.T) {
	s := gen.GraphSchema()
	e := New(s, nil, Options{Workers: 1, DisableCache: true})
	jobs := []Job{{Left: gen.ChainQuery(2), Right: gen.ChainQuery(2), Op: OpEquivalent}}
	e.Run(context.Background(), jobs)
	rep := e.Run(context.Background(), jobs)
	if rep.CacheHits != 0 || rep.Computed != 1 {
		t.Fatalf("cache disabled but hits=%d computed=%d", rep.CacheHits, rep.Computed)
	}
	if st := e.CacheStats(); st.Capacity != 0 {
		t.Fatalf("disabled cache reports capacity %d", st.Capacity)
	}
}

func TestEngineErrorOnIncomparablePair(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T2)\nS(k*:T2, b:T1)")
	e := New(s, nil, Options{})
	jobs := []Job{
		{Left: cq.MustParse("V(X) :- R(X, Y)."), Right: cq.MustParse("V(Y) :- R(X, Y)."), Op: OpEquivalent},
		{Left: cq.MustParse("V(X) :- R(X, Y)."), Right: cq.MustParse("V(X) :- R(X, Y)."), Op: OpEquivalent},
	}
	rep := e.Run(context.Background(), jobs)
	if rep.Results[0].Err == nil {
		t.Fatal("head-type mismatch should error")
	}
	if rep.Results[1].Err != nil || !rep.Results[1].Holds {
		t.Fatalf("valid pair affected by invalid one: %+v", rep.Results[1])
	}
	if rep.Errors != 1 {
		t.Fatalf("errors = %d, want 1", rep.Errors)
	}
}

func TestEngineCanceledContext(t *testing.T) {
	s := gen.GraphSchema()
	e := New(s, nil, Options{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	jobs := []Job{{Left: gen.CliqueQuery(4), Right: gen.CliqueQuery(4), Op: OpEquivalent}}
	rep := e.Run(ctx, jobs)
	if rep.Results[0].Err == nil {
		t.Fatal("canceled batch should surface the context error")
	}
}

func TestEngineDecideCachesAndReports(t *testing.T) {
	s := gen.GraphSchema()
	e := New(s, nil, Options{})
	q1, q2 := gen.ChainQuery(2), gen.ChainQuery(2)
	r1 := e.Decide(context.Background(), q1, q2, OpEquivalent)
	if r1.Err != nil || !r1.Holds || r1.CacheHit {
		t.Fatalf("first decide: %+v", r1)
	}
	r2 := e.Decide(context.Background(), q1.Rename("z_"), q2, OpEquivalent)
	if !r2.CacheHit || !r2.Holds {
		t.Fatalf("renamed re-decide should hit: %+v", r2)
	}
}

func TestEngineEquivalentUnderAdapter(t *testing.T) {
	s := gen.GraphSchema()
	e := New(s, nil, Options{})
	ok, _, err := e.EquivalentUnder(gen.StarQuery(2), gen.StarQuery(3), s, nil)
	if err != nil || !ok {
		t.Fatalf("stars are equivalent without keys: ok=%v err=%v", ok, err)
	}
	other := schema.MustParse("E(src:T1, dst:T1)")
	if _, _, err := e.EquivalentUnder(gen.StarQuery(2), gen.StarQuery(2), other, nil); err == nil {
		t.Fatal("engine must reject a schema it is not bound to")
	}
}

func TestEngineReportAggregates(t *testing.T) {
	s := gen.GraphSchema()
	now := time.Unix(0, 0)
	e := New(s, nil, Options{Workers: 3, Now: func() time.Time {
		now = now.Add(time.Millisecond)
		return now
	}})
	jobs := []Job{
		{Left: gen.ChainQuery(2), Right: gen.ChainQuery(2), Op: OpEquivalent},
		{Left: gen.ChainQuery(2), Right: gen.ChainQuery(3), Op: OpEquivalent},
	}
	rep := e.Run(context.Background(), jobs)
	if rep.Holding != 1 {
		t.Fatalf("holding = %d, want 1", rep.Holding)
	}
	if rep.Nodes <= 0 {
		t.Fatal("no homomorphism nodes recorded")
	}
	if rep.Wall <= 0 {
		t.Fatal("injected clock did not produce a wall time")
	}
	if rep.Workers != 3 {
		t.Fatalf("workers = %d", rep.Workers)
	}
}

func TestPoolRoutesAndCaches(t *testing.T) {
	p := NewPool(Options{})
	s1 := gen.GraphSchema()
	s2 := gen.GraphSchema() // distinct pointer, same fingerprint
	if p.For(s1, nil) != p.For(s2, nil) {
		t.Fatal("structurally equal schemas should share an engine")
	}
	keyed := schema.MustParse("R(k*:T1, a:T2)")
	if p.For(s1, nil) == p.For(keyed, fd.KeyFDs(keyed)) {
		t.Fatal("different schemas must not share an engine")
	}
	ok, _, err := p.Equiv(gen.ChainQuery(2), gen.ChainQuery(2), s1, nil)
	if err != nil || !ok {
		t.Fatalf("pool equiv: ok=%v err=%v", ok, err)
	}
	ok, _, err = p.Contains(gen.ChainQuery(3), gen.ChainQuery(3), s1, nil)
	if err != nil || !ok {
		t.Fatalf("pool contains: ok=%v err=%v", ok, err)
	}
	if st := p.Stats(); st.Entries == 0 {
		t.Fatalf("pool cache empty after decisions: %+v", st)
	}
}
