//go:build keyedeq_debug

package invariant

// Debug reports whether debug assertions are compiled in.  It is a
// constant so `if invariant.Debug { ... }` blocks are eliminated from
// release builds entirely.
const Debug = true
