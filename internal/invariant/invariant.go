// Package invariant is the single sanctioned panic gate for internal
// packages and the home of the repo's runtime correctness assertions.
//
// Two tiers:
//
//   - Must / Mustf are always active.  They back the Must* convenience
//     APIs (MustParse, MustInsert, ...) whose contract is "panic on bad
//     input", so their behavior cannot depend on build tags.
//
//   - Assert / Assertf are debug assertions guarding paper-level
//     invariants (union-find shape, chase monotonicity, ij-saturation
//     idempotence, attribute disjointness).  They are compiled to
//     no-ops unless the build carries the keyedeq_debug tag:
//
//     go test -tags keyedeq_debug ./...
//
// Expensive checks should be wrapped in `if invariant.Debug { ... }` so
// release builds eliminate the whole block at compile time.
//
// The keyedeq-lint panicgate rule enforces that internal packages panic
// only through this package.
package invariant

import "fmt"

// Violation is the panic payload used by every helper in this package,
// so recovering callers can distinguish invariant failures from
// arbitrary panics.
type Violation struct {
	// Cause is the underlying error for Must, nil for assertion
	// failures.
	Cause error
	// Msg describes the violated invariant.
	Msg string
}

// Error implements error so a recovered Violation reads naturally.
func (v *Violation) Error() string { return v.Msg }

// Unwrap exposes the underlying error, if any.
func (v *Violation) Unwrap() error { return v.Cause }

// Must panics if err is non-nil.  Always active, in every build.
func Must(err error) {
	if err != nil {
		panic(&Violation{Cause: err, Msg: err.Error()})
	}
}

// Mustf panics with a formatted message if cond is false.  Always
// active, in every build.
func Mustf(cond bool, format string, args ...any) {
	if !cond {
		panic(&Violation{Msg: fmt.Sprintf(format, args...)})
	}
}

// Assert panics with msg if cond is false, but only in keyedeq_debug
// builds; release builds reduce it to a branch on a false constant.
func Assert(cond bool, msg string) {
	if !Debug {
		return
	}
	if !cond {
		panic(&Violation{Msg: "invariant violated: " + msg})
	}
}

// Assertf is Assert with formatting.  The arguments are evaluated at
// the call site even in release builds; guard expensive ones with
// `if invariant.Debug { ... }`.
func Assertf(cond bool, format string, args ...any) {
	if !Debug {
		return
	}
	if !cond {
		panic(&Violation{Msg: "invariant violated: " + fmt.Sprintf(format, args...)})
	}
}
