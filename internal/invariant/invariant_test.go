package invariant

import (
	"errors"
	"strings"
	"testing"
)

func recovered(f func()) (v *Violation) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		var ok bool
		if v, ok = r.(*Violation); !ok {
			panic(r)
		}
	}()
	f()
	return nil
}

func TestMustNilIsSilent(t *testing.T) {
	if v := recovered(func() { Must(nil) }); v != nil {
		t.Fatalf("Must(nil) panicked: %v", v)
	}
}

func TestMustPanicsWithViolation(t *testing.T) {
	err := errors.New("boom")
	v := recovered(func() { Must(err) })
	if v == nil {
		t.Fatal("Must(err) did not panic")
	}
	if !errors.Is(v, err) {
		t.Fatalf("violation does not wrap the cause: %v", v)
	}
}

func TestMustfActiveInEveryBuild(t *testing.T) {
	if v := recovered(func() { Mustf(true, "fine") }); v != nil {
		t.Fatalf("Mustf(true) panicked: %v", v)
	}
	v := recovered(func() { Mustf(false, "bad %d", 7) })
	if v == nil {
		t.Fatal("Mustf(false) did not panic; Must helpers must not be tag-gated")
	}
	if !strings.Contains(v.Error(), "bad 7") {
		t.Fatalf("message not formatted: %q", v.Error())
	}
}

func TestAssertRespectsDebugTag(t *testing.T) {
	v := recovered(func() { Assert(false, "union-find rank") })
	if Debug && v == nil {
		t.Fatal("keyedeq_debug build: Assert(false) did not panic")
	}
	if !Debug && v != nil {
		t.Fatalf("release build: Assert(false) panicked: %v", v)
	}
	if v != nil && !strings.Contains(v.Error(), "union-find rank") {
		t.Fatalf("assertion message lost: %q", v.Error())
	}
}

func TestAssertfRespectsDebugTag(t *testing.T) {
	v := recovered(func() { Assertf(false, "classes %d -> %d", 3, 5) })
	if Debug && v == nil {
		t.Fatal("keyedeq_debug build: Assertf(false) did not panic")
	}
	if !Debug && v != nil {
		t.Fatalf("release build: Assertf(false) panicked: %v", v)
	}
	if v != nil && !strings.Contains(v.Error(), "classes 3 -> 5") {
		t.Fatalf("assertion message lost: %q", v.Error())
	}
}

func TestAssertTrueNeverPanics(t *testing.T) {
	if v := recovered(func() { Assert(true, "x"); Assertf(true, "y") }); v != nil {
		t.Fatalf("true assertions panicked: %v", v)
	}
}
