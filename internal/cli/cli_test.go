package cli

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTextInlineAndFile(t *testing.T) {
	got, err := Text("R(a*:T1)")
	if err != nil || got != "R(a*:T1)" {
		t.Fatalf("inline: got %q, %v", got, err)
	}
	path := filepath.Join(t.TempDir(), "s.txt")
	if err := os.WriteFile(path, []byte("R(a*:T1, b:T2)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = Text("@" + path)
	if err != nil || got != "R(a*:T1, b:T2)\n" {
		t.Fatalf("file: got %q, %v", got, err)
	}
	if _, err := Text("@" + filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing @file: want error")
	}
	// A bare "@" is inline text, not an empty file reference.
	if got, err := Text("@"); err != nil || got != "@" {
		t.Errorf("bare @: got %q, %v", got, err)
	}
}

func TestSchemaLoading(t *testing.T) {
	s, err := Schema("R(a*:T1, b:T2)")
	if err != nil || s.Relation("R") == nil {
		t.Fatalf("inline schema: %v", err)
	}
	path := filepath.Join(t.TempDir(), "s.schema")
	if err := os.WriteFile(path, []byte("E(src*:T1, dst:T1)\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err = Schema("@" + path)
	if err != nil || s.Relation("E") == nil {
		t.Fatalf("@file schema: %v", err)
	}
	s, err = SchemaFile(path)
	if err != nil || s.Relation("E") == nil {
		t.Fatalf("SchemaFile: %v", err)
	}
	if _, err := Schema("not a schema"); err == nil {
		t.Error("bad schema text: want error")
	}
}

func TestFail(t *testing.T) {
	var buf strings.Builder
	fail := Fail(&buf, "mytool")
	if code := fail(os.ErrNotExist); code != 2 {
		t.Errorf("exit code %d, want 2", code)
	}
	if got := buf.String(); !strings.HasPrefix(got, "mytool: ") {
		t.Errorf("stderr %q lacks tool prefix", got)
	}
}
