package cli

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"keyedeq/internal/obs"
)

func parseObs(t *testing.T, args ...string) *ObsFlags {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var f ObsFlags
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return &f
}

func TestObsFlagsDisabled(t *testing.T) {
	s, err := parseObs(t).Setup(nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs != nil {
		t.Fatal("Obs built with no flag given; the unobserved path must stay nil")
	}
	var buf bytes.Buffer
	if err := s.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("Close wrote %q with observability off", buf.String())
	}
}

func TestObsFlagsMetricsAndTrace(t *testing.T) {
	trace := filepath.Join(t.TempDir(), "trace.jsonl")
	f := parseObs(t, "-metrics", "-trace", trace)
	s, err := f.Setup(time.Now)
	if err != nil {
		t.Fatal(err)
	}
	if s.Obs == nil || s.Obs.Reg == nil || s.Obs.Sink == nil {
		t.Fatal("flags on but Obs incomplete")
	}
	s.Obs.C(obs.CPairs).Add(3)
	s.Obs.Emit(&obs.Span{Stage: obs.StageSearch, Attrs: []obs.Attr{obs.I("nodes", 7)}})

	var buf bytes.Buffer
	if err := s.Close(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "keyedeq_pairs_total 3") {
		t.Fatalf("Close output lacks the counter line:\n%s", buf.String())
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var sp obs.Span
	if err := json.Unmarshal(bytes.TrimSpace(data), &sp); err != nil {
		t.Fatalf("trace line does not parse: %v (%q)", err, data)
	}
	if sp.Stage != obs.StageSearch {
		t.Fatalf("trace span stage %q, want %q", sp.Stage, obs.StageSearch)
	}
	if n, ok := sp.IntAttr("nodes"); !ok || n != 7 {
		t.Fatalf("trace span nodes attr = %d, %v", n, ok)
	}
}

func TestObsFlagsPprofServer(t *testing.T) {
	f := parseObs(t, "-pprof-http", "127.0.0.1:0")
	s, err := f.Setup(time.Now)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(io.Discard)
	if s.Addr() == "" {
		t.Fatal("no bound address")
	}
	s.Obs.C(obs.CSearches).Inc()

	get := func(path string) string {
		t.Helper()
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	if body := get("/metrics"); !strings.Contains(body, "keyedeq_searches_total 1") {
		t.Fatalf("/metrics lacks the live counter:\n%s", body)
	}
	if body := get("/debug/vars"); !strings.Contains(body, "keyedeq") {
		t.Fatalf("/debug/vars lacks the keyedeq snapshot:\n%s", body)
	}
	if body := get("/debug/pprof/cmdline"); body == "" {
		t.Fatal("/debug/pprof/cmdline empty")
	}
}
