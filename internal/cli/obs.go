package cli

import (
	"errors"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"keyedeq/internal/obs"
)

// ObsFlags bundles the observability flags the keyedeq commands share:
//
//	-metrics          collect pipeline metrics, print Prometheus text on exit
//	-trace out.jsonl  write per-stage spans as JSON lines
//	-pprof-http :addr serve /debug/pprof, /debug/vars, and /metrics
//
// Register installs the flags; after parsing, Setup builds the *obs.Obs
// to thread into the pipeline (nil when no flag was given, keeping the
// unobserved fast path).
type ObsFlags struct {
	Metrics   bool
	TracePath string
	PprofAddr string
}

// Register installs the shared flags on fs.
func (f *ObsFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Metrics, "metrics", false,
		"collect pipeline metrics and print them (Prometheus text) on exit")
	fs.StringVar(&f.TracePath, "trace", "",
		"write per-stage spans as JSON lines to this `file`")
	fs.StringVar(&f.PprofAddr, "pprof-http", "",
		"serve /debug/pprof, /debug/vars, and /metrics on this `address` (e.g. :6060)")
}

// enabled reports whether any observability flag was given.
func (f *ObsFlags) enabled() bool {
	return f.Metrics || f.TracePath != "" || f.PprofAddr != ""
}

// ObsSetup is the live observability state behind the flags.  Obs is
// nil when no flag was given; Close is always safe to call.
type ObsSetup struct {
	Obs *obs.Obs

	reg      *obs.Registry
	sink     *obs.JSONLSink
	trace    *os.File
	srv      *http.Server
	serveErr chan error
	addr     string
	metrics  bool
}

// Addr returns the pprof server's bound address ("" when -pprof-http
// was not given); with a ":0" flag value this is where the kernel put
// the listener.
func (s *ObsSetup) Addr() string { return s.addr }

// Setup builds the observability state the parsed flags ask for.  The
// clock is injected by the command layer (library code stays
// wall-clock-free); it may be nil when no flag needs timestamps.
func (f *ObsFlags) Setup(now func() time.Time) (*ObsSetup, error) {
	s := &ObsSetup{metrics: f.Metrics}
	if !f.enabled() {
		return s, nil
	}
	s.reg = obs.NewRegistry()
	s.Obs = &obs.Obs{Reg: s.reg, Now: now}

	if f.TracePath != "" {
		file, err := os.Create(f.TracePath)
		if err != nil {
			return nil, err
		}
		s.trace = file
		s.sink = obs.NewJSONLSink(file)
		s.Obs.Sink = s.sink
	}

	if f.PprofAddr != "" {
		mux := http.NewServeMux()
		obs.MountHTTP(mux, s.reg)
		ln, err := net.Listen("tcp", f.PprofAddr)
		if err != nil {
			s.Close(io.Discard)
			return nil, err
		}
		s.addr = ln.Addr().String()
		s.srv = &http.Server{Handler: mux}
		s.serveErr = make(chan error, 1)
		go func() { s.serveErr <- s.srv.Serve(ln) }()
	}
	return s, nil
}

// Close flushes and tears down: prints the Prometheus exposition to w
// when -metrics was given, closes the trace file (reporting the first
// write error a span hit), and stops the pprof server.  It returns the
// first error encountered.
func (s *ObsSetup) Close(w io.Writer) error {
	var first error
	keep := func(err error) {
		if err != nil && first == nil {
			first = err
		}
	}
	if s.reg != nil && s.metrics {
		keep(s.reg.WritePrometheus(w))
	}
	if s.sink != nil {
		keep(s.sink.Err())
	}
	if s.trace != nil {
		keep(s.trace.Close())
	}
	if s.srv != nil {
		keep(s.srv.Close())
		// Join the serve goroutine; Serve's return after Close is
		// ErrServerClosed, anything else is a real serve failure that
		// would otherwise vanish with the goroutine.
		if err := <-s.serveErr; !errors.Is(err, http.ErrServerClosed) {
			keep(err)
		}
	}
	return first
}
