// Package cli holds the small amount of plumbing the keyedeq commands
// share: @file-or-inline argument resolution, schema loading, and the
// conventional "tool: error" failure path with exit status 2.
package cli

import (
	"fmt"
	"io"
	"os"

	"keyedeq/internal/schema"
)

// Text resolves a flag value that is either inline text or a file
// reference spelled "@path" (the cqcheck/sqeq convention).
func Text(arg string) (string, error) {
	if len(arg) > 1 && arg[0] == '@' {
		data, err := os.ReadFile(arg[1:])
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	return arg, nil
}

// Schema loads a schema from inline text or an "@path" reference.
func Schema(arg string) (*schema.Schema, error) {
	text, err := Text(arg)
	if err != nil {
		return nil, err
	}
	return schema.Parse(text)
}

// SchemaFile loads a schema from a file path.
func SchemaFile(path string) (*schema.Schema, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return schema.Parse(string(data))
}

// Fail returns the conventional failure helper: print "tool: err" to
// stderr and yield exit status 2.
func Fail(stderr io.Writer, tool string) func(error) int {
	return func(err error) int {
		fmt.Fprintf(stderr, "%s: %v\n", tool, err)
		return 2
	}
}
