package cli

import (
	"flag"

	"keyedeq/internal/cq"
)

// SearchFlags bundles the search-mode escape hatch the keyedeq commands
// share:
//
//	-generic-search   decide with the generic planned search instead of
//	                  the interned default
//
// The interned search (dense value.ID tuples over the frozen instance
// view) is the default everywhere; the generic planned search survives
// as the differential oracle and as this operational fallback.  Register
// installs the flag; Apply installs the selected mode process-wide after
// parsing, before any containment work starts.
type SearchFlags struct {
	Generic bool
}

// Register installs the shared flag on fs.
func (f *SearchFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Generic, "generic-search", false,
		"decide with the generic planned homomorphism search instead of the interned default")
}

// Apply installs the selected search mode process-wide.  Call it once,
// after flag parsing and before any queries are decided; it is a no-op
// when the flag was not given, leaving the interned default in place.
func (f *SearchFlags) Apply() {
	if f.Generic {
		cq.SearchDefault = cq.SearchPlanned
	}
}
