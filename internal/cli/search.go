package cli

import (
	"flag"
	"fmt"

	"keyedeq/internal/cq"
)

// SearchFlags bundles the search-mode escape hatches the keyedeq
// commands share:
//
//	-search-mode <m>  pick the homomorphism search runtime by name:
//	                  adaptive (default), streamed, interned, planned,
//	                  or naive
//	-generic-search   shorthand for -search-mode planned, kept for
//	                  compatibility with existing scripts
//
// The adaptive runtime (cost-chosen scan-vs-pipeline with parallel
// component search) is the default everywhere; the named modes survive
// as differential oracles and operational fallbacks.  Register
// installs the flags; Apply installs the selected mode process-wide
// after parsing, before any containment work starts.
type SearchFlags struct {
	Generic bool
	Mode    string
}

// searchModes maps flag spellings to search modes.
var searchModes = map[string]cq.SearchMode{
	"adaptive": cq.SearchAdaptive,
	"streamed": cq.SearchStreamed,
	"interned": cq.SearchInterned,
	"planned":  cq.SearchPlanned,
	"naive":    cq.SearchNaive,
}

// Register installs the shared flags on fs.
func (f *SearchFlags) Register(fs *flag.FlagSet) {
	fs.BoolVar(&f.Generic, "generic-search", false,
		"decide with the generic planned homomorphism search (shorthand for -search-mode planned)")
	fs.StringVar(&f.Mode, "search-mode", "",
		"homomorphism search runtime: adaptive, streamed, interned, planned, or naive")
}

// Apply installs the selected search mode process-wide.  Call it once,
// after flag parsing and before any queries are decided; it is a no-op
// when neither flag was given, leaving the adaptive default in place.
// An unknown -search-mode value is reported, not guessed at.
func (f *SearchFlags) Apply() error {
	if f.Mode != "" {
		mode, ok := searchModes[f.Mode]
		if !ok {
			return fmt.Errorf("unknown -search-mode %q (want adaptive, streamed, interned, planned, or naive)", f.Mode)
		}
		cq.SearchDefault = mode
		return nil
	}
	if f.Generic {
		cq.SearchDefault = cq.SearchPlanned
	}
	return nil
}
