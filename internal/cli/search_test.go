package cli

import (
	"flag"
	"io"
	"testing"

	"keyedeq/internal/cq"
)

// applyParsed registers SearchFlags on a fresh flag set, parses args,
// and runs Apply, returning the error.
func applyParsed(t *testing.T, args []string) error {
	t.Helper()
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var sf SearchFlags
	sf.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return sf.Apply()
}

func TestSearchFlagsApply(t *testing.T) {
	orig := cq.SearchDefault
	defer func() { cq.SearchDefault = orig }()

	// Unset flags: Apply leaves the adaptive default alone.
	if err := applyParsed(t, nil); err != nil {
		t.Fatal(err)
	}
	if cq.SearchDefault != orig {
		t.Fatalf("Apply without flags changed SearchDefault to %v", cq.SearchDefault)
	}

	// -generic-search: Apply flips the process default to planned.
	if err := applyParsed(t, []string{"-generic-search"}); err != nil {
		t.Fatal(err)
	}
	if cq.SearchDefault != cq.SearchPlanned {
		t.Fatalf("Apply with -generic-search left SearchDefault at %v", cq.SearchDefault)
	}
}

func TestSearchFlagsModeSelector(t *testing.T) {
	orig := cq.SearchDefault
	defer func() { cq.SearchDefault = orig }()

	for name, want := range map[string]cq.SearchMode{
		"adaptive": cq.SearchAdaptive,
		"streamed": cq.SearchStreamed,
		"interned": cq.SearchInterned,
		"planned":  cq.SearchPlanned,
		"naive":    cq.SearchNaive,
	} {
		if err := applyParsed(t, []string{"-search-mode", name}); err != nil {
			t.Fatalf("-search-mode %s: %v", name, err)
		}
		if cq.SearchDefault != want {
			t.Fatalf("-search-mode %s installed %v, want %v", name, cq.SearchDefault, want)
		}
	}

	// -search wins over -generic-search when both are given.
	if err := applyParsed(t, []string{"-generic-search", "-search-mode", "interned"}); err != nil {
		t.Fatal(err)
	}
	if cq.SearchDefault != cq.SearchInterned {
		t.Fatalf("-search must take precedence, got %v", cq.SearchDefault)
	}

	// Unknown mode: an error, and the default untouched.
	cq.SearchDefault = orig
	if err := applyParsed(t, []string{"-search-mode", "quantum"}); err == nil {
		t.Fatal("unknown -search mode must be rejected")
	}
	if cq.SearchDefault != orig {
		t.Fatalf("failed Apply changed SearchDefault to %v", cq.SearchDefault)
	}
}
