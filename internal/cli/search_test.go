package cli

import (
	"flag"
	"io"
	"testing"

	"keyedeq/internal/cq"
)

func TestSearchFlagsApply(t *testing.T) {
	orig := cq.SearchDefault
	defer func() { cq.SearchDefault = orig }()

	// Unset flag: Apply leaves the interned default alone.
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var sf SearchFlags
	sf.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	sf.Apply()
	if cq.SearchDefault != orig {
		t.Fatalf("Apply without -generic-search changed SearchDefault to %v", cq.SearchDefault)
	}

	// -generic-search: Apply flips the process default to planned.
	fs = flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	var sg SearchFlags
	sg.Register(fs)
	if err := fs.Parse([]string{"-generic-search"}); err != nil {
		t.Fatal(err)
	}
	sg.Apply()
	if cq.SearchDefault != cq.SearchPlanned {
		t.Fatalf("Apply with -generic-search left SearchDefault at %v", cq.SearchDefault)
	}
}
