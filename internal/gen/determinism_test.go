package gen

import (
	"math/rand"
	"testing"

	"keyedeq/internal/schema"
)

// The experiment suite depends on generators being pure functions of
// their seed: a reported schema space or counterexample must be
// reproducible from the seed alone.

func TestRandomKeyedSchemaSameSeedIsByteIdentical(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		a := RandomKeyedSchema(rand.New(rand.NewSource(seed)), 4, 4, 3)
		b := RandomKeyedSchema(rand.New(rand.NewSource(seed)), 4, 4, 3)
		if a.String() != b.String() {
			t.Fatalf("seed %d: two runs differ:\n%s\n---\n%s", seed, a, b)
		}
	}
}

func TestRandomKeyedSchemaDistinctSeedsVary(t *testing.T) {
	// Not a property of any single pair, but across 50 seeds the draws
	// must not all collapse to one schema.
	seen := make(map[string]bool)
	for seed := int64(0); seed < 50; seed++ {
		s := RandomKeyedSchema(rand.New(rand.NewSource(seed)), 4, 4, 3)
		seen[s.String()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("50 seeds produced %d distinct schemas", len(seen))
	}
}

func TestRandomKeyedInstanceSameSeedIsByteIdentical(t *testing.T) {
	s := schema.MustParse("R(a*:T1, b:T2)\nS(c*:T1, d:T1, e:T3)")
	for seed := int64(0); seed < 20; seed++ {
		a := RandomKeyedInstance(s, rand.New(rand.NewSource(seed)), 5, nil)
		b := RandomKeyedInstance(s, rand.New(rand.NewSource(seed)), 5, nil)
		if a.Dump() != b.Dump() {
			t.Fatalf("seed %d: two runs differ:\n%s\n---\n%s", seed, a.Dump(), b.Dump())
		}
	}
}

func TestRandomIsomorphRoundTrip(t *testing.T) {
	// An isomorphic perturbation must stay isomorphic to its source —
	// same canonical form — while a Mutate step must leave the
	// isomorphism class.
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		s := RandomKeyedSchema(rng, 4, 4, 3)
		iso, _ := schema.RandomIsomorph(s, rng)
		if !schema.Isomorphic(s, iso) {
			t.Fatalf("seed %d: RandomIsomorph left the isomorphism class:\n%s\n---\n%s", seed, s, iso)
		}
		if got, want := schema.CanonicalForm(iso), schema.CanonicalForm(s); got != want {
			t.Fatalf("seed %d: canonical forms differ:\n%s\n---\n%s", seed, got, want)
		}
		mut := Mutate(s, rng, 3)
		if schema.Isomorphic(s, mut) {
			t.Fatalf("seed %d: Mutate produced an isomorphic schema:\n%s\n---\n%s", seed, s, mut)
		}
	}
}

func TestRandomIsomorphSameSeedIsByteIdentical(t *testing.T) {
	s := schema.MustParse("R(a*:T1, b:T2, c:T1)\nS(d*:T3)")
	for seed := int64(0); seed < 20; seed++ {
		a, _ := schema.RandomIsomorph(s, rand.New(rand.NewSource(seed)))
		b, _ := schema.RandomIsomorph(s, rand.New(rand.NewSource(seed)))
		if a.String() != b.String() {
			t.Fatalf("seed %d: two runs differ:\n%s\n---\n%s", seed, a, b)
		}
	}
}
