package gen

import (
	"fmt"
	"math/rand"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Pair is one decision request of a generated corpus.
type Pair struct {
	Left, Right *cq.Query
	// Note tags how the pair was built, for test failure messages.
	Note string
}

// Family bundles a named schema family with its dependencies and the
// generated query pairs over it.
type Family struct {
	Name   string
	Schema *schema.Schema
	Deps   []fd.FD
	Pairs  []Pair
}

// FamilyNames lists the built-in corpus families, in generation order.
func FamilyNames() []string {
	return []string{"graph-chain", "graph-star", "graph-mixed", "graph-long", "keyed", "wide"}
}

// PairCorpus generates n query pairs of the named family, reproducibly
// from rng.  Roughly half the pairs are α-variants of one base query
// (equivalent by construction), the rest draw two independent bases.
func PairCorpus(rng *rand.Rand, name string, n int) (*Family, error) {
	f := &Family{Name: name}
	var bases []*cq.Query
	switch name {
	case "graph-chain":
		f.Schema = GraphSchema()
		for k := 1; k <= 5; k++ {
			bases = append(bases, ChainQuery(k))
			bases = append(bases, RandomChainVariant(rng, k, 1+rng.Intn(2)))
		}
	case "graph-star":
		f.Schema = GraphSchema()
		for k := 1; k <= 4; k++ {
			bases = append(bases, StarQuery(k))
		}
		for k := 1; k <= 3; k++ {
			bases = append(bases, ChainQuery(k))
		}
	case "graph-mixed":
		f.Schema = GraphSchema()
		for k := 1; k <= 4; k++ {
			bases = append(bases,
				ChainQuery(k), StarQuery(k), RandomChainVariant(rng, k, rng.Intn(3)))
		}
		bases = append(bases, CliqueQuery(2), CliqueQuery(3))
	case "graph-long":
		// Larger chains, where the homomorphism search dwarfs
		// canonicalization — the regime batch deduplication pays off in.
		f.Schema = GraphSchema()
		for _, k := range []int{10, 13, 16} {
			bases = append(bases, ChainQuery(k))
			bases = append(bases, RandomChainVariant(rng, k, 1+rng.Intn(2)))
		}
	case "keyed":
		f.Schema = schema.MustParse("R(k*:T1, a:T2)\nS(k*:T2, b:T1)")
		f.Deps = fd.KeyFDs(f.Schema)
		for i := 0; i < 12; i++ {
			bases = append(bases, randomKeyedQuery(rng))
		}
	case "wide":
		// Wide keyed relations with many body atoms and dense variable
		// sharing: the regime where naive full-scan matching pays the whole
		// relation per atom and the planner's index probes pay O(1).
		f.Schema = WideSchema()
		f.Deps = fd.KeyFDs(f.Schema)
		for _, k := range []int{12, 16, 20} {
			bases = append(bases, WideChainQuery(k))
			bases = append(bases, WideChainVariant(rng, k, 1+rng.Intn(2)))
		}
	default:
		return nil, fmt.Errorf("gen: unknown corpus family %q", name)
	}
	for i := 0; i < n; i++ {
		b := bases[rng.Intn(len(bases))]
		if rng.Intn(2) == 0 {
			f.Pairs = append(f.Pairs, Pair{
				Left:  b.Clone(),
				Right: AlphaVariant(rng, b),
				Note:  fmt.Sprintf("%s alpha pair %d", name, i),
			})
			continue
		}
		// Cross pairs must be comparable: draw the partner from bases of
		// the same head arity (all graph-family heads are T1-typed, and
		// the keyed family's are single T1, so arity decides).
		c := bases[rng.Intn(len(bases))]
		for c.Arity() != b.Arity() {
			c = bases[rng.Intn(len(bases))]
		}
		f.Pairs = append(f.Pairs, Pair{
			Left:  AlphaVariant(rng, b),
			Right: AlphaVariant(rng, c),
			Note:  fmt.Sprintf("%s cross pair %d", name, i),
		})
	}
	return f, nil
}

// randomKeyedQuery draws a small query over the keyed corpus schema
// R(k*:T1, a:T2), S(k*:T2, b:T1): 1–3 atoms with distinct placeholder
// variables per position (as the syntax requires), joins expressed by
// equating placeholders assigned to the same small per-type pool slot,
// head one T1 placeholder, and an occasional constant binding.
func randomKeyedQuery(rng *rand.Rand) *cq.Query {
	const slots = 3
	var t1Pools, t2Pools [slots][]cq.Var
	q := &cq.Query{HeadRel: "V"}
	atoms := 3 + rng.Intn(4)
	next := 0
	fresh := func() cq.Var {
		next++
		return cq.Var(fmt.Sprintf("P%d", next))
	}
	for i := 0; i < atoms; i++ {
		u, w := fresh(), fresh()
		t1Pools[rng.Intn(slots)] = append(t1Pools[rng.Intn(slots)], u)
		t2Pools[rng.Intn(slots)] = append(t2Pools[rng.Intn(slots)], w)
		if rng.Intn(2) == 0 {
			q.Body = append(q.Body, cq.Atom{Rel: "R", Vars: []cq.Var{u, w}})
		} else {
			q.Body = append(q.Body, cq.Atom{Rel: "S", Vars: []cq.Var{w, u}})
		}
	}
	chain := func(pool []cq.Var) {
		for i := 1; i < len(pool); i++ {
			q.Eqs = append(q.Eqs, cq.Equality{Left: pool[i-1], Right: cq.Term{Var: pool[i]}})
		}
	}
	var headCand []cq.Var
	for s := 0; s < slots; s++ {
		chain(t1Pools[s])
		chain(t2Pools[s])
		headCand = append(headCand, t1Pools[s]...)
	}
	q.Head = []cq.Term{{Var: headCand[rng.Intn(len(headCand))]}}
	if rng.Intn(3) == 0 {
		pool := t2Pools[rng.Intn(slots)]
		if len(pool) > 0 {
			c := value.Value{Type: 2, N: int64(1 + rng.Intn(2))}
			q.Eqs = append(q.Eqs, cq.Equality{Left: pool[0], Right: cq.C(c)})
		}
	}
	return q
}

// AlphaVariant returns a query α-equivalent to q: variables renamed by a
// random injection, body atoms shuffled, the equality list rebuilt as a
// random spanning chain of each equality class, and each head variable
// replaced by a random body-occurring member of its class.  Engine
// verdicts (and canonical keys) must be invariant under all of this.
func AlphaVariant(rng *rand.Rand, q *cq.Query) *cq.Query {
	eq := cq.NewEqClasses(q)

	// Order of first appearance, then a random injective renaming.
	var vars []cq.Var
	seen := make(map[cq.Var]bool)
	note := func(v cq.Var) {
		if v != "" && !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	for _, a := range q.Body {
		for _, v := range a.Vars {
			note(v)
		}
	}
	for _, t := range q.Head {
		if !t.IsConst {
			note(t.Var)
		}
	}
	for _, e := range q.Eqs {
		note(e.Left)
		if !e.Right.IsConst {
			note(e.Right.Var)
		}
	}
	perm := rng.Perm(len(vars))
	ren := make(map[cq.Var]cq.Var, len(vars))
	for i, v := range vars {
		ren[v] = cq.Var(fmt.Sprintf("A%d", perm[i]))
	}

	out := &cq.Query{HeadRel: q.HeadRel}

	// Shuffled body with renamed variables.
	order := rng.Perm(len(q.Body))
	inBody := make(map[cq.Var]bool)
	for _, ai := range order {
		a := q.Body[ai]
		vs := make([]cq.Var, len(a.Vars))
		for i, v := range a.Vars {
			vs[i] = ren[v]
			inBody[v] = true
		}
		out.Body = append(out.Body, cq.Atom{Rel: a.Rel, Vars: vs})
	}

	// Group variables by equality class, members shuffled.
	classOf := make(map[cq.Var][]cq.Var)
	var roots []cq.Var
	for _, v := range vars {
		r := eq.Find(v)
		if classOf[r] == nil {
			roots = append(roots, r)
		}
		classOf[r] = append(classOf[r], v)
	}
	for _, r := range roots {
		m := classOf[r]
		rng.Shuffle(len(m), func(i, j int) { m[i], m[j] = m[j], m[i] })
	}

	// An unsatisfiable query's classes lose information (union-find
	// keeps one constant per class, not the conflicting pair), so
	// rebuilding equalities from them would change semantics.  Keep the
	// original equality list — renamed and shuffled — instead.
	if eq.Unsatisfiable() {
		for _, i := range rng.Perm(len(q.Eqs)) {
			e := q.Eqs[i]
			right := e.Right
			if !right.IsConst {
				right = cq.Term{Var: ren[right.Var]}
			}
			out.Eqs = append(out.Eqs, cq.Equality{Left: ren[e.Left], Right: right})
		}
		for _, t := range q.Head {
			if t.IsConst {
				out.Head = append(out.Head, t)
			} else {
				out.Head = append(out.Head, cq.Term{Var: ren[t.Var]})
			}
		}
		return out
	}

	// Equalities: a random chain through each class, plus the class's
	// constant bound to a random member.
	for _, r := range roots {
		m := classOf[r]
		for i := 1; i < len(m); i++ {
			out.Eqs = append(out.Eqs, cq.Equality{Left: ren[m[i-1]], Right: cq.Term{Var: ren[m[i]]}})
		}
		if c, ok := eq.Const(r); ok {
			out.Eqs = append(out.Eqs, cq.Equality{Left: ren[m[rng.Intn(len(m))]], Right: cq.C(c)})
		}
	}

	// Head: constants unchanged; variables swapped for a random
	// body-occurring member of their class.
	for _, t := range q.Head {
		if t.IsConst {
			out.Head = append(out.Head, t)
			continue
		}
		m := classOf[eq.Find(t.Var)]
		pick := t.Var
		var cands []cq.Var
		for _, v := range m {
			if inBody[v] {
				cands = append(cands, v)
			}
		}
		if len(cands) > 0 {
			pick = cands[rng.Intn(len(cands))]
		}
		out.Head = append(out.Head, cq.Term{Var: ren[pick]})
	}
	return out
}

// RenameRelations returns q with every body atom's relation renamed
// through ren (names absent from ren are kept).  The head relation name
// is a view label and stays as is.
func RenameRelations(q *cq.Query, ren map[string]string) *cq.Query {
	out := q.Clone()
	for i := range out.Body {
		if to, ok := ren[out.Body[i].Rel]; ok {
			out.Body[i].Rel = to
		}
	}
	return out
}

// RenameSchemaRelations returns a copy of s with relation (and
// attribute) names renamed through ren; shapes, types, and keys are
// untouched, so the renamed schema is "identical up to renaming" in the
// paper's sense.
func RenameSchemaRelations(s *schema.Schema, ren map[string]string) *schema.Schema {
	rels := make([]*schema.Relation, len(s.Relations))
	for i, r := range s.Relations {
		c := r.Clone()
		if to, ok := ren[r.Name]; ok {
			c.Name = to
		}
		for j := range c.Attrs {
			c.Attrs[j].Name = fmt.Sprintf("%s_%d", c.Name, j)
		}
		rels[i] = c
	}
	return schema.MustNew(rels...)
}
