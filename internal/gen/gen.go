// Package gen provides deterministic, seedable generators and enumerators
// for the experiment suite: exhaustive small keyed-schema spaces, random
// schemas, isomorphic perturbations and non-isomorphic mutations, random
// key-satisfying and attribute-specific instances, and the standard
// conjunctive query workloads (chains, stars, cliques) used by the
// containment benchmarks.
package gen

import (
	"fmt"
	"math/rand"

	"keyedeq/internal/instance"
	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// SchemaSpace bounds an exhaustive schema enumeration.
type SchemaSpace struct {
	// MaxRelations is the maximum number of relations (≥ 1).
	MaxRelations int
	// MaxAttrs is the maximum attributes per relation (≥ 1).
	MaxAttrs int
	// Types is the number of available attribute types (≥ 1); type i is
	// value.Type(i+1).
	Types int
	// AllKeySubsets enumerates every non-empty key subset per relation;
	// when false only single-attribute keys at position 0 are used.
	AllKeySubsets bool
}

// EnumerateKeyedSchemas lists every keyed schema in the space, with
// canonical relation names r0, r1, ... and attribute names a0, a1, ....
// The enumeration is deterministic.
func EnumerateKeyedSchemas(sp SchemaSpace) []*schema.Schema {
	rels := enumerateRelations(sp)
	var out []*schema.Schema
	// Choose 1..MaxRelations relation shapes (with repetition, order
	// irrelevant for semantics but names distinct).
	var build func(start, remaining int, cur []*schema.Relation)
	build = func(start, remaining int, cur []*schema.Relation) {
		if len(cur) > 0 {
			rs := make([]*schema.Relation, len(cur))
			for i, r := range cur {
				c := r.Clone()
				c.Name = fmt.Sprintf("r%d", i)
				rs[i] = c
			}
			s, err := schema.New(rs...)
			if err == nil {
				out = append(out, s)
			}
		}
		if remaining == 0 {
			return
		}
		for i := start; i < len(rels); i++ {
			build(i, remaining-1, append(cur, rels[i]))
		}
	}
	build(0, sp.MaxRelations, nil)
	return out
}

// enumerateRelations lists all relation shapes (attribute type vectors ×
// key choices) in the space.
func enumerateRelations(sp SchemaSpace) []*schema.Relation {
	var out []*schema.Relation
	for arity := 1; arity <= sp.MaxAttrs; arity++ {
		vecs := typeVectors(arity, sp.Types)
		for _, vec := range vecs {
			keys := keyChoices(arity, sp.AllKeySubsets)
			for _, key := range keys {
				r := &schema.Relation{Name: "r"}
				for p, t := range vec {
					r.Attrs = append(r.Attrs, schema.Attribute{
						Name: fmt.Sprintf("a%d", p),
						Type: t,
					})
				}
				r.Key = append([]int(nil), key...)
				out = append(out, r)
			}
		}
	}
	return out
}

// typeVectors lists all length-n vectors over types 1..k.
func typeVectors(n, k int) [][]value.Type {
	if n == 0 {
		return [][]value.Type{nil}
	}
	var out [][]value.Type
	for _, rest := range typeVectors(n-1, k) {
		for t := 1; t <= k; t++ {
			vec := append(append([]value.Type{}, rest...), value.Type(t))
			out = append(out, vec)
		}
	}
	return out
}

// keyChoices lists key position sets: every non-empty subset, or just {0}.
func keyChoices(arity int, all bool) [][]int {
	if !all {
		return [][]int{{0}}
	}
	var out [][]int
	for mask := 1; mask < 1<<uint(arity); mask++ {
		var key []int
		for p := 0; p < arity; p++ {
			if mask&(1<<uint(p)) != 0 {
				key = append(key, p)
			}
		}
		out = append(out, key)
	}
	return out
}

// RandomKeyedSchema draws a random keyed schema: 1..maxRels relations,
// 1..maxAttrs attributes each over the given number of types, single-
// or multi-attribute keys.
func RandomKeyedSchema(rng *rand.Rand, maxRels, maxAttrs, types int) *schema.Schema {
	n := 1 + rng.Intn(maxRels)
	rs := make([]*schema.Relation, n)
	for i := range rs {
		arity := 1 + rng.Intn(maxAttrs)
		r := &schema.Relation{Name: fmt.Sprintf("r%d", i)}
		for p := 0; p < arity; p++ {
			r.Attrs = append(r.Attrs, schema.Attribute{
				Name: fmt.Sprintf("a%d", p),
				Type: value.Type(1 + rng.Intn(types)),
			})
		}
		keyLen := 1 + rng.Intn(arity)
		perm := rng.Perm(arity)[:keyLen]
		sortInts(perm)
		r.Key = perm
		rs[i] = r
	}
	return schema.MustNew(rs...)
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Mutate returns a schema near s but not isomorphic to it, produced by
// one of: retyping an attribute, toggling a key position, adding an
// attribute, or deleting an attribute.  It retries until the result is
// valid and non-isomorphic (guaranteed to terminate: adding an attribute
// always changes the canonical form).
func Mutate(s *schema.Schema, rng *rand.Rand, types int) *schema.Schema {
	for attempt := 0; attempt < 100; attempt++ {
		c := s.Clone()
		r := c.Relations[rng.Intn(len(c.Relations))]
		switch rng.Intn(4) {
		case 0: // retype
			p := rng.Intn(len(r.Attrs))
			r.Attrs[p].Type = value.Type(1 + rng.Intn(types+1))
		case 1: // toggle key membership
			p := rng.Intn(len(r.Attrs))
			if r.IsKeyPos(p) {
				if len(r.Key) == 1 {
					continue // keyed schema needs a key
				}
				var nk []int
				for _, k := range r.Key {
					if k != p {
						nk = append(nk, k)
					}
				}
				r.Key = nk
			} else {
				r.Key = append(r.Key, p)
				sortInts(r.Key)
			}
		case 2: // add attribute
			r.Attrs = append(r.Attrs, schema.Attribute{
				Name: fmt.Sprintf("a%d", len(r.Attrs)),
				Type: value.Type(1 + rng.Intn(types)),
			})
		case 3: // drop a non-key attribute
			var cand []int
			for p := range r.Attrs {
				if !r.IsKeyPos(p) {
					cand = append(cand, p)
				}
			}
			if len(cand) == 0 {
				continue
			}
			p := cand[rng.Intn(len(cand))]
			r.Attrs = append(r.Attrs[:p], r.Attrs[p+1:]...)
			for i, k := range r.Key {
				if k > p {
					r.Key[i] = k - 1
				}
			}
		}
		if c.Validate() != nil {
			continue
		}
		if !schema.Isomorphic(s, c) {
			return c
		}
	}
	// Fallback: append a fresh-typed attribute, always non-isomorphic.
	c := s.Clone()
	r := c.Relations[0]
	r.Attrs = append(r.Attrs, schema.Attribute{
		Name: fmt.Sprintf("a%d", len(r.Attrs)),
		Type: value.Type(types + 1),
	})
	return c
}

// RandomKeyedInstance builds a random instance of s satisfying every key
// dependency, with n tuples per relation (fresh key parts guarantee the
// keys).
func RandomKeyedInstance(s *schema.Schema, rng *rand.Rand, n int, alloc *value.Allocator) *instance.Database {
	if alloc == nil {
		alloc = &value.Allocator{}
	}
	d := instance.NewDatabase(s)
	for ri, r := range s.Relations {
		for i := 0; i < n; i++ {
			tup := make(instance.Tuple, r.Arity())
			for p, a := range r.Attrs {
				if r.IsKeyPos(p) {
					tup[p] = alloc.Fresh(a.Type)
				} else {
					tup[p] = value.Value{Type: a.Type, N: int64(rng.Intn(2*n+2) + 1)}
				}
			}
			d.Relations[ri].MustInsert(tup)
		}
	}
	if invariant.Debug {
		invariant.Assert(d.SatisfiesKeys(), "gen: random keyed instance violates a key dependency")
	}
	return d
}

// AttributeSpecificInstance builds an instance of s with n tuples per
// relation in which no two distinct attributes share a value — the
// paper's attribute-specific gadget.  Every value is fresh, so the keys
// are satisfied too.
func AttributeSpecificInstance(s *schema.Schema, alloc *value.Allocator, n int) *instance.Database {
	if alloc == nil {
		alloc = &value.Allocator{}
	}
	d := instance.NewDatabase(s)
	for ri, r := range s.Relations {
		for i := 0; i < n; i++ {
			tup := make(instance.Tuple, r.Arity())
			for p, a := range r.Attrs {
				tup[p] = alloc.Fresh(a.Type)
			}
			d.Relations[ri].MustInsert(tup)
		}
	}
	if invariant.Debug {
		assertAttributeDisjoint(d)
	}
	return d
}

// assertAttributeDisjoint verifies the defining property of the
// attribute-specific gadget: no value occurs at two distinct
// (relation, position) slots.  The gadget's role in the paper's
// receives round-trips (Lemmas 3–5) depends on exactly this.
func assertAttributeDisjoint(d *instance.Database) {
	type slot struct{ rel, pos int }
	seen := make(map[value.Value]slot)
	for ri, r := range d.Relations {
		for _, t := range r.Tuples() {
			for p, v := range t {
				prev, ok := seen[v]
				invariant.Assertf(!ok || (prev.rel == ri && prev.pos == p),
					"gen: attribute-specific instance repeats %v at %d.%d and %d.%d",
					v, prev.rel, prev.pos, ri, p)
				seen[v] = slot{ri, p}
			}
		}
	}
}

// EnumerateUnkeyedSchemas lists every unkeyed schema in the space (no
// dependencies at all — Hull's original setting).
func EnumerateUnkeyedSchemas(sp SchemaSpace) []*schema.Schema {
	keyed := EnumerateKeyedSchemas(SchemaSpace{
		MaxRelations: sp.MaxRelations,
		MaxAttrs:     sp.MaxAttrs,
		Types:        sp.Types,
	})
	seen := make(map[string]bool)
	var out []*schema.Schema
	for _, s := range keyed {
		c := s.Clone()
		for _, r := range c.Relations {
			r.Key = nil
		}
		form := schema.CanonicalForm(c)
		// Dropping keys collapses shapes that differed only in key
		// choice; deduplicate by canonical form plus relation order.
		sig := c.String() + "\x00" + form
		if !seen[sig] {
			seen[sig] = true
			out = append(out, c)
		}
	}
	return out
}
