package gen

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/value"
)

func TestChainQuery(t *testing.T) {
	gs := GraphSchema()
	for n := 1; n <= 5; n++ {
		q := ChainQuery(n)
		if err := q.Validate(gs); err != nil {
			t.Fatalf("chain %d invalid: %v", n, err)
		}
		if len(q.Body) != n {
			t.Errorf("chain %d has %d atoms", n, len(q.Body))
		}
		// On the path graph of n+1 nodes, the n-chain query returns the
		// single pair (1, n+1).
		d := PathGraph(n + 1)
		out, err := cq.Eval(q, d)
		if err != nil {
			t.Fatal(err)
		}
		if out.Len() != 1 {
			t.Fatalf("chain %d on path: %s", n, out)
		}
		tup := out.Tuples()[0]
		if tup[0].N != 1 || tup[1].N != int64(n+1) {
			t.Errorf("chain %d endpoints wrong: %v", n, tup)
		}
		// On a shorter path it returns nothing.
		if n > 1 {
			short := PathGraph(n)
			out2, _ := cq.Eval(q, short)
			if out2.Len() != 0 {
				t.Errorf("chain %d matched a path of %d nodes", n, n)
			}
		}
	}
}

func TestStarQuery(t *testing.T) {
	gs := GraphSchema()
	q := StarQuery(3)
	if err := q.Validate(gs); err != nil {
		t.Fatal(err)
	}
	d := instance.NewDatabase(gs)
	// Node 1 has 3 out-edges; node 2 has 1.
	for _, dst := range []int64{2, 3, 4} {
		d.MustInsert("E", value.Value{Type: 1, N: 1}, value.Value{Type: 1, N: dst})
	}
	d.MustInsert("E", value.Value{Type: 1, N: 2}, value.Value{Type: 1, N: 5})
	out, err := cq.Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// A star query is satisfied by ANY node with >= 1 out-edge (edges
	// may repeat), so both 1 and 2 qualify.
	if out.Len() != 2 {
		t.Errorf("star answers: %s", out)
	}
}

func TestCliqueQuery(t *testing.T) {
	gs := GraphSchema()
	q := CliqueQuery(3)
	if err := q.Validate(gs); err != nil {
		t.Fatal(err)
	}
	if len(q.Body) != 6 {
		t.Errorf("3-clique has %d atoms, want 6", len(q.Body))
	}
	// The complete graph on 3 nodes satisfies it; the path does not.
	k3 := CompleteGraph(3)
	out, err := cq.Eval(q, k3)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() == 0 {
		t.Error("3-clique not found in K3")
	}
	p4 := PathGraph(4)
	out2, _ := cq.Eval(q, p4)
	if out2.Len() != 0 {
		t.Error("3-clique found in a path")
	}
}

func TestGraphBuilders(t *testing.T) {
	if PathGraph(5).Relation("E").Len() != 4 {
		t.Error("path edge count wrong")
	}
	if CompleteGraph(4).Relation("E").Len() != 12 {
		t.Error("complete graph edge count wrong")
	}
	rng := rand.New(rand.NewSource(4))
	g := RandomGraph(rng, 5, 20)
	if g.Relation("E").Len() == 0 || g.Relation("E").Len() > 20 {
		t.Errorf("random graph edges = %d", g.Relation("E").Len())
	}
}

func TestRandomChainVariantEquivalent(t *testing.T) {
	gs := GraphSchema()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 10; trial++ {
		n := 1 + rng.Intn(3)
		q := RandomChainVariant(rng, n, 1+rng.Intn(2))
		if err := q.Validate(gs); err != nil {
			t.Fatalf("variant invalid: %v", err)
		}
		base := ChainQuery(n)
		for i := 0; i < 10; i++ {
			d := RandomGraph(rng, 4, 8)
			a1, _ := cq.Eval(base, d)
			a2, _ := cq.Eval(q, d)
			if !a1.Equal(a2) {
				t.Fatalf("variant changed semantics:\n%s\nvs %s\non %s", base, q, d)
			}
		}
	}
}
