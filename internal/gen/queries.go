package gen

import (
	"fmt"
	"math/rand"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// GraphSchema is the binary-edge schema E(src, dst) over one type, the
// standard substrate for containment workloads.
func GraphSchema() *schema.Schema {
	return schema.MustParse("E(src:T1, dst:T1)")
}

// ChainQuery builds the length-n chain query in the paper's syntax:
//
//	V(X0, Yn-1) :- E(X0, Y0), E(X1, Y1), ..., Y0 = X1, Y1 = X2, ...
func ChainQuery(n int) *cq.Query {
	q := &cq.Query{HeadRel: "V"}
	for i := 0; i < n; i++ {
		q.Body = append(q.Body, cq.Atom{Rel: "E", Vars: []cq.Var{
			cq.Var(fmt.Sprintf("X%d", i)),
			cq.Var(fmt.Sprintf("Y%d", i)),
		}})
		if i > 0 {
			q.Eqs = append(q.Eqs, cq.Equality{
				Left:  cq.Var(fmt.Sprintf("Y%d", i-1)),
				Right: cq.Term{Var: cq.Var(fmt.Sprintf("X%d", i))},
			})
		}
	}
	q.Head = []cq.Term{
		{Var: "X0"},
		{Var: cq.Var(fmt.Sprintf("Y%d", n-1))},
	}
	return q
}

// StarQuery builds the n-ray star: one center with n outgoing edges.
//
//	V(X0) :- E(X0, Y0), ..., E(Xn-1, Yn-1), X0 = X1 = ... = Xn-1.
func StarQuery(n int) *cq.Query {
	q := &cq.Query{HeadRel: "V"}
	for i := 0; i < n; i++ {
		q.Body = append(q.Body, cq.Atom{Rel: "E", Vars: []cq.Var{
			cq.Var(fmt.Sprintf("X%d", i)),
			cq.Var(fmt.Sprintf("Y%d", i)),
		}})
		if i > 0 {
			q.Eqs = append(q.Eqs, cq.Equality{
				Left:  "X0",
				Right: cq.Term{Var: cq.Var(fmt.Sprintf("X%d", i))},
			})
		}
	}
	q.Head = []cq.Term{{Var: "X0"}}
	return q
}

// CliqueQuery builds the n-clique pattern: n node classes, an edge atom
// for every ordered pair, variables tied per node.  Homomorphism tests
// against it are the hard case of containment.
func CliqueQuery(n int) *cq.Query {
	q := &cq.Query{HeadRel: "V"}
	// nodeVar[i] is the canonical variable of node i (the src position
	// of its first outgoing edge atom); other occurrences equate to it.
	nodeVar := make(map[int]cq.Var)
	atom := 0
	addOccurrence := func(node int, v cq.Var) {
		if first, ok := nodeVar[node]; ok {
			q.Eqs = append(q.Eqs, cq.Equality{Left: first, Right: cq.Term{Var: v}})
		} else {
			nodeVar[node] = v
		}
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			s := cq.Var(fmt.Sprintf("S%d", atom))
			d := cq.Var(fmt.Sprintf("D%d", atom))
			q.Body = append(q.Body, cq.Atom{Rel: "E", Vars: []cq.Var{s, d}})
			addOccurrence(i, s)
			addOccurrence(j, d)
			atom++
		}
	}
	q.Head = []cq.Term{{Var: nodeVar[0]}}
	return q
}

// RandomGraph builds a random edge instance with n nodes and m edges.
func RandomGraph(rng *rand.Rand, n, m int) *instance.Database {
	d := instance.NewDatabase(GraphSchema())
	for i := 0; i < m; i++ {
		d.MustInsert("E",
			value.Value{Type: 1, N: int64(rng.Intn(n) + 1)},
			value.Value{Type: 1, N: int64(rng.Intn(n) + 1)})
	}
	return d
}

// PathGraph builds the simple directed path 1 -> 2 -> ... -> n.
func PathGraph(n int) *instance.Database {
	d := instance.NewDatabase(GraphSchema())
	for i := 1; i < n; i++ {
		d.MustInsert("E",
			value.Value{Type: 1, N: int64(i)},
			value.Value{Type: 1, N: int64(i + 1)})
	}
	return d
}

// CompleteGraph builds the complete directed graph on n nodes (no self
// loops).
func CompleteGraph(n int) *instance.Database {
	d := instance.NewDatabase(GraphSchema())
	for i := 1; i <= n; i++ {
		for j := 1; j <= n; j++ {
			if i == j {
				continue
			}
			d.MustInsert("E",
				value.Value{Type: 1, N: int64(i)},
				value.Value{Type: 1, N: int64(j)})
		}
	}
	return d
}

// WideSchema is the wide keyed substrate for the planner benchmark: one
// relation of arity 6 over a single type, keyed on the first attribute.
// Queries over it have long per-atom tuples, so naive full-scan matching
// pays the relation's whole cardinality at every step while the indexed
// search pays one bucket probe.
func WideSchema() *schema.Schema {
	return schema.MustParse("W(k*:T1, a1:T1, a2:T1, a3:T1, a4:T1, a5:T1)")
}

// WideChainQuery builds an n-atom chain over WideSchema: atom i's last
// attribute equals atom i+1's key, every other position a fresh
// variable.
//
//	V(K0, L{n-1}) :- W(K0, A0_1..A0_4, L0), ..., L{i} = K{i+1}, ...
func WideChainQuery(n int) *cq.Query {
	q := &cq.Query{HeadRel: "V"}
	for i := 0; i < n; i++ {
		vars := []cq.Var{cq.Var(fmt.Sprintf("K%d", i))}
		for p := 1; p <= 4; p++ {
			vars = append(vars, cq.Var(fmt.Sprintf("A%d_%d", i, p)))
		}
		vars = append(vars, cq.Var(fmt.Sprintf("L%d", i)))
		q.Body = append(q.Body, cq.Atom{Rel: "W", Vars: vars})
		if i > 0 {
			q.Eqs = append(q.Eqs, cq.Equality{
				Left:  cq.Var(fmt.Sprintf("L%d", i-1)),
				Right: cq.Term{Var: cq.Var(fmt.Sprintf("K%d", i))},
			})
		}
	}
	q.Head = []cq.Term{
		{Var: "K0"},
		{Var: cq.Var(fmt.Sprintf("L%d", n-1))},
	}
	return q
}

// WideChainVariant returns WideChainQuery(n) with extra redundant atoms
// whose key and last position are tied into random links of the chain,
// plus rng-chosen cross-position equalities between interior attributes —
// the shared-variable density the planner's index keys feed on.
func WideChainVariant(rng *rand.Rand, n, extra int) *cq.Query {
	q := WideChainQuery(n)
	for e := 0; e < extra; e++ {
		i := rng.Intn(n)
		vars := []cq.Var{cq.Var(fmt.Sprintf("RK%d", e))}
		for p := 1; p <= 4; p++ {
			vars = append(vars, cq.Var(fmt.Sprintf("RA%d_%d", e, p)))
		}
		vars = append(vars, cq.Var(fmt.Sprintf("RL%d", e)))
		q.Body = append(q.Body, cq.Atom{Rel: "W", Vars: vars})
		q.Eqs = append(q.Eqs,
			cq.Equality{Left: cq.Var(fmt.Sprintf("K%d", i)), Right: cq.Term{Var: vars[0]}},
			cq.Equality{Left: cq.Var(fmt.Sprintf("L%d", i)), Right: cq.Term{Var: vars[5]}},
		)
	}
	// A few interior cross links between random atoms' middle attributes.
	for c := 0; c < 1+rng.Intn(2); c++ {
		i, j := rng.Intn(n), rng.Intn(n)
		p, r := 1+rng.Intn(4), 1+rng.Intn(4)
		q.Eqs = append(q.Eqs, cq.Equality{
			Left:  cq.Var(fmt.Sprintf("A%d_%d", i, p)),
			Right: cq.Term{Var: cq.Var(fmt.Sprintf("A%d_%d", j, r))},
		})
	}
	return q
}

// RandomChainVariant returns ChainQuery(n) with rng-chosen redundant atoms
// folded in (used to exercise minimization).
func RandomChainVariant(rng *rand.Rand, n, extra int) *cq.Query {
	q := ChainQuery(n)
	for e := 0; e < extra; e++ {
		i := rng.Intn(n)
		s := cq.Var(fmt.Sprintf("RS%d", e))
		d := cq.Var(fmt.Sprintf("RD%d", e))
		q.Body = append(q.Body, cq.Atom{Rel: "E", Vars: []cq.Var{s, d}})
		q.Eqs = append(q.Eqs,
			cq.Equality{Left: cq.Var(fmt.Sprintf("X%d", i)), Right: cq.Term{Var: s}},
			cq.Equality{Left: cq.Var(fmt.Sprintf("Y%d", i)), Right: cq.Term{Var: d}},
		)
	}
	return q
}
