package gen

import (
	"math/rand"
	"testing"

	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func TestEnumerateKeyedSchemasCounts(t *testing.T) {
	// 1 relation, 1 attribute, 1 type, key fixed: exactly one schema.
	sp := SchemaSpace{MaxRelations: 1, MaxAttrs: 1, Types: 1}
	ss := EnumerateKeyedSchemas(sp)
	if len(ss) != 1 {
		t.Fatalf("len = %d, want 1", len(ss))
	}
	// 1 relation, up to 2 attrs, 2 types, single keys at position 0:
	// arity1: 2 type vectors; arity2: 4 vectors -> 6 shapes.
	sp = SchemaSpace{MaxRelations: 1, MaxAttrs: 2, Types: 2}
	ss = EnumerateKeyedSchemas(sp)
	if len(ss) != 6 {
		t.Fatalf("len = %d, want 6", len(ss))
	}
	for _, s := range ss {
		if err := s.Validate(); err != nil {
			t.Errorf("invalid schema enumerated: %v", err)
		}
		if !s.Keyed() {
			t.Errorf("unkeyed schema enumerated: %s", s)
		}
	}
	// With all key subsets: arity1 has 1 subset, arity2 has 3 -> 2*1 + 4*3 = 14.
	sp.AllKeySubsets = true
	ss = EnumerateKeyedSchemas(sp)
	if len(ss) != 14 {
		t.Fatalf("all-key-subsets len = %d, want 14", len(ss))
	}
	// 2 relations multiplies via multisets: C(14+1, 2) pairs + 14 singles.
	sp.MaxRelations = 2
	ss = EnumerateKeyedSchemas(sp)
	want := 14 + 14*15/2
	if len(ss) != want {
		t.Fatalf("two-relation len = %d, want %d", len(ss), want)
	}
}

func TestEnumerateDeterministic(t *testing.T) {
	sp := SchemaSpace{MaxRelations: 2, MaxAttrs: 2, Types: 2}
	a := EnumerateKeyedSchemas(sp)
	b := EnumerateKeyedSchemas(sp)
	if len(a) != len(b) {
		t.Fatal("non-deterministic length")
	}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatalf("non-deterministic at %d", i)
		}
	}
}

func TestRandomKeyedSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		s := RandomKeyedSchema(rng, 3, 4, 3)
		if err := s.Validate(); err != nil {
			t.Fatalf("invalid random schema: %v", err)
		}
		if !s.Keyed() {
			t.Fatalf("random schema not keyed: %s", s)
		}
	}
}

func TestMutateNotIsomorphic(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		s := RandomKeyedSchema(rng, 2, 3, 2)
		m := Mutate(s, rng, 2)
		if err := m.Validate(); err != nil {
			t.Fatalf("invalid mutation: %v", err)
		}
		if schema.Isomorphic(s, m) {
			t.Fatalf("mutation is isomorphic:\n%s\nvs\n%s", s, m)
		}
	}
}

func TestRandomKeyedInstance(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := RandomKeyedSchema(rng, 3, 3, 2)
	d := RandomKeyedInstance(s, rng, 5, nil)
	if !d.SatisfiesKeys() {
		t.Error("instance violates keys")
	}
	for _, r := range d.Relations {
		if r.Len() != 5 {
			t.Errorf("relation %s has %d tuples, want 5", r.Scheme.Name, r.Len())
		}
	}
}

func TestAttributeSpecificInstance(t *testing.T) {
	s := schema.MustParse("R(a*:T1, b:T1)\nS(c*:T1)")
	var alloc value.Allocator
	d := AttributeSpecificInstance(s, &alloc, 3)
	if !d.AttributeSpecific() {
		t.Error("instance not attribute-specific")
	}
	if !d.SatisfiesKeys() {
		t.Error("instance violates keys")
	}
	if !d.NonEmpty() {
		t.Error("instance empty")
	}
}

func TestEnumerateUnkeyedSchemas(t *testing.T) {
	sp := SchemaSpace{MaxRelations: 1, MaxAttrs: 2, Types: 2}
	ss := EnumerateUnkeyedSchemas(sp)
	// Same shapes as the keyed space (single key position collapses).
	if len(ss) != 6 {
		t.Fatalf("len = %d, want 6", len(ss))
	}
	for _, s := range ss {
		if !s.Unkeyed() {
			t.Errorf("keyed schema in unkeyed enumeration: %s", s)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("invalid: %v", err)
		}
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, s := range ss {
		if seen[s.String()] {
			t.Errorf("duplicate: %s", s)
		}
		seen[s.String()] = true
	}
}
