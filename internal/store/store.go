// Package store persists equivalence verdicts across daemon restarts.
//
// The format is a single append-only log file: an 8-byte magic header
// followed by CRC-framed JSON records, one per (canonical pair key,
// verdict).  Appends are the only write path during serving, so a crash
// — including kill -9 mid-write — can damage at most the unsynced tail;
// Open detects a torn tail (short frame, checksum mismatch, or
// undecodable payload) and truncates it rather than failing, losing
// only the records that were never durable anyway.
//
// Compaction rewrites the log from a caller-supplied live set (write
// temp file, fsync, rename), bounding replay time for long-lived
// daemons whose working set is much smaller than their append history.
//
// The package is deliberately dependency-light: no clocks, no metrics.
// Callers own observability (the daemon counts appends, replayed
// records, truncated bytes, and compactions around these calls).
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"keyedeq/internal/containment"
)

// Record is one persisted verdict: the engine-canonical pair key
// (fingerprint-qualified by the daemon) and the decision with the work
// stats the original computation spent.
type Record struct {
	Key   string            `json:"k"`
	Holds bool              `json:"h"`
	Stats containment.Stats `json:"s"`
}

// Options tune a Log.
type Options struct {
	// SyncEvery syncs the file to stable storage after every N appends;
	// 0 picks a default of 64, negative disables implicit syncs (the
	// caller must Sync explicitly, e.g. on drain).
	SyncEvery int
}

// ReplayStats reports what Open's recovery scan found.
type ReplayStats struct {
	// Records is the number of intact records in the log.
	Records int
	// TruncatedBytes counts bytes dropped from a torn tail (0 for a
	// cleanly closed log).
	TruncatedBytes int64
}

const (
	logMagic = "KEQVLOG1"
	// frameHeaderLen is the per-record prefix: u32 LE payload length +
	// u32 LE CRC32 (IEEE) of the payload.
	frameHeaderLen = 8
	// maxRecordLen bounds a single payload; longer lengths in a header
	// mean corruption, not a giant record.
	maxRecordLen = 1 << 24
	defaultSyncEvery = 64
)

// Log is an append-only verdict log bound to one file.  All methods are
// safe for concurrent use.
type Log struct {
	mu       sync.Mutex
	f        *os.File
	path     string
	opts     Options
	size     int64 // valid bytes (append offset)
	records  int
	pending  int // appends since the last sync
	recovery ReplayStats
	closed   bool
}

// Open opens or creates the log at path, scans it for intact records,
// and truncates any torn tail so subsequent appends extend a valid log.
// A corrupt header (wrong magic) is fatal — that is not a torn tail but
// the wrong file.
func Open(path string, opts Options) (*Log, error) {
	if opts.SyncEvery == 0 {
		opts.SyncEvery = defaultSyncEvery
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	l := &Log{f: f, path: path, opts: opts}
	if err := l.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// recover validates the magic (writing it into an empty file), scans
// every frame, and truncates the file at the first damaged one.
func (l *Log) recover() error {
	st, err := l.f.Stat()
	if err != nil {
		return err
	}
	if st.Size() == 0 {
		if _, err := l.f.Write([]byte(logMagic)); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.size = int64(len(logMagic))
		return nil
	}
	header := make([]byte, len(logMagic))
	if _, err := io.ReadFull(l.f, header); err != nil || string(header) != logMagic {
		return fmt.Errorf("store: %s: not a verdict log (bad magic)", l.path)
	}
	off := int64(len(logMagic))
	var hdr [frameHeaderLen]byte
	payload := make([]byte, 0, 4096)
	for off < st.Size() {
		if _, err := io.ReadFull(l.f, hdr[:]); err != nil {
			break // short header: torn tail
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordLen || off+frameHeaderLen+int64(length) > st.Size() {
			break // nonsense length or frame runs past EOF: torn tail
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(l.f, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break // bit rot or interleaved partial write: torn tail
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break // checksum matched garbage (e.g. foreign format): torn tail
		}
		off += frameHeaderLen + int64(length)
		l.recovery.Records++
	}
	if off < st.Size() {
		l.recovery.TruncatedBytes = st.Size() - off
		if err := l.f.Truncate(off); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
	}
	if _, err := l.f.Seek(off, io.SeekStart); err != nil {
		return err
	}
	l.size = off
	l.records = l.recovery.Records
	return nil
}

// RecoveryStats reports what Open's scan found (intact records, bytes
// truncated from a torn tail).
func (l *Log) RecoveryStats() ReplayStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.recovery
}

// Records returns the number of records currently in the log (recovered
// plus appended, including superseded duplicates of the same key).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.records
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Replay calls fn for every record in append order, via an independent
// read handle.  Later records for the same key supersede earlier ones;
// the caller folds that (a map assignment does).  fn returning an error
// stops the replay.
func (l *Log) Replay(fn func(Record) error) error {
	l.mu.Lock()
	path, size := l.path, l.size
	l.mu.Unlock()
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := io.NewSectionReader(f, int64(len(logMagic)), size-int64(len(logMagic)))
	var hdr [frameHeaderLen]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return fmt.Errorf("store: replay %s: %v", path, err)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxRecordLen {
			return fmt.Errorf("store: replay %s: frame length %d out of range", path, length)
		}
		if cap(payload) < int(length) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		if _, err := io.ReadFull(r, payload); err != nil {
			return fmt.Errorf("store: replay %s: %v", path, err)
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return fmt.Errorf("store: replay %s: checksum mismatch", path)
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("store: replay %s: %v", path, err)
		}
		if err := fn(rec); err != nil {
			return err
		}
	}
}

// Append durably queues one record at the log tail, syncing every
// Options.SyncEvery appends.
func (l *Log) Append(rec Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if len(payload) > maxRecordLen {
		return fmt.Errorf("store: record for key %.64q exceeds %d bytes", rec.Key, maxRecordLen)
	}
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)

	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: append on closed log %s", l.path)
	}
	if _, err := l.f.Write(frame); err != nil {
		return err
	}
	l.size += int64(len(frame))
	l.records++
	l.pending++
	if l.opts.SyncEvery > 0 && l.pending >= l.opts.SyncEvery {
		l.pending = 0
		return l.f.Sync()
	}
	return nil
}

// Sync flushes appended records to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.pending = 0
	return l.f.Sync()
}

// Compact atomically replaces the log's contents with exactly the live
// records: write a temp file in the same directory, fsync it, and
// rename it over the log.  On success the open handle switches to the
// new file; on failure the original log is untouched.
func (l *Log) Compact(live []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("store: compact on closed log %s", l.path)
	}
	dir := filepath.Dir(l.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(l.path)+".compact-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	size := int64(len(logMagic))
	records := 0
	if _, err := tmp.Write([]byte(logMagic)); err != nil {
		tmp.Close()
		return err
	}
	var hdr [frameHeaderLen]byte
	for _, rec := range live {
		payload, err := json.Marshal(rec)
		if err != nil {
			tmp.Close()
			return err
		}
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		if _, err := tmp.Write(hdr[:]); err != nil {
			tmp.Close()
			return err
		}
		if _, err := tmp.Write(payload); err != nil {
			tmp.Close()
			return err
		}
		size += frameHeaderLen + int64(len(payload))
		records++
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), l.path); err != nil {
		return err
	}
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return err
	}
	l.f.Close()
	l.f = f
	l.size = size
	l.records = records
	l.pending = 0
	return nil
}

// Close syncs and closes the log.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	serr := l.f.Sync()
	cerr := l.f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
