package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"keyedeq/internal/containment"
)

func openT(t *testing.T, path string, opts Options) *Log {
	t.Helper()
	l, err := Open(path, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func collect(t *testing.T, l *Log) []Record {
	t.Helper()
	var out []Record
	if err := l.Replay(func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	l := openT(t, path, Options{SyncEvery: 1})
	recs := []Record{
		{Key: "fp\x1dequ\x1ea\x1fb", Holds: true, Stats: containment.SearchStats(42)},
		{Key: "fp\x1dcon\x1ec\x1fd", Holds: false},
		{Key: "fp\x1dequ\x1ea\x1fb", Holds: true}, // supersedes the first
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openT(t, path, Options{})
	if rs := l2.RecoveryStats(); rs.Records != 3 || rs.TruncatedBytes != 0 {
		t.Fatalf("recovery stats %+v, want 3 records, 0 truncated", rs)
	}
	got := collect(t, l2)
	if len(got) != 3 {
		t.Fatalf("replayed %d records, want 3", len(got))
	}
	for i, r := range got {
		if r.Key != recs[i].Key || r.Holds != recs[i].Holds || r.Stats != recs[i].Stats {
			t.Fatalf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	l := openT(t, path, Options{SyncEvery: 1})
	for i := 0; i < 5; i++ {
		if err := l.Append(Record{Key: fmt.Sprintf("k%d", i), Holds: true}); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	// Simulate a crash mid-append: a partial frame at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x30, 0x00, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openT(t, path, Options{})
	rs := l2.RecoveryStats()
	if rs.Records != 5 || rs.TruncatedBytes != 6 {
		t.Fatalf("recovery stats %+v, want 5 records and 6 truncated bytes", rs)
	}
	if got := collect(t, l2); len(got) != 5 {
		t.Fatalf("replayed %d records after torn tail, want 5", len(got))
	}
	// The log is appendable again and the new record survives reopen.
	if err := l2.Append(Record{Key: "after", Holds: true}); err != nil {
		t.Fatal(err)
	}
	if err := l2.Sync(); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3 := openT(t, path, Options{})
	got := collect(t, l3)
	if len(got) != 6 || got[5].Key != "after" {
		t.Fatalf("after truncate+append: %d records, last %+v", len(got), got[len(got)-1])
	}
}

func TestCorruptRecordTruncatesFromThere(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	l := openT(t, path, Options{SyncEvery: 1})
	var offsets []int64
	for i := 0; i < 4; i++ {
		if err := l.Append(Record{Key: fmt.Sprintf("k%d", i)}); err != nil {
			t.Fatal(err)
		}
		offsets = append(offsets, l.size)
	}
	l.Close()
	// Flip one payload byte in the third record: CRC now mismatches, so
	// recovery keeps records 0-1 and drops 2-3 (framing is sequential;
	// nothing after a damaged frame is trustworthy).
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, offsets[1]+frameHeaderLen+2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openT(t, path, Options{})
	rs := l2.RecoveryStats()
	if rs.Records != 2 || rs.TruncatedBytes == 0 {
		t.Fatalf("recovery stats %+v, want 2 records and a truncated tail", rs)
	}
	got := collect(t, l2)
	if len(got) != 2 || got[0].Key != "k0" || got[1].Key != "k1" {
		t.Fatalf("replay after corruption: %+v", got)
	}
}

func TestBadMagicIsFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "not-a-log")
	if err := os.WriteFile(path, []byte("something else entirely"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, Options{}); err == nil {
		t.Fatal("Open accepted a file with the wrong magic")
	}
}

func TestValidFrameGarbagePayload(t *testing.T) {
	// A frame whose CRC matches but whose payload is not a JSON record
	// is still a torn tail, not a crash.
	path := filepath.Join(t.TempDir(), "verdicts.log")
	l := openT(t, path, Options{SyncEvery: 1})
	if err := l.Append(Record{Key: "good"}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	payload := []byte("not json")
	frame := make([]byte, frameHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[frameHeaderLen:], payload)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openT(t, path, Options{})
	if rs := l2.RecoveryStats(); rs.Records != 1 || rs.TruncatedBytes != int64(len(frame)) {
		t.Fatalf("recovery stats %+v, want 1 record and %d truncated bytes", rs, len(frame))
	}
}

func TestCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	l := openT(t, path, Options{SyncEvery: 1})
	for i := 0; i < 100; i++ {
		if err := l.Append(Record{Key: fmt.Sprintf("k%d", i%10), Holds: i%2 == 0}); err != nil {
			t.Fatal(err)
		}
	}
	before, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	live := make([]Record, 0, 10)
	for i := 0; i < 10; i++ {
		live = append(live, Record{Key: fmt.Sprintf("k%d", i), Holds: true})
	}
	if err := l.Compact(live); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() {
		t.Fatalf("compaction did not shrink the log: %d -> %d bytes", before.Size(), after.Size())
	}
	if l.Records() != 10 {
		t.Fatalf("Records() = %d after compaction, want 10", l.Records())
	}
	// The handle keeps working post-rename, and the result survives
	// reopen.
	if err := l.Append(Record{Key: "post-compact"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2 := openT(t, path, Options{})
	got := collect(t, l2)
	if len(got) != 11 || got[10].Key != "post-compact" {
		t.Fatalf("after compact+append+reopen: %d records, last %+v", len(got), got[len(got)-1])
	}
	// No temp files left behind.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory has %d entries after compaction, want only the log", len(entries))
	}
}

func TestEmptyLogReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	l := openT(t, path, Options{})
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("empty log replayed %d records", len(got))
	}
	if l.Records() != 0 {
		t.Fatalf("Records() = %d on empty log", l.Records())
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.log")
	l := openT(t, path, Options{})
	l.Close()
	if err := l.Append(Record{Key: "late"}); err == nil {
		t.Fatal("Append succeeded on a closed log")
	}
	if err := l.Compact(nil); err == nil {
		t.Fatal("Compact succeeded on a closed log")
	}
}
