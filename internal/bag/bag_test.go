package bag

import (
	"math/rand"
	"testing"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
	"keyedeq/internal/instance"
	"keyedeq/internal/value"
)

func v(n int64) value.Value { return value.Value{Type: 1, N: n} }

func TestEvalMultiplicities(t *testing.T) {
	d := instance.NewDatabase(gen.GraphSchema())
	// Node 1 has two out-edges.
	d.MustInsert("E", v(1), v(2))
	d.MustInsert("E", v(1), v(3))
	q := cq.MustParse("V(X) :- E(X, Y).")
	c, err := Eval(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if c["(T1:1)"] != 2 {
		t.Errorf("multiplicity = %d, want 2 (%s)", c["(T1:1)"], c)
	}
	// Squaring: the folded self-join has multiplicity outdeg².
	q2 := cq.MustParse("V(X) :- E(X, Y), E(A, B), X = A.")
	c2, err := Eval(q2, d)
	if err != nil {
		t.Fatal(err)
	}
	if c2["(T1:1)"] != 4 {
		t.Errorf("squared multiplicity = %d, want 4 (%s)", c2["(T1:1)"], c2)
	}
}

func TestEvalAgreesWithSetSemanticsOnSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	queries := []*cq.Query{
		cq.MustParse("V(X) :- E(X, Y)."),
		cq.MustParse("V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2."),
		cq.MustParse("V(X) :- E(X, Y), X = Y."),
	}
	for trial := 0; trial < 30; trial++ {
		d := gen.RandomGraph(rng, 4, rng.Intn(8))
		for _, q := range queries {
			bagC, err := Eval(q, d)
			if err != nil {
				t.Fatal(err)
			}
			setA, err := cq.Eval(q, d)
			if err != nil {
				t.Fatal(err)
			}
			// Support of the bag = the set answer.
			if len(bagC) != setA.Len() {
				t.Fatalf("support %d vs set %d for %s on %s\n%s\n%s",
					len(bagC), setA.Len(), q, d, bagC, setA)
			}
			for _, tp := range setA.Tuples() {
				if bagC[tp.String()] < 1 {
					t.Fatalf("set answer %s missing from bag %s", tp, bagC)
				}
			}
		}
	}
}

func TestBagEquivalentRenamingAndReordering(t *testing.T) {
	q1 := cq.MustParse("V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2.")
	q2 := cq.MustParse("V(A, C) :- E(B2, C), E(A, B), B = B2.") // atoms swapped, renamed
	if !BagEquivalent(q1, q2) {
		t.Error("alpha-renamed/reordered queries should be bag equivalent")
	}
	if !BagEquivalent(q1, q1) {
		t.Error("reflexivity broken")
	}
}

// The signature case: set-equivalent but NOT bag-equivalent (the folded
// duplicate atom squares multiplicities).
func TestSetEquivalentNotBagEquivalent(t *testing.T) {
	gs := gen.GraphSchema()
	q1 := cq.MustParse("V(X) :- E(X, Y).")
	q2 := cq.MustParse("V(X) :- E(X, Y), E(A, B), X = A.")
	setEq, err := containment.Equivalent(q1, q2, gs)
	if err != nil {
		t.Fatal(err)
	}
	if !setEq {
		t.Fatal("fixture should be set-equivalent")
	}
	if BagEquivalent(q1, q2) {
		t.Error("should NOT be bag equivalent")
	}
	// And the multiplicities really differ on a concrete instance.
	d := instance.NewDatabase(gs)
	d.MustInsert("E", v(1), v(2))
	d.MustInsert("E", v(1), v(3))
	c1, _ := Eval(q1, d)
	c2, _ := Eval(q2, d)
	if c1.Equal(c2) {
		t.Errorf("multiplicities should differ: %s vs %s", c1, c2)
	}
}

func TestBagEquivalentRespectsConstants(t *testing.T) {
	q1 := cq.MustParse("V(X) :- E(X, Y), Y = T1:5.")
	q2 := cq.MustParse("V(A) :- E(A, B), B = T1:5.")
	q3 := cq.MustParse("V(A) :- E(A, B), B = T1:6.")
	if !BagEquivalent(q1, q2) {
		t.Error("same-constant queries should be bag equivalent")
	}
	if BagEquivalent(q1, q3) {
		t.Error("different constants should not be bag equivalent")
	}
}

func TestBagEquivalentHeadsMatter(t *testing.T) {
	q1 := cq.MustParse("V(X) :- E(X, Y).")
	q2 := cq.MustParse("V(Y) :- E(X, Y).")
	if BagEquivalent(q1, q2) {
		t.Error("src vs dst projections should not be bag equivalent")
	}
}

func TestBagEquivalentColumnSelection(t *testing.T) {
	// X = Y collapses the atom to a repeated term; only queries with the
	// same collapse are equivalent.
	q1 := cq.MustParse("V(X) :- E(X, Y), X = Y.")
	q2 := cq.MustParse("V(A) :- E(A, B), A = B.")
	q3 := cq.MustParse("V(A) :- E(A, B).")
	if !BagEquivalent(q1, q2) {
		t.Error("loop queries should be bag equivalent")
	}
	if BagEquivalent(q1, q3) {
		t.Error("loop vs plain edge should differ")
	}
}

// Soundness: BagEquivalent implies equal multiplicity vectors on random
// instances.
func TestBagEquivalentSound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	pairs := [][2]*cq.Query{
		{
			cq.MustParse("V(X, Z) :- E(X, Y), E(Y2, Z), Y = Y2."),
			cq.MustParse("V(A, C) :- E(B2, C), E(A, B), B = B2."),
		},
		{
			cq.MustParse("V(X) :- E(X, Y), X = Y."),
			cq.MustParse("V(A) :- E(A, B), B = A."),
		},
	}
	for _, p := range pairs {
		if !BagEquivalent(p[0], p[1]) {
			t.Fatal("fixture should be bag equivalent")
		}
		for trial := 0; trial < 25; trial++ {
			d := gen.RandomGraph(rng, 4, rng.Intn(8))
			c1, err := Eval(p[0], d)
			if err != nil {
				t.Fatal(err)
			}
			c2, err := Eval(p[1], d)
			if err != nil {
				t.Fatal(err)
			}
			if !c1.Equal(c2) {
				t.Fatalf("bag-equivalent queries with different counts:\n%s vs %s", c1, c2)
			}
		}
	}
}

func TestEvalErrors(t *testing.T) {
	d := gen.PathGraph(2)
	if _, err := Eval(cq.MustParse("V(X) :- Z(X)."), d); err == nil {
		t.Error("unknown relation accepted")
	}
	if _, err := Eval(&cq.Query{Head: []cq.Term{{Var: "X"}}}, d); err == nil {
		t.Error("empty body accepted")
	}
}

func TestCountsString(t *testing.T) {
	c := Counts{"(T1:2)": 1, "(T1:1)": 3}
	s := c.String()
	if s != "{(T1:1)×3, (T1:2)×1}" {
		t.Errorf("String = %q", s)
	}
}
