// Package bag implements bag (multiset) semantics for the paper's
// conjunctive queries: the multiplicity of an answer tuple is the number
// of satisfying assignments of the body variables.  Under bag semantics,
// equivalence of conjunctive queries is far more rigid than under set
// semantics — by the Chaudhuri–Vardi theorem it coincides with query
// isomorphism — which mirrors, one level down, the paper's Theorem 13
// rigidity for schemas.  BagEquivalent decides it by normalizing away the
// equality lists and searching for an atom-and-variable bijection.
package bag

import (
	"fmt"
	"sort"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/value"
)

// Counts is a multiset of answer tuples: rendered tuple -> multiplicity.
type Counts map[string]int

// Equal reports multiset equality.
func (c Counts) Equal(d Counts) bool {
	if len(c) != len(d) {
		return false
	}
	for k, n := range c {
		if d[k] != n {
			return false
		}
	}
	return true
}

// String renders the multiset deterministically.
func (c Counts) String() string {
	keys := make([]string, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s×%d", k, c[k])
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Eval evaluates q over d under bag semantics: each answer tuple carries
// the number of distinct body-variable assignments deriving it.
func Eval(q *cq.Query, d *instance.Database) (Counts, error) {
	out := Counts{}
	if len(q.Body) == 0 {
		return nil, fmt.Errorf("bag: empty body")
	}
	eq := cq.NewEqClasses(q)
	if eq.Unsatisfiable() {
		return out, nil
	}
	rels := make([]*instance.Relation, len(q.Body))
	for i, a := range q.Body {
		r := d.Relation(a.Rel)
		if r == nil {
			return nil, fmt.Errorf("bag: no relation %q", a.Rel)
		}
		rels[i] = r
	}
	binding := make(map[cq.Var]value.Value)
	for _, a := range q.Body {
		for _, v := range a.Vars {
			if c, ok := eq.Const(v); ok {
				binding[eq.Find(v)] = c
			}
		}
	}
	var recurse func(i int)
	recurse = func(i int) {
		if i == len(q.Body) {
			parts := make([]string, len(q.Head))
			for p, term := range q.Head {
				if term.IsConst {
					parts[p] = term.Const.String()
				} else {
					parts[p] = binding[eq.Find(term.Var)].String()
				}
			}
			out["("+strings.Join(parts, ", ")+")"]++
			return
		}
		a := q.Body[i]
		for _, t := range rels[i].Tuples() {
			var added []cq.Var
			ok := true
			for p, v := range a.Vars {
				root := eq.Find(v)
				if bv, bound := binding[root]; bound {
					if bv != t[p] {
						ok = false
						break
					}
					continue
				}
				binding[root] = t[p]
				added = append(added, root)
			}
			if ok {
				recurse(i + 1)
			}
			for _, r := range added {
				delete(binding, r)
			}
		}
	}
	recurse(0)
	return out, nil
}

// normAtom is an atom with its placeholders collapsed to equality-class
// representatives or constants.
type normAtom struct {
	rel   string
	terms []cq.Term
}

// normalize collapses q's equality list: every variable is replaced by
// its class representative (or bound constant), yielding atoms that may
// repeat terms, plus the collapsed head.
func normalize(q *cq.Query) ([]normAtom, []cq.Term) {
	eq := cq.NewEqClasses(q)
	termOf := func(v cq.Var) cq.Term {
		if c, ok := eq.Const(v); ok {
			return cq.C(c)
		}
		return cq.Term{Var: eq.Find(v)}
	}
	atoms := make([]normAtom, len(q.Body))
	for i, a := range q.Body {
		na := normAtom{rel: a.Rel, terms: make([]cq.Term, len(a.Vars))}
		for p, v := range a.Vars {
			na.terms[p] = termOf(v)
		}
		atoms[i] = na
	}
	head := make([]cq.Term, len(q.Head))
	for i, t := range q.Head {
		if t.IsConst {
			head[i] = t
		} else {
			head[i] = termOf(t.Var)
		}
	}
	return atoms, head
}

// BagEquivalent decides bag equivalence of two conjunctive queries by
// the Chaudhuri–Vardi criterion: the normalized queries must be
// isomorphic — a bijection between atoms together with a bijection
// between variables carrying one onto the other, constants fixed, heads
// matching position-wise.
func BagEquivalent(q1, q2 *cq.Query) bool {
	a1, h1 := normalize(q1)
	a2, h2 := normalize(q2)
	if len(a1) != len(a2) || len(h1) != len(h2) {
		return false
	}
	// Backtracking search for the atom bijection with a consistent
	// variable bijection.
	fwd := map[cq.Var]cq.Var{} // q1 var -> q2 var
	bwd := map[cq.Var]cq.Var{}
	used := make([]bool, len(a2))

	matchTerm := func(t1, t2 cq.Term) (undo func(), ok bool) {
		noop := func() {}
		switch {
		case t1.IsConst != t2.IsConst:
			return noop, false
		case t1.IsConst:
			return noop, t1.Const == t2.Const
		default:
			if m, seen := fwd[t1.Var]; seen {
				return noop, m == t2.Var
			}
			if _, seen := bwd[t2.Var]; seen {
				return noop, false
			}
			fwd[t1.Var] = t2.Var
			bwd[t2.Var] = t1.Var
			v1, v2 := t1.Var, t2.Var
			return func() {
				delete(fwd, v1)
				delete(bwd, v2)
			}, true
		}
	}
	matchTerms := func(ts1, ts2 []cq.Term) (undo func(), ok bool) {
		var undos []func()
		undoAll := func() {
			for i := len(undos) - 1; i >= 0; i-- {
				undos[i]()
			}
		}
		if len(ts1) != len(ts2) {
			return undoAll, false
		}
		for p := range ts1 {
			u, ok := matchTerm(ts1[p], ts2[p])
			undos = append(undos, u)
			if !ok {
				return undoAll, false
			}
		}
		return undoAll, true
	}

	var match func(i int) bool
	match = func(i int) bool {
		if i == len(a1) {
			// Heads must correspond under the bijection.
			undo, ok := matchTerms(h1, h2)
			defer undo()
			return ok
		}
		for j := range a2 {
			if used[j] || a2[j].rel != a1[i].rel {
				continue
			}
			undo, ok := matchTerms(a1[i].terms, a2[j].terms)
			if ok {
				used[j] = true
				if match(i + 1) {
					return true
				}
				used[j] = false
			}
			undo()
		}
		return false
	}
	return match(0)
}
