package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"keyedeq/internal/obs"
	"keyedeq/internal/store"
)

const graphSchema = "edge(src:T1, dst:T1)"

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// postJSON drives a handler directly (no network) and decodes the
// response when out is non-nil.
func postJSON(t *testing.T, s *Server, path string, body interface{}, out interface{}) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(string(b)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if out != nil && rec.Code == http.StatusOK {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("decoding %s response %q: %v", path, rec.Body.String(), err)
		}
	}
	return rec
}

func decideBody(left, right string) decideRequest {
	return decideRequest{Schema: graphSchema, Unkeyed: true, Left: left, Right: right}
}

func TestDecideEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp decideResponse
	rec := postJSON(t, s, "/v1/decide", decideBody(
		"V(X) :- edge(X, Y).",
		"V(A) :- edge(A, B).",
	), &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("decide status %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Holds || resp.PairKey == "" {
		t.Fatalf("decide response %+v, want holds with a pair key", resp)
	}
	if resp.CacheHit {
		t.Fatal("first decision reported a cache hit")
	}
	var resp2 decideResponse
	postJSON(t, s, "/v1/decide", decideBody(
		"V(X) :- edge(X, Y).",
		"V(A) :- edge(A, B).",
	), &resp2)
	if !resp2.CacheHit {
		t.Fatalf("second decision not a cache hit: %+v", resp2)
	}

	// contains op, asymmetric pair.
	var sub decideResponse
	req := decideBody("V(X) :- edge(X, Y), edge(W, Z), Y = W.", "V(X) :- edge(X, Y).")
	req.Op = "contains"
	rec = postJSON(t, s, "/v1/decide", req, &sub)
	if rec.Code != http.StatusOK || !sub.Holds {
		t.Fatalf("contains: status %d resp %+v", rec.Code, sub)
	}
}

func TestDecideBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct {
		name string
		body decideRequest
	}{
		{"bad schema", decideRequest{Schema: "not a schema", Left: "V(X) :- e(X).", Right: "V(X) :- e(X)."}},
		{"bad left", func() decideRequest { r := decideBody("nope", "V(X) :- edge(X, Y)."); return r }()},
		{"bad op", func() decideRequest {
			r := decideBody("V(X) :- edge(X, Y).", "V(X) :- edge(X, Y).")
			r.Op = "xor"
			return r
		}()},
	}
	for _, tc := range cases {
		if rec := postJSON(t, s, "/v1/decide", tc.body, nil); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, rec.Code)
		}
	}
	// Malformed JSON body.
	req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader("{"))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", rec.Code)
	}
}

func TestBatchEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	var b strings.Builder
	fmt.Fprintf(&b, `{"schema":%q,"unkeyed":true}`+"\n", graphSchema)
	b.WriteString(`{"left":"V(X) :- edge(X, Y).","right":"V(A) :- edge(A, B)."}` + "\n")
	b.WriteString(`{"left":"V(X) :- edge(X, Y).","right":"V(A) :- edge(A, B)."}` + "\n") // same pair: cache/dedup
	b.WriteString(`{"left":"broken","right":"V(A) :- edge(A, B)."}` + "\n")
	req := httptest.NewRequest(http.MethodPost, "/v1/batch", strings.NewReader(b.String()))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	sc := bufio.NewScanner(rec.Body)
	var results []batchResult
	var sum batchSummary
	for sc.Scan() {
		if strings.Contains(sc.Text(), `"summary":true`) {
			if err := json.Unmarshal(sc.Bytes(), &sum); err != nil {
				t.Fatal(err)
			}
			continue
		}
		var br batchResult
		if err := json.Unmarshal(sc.Bytes(), &br); err != nil {
			t.Fatal(err)
		}
		results = append(results, br)
	}
	if len(results) != 3 {
		t.Fatalf("batch returned %d result lines, want 3: %s", len(results), rec.Body.String())
	}
	if !results[0].Holds || results[0].Error != "" {
		t.Fatalf("line 0: %+v", results[0])
	}
	if !results[1].CacheHit {
		t.Fatalf("line 1 should hit the cache: %+v", results[1])
	}
	if results[2].Error == "" {
		t.Fatalf("line 2 should carry a parse error: %+v", results[2])
	}
	if sum.Pairs != 3 || sum.Errors != 1 || sum.Holding != 2 || sum.CacheHits != 1 {
		t.Fatalf("summary %+v", sum)
	}
}

func TestSchemaEquivEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp schemaEquivResponse
	rec := postJSON(t, s, "/v1/schema/equiv", schemaEquivRequest{
		Schema1: "employee(ss*:T1, name:T2)",
		Schema2: "emp(id*:T1, nm:T2)",
		Witness: true,
	}, &resp)
	if rec.Code != http.StatusOK || !resp.Equivalent {
		t.Fatalf("status %d resp %+v", rec.Code, resp)
	}
	if resp.Alpha == "" || resp.Beta == "" {
		t.Fatalf("witness missing: %+v", resp)
	}
	var neq schemaEquivResponse
	postJSON(t, s, "/v1/schema/equiv", schemaEquivRequest{
		Schema1: "r(a*:T1)",
		Schema2: "r(a*:T1, b:T2)",
	}, &neq)
	if neq.Equivalent {
		t.Fatalf("inequivalent schemas reported equivalent: %+v", neq)
	}
	if neq.Explanation == "" {
		t.Fatal("no explanation for inequivalence")
	}
}

func TestSchemaDominanceEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	var resp schemaDominanceResponse
	rec := postJSON(t, s, "/v1/schema/dominance", schemaDominanceRequest{
		Schema1: "r(a*:T1)",
		Schema2: "p(a*:T1, b:T1)",
		Alpha:   "p(X, X) :- r(X).",
		Beta:    "r(X) :- p(X, Y).",
	}, &resp)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !resp.Dominates || !resp.AlphaValid || !resp.BetaValid || !resp.RoundTripIdentity {
		t.Fatalf("dominance response %+v, want all true", resp)
	}
	// The round-trip equivalences went through the engine set, so the
	// same check again is answered from the verdict cache.
	postJSON(t, s, "/v1/schema/dominance", schemaDominanceRequest{
		Schema1: "r(a*:T1)",
		Schema2: "p(a*:T1, b:T1)",
		Alpha:   "p(X, X) :- r(X).",
		Beta:    "r(X) :- p(X, Y).",
	}, &resp)
	if cs := s.engines.cacheStats(); cs.Hits == 0 {
		t.Fatalf("dominance decisions bypassed the cache: %+v", cs)
	}
}

func TestHealthAndStats(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s status %d", path, rec.Code)
		}
	}
	postJSON(t, s, "/v1/decide", decideBody("V(X) :- edge(X, Y).", "V(A) :- edge(A, B)."), nil)
	req := httptest.NewRequest(http.MethodGet, "/v1/stats", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	var st statsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Entries == 0 {
		t.Fatalf("stats after a decision: %+v", st)
	}
}

func TestMetricsMounted(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{Obs: &obs.Obs{Reg: reg}})
	postJSON(t, s, "/v1/decide", decideBody("V(X) :- edge(X, Y).", "V(A) :- edge(A, B)."), nil)
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "keyedeq_serve_requests_total 1") {
		t.Fatalf("/metrics: status %d body %.2000s", rec.Code, rec.Body.String())
	}
}

func TestPerClientQuota(t *testing.T) {
	reg := obs.NewRegistry()
	s := newTestServer(t, Config{PerClientInFlight: 1, Obs: &obs.Obs{Reg: reg}})
	entered := make(chan struct{})
	unblock := make(chan struct{})
	s.decideHook = func() {
		entered <- struct{}{}
		<-unblock
	}
	body, _ := json.Marshal(decideBody("V(X) :- edge(X, Y).", "V(A) :- edge(A, B)."))
	done := make(chan int)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(string(body)))
		req.Header.Set("X-API-Key", "alice")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		done <- rec.Code
	}()
	<-entered // first request holds its slot inside the hook

	// Same client: over quota → 429 with Retry-After.
	req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(string(body)))
	req.Header.Set("X-API-Key", "alice")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("same-client second request: status %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// A different client is unaffected.
	s.decideHook = nil
	req = httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(string(body)))
	req.Header.Set("X-API-Key", "bob")
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("other-client request: status %d, want 200", rec.Code)
	}

	close(unblock)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocked request finished with %d, want 200", code)
	}
	if got := reg.C(obs.CServeRejected).Value(); got != 1 {
		t.Fatalf("rejected counter = %d, want 1", got)
	}
}

func TestGlobalInFlightBound(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1, PerClientInFlight: 8})
	entered := make(chan struct{})
	unblock := make(chan struct{})
	s.decideHook = func() {
		entered <- struct{}{}
		<-unblock
	}
	body, _ := json.Marshal(decideBody("V(X) :- edge(X, Y).", "V(A) :- edge(A, B)."))
	done := make(chan int)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(string(body)))
		req.Header.Set("X-API-Key", "alice")
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		done <- rec.Code
	}()
	<-entered

	// Different client, but the global bound is saturated.
	req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(string(body)))
	req.Header.Set("X-API-Key", "bob")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: status %d, want 429", rec.Code)
	}
	close(unblock)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("blocked request finished with %d, want 200", code)
	}
}

func TestDrain(t *testing.T) {
	s := newTestServer(t, Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	entered := make(chan struct{})
	unblock := make(chan struct{})
	s.decideHook = func() {
		entered <- struct{}{}
		<-unblock
	}
	body, _ := json.Marshal(decideBody("V(X) :- edge(X, Y).", "V(A) :- edge(A, B)."))
	inFlight := make(chan int)
	go func() {
		resp, err := http.Post("http://"+ln.Addr().String()+"/v1/decide", "application/json", strings.NewReader(string(body)))
		if err != nil {
			inFlight <- -1
			return
		}
		resp.Body.Close()
		inFlight <- resp.StatusCode
	}()
	<-entered // request is in flight on the real server

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	// Wait until the drain flag is visible, then assert new work is
	// refused at the handler level while the in-flight request is still
	// parked.
	for !s.draining.Load() {
		time.Sleep(time.Millisecond)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(string(body)))
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request during drain: status %d, want 429", rec.Code)
	}
	rdy := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rrec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rrec, rdy)
	if rrec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain: status %d, want 503", rrec.Code)
	}

	close(unblock)
	if code := <-inFlight; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("serve returned %v, want ErrServerClosed", err)
	}
}

// TestRestartWarmStart is the core persistence contract: decisions made
// before a restart come back as cache hits afterwards, with the
// original work stats frozen and no new engine work performed.
func TestRestartWarmStart(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "verdicts.log")
	log, err := store.Open(logPath, store.Options{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	s1 := newTestServer(t, Config{Log: log})
	var first decideResponse
	rec := postJSON(t, s1, "/v1/decide", decideBody(
		"V(X) :- edge(X, Y), edge(W, Z), Y = W.",
		"V(A) :- edge(A, B), edge(C, D), B = C.",
	), &first)
	if rec.Code != http.StatusOK || first.CacheHit {
		t.Fatalf("first decision: status %d resp %+v", rec.Code, first)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s1.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, err := store.Open(logPath, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	reg := obs.NewRegistry()
	s2 := newTestServer(t, Config{Log: log2, Obs: &obs.Obs{Reg: reg}})
	var again decideResponse
	rec = postJSON(t, s2, "/v1/decide", decideBody(
		"V(X) :- edge(X, Y), edge(W, Z), Y = W.",
		"V(A) :- edge(A, B), edge(C, D), B = C.",
	), &again)
	if rec.Code != http.StatusOK {
		t.Fatalf("restart decision: status %d: %s", rec.Code, rec.Body.String())
	}
	if !again.CacheHit {
		t.Fatalf("decision after restart not a cache hit: %+v", again)
	}
	if again.Holds != first.Holds || again.Stats != first.Stats {
		t.Fatalf("warm verdict drifted: first %+v, again %+v", first, again)
	}
	// Frozen work counters: the warm hit computed nothing new.
	if got := reg.C(obs.CPairsComputed).Value(); got != 0 {
		t.Fatalf("pairs computed after restart = %d, want 0", got)
	}
	if got := reg.C(obs.CCacheHits).Value(); got != 1 {
		t.Fatalf("cache hits after restart = %d, want 1", got)
	}
	if got := reg.C(obs.CStoreReplayed).Value(); got == 0 {
		t.Fatal("no records counted as replayed")
	}
}

// TestBootCompaction drives the append history far past the live set
// and checks boot rewrites the log.
func TestBootCompaction(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "verdicts.log")
	log, err := store.Open(logPath, store.Options{SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	// 2048 appends over 4 distinct keys: total ≫ 2·live.
	for i := 0; i < 2048; i++ {
		rec := store.Record{Key: fmt.Sprintf("fp%s%d", fpSep, i%4), Holds: i%2 == 0}
		if err := log.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := log.Close(); err != nil {
		t.Fatal(err)
	}

	log2, err := store.Open(logPath, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	reg := obs.NewRegistry()
	newTestServer(t, Config{Log: log2, Obs: &obs.Obs{Reg: reg}})
	if got := log2.Records(); got != 4 {
		t.Fatalf("records after boot compaction = %d, want 4", got)
	}
	if got := reg.C(obs.CStoreCompactions).Value(); got != 1 {
		t.Fatalf("compaction counter = %d, want 1", got)
	}
	if got := reg.C(obs.CStoreReplayed).Value(); got != 2048 {
		t.Fatalf("replayed counter = %d, want 2048", got)
	}
}
