// Package serve is the HTTP layer of keyedeqd: conjunctive query
// equivalence as a service over the batch engine, with admission
// control, graceful drain, and a persistent verdict store replayed into
// the cache on boot.
//
// Endpoints:
//
//	POST /v1/decide           one pair, JSON in/out
//	POST /v1/batch            NDJSON stream: header line, then pair lines
//	POST /v1/schema/equiv     Theorem 13 schema equivalence (+ witness)
//	POST /v1/schema/dominance verify a user-supplied (α, β) pair
//	GET  /v1/stats            cache and store counters
//	GET  /healthz             liveness
//	GET  /readyz              readiness (503 while draining)
//	GET  /metrics, /debug/vars, /debug/pprof/...   (when Obs is set)
//
// Admission is two-tier: a global in-flight bound and a per-client
// (API key or remote address) bound.  Requests over either limit get
// 429 with Retry-After rather than queueing, so load sheds at the edge
// instead of growing latency unboundedly.
package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/dominance"
	"keyedeq/internal/engine"
	"keyedeq/internal/fd"
	"keyedeq/internal/mapping"
	"keyedeq/internal/obs"
	"keyedeq/internal/schema"
	"keyedeq/internal/store"
)

// Config configures a Server.
type Config struct {
	// Engine is the base options every per-schema engine is created
	// with (Store and Obs are overwritten by the server).
	Engine engine.Options
	// Log, when set, persists verdicts and warm-starts the caches at
	// boot.  The server syncs it on drain; the caller closes it.
	Log *store.Log
	// Obs, when set, receives serve/store metrics and mounts /metrics,
	// /debug/vars, and /debug/pprof on the server mux.
	Obs *obs.Obs
	// MaxInFlight bounds concurrently admitted requests; 0 means 64.
	MaxInFlight int
	// PerClientInFlight bounds concurrently admitted requests per
	// client (X-API-Key header, else remote address); 0 means 8.
	PerClientInFlight int
	// DefaultTimeout bounds each decision when the request does not
	// carry its own timeout_ms; 0 means 30s.
	DefaultTimeout time.Duration
}

// Boot compaction policy: rewrite the log when the append history holds
// more than twice the live verdict set and is big enough to matter.
const (
	compactMinRecords = 1024
	compactFactor     = 2
)

// Server serves equivalence decisions over HTTP.  Create with New,
// start with Serve, stop with Drain (graceful) or Close (immediate).
type Server struct {
	cfg     Config
	o       *obs.Obs
	engines *engineSet
	mux     *http.ServeMux
	httpSrv *http.Server

	sem      chan struct{}
	inFlight atomic.Int64
	draining atomic.Bool
	clientMu sync.Mutex
	clients  map[string]int

	// decideHook, when set (tests only), runs inside every admitted
	// decide request while its admission slot is held, so tests can
	// park requests deterministically to exercise quotas and drain.
	decideHook func()
}

// New builds a server: replays the verdict log into the warm-start set,
// compacts the log when the append history has outgrown the live set,
// and mounts all endpoints.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.PerClientInFlight <= 0 {
		cfg.PerClientInFlight = 8
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		o:       cfg.Obs,
		engines: newEngineSet(cfg.Engine, cfg.Log, cfg.Obs),
		mux:     http.NewServeMux(),
		sem:     make(chan struct{}, cfg.MaxInFlight),
		clients: make(map[string]int),
	}
	total, live, err := s.engines.replay()
	if err != nil {
		return nil, fmt.Errorf("serve: replaying verdict log: %v", err)
	}
	s.o.C(obs.CStoreReplayed).Add(int64(total))
	if cfg.Log != nil {
		s.o.C(obs.CStoreTruncatedBytes).Add(cfg.Log.RecoveryStats().TruncatedBytes)
		if total >= compactMinRecords && total > compactFactor*live {
			if err := cfg.Log.Compact(s.engines.liveRecords()); err != nil {
				return nil, fmt.Errorf("serve: compacting verdict log: %v", err)
			}
			s.o.C(obs.CStoreCompactions).Add(1)
		}
	}

	s.mux.HandleFunc("POST /v1/decide", s.handleDecide)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/schema/equiv", s.handleSchemaEquiv)
	s.mux.HandleFunc("POST /v1/schema/dominance", s.handleSchemaDominance)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	if s.o != nil && s.o.Reg != nil {
		obs.MountHTTP(s.mux, s.o.Reg)
	}
	s.httpSrv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 10 * time.Second}
	return s, nil
}

// Handler exposes the server's mux (for tests via httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on ln until Drain or Close.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Drain stops admitting new requests (429 / readyz 503), waits for
// in-flight requests to finish within ctx, then syncs the verdict log
// so nothing decided is lost.  Serve returns http.ErrServerClosed.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.o.G(obs.GServeDraining).Set(1)
	err := s.httpSrv.Shutdown(ctx)
	if s.cfg.Log != nil {
		if serr := s.cfg.Log.Sync(); err == nil {
			err = serr
		}
	}
	return err
}

// Close shuts the listener and all connections down immediately.
func (s *Server) Close() error { return s.httpSrv.Close() }

// ---- Admission ----

// clientKey identifies the requester for per-client quotas: the API key
// when presented, else the remote host.
func clientKey(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return "key:" + k
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return "addr:" + host
	}
	return "addr:" + r.RemoteAddr
}

// acquire admits the request or writes a 429/503-style rejection and
// returns ok=false.  On success the returned release function must be
// called exactly once.
func (s *Server) acquire(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	reject := func(reason string) {
		s.o.C(obs.CServeRejected).Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, reason)
	}
	if s.draining.Load() {
		reject("draining")
		return nil, false
	}
	select {
	case s.sem <- struct{}{}:
	default:
		reject("server at capacity")
		return nil, false
	}
	client := clientKey(r)
	s.clientMu.Lock()
	if s.clients[client] >= s.cfg.PerClientInFlight {
		s.clientMu.Unlock()
		<-s.sem
		reject("client quota exceeded")
		return nil, false
	}
	s.clients[client]++
	s.clientMu.Unlock()
	s.o.G(obs.GServeInFlight).Set(s.inFlight.Add(1))
	return func() {
		s.clientMu.Lock()
		if s.clients[client]--; s.clients[client] == 0 {
			delete(s.clients, client)
		}
		s.clientMu.Unlock()
		<-s.sem
		s.o.G(obs.GServeInFlight).Set(s.inFlight.Add(-1))
	}, true
}

// ---- Wire types ----

type statsJSON struct {
	Nodes           int64 `json:"nodes"`
	Searches        int   `json:"searches"`
	ChaseIterations int   `json:"chase_iterations"`
	ChaseMerges     int   `json:"chase_merges"`
	ChaseRevisited  int   `json:"chase_revisited"`
	ChaseFailed     bool  `json:"chase_failed,omitempty"`
}

func statsOf(st containment.Stats) statsJSON {
	return statsJSON{
		Nodes:           st.Nodes,
		Searches:        st.Searches,
		ChaseIterations: st.ChaseIterations,
		ChaseMerges:     st.ChaseMerges,
		ChaseRevisited:  st.ChaseRevisited,
		ChaseFailed:     st.ChaseFailed,
	}
}

type decideRequest struct {
	Schema    string `json:"schema"`
	Unkeyed   bool   `json:"unkeyed"`
	Left      string `json:"left"`
	Right     string `json:"right"`
	Op        string `json:"op"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type decideResponse struct {
	Holds    bool      `json:"holds"`
	CacheHit bool      `json:"cache_hit"`
	Deduped  bool      `json:"deduped"`
	PairKey  string    `json:"pair_key"`
	Stats    statsJSON `json:"stats"`
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// parseOp maps the wire op tag to the engine op.
func parseOp(op string) (engine.Op, error) {
	switch op {
	case "", "equiv":
		return engine.OpEquivalent, nil
	case "contains":
		return engine.OpContained, nil
	default:
		return 0, fmt.Errorf("unknown op %q (want \"equiv\" or \"contains\")", op)
	}
}

// parseSchemaDeps parses the request schema and derives its key
// dependencies (none in unkeyed mode).
func parseSchemaDeps(text string, unkeyed bool) (*schema.Schema, []fd.FD, error) {
	sch, err := schema.Parse(text)
	if err != nil {
		return nil, nil, err
	}
	if unkeyed {
		return sch, nil, nil
	}
	return sch, fd.KeyFDs(sch), nil
}

// timeoutOf resolves a request's decision timeout.
func (s *Server) timeoutOf(ms int64) time.Duration {
	if ms > 0 {
		return time.Duration(ms) * time.Millisecond
	}
	return s.cfg.DefaultTimeout
}

// ---- Handlers ----

func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	if s.decideHook != nil {
		s.decideHook()
	}
	var req decideRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	sch, deps, err := parseSchemaDeps(req.Schema, req.Unkeyed)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("schema: %v", err))
		return
	}
	left, err := cq.Parse(req.Left)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("left query: %v", err))
		return
	}
	right, err := cq.Parse(req.Right)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("right query: %v", err))
		return
	}
	op, err := parseOp(req.Op)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.o.C(obs.CServeRequests).Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutOf(req.TimeoutMS))
	defer cancel()
	res := s.engines.engine(sch, deps).Decide(ctx, left, right, op)
	if res.Err != nil {
		if errors.Is(res.Err, context.DeadlineExceeded) || errors.Is(res.Err, context.Canceled) {
			writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("decision timed out: %v", res.Err))
		} else {
			writeError(w, http.StatusUnprocessableEntity, res.Err.Error())
		}
		return
	}
	writeJSON(w, decideResponse{
		Holds:    res.Holds,
		CacheHit: res.CacheHit,
		Deduped:  res.Deduped,
		PairKey:  res.PairKey,
		Stats:    statsOf(res.Stats),
	})
}

// Batch wire format: the first NDJSON line is a header fixing the
// schema for the stream, each further line is one pair, and the
// response streams one verdict line per pair plus a final summary.
type batchHeader struct {
	Schema    string `json:"schema"`
	Unkeyed   bool   `json:"unkeyed"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type batchLine struct {
	Left  string `json:"left"`
	Right string `json:"right"`
	Op    string `json:"op"`
}

type batchResult struct {
	Index    int       `json:"index"`
	Holds    bool      `json:"holds"`
	CacheHit bool      `json:"cache_hit"`
	Deduped  bool      `json:"deduped"`
	Error    string    `json:"error,omitempty"`
	Stats    statsJSON `json:"stats"`
}

type batchSummary struct {
	Summary   bool  `json:"summary"`
	Pairs     int   `json:"pairs"`
	Holding   int   `json:"holding"`
	Errors    int   `json:"errors"`
	CacheHits int   `json:"cache_hits"`
	Nodes     int64 `json:"nodes"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	if s.decideHook != nil {
		s.decideHook()
	}
	sc := bufio.NewScanner(r.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		writeError(w, http.StatusBadRequest, "empty batch: expected a header line")
		return
	}
	var hdr batchHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("header line: %v", err))
		return
	}
	sch, deps, err := parseSchemaDeps(hdr.Schema, hdr.Unkeyed)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("schema: %v", err))
		return
	}
	eng := s.engines.engine(sch, deps)
	timeout := s.timeoutOf(hdr.TimeoutMS)

	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	var sum batchSummary
	sum.Summary = true
	for i := 0; sc.Scan(); i++ {
		if len(sc.Bytes()) == 0 {
			continue
		}
		out := batchResult{Index: i}
		var line batchLine
		res, lineErr := func() (engine.Result, error) {
			if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
				return engine.Result{}, fmt.Errorf("line %d: %v", i, err)
			}
			left, err := cq.Parse(line.Left)
			if err != nil {
				return engine.Result{}, fmt.Errorf("line %d left query: %v", i, err)
			}
			right, err := cq.Parse(line.Right)
			if err != nil {
				return engine.Result{}, fmt.Errorf("line %d right query: %v", i, err)
			}
			op, err := parseOp(line.Op)
			if err != nil {
				return engine.Result{}, fmt.Errorf("line %d: %v", i, err)
			}
			s.o.C(obs.CServeRequests).Add(1)
			ctx, cancel := context.WithTimeout(r.Context(), timeout)
			defer cancel()
			res := eng.Decide(ctx, left, right, op)
			return res, res.Err
		}()
		sum.Pairs++
		if lineErr != nil {
			out.Error = lineErr.Error()
			sum.Errors++
		} else {
			out.Holds = res.Holds
			out.CacheHit = res.CacheHit
			out.Deduped = res.Deduped
			out.Stats = statsOf(res.Stats)
			if res.Holds {
				sum.Holding++
			}
			if res.CacheHit {
				sum.CacheHits++
			}
			sum.Nodes += res.Stats.Nodes
		}
		enc.Encode(out)
		if flusher != nil {
			flusher.Flush()
		}
	}
	if err := sc.Err(); err != nil {
		// The stream is already committed; report the read failure as a
		// summary-level error line.
		sum.Errors++
	}
	enc.Encode(sum)
}

type schemaEquivRequest struct {
	Schema1 string `json:"schema1"`
	Schema2 string `json:"schema2"`
	Witness bool   `json:"witness"`
}

type schemaEquivResponse struct {
	Equivalent  bool   `json:"equivalent"`
	Explanation string `json:"explanation"`
	Alpha       string `json:"alpha,omitempty"`
	Beta        string `json:"beta,omitempty"`
}

func (s *Server) handleSchemaEquiv(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	var req schemaEquivRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	s1, err := schema.Parse(req.Schema1)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("schema1: %v", err))
		return
	}
	s2, err := schema.Parse(req.Schema2)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("schema2: %v", err))
		return
	}
	s.o.C(obs.CServeRequests).Add(1)
	resp := schemaEquivResponse{
		Equivalent:  dominance.Equivalent(s1, s2),
		Explanation: dominance.Explain(s1, s2),
	}
	if req.Witness && resp.Equivalent {
		wit, found, err := dominance.EquivalentWithWitness(s1, s2)
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("witness: %v", err))
			return
		}
		if found {
			resp.Alpha = wit.Alpha.String()
			resp.Beta = wit.Beta.String()
		}
	}
	writeJSON(w, resp)
}

type schemaDominanceRequest struct {
	Schema1   string `json:"schema1"`
	Schema2   string `json:"schema2"`
	Alpha     string `json:"alpha"`
	Beta      string `json:"beta"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type schemaDominanceResponse struct {
	Dominates         bool `json:"dominates"`
	AlphaValid        bool `json:"alpha_valid"`
	BetaValid         bool `json:"beta_valid"`
	RoundTripIdentity bool `json:"round_trip_identity"`
}

// handleSchemaDominance verifies a user-supplied (α, β) pair: validity
// of both mappings plus β∘α = id, with the per-relation equivalences
// routed through the engine set — so repeated dominance checks hit the
// verdict cache and the persistent store like any other decision.
func (s *Server) handleSchemaDominance(w http.ResponseWriter, r *http.Request) {
	release, ok := s.acquire(w, r)
	if !ok {
		return
	}
	defer release()
	var req schemaDominanceRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err))
		return
	}
	s1, err := schema.Parse(req.Schema1)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("schema1: %v", err))
		return
	}
	s2, err := schema.Parse(req.Schema2)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("schema2: %v", err))
		return
	}
	alpha, err := mapping.Parse(s1, s2, req.Alpha)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("alpha: %v", err))
		return
	}
	beta, err := mapping.Parse(s2, s1, req.Beta)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("beta: %v", err))
		return
	}
	s.o.C(obs.CServeRequests).Add(1)
	ctx, cancel := context.WithTimeout(r.Context(), s.timeoutOf(req.TimeoutMS))
	defer cancel()
	var resp schemaDominanceResponse
	if resp.AlphaValid, err = alpha.IsValid(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("alpha validity: %v", err))
		return
	}
	if resp.BetaValid, err = beta.IsValid(); err != nil {
		writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("beta validity: %v", err))
		return
	}
	if resp.AlphaValid && resp.BetaValid {
		resp.RoundTripIdentity, err = mapping.RoundTripIsIdentityCtx(ctx, alpha, beta, s.engines.EquivCtx)
		if err != nil {
			if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
				writeError(w, http.StatusGatewayTimeout, fmt.Sprintf("round trip timed out: %v", err))
			} else {
				writeError(w, http.StatusUnprocessableEntity, fmt.Sprintf("round trip: %v", err))
			}
			return
		}
	}
	resp.Dominates = resp.AlphaValid && resp.BetaValid && resp.RoundTripIdentity
	writeJSON(w, resp)
}

type statsResponse struct {
	Cache struct {
		Hits      int64 `json:"hits"`
		Misses    int64 `json:"misses"`
		Evictions int64 `json:"evictions"`
		Entries   int   `json:"entries"`
		Capacity  int   `json:"capacity"`
	} `json:"cache"`
	Store struct {
		Enabled bool `json:"enabled"`
		Records int  `json:"records"`
	} `json:"store"`
	InFlight int64 `json:"in_flight"`
	Draining bool  `json:"draining"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	var resp statsResponse
	cs := s.engines.cacheStats()
	resp.Cache.Hits = cs.Hits
	resp.Cache.Misses = cs.Misses
	resp.Cache.Evictions = cs.Evictions
	resp.Cache.Entries = cs.Entries
	resp.Cache.Capacity = cs.Capacity
	if s.cfg.Log != nil {
		resp.Store.Enabled = true
		resp.Store.Records = s.cfg.Log.Records()
	}
	resp.InFlight = s.inFlight.Load()
	resp.Draining = s.draining.Load()
	writeJSON(w, resp)
}

func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}
