package serve

import (
	"context"
	"strings"
	"sync"

	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/engine"
	"keyedeq/internal/fd"
	"keyedeq/internal/obs"
	"keyedeq/internal/schema"
	"keyedeq/internal/store"
)

// fpSep joins a schema/dependency fingerprint to an engine pair key in
// store record keys.  The fingerprint uses "\x00" internally and pair
// keys use "\x1e"/"\x1f", so "\x1d" never collides with either side.
const fpSep = "\x1d"

// storeAdapter satisfies engine.VerdictStore for one engine by
// prefixing its pair keys with the engine's fingerprint before
// appending, so one shared log serves every schema the daemon sees.
type storeAdapter struct {
	log *store.Log
	fp  string
}

func (a storeAdapter) Put(key string, v engine.Verdict) error {
	return a.log.Append(store.Record{Key: a.fp + fpSep + key, Holds: v.Holds, Stats: v.Stats})
}

// engineSet lazily creates one engine per (schema, deps) fingerprint —
// like engine.Pool, but each engine gets a fingerprint-prefixed store
// adapter and a warm-start preload of the verdicts replayed from the
// log at boot.  That pairing is why the daemon cannot use engine.Pool
// directly.
type engineSet struct {
	base engine.Options
	log  *store.Log // nil disables persistence
	obs  *obs.Obs

	mu      sync.Mutex
	engines map[string]*engine.Engine
	// warm holds replayed verdicts not yet loaded into an engine, keyed
	// by fingerprint then pair key (later log records supersede earlier
	// ones by plain map assignment during replay).
	warm map[string]map[string]store.Record
}

func newEngineSet(base engine.Options, log *store.Log, o *obs.Obs) *engineSet {
	base.Obs = o
	return &engineSet{
		base:    base,
		log:     log,
		obs:     o,
		engines: make(map[string]*engine.Engine),
		warm:    make(map[string]map[string]store.Record),
	}
}

// replay loads the log into the warm map and returns the total record
// count and the per-key live set size.  Call once at boot, before any
// engine exists.
func (s *engineSet) replay() (total, live int, err error) {
	if s.log == nil {
		return 0, 0, nil
	}
	err = s.log.Replay(func(r store.Record) error {
		total++
		fp, pk, ok := strings.Cut(r.Key, fpSep)
		if !ok {
			// A key without a fingerprint separator cannot be routed;
			// skip it rather than failing boot (it round-trips through
			// compaction untouched only if the caller keeps it, and we
			// deliberately drop it from the live set).
			return nil
		}
		m := s.warm[fp]
		if m == nil {
			m = make(map[string]store.Record)
			s.warm[fp] = m
		}
		m[pk] = r
		return nil
	})
	for _, m := range s.warm {
		live += len(m)
	}
	return total, live, err
}

// liveRecords flattens the warm map for compaction.
func (s *engineSet) liveRecords() []store.Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []store.Record
	for _, m := range s.warm {
		for _, r := range m {
			out = append(out, r)
		}
	}
	return out
}

// engine returns the set's engine for (sch, deps), creating and
// warm-loading it on first use.
func (s *engineSet) engine(sch *schema.Schema, deps []fd.FD) *engine.Engine {
	fp := engine.Fingerprint(sch, deps)
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.engines[fp]
	if !ok {
		opts := s.base
		if s.log != nil {
			opts.Store = storeAdapter{log: s.log, fp: fp}
		}
		e = engine.New(sch, deps, opts)
		for pk, r := range s.warm[fp] {
			e.Warm(pk, engine.Verdict{Holds: r.Holds, Stats: r.Stats})
		}
		s.engines[fp] = e
	}
	return e
}

// EquivCtx decides q1 ≡ q2 through the set's cached, persisted engines.
// Its signature matches mapping.EquivCtxFunc, so the schema-dominance
// endpoint's round-trip verification runs through the verdict store
// like every other decision.
func (s *engineSet) EquivCtx(ctx context.Context, q1, q2 *cq.Query, sch *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
	r := s.engine(sch, deps).Decide(ctx, q1, q2, engine.OpEquivalent)
	return r.Holds, r.Stats, r.Err
}

// cacheStats sums engine cache statistics across the set.
func (s *engineSet) cacheStats() engine.CacheStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out engine.CacheStats
	for _, e := range s.engines {
		cs := e.CacheStats()
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.Evictions += cs.Evictions
		out.Entries += cs.Entries
		out.Capacity += cs.Capacity
	}
	return out
}
