package instance

import (
	"testing"

	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func v(t value.Type, n int64) value.Value { return value.Value{Type: t, N: n} }

func TestTupleBasics(t *testing.T) {
	a := Tuple{v(1, 1), v(2, 5)}
	b := a.Clone()
	if !a.Equal(b) {
		t.Error("clone not equal")
	}
	b[0] = v(1, 9)
	if a.Equal(b) {
		t.Error("clone shares storage")
	}
	if a.Compare(b) >= 0 {
		t.Error("compare wrong")
	}
	if a.Compare(a) != 0 {
		t.Error("self compare nonzero")
	}
	short := Tuple{v(1, 1)}
	if short.Compare(a) >= 0 || a.Compare(short) <= 0 {
		t.Error("length tie-break wrong")
	}
	p := a.Project([]int{1, 0})
	if p[0] != v(2, 5) || p[1] != v(1, 1) {
		t.Errorf("Project = %v", p)
	}
	if a.String() != "(T1:1, T2:5)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestRelationInsertValidation(t *testing.T) {
	rs, _ := schema.ParseRelation("r(a*:T1, b:T2)")
	r := NewRelation(rs)
	if err := r.Insert(Tuple{v(1, 1), v(2, 1)}); err != nil {
		t.Fatalf("valid insert failed: %v", err)
	}
	if err := r.Insert(Tuple{v(1, 1)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := r.Insert(Tuple{v(2, 1), v(2, 1)}); err == nil {
		t.Error("type mismatch accepted")
	}
	// Set semantics: duplicate insert keeps Len at 1.
	r.MustInsert(Tuple{v(1, 1), v(2, 1)})
	if r.Len() != 1 {
		t.Errorf("Len = %d after duplicate insert", r.Len())
	}
	if !r.Has(Tuple{v(1, 1), v(2, 1)}) {
		t.Error("Has false for present tuple")
	}
	r.Delete(Tuple{v(1, 1), v(2, 1)})
	if r.Len() != 0 {
		t.Error("Delete failed")
	}
}

func TestRelationSetOps(t *testing.T) {
	rs, _ := schema.ParseRelation("r(a:T1)")
	a := NewRelation(rs)
	b := NewRelation(rs)
	a.MustInsert(Tuple{v(1, 1)})
	a.MustInsert(Tuple{v(1, 2)})
	b.MustInsert(Tuple{v(1, 1)})
	if a.Equal(b) || !b.SubsetOf(a) || a.SubsetOf(b) {
		t.Error("set ops wrong")
	}
	b.MustInsert(Tuple{v(1, 2)})
	if !a.Equal(b) || !a.SubsetOf(b) {
		t.Error("equality wrong")
	}
	c := a.Clone()
	c.MustInsert(Tuple{v(1, 3)})
	if a.Len() != 2 {
		t.Error("Clone shares tuples")
	}
}

func TestTuplesDeterministicOrder(t *testing.T) {
	rs, _ := schema.ParseRelation("r(a:T1, b:T2)")
	r := NewRelation(rs)
	r.MustInsert(Tuple{v(1, 2), v(2, 1)})
	r.MustInsert(Tuple{v(1, 1), v(2, 9)})
	r.MustInsert(Tuple{v(1, 1), v(2, 2)})
	ts := r.Tuples()
	for i := 1; i < len(ts); i++ {
		if ts[i-1].Compare(ts[i]) >= 0 {
			t.Fatalf("Tuples not sorted: %v", ts)
		}
	}
}

func TestSatisfiesKey(t *testing.T) {
	rs, _ := schema.ParseRelation("r(a*:T1, b:T2)")
	r := NewRelation(rs)
	r.MustInsert(Tuple{v(1, 1), v(2, 1)})
	r.MustInsert(Tuple{v(1, 2), v(2, 1)})
	if !r.SatisfiesKey() {
		t.Error("distinct keys reported as violation")
	}
	r.MustInsert(Tuple{v(1, 1), v(2, 2)})
	if r.SatisfiesKey() {
		t.Error("key violation missed")
	}
	// Unkeyed scheme is vacuously fine.
	us, _ := schema.ParseRelation("u(a:T1, b:T2)")
	u := NewRelation(us)
	u.MustInsert(Tuple{v(1, 1), v(2, 1)})
	u.MustInsert(Tuple{v(1, 1), v(2, 2)})
	if !u.SatisfiesKey() {
		t.Error("unkeyed scheme reported violation")
	}
}

func TestSatisfiesFD(t *testing.T) {
	rs, _ := schema.ParseRelation("r(a:T1, b:T2, c:T3)")
	r := NewRelation(rs)
	r.MustInsert(Tuple{v(1, 1), v(2, 1), v(3, 1)})
	r.MustInsert(Tuple{v(1, 1), v(2, 1), v(3, 1)})
	r.MustInsert(Tuple{v(1, 2), v(2, 1), v(3, 2)})
	if !r.SatisfiesFD([]int{0}, []int{1, 2}) {
		t.Error("a->bc should hold")
	}
	if r.SatisfiesFD([]int{1}, []int{2}) {
		t.Error("b->c should fail")
	}
	if !r.SatisfiesFD([]int{1}, []int{1}) {
		t.Error("b->b must always hold")
	}
	if !r.SatisfiesFD([]int{0, 1}, []int{2}) {
		t.Error("ab->c should hold")
	}
}

func TestDatabaseBasics(t *testing.T) {
	s := schema.MustParse("r(a*:T1, b:T2)\ns(c*:T3)")
	d := NewDatabase(s)
	d.MustInsert("r", v(1, 1), v(2, 1))
	d.MustInsert("s", v(3, 1))
	if d.Size() != 2 {
		t.Errorf("Size = %d", d.Size())
	}
	if !d.NonEmpty() {
		t.Error("NonEmpty false")
	}
	if !d.SatisfiesKeys() {
		t.Error("SatisfiesKeys false")
	}
	if err := d.Insert("zz", Tuple{v(1, 1)}); err == nil {
		t.Error("insert into missing relation accepted")
	}
	e := d.Clone()
	if !d.Equal(e) {
		t.Error("clone not equal")
	}
	e.MustInsert("s", v(3, 2))
	if d.Equal(e) {
		t.Error("Equal after divergence")
	}
	d.MustInsert("r", v(1, 1), v(2, 2))
	if d.SatisfiesKeys() {
		t.Error("key violation missed at database level")
	}
}

func TestActiveDomain(t *testing.T) {
	s := schema.MustParse("r(a:T1, b:T2)")
	d := NewDatabase(s)
	d.MustInsert("r", v(1, 1), v(2, 7))
	d.MustInsert("r", v(1, 2), v(2, 7))
	ad := d.ActiveDomain()
	if ad.Len() != 3 {
		t.Errorf("ActiveDomain size = %d, want 3", ad.Len())
	}
}

func TestAttributeSpecific(t *testing.T) {
	s := schema.MustParse("r(a:T1, b:T1)\ns(c:T1)")
	d := NewDatabase(s)
	d.MustInsert("r", v(1, 1), v(1, 2))
	d.MustInsert("s", v(1, 3))
	if !d.AttributeSpecific() {
		t.Error("disjoint columns reported non-specific")
	}
	// Same value in r.a and s.c: not attribute-specific.
	d.MustInsert("s", v(1, 1))
	if d.AttributeSpecific() {
		t.Error("shared value missed")
	}
	// Two columns of the same relation sharing a value also violate.
	d2 := NewDatabase(s)
	d2.MustInsert("r", v(1, 5), v(1, 5))
	if d2.AttributeSpecific() {
		t.Error("intra-relation sharing missed")
	}
}

func TestProjectKappa(t *testing.T) {
	s := schema.MustParse("r(a*:T1, b:T2)\ns(c*:T3, d*:T4, e:T5)")
	k, pos := schema.Kappa(s)
	d := NewDatabase(s)
	d.MustInsert("r", v(1, 1), v(2, 1))
	d.MustInsert("r", v(1, 2), v(2, 1))
	d.MustInsert("s", v(3, 1), v(4, 1), v(5, 1))
	kd := ProjectKappa(d, k, pos)
	if kd.Relation("r").Len() != 2 {
		t.Errorf("kappa r has %d tuples", kd.Relation("r").Len())
	}
	if kd.Relation("s").Len() != 1 {
		t.Errorf("kappa s has %d tuples", kd.Relation("s").Len())
	}
	kt := kd.Relation("s").Tuples()[0]
	if len(kt) != 2 || kt[0] != v(3, 1) || kt[1] != v(4, 1) {
		t.Errorf("kappa s tuple = %v", kt)
	}
	// Projection collapses duplicates: on a key-satisfying instance the
	// counts match, on a violating one they may shrink.
	d.MustInsert("s", v(3, 1), v(4, 1), v(5, 2)) // key violation
	kd2 := ProjectKappa(d, k, pos)
	if kd2.Relation("s").Len() != 1 {
		t.Errorf("projection should collapse duplicates: %d", kd2.Relation("s").Len())
	}
}

func TestRelationString(t *testing.T) {
	rs, _ := schema.ParseRelation("r(a:T1)")
	r := NewRelation(rs)
	r.MustInsert(Tuple{v(1, 1)})
	if got := r.String(); got != "r {(T1:1)}" {
		t.Errorf("String = %q", got)
	}
}
