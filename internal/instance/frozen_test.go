package instance

import (
	"testing"

	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func frozenFixture(t *testing.T) *Database {
	t.Helper()
	s := schema.MustParse("R(a*:T1, b:T2)\nS(c:T3)")
	d := NewDatabase(s)
	d.MustInsert("R", value.Value{Type: 1, N: 2}, value.Value{Type: 2, N: 7})
	d.MustInsert("R", value.Value{Type: 1, N: 1}, value.Value{Type: 2, N: 7})
	d.MustInsert("S", value.Value{Type: 3, N: 4})
	return d
}

func TestFreezeDatabaseRowsMatchSortedTuples(t *testing.T) {
	d := frozenFixture(t)
	f := d.Frozen()
	for ri, r := range d.Relations {
		fr := f.Relations[ri]
		tuples := r.Tuples()
		if fr.NumRows() != len(tuples) {
			t.Fatalf("relation %d: %d frozen rows, %d tuples", ri, fr.NumRows(), len(tuples))
		}
		for i, tup := range tuples {
			if fr.Arity() != len(tup) {
				t.Fatalf("relation %d: arity %d, tuple width %d", ri, fr.Arity(), len(tup))
			}
			got := f.DecodeTuple(ri, i)
			if !got.Equal(tup) {
				t.Fatalf("relation %d row %d decodes to %v, want %v", ri, i, got, tup)
			}
			row := fr.Row(i)
			for p, id := range row {
				if fr.Cell(i, p) != id {
					t.Fatalf("Row/Cell disagree at %d,%d", i, p)
				}
			}
		}
	}
}

func TestFrozenMemoizedUntilMutation(t *testing.T) {
	d := frozenFixture(t)
	f1 := d.Frozen()
	if f2 := d.Frozen(); f2 != f1 {
		t.Fatal("Frozen rebuilt without a mutation")
	}
	d.MustInsert("S", value.Value{Type: 3, N: 9})
	f3 := d.Frozen()
	if f3 == f1 {
		t.Fatal("Frozen not rebuilt after an insert")
	}
	if f3.Relations[1].NumRows() != 2 {
		t.Fatalf("rebuilt view has %d S rows, want 2", f3.Relations[1].NumRows())
	}
	d.Relation("S").Delete(Tuple{value.Value{Type: 3, N: 9}})
	f4 := d.Frozen()
	if f4 == f3 {
		t.Fatal("Frozen not rebuilt after a delete")
	}
	if f4.Relations[1].NumRows() != 1 {
		t.Fatalf("view after delete has %d S rows, want 1", f4.Relations[1].NumRows())
	}
}

func TestFreezeDatabaseDeterministicIDTables(t *testing.T) {
	// Two independent freezes of equal databases (built in different
	// insertion orders) must assign identical ID tables: interning
	// follows the sorted tuple order, not insertion order.
	s := schema.MustParse("R(a*:T1, b:T2)")
	d1 := NewDatabase(s)
	d2 := NewDatabase(s)
	rows := []Tuple{
		{value.Value{Type: 1, N: 3}, value.Value{Type: 2, N: 1}},
		{value.Value{Type: 1, N: 1}, value.Value{Type: 2, N: 2}},
		{value.Value{Type: 1, N: 2}, value.Value{Type: 2, N: 1}},
	}
	for _, tup := range rows {
		d1.Relation("R").MustInsert(tup)
	}
	for i := len(rows) - 1; i >= 0; i-- {
		d2.Relation("R").MustInsert(rows[i])
	}
	f1, f2 := FreezeDatabase(d1), FreezeDatabase(d2)
	if f1.Interner.Len() != f2.Interner.Len() {
		t.Fatalf("interner sizes differ: %d vs %d", f1.Interner.Len(), f2.Interner.Len())
	}
	for id := 0; id < f1.Interner.NumConsts(); id++ {
		v1, _ := f1.Interner.Decode(value.ID(id))
		v2, _ := f2.Interner.Decode(value.ID(id))
		if v1 != v2 {
			t.Fatalf("ID %d decodes to %v vs %v", id, v1, v2)
		}
	}
	fr1, fr2 := f1.Relations[0], f2.Relations[0]
	if fr1.NumRows() != fr2.NumRows() {
		t.Fatalf("row counts differ: %d vs %d", fr1.NumRows(), fr2.NumRows())
	}
	for i := 0; i < fr1.NumRows(); i++ {
		for p := 0; p < fr1.Arity(); p++ {
			if fr1.Cell(i, p) != fr2.Cell(i, p) {
				t.Fatalf("cell %d,%d differs: %d vs %d", i, p, fr1.Cell(i, p), fr2.Cell(i, p))
			}
		}
	}
}

func TestNewFrozenRelationBulkLoad(t *testing.T) {
	s := schema.MustParse("R(a*:T1, b:T2)")
	var in value.Interner
	rows := []value.ID{
		in.Intern(value.Value{Type: 1, N: 1}), in.Intern(value.Value{Type: 2, N: 5}),
		in.Intern(value.Value{Type: 1, N: 2}), in.Intern(value.Value{Type: 2, N: 5}),
	}
	fr := NewFrozenRelation(s.Relations[0], rows)
	if fr.NumRows() != 2 || fr.Arity() != 2 {
		t.Fatalf("NumRows=%d Arity=%d, want 2,2", fr.NumRows(), fr.Arity())
	}
	if fr.Cell(1, 1) != fr.Cell(0, 1) {
		t.Fatal("shared value interned to distinct IDs")
	}
}

func TestDistinctAtCountsAndMemoizes(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)")
	d := NewDatabase(s)
	// Three distinct sources, two distinct sinks, six rows.
	for a := int64(1); a <= 3; a++ {
		for b := int64(10); b <= 11; b++ {
			d.MustInsert("R", value.Value{Type: 1, N: a}, value.Value{Type: 1, N: b})
		}
	}
	fr := d.Frozen().Relations[0]
	if got := fr.DistinctAt(0); got != 3 {
		t.Fatalf("DistinctAt(0) = %d, want 3", got)
	}
	if got := fr.DistinctAt(1); got != 2 {
		t.Fatalf("DistinctAt(1) = %d, want 2", got)
	}
	// Memoized: asking again returns the same counts.
	if got := fr.DistinctAt(0); got != 3 {
		t.Fatalf("memoized DistinctAt(0) = %d, want 3", got)
	}
	// Out-of-range positions and empty relations report zero.
	if got := fr.DistinctAt(-1); got != 0 {
		t.Fatalf("DistinctAt(-1) = %d, want 0", got)
	}
	if got := fr.DistinctAt(2); got != 0 {
		t.Fatalf("DistinctAt(2) = %d, want 0", got)
	}
	empty := NewDatabase(schema.MustParse("R(a:T1, b:T1)"))
	if got := empty.Frozen().Relations[0].DistinctAt(0); got != 0 {
		t.Fatalf("empty DistinctAt(0) = %d, want 0", got)
	}
}

func TestDistinctAtConcurrentCallsAgree(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)")
	d := NewDatabase(s)
	for i := int64(0); i < 64; i++ {
		d.MustInsert("R", value.Value{Type: 1, N: i % 7}, value.Value{Type: 1, N: i})
	}
	fr := d.Frozen().Relations[0]
	done := make(chan int, 8)
	for w := 0; w < 8; w++ {
		go func() { done <- fr.DistinctAt(0) }()
	}
	for w := 0; w < 8; w++ {
		if got := <-done; got != 7 {
			t.Fatalf("concurrent DistinctAt(0) = %d, want 7", got)
		}
	}
}
