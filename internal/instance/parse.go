package instance

import (
	"fmt"
	"strings"

	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Parse reads a database instance in the textual format produced by
// Dump: one tuple per line, "relation(T1:1, T2:5)".  Blank lines and
// '#' comments are ignored.  Tuples are validated against the schema.
func Parse(s *schema.Schema, text string) (*Database, error) {
	d := NewDatabase(s)
	for lineno, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		open := strings.IndexByte(line, '(')
		if open <= 0 || !strings.HasSuffix(line, ")") {
			return nil, fmt.Errorf("instance: line %d: want relation(values): %q", lineno+1, line)
		}
		rel := strings.TrimSpace(line[:open])
		body := strings.TrimSpace(line[open+1 : len(line)-1])
		var tup Tuple
		if body != "" {
			for _, part := range strings.Split(body, ",") {
				v, err := value.Parse(strings.TrimSpace(part))
				if err != nil {
					return nil, fmt.Errorf("instance: line %d: %v", lineno+1, err)
				}
				tup = append(tup, v)
			}
		}
		if err := d.Insert(rel, tup); err != nil {
			return nil, fmt.Errorf("instance: line %d: %v", lineno+1, err)
		}
	}
	return d, nil
}

// MustParse is Parse but panics on error; for tests and fixtures.
func MustParse(s *schema.Schema, text string) *Database {
	d, err := Parse(s, text)
	invariant.Must(err)
	return d
}

// Dump renders the database in the format Parse reads: one tuple per
// line, relations and tuples in deterministic order.
func (d *Database) Dump() string {
	var b strings.Builder
	for _, r := range d.Relations {
		name := "?"
		if r.Scheme != nil {
			name = r.Scheme.Name
		}
		for _, t := range r.Tuples() {
			b.WriteString(name)
			b.WriteByte('(')
			for i, v := range t {
				if i > 0 {
					b.WriteString(", ")
				}
				b.WriteString(v.String())
			}
			b.WriteString(")\n")
		}
	}
	return b.String()
}
