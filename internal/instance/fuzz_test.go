package instance

import (
	"testing"

	"keyedeq/internal/schema"
)

func FuzzParseInstance(f *testing.F) {
	seeds := []string{
		"R(T1:1, T2:5)",
		"R(T1:1, T2:5)\nS(T3:9)",
		"# comment\n\nR(T1:2, T2:2)",
		"R()",
		"R(T1:1",
		"R(x)",
		"ZZ(T1:1)",
		"R(T9:1, T2:5)",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sch := schema.MustParse("R(a*:T1, b:T2)\nS(c:T3)")
	f.Fuzz(func(t *testing.T, text string) {
		d, err := Parse(sch, text)
		if err != nil {
			return
		}
		// Accepted instances round trip through Dump.
		d2, err := Parse(sch, d.Dump())
		if err != nil {
			t.Fatalf("rejected own dump: %v", err)
		}
		if !d.Equal(d2) {
			t.Fatalf("dump round trip changed the database")
		}
	})
}
