package instance

import (
	"math/rand"
	"testing"

	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func TestParseDumpRoundTrip(t *testing.T) {
	s := schema.MustParse("R(a*:T1, b:T2)\nS(c*:T3)")
	d := NewDatabase(s)
	d.MustInsert("R", v(1, 1), v(2, 5))
	d.MustInsert("R", v(1, 2), v(2, 6))
	d.MustInsert("S", v(3, 9))
	text := d.Dump()
	d2, err := Parse(s, text)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Equal(d2) {
		t.Errorf("round trip changed database:\n%s\nvs\n%s", d, d2)
	}
	if d2.Dump() != text {
		t.Error("Dump not canonical")
	}
}

func TestParseComments(t *testing.T) {
	s := schema.MustParse("R(a:T1)")
	d, err := Parse(s, "# header\n\nR(T1:1)\n  # trailing\nR(T1:2)\n")
	if err != nil {
		t.Fatal(err)
	}
	if d.Relation("R").Len() != 2 {
		t.Errorf("len = %d", d.Relation("R").Len())
	}
}

func TestParseErrors(t *testing.T) {
	s := schema.MustParse("R(a:T1)")
	bad := []string{
		"R T1:1",
		"R(",
		"(T1:1)",
		"R(x)",
		"R(T1:1, T1:2)", // arity
		"R(T2:1)",       // type
		"ZZ(T1:1)",      // unknown relation
	}
	for _, text := range bad {
		if _, err := Parse(s, text); err == nil {
			t.Errorf("Parse(%q): want error", text)
		}
	}
}

func TestParseDumpFuzz(t *testing.T) {
	s := schema.MustParse("R(a*:T1, b:T2)\nS(c:T2, d:T3)")
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 40; trial++ {
		d := NewDatabase(s)
		for i := 0; i < rng.Intn(6); i++ {
			d.MustInsert("R",
				value.Value{Type: 1, N: int64(i + 1)},
				value.Value{Type: 2, N: int64(rng.Intn(5) + 1)})
			d.MustInsert("S",
				value.Value{Type: 2, N: int64(rng.Intn(5) + 1)},
				value.Value{Type: 3, N: int64(rng.Intn(5) + 1)})
		}
		d2, err := Parse(s, d.Dump())
		if err != nil {
			t.Fatal(err)
		}
		if !d.Equal(d2) {
			t.Fatalf("fuzz round trip failed:\n%s", d.Dump())
		}
	}
}
