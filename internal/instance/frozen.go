package instance

import (
	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// This file implements the frozen (interned) view of a database: every
// value interned to a dense value.ID and every relation body stored as
// one flat fixed-width row array.  The chase and the homomorphism
// search run their hot loops over these ID rows; surface values
// reappear only at the decode boundary (witnesses, dumps, errors).
// The frozen view is derived state — it is memoized per Database and
// invalidated by mutation, never mutated itself.

// FrozenRelation is one relation instance encoded as interned rows:
// rows holds NumRows()*Arity() IDs, row-major, in exactly the order of
// Relation.Tuples() (lexicographic by value), so positional row
// indexes mean the same thing in both representations.
type FrozenRelation struct {
	Scheme *schema.Relation
	arity  int
	rows   []value.ID
}

// NewFrozenRelation wraps pre-interned flat rows in row-major order —
// the bulk-load path for instances too large to stage through the
// map-backed Relation.  The row width is the scheme's arity.
func NewFrozenRelation(scheme *schema.Relation, rows []value.ID) *FrozenRelation {
	arity := scheme.Arity()
	invariant.Mustf(arity > 0 && len(rows)%arity == 0,
		"instance: frozen %q: %d cells is not a multiple of arity %d", scheme.Name, len(rows), arity)
	return &FrozenRelation{Scheme: scheme, arity: arity, rows: rows}
}

// Arity returns the fixed row width.
func (f *FrozenRelation) Arity() int { return f.arity }

// NumRows returns the number of rows.
func (f *FrozenRelation) NumRows() int {
	if f.arity == 0 {
		return 0
	}
	return len(f.rows) / f.arity
}

// Row returns row i as a read-only slice view into the flat array.
func (f *FrozenRelation) Row(i int) []value.ID {
	return f.rows[i*f.arity : (i+1)*f.arity : (i+1)*f.arity]
}

// Cell returns position p of row i.
func (f *FrozenRelation) Cell(i, p int) value.ID { return f.rows[i*f.arity+p] }

// Frozen is the interned view of one Database: a shared Interner and
// one FrozenRelation per schema relation, positionally aligned with
// Database.Relations.  IDs are meaningful only relative to this view's
// Interner and must be decoded before they escape it.
type Frozen struct {
	Schema    *schema.Schema
	Interner  *value.Interner
	Relations []*FrozenRelation
}

// FreezeDatabase builds the interned view of d: values are interned in
// deterministic first-occurrence order (relations in schema order,
// tuples in sorted order, positions left to right), so freezing equal
// databases always yields identical ID tables and row arrays.
func FreezeDatabase(d *Database) *Frozen {
	f := &Frozen{
		Schema:    d.Schema,
		Interner:  value.NewInterner(d.Size()),
		Relations: make([]*FrozenRelation, len(d.Relations)),
	}
	for i, r := range d.Relations {
		arity := 0
		if r.Scheme != nil {
			arity = r.Scheme.Arity()
		}
		tuples := r.Tuples()
		if arity == 0 && len(tuples) > 0 {
			arity = len(tuples[0])
		}
		fr := &FrozenRelation{Scheme: r.Scheme, arity: arity}
		fr.rows = make([]value.ID, 0, len(tuples)*arity)
		for _, t := range tuples {
			for _, v := range t {
				fr.rows = append(fr.rows, f.Interner.Intern(v))
			}
		}
		f.Relations[i] = fr
	}
	return f
}

// DecodeTuple decodes row i of relation ri back to surface values.
func (f *Frozen) DecodeTuple(ri, i int) Tuple {
	fr := f.Relations[ri]
	out := make(Tuple, fr.arity)
	for p := 0; p < fr.arity; p++ {
		v, ok := f.Interner.Decode(fr.Cell(i, p))
		invariant.Mustf(ok, "instance: frozen row %d of relation %d holds foreign ID", i, ri)
		out[p] = v
	}
	return out
}

// Frozen returns the memoized interned view of d, rebuilding it only
// after a mutation.  Like Tuples(), the result must be treated as
// read-only, and concurrent readers are safe as long as no writer runs.
func (d *Database) Frozen() *Frozen {
	d.frozenMu.Lock()
	defer d.frozenMu.Unlock()
	if d.frozenMemo != nil {
		fresh := true
		for i, r := range d.Relations {
			if r.versionSnapshot() != d.frozenVers[i] {
				fresh = false
				break
			}
		}
		if fresh {
			return d.frozenMemo
		}
	}
	vers := make([]uint64, len(d.Relations))
	for i, r := range d.Relations {
		vers[i] = r.versionSnapshot()
	}
	d.frozenMemo, d.frozenVers = FreezeDatabase(d), vers
	return d.frozenMemo
}
