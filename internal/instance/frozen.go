package instance

import (
	"sync"

	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// This file implements the frozen (interned) view of a database: every
// value interned to a dense value.ID and every relation body stored as
// one flat fixed-width row array.  The chase and the homomorphism
// search run their hot loops over these ID rows; surface values
// reappear only at the decode boundary (witnesses, dumps, errors).
// The frozen view is derived state — it is memoized per Database and
// invalidated by mutation, never mutated itself.

// FrozenRelation is one relation instance encoded as interned rows:
// rows holds NumRows()*Arity() IDs, row-major, in exactly the order of
// Relation.Tuples() (lexicographic by value), so positional row
// indexes mean the same thing in both representations.
type FrozenRelation struct {
	Scheme *schema.Relation
	arity  int
	rows   []value.ID

	// distinct memoizes per-column distinct-value counts for the search
	// cost model.  It is built lazily, one column at a time, on first
	// request — never during FreezeDatabase, so bulk freezing stays on
	// its allocation budget — and guarded by its own mutex so concurrent
	// readers of a shared frozen view stay safe.
	distinctMu sync.Mutex
	distinct   []int

	// idxMemo caches derived read-only access structures (hash indexes,
	// keyed by the caller's signature of the indexed positions).  Like
	// distinct, it exists because the frozen view is immutable: anything
	// derived from the rows can be computed once and shared by every
	// search against this view.
	idxMu   sync.RWMutex
	idxMemo map[string]any
}

// NewFrozenRelation wraps pre-interned flat rows in row-major order —
// the bulk-load path for instances too large to stage through the
// map-backed Relation.  The row width is the scheme's arity.
func NewFrozenRelation(scheme *schema.Relation, rows []value.ID) *FrozenRelation {
	arity := scheme.Arity()
	invariant.Mustf(arity > 0 && len(rows)%arity == 0,
		"instance: frozen %q: %d cells is not a multiple of arity %d", scheme.Name, len(rows), arity)
	return &FrozenRelation{Scheme: scheme, arity: arity, rows: rows}
}

// Arity returns the fixed row width.
func (f *FrozenRelation) Arity() int { return f.arity }

// NumRows returns the number of rows.
func (f *FrozenRelation) NumRows() int {
	if f.arity == 0 {
		return 0
	}
	return len(f.rows) / f.arity
}

// Row returns row i as a read-only slice view into the flat array.
func (f *FrozenRelation) Row(i int) []value.ID {
	return f.rows[i*f.arity : (i+1)*f.arity : (i+1)*f.arity]
}

// Cell returns position p of row i.
func (f *FrozenRelation) Cell(i, p int) value.ID { return f.rows[i*f.arity+p] }

// DistinctAt returns the number of distinct IDs in column p — the
// cardinality statistic the adaptive search planner turns into
// per-probe candidate estimates.  The count is computed on first
// request and memoized; the frozen view is immutable, so it never goes
// stale.  Safe for concurrent use.
func (f *FrozenRelation) DistinctAt(p int) int {
	n := f.NumRows()
	if n == 0 || p < 0 || p >= f.arity {
		return 0
	}
	f.distinctMu.Lock()
	defer f.distinctMu.Unlock()
	if f.distinct == nil {
		f.distinct = make([]int, f.arity)
	}
	if d := f.distinct[p]; d > 0 {
		return d
	}
	seen := make(map[value.ID]struct{}, n)
	for i := 0; i < n; i++ {
		seen[f.Cell(i, p)] = struct{}{}
	}
	f.distinct[p] = len(seen)
	return f.distinct[p]
}

// IndexMemo returns the cached derived structure stored under sig,
// building and caching it on first request.  The build callback may
// decline (returning ok=false, e.g. on context cancellation); nothing
// is cached then and the next caller builds afresh.  The build runs
// under the write lock, so concurrent requests for one signature do
// the work exactly once and everyone else blocks until it is shared —
// the result must be treated as read-only.
func (f *FrozenRelation) IndexMemo(sig string, build func() (any, bool)) (any, bool) {
	f.idxMu.RLock()
	v, hit := f.idxMemo[sig]
	f.idxMu.RUnlock()
	if hit {
		return v, true
	}
	f.idxMu.Lock()
	defer f.idxMu.Unlock()
	if v, hit := f.idxMemo[sig]; hit {
		return v, true
	}
	v, ok := build()
	if !ok {
		return nil, false
	}
	if f.idxMemo == nil {
		f.idxMemo = make(map[string]any)
	}
	f.idxMemo[sig] = v
	return v, true
}

// Frozen is the interned view of one Database: a shared Interner and
// one FrozenRelation per schema relation, positionally aligned with
// Database.Relations.  IDs are meaningful only relative to this view's
// Interner and must be decoded before they escape it.
type Frozen struct {
	Schema    *schema.Schema
	Interner  *value.Interner
	Relations []*FrozenRelation

	planMu   sync.RWMutex
	planMemo map[any]any
}

// PlanMemo returns the cached derived structure stored under key,
// building and caching it on first request — the frozen view's
// prepared-plan cache.  A compiled search plan is a pure function of
// the query and this view's relation cardinalities, so repeated
// decisions against one frozen database (engine replays, containment
// in both directions, benchmark passes) share a single compilation.
// The build runs under the write lock and its result must be treated
// as read-only.
func (f *Frozen) PlanMemo(key any, build func() any) any {
	f.planMu.RLock()
	v, hit := f.planMemo[key]
	f.planMu.RUnlock()
	if hit {
		return v
	}
	f.planMu.Lock()
	defer f.planMu.Unlock()
	if v, hit := f.planMemo[key]; hit {
		return v
	}
	v = build()
	if f.planMemo == nil {
		f.planMemo = make(map[any]any)
	}
	f.planMemo[key] = v
	return v
}

// FreezeDatabase builds the interned view of d: values are interned in
// deterministic first-occurrence order (relations in schema order,
// tuples in sorted order, positions left to right), so freezing equal
// databases always yields identical ID tables and row arrays.
func FreezeDatabase(d *Database) *Frozen {
	f := &Frozen{
		Schema:    d.Schema,
		Interner:  value.NewInterner(d.Size()),
		Relations: make([]*FrozenRelation, len(d.Relations)),
	}
	for i, r := range d.Relations {
		arity := 0
		if r.Scheme != nil {
			arity = r.Scheme.Arity()
		}
		tuples := r.Tuples()
		if arity == 0 && len(tuples) > 0 {
			arity = len(tuples[0])
		}
		fr := &FrozenRelation{Scheme: r.Scheme, arity: arity}
		fr.rows = make([]value.ID, 0, len(tuples)*arity)
		for _, t := range tuples {
			for _, v := range t {
				fr.rows = append(fr.rows, f.Interner.Intern(v))
			}
		}
		f.Relations[i] = fr
	}
	return f
}

// DecodeTuple decodes row i of relation ri back to surface values.
func (f *Frozen) DecodeTuple(ri, i int) Tuple {
	fr := f.Relations[ri]
	out := make(Tuple, fr.arity)
	for p := 0; p < fr.arity; p++ {
		v, ok := f.Interner.Decode(fr.Cell(i, p))
		invariant.Mustf(ok, "instance: frozen row %d of relation %d holds foreign ID", i, ri)
		out[p] = v
	}
	return out
}

// Frozen returns the memoized interned view of d, rebuilding it only
// after a mutation.  Like Tuples(), the result must be treated as
// read-only, and concurrent readers are safe as long as no writer runs.
func (d *Database) Frozen() *Frozen {
	d.frozenMu.Lock()
	defer d.frozenMu.Unlock()
	if d.frozenMemo != nil {
		fresh := true
		for i, r := range d.Relations {
			if r.versionSnapshot() != d.frozenVers[i] {
				fresh = false
				break
			}
		}
		if fresh {
			return d.frozenMemo
		}
	}
	vers := make([]uint64, len(d.Relations))
	for i, r := range d.Relations {
		vers[i] = r.versionSnapshot()
	}
	d.frozenMemo, d.frozenVers = FreezeDatabase(d), vers
	return d.frozenMemo
}
