// Package instance implements database instances of relational schemas:
// tuples, relation instances (sets of tuples), database instances, and the
// checks the paper's proofs rely on — key-dependency satisfaction,
// functional-dependency satisfaction, attribute-specificity, and the key
// projection π_κ.
package instance

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Tuple is one row of a relation instance.
type Tuple []value.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Equal reports component-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if t[i] != u[i] {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically.
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	}
	return 0
}

// Project returns the tuple restricted to the given positions, in order.
func (t Tuple) Project(positions []int) Tuple {
	out := make(Tuple, len(positions))
	for i, p := range positions {
		out[i] = t[p]
	}
	return out
}

// String renders "(T1:1, T2:5)".
func (t Tuple) String() string {
	parts := make([]string, len(t))
	for i, v := range t {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func (t Tuple) key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", v.Type, v.N)
	}
	return b.String()
}

// Relation is an instance of one relation scheme: a set of tuples of the
// scheme's type.  The zero Relation is an empty instance (of unknown
// scheme); use NewRelation to bind a scheme.
type Relation struct {
	Scheme *schema.Relation
	tuples map[string]Tuple
	// sortedMu guards sorted, the memoized Tuples() result.  Reads far
	// outnumber writes (the homomorphism search fetches the sorted order
	// once per atom per search, concurrently across engine workers), so
	// the sort runs once per mutation rather than once per call.
	sortedMu sync.RWMutex
	sorted   []Tuple
	// version counts mutations; the database-level frozen (interned)
	// view memoized in frozen.go compares snapshots of it to decide
	// whether a rebuild is due.
	version uint64
}

// NewRelation returns an empty instance of the given scheme.
func NewRelation(scheme *schema.Relation) *Relation {
	return &Relation{Scheme: scheme, tuples: make(map[string]Tuple)}
}

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Insert adds t (copied) to the instance.  It rejects arity and type
// mismatches with the scheme.  Re-inserting an existing tuple is a no-op.
func (r *Relation) Insert(t Tuple) error {
	if r.Scheme != nil {
		if len(t) != len(r.Scheme.Attrs) {
			return fmt.Errorf("instance: tuple arity %d, scheme %q wants %d", len(t), r.Scheme.Name, len(r.Scheme.Attrs))
		}
		for i, v := range t {
			if v.Type != r.Scheme.Attrs[i].Type {
				return fmt.Errorf("instance: tuple position %d has type %v, scheme %q wants %v",
					i, v.Type, r.Scheme.Name, r.Scheme.Attrs[i].Type)
			}
		}
	}
	if r.tuples == nil {
		r.tuples = make(map[string]Tuple)
	}
	r.tuples[t.key()] = t.Clone()
	r.invalidateSorted()
	return nil
}

// MustInsert is Insert but panics on error; for tests and fixtures.
func (r *Relation) MustInsert(t Tuple) {
	invariant.Must(r.Insert(t))
}

// Has reports whether the instance contains t.
func (r *Relation) Has(t Tuple) bool {
	_, ok := r.tuples[t.key()]
	return ok
}

// Delete removes t if present.
func (r *Relation) Delete(t Tuple) {
	delete(r.tuples, t.key())
	r.invalidateSorted()
}

// invalidateSorted drops the memoized sorted order after a mutation.
func (r *Relation) invalidateSorted() {
	r.sortedMu.Lock()
	r.sorted = nil
	r.version++
	r.sortedMu.Unlock()
}

// versionSnapshot returns the current mutation count.
func (r *Relation) versionSnapshot() uint64 {
	r.sortedMu.RLock()
	v := r.version
	r.sortedMu.RUnlock()
	return v
}

// Tuples returns the tuples in deterministic (lexicographic) order.  The
// order is computed once per mutation and memoized, so repeated calls on
// a stable instance are O(1); callers must treat the returned slice as
// read-only.  Concurrent readers are safe as long as no writer runs.
func (r *Relation) Tuples() []Tuple {
	r.sortedMu.RLock()
	out := r.sorted
	r.sortedMu.RUnlock()
	if out != nil {
		return out
	}
	r.sortedMu.Lock()
	defer r.sortedMu.Unlock()
	if r.sorted == nil {
		out = make([]Tuple, 0, len(r.tuples))
		for _, t := range r.tuples {
			out = append(out, t)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
		r.sorted = out
	}
	return r.sorted
}

// Clone returns a deep copy sharing the scheme.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Scheme)
	for k, t := range r.tuples {
		c.tuples[k] = t.Clone()
	}
	return c
}

// Equal reports whether r and s contain exactly the same tuples.
func (r *Relation) Equal(s *Relation) bool {
	if r.Len() != s.Len() {
		return false
	}
	for k := range r.tuples {
		if _, ok := s.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every tuple of r is in s.
func (r *Relation) SubsetOf(s *Relation) bool {
	if r.Len() > s.Len() {
		return false
	}
	for k := range r.tuples {
		if _, ok := s.tuples[k]; !ok {
			return false
		}
	}
	return true
}

// SatisfiesKey reports whether the instance satisfies the scheme's key
// dependency: no two distinct tuples agree on all key attributes.  An
// unkeyed scheme is vacuously satisfied.
func (r *Relation) SatisfiesKey() bool {
	if r.Scheme == nil || !r.Scheme.Keyed() {
		return true
	}
	return r.SatisfiesFD(r.Scheme.KeyPositions(), allPositions(len(r.Scheme.Attrs)))
}

// SatisfiesFD reports whether the instance satisfies the functional
// dependency X → Y given as position sets: every pair of tuples agreeing
// on X also agrees on Y.
func (r *Relation) SatisfiesFD(x, y []int) bool {
	seen := make(map[string]Tuple, len(r.tuples))
	for _, t := range r.tuples {
		k := t.Project(x).key()
		if prev, ok := seen[k]; ok {
			for _, p := range y {
				if prev[p] != t[p] {
					return false
				}
			}
		} else {
			seen[k] = t
		}
	}
	return true
}

// Column returns the set of values appearing in attribute position p.
func (r *Relation) Column(p int) *value.Set {
	var s value.Set
	for _, t := range r.tuples {
		s.Add(t[p])
	}
	return &s
}

// String renders the scheme name and sorted tuples.
func (r *Relation) String() string {
	var b strings.Builder
	name := "?"
	if r.Scheme != nil {
		name = r.Scheme.Name
	}
	b.WriteString(name)
	b.WriteString(" {")
	for i, t := range r.Tuples() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

func allPositions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Database is a database instance of a schema: one relation instance per
// relation scheme, in schema order.
type Database struct {
	Schema    *schema.Schema
	Relations []*Relation
	// frozenMu guards the memoized interned view (frozen.go).
	frozenMu   sync.Mutex
	frozenMemo *Frozen
	frozenVers []uint64
}

// NewDatabase returns an empty instance of s.
func NewDatabase(s *schema.Schema) *Database {
	d := &Database{Schema: s, Relations: make([]*Relation, len(s.Relations))}
	for i, r := range s.Relations {
		d.Relations[i] = NewRelation(r)
	}
	return d
}

// Relation returns the instance of the named relation, or nil.
func (d *Database) Relation(name string) *Relation {
	i := d.Schema.RelationIndex(name)
	if i < 0 {
		return nil
	}
	return d.Relations[i]
}

// Insert adds a tuple to the named relation.
func (d *Database) Insert(rel string, t Tuple) error {
	r := d.Relation(rel)
	if r == nil {
		return fmt.Errorf("instance: no relation %q", rel)
	}
	return r.Insert(t)
}

// MustInsert is Insert but panics on error.
func (d *Database) MustInsert(rel string, vals ...value.Value) {
	invariant.Must(d.Insert(rel, Tuple(vals)))
}

// Clone returns a deep copy.
func (d *Database) Clone() *Database {
	c := &Database{Schema: d.Schema, Relations: make([]*Relation, len(d.Relations))}
	for i, r := range d.Relations {
		c.Relations[i] = r.Clone()
	}
	return c
}

// Equal reports whether d and e have identical contents relation-wise.
// The schemas must have the same relation count; relations are compared
// positionally.
func (d *Database) Equal(e *Database) bool {
	if len(d.Relations) != len(e.Relations) {
		return false
	}
	for i := range d.Relations {
		if !d.Relations[i].Equal(e.Relations[i]) {
			return false
		}
	}
	return true
}

// SatisfiesKeys reports whether every relation instance satisfies its key
// dependency — the paper's criterion for an instance of a keyed schema.
func (d *Database) SatisfiesKeys() bool {
	for _, r := range d.Relations {
		if !r.SatisfiesKey() {
			return false
		}
	}
	return true
}

// NonEmpty reports whether every relation instance is non-empty (several
// of the paper's constructions require this).
func (d *Database) NonEmpty() bool {
	for _, r := range d.Relations {
		if r.Len() == 0 {
			return false
		}
	}
	return true
}

// Size returns the total number of tuples.
func (d *Database) Size() int {
	n := 0
	for _, r := range d.Relations {
		n += r.Len()
	}
	return n
}

// ActiveDomain returns the set of all values occurring in d.
func (d *Database) ActiveDomain() *value.Set {
	var s value.Set
	for _, r := range d.Relations {
		for _, t := range r.tuples {
			for _, v := range t {
				s.Add(v)
			}
		}
	}
	return &s
}

// AttributeSpecific reports whether d is attribute-specific: distinct
// attributes (across the whole schema) share no values.  This is the
// paper's Definition in §2 and the key gadget of most lemma proofs.
func (d *Database) AttributeSpecific() bool {
	cols := d.attributeColumns()
	for i := range cols {
		for j := i + 1; j < len(cols); j++ {
			if cols[i].Intersects(cols[j]) {
				return false
			}
		}
	}
	return true
}

func (d *Database) attributeColumns() []*value.Set {
	var cols []*value.Set
	for _, r := range d.Relations {
		if r.Scheme == nil {
			continue
		}
		for p := range r.Scheme.Attrs {
			cols = append(cols, r.Column(p))
		}
	}
	return cols
}

// String renders every relation instance on its own line.
func (d *Database) String() string {
	parts := make([]string, len(d.Relations))
	for i, r := range d.Relations {
		parts[i] = r.String()
	}
	return strings.Join(parts, "\n")
}

// ProjectKappa computes π_κ(d): the instance of κ(S) obtained by
// projecting every relation onto its key attributes.  kschema and pos must
// come from schema.Kappa(d.Schema).
func ProjectKappa(d *Database, kschema *schema.Schema, pos [][]int) *Database {
	out := NewDatabase(kschema)
	for i, r := range d.Relations {
		for _, t := range r.tuples {
			// Projection of a set: duplicates collapse.
			out.Relations[i].MustInsert(t.Project(pos[i]))
		}
	}
	return out
}
