package value

import "testing"

func TestInternerDenseStableIDs(t *testing.T) {
	in := NewInterner(4)
	vs := []Value{{Type: 1, N: 5}, {Type: 2, N: 5}, {Type: 1, N: 7}, {Type: 1, N: 5}}
	ids := make([]ID, len(vs))
	for i, v := range vs {
		ids[i] = in.Intern(v)
	}
	if ids[0] != 0 || ids[1] != 1 || ids[2] != 2 {
		t.Fatalf("IDs not dense in first-intern order: %v", ids)
	}
	if ids[3] != ids[0] {
		t.Fatalf("re-interning %v gave %d, first gave %d", vs[3], ids[3], ids[0])
	}
	if in.NumConsts() != 3 || in.Len() != 3 {
		t.Fatalf("NumConsts=%d Len=%d, want 3", in.NumConsts(), in.Len())
	}
	for i, v := range vs {
		got, ok := in.Decode(ids[i])
		if !ok || got != v {
			t.Fatalf("Decode(%d) = %v,%v, want %v", ids[i], got, ok, v)
		}
	}
}

func TestInternerNullsNeverCollideWithConstants(t *testing.T) {
	var in Interner
	v := Value{Type: 3, N: 9}
	c := in.Intern(v)
	n := in.InternNull(v)
	if c == n {
		t.Fatalf("constant and null ID collide: %d", c)
	}
	if c.IsNull() {
		t.Fatalf("constant ID %d reports IsNull", c)
	}
	if !n.IsNull() {
		t.Fatalf("null ID %d does not report IsNull", n)
	}
	if n2 := in.InternNull(v); n2 != n {
		t.Fatalf("re-interning null gave %d, first gave %d", n2, n)
	}
	if got, ok := in.Decode(n); !ok || got != v {
		t.Fatalf("Decode(null %d) = %v,%v, want %v", n, got, ok, v)
	}
	if in.NumNulls() != 1 || in.Len() != 2 {
		t.Fatalf("NumNulls=%d Len=%d, want 1,2", in.NumNulls(), in.Len())
	}
}

func TestInternerLookupDoesNotIntern(t *testing.T) {
	var in Interner
	v := Value{Type: 1, N: 1}
	if _, ok := in.Lookup(v); ok {
		t.Fatal("Lookup found a value in an empty interner")
	}
	if _, ok := in.LookupNull(v); ok {
		t.Fatal("LookupNull found a value in an empty interner")
	}
	id := in.Intern(v)
	got, ok := in.Lookup(v)
	if !ok || got != id {
		t.Fatalf("Lookup = %d,%v, want %d,true", got, ok, id)
	}
	if in.Len() != 1 {
		t.Fatalf("Lookup interned: Len=%d", in.Len())
	}
}

func TestInternerDecodeRejectsForeignIDs(t *testing.T) {
	var in Interner
	in.Intern(Value{Type: 1, N: 1})
	if _, ok := in.Decode(5); ok {
		t.Fatal("decoded an unassigned constant ID")
	}
	if _, ok := in.Decode(NullTag | 0); ok {
		t.Fatal("decoded an unassigned null ID")
	}
	if _, ok := in.Decode(^ID(0)); ok {
		t.Fatal("decoded the top-of-space ID")
	}
}

func TestInternerDeterministicAcrossRuns(t *testing.T) {
	build := func() *Interner {
		in := NewInterner(8)
		for ty := Type(1); ty <= 3; ty++ {
			for n := int64(1); n <= 5; n++ {
				in.Intern(Value{Type: ty, N: n})
			}
			in.InternNull(Value{Type: ty, N: 1})
		}
		return in
	}
	a, b := build(), build()
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i, v := range a.consts {
		if b.consts[i] != v {
			t.Fatalf("constant table diverges at %d: %v vs %v", i, v, b.consts[i])
		}
	}
	for i, v := range a.nulls {
		if b.nulls[i] != v {
			t.Fatalf("null table diverges at %d: %v vs %v", i, v, b.nulls[i])
		}
	}
}
