package value

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTypeString(t *testing.T) {
	tests := []struct {
		t    Type
		want string
	}{
		{NoType, "T?"},
		{Type(1), "T1"},
		{Type(42), "T42"},
	}
	for _, tt := range tests {
		if got := tt.t.String(); got != tt.want {
			t.Errorf("Type(%d).String() = %q, want %q", tt.t, got, tt.want)
		}
	}
}

func TestValueString(t *testing.T) {
	v := Value{Type: 3, N: 17}
	if got := v.String(); got != "T3:17" {
		t.Errorf("String() = %q, want T3:17", got)
	}
	var zero Value
	if got := zero.String(); got != "<zero>" {
		t.Errorf("zero.String() = %q", got)
	}
}

func TestIsZero(t *testing.T) {
	if !(Value{}).IsZero() {
		t.Error("zero Value should report IsZero")
	}
	if (Value{Type: 1, N: 0}).IsZero() {
		t.Error("typed value should not report IsZero")
	}
}

func TestCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Value{1, 1}, Value{1, 1}, 0},
		{Value{1, 1}, Value{1, 2}, -1},
		{Value{1, 2}, Value{1, 1}, 1},
		{Value{1, 9}, Value{2, 1}, -1},
		{Value{2, 1}, Value{1, 9}, 1},
	}
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("%v.Compare(%v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(at, bt int8, an, bn int16) bool {
		a := Value{Type: Type(uint8(at)%4 + 1), N: int64(an)}
		b := Value{Type: Type(uint8(bt)%4 + 1), N: int64(bn)}
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSort(t *testing.T) {
	vs := []Value{{2, 1}, {1, 5}, {1, 2}, {3, 0}, {1, 2}}
	Sort(vs)
	if !sort.SliceIsSorted(vs, func(i, j int) bool { return vs[i].Less(vs[j]) || vs[i] == vs[j] && i < j }) {
		t.Errorf("not sorted: %v", vs)
	}
	want := []Value{{1, 2}, {1, 2}, {1, 5}, {2, 1}, {3, 0}}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("Sort = %v, want %v", vs, want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	f := func(tt uint8, n int16) bool {
		v := Value{Type: Type(tt%100 + 1), N: int64(n)}
		got, err := Parse(v.String())
		return err == nil && got == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"", "T1", "1:2", "Tx:2", "T1:y", "T-3:4", "T0:1"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q): want error", s)
		}
	}
}

func TestAllocatorFreshDistinct(t *testing.T) {
	var a Allocator
	seen := map[Value]bool{}
	for i := 0; i < 100; i++ {
		v := a.Fresh(Type(1 + i%3))
		if seen[v] {
			t.Fatalf("Fresh returned duplicate %v", v)
		}
		seen[v] = true
	}
}

func TestAllocatorFreshN(t *testing.T) {
	var a Allocator
	vs := a.FreshN(2, 5)
	if len(vs) != 5 {
		t.Fatalf("FreshN returned %d values", len(vs))
	}
	for i, v := range vs {
		if v.Type != 2 {
			t.Errorf("value %d has type %v", i, v.Type)
		}
		for j := i + 1; j < len(vs); j++ {
			if v == vs[j] {
				t.Errorf("duplicate values %v at %d and %d", v, i, j)
			}
		}
	}
}

func TestAllocatorReserve(t *testing.T) {
	var a Allocator
	a.Reserve(Value{Type: 7, N: 40})
	v := a.Fresh(7)
	if v.N <= 40 {
		t.Errorf("Fresh after Reserve returned %v; want N > 40", v)
	}
	// Reserving a smaller value must not roll the counter back.
	a.Reserve(Value{Type: 7, N: 2})
	w := a.Fresh(7)
	if w.N <= v.N {
		t.Errorf("Fresh after low Reserve returned %v; want N > %d", w, v.N)
	}
}

func TestAllocatorReserveAll(t *testing.T) {
	var a Allocator
	a.ReserveAll([]Value{{1, 10}, {2, 20}})
	if v := a.Fresh(1); v.N <= 10 {
		t.Errorf("Fresh(1) = %v after ReserveAll", v)
	}
	if v := a.Fresh(2); v.N <= 20 {
		t.Errorf("Fresh(2) = %v after ReserveAll", v)
	}
}

func TestChoiceDeterministic(t *testing.T) {
	var c Choice
	v1 := c.Of(3)
	v2 := c.Of(3)
	if v1 != v2 {
		t.Errorf("Choice.Of not stable: %v vs %v", v1, v2)
	}
	if v1.Type != 3 {
		t.Errorf("Choice.Of(3).Type = %v", v1.Type)
	}
	var d Choice
	if d.Of(3) != v1 {
		t.Errorf("two zero Choices disagree: %v vs %v", d.Of(3), v1)
	}
}

func TestChoiceSet(t *testing.T) {
	var c Choice
	c.Set(Value{Type: 5, N: 99})
	if got := c.Of(5); got != (Value{Type: 5, N: 99}) {
		t.Errorf("Of(5) = %v after Set", got)
	}
}

func TestSetBasics(t *testing.T) {
	var s Set
	if s.Len() != 0 || s.Has(Value{1, 1}) {
		t.Fatal("zero Set should be empty")
	}
	if !s.Add(Value{1, 1}) {
		t.Error("first Add should report true")
	}
	if s.Add(Value{1, 1}) {
		t.Error("second Add of same value should report false")
	}
	s.Add(Value{2, 1})
	s.Add(Value{1, 0})
	got := s.Values()
	want := []Value{{1, 0}, {1, 1}, {2, 1}}
	if len(got) != len(want) {
		t.Fatalf("Values() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Values() = %v, want %v", got, want)
		}
	}
}

func TestSetIntersects(t *testing.T) {
	var a, b Set
	a.Add(Value{1, 1})
	a.Add(Value{1, 2})
	b.Add(Value{1, 3})
	if a.Intersects(&b) || b.Intersects(&a) {
		t.Error("disjoint sets report intersection")
	}
	b.Add(Value{1, 2})
	if !a.Intersects(&b) || !b.Intersects(&a) {
		t.Error("overlapping sets report no intersection")
	}
}

func TestSetIntersectsSymmetricRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		var a, b Set
		for i := 0; i < rng.Intn(10); i++ {
			a.Add(Value{Type: Type(rng.Intn(2) + 1), N: int64(rng.Intn(6))})
		}
		for i := 0; i < rng.Intn(10); i++ {
			b.Add(Value{Type: Type(rng.Intn(2) + 1), N: int64(rng.Intn(6))})
		}
		if a.Intersects(&b) != b.Intersects(&a) {
			t.Fatalf("Intersects not symmetric: %v vs %v", a.Values(), b.Values())
		}
	}
}
