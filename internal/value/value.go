// Package value models the paper's universe of data: a countably infinite
// domain partitioned into disjoint, countably infinite attribute types.
//
// A Value is an atomic constant tagged with the attribute type it belongs
// to.  Because the type tag participates in equality, values of different
// attribute types are never equal, which realizes the paper's requirement
// that attribute types be disjoint subsets of the domain.
package value

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Type identifies an attribute type (one of the disjoint, countably
// infinite subsets of the domain).  Types are compared by identity.
type Type int32

// NoType is the zero Type; no valid value carries it.
const NoType Type = 0

// String returns a stable human-readable name such as "T3".
func (t Type) String() string {
	if t == NoType {
		return "T?"
	}
	return "T" + strconv.FormatInt(int64(t), 10)
}

// Value is an atomic constant of some attribute type.  The zero Value is
// invalid and belongs to no type.
type Value struct {
	Type Type
	N    int64
}

// IsZero reports whether v is the invalid zero Value.
func (v Value) IsZero() bool { return v.Type == NoType && v.N == 0 }

// String renders the value as, e.g., "T3:17".
func (v Value) String() string {
	if v.IsZero() {
		return "<zero>"
	}
	return fmt.Sprintf("%s:%d", v.Type, v.N)
}

// Compare orders values first by type, then by N.  It returns -1, 0, or +1.
func (v Value) Compare(w Value) int {
	switch {
	case v.Type < w.Type:
		return -1
	case v.Type > w.Type:
		return 1
	case v.N < w.N:
		return -1
	case v.N > w.N:
		return 1
	}
	return 0
}

// Less reports whether v orders strictly before w.
func (v Value) Less(w Value) bool { return v.Compare(w) < 0 }

// Sort sorts values in place in Compare order.
func Sort(vs []Value) {
	sort.Slice(vs, func(i, j int) bool { return vs[i].Less(vs[j]) })
}

// Parse parses the "T<type>:<n>" form produced by Value.String.
func Parse(s string) (Value, error) {
	i := strings.IndexByte(s, ':')
	if i < 0 || !strings.HasPrefix(s, "T") {
		return Value{}, fmt.Errorf("value: cannot parse %q: want T<type>:<n>", s)
	}
	t, err := strconv.ParseInt(s[1:i], 10, 32)
	if err != nil || t <= 0 {
		return Value{}, fmt.Errorf("value: bad type in %q", s)
	}
	n, err := strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil {
		return Value{}, fmt.Errorf("value: bad ordinal in %q", s)
	}
	return Value{Type: Type(t), N: n}, nil
}

// Allocator hands out fresh values per attribute type.  Fresh values are
// needed throughout the paper's constructions: attribute-specific instances,
// values "not among the constants of the queries", frozen variables for
// canonical databases, and the choice function f of the δ map.
//
// The zero Allocator is ready to use.  An Allocator is not safe for
// concurrent use.
type Allocator struct {
	next map[Type]int64
}

// Fresh returns a value of type t never before returned by this Allocator
// and distinct from every value reserved with Reserve.
func (a *Allocator) Fresh(t Type) Value {
	if a.next == nil {
		a.next = make(map[Type]int64)
	}
	a.next[t]++
	return Value{Type: t, N: a.next[t]}
}

// FreshN returns n distinct fresh values of type t.
func (a *Allocator) FreshN(t Type, n int) []Value {
	vs := make([]Value, n)
	for i := range vs {
		vs[i] = a.Fresh(t)
	}
	return vs
}

// Reserve marks v as used so Fresh never returns it (or anything below it).
func (a *Allocator) Reserve(v Value) {
	if a.next == nil {
		a.next = make(map[Type]int64)
	}
	if v.N > a.next[v.Type] {
		a.next[v.Type] = v.N
	}
}

// ReserveAll reserves every value in vs.
func (a *Allocator) ReserveAll(vs []Value) {
	for _, v := range vs {
		a.Reserve(v)
	}
}

// Choice is the paper's choice function f : attribute types → domain,
// associating each attribute type with one fixed constant of that type.
// It is used by the γ and δ maps of the κ-reduction (Theorem 9).
//
// The zero Choice is ready to use; it lazily picks value N=1 of each type
// the first time the type is requested, which keeps runs deterministic.
type Choice struct {
	pick map[Type]Value
}

// Of returns the chosen constant for attribute type t.
func (c *Choice) Of(t Type) Value {
	if c.pick == nil {
		c.pick = make(map[Type]Value)
	}
	if v, ok := c.pick[t]; ok {
		return v
	}
	v := Value{Type: t, N: 1}
	c.pick[t] = v
	return v
}

// Set overrides the chosen constant for v's type to be v itself.
func (c *Choice) Set(v Value) {
	if c.pick == nil {
		c.pick = make(map[Type]Value)
	}
	c.pick[v.Type] = v
}

// Set is an ordered set of values, useful for computing active domains.
// The zero Set is empty and ready to use.
type Set struct {
	m map[Value]struct{}
}

// Add inserts v, reporting whether it was newly added.
func (s *Set) Add(v Value) bool {
	if s.m == nil {
		s.m = make(map[Value]struct{})
	}
	if _, ok := s.m[v]; ok {
		return false
	}
	s.m[v] = struct{}{}
	return true
}

// Has reports membership.
func (s *Set) Has(v Value) bool {
	_, ok := s.m[v]
	return ok
}

// Len returns the number of members.
func (s *Set) Len() int { return len(s.m) }

// Values returns the members in Compare order.
func (s *Set) Values() []Value {
	vs := make([]Value, 0, len(s.m))
	for v := range s.m {
		vs = append(vs, v)
	}
	Sort(vs)
	return vs
}

// Intersects reports whether s and t share any member.
func (s *Set) Intersects(t *Set) bool {
	small, large := s, t
	if large.Len() < small.Len() {
		small, large = large, small
	}
	for v := range small.m {
		if large.Has(v) {
			return true
		}
	}
	return false
}
