package value

import "keyedeq/internal/invariant"

// This file implements value interning: a bijection between the values
// occurring in one database instance and dense uint32 IDs, assigned in
// first-intern order.  The hot loops of the chase and the homomorphism
// search compare and hash IDs instead of (Type, N) structs or encoded
// byte strings, which makes every probe a machine-word comparison and
// every index a flat array.
//
// The ID space is split by the top bit: constants occupy [0, NullTag)
// and labeled nulls occupy [NullTag, ...).  A value interned as a
// constant and the same value interned as a null therefore never share
// an ID — the chase's distinction between "the constant T1:3" and "a
// labeled null that happens to print like T1:3" survives encoding.
// IDs are meaningful only relative to the Interner that produced them
// and must not escape the frozen view they index (DESIGN.md §14).

// ID is a dense interned value identifier.  The zero ID is a valid
// constant ID (the first value interned), not a sentinel; absence is
// signaled by the ok results of Lookup, never by an ID value.
type ID uint32

// NullTag is the bit distinguishing labeled-null IDs from constant IDs.
const NullTag ID = 1 << 31

// IsNull reports whether id identifies a labeled null.
func (id ID) IsNull() bool { return id&NullTag != 0 }

// Interner assigns dense IDs to values.  IDs are handed out in intern
// order, so two Interners fed the same values in the same order build
// identical tables — the determinism the frozen-instance encoding and
// its differential tests rely on.  The zero Interner is ready to use.
// An Interner is not safe for concurrent mutation.
type Interner struct {
	constIDs map[Value]ID
	consts   []Value
	nullIDs  map[Value]ID
	nulls    []Value
}

// NewInterner returns an Interner with capacity hints for n constants.
func NewInterner(n int) *Interner {
	return &Interner{
		constIDs: make(map[Value]ID, n),
		consts:   make([]Value, 0, n),
	}
}

// Intern returns v's constant ID, assigning the next dense ID on first
// sight.  Interning the same value again returns the same ID.
//
//keyedeq:hot -- every cell of every frozen instance passes through here
func (in *Interner) Intern(v Value) ID {
	if id, ok := in.constIDs[v]; ok {
		return id
	}
	if in.constIDs == nil {
		in.constIDs = make(map[Value]ID)
	}
	id := ID(len(in.consts))
	// The overflow assertion hides behind the branch so the hot path
	// never boxes its arguments.
	if id >= NullTag {
		invariant.Mustf(false, "value: interner overflow: %d constants", len(in.consts))
	}
	in.constIDs[v] = id
	in.consts = append(in.consts, v)
	return id
}

// InternNull returns the labeled-null ID for v, assigning the next
// dense null ID (NullTag-tagged) on first sight.  The null namespace is
// independent of the constant namespace: the same surface value may
// carry both a constant ID and a null ID, and they never collide.
func (in *Interner) InternNull(v Value) ID {
	if id, ok := in.nullIDs[v]; ok {
		return id
	}
	if in.nullIDs == nil {
		in.nullIDs = make(map[Value]ID)
	}
	if ID(len(in.nulls)) >= NullTag {
		invariant.Mustf(false, "value: interner overflow: %d nulls", len(in.nulls))
	}
	id := NullTag | ID(len(in.nulls))
	in.nullIDs[v] = id
	in.nulls = append(in.nulls, v)
	return id
}

// Lookup returns v's constant ID without interning it.
func (in *Interner) Lookup(v Value) (ID, bool) {
	id, ok := in.constIDs[v]
	return id, ok
}

// LookupNull returns v's labeled-null ID without interning it.
func (in *Interner) LookupNull(v Value) (ID, bool) {
	id, ok := in.nullIDs[v]
	return id, ok
}

// Decode returns the value behind id.  It reports false for IDs this
// Interner never assigned — decoding is the boundary where IDs turn
// back into surface values, and a foreign ID must fail loudly there
// rather than alias an unrelated value.
func (in *Interner) Decode(id ID) (Value, bool) {
	if id.IsNull() {
		i := int(id &^ NullTag)
		if i >= len(in.nulls) {
			return Value{}, false
		}
		return in.nulls[i], true
	}
	if int(id) >= len(in.consts) {
		return Value{}, false
	}
	return in.consts[id], true
}

// NumConsts returns the number of interned constants.
func (in *Interner) NumConsts() int { return len(in.consts) }

// NumNulls returns the number of interned labeled nulls.
func (in *Interner) NumNulls() int { return len(in.nulls) }

// Len returns the total number of interned values.
func (in *Interner) Len() int { return len(in.consts) + len(in.nulls) }
