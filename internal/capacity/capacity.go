// Package capacity implements instance counting over finite domains —
// the "information capacity" view of schema equivalence the paper's
// introduction discusses and rejects: two schemas are
// cardinality-equivalent when they admit equally many instances, i.e.
// when a bijection exists between their instance sets [Miller et al.,
// Rosenthal & Reiner].  The paper points out this notion degenerates
// (over an infinite domain all schemas are equivalent), and this package
// makes the degeneracy concrete: Demonstrate returns keyed schemas that
// are cardinality-equivalent for every domain size yet not conjunctive
// query equivalent.
//
// Counting is exact (math/big):
//
//   - an unkeyed relation over a tuple space of size P admits 2^P
//     instances (any subset);
//
//   - a keyed relation with key space K and non-key space N admits
//     (N+1)^K instances (each key value is absent or maps to one of the
//     N non-key combinations);
//
//   - a schema's count is the product over its relations.
package capacity

import (
	"fmt"
	"math/big"

	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// DomainSizes assigns each attribute type a finite domain size.  The
// zero value is usable with Uniform.
type DomainSizes map[value.Type]int

// Uniform assigns size n to every type used by the schemas.
func Uniform(n int, ss ...*schema.Schema) DomainSizes {
	d := DomainSizes{}
	for _, s := range ss {
		for _, t := range s.Types() {
			d[t] = n
		}
	}
	return d
}

// CountRelation returns the number of instances of one relation scheme
// over the given domain sizes.
func CountRelation(r *schema.Relation, d DomainSizes) (*big.Int, error) {
	keySpace := big.NewInt(1)
	nonKeySpace := big.NewInt(1)
	for p, a := range r.Attrs {
		n, ok := d[a.Type]
		if !ok || n < 0 {
			return nil, fmt.Errorf("capacity: no domain size for %v", a.Type)
		}
		size := big.NewInt(int64(n))
		if r.IsKeyPos(p) {
			keySpace.Mul(keySpace, size)
		} else {
			nonKeySpace.Mul(nonKeySpace, size)
		}
	}
	if !r.Keyed() {
		// 2^(keySpace*nonKeySpace); keySpace is the full tuple space
		// here because no positions are keys.
		exp := new(big.Int).Mul(keySpace, nonKeySpace)
		if !exp.IsInt64() {
			return nil, fmt.Errorf("capacity: tuple space too large")
		}
		return new(big.Int).Exp(big.NewInt(2), exp, nil), nil
	}
	// (N+1)^K.
	base := new(big.Int).Add(nonKeySpace, big.NewInt(1))
	if !keySpace.IsInt64() {
		return nil, fmt.Errorf("capacity: key space too large")
	}
	return new(big.Int).Exp(base, keySpace, nil), nil
}

// CountInstances returns the number of key-satisfying instances of s
// over the given domain sizes.
func CountInstances(s *schema.Schema, d DomainSizes) (*big.Int, error) {
	total := big.NewInt(1)
	for _, r := range s.Relations {
		c, err := CountRelation(r, d)
		if err != nil {
			return nil, err
		}
		total.Mul(total, c)
	}
	return total, nil
}

// CardinalityEquivalent reports whether s1 and s2 admit equally many
// instances for every uniform domain size 1..maxSize.  This is the
// finite-domain shadow of the bijection-based equivalence the paper's
// introduction criticizes.
func CardinalityEquivalent(s1, s2 *schema.Schema, maxSize int) (bool, error) {
	for n := 1; n <= maxSize; n++ {
		d := Uniform(n, s1, s2)
		c1, err := CountInstances(s1, d)
		if err != nil {
			return false, err
		}
		c2, err := CountInstances(s2, d)
		if err != nil {
			return false, err
		}
		if c1.Cmp(c2) != 0 {
			return false, nil
		}
	}
	return true, nil
}

// Demonstrate returns a pair of keyed schemas that are
// cardinality-equivalent at every uniform domain size but NOT conjunctive
// query equivalent (they differ on attribute types, which counting over
// same-size domains cannot see) — the concrete witness for the paper's
// §1 argument that bijection-based equivalence is too weak.
func Demonstrate() (*schema.Schema, *schema.Schema) {
	s1 := schema.MustParse("r(a*:T1)")
	s2 := schema.MustParse("r(a*:T2)")
	return s1, s2
}
