package capacity

import (
	"math/big"
	"testing"

	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func count(t *testing.T, text string, n int) *big.Int {
	t.Helper()
	s := schema.MustParse(text)
	c, err := CountInstances(s, Uniform(n, s))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClosedForms(t *testing.T) {
	tests := []struct {
		schema string
		n      int
		want   int64
	}{
		// Unkeyed single attribute, domain 3: subsets of 3 values = 8.
		{"r(a:T1)", 3, 8},
		// Unkeyed binary, domain 2: subsets of 4 tuples = 16.
		{"r(a:T1, b:T1)", 2, 16},
		// Keyed single attribute: key present or absent per value = 2^3.
		{"r(a*:T1)", 3, 8},
		// Keyed with one non-key, domain 2: (2+1)^2 = 9.
		{"r(k*:T1, a:T1)", 2, 9},
		// Composite key, no non-keys: every subset of the 4 key pairs = 2^4.
		{"r(k1*:T1, k2*:T1)", 2, 16},
		// Two relations multiply: 8 * 8.
		{"r(a*:T1)\ns(b*:T1)", 3, 64},
		// Mixed types with uniform sizes.
		{"r(k*:T1, a:T2, b:T3)", 2, 25}, // (2*2+1)^2
	}
	for _, tt := range tests {
		got := count(t, tt.schema, tt.n)
		if got.Cmp(big.NewInt(tt.want)) != 0 {
			t.Errorf("Count(%q, n=%d) = %s, want %d", tt.schema, tt.n, got, tt.want)
		}
	}
}

// Brute force: enumerate every instance of a tiny relation and count the
// key-satisfying ones; must match the closed form.
func TestClosedFormAgainstEnumeration(t *testing.T) {
	cases := []string{
		"r(a*:T1)",
		"r(a:T1)",
		"r(k*:T1, a:T1)",
		"r(a:T1, b:T1)",
		"r(k1*:T1, k2*:T1)",
		"r(k*:T1, a:T1, b:T1)",
	}
	for _, text := range cases {
		for n := 1; n <= 2; n++ {
			s := schema.MustParse(text)
			r := s.Relations[0]
			// Enumerate all tuples over the domain.
			var tuples []instance.Tuple
			var build func(pos int, cur instance.Tuple)
			build = func(pos int, cur instance.Tuple) {
				if pos == r.Arity() {
					tuples = append(tuples, cur.Clone())
					return
				}
				for v := 1; v <= n; v++ {
					build(pos+1, append(cur, value.Value{Type: r.Attrs[pos].Type, N: int64(v)}))
				}
			}
			build(0, nil)
			// Count subsets that satisfy the key.
			total := 0
			for mask := 0; mask < 1<<uint(len(tuples)); mask++ {
				inst := instance.NewRelation(r)
				for i, tp := range tuples {
					if mask&(1<<uint(i)) != 0 {
						inst.MustInsert(tp)
					}
				}
				if inst.SatisfiesKey() {
					total++
				}
			}
			got := count(t, text, n)
			if got.Cmp(big.NewInt(int64(total))) != 0 {
				t.Errorf("%q n=%d: closed form %s, enumeration %d", text, n, got, total)
			}
		}
	}
}

func TestCountErrors(t *testing.T) {
	s := schema.MustParse("r(a*:T1)")
	if _, err := CountInstances(s, DomainSizes{}); err == nil {
		t.Error("missing domain size accepted")
	}
	if _, err := CountInstances(s, DomainSizes{1: -1}); err == nil {
		t.Error("negative domain size accepted")
	}
}

func TestCardinalityEquivalentDegenerate(t *testing.T) {
	// The demonstration pair: equal counts at every size, yet not CQ
	// equivalent (different key types).
	s1, s2 := Demonstrate()
	eq, err := CardinalityEquivalent(s1, s2, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Error("demonstration pair should be cardinality-equivalent")
	}
	if schema.Isomorphic(s1, s2) {
		t.Error("demonstration pair should NOT be isomorphic (≠ CQ equivalent)")
	}
}

func TestCardinalityDistinguishesSizes(t *testing.T) {
	// Schemas with genuinely different capacity are told apart.
	s1 := schema.MustParse("r(a*:T1)")
	s2 := schema.MustParse("r(a*:T1, b:T1)")
	eq, err := CardinalityEquivalent(s1, s2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Error("different-arity schemas should differ in capacity")
	}
}

func TestIsomorphicImpliesCardinalityEquivalent(t *testing.T) {
	// The sound direction: CQ-equivalent (isomorphic) schemas always
	// have equal counts.
	pairs := [][2]string{
		{"r(a*:T1, b:T2)", "s(x:T2, y*:T1)"},
		{"r(a*:T1)\ns(b*:T2)", "u(p*:T2)\nv(q*:T1)"},
	}
	for _, p := range pairs {
		s1 := schema.MustParse(p[0])
		s2 := schema.MustParse(p[1])
		if !schema.Isomorphic(s1, s2) {
			t.Fatalf("fixture should be isomorphic: %q vs %q", p[0], p[1])
		}
		eq, err := CardinalityEquivalent(s1, s2, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Errorf("isomorphic schemas with unequal counts: %q vs %q", p[0], p[1])
		}
	}
}

func TestUniform(t *testing.T) {
	s := schema.MustParse("r(a*:T1, b:T7)")
	d := Uniform(3, s)
	if d[1] != 3 || d[7] != 3 {
		t.Errorf("Uniform = %v", d)
	}
	if len(d) != 2 {
		t.Errorf("Uniform sized %d", len(d))
	}
}
