package ucq

import (
	"math/rand"
	"testing"

	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

var gs = schema.MustParse("E(src:T1, dst:T1)")

func TestParseValidate(t *testing.T) {
	u := MustParse(`
# in- or out-edge endpoints
V(X) :- E(X, Y).
V(Y) :- E(X, Y).
`)
	if len(u.Disjuncts) != 2 {
		t.Fatalf("disjuncts = %d", len(u.Disjuncts))
	}
	if err := u.Validate(gs); err != nil {
		t.Fatal(err)
	}
	if _, err := Parse(""); err == nil {
		t.Error("empty UCQ accepted")
	}
	if _, err := Parse("V(X) :- E(X, Y.\n"); err == nil {
		t.Error("malformed disjunct accepted")
	}
	// Arity mismatch across disjuncts.
	bad := MustParse("V(X) :- E(X, Y).\nV(X, Y) :- E(X, Y).")
	if err := bad.Validate(gs); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Type mismatch.
	s2 := schema.MustParse("E(src:T1, dst:T2)")
	bad2 := MustParse("V(X) :- E(X, Y).\nV(Y) :- E(X, Y).")
	if err := bad2.Validate(s2); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestEvalUnion(t *testing.T) {
	d := instance.NewDatabase(gs)
	d.MustInsert("E", value.Value{Type: 1, N: 1}, value.Value{Type: 1, N: 2})
	u := MustParse("V(X) :- E(X, Y).\nV(Y) :- E(X, Y).")
	out, err := Eval(u, d)
	if err != nil {
		t.Fatal(err)
	}
	// Endpoints of the single edge: {1, 2}.
	if out.Len() != 2 {
		t.Errorf("union answers: %s", out)
	}
}

func TestContainedSagivYannakakis(t *testing.T) {
	// Each disjunct of u1 contained in SOME disjunct of u2.
	u1 := MustParse("V(X) :- E(X, Y), X = Y.")            // self-loop
	u2 := MustParse("V(X) :- E(X, Y).\nV(Y) :- E(X, Y).") // any endpoint
	ok, err := Contained(u1, u2, gs, nil)
	if err != nil || !ok {
		t.Errorf("self-loop ⊑ endpoints: %v %v", ok, err)
	}
	ok, err = Contained(u2, u1, gs, nil)
	if err != nil || ok {
		t.Errorf("endpoints ⋢ self-loop: %v %v", ok, err)
	}
	// The interesting S-Y case: a disjunct contained in the UNION but in
	// no single disjunct.  For pure CQs over one relation this requires
	// the canonical-db test; construct with constants:
	// p: V(X) :- E(X, Y)  vs  u: V(X) :- E(X, Y), Y = c  ∪  V(X) :- E(X, Y).
	// Trivial but exercises the multi-disjunct path.
	u3 := MustParse("V(X) :- E(X, Y), Y = T1:5.\nV(X) :- E(X, Y).")
	p := MustParse("V(X) :- E(X, Y).")
	ok, err = Contained(p, u3, gs, nil)
	if err != nil || !ok {
		t.Errorf("p ⊑ u3: %v %v", ok, err)
	}
	// And u3 ≡ p (the selection disjunct is redundant).
	eq, err := Equivalent(p, u3, gs, nil)
	if err != nil || !eq {
		t.Errorf("u3 should equal p: %v %v", eq, err)
	}
}

func TestContainedErrors(t *testing.T) {
	u1 := MustParse("V(X) :- E(X, Y).")
	u2 := MustParse("V(X, Y) :- E(X, Y).")
	if _, err := Contained(u1, u2, gs, nil); err == nil {
		t.Error("arity mismatch accepted")
	}
	bad := MustParse("V(X) :- Z(X).")
	if _, err := Contained(bad, u1, gs, nil); err == nil {
		t.Error("invalid disjunct accepted")
	}
}

func TestMinimizeRemovesRedundantDisjunct(t *testing.T) {
	u := MustParse(`
V(X) :- E(X, Y).
V(X) :- E(X, Y), Y = T1:5.
V(X) :- E(X, Y), E(Y2, Z), Y = Y2.
`)
	m, err := Minimize(u, gs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Disjuncts) != 1 {
		t.Fatalf("Minimize kept %d disjuncts:\n%s", len(m.Disjuncts), m)
	}
	eq, err := Equivalent(u, m, gs, nil)
	if err != nil || !eq {
		t.Errorf("minimized UCQ not equivalent: %v %v", eq, err)
	}
	// Survivor disjuncts are cores.
	if len(m.Disjuncts[0].Body) != 1 {
		t.Errorf("survivor not minimized: %s", m.Disjuncts[0])
	}
}

func TestMinimizeKeepsIncomparable(t *testing.T) {
	u := MustParse("V(X) :- E(X, Y).\nV(Y) :- E(X, Y).")
	m, err := Minimize(u, gs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Disjuncts) != 2 {
		t.Errorf("incomparable disjuncts dropped: %s", m)
	}
}

func TestUCQUnderKeys(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	u1 := MustParse("V(K, A, B) :- R(K, A), R(K2, B), K = K2.")
	u2 := MustParse("V(K, A, A) :- R(K, A).\nV(K, K, K) :- R(K, A), K = A.")
	ok, err := Contained(u1, u2, s, deps)
	if err != nil || !ok {
		t.Errorf("containment under keys: %v %v", ok, err)
	}
	ok, err = Contained(u1, u2, s, nil)
	if err != nil || ok {
		t.Errorf("should fail without keys: %v %v", ok, err)
	}
}

// Differential: UCQ containment against exhaustive 2-node graphs.
func TestUCQContainmentDifferential(t *testing.T) {
	pool := []*Query{
		MustParse("V(X) :- E(X, Y)."),
		MustParse("V(Y) :- E(X, Y)."),
		MustParse("V(X) :- E(X, Y).\nV(Y) :- E(X, Y)."),
		MustParse("V(X) :- E(X, Y), X = Y."),
		MustParse("V(X) :- E(X, Y), X = Y.\nV(X) :- E(X, Y), E(Y2, Z), Y = Y2."),
	}
	type edge struct{ a, b int64 }
	edges := []edge{{1, 1}, {1, 2}, {2, 1}, {2, 2}}
	var dbs []*instance.Database
	for mask := 0; mask < 1<<len(edges); mask++ {
		d := instance.NewDatabase(gs)
		for i, e := range edges {
			if mask&(1<<i) != 0 {
				d.MustInsert("E", value.Value{Type: 1, N: e.a}, value.Value{Type: 1, N: e.b})
			}
		}
		dbs = append(dbs, d)
	}
	for i, u1 := range pool {
		for j, u2 := range pool {
			claim, err := Contained(u1, u2, gs, nil)
			if err != nil {
				t.Fatal(err)
			}
			truth := true
			for _, d := range dbs {
				a1, err := Eval(u1, d)
				if err != nil {
					t.Fatal(err)
				}
				a2, err := Eval(u2, d)
				if err != nil {
					t.Fatal(err)
				}
				if !a1.SubsetOf(a2) {
					truth = false
					break
				}
			}
			if claim != truth {
				t.Errorf("UCQ containment (%d,%d): claim %v, exhaustive %v\nu1:\n%s\nu2:\n%s",
					i, j, claim, truth, u1, u2)
			}
		}
	}
}

// Minimization preserves semantics on random graphs.
func TestUCQMinimizeSemanticsFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	fixtures := []*Query{
		MustParse("V(X) :- E(X, Y).\nV(X) :- E(X, Y), E(A, B), X = A.\nV(Y) :- E(X, Y)."),
		MustParse("V(X, Y) :- E(X, Y).\nV(X, Y) :- E(X, Y), X = Y."),
	}
	for _, u := range fixtures {
		m, err := Minimize(u, gs, nil)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 30; trial++ {
			d := gen.RandomGraph(rng, 3, rng.Intn(6))
			a1, err := Eval(u, d)
			if err != nil {
				t.Fatal(err)
			}
			a2, err := Eval(m, d)
			if err != nil {
				t.Fatal(err)
			}
			if !a1.Equal(a2) {
				t.Fatalf("Minimize changed semantics:\n%s\n->\n%s\non %s", u, m, d)
			}
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	u := MustParse("V(X) :- E(X, Y).\nV(Y) :- E(X, Y).")
	u2 := MustParse(u.String())
	if u.String() != u2.String() {
		t.Errorf("round trip changed UCQ:\n%s\nvs\n%s", u, u2)
	}
}
