// Package ucq extends the paper's query language to unions of
// conjunctive queries (UCQs) — the smallest class closed under the
// paper's operations plus union.  Containment is decided by the
// Sagiv–Yannakakis criterion: ∪pᵢ ⊑ ∪qⱼ iff every disjunct pᵢ is
// contained in the union, which the canonical-database test decides by
// evaluating every qⱼ over pᵢ's (chased) frozen database.  Minimization
// removes disjuncts contained in the union of the others and takes the
// core of each survivor.
package ucq

import (
	"fmt"
	"strings"

	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// Query is a union of conjunctive queries with identical head types.
type Query struct {
	Disjuncts []*cq.Query
}

// Parse reads a UCQ: one conjunctive query per line (blank lines and
// '#' comments ignored).
func Parse(text string) (*Query, error) {
	u := &Query{}
	for lineno, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := cq.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("ucq: line %d: %v", lineno+1, err)
		}
		u.Disjuncts = append(u.Disjuncts, q)
	}
	if len(u.Disjuncts) == 0 {
		return nil, fmt.Errorf("ucq: no disjuncts")
	}
	return u, nil
}

// MustParse is Parse but panics on error.
func MustParse(text string) *Query {
	u, err := Parse(text)
	invariant.Must(err)
	return u
}

// String renders one disjunct per line.
func (u *Query) String() string {
	parts := make([]string, len(u.Disjuncts))
	for i, q := range u.Disjuncts {
		parts[i] = q.String()
	}
	return strings.Join(parts, "\n")
}

// Validate checks every disjunct and that the head types agree.
func (u *Query) Validate(s *schema.Schema) error {
	if len(u.Disjuncts) == 0 {
		return fmt.Errorf("ucq: no disjuncts")
	}
	var ht []value.Type
	for i, q := range u.Disjuncts {
		if err := q.Validate(s); err != nil {
			return fmt.Errorf("ucq: disjunct %d: %v", i, err)
		}
		t, err := q.HeadType(s)
		if err != nil {
			return err
		}
		if ht == nil {
			ht = t
			continue
		}
		if len(t) != len(ht) {
			return fmt.Errorf("ucq: disjunct %d has arity %d, want %d", i, len(t), len(ht))
		}
		for p := range t {
			if t[p] != ht[p] {
				return fmt.Errorf("ucq: disjunct %d position %d has type %v, want %v", i, p, t[p], ht[p])
			}
		}
	}
	return nil
}

// HeadType returns the union's answer type.
func (u *Query) HeadType(s *schema.Schema) ([]value.Type, error) {
	if err := u.Validate(s); err != nil {
		return nil, err
	}
	return u.Disjuncts[0].HeadType(s)
}

// Eval evaluates the union: the set union of the disjuncts' answers.
func Eval(u *Query, d *instance.Database) (*instance.Relation, error) {
	var out *instance.Relation
	for _, q := range u.Disjuncts {
		a, err := cq.Eval(q, d)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = a
			continue
		}
		for _, t := range a.Tuples() {
			if err := out.Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Contained reports u1 ⊑ u2 over all instances of s satisfying deps
// (nil deps = all instances), by Sagiv–Yannakakis: each disjunct of u1
// must be contained in the union u2, decided on its chased canonical
// database.
func Contained(u1, u2 *Query, s *schema.Schema, deps []fd.FD) (bool, error) {
	if err := u1.Validate(s); err != nil {
		return false, err
	}
	if err := u2.Validate(s); err != nil {
		return false, err
	}
	t1, err := u1.HeadType(s)
	if err != nil {
		return false, err
	}
	t2, err := u2.HeadType(s)
	if err != nil {
		return false, err
	}
	if len(t1) != len(t2) {
		return false, fmt.Errorf("ucq: arity %d vs %d", len(t1), len(t2))
	}
	for p := range t1 {
		if t1[p] != t2[p] {
			return false, fmt.Errorf("ucq: head type mismatch at %d", p)
		}
	}
	for _, p := range u1.Disjuncts {
		ok, err := disjunctContainedInUnion(p, u2, s, deps)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// disjunctContainedInUnion decides p ⊑ ∪qⱼ on p's canonical database.
func disjunctContainedInUnion(p *cq.Query, u *Query, s *schema.Schema, deps []fd.FD) (bool, error) {
	tb := chase.NewTableau(s)
	vars, err := chase.Freeze(tb, p)
	if err != nil {
		return false, err
	}
	head, err := chase.HeadTerms(tb, p, vars)
	if err != nil {
		return false, err
	}
	if len(deps) > 0 {
		if _, err := tb.Run(deps); err != nil {
			return false, err
		}
	}
	if tb.Failed() {
		return true, nil
	}
	var alloc value.Allocator
	for _, c := range p.Constants() {
		alloc.Reserve(c)
	}
	for _, q := range u.Disjuncts {
		for _, c := range q.Constants() {
			alloc.Reserve(c)
		}
	}
	db, valOf, err := tb.ToDatabase(&alloc)
	if err != nil {
		return false, err
	}
	want := make(instance.Tuple, len(head))
	for i, h := range head {
		want[i] = valOf[h]
	}
	for _, q := range u.Disjuncts {
		ok, _, err := cq.HasAnswer(q, db, want)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Equivalent reports mutual containment.
func Equivalent(u1, u2 *Query, s *schema.Schema, deps []fd.FD) (bool, error) {
	ok, err := Contained(u1, u2, s, deps)
	if err != nil || !ok {
		return ok, err
	}
	return Contained(u2, u1, s, deps)
}

// Minimize returns an equivalent UCQ with redundant disjuncts removed
// (those contained in the union of the remaining ones) and each survivor
// replaced by its core.
func Minimize(u *Query, s *schema.Schema, deps []fd.FD) (*Query, error) {
	if err := u.Validate(s); err != nil {
		return nil, err
	}
	kept := append([]*cq.Query(nil), u.Disjuncts...)
	for i := 0; i < len(kept); i++ {
		if len(kept) == 1 {
			break
		}
		rest := &Query{}
		rest.Disjuncts = append(rest.Disjuncts, kept[:i]...)
		rest.Disjuncts = append(rest.Disjuncts, kept[i+1:]...)
		ok, err := disjunctContainedInUnion(kept[i], rest, s, deps)
		if err != nil {
			return nil, err
		}
		if ok {
			kept = append(kept[:i], kept[i+1:]...)
			i--
		}
	}
	out := &Query{Disjuncts: make([]*cq.Query, len(kept))}
	for i, q := range kept {
		core, err := containment.Minimize(q, s, deps)
		if err != nil {
			return nil, err
		}
		out.Disjuncts[i] = core
	}
	return out, nil
}
