package chase

import (
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

var keyed = schema.MustParse("R(k*:T1, a:T2, b:T3)")

func keyDeps(s *schema.Schema) []fd.FD { return fd.KeyFDs(s) }

func TestChaseEquatesOnKeyAgreement(t *testing.T) {
	tb := NewTableau(keyed)
	k := tb.NewNull(1)
	a1, a2 := tb.NewNull(2), tb.NewNull(2)
	b1, b2 := tb.NewNull(3), tb.NewNull(3)
	if err := tb.AddRow("R", []Term{k, a1, b1}); err != nil {
		t.Fatal(err)
	}
	if err := tb.AddRow("R", []Term{k, a2, b2}); err != nil {
		t.Fatal(err)
	}
	stats, err := tb.Run(keyDeps(keyed))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Failed() {
		t.Fatal("chase should succeed")
	}
	if !tb.Same(a1, a2) || !tb.Same(b1, b2) {
		t.Error("key chase did not equate non-key cells")
	}
	if stats.Merges < 2 {
		t.Errorf("Merges = %d, want >= 2", stats.Merges)
	}
}

func TestChaseLeavesDistinctKeysAlone(t *testing.T) {
	tb := NewTableau(keyed)
	k1, k2 := tb.NewNull(1), tb.NewNull(1)
	a1, a2 := tb.NewNull(2), tb.NewNull(2)
	b1, b2 := tb.NewNull(3), tb.NewNull(3)
	tb.AddRow("R", []Term{k1, a1, b1})
	tb.AddRow("R", []Term{k2, a2, b2})
	if _, err := tb.Run(keyDeps(keyed)); err != nil {
		t.Fatal(err)
	}
	if tb.Same(a1, a2) || tb.Same(k1, k2) {
		t.Error("chase equated cells of rows with distinct keys")
	}
}

func TestChaseCascades(t *testing.T) {
	// R(a1,x), R(a2,y) only agree on their key after R(k1,a1), R(k1,a2)
	// force a1 = a2.  The dependent rows come first, so the delta chase
	// has already bucketed them when the trigger fires and must requeue
	// them into a second wave — exercising the rowsOfRoot machinery.
	s := schema.MustParse("R(k*:T1, a:T1)")
	build := func() (tb *Tableau, x, y Term) {
		tb = NewTableau(s)
		k1 := tb.NewNull(1)
		a1 := tb.NewNull(1)
		a2 := tb.NewNull(1)
		x, y = tb.NewNull(1), tb.NewNull(1)
		// R(a1, x), R(a2, y): after a1=a2 forces x=y.
		tb.AddRow("R", []Term{a1, x})
		tb.AddRow("R", []Term{a2, y})
		// R(k1, a1), R(k1, a2): forces a1 = a2.
		tb.AddRow("R", []Term{k1, a1})
		tb.AddRow("R", []Term{k1, a2})
		return tb, x, y
	}
	tb, x, y := build()
	stats, err := tb.Run(keyDeps(s))
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Same(x, y) {
		t.Error("cascading merge missed")
	}
	if stats.Iterations < 2 {
		t.Errorf("Iterations = %d, want >= 2 (cascade needs a second wave)", stats.Iterations)
	}
	tbn, xn, yn := build()
	nstats, err := tbn.RunNaive(keyDeps(s))
	if err != nil {
		t.Fatal(err)
	}
	if !tbn.Same(xn, yn) {
		t.Error("naive chase missed the cascading merge")
	}
	if nstats.Iterations < 2 {
		t.Errorf("naive Iterations = %d, want >= 2 (cascade needs a second pass)", nstats.Iterations)
	}
}

func TestChaseFailure(t *testing.T) {
	tb := NewTableau(keyed)
	k := tb.NewConst(value.Value{Type: 1, N: 7})
	c1 := tb.NewConst(value.Value{Type: 2, N: 1})
	c2 := tb.NewConst(value.Value{Type: 2, N: 2})
	b1, b2 := tb.NewNull(3), tb.NewNull(3)
	tb.AddRow("R", []Term{k, c1, b1})
	tb.AddRow("R", []Term{k, c2, b2})
	if _, err := tb.Run(keyDeps(keyed)); err != nil {
		t.Fatal(err)
	}
	if !tb.Failed() {
		t.Error("chase equating distinct constants must fail")
	}
	if _, _, err := tb.ToDatabase(&value.Allocator{}); err == nil {
		t.Error("ToDatabase of failed tableau must error")
	}
}

func TestConstInterning(t *testing.T) {
	tb := NewTableau(keyed)
	c1 := tb.NewConst(value.Value{Type: 1, N: 7})
	c2 := tb.NewConst(value.Value{Type: 1, N: 7})
	if !tb.Same(c1, c2) {
		t.Error("equal constants must share a class")
	}
	// Two rows with the same constant key must trigger the EGD.
	a1, a2 := tb.NewNull(2), tb.NewNull(2)
	b1, b2 := tb.NewNull(3), tb.NewNull(3)
	tb.AddRow("R", []Term{c1, a1, b1})
	tb.AddRow("R", []Term{c2, a2, b2})
	tb.Run(keyDeps(keyed))
	if !tb.Same(a1, a2) {
		t.Error("constant keys not recognized as equal during chase")
	}
}

func TestAssertTypeMismatch(t *testing.T) {
	tb := NewTableau(keyed)
	a := tb.NewNull(1)
	b := tb.NewNull(2)
	if err := tb.Assert(a, b); err == nil {
		t.Error("equating terms of different types must error")
	}
}

func TestAddRowErrors(t *testing.T) {
	tb := NewTableau(keyed)
	a := tb.NewNull(1)
	if err := tb.AddRow("ZZ", []Term{a}); err == nil {
		t.Error("unknown relation accepted")
	}
	if err := tb.AddRow("R", []Term{a}); err == nil {
		t.Error("wrong arity accepted")
	}
	b := tb.NewNull(2)
	c := tb.NewNull(3)
	if err := tb.AddRow("R", []Term{b, a, c}); err == nil {
		t.Error("type mismatch accepted")
	}
	if err := tb.AddRow("R", []Term{a, b, Term(99)}); err == nil {
		t.Error("unknown term accepted")
	}
}

func TestRunRejectsCrossRelationDeps(t *testing.T) {
	s := schema.MustParse("R(a:T1)\nS(b:T1)")
	tb := NewTableau(s)
	bad := fd.FD{X: []fd.Attr{{Rel: "R", Pos: 0}}, Y: []fd.Attr{{Rel: "S", Pos: 0}}}
	if _, err := tb.Run([]fd.FD{bad}); err == nil {
		t.Error("cross-relation dependency accepted")
	}
	badPos := fd.FD{X: []fd.Attr{{Rel: "R", Pos: 5}}, Y: []fd.Attr{{Rel: "R", Pos: 0}}}
	if _, err := tb.Run([]fd.FD{badPos}); err == nil {
		t.Error("out-of-range dependency accepted")
	}
	badRel := fd.FD{X: []fd.Attr{{Rel: "Z", Pos: 0}}, Y: []fd.Attr{{Rel: "Z", Pos: 0}}}
	if _, err := tb.Run([]fd.FD{badRel}); err == nil {
		t.Error("unknown-relation dependency accepted")
	}
}

func TestToDatabase(t *testing.T) {
	tb := NewTableau(keyed)
	k := tb.NewConst(value.Value{Type: 1, N: 7})
	a1, a2 := tb.NewNull(2), tb.NewNull(2)
	b1, b2 := tb.NewNull(3), tb.NewNull(3)
	tb.AddRow("R", []Term{k, a1, b1})
	tb.AddRow("R", []Term{k, a2, b2})
	tb.Run(keyDeps(keyed))
	var alloc value.Allocator
	d, vals, err := tb.ToDatabase(&alloc)
	if err != nil {
		t.Fatal(err)
	}
	// After the chase the two rows collapse into one tuple.
	if d.Relation("R").Len() != 1 {
		t.Errorf("R has %d tuples, want 1: %s", d.Relation("R").Len(), d)
	}
	if vals[k] != (value.Value{Type: 1, N: 7}) {
		t.Errorf("constant resolved wrong: %v", vals[k])
	}
	if vals[a1] != vals[a2] {
		t.Error("equated nulls resolved differently")
	}
	if vals[a1].Type != 2 {
		t.Errorf("null type wrong: %v", vals[a1])
	}
	if !d.SatisfiesKeys() {
		t.Error("chased database must satisfy keys")
	}
}

func TestToDatabaseFreshAvoidConstants(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)")
	tb := NewTableau(s)
	c := tb.NewConst(value.Value{Type: 1, N: 5})
	n := tb.NewNull(1)
	tb.AddRow("R", []Term{c, n})
	var alloc value.Allocator
	_, vals, err := tb.ToDatabase(&alloc)
	if err != nil {
		t.Fatal(err)
	}
	if vals[n] == vals[c] {
		t.Error("fresh null collided with a constant")
	}
}

func TestFreeze(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T2)\nS(c:T2, d:T3)")
	q := cq.MustParse("V(X, W) :- R(X, Y), S(Z, W), Y = Z, W = T3:4.")
	tb := NewTableau(s)
	vars, err := Freeze(tb, q)
	if err != nil {
		t.Fatal(err)
	}
	if tb.RowCount() != 2 {
		t.Errorf("RowCount = %d", tb.RowCount())
	}
	if !tb.Same(vars["Y"], vars["Z"]) {
		t.Error("equated variables frozen apart")
	}
	if tb.Same(vars["X"], vars["Y"]) {
		t.Error("distinct variables frozen together")
	}
	if c, ok := tb.ConstOf(vars["W"]); !ok || c != (value.Value{Type: 3, N: 4}) {
		t.Errorf("bound variable lost its constant: %v %v", c, ok)
	}
	h, err := HeadTerms(tb, q, vars)
	if err != nil {
		t.Fatal(err)
	}
	if h[0] != vars["X"] || h[1] != vars["W"] {
		t.Errorf("head terms wrong: %v", h)
	}
}

func TestFreezeUnsatisfiable(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T2)")
	q := cq.MustParse("V(X) :- R(X, Y), Y = T2:1, Y = T2:2.")
	tb := NewTableau(s)
	if _, err := Freeze(tb, q); err != nil {
		t.Fatal(err)
	}
	if !tb.Failed() {
		t.Error("unsatisfiable query must fail the tableau")
	}
}

func TestFreezeUnknownRelation(t *testing.T) {
	s := schema.MustParse("R(a:T1)")
	q := cq.MustParse("V(X) :- Z(X).")
	tb := NewTableau(s)
	if _, err := Freeze(tb, q); err == nil {
		t.Error("unknown relation accepted")
	}
}
