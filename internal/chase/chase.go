// Package chase implements the classical chase with equality-generating
// dependencies (EGDs) — here, key and functional dependencies — over
// tableaux of labeled nulls and constants.
//
// The chase is the workhorse behind two decision procedures the paper's
// setting needs:
//
//   - conjunctive query containment under key dependencies (freeze the
//     candidate container's body, chase it with the key EGDs, then search
//     for a homomorphism), and
//
//   - the "view FD" test deciding whether a functional dependency holds on
//     every answer of a conjunctive query over key-satisfying instances
//     (two frozen copies, unify the X cells, chase, check the Y cells) —
//     which is exactly what deciding the paper's *valid* query mappings
//     requires.
package chase

import (
	"context"
	"fmt"

	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/invariant"
	"keyedeq/internal/obs"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// cancelCheckMask bounds how often straight-line scans over tableau
// rows poll their context: once every cancelCheckMask+1 rows, matching
// the search's polling contract in internal/cq.
const cancelCheckMask = 0x3ff

// Term identifies a tableau term: a labeled null or a constant, managed by
// the Tableau that created it.
type Term int

// Tableau is a set of rows over a schema whose cells are terms (labeled
// nulls or constants) with a union-find equating them.  The zero Tableau
// is not usable; call NewTableau.
type Tableau struct {
	Schema *schema.Schema
	rows   []row

	parent []int
	rank   []int
	// For roots: optional constant binding and the term's type.
	constOf map[int]value.Value
	// interned maps each constant to its canonical term so equal
	// constants always share a class (required for correct grouping
	// during the chase).
	interned map[value.Value]Term
	typeOf   []value.Type
	failed   bool
}

type row struct {
	rel   int // index into Schema.Relations
	cells []Term
}

// NewTableau returns an empty tableau over s.
func NewTableau(s *schema.Schema) *Tableau {
	return &Tableau{
		Schema:   s,
		constOf:  make(map[int]value.Value),
		interned: make(map[value.Value]Term),
	}
}

// NewNull creates a fresh labeled null of the given attribute type.
func (t *Tableau) NewNull(typ value.Type) Term {
	id := len(t.parent)
	t.parent = append(t.parent, id)
	t.rank = append(t.rank, 0)
	t.typeOf = append(t.typeOf, typ)
	return Term(id)
}

// NewConst returns the canonical term bound to the constant v: calling it
// twice with the same constant yields terms in the same class, so the
// chase's grouping sees equal constants as equal.
func (t *Tableau) NewConst(v value.Value) Term {
	if tm, ok := t.interned[v]; ok {
		return tm
	}
	id := t.NewNull(v.Type)
	t.constOf[int(id)] = v
	t.interned[v] = id
	return id
}

// AddRow appends a row for the named relation.  Cell count must match the
// scheme's arity and cell types its attribute types.
func (t *Tableau) AddRow(rel string, cells []Term) error {
	ri := t.Schema.RelationIndex(rel)
	if ri < 0 {
		return fmt.Errorf("chase: no relation %q", rel)
	}
	r := t.Schema.Relations[ri]
	if len(cells) != r.Arity() {
		return fmt.Errorf("chase: row for %q has %d cells, want %d", rel, len(cells), r.Arity())
	}
	for i, c := range cells {
		if int(c) < 0 || int(c) >= len(t.parent) {
			return fmt.Errorf("chase: unknown term %d", c)
		}
		if t.typeOf[c] != r.Attrs[i].Type {
			return fmt.Errorf("chase: cell %d of %q has type %v, want %v", i, rel, t.typeOf[c], r.Attrs[i].Type)
		}
	}
	t.rows = append(t.rows, row{rel: ri, cells: append([]Term(nil), cells...)})
	return nil
}

// find returns the union-find representative of term id.
func (t *Tableau) find(id int) int {
	for t.parent[id] != id {
		t.parent[id] = t.parent[t.parent[id]]
		id = t.parent[id]
	}
	return id
}

// Same reports whether two terms have been equated.
func (t *Tableau) Same(a, b Term) bool { return t.find(int(a)) == t.find(int(b)) }

// ConstOf returns the constant a term's class is bound to, if any.
func (t *Tableau) ConstOf(a Term) (value.Value, bool) {
	v, ok := t.constOf[t.find(int(a))]
	return v, ok
}

// Failed reports whether some assertion equated two distinct constants
// (a failing chase).
func (t *Tableau) Failed() bool { return t.failed }

// Assert equates two terms.  Equating distinct constants marks the
// tableau failed; equating terms of different attribute types is an
// error (it cannot arise from well-typed queries).
func (t *Tableau) Assert(a, b Term) error {
	ra, rb := t.find(int(a)), t.find(int(b))
	if ra == rb {
		return nil
	}
	if t.typeOf[ra] != t.typeOf[rb] {
		return fmt.Errorf("chase: equating terms of types %v and %v", t.typeOf[ra], t.typeOf[rb])
	}
	ca, hasA := t.constOf[ra]
	cb, hasB := t.constOf[rb]
	if t.rank[ra] < t.rank[rb] {
		ra, rb = rb, ra
	}
	t.parent[rb] = ra
	if t.rank[ra] == t.rank[rb] {
		t.rank[ra]++
	}
	switch {
	case hasA && hasB:
		if ca != cb {
			t.failed = true
		}
		t.constOf[ra] = ca
		delete(t.constOf, rb)
	case hasB:
		t.constOf[ra] = cb
		delete(t.constOf, rb)
	case hasA:
		t.constOf[ra] = ca
	}
	return nil
}

// Stats reports work done by a chase run.
type Stats struct {
	// Iterations counts fixpoint rounds: full passes over the
	// dependencies for the naive chase, delta waves (batches of rows
	// revisited because a key class changed) for the semi-naive chase.
	Iterations int
	// Merges is the number of union operations applied.
	Merges int
	// Revisited counts (dependency, row) work items processed by the
	// semi-naive chase (zero for the naive chase, which always rescans
	// every row in every pass).
	Revisited int
}

// reportRun emits a finished (or aborted) chase run's counters to the
// obs layer carried by ctx, if any.  It is deferred right after
// dependency compilation succeeds, so it fires on cancellation too:
// exported chase totals account for partial work, matching the partial
// Stats that callers record on the error path.  Compilation failures
// never ran a fixpoint and are not counted as runs.
func (t *Tableau) reportRun(ctx context.Context, stats *Stats) {
	o := obs.FromContext(ctx)
	if o == nil {
		return
	}
	o.C(obs.CChaseRuns).Inc()
	o.C(obs.CChaseIterations).Add(int64(stats.Iterations))
	o.C(obs.CChaseMerges).Add(int64(stats.Merges))
	o.C(obs.CChaseRevisited).Add(int64(stats.Revisited))
	if t.failed {
		o.C(obs.CChaseFailed).Inc()
	}
	o.H(obs.HChaseIterations).Observe(int64(stats.Iterations))
}

// egd is one compiled equality-generating dependency: a relation index
// and the LHS/RHS attribute positions.
type egd struct {
	rel  int
	x, y []int
}

// compileEGDs resolves schema-level dependencies to position form.
// Every dependency must have all attributes within a single relation
// (EGD form); cross-relation dependencies are rejected.
func (t *Tableau) compileEGDs(deps []fd.FD) ([]egd, error) {
	egds := make([]egd, 0, len(deps))
	for _, d := range deps {
		rel, ok := d.SameRelation()
		if !ok {
			return nil, fmt.Errorf("chase: dependency %s spans relations; only EGDs over one relation are supported", d)
		}
		ri := t.Schema.RelationIndex(rel)
		if ri < 0 {
			return nil, fmt.Errorf("chase: dependency %s over unknown relation", d)
		}
		e := egd{rel: ri}
		arity := t.Schema.Relations[ri].Arity()
		for _, a := range d.X {
			if a.Pos < 0 || a.Pos >= arity {
				return nil, fmt.Errorf("chase: dependency %s position out of range", d)
			}
			e.x = append(e.x, a.Pos)
		}
		for _, a := range d.Y {
			if a.Pos < 0 || a.Pos >= arity {
				return nil, fmt.Errorf("chase: dependency %s position out of range", d)
			}
			e.y = append(e.y, a.Pos)
		}
		egds = append(egds, e)
	}
	return egds, nil
}

// Run chases the tableau with the given schema-level dependencies until
// fixpoint.  On a failing chase the tableau's Failed flag is set and Run
// returns normally (failure is a result, not an error).
func (t *Tableau) Run(deps []fd.FD) (Stats, error) {
	return t.RunCtx(context.Background(), deps)
}

// RunCtx is Run with cancellation: the chase polls ctx once per delta
// wave and aborts with ctx's error when it is done.
//
// The fixpoint is computed semi-naively: rows are bucketed per
// dependency by the union-find representatives of their LHS cells, and
// after the initial pass only rows whose LHS representatives changed in
// a merge are revisited.  The key observation making the stale-bucket
// bookkeeping sound is that the union-find only coarsens: an absorbed
// representative id is never a representative again, so a bucket key
// mentioning one can never be produced — stale entries are unreachable,
// not wrong.  The full-rescan fixpoint remains as RunNaiveCtx for
// differential testing.
//
//keyedeq:hot -- the per-wave worklist drain dominates every chase-backed decision procedure
func (t *Tableau) RunCtx(ctx context.Context, deps []fd.FD) (Stats, error) {
	egds, err := t.compileEGDs(deps)
	if err != nil {
		return Stats{}, err
	}
	var stats Stats
	defer t.reportRun(ctx, &stats)
	classesBefore := 0
	if invariant.Debug {
		classesBefore = t.classCount()
	}

	type item struct {
		egd, row int32
	}
	// Seed: every (dependency, row) pair of the dependency's relation.
	// The worklist's exact size is the sum over dependencies of their
	// relation's row count; tally it first so the seeding scan appends
	// into place instead of growing by doubling.
	rowsPerRel := make([]int, len(t.Schema.Relations))
	for ri := range t.rows {
		if ri&cancelCheckMask == cancelCheckMask {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
		}
		rowsPerRel[t.rows[ri].rel]++
	}
	seedCount := 0
	for _, e := range egds {
		seedCount += rowsPerRel[e.rel]
	}
	queued := make([][]bool, len(egds))
	cur := make([]item, 0, seedCount)
	var next []item
	for ei := range egds {
		// Seeding scans every (dependency, row) pair; poll once per
		// dependency so a huge tableau cannot outlive its deadline
		// before the first wave even starts.
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		queued[ei] = make([]bool, len(t.rows))
		for ri := range t.rows {
			if t.rows[ri].rel == egds[ei].rel {
				queued[ei][ri] = true
				cur = append(cur, item{int32(ei), int32(ri)})
			}
		}
	}

	// Per-root entry lists replace the old map[int][]item: every work
	// item whose LHS key mentions a term of a class is one node in that
	// class representative's singly linked list, laid out in three flat
	// arrays (entries, entryNext, rootHead/rootTail) with the exact
	// total entry count presized.  When a class is absorbed in a merge
	// its items' keys change, so they are requeued and the whole list
	// splices onto the winning root in O(1) — no per-merge slice
	// growth, no map churn, and the same append order as before.
	entryCount := 0
	for _, e := range egds {
		entryCount += rowsPerRel[e.rel] * len(e.x)
	}
	entries := make([]item, 0, entryCount)
	entryNext := make([]int32, 0, entryCount)
	rootHead := make([]int32, len(t.parent))
	rootTail := make([]int32, len(t.parent))
	for i := range rootHead {
		rootHead[i] = -1
	}
	for ei := range egds {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		for ri := range t.rows {
			if t.rows[ri].rel != egds[ei].rel {
				continue
			}
			for _, p := range egds[ei].x {
				root := t.find(int(t.rows[ri].cells[p]))
				idx := int32(len(entries))
				entries = append(entries, item{int32(ei), int32(ri)})
				entryNext = append(entryNext, -1)
				if rootHead[root] < 0 {
					rootHead[root] = idx
				} else {
					entryNext[rootTail[root]] = idx
				}
				rootTail[root] = idx
			}
		}
	}

	merge := func(a, b Term) error {
		ra, rb := t.find(int(a)), t.find(int(b))
		if ra == rb {
			return nil
		}
		if err := t.Assert(a, b); err != nil {
			return err
		}
		stats.Merges++
		winner := t.find(ra)
		loser := rb
		if winner == rb {
			loser = ra
		}
		for e := rootHead[loser]; e >= 0; e = entryNext[e] {
			it := entries[e]
			if !queued[it.egd][it.row] {
				queued[it.egd][it.row] = true
				next = append(next, it)
			}
		}
		if rootHead[loser] >= 0 {
			if rootHead[winner] < 0 {
				rootHead[winner] = rootHead[loser]
			} else {
				entryNext[rootTail[winner]] = rootHead[loser]
			}
			rootTail[winner] = rootTail[loser]
			rootHead[loser] = -1
		}
		return nil
	}

	// buckets[e] maps an LHS key to the first row seen with it; later
	// rows with the same key merge their RHS cells into that row's.
	// Single-position LHSs — the common key shape — index a dense
	// per-dependency array by the union-find root (-1 = empty), one
	// machine-word load per probe.  Multi-position LHSs fold their root
	// IDs pairwise through an interning table (each distinct (acc, root)
	// pair gets a dense uint32), so a key of any width becomes one
	// uint64 — no byte encoding, no string materialization.  Fold IDs
	// are injective by construction, so distinct projections never
	// share a bucket key.
	buckets1 := make([][]int32, len(egds))
	buckets := make([]map[uint64]int32, len(egds))
	var pairIDs map[uint64]uint32
	for ei := range egds {
		if len(egds[ei].x) == 1 {
			b := make([]int32, len(t.parent))
			for i := range b {
				b[i] = -1
			}
			buckets1[ei] = b
		} else {
			buckets[ei] = make(map[uint64]int32)
			if pairIDs == nil {
				pairIDs = make(map[uint64]uint32)
			}
		}
	}
	foldKey := func(r row, x []int) uint64 {
		acc := uint64(uint32(t.find(int(r.cells[x[0]]))))
		for _, p := range x[1:] {
			rep := uint64(uint32(t.find(int(r.cells[p]))))
			pk := acc<<32 | rep
			id, ok := pairIDs[pk]
			if !ok {
				id = uint32(len(pairIDs))
				pairIDs[pk] = id
			}
			acc = uint64(id)
		}
		return acc
	}
	for len(cur) > 0 && !t.failed {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Iterations++
		for _, it := range cur {
			if t.failed {
				break
			}
			queued[it.egd][it.row] = false
			e := &egds[it.egd]
			r := t.rows[it.row]
			stats.Revisited++
			var first int32
			if len(e.x) == 1 {
				root := t.find(int(r.cells[e.x[0]]))
				first = buckets1[it.egd][root]
				if first < 0 {
					buckets1[it.egd][root] = it.row
					continue
				}
			} else {
				key := foldKey(r, e.x)
				f, ok := buckets[it.egd][key]
				if !ok {
					buckets[it.egd][key] = it.row
					continue
				}
				first = f
			}
			if first == it.row {
				continue
			}
			fr := t.rows[first]
			for _, p := range e.y {
				if !t.Same(fr.cells[p], r.cells[p]) {
					if err := merge(fr.cells[p], r.cells[p]); err != nil {
						return stats, err
					}
				}
			}
		}
		cur, next = next, cur[:0]
	}
	if stats.Iterations == 0 {
		// An empty tableau or dependency set still counts as one pass,
		// matching the naive chase's single no-op scan.
		stats.Iterations = 1
	}
	if invariant.Debug {
		// The chase is monotone: every merge collapses exactly two
		// classes into one and nothing ever splits, so the class count
		// must drop by precisely the number of merges.  This is what
		// makes the worklist drain a fixpoint.
		classesAfter := t.classCount()
		invariant.Assertf(classesBefore-classesAfter == stats.Merges,
			"chase: run went from %d to %d classes with %d merges",
			classesBefore, classesAfter, stats.Merges)
	}
	return stats, nil
}

// RunNaive chases to fixpoint by full rescans: every pass regroups every
// row of every dependency's relation.  It is the reference
// implementation the semi-naive RunCtx is differentially tested against.
func (t *Tableau) RunNaive(deps []fd.FD) (Stats, error) {
	return t.RunNaiveCtx(context.Background(), deps)
}

// RunNaiveCtx is RunNaive with cancellation: the chase polls ctx once
// per pass over the dependencies and aborts with ctx's error when it is
// done.
func (t *Tableau) RunNaiveCtx(ctx context.Context, deps []fd.FD) (Stats, error) {
	egds, err := t.compileEGDs(deps)
	if err != nil {
		return Stats{}, err
	}
	var stats Stats
	defer t.reportRun(ctx, &stats)
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		stats.Iterations++
		changed := false
		mergesBefore := stats.Merges
		classesBefore := 0
		if invariant.Debug {
			classesBefore = t.classCount()
		}
		for _, e := range egds {
			// Group rows of e.rel by the representatives of their X cells.
			groups := make(map[string]row)
			for _, r := range t.rows {
				if r.rel != e.rel {
					continue
				}
				key := t.projKey(r, e.x)
				first, ok := groups[key]
				if !ok {
					groups[key] = r
					continue
				}
				for _, p := range e.y {
					if !t.Same(first.cells[p], r.cells[p]) {
						if err := t.Assert(first.cells[p], r.cells[p]); err != nil {
							return stats, err
						}
						stats.Merges++
						changed = true
					}
				}
			}
		}
		if invariant.Debug {
			// The chase is monotone: every merge collapses exactly two
			// classes into one and nothing ever splits, so the class
			// count must drop by precisely the merges of this pass.
			// This is what makes the fixpoint below a fixpoint.
			classesAfter := t.classCount()
			passMerges := stats.Merges - mergesBefore
			invariant.Assertf(classesBefore-classesAfter == passMerges,
				"chase: pass %d went from %d to %d classes with %d merges",
				stats.Iterations, classesBefore, classesAfter, passMerges)
			invariant.Assertf(changed == (passMerges > 0),
				"chase: pass %d reported changed=%v with %d merges", stats.Iterations, changed, passMerges)
		}
		if !changed || t.failed {
			return stats, nil
		}
	}
}

// classCount returns the number of distinct term classes (debug
// instrumentation for the chase monotonicity invariant).
func (t *Tableau) classCount() int {
	n := 0
	for id := range t.parent {
		if t.find(id) == id {
			n++
		}
	}
	return n
}

// appendProj appends the representatives of the projected cells to b
// as a delimiter-separated byte key, reusing b's capacity.
func (t *Tableau) appendProj(b []byte, r row, positions []int) []byte {
	for _, p := range positions {
		rep := t.find(int(r.cells[p]))
		b = appendInt(b, rep)
		b = append(b, ',')
	}
	return b
}

// projKey renders the representatives of the projected cells as a map
// key.  Only the naive reference chase uses it; the semi-naive hot path
// keys single-position dependencies on dense root-indexed arrays and
// folds multi-position keys pairwise through an ID-interning table.
func (t *Tableau) projKey(r row, positions []int) string {
	return string(t.appendProj(make([]byte, 0, len(positions)*4), r, positions))
}

func appendInt(b []byte, n int) []byte {
	if n == 0 {
		return append(b, '0')
	}
	var tmp [20]byte
	i := len(tmp)
	for n > 0 {
		i--
		tmp[i] = byte('0' + n%10)
		n /= 10
	}
	return append(b, tmp[i:]...)
}

// ToDatabase converts the (chased) tableau to a concrete database
// instance: every term class bound to a constant becomes that constant;
// every unbound class gets a fresh distinct value from alloc.  The
// returned map resolves each term to its value.  It fails on a failed
// tableau.
func (t *Tableau) ToDatabase(alloc *value.Allocator) (*instance.Database, map[Term]value.Value, error) {
	if t.failed {
		return nil, nil, fmt.Errorf("chase: tableau failed; no database exists")
	}
	for _, v := range t.constOf {
		alloc.Reserve(v)
	}
	valOf := make(map[int]value.Value)
	resolve := func(id int) value.Value {
		rep := t.find(id)
		if v, ok := valOf[rep]; ok {
			return v
		}
		v, ok := t.constOf[rep]
		if !ok {
			v = alloc.Fresh(t.typeOf[rep])
		}
		valOf[rep] = v
		return v
	}
	d := instance.NewDatabase(t.Schema)
	for _, r := range t.rows {
		tup := make(instance.Tuple, len(r.cells))
		for i, c := range r.cells {
			tup[i] = resolve(int(c))
		}
		if err := d.Relations[r.rel].Insert(tup); err != nil {
			return nil, nil, err
		}
	}
	all := make(map[Term]value.Value, len(t.parent))
	for id := range t.parent {
		all[Term(id)] = resolve(id)
	}
	return d, all, nil
}

// RowCount returns the number of rows (before deduplication).
func (t *Tableau) RowCount() int { return len(t.rows) }
