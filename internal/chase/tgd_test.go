package chase

import (
	"testing"

	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func TestTGDValidate(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T2)\nS(c:T1)")
	good := TGD{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x", "y"}}},
		Head: []TGDAtom{{Rel: "S", Vars: []string{"x"}}},
	}
	if err := good.Validate(s); err != nil {
		t.Errorf("good TGD rejected: %v", err)
	}
	bad := []TGD{
		{},
		{Body: []TGDAtom{{Rel: "Z", Vars: []string{"x"}}}, Head: good.Head},
		{Body: []TGDAtom{{Rel: "R", Vars: []string{"x"}}}, Head: good.Head},     // arity
		{Body: good.Body, Head: []TGDAtom{{Rel: "S", Vars: []string{"y"}}}},     // y is T2, S.c is T1
		{Body: []TGDAtom{{Rel: "R", Vars: []string{"", "y"}}}, Head: good.Head}, // empty var
	}
	for i, d := range bad {
		if err := d.Validate(s); err == nil {
			t.Errorf("bad TGD %d accepted: %s", i, d)
		}
	}
}

func TestTGDFiring(t *testing.T) {
	// R(x) -> S(x): chasing must add an S row for every R row.
	s := schema.MustParse("R(a:T1)\nS(b:T1)")
	d := TGD{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x"}}},
		Head: []TGDAtom{{Rel: "S", Vars: []string{"x"}}},
	}
	tb := NewTableau(s)
	n1 := tb.NewNull(1)
	n2 := tb.NewNull(1)
	tb.AddRow("R", []Term{n1})
	tb.AddRow("R", []Term{n2})
	if _, err := tb.RunWithTGDs(nil, []TGD{d}, 10); err != nil {
		t.Fatal(err)
	}
	var alloc value.Allocator
	db, vals, err := tb.ToDatabase(&alloc)
	if err != nil {
		t.Fatal(err)
	}
	if db.Relation("S").Len() != 2 {
		t.Errorf("S = %s, want 2 rows", db.Relation("S"))
	}
	// The S rows carry the same terms (frontier variable shared).
	if !db.Relation("S").Has([]value.Value{vals[n1]}) {
		t.Error("S missing the R value")
	}
}

func TestTGDExistential(t *testing.T) {
	// R(x) -> S(x, ?z): fresh null for z.
	s := schema.MustParse("R(a:T1)\nS(b:T1, c:T2)")
	d := TGD{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x"}}},
		Head: []TGDAtom{{Rel: "S", Vars: []string{"x", "z"}}},
	}
	tb := NewTableau(s)
	n := tb.NewNull(1)
	tb.AddRow("R", []Term{n})
	if _, err := tb.RunWithTGDs(nil, []TGD{d}, 10); err != nil {
		t.Fatal(err)
	}
	var alloc value.Allocator
	db, _, err := tb.ToDatabase(&alloc)
	if err != nil {
		t.Fatal(err)
	}
	srow := db.Relation("S").Tuples()
	if len(srow) != 1 {
		t.Fatalf("S = %v", srow)
	}
	if srow[0][1].Type != 2 {
		t.Errorf("existential null has type %v", srow[0][1].Type)
	}
}

func TestTGDNotRefiredWhenSatisfied(t *testing.T) {
	// If S already contains a matching row, the trigger must not fire.
	s := schema.MustParse("R(a:T1)\nS(b:T1, c:T2)")
	d := TGD{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x"}}},
		Head: []TGDAtom{{Rel: "S", Vars: []string{"x", "z"}}},
	}
	tb := NewTableau(s)
	n := tb.NewNull(1)
	w := tb.NewNull(2)
	tb.AddRow("R", []Term{n})
	tb.AddRow("S", []Term{n, w})
	before := tb.RowCount()
	if _, err := tb.RunWithTGDs(nil, []TGD{d}, 10); err != nil {
		t.Fatal(err)
	}
	if tb.RowCount() != before {
		t.Errorf("satisfied trigger fired: rows %d -> %d", before, tb.RowCount())
	}
}

func TestTGDIdempotentSecondRun(t *testing.T) {
	s := schema.MustParse("R(a:T1)\nS(b:T1)")
	d := TGD{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x"}}},
		Head: []TGDAtom{{Rel: "S", Vars: []string{"x"}}},
	}
	tb := NewTableau(s)
	tb.AddRow("R", []Term{tb.NewNull(1)})
	tb.RunWithTGDs(nil, []TGD{d}, 10)
	after := tb.RowCount()
	tb.RunWithTGDs(nil, []TGD{d}, 10)
	if tb.RowCount() != after {
		t.Error("second chase changed the tableau")
	}
}

func TestTGDWithEGDInteraction(t *testing.T) {
	// Keys on S force merges on rows the TGD generated.
	// R(x, y) -> S(x, y) with S keyed on position 0: two R rows with the
	// same first column force their second columns equal.
	s := schema.MustParse("R(a:T1, b:T2)\nS(k*:T1, v:T2)")
	d := TGD{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x", "y"}}},
		Head: []TGDAtom{{Rel: "S", Vars: []string{"x", "y"}}},
	}
	tb := NewTableau(s)
	x := tb.NewNull(1)
	y1, y2 := tb.NewNull(2), tb.NewNull(2)
	tb.AddRow("R", []Term{x, y1})
	tb.AddRow("R", []Term{x, y2})
	if _, err := tb.RunWithTGDs(fd.KeyFDs(s), []TGD{d}, 10); err != nil {
		t.Fatal(err)
	}
	if !tb.Same(y1, y2) {
		t.Error("key on S should have merged the copied values")
	}
}

func TestTGDNonTerminatingCapped(t *testing.T) {
	// R(x, y) -> R(y, ?z): grows forever (not weakly acyclic).
	s := schema.MustParse("R(a:T1, b:T1)")
	d := TGD{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x", "y"}}},
		Head: []TGDAtom{{Rel: "R", Vars: []string{"y", "z"}}},
	}
	tb := NewTableau(s)
	tb.AddRow("R", []Term{tb.NewNull(1), tb.NewNull(1)})
	if _, err := tb.RunWithTGDs(nil, []TGD{d}, 5); err == nil {
		t.Error("non-terminating chase should hit the round cap")
	}
}

func TestWeaklyAcyclic(t *testing.T) {
	s := schema.MustParse("R(a:T1, b:T1)\nS(c:T1)")
	// Inclusion-style TGDs with no existential cycles: acyclic.
	ok := []TGD{
		{
			Body: []TGDAtom{{Rel: "R", Vars: []string{"x", "y"}}},
			Head: []TGDAtom{{Rel: "S", Vars: []string{"x"}}},
		},
		{
			Body: []TGDAtom{{Rel: "S", Vars: []string{"x"}}},
			Head: []TGDAtom{{Rel: "R", Vars: []string{"x", "z"}}},
		},
	}
	if !WeaklyAcyclic(s, ok[:1]) {
		t.Error("single inclusion should be weakly acyclic")
	}
	// The pair above has a special edge S.c -> R.b and regular edges
	// R.a -> S.c, S.c -> R.a; no cycle THROUGH the special edge target
	// back: R.b has no outgoing edges, so still acyclic.
	if !WeaklyAcyclic(s, ok) {
		t.Error("bidirectional key-column inclusions should be weakly acyclic")
	}
	// R(x, y) -> R(y, ?z): special edge into R.b and regular edge R.b ->
	// R.a feeding back: cyclic.
	bad := []TGD{{
		Body: []TGDAtom{{Rel: "R", Vars: []string{"x", "y"}}},
		Head: []TGDAtom{{Rel: "R", Vars: []string{"y", "z"}}},
	}}
	if WeaklyAcyclic(s, bad) {
		t.Error("self-feeding existential should not be weakly acyclic")
	}
}

func TestTGDMultiAtomBody(t *testing.T) {
	// R(x,y), S(y) -> U(x): only R rows whose y appears in S produce U.
	s := schema.MustParse("R(a:T1, b:T2)\nS(c:T2)\nU(d:T1)")
	d := TGD{
		Body: []TGDAtom{
			{Rel: "R", Vars: []string{"x", "y"}},
			{Rel: "S", Vars: []string{"y"}},
		},
		Head: []TGDAtom{{Rel: "U", Vars: []string{"x"}}},
	}
	tb := NewTableau(s)
	x1, x2 := tb.NewNull(1), tb.NewNull(1)
	y1, y2 := tb.NewNull(2), tb.NewNull(2)
	tb.AddRow("R", []Term{x1, y1})
	tb.AddRow("R", []Term{x2, y2})
	tb.AddRow("S", []Term{y1}) // only y1 is in S
	if _, err := tb.RunWithTGDs(nil, []TGD{d}, 10); err != nil {
		t.Fatal(err)
	}
	var alloc value.Allocator
	db, vals, err := tb.ToDatabase(&alloc)
	if err != nil {
		t.Fatal(err)
	}
	u := db.Relation("U")
	if u.Len() != 1 || !u.Has([]value.Value{vals[x1]}) {
		t.Errorf("U = %s, want exactly x1", u)
	}
}
