package chase

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/gen"
	"keyedeq/internal/schema"
)

// fingerprint canonicalizes a tableau's fixpoint: every term labeled by
// the first-seen index of its class representative, plus the constant
// (if any) bound to that class.  Two chases of the same frozen query are
// equivalent iff their fingerprints match, regardless of which term of a
// class ended up the union-find root.
type classLabel struct {
	id       int
	hasConst bool
	constKey string
}

func fingerprint(t *Tableau) []classLabel {
	labelOf := make(map[int]int)
	out := make([]classLabel, len(t.parent))
	for id := range t.parent {
		root := t.find(id)
		lbl, ok := labelOf[root]
		if !ok {
			lbl = len(labelOf)
			labelOf[root] = lbl
		}
		out[id] = classLabel{id: lbl}
		if c, has := t.constOf[root]; has {
			out[id].hasConst = true
			out[id].constKey = c.String()
		}
	}
	return out
}

func sameFingerprint(a, b []classLabel) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// chaseBoth freezes q twice over s and chases one tableau semi-naively
// and the other with full rescans.
func chaseBoth(t *testing.T, s *schema.Schema, deps []fd.FD, q *cq.Query) (semi, naive *Tableau, semiStats, naiveStats Stats) {
	t.Helper()
	semi = NewTableau(s)
	if _, err := Freeze(semi, q); err != nil {
		t.Fatalf("freeze: %v", err)
	}
	naive = NewTableau(s)
	if _, err := Freeze(naive, q); err != nil {
		t.Fatalf("freeze: %v", err)
	}
	var err error
	semiStats, err = semi.Run(deps)
	if err != nil {
		t.Fatalf("semi-naive chase: %v", err)
	}
	naiveStats, err = naive.RunNaive(deps)
	if err != nil {
		t.Fatalf("naive chase: %v", err)
	}
	return semi, naive, semiStats, naiveStats
}

// TestSemiNaiveMatchesNaiveOnKeyedCorpus chases every query of a large
// keyed corpus both ways and demands identical fixpoints: same failure
// flag, same term partition, same constants per class.  This is the
// differential gate for the delta chase.
func TestSemiNaiveMatchesNaiveOnKeyedCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	fam, err := gen.PairCorpus(rng, "keyed", 300)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, p := range fam.Pairs {
		for _, q := range []*cq.Query{p.Left, p.Right} {
			semi, naive, semiStats, naiveStats := chaseBoth(t, fam.Schema, fam.Deps, q)
			if semi.Failed() != naive.Failed() {
				t.Fatalf("%s: failed mismatch: semi=%v naive=%v for %s", p.Note, semi.Failed(), naive.Failed(), q)
			}
			if semiStats.Merges != naiveStats.Merges {
				// The fixpoint is confluent: the same classes must merge no
				// matter the order, so the merge counts agree exactly.
				t.Fatalf("%s: merges mismatch: semi=%d naive=%d for %s", p.Note, semiStats.Merges, naiveStats.Merges, q)
			}
			if !semi.Failed() && !sameFingerprint(fingerprint(semi), fingerprint(naive)) {
				t.Fatalf("%s: partition mismatch for %s", p.Note, q)
			}
			checked++
		}
	}
	if checked < 500 {
		t.Fatalf("corpus too small: %d chases", checked)
	}
}

// TestSemiNaiveMatchesNaiveOnWideCorpus repeats the differential check
// on the wide keyed family, whose multi-attribute keys exercise
// composite LHS bucket keys.
func TestSemiNaiveMatchesNaiveOnWideCorpus(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	fam, err := gen.PairCorpus(rng, "wide", 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(fam.Deps) == 0 {
		t.Fatal("wide family must carry key dependencies")
	}
	for _, p := range fam.Pairs {
		for _, q := range []*cq.Query{p.Left, p.Right} {
			semi, naive, _, _ := chaseBoth(t, fam.Schema, fam.Deps, q)
			if semi.Failed() != naive.Failed() {
				t.Fatalf("%s: failed mismatch for %s", p.Note, q)
			}
			if !semi.Failed() && !sameFingerprint(fingerprint(semi), fingerprint(naive)) {
				t.Fatalf("%s: partition mismatch for %s", p.Note, q)
			}
		}
	}
}

// TestSemiNaiveRevisitsLessThanRescan builds a long merge chain where
// full rescans are quadratic in the row count but the delta chase only
// requeues the rows a merge actually touches.
func TestSemiNaiveRevisitsLessThanRescan(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	const n = 60
	build := func() (*Tableau, []Term) {
		tb := NewTableau(s)
		// A chain k_i = a-cell of row i equals key of rows 2i+1, 2i+2 …
		// simplest cascade chain: R(c_i, c_{i+1}) pairs sharing keys so a
		// merge at level i triggers exactly one at level i+1.
		terms := make([]Term, 2*n+2)
		for i := range terms {
			terms[i] = tb.NewNull(1)
		}
		// R(t_{2i}, t_{2i+2}) and R(t_{2i+1}, t_{2i+3}); equate t_0, t_1
		// via two rows sharing a key, then each merge of (t_{2i}, t_{2i+1})
		// makes the next pair of rows agree on their key.
		// Deepest links first and the trigger rows last: a rescan pass
		// sees each level's rows before the merge that equates their
		// keys, so the naive chase needs one full pass per level.
		seed := tb.NewNull(1)
		for i := n - 1; i >= 0; i-- {
			tb.AddRow("R", []Term{terms[2*i], terms[2*i+2]})
			tb.AddRow("R", []Term{terms[2*i+1], terms[2*i+3]})
		}
		tb.AddRow("R", []Term{seed, terms[0]})
		tb.AddRow("R", []Term{seed, terms[1]})
		return tb, terms
	}
	semi, sterms := build()
	semiStats, err := semi.Run(keyDeps(s))
	if err != nil {
		t.Fatal(err)
	}
	naive, nterms := build()
	naiveStats, err := naive.RunNaive(keyDeps(s))
	if err != nil {
		t.Fatal(err)
	}
	if !semi.Same(sterms[2*n], sterms[2*n+1]) || !naive.Same(nterms[2*n], nterms[2*n+1]) {
		t.Fatal("cascade chain did not propagate to the end")
	}
	if semiStats.Merges != naiveStats.Merges {
		t.Fatalf("merges mismatch: semi=%d naive=%d", semiStats.Merges, naiveStats.Merges)
	}
	// The naive chase rescans all 2n+2 rows once per cascade level; the
	// delta chase seeds every row once and then revisits O(1) rows per
	// merge.  Iterations * rows is the naive work bound.
	naiveWork := naiveStats.Iterations * (2*n + 2)
	if semiStats.Revisited*10 > naiveWork {
		t.Fatalf("semi-naive revisited %d items; naive rescan work %d — want >= 10x reduction", semiStats.Revisited, naiveWork)
	}
	if naiveStats.Iterations < n {
		t.Fatalf("naive Iterations = %d, want >= %d (one pass per cascade level)", naiveStats.Iterations, n)
	}
}

// TestSemiNaiveFailureMatchesNaive checks that a failing chase
// (conflicting constants under a key) fails in both modes.
func TestSemiNaiveFailureMatchesNaive(t *testing.T) {
	q := cq.MustParse("V(X) :- R(X, A), R(Y, B), X = Y, A = T2:1, B = T2:2.")
	s := schema.MustParse("R(k*:T1, a:T2)")
	semi, naive, _, _ := chaseBoth(t, s, fd.KeyFDs(s), q)
	if !semi.Failed() || !naive.Failed() {
		t.Fatalf("both chases must fail: semi=%v naive=%v", semi.Failed(), naive.Failed())
	}
}
