package chase

import (
	"fmt"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
)

// Freeze loads a conjunctive query's body into the tableau: one term per
// equality class (bound classes become constants), one row per body atom.
// It returns the term for each variable.  A query whose equality list
// equates distinct constants marks the tableau failed.
func Freeze(t *Tableau, q *cq.Query) (map[cq.Var]Term, error) {
	eq := cq.NewEqClasses(q)
	if eq.Unsatisfiable() {
		t.failed = true
	}
	terms := make(map[cq.Var]Term)
	termOf := func(v cq.Var, typ int) (Term, error) {
		root := eq.Find(v)
		if tm, ok := terms[root]; ok {
			terms[v] = tm
			return tm, nil
		}
		var tm Term
		if c, ok := eq.Const(v); ok {
			tm = t.NewConst(c)
		} else {
			r := t.Schema.Relations[typ>>16]
			tm = t.NewNull(r.Attrs[typ&0xffff].Type)
		}
		terms[root] = tm
		terms[v] = tm
		return tm, nil
	}
	for _, a := range q.Body {
		ri := t.Schema.RelationIndex(a.Rel)
		if ri < 0 {
			return nil, fmt.Errorf("chase: query uses unknown relation %q", a.Rel)
		}
		cells := make([]Term, len(a.Vars))
		for i, v := range a.Vars {
			tm, err := termOf(v, ri<<16|i)
			if err != nil {
				return nil, err
			}
			cells[i] = tm
		}
		if err := t.AddRow(a.Rel, cells); err != nil {
			return nil, err
		}
	}
	return terms, nil
}

// HeadTerms resolves q's head through the variable terms returned by
// Freeze (constants become constant terms).
func HeadTerms(t *Tableau, q *cq.Query, vars map[cq.Var]Term) ([]Term, error) {
	out := make([]Term, len(q.Head))
	for i, h := range q.Head {
		if h.IsConst {
			out[i] = t.NewConst(h.Const)
			continue
		}
		tm, ok := vars[h.Var]
		if !ok {
			return nil, fmt.Errorf("chase: head variable %s not frozen", h.Var)
		}
		out[i] = tm
	}
	return out, nil
}

// ChaseQuery applies the dependencies to the query itself: it freezes q's
// body, chases it, and returns q extended with the equalities (and
// constant bindings) the chase derived.  The result is equivalent to q on
// every deps-satisfying instance and is the right starting point for
// minimization under dependencies.  unsat reports that the chase failed —
// q is empty on every deps-satisfying instance.
func ChaseQuery(s *schema.Schema, deps []fd.FD, q *cq.Query) (out *cq.Query, unsat bool, err error) {
	t := NewTableau(s)
	vars, err := Freeze(t, q)
	if err != nil {
		return nil, false, err
	}
	if _, err := t.Run(deps); err != nil {
		return nil, false, err
	}
	if t.Failed() {
		return q.Clone(), true, nil
	}
	out = q.Clone()
	// Group body variables by their chased term class; emit equalities
	// chaining each class, plus the constant if the class is bound.
	classFirst := make(map[int]cq.Var)
	eq := cq.NewEqClasses(q)
	for _, v := range q.BodyVars() {
		rep := t.find(int(vars[v]))
		first, ok := classFirst[rep]
		if !ok {
			classFirst[rep] = v
			if c, bound := t.ConstOf(vars[v]); bound {
				if _, already := eq.Const(v); !already {
					out.Eqs = append(out.Eqs, cq.Equality{Left: v, Right: cq.C(c)})
				}
			}
			continue
		}
		if !eq.Same(first, v) {
			out.Eqs = append(out.Eqs, cq.Equality{Left: first, Right: cq.Term{Var: v}})
		}
	}
	return out, false, nil
}

// ViewFDHolds decides whether the functional dependency X → Y (given as
// head positions of q) holds on q(d) for *every* database instance d of s
// satisfying deps.  This is the two-copy chase test, sound and complete
// for conjunctive queries under EGDs:
//
//  1. freeze two disjoint copies of q's body;
//  2. equate the head-X terms of the copies;
//  3. chase with deps;
//  4. the FD holds iff the chase fails (no counterexample database exists)
//     or every head-Y pair has been equated.
func ViewFDHolds(s *schema.Schema, deps []fd.FD, q *cq.Query, x, y []int) (bool, error) {
	for _, p := range append(append([]int{}, x...), y...) {
		if p < 0 || p >= len(q.Head) {
			return false, fmt.Errorf("chase: head position %d out of range", p)
		}
	}
	t := NewTableau(s)
	q1 := q.Rename("l_")
	q2 := q.Rename("r_")
	v1, err := Freeze(t, q1)
	if err != nil {
		return false, err
	}
	v2, err := Freeze(t, q2)
	if err != nil {
		return false, err
	}
	h1, err := HeadTerms(t, q1, v1)
	if err != nil {
		return false, err
	}
	h2, err := HeadTerms(t, q2, v2)
	if err != nil {
		return false, err
	}
	for _, p := range x {
		if err := t.Assert(h1[p], h2[p]); err != nil {
			return false, err
		}
	}
	if _, err := t.Run(deps); err != nil {
		return false, err
	}
	if t.Failed() {
		// The hypothetical pair of answer tuples agreeing on X cannot
		// exist over any instance satisfying deps; the FD holds
		// vacuously.
		return true, nil
	}
	for _, p := range y {
		c1, ok1 := t.ConstOf(h1[p])
		c2, ok2 := t.ConstOf(h2[p])
		if ok1 && ok2 && c1 == c2 {
			continue
		}
		if !t.Same(h1[p], h2[p]) {
			return false, nil
		}
	}
	return true, nil
}

// ViewKeyHolds reports whether the key positions keyPos functionally
// determine the whole head of q on every deps-satisfying instance — i.e.
// whether q's answers always satisfy a key dependency on keyPos.
func ViewKeyHolds(s *schema.Schema, deps []fd.FD, q *cq.Query, keyPos []int) (bool, error) {
	all := make([]int, len(q.Head))
	for i := range all {
		all[i] = i
	}
	return ViewFDHolds(s, deps, q, keyPos, all)
}
