package chase

import (
	"fmt"

	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
)

// Tuple-generating dependencies (TGDs) extend the chase beyond the
// paper's key dependencies to the referential integrity constraints of
// its introduction: an inclusion dependency R[X] ⊆ S[Y] is the TGD
// ∀x̄ R(x̄) → ∃z̄ S(...), and chasing with both EGDs and TGDs decides
// containment — hence mapping round-trips — under keys *plus* inclusion
// dependencies, which is exactly what makes the paper's §1 transformation
// provable rather than merely testable.

// TGDAtom is one atom of a TGD, with named variables (no constants).
type TGDAtom struct {
	Rel  string
	Vars []string
}

// TGD is a tuple-generating dependency Body → Head.  Variables shared
// between body and head are universally quantified (the frontier); head
// variables absent from the body are existential.
type TGD struct {
	Body []TGDAtom
	Head []TGDAtom
}

// String renders "R(x, y) -> S(y, ?z)".
func (t TGD) String() string {
	str := func(atoms []TGDAtom) string {
		out := ""
		for i, a := range atoms {
			if i > 0 {
				out += ", "
			}
			out += a.Rel + "("
			for j, v := range a.Vars {
				if j > 0 {
					out += ", "
				}
				out += v
			}
			out += ")"
		}
		return out
	}
	return str(t.Body) + " -> " + str(t.Head)
}

// Validate checks arities and type consistency of the dependency under s:
// every occurrence of a variable must have one attribute type.
func (t TGD) Validate(s *schema.Schema) error {
	if len(t.Body) == 0 || len(t.Head) == 0 {
		return fmt.Errorf("chase: TGD needs a body and a head")
	}
	types := map[string]int64{}
	check := func(atoms []TGDAtom) error {
		for _, a := range atoms {
			r := s.Relation(a.Rel)
			if r == nil {
				return fmt.Errorf("chase: TGD uses unknown relation %q", a.Rel)
			}
			if len(a.Vars) != r.Arity() {
				return fmt.Errorf("chase: TGD atom %s has %d vars, want %d", a.Rel, len(a.Vars), r.Arity())
			}
			for i, v := range a.Vars {
				if v == "" {
					return fmt.Errorf("chase: TGD atom %s has an empty variable", a.Rel)
				}
				want := int64(r.Attrs[i].Type)
				if prev, ok := types[v]; ok && prev != want {
					return fmt.Errorf("chase: TGD variable %s used at types T%d and T%d", v, prev, want)
				}
				types[v] = want
			}
		}
		return nil
	}
	if err := check(t.Body); err != nil {
		return err
	}
	return check(t.Head)
}

// frontier returns the universally quantified variables that the head
// exports: body variables that also occur in the head.  (This is the
// frontier of the standard weak-acyclicity definition.)
func (t TGD) frontier() map[string]bool {
	inBody := map[string]bool{}
	for _, a := range t.Body {
		for _, v := range a.Vars {
			inBody[v] = true
		}
	}
	f := map[string]bool{}
	for _, a := range t.Head {
		for _, v := range a.Vars {
			if inBody[v] {
				f[v] = true
			}
		}
	}
	return f
}

// RunWithTGDs chases the tableau with EGDs and TGDs to fixpoint using the
// standard (restricted) chase: in each round, close under the EGDs, then
// fire every TGD trigger whose head is not already satisfied.  maxRounds
// bounds the TGD rounds (the chase need not terminate for arbitrary
// TGDs); exceeding it returns an error.  Use WeaklyAcyclic to check
// termination is guaranteed first.
func (t *Tableau) RunWithTGDs(egds []fd.FD, tgds []TGD, maxRounds int) (Stats, error) {
	var total Stats
	for _, d := range tgds {
		if err := d.Validate(t.Schema); err != nil {
			return total, err
		}
	}
	for round := 0; ; round++ {
		st, err := t.Run(egds)
		total.Iterations += st.Iterations
		total.Merges += st.Merges
		if err != nil || t.Failed() {
			return total, err
		}
		fired := 0
		for _, d := range tgds {
			n, err := t.fireTGD(d)
			if err != nil {
				return total, err
			}
			fired += n
		}
		if fired == 0 {
			return total, nil
		}
		if round >= maxRounds {
			return total, fmt.Errorf("chase: TGD chase did not terminate within %d rounds", maxRounds)
		}
	}
}

// fireTGD finds every homomorphism of d.Body into the tableau and, when
// the head has no extension homomorphism, adds head rows with fresh
// nulls for the existential variables.  It returns the number of
// triggers fired.
func (t *Tableau) fireTGD(d TGD) (int, error) {
	// Collect current rows once; rows added by this firing pass are not
	// re-matched until the next round (standard round-based chase).
	snapshot := make([]row, len(t.rows))
	copy(snapshot, t.rows)

	var bindings []map[string]int // variable -> term representative
	var match func(i int, binding map[string]int)
	match = func(i int, binding map[string]int) {
		if i == len(d.Body) {
			cp := make(map[string]int, len(binding))
			for k, v := range binding {
				cp[k] = v
			}
			bindings = append(bindings, cp)
			return
		}
		atom := d.Body[i]
		ri := t.Schema.RelationIndex(atom.Rel)
		for _, r := range snapshot {
			if r.rel != ri {
				continue
			}
			var added []string
			ok := true
			for p, v := range atom.Vars {
				rep := t.find(int(r.cells[p]))
				if prev, bound := binding[v]; bound {
					if t.find(prev) != rep {
						ok = false
						break
					}
					continue
				}
				binding[v] = rep
				added = append(added, v)
			}
			if ok {
				match(i+1, binding)
			}
			for _, v := range added {
				delete(binding, v)
			}
		}
	}
	match(0, map[string]int{})

	fired := 0
	for _, b := range bindings {
		if t.headSatisfied(d, b, snapshot) {
			continue
		}
		// Fire: add the head atoms with fresh nulls for existentials.
		ext := map[string]Term{}
		for _, a := range d.Head {
			ri := t.Schema.RelationIndex(a.Rel)
			rel := t.Schema.Relations[ri]
			cells := make([]Term, len(a.Vars))
			for p, v := range a.Vars {
				if rep, ok := b[v]; ok {
					cells[p] = Term(rep)
					continue
				}
				tm, ok := ext[v]
				if !ok {
					tm = t.NewNull(rel.Attrs[p].Type)
					ext[v] = tm
				}
				cells[p] = tm
			}
			if err := t.AddRow(a.Rel, cells); err != nil {
				return fired, err
			}
		}
		fired++
	}
	return fired, nil
}

// headSatisfied reports whether the head of d has a homomorphic extension
// of binding b into the snapshot rows.
func (t *Tableau) headSatisfied(d TGD, b map[string]int, snapshot []row) bool {
	var match func(i int, binding map[string]int) bool
	match = func(i int, binding map[string]int) bool {
		if i == len(d.Head) {
			return true
		}
		atom := d.Head[i]
		ri := t.Schema.RelationIndex(atom.Rel)
		for _, r := range snapshot {
			if r.rel != ri {
				continue
			}
			var added []string
			ok := true
			for p, v := range atom.Vars {
				rep := t.find(int(r.cells[p]))
				if prev, bound := binding[v]; bound {
					if t.find(prev) != rep {
						ok = false
						break
					}
					continue
				}
				binding[v] = rep
				added = append(added, v)
			}
			if ok && match(i+1, binding) {
				return true
			}
			for _, v := range added {
				delete(binding, v)
			}
		}
		return false
	}
	binding := make(map[string]int, len(b))
	for k, v := range b {
		binding[k] = v
	}
	return match(0, binding)
}

// WeaklyAcyclic reports whether the TGD set is weakly acyclic — the
// standard sufficient condition for chase termination.  The dependency
// graph has a node per schema position (relation, attribute); for each
// TGD, each frontier occurrence in the body with position p:
//
//   - a regular edge p → q for every occurrence q of the same variable in
//     the head, and
//   - a special edge p → q for every position q of an existential
//     variable in the head.
//
// The set is weakly acyclic iff no cycle passes through a special edge.
func WeaklyAcyclic(s *schema.Schema, tgds []TGD) bool {
	type pos struct {
		rel string
		p   int
	}
	type edge struct {
		to      pos
		special bool
	}
	adj := map[pos][]edge{}
	for _, d := range tgds {
		frontier := d.frontier()
		// Body positions per frontier variable.
		bodyPos := map[string][]pos{}
		for _, a := range d.Body {
			for p, v := range a.Vars {
				bodyPos[v] = append(bodyPos[v], pos{a.Rel, p})
			}
		}
		for _, a := range d.Head {
			for p, v := range a.Vars {
				if frontier[v] {
					for _, bp := range bodyPos[v] {
						adj[bp] = append(adj[bp], edge{pos{a.Rel, p}, false})
					}
					continue
				}
				// Existential: special edge from every frontier body
				// position of the TGD.
				for fv := range frontier {
					for _, bp := range bodyPos[fv] {
						adj[bp] = append(adj[bp], edge{pos{a.Rel, p}, true})
					}
				}
			}
		}
	}
	// A cycle through a special edge exists iff some special edge u→v has
	// a path v →* u.  Check reachability per special edge (graphs here
	// are tiny).
	reach := func(from, to pos) bool {
		seen := map[pos]bool{from: true}
		stack := []pos{from}
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if cur == to {
				return true
			}
			for _, e := range adj[cur] {
				if !seen[e.to] {
					seen[e.to] = true
					stack = append(stack, e.to)
				}
			}
		}
		return false
	}
	for u, edges := range adj {
		for _, e := range edges {
			if e.special && reach(e.to, u) {
				return false
			}
		}
	}
	return true
}
