package chase

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

// The view-FD two-copy test, validated against brute-force search over
// small instances.

func TestViewFDHoldsIdentityView(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T2)")
	deps := fd.KeyFDs(s)
	q := cq.MustParse("V(X, Y) :- R(X, Y).")
	// Key position 0 determines position 1 on every key-satisfying
	// instance (the view is R itself).
	ok, err := ViewFDHolds(s, deps, q, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("key FD should transfer to the identity view")
	}
	// Position 1 does not determine position 0.
	ok, err = ViewFDHolds(s, deps, q, []int{1}, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-key attribute should not determine the key")
	}
}

func TestViewFDHoldsProjectionLosesKey(t *testing.T) {
	// Projecting away the key: the remaining column no longer has any FD
	// guaranteed except trivial ones.
	s := schema.MustParse("R(k*:T1, a:T2, b:T3)")
	deps := fd.KeyFDs(s)
	q := cq.MustParse("V(Y, Z) :- R(X, Y, Z).")
	ok, err := ViewFDHolds(s, deps, q, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a should not determine b after projecting out the key")
	}
	// Trivial FD still holds.
	ok, _ = ViewFDHolds(s, deps, q, []int{0}, []int{0})
	if !ok {
		t.Error("trivial FD must hold")
	}
}

func TestViewFDHoldsJoinTransfers(t *testing.T) {
	// V(K, B) :- R(K, A), S(A', B), A = A' with both keys: K -> A -> B,
	// so K determines B in the view.
	s := schema.MustParse("R(k*:T1, a:T2)\nS(a2*:T2, b:T3)")
	deps := fd.KeyFDs(s)
	q := cq.MustParse("V(K, B) :- R(K, A), S(A2, B), A = A2.")
	ok, err := ViewFDHolds(s, deps, q, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("transitive key chain should transfer through the join")
	}
	// Without the key on S the chain breaks.
	s2 := schema.MustParse("R(k*:T1, a:T2)\nS(a2:T2, b:T3)")
	ok, err = ViewFDHolds(s2, fd.KeyFDs(s2), q, []int{0}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("without S's key the FD should fail")
	}
}

func TestViewKeyHolds(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T2)")
	deps := fd.KeyFDs(s)
	ok, err := ViewKeyHolds(s, deps, cq.MustParse("V(X, Y) :- R(X, Y)."), []int{0})
	if err != nil || !ok {
		t.Errorf("identity view should keep its key: %v %v", ok, err)
	}
	ok, err = ViewKeyHolds(s, deps, cq.MustParse("V(Y, X) :- R(X, Y)."), []int{1})
	if err != nil || !ok {
		t.Errorf("swapped view keyed on the right position should hold: %v %v", ok, err)
	}
	ok, err = ViewKeyHolds(s, deps, cq.MustParse("V(Y, X) :- R(X, Y)."), []int{0})
	if err != nil || ok {
		t.Errorf("swapped view keyed on the non-key should fail: %v %v", ok, err)
	}
}

func TestViewFDHoldsConstantSelection(t *testing.T) {
	// V(Y) :- R(X, Y), X = c: on key-satisfying instances there is at
	// most one such Y, so {} -> {0} holds on the view.
	s := schema.MustParse("R(k*:T1, a:T2)")
	deps := fd.KeyFDs(s)
	q := cq.MustParse("V(Y) :- R(X, Y), X = T1:5.")
	ok, err := ViewFDHolds(s, deps, q, nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("constant key selection should make the view single-valued")
	}
	// Selecting a non-key does not.
	q2 := cq.MustParse("V(X) :- R(X, Y), Y = T2:5.")
	ok, err = ViewFDHolds(s, deps, q2, nil, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("non-key selection should not make the view single-valued")
	}
}

func TestViewFDHoldsPositionsValidated(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T2)")
	q := cq.MustParse("V(X) :- R(X, Y).")
	if _, err := ViewFDHolds(s, nil, q, []int{5}, []int{0}); err == nil {
		t.Error("out-of-range X position accepted")
	}
	if _, err := ViewFDHolds(s, nil, q, []int{0}, []int{-1}); err == nil {
		t.Error("out-of-range Y position accepted")
	}
}

// Brute-force cross-check: enumerate small key-satisfying instances, and
// compare ViewFDHolds against evaluating the view and testing the FD.
func TestViewFDHoldsAgainstBruteForce(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	queries := []*cq.Query{
		cq.MustParse("V(X, Y) :- R(X, Y)."),
		cq.MustParse("V(Y, X) :- R(X, Y)."),
		cq.MustParse("V(X, B) :- R(X, Y), R(A, B), Y = A."),
		cq.MustParse("V(Y, B) :- R(X, Y), R(A, B)."),
	}
	fds := [][2][]int{
		{{0}, {1}}, {{1}, {0}}, {{0}, {0}},
	}
	// All key-satisfying instances of R over a 2-element domain with at
	// most 2 tuples (keys distinct): enumerate.
	dom := []int64{1, 2}
	var insts []*instance.Database
	var tuples []instance.Tuple
	for _, k := range dom {
		for _, a := range dom {
			tuples = append(tuples, instance.Tuple{
				value.Value{Type: 1, N: k}, value.Value{Type: 1, N: a},
			})
		}
	}
	for i := 0; i < len(tuples); i++ {
		d := instance.NewDatabase(s)
		d.Relations[0].MustInsert(tuples[i])
		if d.SatisfiesKeys() {
			insts = append(insts, d)
		}
		for j := i + 1; j < len(tuples); j++ {
			d2 := instance.NewDatabase(s)
			d2.Relations[0].MustInsert(tuples[i])
			d2.Relations[0].MustInsert(tuples[j])
			if d2.SatisfiesKeys() {
				insts = append(insts, d2)
			}
		}
	}
	if len(insts) < 6 {
		t.Fatalf("expected several instances, got %d", len(insts))
	}
	for _, q := range queries {
		for _, f := range fds {
			claim, err := ViewFDHolds(s, deps, q, f[0], f[1])
			if err != nil {
				t.Fatal(err)
			}
			// Brute force: the claim says the FD holds on ALL instances.
			holdsEverywhere := true
			for _, d := range insts {
				ans, err := cq.Eval(q, d)
				if err != nil {
					t.Fatal(err)
				}
				if !ans.SatisfiesFD(f[0], f[1]) {
					holdsEverywhere = false
					break
				}
			}
			if claim != holdsEverywhere {
				t.Errorf("ViewFDHolds(%s, %v->%v) = %v, brute force (small instances) = %v",
					q, f[0], f[1], claim, holdsEverywhere)
			}
		}
	}
	_ = rand.Int
}

func TestChaseQueryDirect(t *testing.T) {
	s := schema.MustParse("R(k*:T1, a:T1)")
	deps := fd.KeyFDs(s)
	q := cq.MustParse("V(K, A, B) :- R(K, A), R(K2, B), K = K2.")
	out, unsat, err := ChaseQuery(s, deps, q)
	if err != nil || unsat {
		t.Fatalf("chase query: %v %v", unsat, err)
	}
	eq := cq.NewEqClasses(out)
	if !eq.Same("A", "B") {
		t.Errorf("key-forced equality not added: %s", out)
	}
	// Unsatisfiable under keys.
	q2 := cq.MustParse("V(K) :- R(K, A), R(K2, B), K = K2, A = T1:1, B = T1:2.")
	_, unsat, err = ChaseQuery(s, deps, q2)
	if err != nil || !unsat {
		t.Errorf("should be unsatisfiable: %v %v", unsat, err)
	}
	// Constant propagation through the key merge.
	q3 := cq.MustParse("V(K, B) :- R(K, A), R(K2, B), K = K2, A = T1:7.")
	out3, unsat, err := ChaseQuery(s, deps, q3)
	if err != nil || unsat {
		t.Fatal(err)
	}
	eq3 := cq.NewEqClasses(out3)
	if c, ok := eq3.Const("B"); !ok || c.N != 7 {
		t.Errorf("constant not propagated to B: %s", out3)
	}
	// Errors surface.
	if _, _, err := ChaseQuery(s, deps, cq.MustParse("V(X) :- Z(X).")); err == nil {
		t.Error("unknown relation accepted")
	}
}
