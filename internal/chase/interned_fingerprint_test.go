package chase

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/gen"
	"keyedeq/internal/value"
)

// This file extends the semi-naive differential gate across the corpus
// families the interned runtime sweeps (keyed, wide, graph-star,
// graph-long): the dense-worklist chase must reach the same fixpoint as
// the full-rescan reference with identical statistics, and the canonical
// database it produces must freeze into an interned view that decodes
// back to exactly the surface tuples — the chase-side half of the
// interned differential wall.

func internedChaseFamilies() []string {
	return []string{"keyed", "wide", "graph-star", "graph-long"}
}

func TestDenseChaseFingerprintsAcrossFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow in -short mode")
	}
	for fi, name := range internedChaseFamilies() {
		name, fi := name, fi
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4600 + fi)))
			fam, err := gen.PairCorpus(rng, name, 150)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range fam.Pairs {
				for _, q := range []*cq.Query{p.Left, p.Right} {
					semi, naive, semiStats, naiveStats := chaseBoth(t, fam.Schema, fam.Deps, q)
					if semi.Failed() != naive.Failed() {
						t.Fatalf("%s: failed mismatch for %s", p.Note, q)
					}
					if semiStats.Merges != naiveStats.Merges {
						t.Fatalf("%s: merges mismatch: semi=%d naive=%d for %s",
							p.Note, semiStats.Merges, naiveStats.Merges, q)
					}
					if !semi.Failed() && !sameFingerprint(fingerprint(semi), fingerprint(naive)) {
						t.Fatalf("%s: partition mismatch for %s", p.Note, q)
					}

					// The dense worklist preserves requeue order, so two runs
					// of the same chase must report identical statistics.
					again := NewTableau(fam.Schema)
					if _, err := Freeze(again, q); err != nil {
						t.Fatal(err)
					}
					againStats, err := again.Run(fam.Deps)
					if err != nil {
						t.Fatal(err)
					}
					if againStats != semiStats {
						t.Fatalf("%s: chase stats not deterministic: %+v vs %+v for %s",
							p.Note, semiStats, againStats, q)
					}
				}
			}
		})
	}
}

func TestCanonicalDatabaseFreezeRoundTripsAcrossFamilies(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus sweep is slow in -short mode")
	}
	for fi, name := range internedChaseFamilies() {
		name, fi := name, fi
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(4700 + fi)))
			fam, err := gen.PairCorpus(rng, name, 60)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range fam.Pairs {
				tb := NewTableau(fam.Schema)
				if _, err := Freeze(tb, p.Left); err != nil {
					t.Fatal(err)
				}
				if _, err := tb.Run(fam.Deps); err != nil {
					t.Fatal(err)
				}
				if tb.Failed() {
					continue
				}
				var alloc value.Allocator
				for _, c := range p.Left.Constants() {
					alloc.Reserve(c)
				}
				db, _, err := tb.ToDatabase(&alloc)
				if err != nil {
					t.Fatal(err)
				}
				fz := db.Frozen()
				for ri, r := range db.Relations {
					tuples := r.Tuples()
					fr := fz.Relations[ri]
					if fr.NumRows() != len(tuples) {
						t.Fatalf("%s: relation %d has %d frozen rows, %d tuples",
							p.Note, ri, fr.NumRows(), len(tuples))
					}
					for i, tup := range tuples {
						dec := fz.DecodeTuple(ri, i)
						for pos := range tup {
							if dec[pos] != tup[pos] {
								t.Fatalf("%s: relation %d row %d decodes to %v, want %v",
									p.Note, ri, i, dec, tup)
							}
						}
					}
				}
			}
		})
	}
}
