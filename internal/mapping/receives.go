package mapping

import (
	"keyedeq/internal/cq"
)

// SchemaAttrRef names an attribute of a schema by relation name and
// position.
type SchemaAttrRef struct {
	Rel string
	Pos int
}

// AttrReceives reports whether destination attribute dst (of m.Dst)
// receives source attribute src (of m.Src) under m, per the paper's
// definition lifted to mappings: in the view defining dst's relation,
// dst's head position receives src.
func (m *Mapping) AttrReceives(dst, src SchemaAttrRef) bool {
	q := m.QueryFor(dst.Rel)
	if q == nil || dst.Pos < 0 || dst.Pos >= len(q.Head) {
		return false
	}
	recs := cq.Receives(q)
	return recs[dst.Pos].ReceivesAttr(src.Rel, src.Pos)
}

// ReceivesTable computes, for every destination attribute, the set of
// source attributes it receives and whether it receives a constant.
func (m *Mapping) ReceivesTable() map[SchemaAttrRef]cq.Received {
	out := make(map[SchemaAttrRef]cq.Received)
	for k, q := range m.Queries {
		rel := m.Dst.Relations[k]
		recs := cq.Receives(q)
		for p := range rel.Attrs {
			out[SchemaAttrRef{Rel: rel.Name, Pos: p}] = recs[p]
		}
	}
	return out
}

// InvolvedInCondition reports whether source attribute a participates in
// any selection or join condition in any of m's views (the hypothesis of
// Lemma 7).
func (m *Mapping) InvolvedInCondition(a SchemaAttrRef) bool {
	for _, q := range m.Queries {
		if cq.InvolvedInCondition(q, a.Rel, a.Pos) {
			return true
		}
	}
	return false
}

// srcAttrs enumerates the attributes of m's source schema in order.
func (m *Mapping) srcAttrs() []SchemaAttrRef {
	var out []SchemaAttrRef
	for _, r := range m.Src.Relations {
		for p := range r.Attrs {
			out = append(out, SchemaAttrRef{Rel: r.Name, Pos: p})
		}
	}
	return out
}

func (m *Mapping) dstAttrs() []SchemaAttrRef {
	var out []SchemaAttrRef
	for _, r := range m.Dst.Relations {
		for p := range r.Attrs {
			out = append(out, SchemaAttrRef{Rel: r.Name, Pos: p})
		}
	}
	return out
}

// Lemma3Holds checks the paper's Lemma 3 for the pair (alpha, beta)
// establishing S1 ≼ S2: for every attribute A of S1 there is an attribute
// B of S2 such that A is received by B under alpha and B is received by A
// under beta.
func Lemma3Holds(alpha, beta *Mapping) bool {
	for _, a := range alpha.srcAttrs() {
		found := false
		for _, b := range alpha.dstAttrs() {
			if alpha.AttrReceives(b, a) && beta.AttrReceives(a, b) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Lemma4Holds checks Lemma 4: whenever S1-attribute A receives
// S2-attribute B under beta, B receives A under alpha.
func Lemma4Holds(alpha, beta *Mapping) bool {
	for _, a := range beta.dstAttrs() { // attributes of S1
		for _, b := range beta.srcAttrs() { // attributes of S2
			if beta.AttrReceives(a, b) && !alpha.AttrReceives(b, a) {
				return false
			}
		}
	}
	return true
}

// Lemma5Holds checks Lemma 5: if S2-attribute B receives S1-attribute A
// under alpha, and B is received by *some* S1 attribute under beta, then
// B is received by A under beta.
func Lemma5Holds(alpha, beta *Mapping) bool {
	for _, b := range alpha.dstAttrs() { // attributes of S2
		receivedBySomeone := false
		for _, a := range beta.dstAttrs() {
			if beta.AttrReceives(a, b) {
				receivedBySomeone = true
				break
			}
		}
		if !receivedBySomeone {
			continue
		}
		for _, a := range alpha.srcAttrs() { // attributes of S1
			if alpha.AttrReceives(b, a) {
				if !beta.AttrReceives(a, b) {
					return false
				}
			}
		}
	}
	return true
}

// Lemma10Holds checks Lemma 10: no two distinct S1 attributes receive the
// same S2 attribute under beta.
func Lemma10Holds(beta *Mapping) bool {
	for _, b := range beta.srcAttrs() { // attributes of S2
		count := 0
		for _, a := range beta.dstAttrs() { // attributes of S1
			if beta.AttrReceives(a, b) {
				count++
			}
		}
		if count > 1 {
			return false
		}
	}
	return true
}

// Lemma11Holds checks Lemma 11 under its hypothesis (the caller ensures
// both schemas have the same per-type attribute counts): every S1
// attribute is received by some... — precisely, every attribute of S2 is
// received by some attribute of S1 under beta.
func Lemma11Holds(beta *Mapping) bool {
	for _, b := range beta.srcAttrs() {
		received := false
		for _, a := range beta.dstAttrs() {
			if beta.AttrReceives(a, b) {
				received = true
				break
			}
		}
		if !received {
			return false
		}
	}
	return true
}

// Lemma12Holds checks Lemma 12 under the same hypothesis: no S1 attribute
// receives two distinct S2 attributes under beta.
func Lemma12Holds(beta *Mapping) bool {
	for _, a := range beta.dstAttrs() {
		count := 0
		for _, b := range beta.srcAttrs() {
			if beta.AttrReceives(a, b) {
				count++
			}
		}
		if count > 1 {
			return false
		}
	}
	return true
}
