package mapping

import (
	"strings"
	"testing"

	"keyedeq/internal/schema"
)

var (
	parseSrc = schema.MustParse("R(a:T1, b:T2)")
	parseDst = schema.MustParse("V(x:T1, y:T2)")
)

func TestParseReportsLineAndColumn(t *testing.T) {
	cases := []struct {
		name, text, wantPos string
	}{
		{
			"syntax error on line 2",
			"# comment\nV(X, Y) :- R(X,, Y).",
			"2:16",
		},
		{
			"indented line keeps file column",
			"  V(X, Y) :- R(X, T1:1).",
			"1:19",
		},
		{
			"unknown destination relation",
			"# α\nW(X, Y) :- R(X, Y).",
			"2:1",
		},
		{
			"destination defined twice",
			"V(X, Y) :- R(X, Y).\nV(X, Y) :- R(X, Y).",
			"2:1",
		},
	}
	for _, c := range cases {
		_, err := Parse(parseSrc, parseDst, c.text)
		if err == nil {
			t.Errorf("%s: no error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.wantPos) {
			t.Errorf("%s: error %q does not carry position %s", c.name, err, c.wantPos)
		}
	}
}

func TestParsedViewsCarryPositions(t *testing.T) {
	m, err := Parse(parseSrc, parseDst, "# header\nV(X, Y) :- R(X, Y).")
	if err != nil {
		t.Fatal(err)
	}
	q := m.QueryFor("V")
	if q.Pos.Line != 2 || q.Pos.Col != 1 {
		t.Errorf("view query pos = %v, want 2:1", q.Pos)
	}
	if q.Body[0].Pos.Line != 2 || q.Body[0].Pos.Col != 12 {
		t.Errorf("view body atom pos = %v, want 2:12", q.Body[0].Pos)
	}
}
