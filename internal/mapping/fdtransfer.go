package mapping

import (
	"keyedeq/internal/fd"
)

// Theorem 6 (FD transfer): let S1 ≼ S2 by (α, β), let Y → B hold in some
// relation R of S2, let B be received by attribute A of S1 under β, and
// let every attribute of Y be received by an attribute of a set X in S1
// under β.  Then X → A holds in S1.
//
// TransferredFDs makes the theorem executable: from the key dependencies
// of beta's source schema (S2) it derives the functional dependencies the
// theorem asserts must hold in S1.  Each derived dependency pairs the
// receivers of a key with the receiver of one attribute.  Dependencies
// whose attributes are not received at all are skipped (the theorem's
// hypotheses do not apply).
func TransferredFDs(beta *Mapping) []fd.FD {
	s2 := beta.Src
	var out []fd.FD
	for _, r := range s2.Relations {
		if !r.Keyed() {
			continue
		}
		// X: the S1 attributes receiving the key attributes of R.
		var x []fd.Attr
		complete := true
		for _, kp := range r.Key {
			recs := receiversOf(beta, SchemaAttrRef{Rel: r.Name, Pos: kp})
			if len(recs) == 0 {
				complete = false
				break
			}
			for _, a := range recs {
				x = append(x, fd.Attr{Rel: a.Rel, Pos: a.Pos})
			}
		}
		if !complete {
			continue
		}
		// For each attribute B of R received by some A: emit X → A.
		for p := range r.Attrs {
			for _, a := range receiversOf(beta, SchemaAttrRef{Rel: r.Name, Pos: p}) {
				out = append(out, fd.FD{
					X: append([]fd.Attr(nil), x...),
					Y: []fd.Attr{{Rel: a.Rel, Pos: a.Pos}},
				})
			}
		}
	}
	return out
}

// receiversOf lists the destination attributes (of beta.Dst, i.e. S1)
// that receive the given source attribute (of beta.Src, i.e. S2) under
// beta.
func receiversOf(beta *Mapping, src SchemaAttrRef) []SchemaAttrRef {
	var out []SchemaAttrRef
	for _, a := range beta.dstAttrs() {
		if beta.AttrReceives(a, src) {
			out = append(out, a)
		}
	}
	return out
}
