package mapping

import (
	"fmt"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/schema"
)

// Parse reads a query mapping in textual form: one conjunctive query per
// line, each named for the destination relation it defines:
//
//	# α : schema 1 → schema 2
//	empl(S, N, Sal, D, Y) :- employee(S, N, Sal, D), salespeople(S2, Y), S = S2.
//	dept(I, DN, M) :- department(I, DN, M).
//
// Every destination relation must be defined exactly once; bodies are
// over the source schema.  Blank lines and '#' comments are ignored.
func Parse(src, dst *schema.Schema, text string) (*Mapping, error) {
	queries := make([]*cq.Query, len(dst.Relations))
	for lineno, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		q, err := cq.Parse(line)
		if err != nil {
			return nil, fmt.Errorf("mapping: line %d: %v", lineno+1, err)
		}
		i := dst.RelationIndex(q.HeadRel)
		if i < 0 {
			return nil, fmt.Errorf("mapping: line %d: %q is not a destination relation", lineno+1, q.HeadRel)
		}
		if queries[i] != nil {
			return nil, fmt.Errorf("mapping: line %d: %q defined twice", lineno+1, q.HeadRel)
		}
		queries[i] = q
	}
	for i, q := range queries {
		if q == nil {
			return nil, fmt.Errorf("mapping: no view defines %q", dst.Relations[i].Name)
		}
	}
	return New(src, dst, queries)
}
