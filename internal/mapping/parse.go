package mapping

import (
	"fmt"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/schema"
)

// Parse reads a query mapping in textual form: one conjunctive query per
// line, each named for the destination relation it defines:
//
//	# α : schema 1 → schema 2
//	empl(S, N, Sal, D, Y) :- employee(S, N, Sal, D), salespeople(S2, Y), S = S2.
//	dept(I, DN, M) :- department(I, DN, M).
//
// Every destination relation must be defined exactly once; bodies are
// over the source schema.  Blank lines and '#' comments are ignored.
// Parse errors carry the line:col of the offending byte within text.
func Parse(src, dst *schema.Schema, text string) (*Mapping, error) {
	queries := make([]*cq.Query, len(dst.Relations))
	for lineno, line := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		base := cq.Pos{Line: lineno + 1, Col: cq.LineIndent(line) + 1}
		q, err := cq.ParseAt(trimmed, base)
		if err != nil {
			return nil, fmt.Errorf("mapping: %s", cq.PositionedMsg(err, base))
		}
		i := dst.RelationIndex(q.HeadRel)
		if i < 0 {
			return nil, fmt.Errorf("mapping: %s: %q is not a destination relation", q.Pos, q.HeadRel)
		}
		if queries[i] != nil {
			return nil, fmt.Errorf("mapping: %s: %q defined twice", q.Pos, q.HeadRel)
		}
		queries[i] = q
	}
	for i, q := range queries {
		if q == nil {
			return nil, fmt.Errorf("mapping: no view defines %q", dst.Relations[i].Name)
		}
	}
	return New(src, dst, queries)
}
