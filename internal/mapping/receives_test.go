package mapping

import (
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func isoPair(t *testing.T, text string, seed int64) (*Mapping, *Mapping, *schema.Schema, *schema.Schema) {
	t.Helper()
	s1 := schema.MustParse(text)
	rng := rand.New(rand.NewSource(seed))
	s2, iso := schema.RandomIsomorph(s1, rng)
	alpha, beta, err := FromIsomorphism(s1, s2, iso)
	if err != nil {
		t.Fatal(err)
	}
	return alpha, beta, s1, s2
}

func TestAttrReceivesBasic(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T2)")
	s2 := schema.MustParse("P(a*:T2, k:T1)")
	alpha := MustNew(s1, s2, []*cq.Query{cq.MustParse("P(Y, X) :- R(X, Y).")})
	if !alpha.AttrReceives(SchemaAttrRef{"P", 0}, SchemaAttrRef{"R", 1}) {
		t.Error("P.0 should receive R.1")
	}
	if !alpha.AttrReceives(SchemaAttrRef{"P", 1}, SchemaAttrRef{"R", 0}) {
		t.Error("P.1 should receive R.0")
	}
	if alpha.AttrReceives(SchemaAttrRef{"P", 0}, SchemaAttrRef{"R", 0}) {
		t.Error("P.0 should not receive R.0")
	}
	if alpha.AttrReceives(SchemaAttrRef{"nope", 0}, SchemaAttrRef{"R", 0}) {
		t.Error("unknown relation should not receive")
	}
	if alpha.AttrReceives(SchemaAttrRef{"P", 9}, SchemaAttrRef{"R", 0}) {
		t.Error("out-of-range position should not receive")
	}
}

func TestReceivesTable(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T2)")
	s2 := schema.MustParse("P(k*:T1, a:T2, c:T3)")
	m := MustNew(s1, s2, []*cq.Query{cq.MustParse("P(X, Y, T3:5) :- R(X, Y).")})
	tbl := m.ReceivesTable()
	if rec := tbl[SchemaAttrRef{"P", 2}]; !rec.HasConst || rec.Const != (value.Value{Type: 3, N: 5}) {
		t.Errorf("P.2 should receive the constant: %+v", rec)
	}
	if rec := tbl[SchemaAttrRef{"P", 0}]; !rec.ReceivesAttr("R", 0) {
		t.Errorf("P.0 should receive R.0: %+v", rec)
	}
}

func TestInvolvedInConditionMapping(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T2)\nS(b*:T2)")
	s2 := schema.MustParse("P(k*:T1)")
	m := MustNew(s1, s2, []*cq.Query{cq.MustParse("P(X) :- R(X, Y), S(Z), Y = Z.")})
	if !m.InvolvedInCondition(SchemaAttrRef{"R", 1}) {
		t.Error("R.1 is joined")
	}
	if !m.InvolvedInCondition(SchemaAttrRef{"S", 0}) {
		t.Error("S.0 is joined")
	}
	if m.InvolvedInCondition(SchemaAttrRef{"R", 0}) {
		t.Error("R.0 is not in any condition")
	}
}

// Lemmas 3–5, 10–12 must hold for every dominance pair built from an
// isomorphism (since β∘α = id by construction).  Randomized over schemas.
func TestLemmasHoldOnIsomorphismPairs(t *testing.T) {
	fixtures := []string{
		"R(k*:T1, a:T2)",
		"R(k*:T1, a:T2)\nS(x*:T3, y:T1)",
		"R(k*:T1, k2*:T2, a:T3, b:T3)",
		"R(a*:T1)\nS(b*:T1)\nU(c*:T1, d:T2)",
	}
	for seed, text := range fixtures {
		alpha, beta, _, _ := isoPair(t, text, int64(seed+1))
		if !Lemma3Holds(alpha, beta) {
			t.Errorf("%q: Lemma 3 fails", text)
		}
		if !Lemma4Holds(alpha, beta) {
			t.Errorf("%q: Lemma 4 fails", text)
		}
		if !Lemma5Holds(alpha, beta) {
			t.Errorf("%q: Lemma 5 fails", text)
		}
		if !Lemma10Holds(beta) {
			t.Errorf("%q: Lemma 10 fails", text)
		}
		if !Lemma11Holds(beta) {
			t.Errorf("%q: Lemma 11 fails", text)
		}
		if !Lemma12Holds(beta) {
			t.Errorf("%q: Lemma 12 fails", text)
		}
		// And symmetrically for the pair establishing S2 ≼ S1.
		if !Lemma3Holds(beta, alpha) || !Lemma4Holds(beta, alpha) || !Lemma5Holds(beta, alpha) {
			t.Errorf("%q: symmetric lemmas fail", text)
		}
	}
}

// A mapping pair that is NOT a dominance pair can violate the lemmas —
// the checkers must be able to say no.
func TestLemmaCheckersCanFail(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T1)")
	s2 := schema.MustParse("P(k*:T1, a:T1)")
	// alpha drops information (constant column); beta cannot receive.
	alpha := MustNew(s1, s2, []*cq.Query{cq.MustParse("P(X, T1:9) :- R(X, Y).")})
	beta := MustNew(s2, s1, []*cq.Query{cq.MustParse("R(X, T1:9) :- P(X, Y).")})
	if Lemma3Holds(alpha, beta) {
		t.Error("Lemma 3 should fail: R.1 is never received")
	}
	// beta receiving the same attribute twice violates Lemma 10.
	beta2 := MustNew(s2, s1, []*cq.Query{cq.MustParse("R(X, X) :- P(X, Y).")})
	if Lemma10Holds(beta2) {
		t.Error("Lemma 10 should fail: P.0 received by both R.0 and R.1")
	}
	// Lemma 12: one S1 attribute receiving two S2 attributes (the head
	// variable's class spans P.1 and P.0 of different occurrences).
	beta3 := MustNew(s2, s1, []*cq.Query{cq.MustParse("R(X, Y) :- P(X, Y), P(A, B), Y = A.")})
	if Lemma12Holds(beta3) {
		t.Error("Lemma 12 should fail: R.1 receives both P.1 and P.0")
	}
}

// Theorem 6 executable check: the FDs transferred from S2's keys through
// beta hold on every key-satisfying instance of S1 whenever (alpha, beta)
// is a dominance pair.
func TestTheorem6TransferredFDsHold(t *testing.T) {
	fixtures := []string{
		"R(k*:T1, a:T2)",
		"R(k*:T1, a:T2)\nS(x*:T3, y:T1)",
		"R(k*:T1, k2*:T2, a:T3)",
	}
	rng := rand.New(rand.NewSource(21))
	for seed, text := range fixtures {
		alpha, beta, s1, _ := isoPair(t, text, int64(seed+10))
		_ = alpha
		fds := TransferredFDs(beta)
		if len(fds) == 0 {
			t.Fatalf("%q: no transferred FDs", text)
		}
		for trial := 0; trial < 40; trial++ {
			d := randomKeyedInstance(s1, rng, 5)
			if !d.SatisfiesKeys() {
				t.Fatal("generator broke keys")
			}
			for _, f := range fds {
				if !f.Holds(d) {
					t.Fatalf("%q: transferred FD %s fails on key-satisfying instance\n%s", text, f, d)
				}
			}
		}
	}
}

// randomKeyedInstance builds a random instance satisfying all keys by
// giving every tuple a fresh key part.
func randomKeyedInstance(s *schema.Schema, rng *rand.Rand, maxTuples int) *instance.Database {
	d := instance.NewDatabase(s)
	var alloc value.Allocator
	for ri, r := range s.Relations {
		n := rng.Intn(maxTuples) + 1
		for i := 0; i < n; i++ {
			tup := make(instance.Tuple, r.Arity())
			for p, a := range r.Attrs {
				if r.IsKeyPos(p) {
					tup[p] = alloc.Fresh(a.Type)
				} else {
					tup[p] = value.Value{Type: a.Type, N: int64(rng.Intn(4) + 1)}
				}
			}
			d.Relations[ri].MustInsert(tup)
		}
	}
	return d
}
