package mapping

import (
	"context"
	"fmt"

	"keyedeq/internal/chase"
	"keyedeq/internal/containment"
	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/schema"
)

// EquivFunc decides CQ equivalence under dependencies.  Its signature
// matches containment.EquivalentUnder, so accelerated deciders — e.g.
// the batch engine's cached pool — slot in by plain function-type
// assignability without this package importing them.
type EquivFunc func(q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error)

// EquivCtxFunc is EquivFunc with a context threaded through, so
// cancellation and per-request deadlines reach the underlying chase and
// homomorphism searches.  The engine pool's EquivCtx matches it.
type EquivCtxFunc func(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error)

// DropCtx adapts a context-free decider to EquivCtxFunc.  The returned
// function ignores ctx — it exists so the ctx-threaded code paths have
// a single shape; callers that care about cancellation supply a real
// EquivCtxFunc instead.  A nil equiv yields nil, preserving "use the
// default decider" through the adaptation.
func DropCtx(equiv EquivFunc) EquivCtxFunc {
	if equiv == nil {
		return nil
	}
	return func(_ context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
		return equiv(q1, q2, s, deps)
	}
}

// IsIdentityOn reports whether m (a mapping S → S, possibly with Src and
// Dst structurally equal) is the identity on every instance of its source
// satisfying deps: each view is CQ-equivalent to the identity query of
// its relation under deps.  With deps = fd.KeyFDs(src) this is exactly
// the paper's "β∘α is the identity map on i(S1)" over keyed instances.
func (m *Mapping) IsIdentityOn(deps []fd.FD) (bool, error) {
	return m.IsIdentityOnWith(deps, containment.EquivalentUnder)
}

// IsIdentityOnWith is IsIdentityOn with the equivalence decision routed
// through equiv (nil falls back to containment.EquivalentUnder).
func (m *Mapping) IsIdentityOnWith(deps []fd.FD, equiv EquivFunc) (bool, error) {
	var ec EquivCtxFunc
	if equiv != nil {
		ec = DropCtx(equiv)
	}
	return m.IsIdentityOnCtx(context.Background(), deps, ec)
}

// IsIdentityOnCtx is IsIdentityOnWith with a context threaded into the
// per-relation equivalence decisions (nil equiv falls back to the
// ctx-aware containment.EquivalentUnderCtxMode on the default search
// runtime).  Cancelling ctx aborts between and inside decisions.
func (m *Mapping) IsIdentityOnCtx(ctx context.Context, deps []fd.FD, equiv EquivCtxFunc) (bool, error) {
	if equiv == nil {
		equiv = func(ctx context.Context, q1, q2 *cq.Query, s *schema.Schema, deps []fd.FD) (bool, containment.Stats, error) {
			return containment.EquivalentUnderCtxMode(ctx, q1, q2, s, deps, cq.SearchDefault)
		}
	}
	if len(m.Src.Relations) != len(m.Dst.Relations) {
		return false, nil
	}
	for i, q := range m.Queries {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		src := m.Src.Relations[i]
		dst := m.Dst.Relations[i]
		if !schema.SameType(src, dst) {
			return false, nil
		}
		id := cq.Identity(src)
		ok, _, err := equiv(ctx, q, id, m.Src, deps)
		if err != nil {
			return false, fmt.Errorf("mapping: identity test for %q: %v", dst.Name, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// RoundTripIsIdentity reports whether β∘α = id on key-satisfying
// instances of alpha's source — the paper's dominance condition
// S1 ≼ S2 by (α, β).  It composes symbolically and decides per-relation
// CQ equivalence with the identity under the source key dependencies.
func RoundTripIsIdentity(alpha, beta *Mapping) (bool, error) {
	return RoundTripIsIdentityWith(alpha, beta, nil)
}

// RoundTripIsIdentityWith is RoundTripIsIdentity with the equivalence
// decision routed through equiv (nil falls back to the sequential path).
func RoundTripIsIdentityWith(alpha, beta *Mapping, equiv EquivFunc) (bool, error) {
	var ec EquivCtxFunc
	if equiv != nil {
		ec = DropCtx(equiv)
	}
	return RoundTripIsIdentityCtx(context.Background(), alpha, beta, ec)
}

// RoundTripIsIdentityCtx is RoundTripIsIdentityWith with a context
// threaded into every per-relation equivalence decision, so a caller's
// cancellation or deadline stops the symbolic verification mid-pair.
func RoundTripIsIdentityCtx(ctx context.Context, alpha, beta *Mapping, equiv EquivCtxFunc) (bool, error) {
	comp, err := Compose(beta, alpha)
	if err != nil {
		return false, err
	}
	return comp.IsIdentityOnCtx(ctx, fd.KeyFDs(alpha.Src), equiv)
}

// IsValid reports whether the mapping is valid in the paper's sense: it
// maps every instance of Src satisfying Src's key dependencies to an
// instance of Dst satisfying Dst's key dependencies.  Decided by the
// chase-based view-key test per destination relation.  Mappings between
// unkeyed schemas are always valid.
func (m *Mapping) IsValid() (bool, error) {
	deps := fd.KeyFDs(m.Src)
	for k, q := range m.Queries {
		rel := m.Dst.Relations[k]
		if !rel.Keyed() {
			continue
		}
		ok, err := chase.ViewKeyHolds(m.Src, deps, q, rel.KeyPositions())
		if err != nil {
			return false, fmt.Errorf("mapping: validity of view %q: %v", rel.Name, err)
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Dominates reports whether (alpha, beta) establish S1 ≼ S2 in the
// paper's full sense: both mappings are valid and β∘α is the identity on
// key-satisfying instances of S1.
func Dominates(alpha, beta *Mapping) (bool, error) {
	if okA, err := alpha.IsValid(); err != nil || !okA {
		return false, err
	}
	if okB, err := beta.IsValid(); err != nil || !okB {
		return false, err
	}
	return RoundTripIsIdentity(alpha, beta)
}
