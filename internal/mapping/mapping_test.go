package mapping

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"keyedeq/internal/cq"
	"keyedeq/internal/fd"
	"keyedeq/internal/instance"
	"keyedeq/internal/schema"
	"keyedeq/internal/value"
)

func v(t value.Type, n int64) value.Value { return value.Value{Type: t, N: n} }

var (
	src2 = schema.MustParse("R(k*:T1, a:T2)")
	dst2 = schema.MustParse("P(k*:T1, a:T2)")
)

func identityLike(t *testing.T) *Mapping {
	t.Helper()
	return MustNew(src2, dst2, []*cq.Query{cq.MustParse("P(X, Y) :- R(X, Y).")})
}

func TestValidateMapping(t *testing.T) {
	if _, err := New(src2, dst2, nil); err == nil {
		t.Error("missing queries accepted")
	}
	if _, err := New(src2, dst2, []*cq.Query{nil}); err == nil {
		t.Error("nil query accepted")
	}
	if _, err := New(src2, dst2, []*cq.Query{cq.MustParse("P(X) :- R(X, Y).")}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := New(src2, dst2, []*cq.Query{cq.MustParse("P(Y, Y) :- R(X, Y).")}); err == nil {
		t.Error("wrong head type accepted")
	}
	if _, err := New(src2, dst2, []*cq.Query{cq.MustParse("P(X, Y) :- ZZ(X, Y).")}); err == nil {
		t.Error("query over unknown relation accepted")
	}
	if m := identityLike(t); m.QueryFor("P") == nil || m.QueryFor("nope") != nil {
		t.Error("QueryFor wrong")
	}
}

func TestApply(t *testing.T) {
	m := identityLike(t)
	d := instance.NewDatabase(src2)
	d.MustInsert("R", v(1, 1), v(2, 5))
	d.MustInsert("R", v(1, 2), v(2, 6))
	out, err := m.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Relation("P")
	if p.Len() != 2 || !p.Has(instance.Tuple{v(1, 1), v(2, 5)}) {
		t.Errorf("Apply wrong: %s", out)
	}
}

func TestIdentityMapping(t *testing.T) {
	m := IdentityMapping(src2)
	d := instance.NewDatabase(src2)
	d.MustInsert("R", v(1, 1), v(2, 5))
	out, err := m.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(d) {
		t.Errorf("identity mapping changed instance: %s vs %s", out, d)
	}
	ok, err := m.IsIdentityOn(fd.KeyFDs(src2))
	if err != nil || !ok {
		t.Errorf("IsIdentityOn(identity) = %v, %v", ok, err)
	}
}

func TestComposeSemantics(t *testing.T) {
	// α: S1 → S2 swaps nothing; β: S2 → S1; compose and compare against
	// sequential application on random instances.
	s1 := schema.MustParse("R(k*:T1, a:T2)")
	s2 := schema.MustParse("P(x*:T2, y:T1)") // attribute order swapped
	alpha := MustNew(s1, s2, []*cq.Query{cq.MustParse("P(Y, X) :- R(X, Y).")})
	beta := MustNew(s2, s1, []*cq.Query{cq.MustParse("R(Y, X) :- P(X, Y).")})
	comp, err := Compose(beta, alpha)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		d := instance.NewDatabase(s1)
		for i := 0; i < rng.Intn(5); i++ {
			d.MustInsert("R", v(1, int64(i+1)), v(2, int64(rng.Intn(3)+1)))
		}
		step1, err := alpha.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		step2, err := beta.Apply(step1)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := comp.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if !step2.Equal(direct) {
			t.Fatalf("compose ≠ sequential application:\n%s\nvs\n%s", direct, step2)
		}
		// And it is the identity here.
		if !direct.Equal(d) {
			t.Fatalf("β∘α should be identity: %s vs %s", direct, d)
		}
	}
	ok, err := RoundTripIsIdentity(alpha, beta)
	if err != nil || !ok {
		t.Errorf("RoundTripIsIdentity = %v, %v; want true", ok, err)
	}
}

func TestComposeWithJoin(t *testing.T) {
	// β's view contains a join; composition must inline both sides.
	s1 := schema.MustParse("R(k*:T1, a:T2)\nS(b*:T2, c:T3)")
	s2 := schema.MustParse("P(k*:T1, a:T2)\nQ2(b*:T2, c:T3)")
	alpha := MustNew(s1, s2, []*cq.Query{
		cq.MustParse("P(X, Y) :- R(X, Y)."),
		cq.MustParse("Q2(X, Y) :- S(X, Y)."),
	})
	joined := schema.MustParse("J(k*:T1, c:T3)")
	outer := MustNew(s2, joined, []*cq.Query{
		cq.MustParse("J(K, C) :- P(K, A), Q2(B, C), A = B."),
	})
	comp, err := Compose(outer, alpha)
	if err != nil {
		t.Fatal(err)
	}
	d := instance.NewDatabase(s1)
	d.MustInsert("R", v(1, 1), v(2, 7))
	d.MustInsert("S", v(2, 7), v(3, 9))
	d.MustInsert("S", v(2, 8), v(3, 10))
	step, _ := alpha.Apply(d)
	expect, err := outer.Apply(step)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := comp.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if !direct.Equal(expect) {
		t.Fatalf("join composition wrong:\n%s\nvs\n%s", direct, expect)
	}
	if direct.Relation("J").Len() != 1 {
		t.Errorf("expected single joined tuple: %s", direct)
	}
}

func TestComposeConstantPropagation(t *testing.T) {
	// The inner view fixes a constant column; the outer view selects on
	// it.  Equal constants: satisfiable; different: empty.
	s1 := schema.MustParse("R(k*:T1)")
	s2 := schema.MustParse("P(k*:T1, c:T2)")
	inner := MustNew(s1, s2, []*cq.Query{cq.MustParse("P(X, T2:5) :- R(X).")})
	tgtSame := schema.MustParse("V(k*:T1)")
	outerSame := MustNew(s2, tgtSame, []*cq.Query{cq.MustParse("V(X) :- P(X, C), C = T2:5.")})
	outerDiff := MustNew(s2, tgtSame, []*cq.Query{cq.MustParse("V(X) :- P(X, C), C = T2:6.")})
	d := instance.NewDatabase(s1)
	d.MustInsert("R", v(1, 1))
	compSame, err := Compose(outerSame, inner)
	if err != nil {
		t.Fatal(err)
	}
	outSame, err := compSame.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if outSame.Relation("V").Len() != 1 {
		t.Errorf("same-constant composition should keep the tuple: %s", outSame)
	}
	compDiff, err := Compose(outerDiff, inner)
	if err != nil {
		t.Fatal(err)
	}
	outDiff, err := compDiff.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	if outDiff.Relation("V").Len() != 0 {
		t.Errorf("different-constant composition must be empty: %s", outDiff)
	}
}

func TestComposeSchemaMismatch(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1)")
	s2 := schema.MustParse("P(k*:T1)\nQ2(x*:T1)")
	m1 := MustNew(s1, s1, []*cq.Query{cq.MustParse("R(X) :- R(X).")})
	m2 := MustNew(s2, s2, []*cq.Query{
		cq.MustParse("P(X) :- P(X)."),
		cq.MustParse("Q2(X) :- Q2(X)."),
	})
	if _, err := Compose(m2, m1); err == nil {
		t.Error("mismatched composition accepted")
	}
}

func TestIsValid(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T2)")
	// Identity-style view keeps the key: valid.
	d1 := schema.MustParse("P(k*:T1, a:T2)")
	valid := MustNew(s1, d1, []*cq.Query{cq.MustParse("P(X, Y) :- R(X, Y).")})
	ok, err := valid.IsValid()
	if err != nil || !ok {
		t.Errorf("identity view should be valid: %v %v", ok, err)
	}
	// Swapped view keyed on the old non-key: invalid.
	d2 := schema.MustParse("P(a*:T2, k:T1)")
	invalid := MustNew(s1, d2, []*cq.Query{cq.MustParse("P(Y, X) :- R(X, Y).")})
	ok, err = invalid.IsValid()
	if err != nil || ok {
		t.Errorf("non-key-keyed view should be invalid: %v %v", ok, err)
	}
	// Unkeyed destination: always valid.
	d3 := schema.MustParse("P(a:T2, k:T1)")
	anym := MustNew(s1, d3, []*cq.Query{cq.MustParse("P(Y, X) :- R(X, Y).")})
	ok, err = anym.IsValid()
	if err != nil || !ok {
		t.Errorf("unkeyed destination should be valid: %v %v", ok, err)
	}
}

func TestIsValidSemanticAgreement(t *testing.T) {
	// Cross-check IsValid against applying the mapping to random
	// key-satisfying instances: a valid mapping never produces a key
	// violation.
	s1 := schema.MustParse("R(k*:T1, a:T1)")
	dsts := []*schema.Schema{
		schema.MustParse("P(k*:T1, a:T1)"),
		schema.MustParse("P(a*:T1, k:T1)"),
		schema.MustParse("P(k*:T1)"),
		schema.MustParse("P(a*:T1)"),
	}
	queries := [][]string{
		{"P(X, Y) :- R(X, Y)."},
		{"P(Y, X) :- R(X, Y)."},
		{"P(X) :- R(X, Y)."},
		{"P(Y) :- R(X, Y)."},
	}
	rng := rand.New(rand.NewSource(8))
	for i, dst := range dsts {
		m := MustNew(s1, dst, []*cq.Query{cq.MustParse(queries[i][0])})
		claim, err := m.IsValid()
		if err != nil {
			t.Fatal(err)
		}
		sawViolation := false
		for trial := 0; trial < 60; trial++ {
			d := instance.NewDatabase(s1)
			for k := 0; k < rng.Intn(5); k++ {
				d.MustInsert("R", v(1, int64(k+1)), v(1, int64(rng.Intn(3)+1)))
			}
			out, err := m.Apply(d)
			if err != nil {
				t.Fatal(err)
			}
			if !out.SatisfiesKeys() {
				sawViolation = true
				if claim {
					t.Fatalf("mapping %d claimed valid but violated keys on %s -> %s", i, d, out)
				}
			}
		}
		if !claim && !sawViolation {
			t.Logf("mapping %d claimed invalid; no random witness found (ok, test is one-sided)", i)
		}
	}
}

func TestFromIsomorphism(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T2)\nS(x*:T3)")
	rng := rand.New(rand.NewSource(5))
	s2, iso := schema.RandomIsomorph(s1, rng)
	alpha, beta, err := FromIsomorphism(s1, s2, iso)
	if err != nil {
		t.Fatal(err)
	}
	okA, err := alpha.IsValid()
	if err != nil || !okA {
		t.Errorf("alpha should be valid: %v %v", okA, err)
	}
	okB, err := beta.IsValid()
	if err != nil || !okB {
		t.Errorf("beta should be valid: %v %v", okB, err)
	}
	ok, err := RoundTripIsIdentity(alpha, beta)
	if err != nil || !ok {
		t.Errorf("β∘α should be identity: %v %v", ok, err)
	}
	ok, err = RoundTripIsIdentity(beta, alpha)
	if err != nil || !ok {
		t.Errorf("α∘β should be identity too: %v %v", ok, err)
	}
	dom, err := Dominates(alpha, beta)
	if err != nil || !dom {
		t.Errorf("Dominates = %v, %v", dom, err)
	}
	// Semantic round trip.
	d := instance.NewDatabase(s1)
	d.MustInsert("R", v(1, 1), v(2, 1))
	d.MustInsert("S", v(3, 4))
	mid, err := alpha.Apply(d)
	if err != nil {
		t.Fatal(err)
	}
	back, err := beta.Apply(mid)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(d) {
		t.Errorf("iso round trip changed instance:\n%s\nvs\n%s", back, d)
	}
	if err := iso.Verify(s1, s2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := FromIsomorphism(s1, s2, &schema.Isomorphism{RelMap: []int{0, 0}}); err == nil {
		t.Error("bad witness accepted")
	}
}

func TestRoundTripNotIdentity(t *testing.T) {
	// A lossy α (projects away the non-key) cannot be inverted.
	s1 := schema.MustParse("R(k*:T1, a:T2)")
	s2 := schema.MustParse("P(k*:T1)")
	alpha := MustNew(s1, s2, []*cq.Query{cq.MustParse("P(X) :- R(X, Y).")})
	beta := MustNew(s2, s1, []*cq.Query{cq.MustParse("R(X, T2:1) :- P(X).")})
	ok, err := RoundTripIsIdentity(alpha, beta)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("lossy round trip claimed to be identity")
	}
}

func TestMappingString(t *testing.T) {
	m := identityLike(t)
	if m.String() != "P(X, Y) :- R(X, Y)." {
		t.Errorf("String = %q", m.String())
	}
}

// Composition is associative, both symbolically-applied and semantically:
// (h∘g)∘f and h∘(g∘f) compute the same instances.
func TestComposeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	sA := schema.MustParse("R(k*:T1, a:T2)")
	sB, isoAB := schema.RandomIsomorph(sA, rng)
	sC, isoBC := schema.RandomIsomorph(sB, rng)
	f, _, err := FromIsomorphism(sA, sB, isoAB)
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := FromIsomorphism(sB, sC, isoBC)
	if err != nil {
		t.Fatal(err)
	}
	// h: C -> C identity keeps the chain non-trivial in both directions.
	h := IdentityMapping(sC)
	gf, err := Compose(g, f)
	if err != nil {
		t.Fatal(err)
	}
	hg, err := Compose(h, g)
	if err != nil {
		t.Fatal(err)
	}
	left, err := Compose(h, gf)
	if err != nil {
		t.Fatal(err)
	}
	right, err := Compose(hg, f)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		d := instance.NewDatabase(sA)
		for i := 0; i < rng.Intn(5); i++ {
			d.MustInsert("R", v(1, int64(i+1)), v(2, int64(rng.Intn(3)+1)))
		}
		l, err := left.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		r, err := right.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if !l.Equal(r) {
			t.Fatalf("associativity violated:\n%s\nvs\n%s", l, r)
		}
	}
}

// Apply distributes over composition on every instance (the defining
// property of symbolic composition), checked on random mappings that are
// not mere permutations: projections and constant introductions.
func TestComposeApplyCommutes(t *testing.T) {
	sA := schema.MustParse("R(k*:T1, a:T2, b:T3)")
	sB := schema.MustParse("P(k*:T1, a:T2)")
	sC := schema.MustParse("Q2(k*:T1, c:T4, a:T2)")
	f := MustNew(sA, sB, []*cq.Query{cq.MustParse("P(K, A) :- R(K, A, B).")})
	g := MustNew(sB, sC, []*cq.Query{cq.MustParse("Q2(K, T4:9, A) :- P(K, A).")})
	comp, err := Compose(g, f)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 30; trial++ {
		d := instance.NewDatabase(sA)
		for i := 0; i < rng.Intn(5); i++ {
			d.MustInsert("R", v(1, int64(i+1)), v(2, int64(rng.Intn(3)+1)), v(3, int64(rng.Intn(3)+1)))
		}
		step, err := f.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		expect, err := g.Apply(step)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := comp.Apply(d)
		if err != nil {
			t.Fatal(err)
		}
		if !direct.Equal(expect) {
			t.Fatalf("apply/compose mismatch:\n%s\nvs\n%s", direct, expect)
		}
	}
}

func TestParseMapping(t *testing.T) {
	s1 := schema.MustParse("R(k*:T1, a:T2)\nS(b*:T2)")
	s2 := schema.MustParse("P(k*:T1, a:T2)\nQ2(b*:T2)")
	m, err := Parse(s1, s2, `
# alpha
P(X, Y) :- R(X, Y).
Q2(B) :- S(B).
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueryFor("P") == nil || m.QueryFor("Q2") == nil {
		t.Fatal("views missing")
	}
	// Round trip through String.
	m2, err := Parse(s1, s2, m.String())
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if m.String() != m2.String() {
		t.Errorf("round trip changed mapping:\n%s\nvs\n%s", m, m2)
	}
	bad := []string{
		"",                    // nothing defined
		"P(X, Y) :- R(X, Y).", // Q2 missing
		"P(X, Y) :- R(X, Y).\nP(X, Y) :- R(X, Y).\nQ2(B) :- S(B).", // dup
		"ZZ(X) :- R(X, Y).\nQ2(B) :- S(B).",                        // unknown head
		"P(X Y) :- R(X, Y).\nQ2(B) :- S(B).",                       // parse error
		"P(X, X) :- R(X, Y).\nQ2(B) :- S(B).",                      // type error (head)
	}
	for i, text := range bad {
		if _, err := Parse(s1, s2, text); err == nil {
			t.Errorf("bad mapping %d accepted", i)
		}
	}
}

// TestRoundTripIdentityCtxCancelled pins the ctx threading through the
// symbolic round-trip verification: a cancelled context aborts with the
// context's error instead of silently deciding on context.Background().
func TestRoundTripIdentityCtxCancelled(t *testing.T) {
	m := IdentityMapping(src2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RoundTripIsIdentityCtx(ctx, m, IdentityMapping(src2), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("RoundTripIsIdentityCtx: err = %v, want context.Canceled", err)
	}
	if _, err := m.IsIdentityOnCtx(ctx, fd.KeyFDs(src2), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("IsIdentityOnCtx: err = %v, want context.Canceled", err)
	}
	// The ctx-free delegates still work.
	ok, err := RoundTripIsIdentity(m, IdentityMapping(src2))
	if err != nil || !ok {
		t.Fatalf("RoundTripIsIdentity: ok=%v err=%v", ok, err)
	}
}
