// Package mapping implements the paper's query mappings between schemas:
// tuples of conjunctive query views, one per destination relation
// (§2, "query mapping").  It provides typing, application to database
// instances, symbolic composition, the identity test β∘α = id (decided by
// conjunctive query equivalence under the source keys), validity (a
// mapping is valid when it carries key-satisfying instances to
// key-satisfying instances — decided by the chase-based view-FD test),
// the receives analysis lifted to schemas, witness mappings from schema
// isomorphisms, and the FD-transfer of Theorem 6.
package mapping

import (
	"fmt"
	"strings"

	"keyedeq/internal/cq"
	"keyedeq/internal/instance"
	"keyedeq/internal/invariant"
	"keyedeq/internal/schema"
)

// Mapping is a query mapping α = (v1, ..., vm) from Src to Dst: Queries[k]
// defines the instance of Dst.Relations[k] from an instance of Src.
type Mapping struct {
	Src, Dst *schema.Schema
	Queries  []*cq.Query
}

// New builds and validates a mapping.
func New(src, dst *schema.Schema, queries []*cq.Query) (*Mapping, error) {
	m := &Mapping{Src: src, Dst: dst, Queries: queries}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// MustNew is New but panics on error; for tests and fixtures.
func MustNew(src, dst *schema.Schema, queries []*cq.Query) *Mapping {
	m, err := New(src, dst, queries)
	invariant.Must(err)
	return m
}

// Validate checks that there is one well-formed query over Src per Dst
// relation and that each view's type equals its relation's type.
func (m *Mapping) Validate() error {
	if len(m.Queries) != len(m.Dst.Relations) {
		return fmt.Errorf("mapping: %d queries for %d destination relations",
			len(m.Queries), len(m.Dst.Relations))
	}
	for k, q := range m.Queries {
		rel := m.Dst.Relations[k]
		if q == nil {
			return fmt.Errorf("mapping: no query for %q", rel.Name)
		}
		if err := q.Validate(m.Src); err != nil {
			return fmt.Errorf("mapping: query for %q: %v", rel.Name, err)
		}
		ht, err := q.HeadType(m.Src)
		if err != nil {
			return fmt.Errorf("mapping: query for %q: %v", rel.Name, err)
		}
		if len(ht) != rel.Arity() {
			return fmt.Errorf("mapping: query for %q has arity %d, want %d", rel.Name, len(ht), rel.Arity())
		}
		for i, t := range ht {
			if t != rel.Attrs[i].Type {
				return fmt.Errorf("mapping: query for %q position %d has type %v, want %v",
					rel.Name, i, t, rel.Attrs[i].Type)
			}
		}
	}
	return nil
}

// QueryFor returns the defining query of the named destination relation.
func (m *Mapping) QueryFor(rel string) *cq.Query {
	i := m.Dst.RelationIndex(rel)
	if i < 0 {
		return nil
	}
	return m.Queries[i]
}

// Apply maps an instance of Src to the defined instance of Dst.
func (m *Mapping) Apply(d *instance.Database) (*instance.Database, error) {
	if d.Schema != m.Src {
		// Accept structurally equal schemas too; positional application
		// only needs matching relation layout.
		if len(d.Schema.Relations) != len(m.Src.Relations) {
			return nil, fmt.Errorf("mapping: instance schema does not match source")
		}
	}
	out := instance.NewDatabase(m.Dst)
	for k, q := range m.Queries {
		rel, err := cq.EvalInto(q, d, m.Dst.Relations[k])
		if err != nil {
			return nil, fmt.Errorf("mapping: evaluating view %q: %v", m.Dst.Relations[k].Name, err)
		}
		for _, t := range rel.Tuples() {
			if err := out.Relations[k].Insert(t); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Constants returns all constants used by the mapping's queries.
func (m *Mapping) Constants() []string {
	var out []string
	for _, q := range m.Queries {
		for _, c := range q.Constants() {
			out = append(out, c.String())
		}
	}
	return out
}

// String renders each view on its own line.
func (m *Mapping) String() string {
	parts := make([]string, len(m.Queries))
	for i, q := range m.Queries {
		qq := q.Clone()
		qq.HeadRel = m.Dst.Relations[i].Name
		parts[i] = qq.String()
	}
	return strings.Join(parts, "\n")
}

// IdentityMapping returns the identity query mapping S → S.
func IdentityMapping(s *schema.Schema) *Mapping {
	qs := make([]*cq.Query, len(s.Relations))
	for i, r := range s.Relations {
		qs[i] = cq.Identity(r)
	}
	return MustNew(s, s, qs)
}

// FromIsomorphism builds the witness mappings (α, β) for two isomorphic
// schemas: α maps each S1 relation onto its image with attributes
// permuted per the isomorphism, and β is the inverse.  These establish
// S1 ≼ S2 by (α, β) and S2 ≼ S1 by (β, α) — the trivial direction of
// Theorem 13.
func FromIsomorphism(s1, s2 *schema.Schema, iso *schema.Isomorphism) (alpha, beta *Mapping, err error) {
	if err := iso.Verify(s1, s2); err != nil {
		return nil, nil, err
	}
	aq := make([]*cq.Query, len(s2.Relations))
	bq := make([]*cq.Query, len(s1.Relations))
	for i, r1 := range s1.Relations {
		j := iso.RelMap[i]
		r2 := s2.Relations[j]
		am := iso.AttrMaps[i]
		// α's view for r2: r2(head) :- r1(X0..Xn) with head[am[p]] = Xp.
		qa := &cq.Query{HeadRel: r2.Name}
		atom := cq.Atom{Rel: r1.Name}
		heads := make([]cq.Term, r1.Arity())
		for p := 0; p < r1.Arity(); p++ {
			v := cq.Var(fmt.Sprintf("X%d", p))
			atom.Vars = append(atom.Vars, v)
			heads[am[p]] = cq.Term{Var: v}
		}
		qa.Body = []cq.Atom{atom}
		qa.Head = heads
		aq[j] = qa
		// β's view for r1: r1(Y0..Yn) :- r2(...) with body var at am[p]
		// appearing at head position p.
		qb := &cq.Query{HeadRel: r1.Name}
		atom2 := cq.Atom{Rel: r2.Name}
		for pp := 0; pp < r2.Arity(); pp++ {
			atom2.Vars = append(atom2.Vars, cq.Var(fmt.Sprintf("Y%d", pp)))
		}
		heads2 := make([]cq.Term, r1.Arity())
		for p := 0; p < r1.Arity(); p++ {
			heads2[p] = cq.Term{Var: atom2.Vars[am[p]]}
		}
		qb.Body = []cq.Atom{atom2}
		qb.Head = heads2
		bq[i] = qb
	}
	alpha, err = New(s1, s2, aq)
	if err != nil {
		return nil, nil, err
	}
	beta, err = New(s2, s1, bq)
	if err != nil {
		return nil, nil, err
	}
	return alpha, beta, nil
}
