package mapping

import (
	"fmt"

	"keyedeq/internal/cq"
	"keyedeq/internal/value"
)

// Compose returns the mapping outer ∘ inner (first inner, then outer):
// inner : A → B, outer : B → C gives a mapping A → C whose views are
// obtained by query substitution — every atom of an outer view over a
// B-relation is replaced by the body of inner's view for that relation,
// with placeholders renamed apart and the outer variables resolved
// through the inner view's head.
//
// Conjunctive queries are closed under this substitution, which is what
// lets the paper reason about β∘α symbolically.
func Compose(outer, inner *Mapping) (*Mapping, error) {
	if len(inner.Dst.Relations) != len(outer.Src.Relations) {
		return nil, fmt.Errorf("mapping: compose schema mismatch: inner.Dst has %d relations, outer.Src %d",
			len(inner.Dst.Relations), len(outer.Src.Relations))
	}
	qs := make([]*cq.Query, len(outer.Queries))
	for k, q := range outer.Queries {
		sub, err := Substitute(q, inner)
		if err != nil {
			return nil, fmt.Errorf("mapping: composing view %q: %v", outer.Dst.Relations[k].Name, err)
		}
		sub.HeadRel = outer.Dst.Relations[k].Name
		qs[k] = sub
	}
	return New(inner.Src, outer.Dst, qs)
}

// Substitute inlines inner's views into q (a query over inner.Dst),
// producing an equivalent query over inner.Src.
func Substitute(q *cq.Query, inner *Mapping) (*cq.Query, error) {
	out := &cq.Query{}
	// resolve maps each placeholder variable of q to the term it stands
	// for after substitution: the corresponding head term of the inlined
	// view body.
	resolve := make(map[cq.Var]cq.Term)
	for i, a := range q.Body {
		def := inner.QueryFor(a.Rel)
		if def == nil {
			return nil, fmt.Errorf("no view defines %q", a.Rel)
		}
		inlined := def.Rename(fmt.Sprintf("s%d_", i))
		out.Body = append(out.Body, inlined.Body...)
		out.Eqs = append(out.Eqs, inlined.Eqs...)
		if len(inlined.Head) != len(a.Vars) {
			return nil, fmt.Errorf("view for %q has arity %d, atom has %d", a.Rel, len(inlined.Head), len(a.Vars))
		}
		for p, v := range a.Vars {
			resolve[v] = inlined.Head[p]
		}
	}
	termOf := func(t cq.Term) (cq.Term, error) {
		if t.IsConst {
			return t, nil
		}
		r, ok := resolve[t.Var]
		if !ok {
			return cq.Term{}, fmt.Errorf("variable %s not bound by any atom", t.Var)
		}
		return r, nil
	}
	// Translate the outer equality list through the resolution.
	for _, e := range q.Eqs {
		l, err := termOf(cq.Term{Var: e.Left})
		if err != nil {
			return nil, err
		}
		r, err := termOf(e.Right)
		if err != nil {
			return nil, err
		}
		eqs, err := equateTerms(l, r, out, inner)
		if err != nil {
			return nil, err
		}
		out.Eqs = append(out.Eqs, eqs...)
	}
	// Translate the head.
	for _, t := range q.Head {
		ht, err := termOf(t)
		if err != nil {
			return nil, err
		}
		out.Head = append(out.Head, ht)
	}
	return out, nil
}

// equateTerms renders "l = r" in the paper's syntax.  When both sides are
// the same constant nothing is needed; distinct constants make the
// composed query unsatisfiable, which is expressed within the syntax by
// binding some body variable to two distinct constants of its own type
// (legal, and empty on every database).
func equateTerms(l, r cq.Term, q *cq.Query, inner *Mapping) ([]cq.Equality, error) {
	switch {
	case !l.IsConst:
		return []cq.Equality{{Left: l.Var, Right: r}}, nil
	case !r.IsConst:
		return []cq.Equality{{Left: r.Var, Right: l}}, nil
	case l.Const == r.Const:
		return nil, nil
	default:
		v, t, ok := anyBodyVarTyped(q, inner)
		if !ok {
			return nil, fmt.Errorf("unsatisfiable constant equality %s = %s with empty body", l, r)
		}
		return []cq.Equality{
			{Left: v, Right: cq.C(value.Value{Type: t, N: 1})},
			{Left: v, Right: cq.C(value.Value{Type: t, N: 2})},
		}, nil
	}
}

// anyBodyVarTyped picks a body placeholder of q and its attribute type
// under inner's source schema.
func anyBodyVarTyped(q *cq.Query, inner *Mapping) (cq.Var, value.Type, bool) {
	for _, a := range q.Body {
		rel := inner.Src.Relation(a.Rel)
		if rel == nil {
			continue
		}
		for i, v := range a.Vars {
			return v, rel.Attrs[i].Type, true
		}
	}
	return "", value.NoType, false
}
