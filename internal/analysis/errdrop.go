package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop forbids discarding the error result of Parse*/Chase*/Check*
// APIs — the repo's fallible entry points.  A swallowed parse or chase
// error turns an invalid query or failing chase into silently wrong
// containment verdicts.  Flagged forms: a bare call statement, and an
// assignment with _ in the error position.
type ErrDrop struct{}

// Name implements Rule.
func (ErrDrop) Name() string { return "errdrop" }

// Check implements Rule.
func (ErrDrop) Check(p *Package) []Diagnostic {
	var out []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, ok := s.X.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := fallibleAPICall(p, call)
				if !ok {
					return true
				}
				out = append(out, Diagnostic{
					Rule:    "errdrop",
					Pos:     p.Fset.Position(call.Pos()),
					Message: "error returned by " + name + " is discarded",
				})
			case *ast.AssignStmt:
				if len(s.Rhs) != 1 {
					return true
				}
				call, ok := s.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := fallibleAPICall(p, call)
				if !ok {
					return true
				}
				for i, lhs := range s.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						continue
					}
					if errorResultAt(p, call, i, len(s.Lhs)) {
						out = append(out, Diagnostic{
							Rule:    "errdrop",
							Pos:     p.Fset.Position(lhs.Pos()),
							Message: "error returned by " + name + " is assigned to _",
						})
					}
				}
			}
			return true
		})
	}
	return out
}

// fallibleAPICall reports whether call targets a Parse*/Chase*/Check*
// function that returns an error.
func fallibleAPICall(p *Package, call *ast.CallExpr) (string, bool) {
	var name string
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	case *ast.Ident:
		name = fn.Name
	default:
		return "", false
	}
	if !strings.HasPrefix(name, "Parse") && !strings.HasPrefix(name, "Chase") && !strings.HasPrefix(name, "Check") {
		return "", false
	}
	sig := callSignature(p, call)
	if sig == nil {
		// Without type information, trust the naming convention: the
		// repo's Parse*/Chase*/Check* APIs all return errors.
		return name, true
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return name, true
		}
	}
	return "", false
}

// errorResultAt reports whether result position i of the call has type
// error.  nLhs guards the single-value case.
func errorResultAt(p *Package, call *ast.CallExpr, i, nLhs int) bool {
	sig := callSignature(p, call)
	if sig == nil {
		// No type info: the convention places error last.
		return i == nLhs-1
	}
	if sig.Results().Len() != nLhs || i >= sig.Results().Len() {
		return false
	}
	return isErrorType(sig.Results().At(i).Type())
}

func callSignature(p *Package, call *ast.CallExpr) *types.Signature {
	if t := p.Info.TypeOf(call.Fun); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
