package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// GoroLeak requires every spawned goroutine to have a visible join or
// cancel path.  Acceptable evidence, in the shapes this repo uses:
//
//   - WaitGroup discipline: the goroutine body calls Done (with the
//     matching Add in the spawning function);
//   - channel discipline: the body sends on or closes a channel, or
//     receives from one (so a close unblocks it) — completion or
//     shutdown is observable;
//   - context discipline: the body references a context.Context, so the
//     spawner can cancel it.
//
// A bare `go f(args)` counts as joined when an argument or the receiver
// is a channel or context.  Anything else is a fire-and-forget goroutine
// the spawner can neither await nor stop — the pprof-server bug class:
// the process exits (or the test ends) with the goroutine still running
// and its failure unobserved.
type GoroLeak struct{}

func (GoroLeak) Name() string { return "goroleak" }

func (GoroLeak) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goroutineJoined(p, gs) {
				diags = append(diags, Diagnostic{
					Rule:    "goroleak",
					Pos:     p.Fset.Position(gs.Pos()),
					Message: "goroutine has no join or cancel path (WaitGroup Done, channel send/close, or context)",
				})
			}
			return true
		})
	}
	return diags
}

func goroutineJoined(p *Package, gs *ast.GoStmt) bool {
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		return litJoined(p, lit)
	}
	// Bare call: a channel- or context-typed argument (or receiver)
	// gives the spawner a handle on the goroutine's lifetime.
	for _, arg := range gs.Call.Args {
		if chanOrCtx(p.Info.TypeOf(arg)) {
			return true
		}
	}
	if sel, ok := gs.Call.Fun.(*ast.SelectorExpr); ok {
		if chanOrCtx(p.Info.TypeOf(sel.X)) {
			return true
		}
	}
	return false
}

func litJoined(p *Package, lit *ast.FuncLit) bool {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			joined = true
		case *ast.UnaryExpr:
			// A blocking receive parks the goroutine on a channel the
			// spawner controls.
			if x.Op.String() == "<-" {
				joined = true
			}
		case *ast.RangeStmt:
			if isChanType(p.Info.TypeOf(x.X)) {
				joined = true
			}
		case *ast.SelectStmt:
			joined = true
		case *ast.CallExpr:
			switch fn := x.Fun.(type) {
			case *ast.Ident:
				if fn.Name == "close" && isBuiltin(p.Info, fn) {
					joined = true
				}
			case *ast.SelectorExpr:
				if fn.Sel.Name == "Done" && isWaitGroupish(p.Info.TypeOf(fn.X), fn) {
					joined = true
				}
			}
		case *ast.Ident:
			if isContextType(p.Info.TypeOf(x)) {
				joined = true
			}
		}
		return !joined
	})
	return joined
}

func chanOrCtx(t types.Type) bool {
	return isChanType(t) || isContextType(t)
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isWaitGroupish accepts sync.WaitGroup receivers, and falls back to
// the receiver spelling (wg, *wait*group*) when type info is missing.
func isWaitGroupish(t types.Type, sel *ast.SelectorExpr) bool {
	if typeIs(t, "sync", "WaitGroup") {
		return true
	}
	if t != nil {
		return false
	}
	key := strings.ToLower(exprKey(sel.X))
	return key == "wg" || strings.Contains(key, "waitgroup") || strings.Contains(key, "wg.")
}
