package analysis

import "testing"

func TestSpanBalanceFlagsLeakedBegins(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "spanbalance/bad.go", SpanBalance{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "spanbalance/bad.go", got, want)
}

func TestSpanBalanceAcceptsBalancedAndGated(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "spanbalance/good.go", SpanBalance{})
	expectFindings(t, "spanbalance/good.go", got, nil)
}
