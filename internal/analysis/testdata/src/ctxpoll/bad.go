// Fixtures that MUST trigger ctxpoll: cancellable functions scanning
// tuple data without ever polling.
package fixture

import "context"

// Tuple mirrors the engine's tuple shape.
type Tuple []int

// Rel mirrors a relation with a Tuples accessor.
type Rel struct{ tuples []Tuple }

func (r *Rel) Tuples() []Tuple { return r.tuples }

// ScanAll takes a context but never looks at it again.
func ScanAll(ctx context.Context, r *Rel) int {
	n := 0
	for _, t := range r.Tuples() { // want ctxpoll
		n += len(t)
	}
	return n
}

// walker carries its context on the struct, searcher-style.
type walker struct {
	ctx  context.Context
	rows []Tuple
}

// sum is cancellable through the receiver's context field but scans
// without polling.
func (w *walker) sum() int {
	n := 0
	for _, t := range w.rows { // want ctxpoll
		n += len(t)
	}
	return n
}

// OuterNoPoll polls nowhere in the whole loop nest: the inner tuple
// scan is uncovered.
func OuterNoPoll(ctx context.Context, waves [][]Tuple) int {
	n := 0
	for i := 0; i < len(waves); i++ {
		for _, t := range waves[i] { // want ctxpoll
			n += len(t)
		}
	}
	return n
}
