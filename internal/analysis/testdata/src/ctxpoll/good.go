// Fixtures that must NOT trigger ctxpoll: every tuple scan is covered
// by a poll, a polling callee, or the function is not cancellable.
package fixture

import "context"

type Tuple []int

type Rel struct{ tuples []Tuple }

func (r *Rel) Tuples() []Tuple { return r.tuples }

// cancelCheckMask is the masked-poll contract constant.
const cancelCheckMask = 0x3ff

// ScanMasked polls through the mask, once per window.
func ScanMasked(ctx context.Context, r *Rel) (int, error) {
	n := 0
	for _, t := range r.Tuples() {
		if n&cancelCheckMask == cancelCheckMask {
			if err := ctx.Err(); err != nil {
				return n, err
			}
		}
		n += len(t)
	}
	return n, nil
}

// Waves polls once per wave; the inner tuple scan is covered by the
// enclosing loop's poll, exactly like the chase.
func Waves(ctx context.Context, waves [][]Tuple) error {
	for len(waves) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		for _, t := range waves[0] {
			_ = t
		}
		waves = waves[1:]
	}
	return nil
}

// ViaCallee delegates the poll to a same-package helper.
func ViaCallee(ctx context.Context, r *Rel) error {
	for _, t := range r.Tuples() {
		if err := visit(ctx, t); err != nil {
			return err
		}
	}
	return nil
}

func visit(ctx context.Context, t Tuple) error { return ctx.Err() }

// NoCtx is not cancellable; it owes no polls.
func NoCtx(r *Rel) int {
	n := 0
	for _, t := range r.Tuples() {
		n += len(t)
	}
	return n
}
