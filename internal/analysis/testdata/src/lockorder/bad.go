// Fixtures that MUST trigger lockorder: a lock held across a return, a
// re-lock while held, lock-unbalanced loop bodies, and a nesting cycle.
package fixture

import "sync"

type store struct {
	mu   sync.Mutex
	vals map[string]int
}

// LeakOnEarlyReturn returns with the lock held on the miss path.
func (s *store) LeakOnEarlyReturn(k string) int {
	s.mu.Lock() // want lockorder
	v, ok := s.vals[k]
	if !ok {
		return 0
	}
	s.mu.Unlock()
	return v
}

// DoubleLock re-acquires while already holding.
func (s *store) DoubleLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want lockorder
	s.mu.Unlock()
}

// LockPerIteration leaves the body lock-richer than it entered.
func (s *store) LockPerIteration(keys []string) {
	for _, k := range keys { // want lockorder
		s.mu.Lock()
		s.vals[k] = 0
	}
}

type left struct{ mu sync.Mutex }

type right struct{ mu sync.Mutex }

// nestLR takes left before right.
func nestLR(l *left, r *right) {
	l.mu.Lock()
	r.mu.Lock()
	r.mu.Unlock()
	l.mu.Unlock()
}

// nestRL takes them the other way around: a cycle with nestLR.
func nestRL(l *left, r *right) {
	r.mu.Lock()
	l.mu.Lock() // want lockorder
	l.mu.Unlock()
	r.mu.Unlock()
}
