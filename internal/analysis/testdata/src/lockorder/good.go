// Fixtures that must NOT trigger lockorder: deferred unlocks, per-path
// unlocks, neutral loops, read locks, and one consistent nesting order.
package fixture

import "sync"

type store struct {
	mu   sync.Mutex
	vals map[string]int
}

// Get uses the canonical defer discipline.
func (s *store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.vals[k]
}

// GetOr releases on every path explicitly.
func (s *store) GetOr(k string) int {
	s.mu.Lock()
	if v, ok := s.vals[k]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	return 0
}

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

// Read holds only the read lock, deferred.
func (t *table) Read(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

type shard struct {
	mu sync.Mutex
	n  int
}

type pool struct {
	mu     sync.Mutex
	shards []*shard
}

// total nests pool.mu over shard.mu — one consistent order, and each
// loop iteration is lock-neutral.
func (p *pool) total() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	sum := 0
	for _, sh := range p.shards {
		sh.mu.Lock()
		sum += sh.n
		sh.mu.Unlock()
	}
	return sum
}

// grow nests in the same direction through a callee.
func (p *pool) grow() {
	p.mu.Lock()
	defer p.mu.Unlock()
	bump(p.shards)
}

func bump(shards []*shard) {
	for _, sh := range shards {
		sh.mu.Lock()
		sh.n++
		sh.mu.Unlock()
	}
}
