// Fixtures that MUST trigger errdrop: discarded errors from
// Parse*/Chase*/Check* APIs.
package fixture

import "errors"

// ParseThing is a fallible parser in the repo's naming convention.
func ParseThing(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	return len(s), nil
}

// CheckThing is a fallible validator.
func CheckThing() error { return nil }

// ChaseSteps is a fallible fixpoint driver.
func ChaseSteps() (int, error) { return 0, nil }

func use() int {
	ParseThing("x")         // want errdrop
	CheckThing()            // want errdrop
	_ = CheckThing()        // want errdrop
	v, _ := ParseThing("y") // want errdrop
	_, e := ChaseSteps()
	if e != nil {
		return 0
	}
	return v
}
