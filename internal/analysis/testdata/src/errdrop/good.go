// Fixtures that MUST pass errdrop: errors handled, and same-prefix
// functions that return no error.
package fixture

import "errors"

// ParseThing is a fallible parser in the repo's naming convention.
func ParseThing(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty")
	}
	return len(s), nil
}

// CheckThing is a fallible validator.
func CheckThing() error { return nil }

// CheckFast returns no error, so a bare call is fine.
func CheckFast() bool { return true }

func use() (int, error) {
	n, err := ParseThing("x")
	if err != nil {
		return 0, err
	}
	if err := CheckThing(); err != nil {
		return 0, err
	}
	CheckFast()
	_ = CheckFast()
	return n, nil
}
