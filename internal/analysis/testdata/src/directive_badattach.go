// Fixture for well-formed directives attached where they can take no
// effect: reported under the pseudo-rule "baddirective" instead of
// rotting silently.
package fixture

//keyedeq:hot -- hot markers belong on functions, not var decls // want baddirective
var knobs = 3

//keyedeq:hot -- orphaned between declarations // want baddirective

// Scan is properly hot; its own directive is fine and the orphan above
// does not attach to it.
//
//keyedeq:hot -- fixture: a correctly attached marker stays silent
func Scan() int { return knobs }

//keyedeq:allow detmap -- orphaned: no code on this line or the next // want baddirective

// tail keeps the orphaned allow two lines away from any code.
var tail = 4
