// Fixtures that MUST trigger spanbalance: span begins that can reach a
// return (or fall out of scope) without being emitted.
package fixture

import (
	"errors"
	"time"
)

// Obs mirrors the observability handle: matched by type name.
type Obs struct{ on bool }

func (o *Obs) SpansOn() bool   { return o != nil && o.on }
func (o *Obs) Time() time.Time { return time.Time{} }

func (o *Obs) EmitSpan(stage string, start time.Time, err error) {}

func work() error { return errors.New("boom") }

// EarlyReturnLoses begins a span, then error-returns before emitting.
func EarlyReturnLoses(o *Obs) error {
	start := o.Time() // want spanbalance
	if err := work(); err != nil {
		return err
	}
	o.EmitSpan("stage", start, nil)
	return nil
}

// NeverEmitted begins and never consumes the start at all.
func NeverEmitted(o *Obs) {
	start := o.Time() // want spanbalance
	_ = work()
}

// BranchMissesEmit emits on one branch and falls off the other.
func BranchMissesEmit(o *Obs, a bool) {
	start := o.Time() // want spanbalance
	if a {
		o.EmitSpan("stage", start, nil)
	} else {
		_ = work()
	}
	_ = work()
}
