// Fixtures that must NOT trigger spanbalance: deferred emits, per-path
// emits, obs-gated emission, and helper-owned ends.
package fixture

import (
	"errors"
	"time"
)

type Obs struct{ on bool }

func (o *Obs) SpansOn() bool   { return o != nil && o.on }
func (o *Obs) Time() time.Time { return time.Time{} }

func (o *Obs) EmitSpan(stage string, start time.Time, err error) {}

func work() error { return errors.New("boom") }

// DeferEmit covers every return with one defer.
func DeferEmit(o *Obs) error {
	start := o.Time()
	defer o.EmitSpan("stage", start, nil)
	if err := work(); err != nil {
		return err
	}
	return nil
}

// EveryPathEmits emits on both the error and the success path.
func EveryPathEmits(o *Obs) error {
	start := o.Time()
	if err := work(); err != nil {
		o.EmitSpan("stage", start, err)
		return err
	}
	o.EmitSpan("stage", start, nil)
	return nil
}

// GatedEmit consumes the start under the SpansOn gate; when the gate is
// false, emission is a no-op and nothing is owed.
func GatedEmit(o *Obs) {
	start := o.Time()
	_ = work()
	if o.SpansOn() {
		o.EmitSpan("stage", start, nil)
	}
}

// OffGateEarlyReturn returns from the spans-off region, where nothing
// is owed, and emits on the on path.
func OffGateEarlyReturn(o *Obs) {
	start := o.Time()
	if !o.SpansOn() {
		return
	}
	o.EmitSpan("stage", start, nil)
}

// NilGateReturn returns from the o == nil region before beginning.
func NilGateReturn(o *Obs) {
	if o == nil {
		return
	}
	start := o.Time()
	o.EmitSpan("stage", start, nil)
}

// HelperOwns hands the start to a helper that emits it.
func HelperOwns(o *Obs) {
	start := o.Time()
	finish(o, start)
}

func finish(o *Obs, start time.Time) {
	o.EmitSpan("stage", start, nil)
}
