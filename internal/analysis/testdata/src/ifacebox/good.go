// Fixtures that MUST NOT trigger iface-box: pointer-shaped values,
// constants, interface-to-interface moves, and cold code.
package fixture

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

type sink struct{ vals []any }

func (s *sink) add(v any) { s.vals = append(s.vals, v) }

//keyedeq:hot -- fixture: pointers ride the interface word for free
func PtrBox(r *rel, s *sink) {
	for i := range r.tuples {
		s.add(&r.tuples[i])
	}
}

//keyedeq:hot -- fixture: constants resolve to shared static boxes
func ConstBox(r *rel, s *sink) {
	for range r.tuples {
		s.add(1)
	}
}

//keyedeq:hot -- fixture: interface-to-interface assignment does not box
func Pass(r *rel, s *sink, vs []any) {
	for i := range r.tuples {
		s.add(vs[i%len(vs)])
	}
}

// coldBox is unannotated and unreached from hot code: boxing is legal.
func coldBox(r *rel, s *sink) {
	for i, t := range r.tuples {
		s.add(i)
		_ = t
	}
}
