// Fixtures that MUST trigger iface-box: non-pointer concrete values
// boxed into interfaces inside hot loops.
package fixture

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

type sink struct{ vals []any }

func (s *sink) add(v any) { s.vals = append(s.vals, v) }

type pair struct{ a, b int }

//keyedeq:hot -- fixture: ints, slices, and structs box per tuple
func Box(r *rel, s *sink) {
	for i, t := range r.tuples {
		s.add(i) // want iface-box
		var v any
		v = t // want iface-box
		_ = v
		s.add(pair{i, len(t)}) // want iface-box
	}
}

//keyedeq:hot -- fixture: interface-typed map stores box their values
func Stash(r *rel, m map[int]any) {
	for i, t := range r.tuples {
		m[i] = len(t) // want iface-box
	}
}
