// Fixture for the //keyedeq:allow suppression directive.
package fixture

// cleared carries a justified suppression and must not be reported.
func cleared() {
	//keyedeq:allow panicgate -- exercising the directive in a fixture
	panic("suppressed")
}

// unjustified has no directive and must be reported.
func unjustified() {
	panic("reported") // want panicgate
}

// wrongRule is suppressed for a different rule and must still be
// reported.
func wrongRule() {
	//keyedeq:allow detmap -- wrong rule name on purpose
	panic("reported too") // want panicgate
}
