// Fixtures that MUST pass panicgate: panics routed through the
// invariant helpers, and shadowed identifiers.
package fixture

import (
	"errors"

	"keyedeq/internal/invariant"
)

// MustCount routes its panic through the gate.
func MustCount(n int) int {
	invariant.Mustf(n >= 0, "negative count %d", n)
	return n
}

// fail routes an error panic through the gate.
func fail() {
	invariant.Must(errors.New("boom"))
}

// localPanic proves a local function named panic is not the builtin.
func localPanic() {
	panic := func(string) {}
	panic("not the builtin")
}
