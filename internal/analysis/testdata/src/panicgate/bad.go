// Fixtures that MUST trigger panicgate when placed under internal/.
package fixture

import "errors"

// MustCount panics directly instead of going through
// internal/invariant.
func MustCount(n int) int {
	if n < 0 {
		panic("negative count") // want panicgate
	}
	return n
}

// fail wraps a raw panic with an error payload.
func fail() {
	panic(errors.New("boom")) // want panicgate
}
