// Fixture for malformed suppression directives: a directive without a
// "--" justification or naming no known rule is itself a finding, and
// suppresses nothing.
package fixture

// missingReason carries a directive with no justification: the
// directive is reported AND the panic stays reported.
func missingReason() {
	//keyedeq:allow panicgate // want directive
	panic("not suppressed") // want panicgate
}

// unknownRule names a rule that does not exist.
func unknownRule() {
	//keyedeq:allow nosuchrule -- justified but misnamed // want directive
	panic("still reported") // want panicgate
}

// bareHot carries a hot marker with no justification: reported, and it
// seeds nothing.
//
//keyedeq:hot // want directive
func bareHot() {}

// hotWithArgs passes arguments to a marker that takes none.
//
//keyedeq:hot chase search -- markers take no arguments // want directive
func hotWithArgs() {}
