// Fixtures that MUST pass norand: the injected *rand.Rand discipline.
package fixture

import "math/rand"

// Perturb draws only from the generator its caller seeded.
func Perturb(rng *rand.Rand, n int) int {
	return rng.Intn(n)
}

// Sampler stores an injected generator; the rand.Rand type reference is
// the one sanctioned use of the package.
type Sampler struct {
	RNG *rand.Rand
}

// Draw uses the stored generator.
func (s *Sampler) Draw(n int) int {
	return s.RNG.Intn(n)
}

// shadowed proves a local identifier named rand is not the package.
func shadowed() int {
	rand := struct{ Intn func(int) int }{Intn: func(n int) int { return n }}
	return rand.Intn(7)
}
