// Fixtures that MUST trigger norand when placed in a non-exempt
// package: package-level randomness and local construction.
package fixture

import "math/rand"

// Pick uses the global source: irreproducible.
func Pick(n int) int {
	return rand.Intn(n) // want norand
}

// Shuffle likewise.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want norand
}

// newSource constructs locally instead of accepting an injected
// generator.
func newSource(seed int64) rand.Source {
	return rand.NewSource(seed) // want norand
}

// newRNG flags both calls on the line.
func newRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want norand norand
}
