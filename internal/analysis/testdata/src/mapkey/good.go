// Fixtures that MUST NOT trigger mapkey: dense integer keys, the
// inline-conversion probe, insert-side materialization, and cold code.
package fixture

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

//keyedeq:hot -- fixture: dense integer IDs are the sanctioned key
func Dense(r *rel, ids []int) map[int]int {
	m := make(map[int]int)
	for i, t := range r.tuples {
		m[ids[i%len(ids)]] += len(t)
	}
	return m
}

//keyedeq:hot -- fixture: an inline conversion in the index expression
// is the compiler's zero-alloc read probe
func Probe(r *rel, buf []byte, m map[string]int) int {
	n := 0
	for range r.tuples {
		n += m[string(buf)]
	}
	return n
}

//keyedeq:hot -- fixture: probe-then-insert materializes the key once
// per distinct key, not once per iteration
func Intern(r *rel, buf []byte, m map[string]int) int {
	next := 0
	for range r.tuples {
		id, ok := m[string(buf)]
		if !ok {
			id = next
			next++
			m[string(buf)] = id
		}
		_ = id
	}
	return next
}

// coldKeys builds string keys outside any hot function: legal.
func coldKeys(r *rel, names []string) map[string]int {
	m := make(map[string]int)
	for i, t := range r.tuples {
		k := names[i%len(names)] + ":"
		m[k] = len(t)
	}
	return m
}
