// Fixtures that MUST trigger mapkey: map probes keyed by strings or
// structs materialized once per iteration.
package fixture

import "fmt"

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

// projKey is a key-builder returning a fresh string; the rule must see
// through this one level of same-package calls.
func projKey(t Tuple) string {
	b := make([]byte, 0, len(t))
	for _, v := range t {
		b = append(b, byte(v))
	}
	return string(b)
}

//keyedeq:hot -- fixture: per-tuple projection keys into the bucket map
func Buckets(r *rel) map[string]int {
	m := make(map[string]int)
	for i, t := range r.tuples {
		k := projKey(t)
		m[k] = i // want mapkey
	}
	return m
}

//keyedeq:hot -- fixture: concatenated and formatted keys
func Grouped(r *rel, names []string) map[string]int {
	m := make(map[string]int)
	for i, t := range r.tuples {
		m[names[i%len(names)]+"|"] += len(t) // want mapkey
		m[fmt.Sprintf("g%d", i)] += len(t)   // want mapkey
	}
	return m
}

type pair struct{ a, b int }

//keyedeq:hot -- fixture: struct keys materialized per tuple
func Pairs(r *rel) map[pair]int {
	m := make(map[pair]int)
	for i, t := range r.tuples {
		m[pair{i, len(t)}]++ // want mapkey
	}
	return m
}

//keyedeq:hot -- fixture: a conversion bound to a variable defeats the
// compiler's zero-alloc probe optimization
func Bound(r *rel, buf []byte) map[string]int {
	m := make(map[string]int)
	for range r.tuples {
		k := string(buf)
		m[k]++ // want mapkey
	}
	return m
}
