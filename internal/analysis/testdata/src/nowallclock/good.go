// Fixtures that MUST pass nowallclock: injected time and non-Now uses
// of the time package.
package fixture

import "time"

// Expired takes the current instant from its caller.
func Expired(now time.Time, deadline time.Time) bool {
	return now.After(deadline)
}

// Backoff uses time only for arithmetic.
func Backoff(n int) time.Duration {
	return time.Duration(n) * time.Millisecond
}

// nowish proves a shadowing identifier named time is not the package.
func nowish() string {
	time := struct{ Now func() string }{Now: func() string { return "static" }}
	return time.Now()
}
