// Fixtures that MUST trigger nowallclock when placed outside the
// exempt directories.
package fixture

import "time"

// Stamp reads the wall clock in library code.
func Stamp() int64 {
	return time.Now().UnixNano() // want nowallclock
}

// deadline references time.Now without calling it directly.
func deadline(d time.Duration) time.Time {
	now := time.Now // want nowallclock
	return now().Add(d)
}
