// Fixtures that MUST trigger detmap: canonicalizing functions ranging
// over maps without sorting.
package fixture

// Canon carries a map whose iteration order leaks into output.
type Canon struct{ m map[string]int }

// String concatenates in map order: nondeterministic.
func (c *Canon) String() string {
	out := ""
	for k := range c.m { // want detmap
		out += k
	}
	return out
}

// CanonicalKeys collects keys but never sorts them.
func CanonicalKeys(m map[string]bool) []string {
	var keys []string
	for k := range m { // want detmap
		keys = append(keys, k)
	}
	return keys
}

// EncodePairs flags map ranges inside nested closures too.
func EncodePairs(m map[int]string) string {
	build := func() string {
		out := ""
		for _, v := range m { // want detmap
			out += v
		}
		return out
	}
	return build()
}

// HashRows appends values derived from entries (not a pure collect loop)
// and never sorts.
func HashRows(m map[string]int) []int {
	var rows []int
	for _, v := range m { // want detmap
		rows = append(rows, v*2)
	}
	return rows
}
