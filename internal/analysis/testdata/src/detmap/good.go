// Fixtures that MUST pass detmap: the collect-sort-iterate idiom,
// order-insensitive accumulation, and non-canonical functions.
package fixture

import "sort"

// StringSorted uses the sanctioned collect-sort-iterate idiom.
func StringSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for _, k := range keys {
		out += k
	}
	return out
}

// EncodeLocalSort recognizes local sort helpers by name.
func EncodeLocalSort(m map[int]bool) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	sortInts(keys)
	return keys
}

func sortInts(xs []int) {
	sort.Ints(xs)
}

// HashCount only counts: iteration order cannot matter.
func HashCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// KeyInvert writes into another map: order-insensitive.
func KeyInvert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// values does not match the canonical-function name pattern, so an
// unsorted range is fine here.
func values(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// StringSlice ranges over a slice, not a map.
func StringSlice(xs []string) string {
	out := ""
	for _, x := range xs {
		out += x
	}
	return out
}
