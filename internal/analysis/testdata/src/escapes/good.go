// Fixtures that MUST NOT trigger escapes: hoisted scratch, loop-private
// allocations, same-package callees, and result returns.
package fixture

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

type hasher struct{ buf []byte }

//keyedeq:hot -- fixture: hoisted scratch reused across iterations
func (h *hasher) Sum(r *rel) int {
	n := 0
	for _, t := range r.tuples {
		h.buf = h.buf[:0]
		for _, v := range t {
			h.buf = append(h.buf, byte(v))
		}
		n += len(h.buf)
	}
	return n
}

//keyedeq:hot -- fixture: loop-private allocation never leaves the loop
func Private(r *rel) int {
	n := 0
	for _, t := range r.tuples {
		seen := map[int]bool{}
		for _, v := range t {
			seen[v] = true
		}
		n += len(seen)
	}
	return n
}

//keyedeq:hot -- fixture: same-package callees are inside the analysis
func Local(r *rel) int {
	n := 0
	for _, t := range r.tuples {
		c := []int{len(t)}
		n += consume(c, t)
	}
	return n
}

func consume(c []int, t Tuple) int { return len(c) + len(t) }

//keyedeq:hot -- fixture: returning the result is the function's job,
// not a per-iteration leak
func FirstCopy(r *rel) []int {
	for _, t := range r.tuples {
		if len(t) > 0 {
			c := make([]int, len(t))
			copy(c, t)
			return c
		}
	}
	return nil
}
