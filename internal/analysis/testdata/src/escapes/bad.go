// Fixtures that MUST trigger escapes: loop-local allocations that leak
// past the iteration and so heap-allocate every pass.
package fixture

import "sort"

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

type keeper struct{ last []byte }

type pair struct{ a, b int }

//keyedeq:hot -- fixture: loop-local buffer stored to a field outlives
// the iteration
func Store(r *rel, k *keeper) {
	for _, t := range r.tuples {
		b := make([]byte, 0, len(t))
		for _, v := range t {
			b = append(b, byte(v))
		}
		k.last = b // want escapes
	}
}

//keyedeq:hot -- fixture: loop-local handed to an unknown callee
func Sorted(r *rel) {
	for _, t := range r.tuples {
		c := make([]int, len(t))
		copy(c, t)
		sort.Ints(c) // want escapes
	}
}

//keyedeq:hot -- fixture: address of a loop-local value stored outside
func Addr(r *rel, out []*pair) {
	for i, t := range r.tuples {
		pe := pair{i, len(t)}
		out[i] = &pe // want escapes
	}
}

//keyedeq:hot -- fixture: appended into an outer slice, the backing
// array must survive the loop
func Leak(r *rel) [][]byte {
	var out [][]byte
	for _, t := range r.tuples {
		b := make([]byte, len(t))
		out = append(out, b) // want escapes
	}
	return out
}
