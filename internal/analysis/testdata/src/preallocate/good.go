// Fixtures that MUST NOT trigger preallocate: presized slices, field
// buffers, setup loops, and ranges with no derivable length.
package fixture

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

type acc struct{ ids []int }

//keyedeq:hot -- fixture: presized with the ranged length
func Collect(r *rel) []int {
	sizes := make([]int, 0, len(r.tuples))
	for _, t := range r.tuples {
		sizes = append(sizes, len(t))
	}
	return sizes
}

//keyedeq:hot -- fixture: a field buffer is the reuse pattern, exempt
func (a *acc) Gather(r *rel) {
	a.ids = a.ids[:0]
	for _, t := range r.tuples {
		a.ids = append(a.ids, len(t))
	}
}

//keyedeq:hot -- fixture: a channel range has no derivable length
func Drain(ch chan Tuple) []int {
	var out []int
	for t := range ch {
		out = append(out, len(t))
	}
	return out
}

//keyedeq:hot -- fixture: a single top-level non-tuple loop is setup,
// outside the hot region
func Setup(deps []int) []int {
	var out []int
	for _, d := range deps {
		out = append(out, d)
	}
	return out
}
