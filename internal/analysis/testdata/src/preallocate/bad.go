// Fixtures that MUST trigger preallocate: slices grown per iteration
// whose capacity was derivable from a ranged-over length.
package fixture

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

//keyedeq:hot -- fixture: var-declared worklist grown without capacity
func Collect(r *rel) []int {
	var sizes []int
	for _, t := range r.tuples {
		sizes = append(sizes, len(t)) // want preallocate
	}
	return sizes
}

//keyedeq:hot -- fixture: an empty literal is still unsized
func Flatten(r *rel) []int {
	out := []int{}
	for _, t := range r.tuples {
		for _, v := range t {
			out = append(out, v) // want preallocate
		}
	}
	return out
}

//keyedeq:hot -- fixture: make with zero length and no capacity; the
// conditional append still has len(r.tuples) as its upper bound
func Ids(r *rel) []int {
	ids := make([]int, 0)
	for _, t := range r.tuples {
		if len(t) > 0 {
			ids = append(ids, t[0]) // want preallocate
		}
	}
	return ids
}
