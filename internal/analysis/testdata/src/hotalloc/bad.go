// Fixtures that MUST trigger hotalloc: per-iteration allocation inside
// hot loops, including in helpers reached only through propagation.
package fixture

import "fmt"

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

//keyedeq:hot -- fixture: the tuple scan is the hot loop under test
func ScanAlloc(r *rel) int {
	n := 0
	for _, t := range r.tuples {
		b := make([]byte, 0, len(t)) // want hotalloc
		_ = b
		ids := []int{len(t)} // want hotalloc
		_ = ids
		n += len(t)
	}
	return n
}

//keyedeq:hot -- fixture: string building per tuple
func Keys(r *rel) []string {
	var out []string
	for _, t := range r.tuples {
		k := fmt.Sprintf("%d", len(t)) // want hotalloc
		k = k + "x"                    // want hotalloc
		out = append(out, k)
	}
	return out
}

// helper carries no directive: hotness must reach it through the
// same-package call graph from Caller.
func helper(t Tuple) int {
	n := 0
	for range t {
		for range t {
			p := &rel{} // want hotalloc
			_ = p
			n++
		}
	}
	return n
}

//keyedeq:hot -- fixture: propagation root for helper
func Caller(t Tuple) int { return helper(t) }
