// Fixtures that MUST NOT trigger hotalloc: scratch reuse, struct-value
// copies, error exits, cold code, and setup-shaped loops.
package fixture

import "fmt"

// Tuple mirrors the engine's tuple shape.
type Tuple []int

type rel struct{ tuples []Tuple }

type scanner struct{ buf []byte }

//keyedeq:hot -- fixture: reuses a hoisted scratch buffer per iteration
func (s *scanner) Scan(r *rel) int {
	n := 0
	for _, t := range r.tuples {
		s.buf = s.buf[:0]
		for _, v := range t {
			s.buf = append(s.buf, byte(v))
		}
		// A struct value is a copy, not an allocation.
		it := struct{ a, b int }{len(t), n}
		n += it.a + len(s.buf)
	}
	return n
}

//keyedeq:hot -- fixture: allocation on the error exit runs once
func First(r *rel) (Tuple, error) {
	for _, t := range r.tuples {
		if len(t) > 0 {
			return t, fmt.Errorf("stopped after a %d-ary tuple", len(t))
		}
	}
	return nil, nil
}

// coldAlloc allocates per iteration but carries no directive and has no
// hot caller: the rule must stay silent.
func coldAlloc(r *rel) []Tuple {
	var out []Tuple
	for _, t := range r.tuples {
		c := make(Tuple, len(t))
		copy(c, t)
		out = append(out, c)
	}
	return out
}

//keyedeq:hot -- fixture: a single top-level non-tuple loop is setup,
// and setup may allocate proportionally to the problem description
func SetupLoop(deps []int) int {
	n := 0
	for _, d := range deps {
		buf := make([]int, d)
		n += len(buf)
	}
	return n
}
