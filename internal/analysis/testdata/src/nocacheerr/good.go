// Fixtures that must NOT trigger nocacheerr: insertions guarded to the
// success path, and non-cache receivers.
package fixture

import "errors"

type verdict struct{ holds bool }

type resultCache struct{ m map[string]verdict }

func (c *resultCache) Put(k string, v verdict) { c.m[k] = v }

// journal is not cache-like; its Put is out of scope.
type journal struct{ m map[string]verdict }

func (j *journal) Put(k string, v verdict) { j.m[k] = v }

func compute() (verdict, error) { return verdict{}, errors.New("cut short") }

// PutOnSuccessOnly is the sanctioned shape: the error path returns
// before the insertion.
func PutOnSuccessOnly(c *resultCache, k string) {
	v, err := compute()
	if err != nil {
		return
	}
	c.Put(k, v)
}

// PutInNilBranch inserts inside the err == nil branch.
func PutInNilBranch(c *resultCache, k string) {
	v, err := compute()
	if err == nil {
		c.Put(k, v)
	}
}

// JournalOnError records failures deliberately; journals are not
// caches, the entry is the point.
func JournalOnError(j *journal, k string) {
	v, err := compute()
	if err != nil {
		j.Put(k, v)
	}
}
