// Fixtures that MUST trigger nocacheerr: cache insertions on error
// paths, directly or through a value assigned there.
package fixture

import "errors"

type verdict struct{ holds bool }

type resultCache struct{ m map[string]verdict }

func (c *resultCache) Put(k string, v verdict) { c.m[k] = v }

func compute() (verdict, error) { return verdict{}, errors.New("cut short") }

// PutInErrBranch inserts inside the error branch itself.
func PutInErrBranch(c *resultCache, k string) {
	v, err := compute()
	if err != nil {
		c.Put(k, v) // want nocacheerr
	}
}

// PutInElseOfNilCheck inserts in the else of an err == nil check —
// still the error path.
func PutInElseOfNilCheck(c *resultCache, k string) {
	v, err := compute()
	if err == nil {
		_ = v
	} else {
		c.Put(k, v) // want nocacheerr
	}
}

// PutTainted assigns the cached value on the error path and inserts it
// later, outside the branch.
func PutTainted(c *resultCache, k string) {
	v, err := compute()
	if err != nil {
		v = verdict{holds: false}
	}
	c.Put(k, v) // want nocacheerr
}
