// Fixtures that MUST trigger goroleak: fire-and-forget goroutines the
// spawner can neither await nor stop.
package fixture

type server struct{ n int }

func (s *server) Serve(backlog int) error {
	s.n = backlog
	return nil
}

// FireAndForget spawns a bare call with no lifetime handle.
func FireAndForget(s *server) {
	go s.Serve(0) // want goroleak
}

// LiteralNoJoin spawns a literal with no Done, channel, or context.
func LiteralNoJoin(s *server) {
	go func() { // want goroleak
		s.n++
	}()
}
