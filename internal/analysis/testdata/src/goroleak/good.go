// Fixtures that must NOT trigger goroleak: goroutines joined by
// WaitGroup, channel, or cancellable by context.
package fixture

import (
	"context"
	"sync"
)

func work() error { return nil }

// WaitGrouped joins through the WaitGroup.
func WaitGrouped(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = work()
		}()
	}
	wg.Wait()
}

// ChannelJoined delivers its result on a channel the spawner reads.
func ChannelJoined() error {
	errc := make(chan error, 1)
	go func() { errc <- work() }()
	return <-errc
}

// ContextCancellable parks on the spawner's context.
func ContextCancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// BareWithChannel hands the callee the channel that joins it.
func BareWithChannel() int {
	ch := make(chan int)
	go pump(ch)
	return <-ch
}

func pump(ch chan int) { ch <- 1 }

// BareWithContext hands the callee a context to watch.
func BareWithContext(ctx context.Context) {
	go watch(ctx)
}

func watch(ctx context.Context) { <-ctx.Done() }

// Closer closes the channel consumers range over.
func Closer(vals []int) chan int {
	out := make(chan int)
	go func() {
		for _, v := range vals {
			out <- v
		}
		close(out)
	}()
	return out
}
