// Package user consumes stats.Stats from outside its defining package:
// field writes and non-zero literals here MUST trigger mergeonly, the
// Merge/constructor/zeroing paths must not.
package user

import "fixture.example/mergeonly/stats"

// BadWrites mutates protected fields cross-package.
func BadWrites(nodes int64) stats.Stats {
	var st stats.Stats
	st.Nodes = nodes // want mergeonly
	st.Searches++    // want mergeonly
	return st
}

// BadFlag ORs the failure flag by hand instead of merging.
func BadFlag(st *stats.Stats, failed bool) {
	st.Failed = st.Failed || failed // want mergeonly
}

// BadLiteral builds a non-zero literal cross-package.
func BadLiteral() stats.Stats {
	return stats.Stats{Searches: 1} // want mergeonly
}

// GoodMerge combines through Merge and the constructor.
func GoodMerge(nodes int64) stats.Stats {
	st := stats.SearchStats(nodes)
	st.Merge(stats.SearchStats(0))
	return st
}

// GoodZero resets with the zero literal, which carries no counts.
func GoodZero(st *stats.Stats) {
	*st = stats.Stats{}
}
