// Package stats is the defining package of a Merge-owning type: its
// own writes and constructors are the sanctioned write path.
package stats

// Stats is a Merge-owning struct, mirroring containment.Stats.
type Stats struct {
	Nodes    int64
	Searches int
	Failed   bool
}

// Merge folds other into s.
func (s *Stats) Merge(other Stats) {
	s.Nodes += other.Nodes
	s.Searches += other.Searches
	s.Failed = s.Failed || other.Failed
}

// SearchStats is the sanctioned constructor; the composite literal is
// fine here, in the defining package.
func SearchStats(nodes int64) Stats {
	return Stats{Nodes: nodes, Searches: 1}
}

// Count bumps a field in the defining package — allowed.
func (s *Stats) Count(nodes int64) {
	s.Nodes += nodes
	s.Searches++
}
