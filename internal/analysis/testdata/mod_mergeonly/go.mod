module fixture.example/mergeonly

go 1.22
