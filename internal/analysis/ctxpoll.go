package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// CtxPoll enforces the cancellation-polling contract from the indexed
// homomorphism search work: any cancellable function — one that takes a
// context.Context parameter, or a method on a struct carrying a context
// field (the searcher pattern) — that loops over tuple or relation data
// must reach a cancellation poll from inside the loop.  A poll is a
// ctx.Err()/ctx.Done() check, a masked poll (an identifier carrying the
// cancelCheckMask contract), a call to a same-package function that
// transitively polls, or handing the context to a callee.  Long
// unpolled scans are exactly how the chase and the search used to
// outlive their deadline by whole relations.
type CtxPoll struct{}

func (CtxPoll) Name() string { return "ctxpoll" }

func (CtxPoll) Check(p *Package) []Diagnostic {
	var diags []Diagnostic
	polls := pollSummaries(p)
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if !hasCtxParam(p, fd.Type) && !receiverStructCtxField(p, fd) {
				continue
			}
			diags = append(diags, checkPollLoops(p, polls, fd)...)
		}
	}
	return diags
}

// pollSummaries computes, for every function declared in the package,
// whether its body reaches a cancellation poll — directly or through a
// same-package call chain.
func pollSummaries(p *Package) map[*types.Func]bool {
	decls := funcDecls(p)
	polls := make(map[*types.Func]bool, len(decls))
	calls := make(map[*types.Func][]*types.Func, len(decls))
	for obj, fd := range decls {
		if bodyPollsDirectly(p, fd.Body) {
			polls[obj] = true
			continue
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := calleeOf(p.Info, call); callee != nil {
				if _, local := decls[callee]; local {
					calls[obj] = append(calls[obj], callee)
				}
			}
			return true
		})
	}
	// Transitive closure: a function polls if any same-package callee
	// polls.  Iterate to fixpoint; the call graphs here are tiny.
	for changed := true; changed; {
		changed = false
		for obj, callees := range calls {
			if polls[obj] {
				continue
			}
			for _, c := range callees {
				if polls[c] {
					polls[obj] = true
					changed = true
					break
				}
			}
		}
	}
	return polls
}

// bodyPollsDirectly reports whether the subtree contains an immediate
// cancellation poll: ctx.Err()/ctx.Done() on a context-typed value, or
// a masked-poll identifier (cancelCheckMask).
func bodyPollsDirectly(p *Package, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		switch x := c.(type) {
		case *ast.Ident:
			if isPollMaskIdent(x.Name) {
				found = true
			}
		case *ast.SelectorExpr:
			if x.Sel.Name != "Err" && x.Sel.Name != "Done" {
				return true
			}
			if isContextType(p.Info.TypeOf(x.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// subtreePolls reports whether the subtree reaches a poll: directly, by
// calling a transitively-polling same-package function, or by passing a
// context to any call (delegating the obligation).
func subtreePolls(p *Package, polls map[*types.Func]bool, n ast.Node) bool {
	if bodyPollsDirectly(p, n) {
		return true
	}
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if found {
			return false
		}
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		if callee := calleeOf(p.Info, call); callee != nil && polls[callee] {
			found = true
			return false
		}
		for _, arg := range call.Args {
			if isContextType(p.Info.TypeOf(arg)) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// checkPollLoops flags tuple/relation range loops in fd that no
// enclosing loop covers with a poll.  The contract is per-wave, not
// per-tuple: a poll anywhere inside the outermost enclosing loop chain
// (the chase polls once per wave, the search once per mask window)
// covers every loop nested under it.
func checkPollLoops(p *Package, polls map[*types.Func]bool, fd *ast.FuncDecl) []Diagnostic {
	var diags []Diagnostic
	// loopStack holds the chain of enclosing loop nodes at each visit.
	var loopStack []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// Literals are cancellable on their own terms only; their
			// loops are not this declaration's obligation unless they
			// take a context themselves (rare; skip for now).
			return false
		case *ast.ForStmt:
			loopStack = append(loopStack, x)
			ast.Inspect(x.Body, visit)
			if x.Init != nil {
				ast.Inspect(x.Init, visit)
			}
			loopStack = loopStack[:len(loopStack)-1]
			return false
		case *ast.RangeStmt:
			if rangesOverTuples(p, x) {
				covered := subtreePolls(p, polls, x.Body)
				// An enclosing loop that polls per iteration covers the
				// inner scan (the outermost such loop's subtree includes
				// everything below, so checking the stack bottom-up is
				// enough).
				for i := len(loopStack) - 1; !covered && i >= 0; i-- {
					covered = subtreePolls(p, polls, loopStack[i])
				}
				if !covered {
					diags = append(diags, Diagnostic{
						Rule:    "ctxpoll",
						Pos:     p.Fset.Position(x.Pos()),
						Message: fmt.Sprintf("%s is cancellable but ranges over tuples without polling cancellation (ctx.Err, a masked poll, or a polling callee)", fd.Name.Name),
					})
				}
			}
			loopStack = append(loopStack, x)
			ast.Inspect(x.Body, visit)
			loopStack = loopStack[:len(loopStack)-1]
			return false
		}
		return true
	}
	ast.Inspect(fd.Body, visit)
	return diags
}
