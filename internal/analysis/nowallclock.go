package analysis

import (
	"go/ast"
	"strconv"
)

// NoWallClock bans time.Now outside internal/exp and cmd/.  Wall-clock
// reads in library code make output (canonical forms, generated
// instances, chase traces) depend on when the code ran; timing belongs
// to the experiment harness and command layer only.
type NoWallClock struct{}

// Name implements Rule.
func (NoWallClock) Name() string { return "nowallclock" }

var wallclockExemptDirs = []string{"cmd", "examples", "internal/exp"}

// Check implements Rule.
func (NoWallClock) Check(p *Package) []Diagnostic {
	if inDirs(p.ImportPath, wallclockExemptDirs...) {
		return nil
	}
	var out []Diagnostic
	for _, f := range p.Files {
		timeNames := importNames(f, "time")
		if len(timeNames) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Now" {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[x.Name] {
				return true
			}
			if !resolvesToPkg(p.Info, x, "time") {
				return true
			}
			out = append(out, Diagnostic{
				Rule:    "nowallclock",
				Pos:     p.Fset.Position(sel.Pos()),
				Message: "time.Now outside internal/exp and cmd/; inject timing from the caller",
			})
			return true
		})
	}
	return out
}

// importNames returns the local names under which f imports path.
func importNames(f *ast.File, path string) map[string]bool {
	out := make(map[string]bool)
	for _, imp := range f.Imports {
		ip, err := strconv.Unquote(imp.Path.Value)
		if err != nil || ip != path {
			continue
		}
		name := pathBase(path)
		if imp.Name != nil {
			name = imp.Name.Name
		}
		out[name] = true
	}
	return out
}
