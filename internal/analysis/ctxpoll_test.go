package analysis

import "testing"

func TestCtxPollFlagsUnpolledTupleScans(t *testing.T) {
	got, want := checkFixture(t, "keyedeq/internal/fixture", "ctxpoll/bad.go", CtxPoll{})
	if len(want) == 0 {
		t.Fatal("bad fixture declares no want-lines")
	}
	expectFindings(t, "ctxpoll/bad.go", got, want)
}

func TestCtxPollAcceptsPolledAndUncancellable(t *testing.T) {
	got, _ := checkFixture(t, "keyedeq/internal/fixture", "ctxpoll/good.go", CtxPoll{})
	expectFindings(t, "ctxpoll/good.go", got, nil)
}
